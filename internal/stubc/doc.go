// Package stubc is the stub compiler of Optimistic RPC: it turns a small
// interface-definition language into Go stubs over the rpc runtime, the
// way the paper's stub compiler turns remote-procedure specifications
// into C handler, stub, and marshaling code.
//
// The language, one declaration per line:
//
//	package tspgen
//
//	# request one job from the master's queue (blocks when empty)
//	rpc GetJob() (route bytes, ok bool)
//
//	# fire-and-forget position insert
//	async rpc Extend(pos uint64, ways uint64)
//
//	# record types (the struct marshaling the paper's prototype omits)
//	struct Point { x float64, y float64 }
//	rpc Move(p Point) (q Point)
//
// As in the paper, the server's processor ID is not part of the
// declaration: it is the first argument of every generated client stub.
// Parameters before the parenthesized result list are "in" arguments;
// results are "out" arguments. Buffer types (bytes, f64s, i32s, u64s)
// carry their length on the wire, mirroring the paper's buffer-plus-size
// rule. Asynchronous procedures may not have results.
//
// For each procedure P the generated code contains: a server registration
// routine DefineP (the paper's initialization routine), a typed client
// stub P.Call or P.CallAsync, marshaling in both directions, and a Stats
// accessor (the paper's termination routine prints these statistics).
// The same generated stub serves both TRPC and ORPC; the runtime's mode
// decides how incoming calls are scheduled.
package stubc
