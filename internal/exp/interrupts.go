package exp

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// InterruptRow is one point of the polling-vs-interrupts experiment.
type InterruptRow struct {
	Delivery   string       // "poll(quantum)" or "interrupts"
	ShortP50   sim.Duration // median latency of the short calls
	ShortWorst sim.Duration
	WorkDone   sim.Duration // completion time of the server's computation
	Interrupts uint64
}

// Interrupts quantifies the delivery-mechanism choice the paper makes in
// section 4 ("because taking interrupts is fairly expensive on the CM-5,
// all of our applications use carefully tuned polling"): a server with a
// long local computation services null RPCs either by polling between
// compute quanta or by taking message interrupts. Interrupts give
// microsecond latency independent of the quantum but tax every message
// with the interrupt overhead; coarse polling is cheap but queues
// messages for up to a quantum.
func Interrupts() []InterruptRow {
	cells := []struct {
		ints    bool
		quantum sim.Duration
	}{
		{false, sim.Micros(2000)},
		{false, sim.Micros(200)},
		{true, sim.Micros(2000)},
	}
	rows := make([]InterruptRow, len(cells))
	forEach(len(cells), func(i int) error {
		rows[i] = runInterrupts(cells[i].ints, cells[i].quantum)
		return nil
	})
	return rows
}

func runInterrupts(useInterrupts bool, quantum sim.Duration) InterruptRow {
	const (
		shortCalls = 24
		totalWork  = 40_000 // us of server computation
	)
	eng := sim.New(12)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC})
	short := rt.Define("short", func(e *oam.Env, caller int, arg []byte) []byte {
		return nil
	})
	workDone := false
	var workAt sim.Time
	var lat []sim.Duration
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			sched := u.Scheduler(0)
			if useInterrupts {
				sched.EnableInterrupts()
				sched.Compute(c, sim.Micros(totalWork))
			} else {
				ep := u.Endpoint(0)
				for done := sim.Duration(0); done < sim.Micros(totalWork); done += quantum {
					sched.Compute(c, quantum)
					apps0(c, ep)
				}
			}
			workDone = true
			workAt = c.P.Now()
			return
		}
		for i := 0; i < shortCalls; i++ {
			start := c.P.Now()
			short.Call(c, 0, nil)
			lat = append(lat, c.P.Now().Sub(start))
			c.P.Charge(sim.Micros(1200)) // client think time
		}
	})
	if err != nil {
		panic(fmt.Sprintf("exp: interrupts run deadlocked: %v", err))
	}
	if !workDone {
		panic("exp: server work unfinished")
	}
	p50, worst := percentiles(lat)
	mode := fmt.Sprintf("poll(%s us)", us(quantum))
	if useInterrupts {
		mode = "interrupts"
	}
	return InterruptRow{
		Delivery:   mode,
		ShortP50:   p50,
		ShortWorst: worst,
		WorkDone:   sim.Duration(workAt),
		Interrupts: u.Scheduler(0).Stats().Interrupts,
	}
}

// apps0 drains messages and runs any threads they created (a poll point).
func apps0(c threads.Ctx, ep *am.Endpoint) {
	ep.PollAll(c)
	if c.T != nil {
		c.S.Yield(c)
	}
}

// InterruptsTable formats the delivery-mechanism comparison.
func InterruptsTable() *Table {
	t := &Table{
		Title:   "Message delivery: polling vs interrupts (section 4's design choice)",
		Columns: []string{"Delivery", "Short p50(us)", "Short worst(us)", "Work done at(ms)", "Interrupts"},
		Notes: []string{
			"interrupts bound latency but tax the computation ~50us per message",
			"coarse polling is cheap but queues messages for up to a quantum",
		},
	}
	for _, r := range Interrupts() {
		t.Rows = append(t.Rows, []string{
			r.Delivery, us(r.ShortP50), us(r.ShortWorst),
			fmt.Sprintf("%.2f", float64(r.WorkDone)/1e6), u64(r.Interrupts),
		})
	}
	return t
}
