package exp

import (
	"testing"
)

// chaosGoldenHashes are the fault-trace hashes of the quick-scale chaos
// sweep's TSP rows (the rows with a fault layer), re-recorded when the
// reliable transport gained deterministic per-flight retransmit jitter
// (which re-times every retransmission and therefore every fault draw
// after the first loss; the loss-free first row kept its hash). The
// fault trace hashes every drop/dup/crash decision with its virtual
// timestamp, so any change to event order or timing anywhere in the
// stack shows up here — and it must not change with the shard count.
var chaosGoldenHashes = []uint64{
	0x8897616b4b673a9a, 0xd05698c1d7c62142, 0x7c8ba98cca79ecb6,
	0xa577830017906ed9, 0xe78471d0703bc228, 0x7184db0e1d4f68e5,
	0xd1c74fa3fc353738,
	// The permanently-partitioned-slave row (the MaxAttempts-exhausted
	// coverage).
	0x493f473009935687,
	// The flapping-partition row (the heal-and-rejoin coverage).
	0x0c788126713b5bd6,
}

// TestChaosPartitionRow checks the MaxAttempts-exhausted coverage: the
// sweep's final row cuts one slave off completely, and the run ends with
// abandoned messages and call timeouts instead of a hang — with the
// answer still exact, computed by the remaining slaves.
func TestChaosPartitionRow(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	var part *ChaosRow
	for i := range rows {
		if rows[i].Partitioned == 1 {
			part = &rows[i]
		}
	}
	if part == nil {
		t.Fatalf("sweep has no partition row")
	}
	if !part.OK {
		t.Errorf("partition row answer wrong: %+v", part)
	}
	if part.GaveUp == 0 {
		t.Errorf("no messages exhausted MaxAttempts: %+v", part)
	}
	if part.Timeouts == 0 {
		t.Errorf("partitioned slave's calls never timed out: %+v", part)
	}
	if part.Dropped == 0 {
		t.Errorf("partition dropped nothing: %+v", part)
	}
}

// TestChaosFlapRow checks the healing-partition coverage: the slave is cut
// off for a window and comes back; the run recovers rather than merely
// degrading — stranded work is re-issued and the answer stays exact.
func TestChaosFlapRow(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	last := rows[len(rows)-1]
	if last.Flapped != 1 {
		t.Fatalf("last row is not the flap row: %+v", last)
	}
	if !last.OK {
		t.Errorf("flap row answer wrong: %+v", last)
	}
	if last.Dropped == 0 {
		t.Errorf("flap window dropped nothing: %+v", last)
	}
	if last.Retransmits == 0 {
		t.Errorf("nothing was retransmitted across the heal: %+v", last)
	}
}

// TestChaosFaultHashGolden pins the quick chaos sweep's fault traces
// against the seed kernel: the host-scheduling rewrite must not move a
// single fault decision in virtual time.
func TestChaosFaultHashGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	saved := Workers
	Workers = 1
	defer func() { Workers = saved }()

	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	var got []uint64
	for _, r := range rows {
		if r.FaultHash != 0 {
			got = append(got, r.FaultHash)
		}
	}
	t.Logf("fault hashes: %#x", got)
	if len(got) != len(chaosGoldenHashes) {
		t.Fatalf("fault-layer row count = %d, want %d", len(got), len(chaosGoldenHashes))
	}
	for i, h := range got {
		if h != chaosGoldenHashes[i] {
			t.Errorf("row %d: fault-trace hash %#x, want golden %#x", i, h, chaosGoldenHashes[i])
		}
	}
}
