package exp

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/kv"
	"repro/internal/sim"
)

// TestKVQuickGrid runs the quick service grid end to end: every cell
// already passes kv.CheckInvariants inside KV, so this asserts the
// grid-level facts — real traffic in every cell, a latency distribution
// behind every quantile, and AM rows that never promoted.
func TestKVQuickGrid(t *testing.T) {
	rows, err := KV(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty grid")
	}
	// Open-loop arrivals are a pure function of (seed, client, shape):
	// every system in a scenario/rate group must see the same offered
	// load, or the comparison is between different workloads.
	arrivals := map[string]uint64{}
	sawLossy := false
	for _, r := range rows {
		gk := fmt.Sprintf("%s@%g", r.Scenario, r.RateX)
		if want, seen := arrivals[gk]; seen && r.Arrivals != want {
			t.Fatalf("%s/%v: %d arrivals, other systems in the group saw %d — the load is not open-loop",
				r.Scenario, r.System, r.Arrivals, want)
		}
		arrivals[gk] = r.Arrivals
		if r.Arrivals == 0 || r.OK == 0 {
			t.Fatalf("%s/%v: no traffic (%d arrivals, %d ok)", r.Scenario, r.System, r.Arrivals, r.OK)
		}
		if r.P999 == 0 {
			t.Fatalf("%s/%v: empty latency histogram", r.Scenario, r.System)
		}
		if r.P50 > r.P99 || r.P99 > r.P999 {
			t.Fatalf("%s/%v: quantiles not monotone: %v %v %v", r.Scenario, r.System, r.P50, r.P99, r.P999)
		}
		if r.System == apps.AM && r.Promoted != 0 {
			t.Fatalf("%s/AM: promoted %d times; the AM rows must have no abort points", r.Scenario, r.Promoted)
		}
		if r.Scenario == "lossy" {
			sawLossy = true
			if r.FaultHash == 0 {
				t.Fatalf("lossy/%v: zero fault hash under 1%% drop", r.System)
			}
		}
	}
	if !sawLossy {
		t.Fatal("quick grid lost its lossy scenario")
	}
}

// TestKVShardInvariance re-runs one steady cell at shard counts 1 and 2
// through the harness knobs (Shards is a package variable the CLI sets)
// and requires bit-identical books and hashes.
func TestKVShardInvariance(t *testing.T) {
	run := func(shards int, optimistic bool) KVRow {
		savedS, savedO := Shards, Optimistic
		defer func() { Shards, Optimistic = savedS, savedO }()
		Shards, Optimistic = shards, optimistic
		row, err := kvCell("inv", apps.ORPC, 2, kvShape(nil), 24, sim.Micros(8000))
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	base := run(1, false)
	for _, m := range []struct {
		shards     int
		optimistic bool
	}{{2, false}, {2, true}} {
		got := run(m.shards, m.optimistic)
		if got != base {
			t.Fatalf("shards=%d optimistic=%v diverged:\n got %+v\nwant %+v",
				m.shards, m.optimistic, got, base)
		}
	}
}

// TestKVSaturationQuick checks the bench pass finds the knee and the
// goodput gap on the quick sweep — the numbers CI asserts against.
func TestKVSaturationQuick(t *testing.T) {
	sat, err := KVSaturationBench(true)
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Valid {
		t.Fatalf("quick sweep found no knee: %+v", sat)
	}
	if sat.GoodputRatioAtMax <= 1 {
		t.Fatalf("ORPC goodput did not beat TRPC beyond the knee: ratio %.3f", sat.GoodputRatioAtMax)
	}
	if sat.P999At70PctKneeUs <= 0 {
		t.Fatalf("no p999 below the knee: %+v", sat)
	}
}

// TestKVMultiactiveQuick checks the multiactive bench pass on the quick
// cell: everything it reports is virtual time, so the assertions are
// deterministic on any host (only Valid depends on the host CPU count).
func TestKVMultiactiveQuick(t *testing.T) {
	m, err := KVMultiactiveBench(true)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpeedupAtMax < 1.3 {
		t.Fatalf("multiactive goodput speedup %.2fx < 1.3x: %+v", m.SpeedupAtMax, m)
	}
	if m.P999RatioAtMax >= 1 {
		t.Fatalf("multiactive did not shorten the tail: p999 ratio %.2f", m.P999RatioAtMax)
	}
	for i, cores := range m.Cores {
		if cores > 1 {
			if m.CompatAdmitted[i] == 0 {
				t.Fatalf("cores=%d admitted no compatible handlers", cores)
			}
			if m.OccupancyFrac[i] <= 0 || m.OccupancyFrac[i] > 1 {
				t.Fatalf("cores=%d occupancy %.3f outside (0, 1]", cores, m.OccupancyFrac[i])
			}
		} else if m.OccupancyFrac[i] != 0 || m.CompatAdmitted[i] != 0 {
			t.Fatalf("single-active cell reported multiactive activity: %+v", m)
		}
		if m.GoodputPerMs[i] < m.GoodputPerMs[0] {
			t.Fatalf("goodput fell below single-active at cores=%d: %+v", cores, m)
		}
	}
}

// TestKVMultiactiveShardInvariance re-runs the 2-core cell at shard
// counts 1 and 2 (and 2-optimistic) and requires bit-identical books —
// the multiactive extension of TestKVShardInvariance.
func TestKVMultiactiveShardInvariance(t *testing.T) {
	run := func(shards int, optimistic bool) KVRow {
		savedS, savedO := Shards, Optimistic
		defer func() { Shards, Optimistic = savedS, savedO }()
		Shards, Optimistic = shards, optimistic
		row, err := kvCell("inv", apps.ORPC, 2, kvShape(func(c *kv.Config) {
			c.Cores = 2
			c.ZipfS = 1.1
		}), 24, sim.Micros(8000))
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	base := run(1, false)
	if base.OK == 0 {
		t.Fatal("no traffic in the multiactive invariance cell")
	}
	for _, m := range []struct {
		shards     int
		optimistic bool
	}{{2, false}, {2, true}} {
		got := run(m.shards, m.optimistic)
		if got != base {
			t.Fatalf("shards=%d optimistic=%v diverged:\n got %+v\nwant %+v",
				m.shards, m.optimistic, got, base)
		}
	}
}
