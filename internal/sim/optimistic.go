package sim

import (
	"sync"
	"sync/atomic"
)

// ShardMode selects how a sharded engine advances its shards through
// virtual time.
type ShardMode uint8

const (
	// Conservative is the lockstep mode: all shards advance through
	// global virtual-time windows of width bounded by the hook's
	// lookahead, with a coordinator barrier between every window.
	Conservative ShardMode = iota
	// Optimistic is the speculative mode: shards run asynchronously
	// through much wider commit spans, racing ahead of each other up to a
	// proven-safe horizon (min of the other shards' clocks plus the
	// lookahead), publishing cross-shard flights eagerly, and
	// rendezvousing only at span boundaries — the GVT commit points where
	// buffered traces flush, NIC snapshots refresh, and globals fire.
	// Results are bit-identical to Conservative and to sequential.
	Optimistic
)

// ShardConfig configures NewShardedConfig.
type ShardConfig struct {
	// Shards is the shard count (clamped below at 1).
	Shards int
	// Mode selects lockstep or speculative execution. Ignored (always
	// Conservative) when Shards <= 1: a single shard is the sequential
	// kernel.
	Mode ShardMode
	// CheckpointEvery is the virtual-time width of an optimistic commit
	// span — the distance between GVT commit barriers. 0 means 32x the
	// hook's lookahead, chosen at each span start. Spans are additionally
	// cut at global events (crashes, collective releases), at the hook's
	// NextBound (fault-plan slow/partition edges), and at the run
	// deadline, so CheckpointEvery only bounds the barrier-free stretch.
	CheckpointEvery Duration
	// MaxDrift bounds how far (in virtual time) any shard's clock may run
	// ahead of the slowest shard within a span; 0 means unbounded (the
	// span end is then the only drift bound). Values below the lookahead
	// are clamped up to it.
	MaxDrift Duration
	// EventHint is the expected machine-wide pending-event population,
	// used to pre-size the per-shard calendar queues (0 = default). See
	// Engine.HintEvents.
	EventHint int
}

// ArrivalHook materializes an eagerly published cross-shard arrival
// (Shard.Inject) on its destination shard: the machine layer reserves the
// NIC slot and schedules the delivery event. It runs on the destination
// shard's goroutine, so it may touch that shard's pools and NICs freely.
// Optimistic mode requires the window hook to also implement this.
type ArrivalHook interface {
	Arrive(sh *Shard, at Time, key uint64, payload any)
}

// SpanHook lets the machine layer cut optimistic commit spans at
// fault-plan boundaries: NextBound returns the earliest instant after now
// where network behavior changes (slow-window or partition edge), or any
// time <= now when there is none. Optional; consulted only by optimistic
// runs.
type SpanHook interface {
	NextBound(now Time) Time
}

// inbound is one eagerly published cross-shard arrival awaiting
// materialization by the owning shard.
type inbound struct {
	at      Time
	key     uint64
	payload any
}

// optState is the shared coordination state of an optimistic run. The
// design constraint it lives under: processes are goroutine stacks and
// application state mutates in place, so — unlike a classic Time Warp —
// no executed event can ever be undone. Speculation therefore happens in
// the scheduling layer only: a shard executes an event at t only once t
// is provably before anything another shard could still send it
// (t < min(other shards' clocks) + lookahead), and what gets optimistically
// claimed and occasionally rolled back is *quiescence* — a shard's claim
// that it is done with the span, retracted (a "reopen") when a straggler
// flight lands inside the span after all. Anti-messages are unnecessary:
// flights are only published at already-committed virtual times.
type optState struct {
	e *Engine

	// la is the current span's lookahead: a lower bound on the
	// virtual-time latency of any cross-shard flight sent within the
	// span. Constant per span (spans are cut at fault-plan edges).
	la Duration
	// drift is the effective MaxDrift for the current span (>= la), or 0.
	drift Duration
	// specStart is spanStart + la: events at or after it ran beyond the
	// first conservative window of the span, i.e. needed speculation.
	specStart Time
	// spanEnd is the span's inclusive last instant. Shrunk mid-span
	// (atomically) when an eagerly applied collective schedules a release
	// global inside the span; every such release provably lands after
	// all in-flight event executions, so the cut never invalidates one.
	spanEnd atomic.Int64
	// clocks[i] is shard i's published claim: a promise that it will not
	// execute (hence not send) anything before that instant. Monotone
	// within a span. Raised by the shard itself before each event, and on
	// a sleeping shard's behalf by whoever is awake (the sleeper's heap is
	// quiescent under mu, so its next-event time is readable).
	clocks []atomic.Int64

	// mu guards the blocking protocol below; cond broadcasts wake blocked
	// shards when traffic arrives, the span ends, or claims jump.
	mu   sync.Mutex
	cond *sync.Cond
	// sleepers counts shards inside cond.Wait. When a blocking shard
	// finds every other shard asleep, the machine is quiescent and it can
	// resolve the span exactly (see resolve).
	sleepers int
	// spanOver marks the span complete: every shard exits its window.
	spanOver bool
	// abort ends the span early (shard failure, kernel panic, shutdown).
	abort atomic.Bool

	// lastLbts is the LBTS value the most recent resolve broadcast for.
	// A repeated no-change resolve at the same LBTS may sleep without
	// re-waking the herd: claims are monotone, so every shard that was
	// runnable (and signaled) at the first broadcast still is — without
	// this, idle shards re-broadcast each other in a storm that starves
	// the one shard with work. Guarded by mu.
	lastLbts Time

	// jumps counts idle LBTS jumps (all shards blocked below their
	// horizons; claims advance to the machine-wide minimum next event
	// plus lookahead). Host-schedule dependent; bench-only.
	jumps uint64
}

func newOptState(e *Engine) *optState {
	o := &optState{e: e, clocks: make([]atomic.Int64, len(e.shards))}
	o.cond = sync.NewCond(&o.mu)
	o.spanOver = true // no span running yet
	for i := range e.shards {
		e.shards[i].opt = o
	}
	return o
}

// beginSpan resets the span state for [start, end] with lookahead la. The
// coordinator calls it with every shard runner idle.
func (o *optState) beginSpan(start, end Time, la Duration) {
	o.la = la
	o.drift = o.e.maxDrift
	if o.drift > 0 && o.drift < la {
		o.drift = la
	}
	o.specStart = start.Add(la)
	o.spanEnd.Store(int64(end))
	o.spanOver = false
	o.abort.Store(false)
	o.lastLbts = -1 << 62
	for i := range o.clocks {
		o.clocks[i].Store(int64(start))
		sh := o.e.shards[i]
		sh.cachedH = 0
		sh.tentDone = false
	}
}

// cutSpan shrinks the running span so it ends strictly before t, the
// instant of a newly scheduled global. Blocked shards re-read spanEnd on
// wake; tentative-done shards stay done (the span only shrinks).
func (o *optState) cutSpan(t Time) {
	for {
		cur := o.spanEnd.Load()
		if int64(t)-1 >= cur {
			return
		}
		if o.spanEnd.CompareAndSwap(cur, int64(t)-1) {
			return
		}
	}
}

// abortSpan ends the span immediately (failure, panic, stop): every shard
// bails out at its next gate check, blocked or not.
func (o *optState) abortSpan() {
	o.abort.Store(true)
	o.mu.Lock()
	o.cond.Broadcast()
	o.mu.Unlock()
}

// horizon returns the exclusive execution bound for shard j: one
// lookahead past the minimum of the other shards' claims (nothing can
// arrive at j before that), optionally tightened by the drift bound.
func (o *optState) horizon(j int) Time {
	minPeer, minAll := maxTime, maxTime
	for k := range o.clocks {
		c := Time(o.clocks[k].Load())
		if c < minAll {
			minAll = c
		}
		if k != j && c < minPeer {
			minPeer = c
		}
	}
	h := minPeer.Add(o.la)
	if o.drift > 0 {
		if d := minAll.Add(o.drift); d < h {
			h = d
		}
	}
	return h
}

// gate is the optimistic scheduling decision, taken by each shard before
// every event: drain eagerly published arrivals, then execute the next
// event only if it is provably safe (before the horizon), otherwise block
// until the situation changes. It returns false when the span is over for
// this shard.
//
// Correctness of the fast path: cachedH was computed as min(peer clocks)
// + la at some earlier instant, after which the inbox was drained of
// everything sent before those clock readings (clock stores are ordered
// after the sender's Inject, so observing a clock value implies every
// earlier send is already in the inbox). Claims are monotone, so any
// flight sent after that instant arrives at or beyond cachedH — executing
// strictly below cachedH can never miss one.
func (o *optState) gate(sh *Shard) bool {
	for {
		if sh.failure != nil || sh.kernelPanic != nil || sh.stopped {
			o.abortSpan()
			return false
		}
		if o.abort.Load() {
			return false
		}
		if sh.inboxPending.Load() {
			sh.drainInbox(o)
		}
		if sh.heap.len() > 0 {
			nextT := sh.heap.first().at
			if nextT <= Time(o.spanEnd.Load()) {
				if nextT < sh.cachedH {
					o.clocks[sh.idx].Store(int64(nextT))
					if nextT >= o.specStart {
						sh.specEvents++
					}
					return true
				}
				h := o.horizon(sh.idx)
				if sh.inboxPending.Load() {
					// A flight landed between the drain and the clock
					// loads; it may precede h. Drain and retry.
					continue
				}
				sh.cachedH = h
				if nextT < h {
					o.clocks[sh.idx].Store(int64(nextT))
					if nextT >= o.specStart {
						sh.specEvents++
					}
					return true
				}
			}
		}
		if o.block(sh) {
			return false
		}
	}
}

// block parks the shard until it can run again or the span ends. Before
// sleeping it publishes its own highest safe claim and raises sleeping
// peers' claims on their behalf — so a lone active shard advances
// everyone's horizon with an uncontended lock instead of waking anyone.
// The last shard to block resolves the span exactly (see resolve).
// Returns true when the span is over.
func (o *optState) block(sh *Shard) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if o.abort.Load() || o.spanOver {
			return true
		}
		if sh.inboxPending.Load() {
			return false // outer loop drains
		}
		nextT := maxTime
		if sh.heap.len() > 0 {
			nextT = sh.heap.first().at
		}
		end := Time(o.spanEnd.Load())
		if nextT <= end {
			if h := o.horizon(sh.idx); nextT < h {
				// Runnable again; the outer loop re-derives everything
				// (including the post-load inbox re-check).
				return false
			}
		}
		o.raiseClaim(sh.idx, nextT)
		if nextT <= end && o.advanceClaims(sh.idx) {
			// Claims moved, so our horizon may now cover nextT; loop and
			// recheck. Bounded: claims only ratchet toward nextT (and
			// nextT <= end), one lookahead per pass. With nothing left to
			// run in-span there is no horizon to chase — resolve() is
			// what ends the span exactly — and an unbounded ratchet of
			// idle shards' claims toward maxTime would spin forever.
			continue
		}
		if o.sleepers == len(o.e.shards)-1 {
			if o.resolve() {
				continue // span over or claims jumped; recheck
			}
		}
		// tentDone: we are blocking with nothing left inside the span —
		// a tentative claim that we are done with it. If a straggler
		// lands in-span after this, its drain counts a reopen: the
		// optimistic analogue of a rollback.
		sh.tentDone = nextT > end
		sh.stalls++
		sh.asleep = true
		o.sleepers++
		o.cond.Wait()
		o.sleepers--
		sh.asleep = false
	}
}

// raiseClaim raises shard j's claim to min(its next event, min peer claim
// + la) — the highest instant j provably cannot act before, regardless of
// what is still in flight toward it (any such flight arrives at or after
// min peer claim + la). Reports whether the claim moved.
func (o *optState) raiseClaim(j int, nextT Time) bool {
	minPeer := maxTime
	for k := range o.clocks {
		if k == j {
			continue
		}
		if c := Time(o.clocks[k].Load()); c < minPeer {
			minPeer = c
		}
	}
	want := minPeer.Add(o.la)
	if nextT < want {
		want = nextT
	}
	if c := o.clocks[j].Load(); int64(want) > c {
		o.clocks[j].Store(int64(want))
		return true
	}
	return false
}

// advanceClaims raises sleeping peers' claims on their behalf (one pass;
// the caller loops while progress is made). A sleeper's heap is quiescent
// and safely readable here: it last changed before the sleeper released
// mu inside cond.Wait. Sleepers with undrained inboxes are skipped —
// their heap top is not their true next event.
func (o *optState) advanceClaims(self int) bool {
	progress := false
	for j, sh := range o.e.shards {
		if j == self || !sh.asleep || sh.inboxPending.Load() {
			continue
		}
		nextT := maxTime
		if sh.heap.len() > 0 {
			nextT = sh.heap.first().at
		}
		if o.raiseClaim(j, nextT) {
			progress = true
		}
	}
	return progress
}

// resolve runs when the calling shard is the only one awake: the machine
// is quiescent, so the span's LBTS — the exact minimum next-event time
// across all shards — is computable. Past the span end, the span is over;
// otherwise every claim jumps to min(its next event, LBTS + la) and the
// LBTS owner resumes. This is what replaces the conservative mode's
// per-lookahead global barrier: a rendezvous only when everyone is idle.
// Returns false when the caller should sleep instead of rechecking: a
// sleeper still has undrained traffic (it must wake and drain before its
// next-event time can be trusted), or nothing changed and the woken LBTS
// owner makes the next move.
func (o *optState) resolve() bool {
	shards := o.e.shards
	for _, sh := range shards {
		if sh.asleep && sh.inboxPending.Load() {
			// The sleeper is already signaled: Inject broadcasts on the
			// false->true pending transition, and a sleeper never parks
			// with the flag up (it rechecks under mu). Re-broadcasting
			// here would wake the idle herd into a resolve storm that
			// starves the drainer of the lock. Sleep; the drain is the
			// next move.
			return false
		}
	}
	lbts := maxTime
	for _, sh := range shards {
		if sh.heap.len() > 0 && sh.heap.first().at < lbts {
			lbts = sh.heap.first().at
		}
	}
	if lbts > Time(o.spanEnd.Load()) {
		o.spanOver = true
		o.cond.Broadcast()
		return true
	}
	// Execution machine-wide resumes at LBTS, so nothing can arrive
	// anywhere before LBTS + la: jump claims (without the drift cap —
	// all clocks jump together, so drift does not grow).
	moved := false
	for j, sh := range shards {
		nt := maxTime
		if sh.heap.len() > 0 {
			nt = sh.heap.first().at
		}
		want := lbts.Add(o.la)
		if nt < want {
			want = nt
		}
		if c := o.clocks[j].Load(); int64(want) > c {
			o.clocks[j].Store(int64(want))
			moved = true
		}
	}
	if !moved && lbts == o.lastLbts {
		// Claims are at their caps and a broadcast already went out for
		// exactly this state: the LBTS owner is signaled and runnable
		// (monotone claims keep it so), it just has not been scheduled
		// yet. Sleep quietly instead of re-waking the herd.
		return false
	}
	// The LBTS owner is now provably runnable (lbts < every claim + la),
	// so broadcast: it may be parked without a pending signal if claims
	// drifted up after its last runnability check. When nothing moved
	// there is nothing for the *caller* to recheck — it must sleep
	// (returning true would spin it against the woken owner), and the
	// owner's own next block will resolve further.
	o.lastLbts = lbts
	o.cond.Broadcast()
	if !moved {
		return false
	}
	o.jumps++
	return true
}

// Inject publishes a cross-shard arrival into this shard's inbox: the
// optimistic-mode replacement for the conservative outbox-and-barrier
// route. Called from the sending shard mid-span; the owning shard
// materializes the arrival (via the engine's ArrivalHook) at its next
// gate pass. The payload travels as-is — receivers cast it back.
func (sh *Shard) Inject(at Time, key uint64, payload any) {
	sh.inmu.Lock()
	wasPending := sh.inboxPending.Load()
	sh.inbox = append(sh.inbox, inbound{at: at, key: key, payload: payload})
	sh.inboxPending.Store(true)
	sh.inmu.Unlock()
	if !wasPending {
		// First item since the last drain: the owner may be asleep. The
		// broadcast is ordered after the pending store, and sleepers
		// re-check the flag under mu before waiting, so the wakeup
		// cannot be lost.
		o := sh.eng.opt
		o.mu.Lock()
		o.cond.Broadcast()
		o.mu.Unlock()
	}
}

// drainInbox materializes every pending inbound arrival onto the shard's
// own heap. Arrivals are never in the shard's past (the gate only
// executes events strictly below the horizon, and every arrival lands at
// or beyond it — AtDelivery's past-check doubles as the runtime assertion
// of that invariant). Draining an in-span arrival after tentatively
// claiming the span done is a reopen — the speculation rollback counter.
func (sh *Shard) drainInbox(o *optState) {
	sh.inmu.Lock()
	items := sh.inbox
	sh.inbox = sh.inboxSpare[:0]
	sh.inboxPending.Store(false)
	sh.inmu.Unlock()
	if len(items) == 0 {
		sh.inboxSpare = items
		return
	}
	hook := sh.eng.arrive
	if hook == nil {
		panic("sim: optimistic cross-shard traffic requires the window hook to implement ArrivalHook")
	}
	minAt := maxTime
	for i := range items {
		if items[i].at < minAt {
			minAt = items[i].at
		}
		hook.Arrive(sh, items[i].at, items[i].key, items[i].payload)
		items[i].payload = nil
	}
	sh.inboxSpare = items[:0]
	if sh.tentDone {
		sh.tentDone = false
		if minAt <= Time(o.spanEnd.Load()) {
			sh.reopens++
		}
	}
}

// OptStats reports the speculative-execution counters of an optimistic
// run (all zero otherwise). Spans and SpecEvents are deterministic for a
// given workload and shard count; Reopens, Stalls, and Jumps depend on
// host scheduling and belong in benchmarks, never in equivalence goldens.
type OptStats struct {
	// Spans is the number of committed spans (GVT advances) — the
	// optimistic analogue of the conservative window count.
	Spans uint64
	// Reopens counts retracted span-completion claims: a shard had
	// tentatively finished its span when a straggler flight landed back
	// inside it. This is the mode's honest "rollback" counter — state is
	// never rolled back (it cannot be; see optState), quiescence claims
	// are.
	Reopens uint64
	// SpecEvents counts events executed at or beyond their span's first
	// lookahead — each would have cost a global barrier in conservative
	// mode. The speculation win.
	SpecEvents uint64
	// Stalls counts shard blocks (condition-variable waits).
	Stalls uint64
	// Jumps counts idle LBTS jumps (see resolve).
	Jumps uint64
}

// OptStats returns the optimistic-run counters; zero for sequential and
// conservative engines.
func (e *Engine) OptStats() OptStats {
	var s OptStats
	if e.opt == nil {
		return s
	}
	s.Spans = e.windows
	s.Jumps = e.opt.jumps
	for _, sh := range e.shards {
		s.Reopens += sh.reopens
		s.SpecEvents += sh.specEvents
		s.Stalls += sh.stalls
	}
	return s
}

// runOptimistic is the optimistic coordinator: like runSharded it
// alternates barriers with parallel execution, but the parallel stretch
// is a whole commit span (CheckpointEvery wide, default 32 lookaheads)
// instead of a single lookahead window, and within a span the shards
// synchronize among themselves through clocks and horizons instead of
// returning to the coordinator. Spans are cut at global events, at
// fault-plan boundaries (SpanHook), and at the deadline, so the commit
// sequence — where traces flush, NIC snapshots refresh, and globals
// fire — is a deterministic function of virtual state alone.
func (e *Engine) runOptimistic(deadline Time) {
	e.deadline = deadline
	e.startRunners()
	o := e.opt
	for {
		e.barrier()
		if e.stopFlag.Load() || e.anyDown() {
			break
		}
		b, ok := e.nextTime()
		if !ok || b > deadline {
			break
		}
		for _, sh := range e.shards {
			if sh.now < b {
				sh.now = b
			}
		}
		e.runGlobalsAt(b)
		if e.anyDown() {
			break
		}
		la := Duration(1)
		if e.hook != nil {
			la = e.hook.Lookahead(b)
			if la < 1 {
				la = 1
			}
		}
		width := e.ckpt
		if width <= 0 {
			width = 32 * la
		}
		last := deadline
		if wl := b.Add(width) - 1; wl < last {
			last = wl
		}
		if e.spanHook != nil {
			if nb := e.spanHook.NextBound(b); nb > b && nb-1 < last {
				last = nb - 1
			}
		}
		if len(e.globals) > 0 && e.globals[0].at-1 < last {
			last = e.globals[0].at - 1
		}
		if last < b {
			last = b
		}
		work := false
		for _, sh := range e.shards {
			if sh.heap.len() > 0 && sh.heap.first().at <= last {
				work = true
				break
			}
		}
		if !work {
			continue
		}
		e.windows++
		o.beginSpan(b, last, la)
		e.dispatchWindow(last)
	}
}
