// Puzzle: the Triangle peg puzzle of section 4.2.1 end to end — solve a
// side-5 board sequentially, then on a simulated 8-node machine under all
// three communication systems, and compare answers and running times.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/triangle"
)

func main() {
	cfg := triangle.Config{Side: 5, Empty: -1, Seed: 17}
	counts := cfg.BoardCounts()
	seq := triangle.SeqTime(counts)
	fmt.Printf("side-5 board: %d positions, %d extensions, %d solutions\n",
		counts.Positions, counts.Extensions, counts.Solutions)
	fmt.Printf("sequential (simulated): %.3fs\n\n", seq.Seconds())

	fmt.Println("8-node runs (distributed transposition table, async 16-byte RPCs):")
	for _, sys := range apps.Systems {
		res, err := triangle.Run(sys, 8, cfg)
		if err != nil {
			panic(err)
		}
		ok := "answer OK"
		if res.Answer != counts.Solutions {
			ok = "ANSWER MISMATCH"
		}
		fmt.Printf("  %-4v  runtime %8.3fs  speedup %5.2f  threads %6d  livestack %5.1f%%  %s\n",
			res.System, res.Elapsed.Seconds(), res.Speedup(seq),
			res.ThreadsCreated, res.LiveStackPct, ok)
	}
	fmt.Println("\nTRPC pays a thread per insert; ORPC runs the same inserts as")
	fmt.Println("Optimistic Active Messages and touches the thread package only on aborts.")
}
