package tsp

import (
	"math"
	"testing"

	"repro/internal/apps"
)

// cfg9 is the fast test instance.
var cfg9 = Config{Cities: 9, Seed: 12}

func TestProblemSymmetric(t *testing.T) {
	p := NewProblem(12, 1)
	for i := 0; i < p.N; i++ {
		if p.Dist[i][i] != 0 {
			t.Fatalf("self distance %d nonzero", i)
		}
		for j := 0; j < p.N; j++ {
			if p.Dist[i][j] != p.Dist[j][i] {
				t.Fatalf("asymmetric distance %d-%d", i, j)
			}
		}
	}
}

func TestNeighborOrderSorted(t *testing.T) {
	p := NewProblem(12, 1)
	for i := 0; i < p.N; i++ {
		if len(p.NearOrder[i]) != p.N-1 {
			t.Fatalf("city %d neighbor list wrong length", i)
		}
		for k := 1; k < len(p.NearOrder[i]); k++ {
			a, b := p.NearOrder[i][k-1], p.NearOrder[i][k]
			if p.Dist[i][a] > p.Dist[i][b] {
				t.Fatalf("city %d neighbors out of order", i)
			}
		}
	}
}

func TestJobsCount(t *testing.T) {
	p := NewProblem(12, 1)
	jobs := p.Jobs()
	if len(jobs) != 7920 {
		t.Fatalf("12-city jobs = %d, want 7920 (the paper's count)", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if len(j) != JobDepth || j[0] != 0 {
			t.Fatalf("malformed job %v", j)
		}
		if seen[string(j)] {
			t.Fatalf("duplicate job %v", j)
		}
		seen[string(j)] = true
	}
}

// TestSolveSeqOptimal compares branch and bound against brute force on a
// small instance.
func TestSolveSeqOptimal(t *testing.T) {
	p := NewProblem(8, 3)
	got := p.SolveSeq().Best

	// Brute force over all permutations of cities 1..7.
	perm := []uint8{1, 2, 3, 4, 5, 6, 7}
	best := int64(math.MaxInt64)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			route := append([]uint8{0}, perm...)
			if l := p.RouteLen(route) + p.Dist[perm[len(perm)-1]][0]; l < best {
				best = l
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if got != best {
		t.Fatalf("B&B best = %d, brute force = %d", got, best)
	}
}

func TestParallelFindsOptimum(t *testing.T) {
	want := uint64(NewProblem(cfg9.Cities, cfg9.Seed).SolveSeq().Best)
	for _, sys := range apps.Systems {
		for _, slaves := range []int{1, 3} {
			res, err := Run(sys, slaves, cfg9)
			if err != nil {
				t.Fatalf("%v/%d: %v", sys, slaves, err)
			}
			if res.Answer != want {
				t.Errorf("%v/%d slaves: best = %d, want %d", sys, slaves, res.Answer, want)
			}
		}
	}
}

// TestORPCMostlySucceeds: at low slave counts the paper reports ~100%
// success.
func TestORPCMostlySucceeds(t *testing.T) {
	res, err := Run(apps.ORPC, 2, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	if res.OAMs == 0 {
		t.Fatal("no OAMs")
	}
	if p := res.SuccessPercent(); p < 95 {
		t.Fatalf("success = %.1f%%, want >= 95%% at 2 slaves", p)
	}
}

func TestTSPDeterminism(t *testing.T) {
	a, err := Run(apps.ORPC, 2, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(apps.ORPC, 2, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.OAMs != b.OAMs || a.Answer != b.Answer {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestExpandVisitHook(t *testing.T) {
	p := NewProblem(9, 4)
	var hookVisits uint64
	best, visits := p.Expand(p.Jobs()[0], math.MaxInt64, func(n int) int64 {
		hookVisits += uint64(n)
		return math.MaxInt64
	})
	if best == math.MaxInt64 {
		t.Fatal("no tour found")
	}
	if hookVisits != visits {
		t.Fatalf("hook saw %d visits, Expand reports %d", hookVisits, visits)
	}
}
