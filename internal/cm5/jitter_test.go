package cm5

import (
	"testing"

	"repro/internal/sim"
)

// TestWireJitterDeliversAll: with jitter enabled, every packet still
// arrives, and delivery times vary.
func TestWireJitterDeliversAll(t *testing.T) {
	eng := sim.New(3)
	cost := DefaultCostModel()
	cost.WireJitter = sim.Micros(10)
	m := NewMachine(eng, 2, cost)
	defer eng.Shutdown()
	const k = 40
	var gaps []sim.Duration
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			for !m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small, W0: uint64(i)}) {
				p.Charge(sim.Micros(1))
			}
			p.Charge(sim.Micros(50)) // spread sends out
		}
	})
	got := 0
	var last sim.Time
	eng.Spawn("receiver", func(p *sim.Proc) {
		for got < k {
			if pkt := m.Node(1).PollPacket(p); pkt != nil {
				if got > 0 {
					gaps = append(gaps, p.Now().Sub(last))
				}
				last = p.Now()
				got++
			}
			if p.Now() > sim.Time(sim.Second) {
				t.Error("stalled")
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("received %d of %d", got, k)
	}
	// Jitter must actually vary inter-arrival gaps.
	varied := false
	for i := 1; i < len(gaps); i++ {
		if gaps[i] != gaps[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter had no effect on arrival gaps")
	}
}

// TestWireJitterDeterministic: the same seed gives the same jittered run.
func TestWireJitterDeterministic(t *testing.T) {
	run := func() sim.Time {
		eng := sim.New(8)
		cost := DefaultCostModel()
		cost.WireJitter = sim.Micros(25)
		m := NewMachine(eng, 2, cost)
		defer eng.Shutdown()
		received := 0
		eng.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				for !m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small}) {
					p.Charge(sim.Micros(1))
				}
			}
		})
		eng.Spawn("receiver", func(p *sim.Proc) {
			for received < 20 {
				if m.Node(1).PollPacket(p) != nil {
					received++
				}
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered runs diverged: %v vs %v", a, b)
	}
}
