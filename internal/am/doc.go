// Package am implements Active Messages over the simulated machine: the
// communication layer of von Eicken et al. that the paper generalizes.
//
// A message names a handler, which executes inline on the context that
// polls it off the network — there is no thread creation and no buffering
// beyond the network interface itself. Handlers run with a handler
// execution context (threads.Ctx with a nil Thread), so any attempt to
// block panics: that is the Active Messages restriction. Optimistic Active
// Messages (package oam) lifts it by promoting handlers to threads.
//
// Send follows the CM-5 CMMD convention: when the destination's input
// buffer is full, the sender drains its own incoming messages while
// retrying, which avoids distributed buffer deadlock. TrySend exposes the
// non-blocking variant whose failure is the OAM "network busy" abort
// condition.
package am
