package exp

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/apps/kv"
	"repro/internal/apps/sched"
	"repro/internal/apps/sor"
	"repro/internal/apps/triangle"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ObserveSpec selects one observed application run.
type ObserveSpec struct {
	App   string       // triangle | tsp | sor | water | sched
	Sys   apps.System  // communication system (default ORPC)
	Nodes int          // machine size (0 = the app's default)
	Quick bool         // shrink the problem like the quick figure runs
}

// ParseSystem maps a -sys flag value to an apps.System.
func ParseSystem(s string) (apps.System, error) {
	switch s {
	case "", "orpc", "ORPC":
		return apps.ORPC, nil
	case "am", "AM":
		return apps.AM, nil
	case "trpc", "TRPC":
		return apps.TRPC, nil
	}
	return 0, fmt.Errorf("unknown system %q (am, orpc, trpc)", s)
}

// ObservedApps lists the applications RunObserved accepts, sorted.
func ObservedApps() []string {
	names := make([]string, 0, len(observedRuns))
	for n := range observedRuns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// observedRuns maps app name to a runner that wires the collector in
// (Attach for the universe/RPC layers, plus app-specific probes where the
// app defines one). Seeds and sizes match the corresponding figure
// experiments, so a trace shows the same schedule the figures measure.
var observedRuns = map[string]func(spec ObserveSpec, c *obs.Collector) (apps.Result, error){
	"triangle": func(spec ObserveSpec, c *obs.Collector) (apps.Result, error) {
		cfg := triangle.Config{Side: 6, Empty: -1, Seed: 101, Observe: c.Attach}
		if spec.Quick {
			cfg.Side = 5
		}
		return triangle.Run(spec.Sys, spec.Nodes, cfg)
	},
	"tsp": func(spec ObserveSpec, c *obs.Collector) (apps.Result, error) {
		cfg := tsp.Config{Cities: 12, Seed: 102, Observe: c.Attach}
		if spec.Quick {
			cfg.Cities = 10
		}
		// -p counts processors; the master occupies node 0.
		return tsp.Run(spec.Sys, spec.Nodes-1, cfg)
	},
	"sor": func(spec ObserveSpec, c *obs.Collector) (apps.Result, error) {
		cfg := sor.DefaultConfig()
		if spec.Quick {
			cfg = sor.Config{Rows: 66, Cols: 16, Iters: 30, Eps: 1e-9, Seed: 11}
		}
		cfg.Observe = c.Attach
		return sor.Run(spec.Sys, spec.Nodes, cfg)
	},
	"water": func(spec ObserveSpec, c *obs.Collector) (apps.Result, error) {
		cfg := water.DefaultConfig()
		cfg.Seed = 103
		if spec.Quick {
			cfg.Mols = 64
		}
		cfg.Observe = c.Attach
		return water.Run(spec.Sys, spec.Nodes, false, cfg)
	},
	"sched": func(spec ObserveSpec, c *obs.Collector) (apps.Result, error) {
		// The control plane always runs ORPC; spec.Sys is ignored. The
		// collector doubles as the control-plane probe, so the trace grows
		// a "sched" track of heartbeats, outages, and lease spans.
		cfg := sched.Config{Jobs: 16, Seed: 104, Observe: c.Attach, Probe: c}
		if spec.Quick {
			cfg.Jobs = 8
		}
		res, _, err := sched.Run(spec.Nodes-1, cfg)
		return res, err
	},
	"kv": func(spec ObserveSpec, c *obs.Collector) (apps.Result, error) {
		// -p counts total nodes; a quarter (at least one) serve, the rest
		// are clients. The collector doubles as the service probe, so the
		// trace grows a "kv" track of sheds and failed arrivals and the
		// metrics report carries the SLO latency histogram.
		servers := spec.Nodes / 4
		if servers < 1 {
			servers = 1
		}
		cfg := kv.Config{
			System:  spec.Sys,
			Seed:    105,
			Servers: servers,
			Clients: spec.Nodes - servers,
			Cores:   Cores,
			Observe: c.Attach,
			Probe:   c,
		}
		if spec.Quick {
			cfg.Duration = sim.Micros(5000)
		}
		res, _, err := kv.Run(cfg)
		return res, err
	},
}

// RunObserved runs one application with an obs.Collector attached and
// returns the collector (holding whichever sinks opts selected) alongside
// the application result.
func RunObserved(spec ObserveSpec, opts obs.Options) (*obs.Collector, apps.Result, error) {
	run, ok := observedRuns[spec.App]
	if !ok {
		return nil, apps.Result{}, fmt.Errorf("unknown app %q (have %v)", spec.App, ObservedApps())
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 8
	}
	if (spec.App == "tsp" || spec.App == "sched" || spec.App == "kv") && spec.Nodes < 2 {
		return nil, apps.Result{}, fmt.Errorf("%s needs at least 2 nodes (a master and a worker)", spec.App)
	}
	c := obs.New(opts)
	res, err := run(spec, c)
	if err != nil {
		return nil, apps.Result{}, err
	}
	return c, res, nil
}
