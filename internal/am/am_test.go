package am

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

func universe(t *testing.T, n int, mutate func(*cm5.CostModel)) *Universe {
	t.Helper()
	eng := sim.New(11)
	cost := cm5.DefaultCostModel()
	if mutate != nil {
		mutate(&cost)
	}
	u := NewUniverse(eng, n, cost)
	t.Cleanup(eng.Shutdown)
	return u
}

func TestPingPong(t *testing.T) {
	u := universe(t, 2, nil)
	var pong HandlerID
	var gotReply bool
	var replyVal uint64
	ping := u.Register("ping", func(c threads.Ctx, pkt *cm5.Packet) {
		// Reply with the received value incremented.
		u.Endpoint(c.Node().ID()).Send(c, pkt.Src, pong, [4]uint64{pkt.W0 + 1}, nil)
	})
	pong = u.Register("pong", func(c threads.Ctx, pkt *cm5.Packet) {
		gotReply = true
		replyVal = pkt.W0
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return // node 1 serves from its idle loop
		}
		u.Endpoint(0).Send(c, 1, ping, [4]uint64{41}, nil)
		for !gotReply {
			u.Endpoint(0).Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gotReply || replyVal != 42 {
		t.Fatalf("reply = %v %d, want 42", gotReply, replyVal)
	}
}

// TestNullAMRoundTripTime anchors the Table 1 AM baseline: a null
// round trip should land near 13 microseconds.
func TestNullAMRoundTripTime(t *testing.T) {
	u := universe(t, 2, nil)
	var reply HandlerID
	done := false
	req := u.Register("req", func(c threads.Ctx, pkt *cm5.Packet) {
		u.Endpoint(c.Node().ID()).Send(c, pkt.Src, reply, [4]uint64{}, nil)
	})
	reply = u.Register("reply", func(c threads.Ctx, pkt *cm5.Packet) { done = true })
	var rt sim.Duration
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		start := c.P.Now()
		u.Endpoint(0).Send(c, 1, req, [4]uint64{}, nil)
		for !done {
			u.Endpoint(0).Poll(c)
		}
		rt = c.P.Now().Sub(start)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt < sim.Micros(9) || rt > sim.Micros(17) {
		t.Fatalf("null AM round trip = %v, want ~13us", rt)
	}
}

func TestPayloadDelivery(t *testing.T) {
	u := universe(t, 2, nil)
	var got []byte
	h := u.Register("data", func(c threads.Ctx, pkt *cm5.Packet) {
		got = append([]byte(nil), pkt.Payload...)
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		u.Endpoint(0).Send(c, 1, h, [4]uint64{}, []byte("0123456789abcdef"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456789abcdef" {
		t.Fatalf("payload = %q", got)
	}
}

func TestBulkDelivery(t *testing.T) {
	u := universe(t, 2, nil)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 251)
	}
	var got []byte
	h := u.Register("bulk", func(c threads.Ctx, pkt *cm5.Packet) {
		got = pkt.Payload
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		u.Endpoint(0).SendBulk(c, 1, h, [4]uint64{}, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096 || got[4095] != byte(4095%251) {
		t.Fatalf("bulk data corrupted (len %d)", len(got))
	}
	if u.Stats().BulkSends != 1 {
		t.Fatalf("BulkSends = %d", u.Stats().BulkSends)
	}
}

// TestSendDrainsWhenFull: with a tiny NIC queue and a slow receiver, Send
// must keep retrying (draining its own input) rather than deadlocking.
func TestSendDrainsWhenFull(t *testing.T) {
	u := universe(t, 2, func(c *cm5.CostModel) { c.NICQueueCap = 2 })
	received := 0
	h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) { received++ })
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			for i := 0; i < 20; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			return
		}
		// Node 1: busy-compute, polling rarely, so node 0 hits a full queue.
		for received < 20 {
			c.P.Charge(sim.Micros(50))
			ep.PollAll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if received != 20 {
		t.Fatalf("received = %d, want 20", received)
	}
	if u.Stats().DrainSpins == 0 {
		t.Fatal("expected drain spins against the full queue")
	}
}

// TestCrossTraffic: two nodes flooding each other with tiny queues must
// not deadlock, because Send drains while retrying.
func TestCrossTraffic(t *testing.T) {
	u := universe(t, 2, func(c *cm5.CostModel) { c.NICQueueCap = 2 })
	counts := [2]int{}
	h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) {
		counts[c.Node().ID()]++
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		for i := 0; i < 50; i++ {
			ep.Send(c, 1-node, h, [4]uint64{}, nil)
		}
		for counts[node] < 50 {
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHandlerCannotBlock(t *testing.T) {
	u := universe(t, 2, nil)
	mu := threads.NewMutex(u.Scheduler(1))
	panicked := false
	h := u.Register("blocker", func(c threads.Ctx, pkt *cm5.Packet) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		mu.Lock(c) // mutex is held by node 1's main: must panic, not block
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 1 {
			mu.Lock(c)
			for !panicked {
				u.Endpoint(1).Poll(c)
			}
			mu.Unlock(c)
			return
		}
		u.Endpoint(0).Send(c, 1, h, [4]uint64{}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("handler blocking on held mutex did not panic")
	}
}

func TestSPMDDetectsDeadlock(t *testing.T) {
	u := universe(t, 2, nil)
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			// Waits forever: nobody ever resumes us.
			c.S.Block(c)
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestHandlerRunsOnIdleLoopWhenMainBlocked(t *testing.T) {
	u := universe(t, 2, nil)
	served := false
	h := u.Register("serve", func(c threads.Ctx, pkt *cm5.Packet) {
		if !c.IsHandler() {
			t.Error("handler context has a thread")
		}
		served = true
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 1 {
			return // main finishes; idle loop polls for the message
		}
		c.P.Charge(sim.Micros(5))
		u.Endpoint(0).Send(c, 1, h, [4]uint64{}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Fatal("idle loop did not dispatch the handler")
	}
}

func TestUniverseDeterminism(t *testing.T) {
	runOnce := func() (sim.Time, uint64) {
		eng := sim.New(21)
		u := NewUniverse(eng, 4, cm5.DefaultCostModel())
		defer eng.Shutdown()
		counts := make([]int, 4)
		var h HandlerID
		h = u.Register("relay", func(c threads.Ctx, pkt *cm5.Packet) {
			me := c.Node().ID()
			counts[me]++
			if pkt.W0 > 0 {
				u.Endpoint(me).Send(c, int(pkt.W1), h, [4]uint64{pkt.W0 - 1, uint64(eng.Rand().Intn(4))}, nil)
			}
		})
		end, err := u.SPMD(func(c threads.Ctx, node int) {
			u.Endpoint(node).Send(c, (node+1)%4, h, [4]uint64{20, uint64((node + 2) % 4)}, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		return end, u.Stats().HandlersRun
	}
	e1, h1 := runOnce()
	e2, h2 := runOnce()
	if e1 != e2 || h1 != h2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, h1, e2, h2)
	}
}
