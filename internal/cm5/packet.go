package cm5

import "fmt"

// PacketKind distinguishes the two transport paths of the machine.
type PacketKind uint8

const (
	// Small is a CM-5 Active Message packet: a handler index, four header
	// words, and at most CostModel.MaxPayload bytes of payload.
	Small PacketKind = iota
	// Bulk is a block transfer (the scopy primitive): arbitrary payload,
	// pre-allocated receive port, higher fixed cost.
	Bulk
)

func (k PacketKind) String() string {
	switch k {
	case Small:
		return "small"
	case Bulk:
		return "bulk"
	default:
		return fmt.Sprintf("PacketKind(%d)", uint8(k))
	}
}

// Packet is a unit of data-network traffic. The Handler field selects the
// receiver-side dispatch routine; the machine model itself never interprets
// it. W0..W3 are the four header words of a CM-5 Active Message; Payload
// carries marshaled arguments (small) or the block-transfer body (bulk).
//
// Packets travelling the hot path come from the owning Machine's pool
// (AllocPacket) and return to it after their handler runs (ReleasePacket).
// Only the struct is recycled: Payload ownership transfers to the receiver
// at send time, and the buffer is never reused by the pool, so handlers
// may retain pkt.Payload — but never the *Packet itself — past return.
// Packets built by hand (tests, transports) have pooled == false and are
// ignored by ReleasePacket.
type Packet struct {
	Src, Dst int
	Kind     PacketKind
	Handler  int
	W0, W1   uint64
	W2, W3   uint64
	Payload  []byte

	poolNext *Packet // machine free-list link
	refs     int32   // outstanding deliveries (2 when the network duplicates)
	pooled   bool    // came from Machine.AllocPacket
}

// Size returns the payload length in bytes.
func (p *Packet) Size() int { return len(p.Payload) }

func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d h=%d len=%d", p.Kind, p.Src, p.Dst, p.Handler, len(p.Payload))
}
