package obs

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/sim"
)

// traceBuilder accumulates Chrome trace-event JSON (the format Perfetto
// and chrome://tracing load). One process (pid) per node, with a fixed
// set of named thread tracks per node; events are appended in the order
// the kernel produced them, which is deterministic for a given seed, and
// all numbers are rendered with integer arithmetic — so the final JSON is
// byte-identical run to run.
type traceBuilder struct {
	meta   bytes.Buffer // metadata ("M") events, emitted at attach time
	events bytes.Buffer // everything else, in kernel order
}

// The per-node thread tracks. Chrome trace "tid"s are just track keys;
// thread_name metadata gives them human names.
const (
	tidCPU     = 1 // virtual-CPU burn spans, one per completed charge
	tidHandler = 2 // Active Message handler runs
	tidOAM     = 3 // optimistic dispatches and aborts
	tidRPC     = 4 // client-side call lifecycles
	tidNet     = 5 // packet flights, losses, backpressure
	tidThreads = 6 // thread lifetimes
)

var tidNames = [...]struct {
	tid  int
	name string
}{
	{tidCPU, "cpu"},
	{tidHandler, "handlers"},
	{tidOAM, "oam"},
	{tidRPC, "rpc"},
	{tidNet, "net"},
	{tidThreads, "threads"},
}

// tsStr renders a virtual timestamp as fractional microseconds (the
// trace-event unit) using integer arithmetic only.
func tsStr(t sim.Time) string {
	ns := int64(t)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// durStr renders a duration in the same fixed-point microsecond form.
func durStr(d sim.Duration) string { return tsStr(sim.Time(d)) }

// jsonString escapes s as a JSON string literal (without quotes). Names
// here are short ASCII identifiers; the escape covers the general case
// anyway.
func jsonString(s string) string {
	var b bytes.Buffer
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch == '"' || ch == '\\':
			b.WriteByte('\\')
			b.WriteByte(ch)
		case ch < 0x20:
			fmt.Fprintf(&b, "\\u%04x", ch)
		default:
			b.WriteByte(ch)
		}
	}
	return b.String()
}

// add begins one event object in buf, handling the separating comma.
func (tb *traceBuilder) add(buf *bytes.Buffer) *bytes.Buffer {
	if buf.Len() > 0 {
		buf.WriteString(",\n")
	}
	return buf
}

// procMeta names a node's process track.
func (tb *traceBuilder) procMeta(pid int, name string) {
	fmt.Fprintf(tb.add(&tb.meta),
		`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}`, pid, jsonString(name))
}

// threadMeta names one track of a node.
func (tb *traceBuilder) threadMeta(pid, tid int, name string) {
	fmt.Fprintf(tb.add(&tb.meta),
		`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
		pid, tid, jsonString(name))
}

// span emits a complete ("X") slice. args, when non-empty, must be a
// complete JSON object literal.
func (tb *traceBuilder) span(name, cat string, start sim.Time, dur sim.Duration, pid, tid int, args string) {
	b := tb.add(&tb.events)
	fmt.Fprintf(b, `{"name":"%s","cat":"%s","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d`,
		jsonString(name), cat, tsStr(start), durStr(dur), pid, tid)
	if args != "" {
		fmt.Fprintf(b, `,"args":%s`, args)
	}
	b.WriteByte('}')
}

// instant emits an instant ("i") event.
func (tb *traceBuilder) instant(name, cat string, t sim.Time, pid, tid int, args string) {
	b := tb.add(&tb.events)
	fmt.Fprintf(b, `{"name":"%s","cat":"%s","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d`,
		jsonString(name), cat, tsStr(t), pid, tid)
	if args != "" {
		fmt.Fprintf(b, `,"args":%s`, args)
	}
	b.WriteByte('}')
}

// asyncBegin/asyncEnd emit an async ("b"/"e") pair; events with the same
// cat and id form one span, which may overlap others on the same track
// (packet flights, thread lifetimes).
func (tb *traceBuilder) asyncBegin(name, cat string, t sim.Time, pid, tid int, id uint64, args string) {
	b := tb.add(&tb.events)
	fmt.Fprintf(b, `{"name":"%s","cat":"%s","ph":"b","id":%d,"ts":%s,"pid":%d,"tid":%d`,
		jsonString(name), cat, id, tsStr(t), pid, tid)
	if args != "" {
		fmt.Fprintf(b, `,"args":%s`, args)
	}
	b.WriteByte('}')
}

func (tb *traceBuilder) asyncEnd(name, cat string, t sim.Time, pid, tid int, id uint64) {
	fmt.Fprintf(tb.add(&tb.events),
		`{"name":"%s","cat":"%s","ph":"e","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
		jsonString(name), cat, id, tsStr(t), pid, tid)
}

// counter emits a counter ("C") sample; Perfetto renders these as a
// per-process counter track.
func (tb *traceBuilder) counter(name string, t sim.Time, pid int, value int64) {
	fmt.Fprintf(tb.add(&tb.events),
		`{"name":"%s","ph":"C","ts":%s,"pid":%d,"args":{"value":%d}}`,
		jsonString(name), tsStr(t), pid, value)
}

// writeDoc assembles the final JSON document.
func (tb *traceBuilder) writeDoc(w io.Writer) error {
	var err error
	write := func(s string) {
		if err == nil {
			_, err = io.WriteString(w, s)
		}
	}
	write("{\"traceEvents\":[\n")
	write(tb.meta.String())
	if tb.meta.Len() > 0 && tb.events.Len() > 0 {
		write(",\n")
	}
	write(tb.events.String())
	write("\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}
