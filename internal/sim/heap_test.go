package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapOrdering pushes events in random order and verifies they pop in
// (time, seq) order.
func TestHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h eventHeap
	type key struct {
		at  Time
		seq uint64
	}
	var keys []key
	for i := 0; i < 1000; i++ {
		k := key{at: Time(rng.Intn(50)), seq: uint64(i)}
		keys = append(keys, k)
		h.push(&event{at: k.at, seq: k.seq})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].at != keys[j].at {
			return keys[i].at < keys[j].at
		}
		return keys[i].seq < keys[j].seq
	})
	for i, want := range keys {
		got := h.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop %d: got (%v,%d), want (%v,%d)", i, got.at, got.seq, want.at, want.seq)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining: %d", h.len())
	}
}

// TestHeapProperty is a property-based check: for any sequence of pushes,
// repeated pops yield a non-decreasing (time, seq) sequence.
func TestHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var h eventHeap
		for i, v := range times {
			h.push(&event{at: Time(v), seq: uint64(i)})
		}
		prevAt, prevSeq := Time(-1), uint64(0)
		for h.len() > 0 {
			e := h.pop()
			if e.at < prevAt || (e.at == prevAt && e.seq <= prevSeq && prevAt >= 0) {
				return false
			}
			prevAt, prevSeq = e.at, e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapInterleavedPushPop interleaves pushes with pops, as the engine
// does, and checks global ordering of the popped prefix at each step.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	var seq uint64
	last := Time(-1)
	for step := 0; step < 5000; step++ {
		if h.len() == 0 || rng.Intn(2) == 0 {
			at := last
			if at < 0 {
				at = 0
			}
			at += Time(rng.Intn(10))
			seq++
			h.push(&event{at: at, seq: seq})
			continue
		}
		e := h.pop()
		if e.at < last {
			t.Fatalf("time went backwards: %v after %v", e.at, last)
		}
		last = e.at
	}
}
