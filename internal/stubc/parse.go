package stubc

import (
	"fmt"
	"strings"
)

// Type is an IDL wire type.
type Type string

// The IDL type table: wire type → (Go type, Enc method, Dec method).
const (
	TBool   Type = "bool"
	TI32    Type = "int32"
	TI64    Type = "int64"
	TU32    Type = "uint32"
	TU64    Type = "uint64"
	TF32    Type = "float32"
	TF64    Type = "float64"
	TBytes  Type = "bytes"
	TString Type = "string"
	TF64s   Type = "f64s"
	TI32s   Type = "i32s"
	TU64s   Type = "u64s"
)

type typeInfo struct {
	goType string
	method string // Enc/Dec method name
	fixed  int    // wire bytes if fixed-size, 0 for buffers
}

var types = map[Type]typeInfo{
	TBool:   {"bool", "Bool", 1},
	TI32:    {"int32", "I32", 4},
	TI64:    {"int64", "I64", 8},
	TU32:    {"uint32", "U32", 4},
	TU64:    {"uint64", "U64", 8},
	TF32:    {"float32", "F32", 4},
	TF64:    {"float64", "F64", 8},
	TBytes:  {"[]byte", "Buf", 0},
	TString: {"string", "String", 0},
	TF64s:   {"[]float64", "F64s", 0},
	TI32s:   {"[]int32", "I32s", 0},
	TU64s:   {"[]uint64", "U64s", 0},
}

// Param is one in or out argument.
type Param struct {
	Name string
	Type Type
}

// ProcDecl is one rpc declaration.
type ProcDecl struct {
	Name  string
	Async bool
	Ins   []Param
	Outs  []Param
	Line  int
}

// StructDecl is a user-defined record type usable as a parameter type —
// the struct marshaling the paper's prototype left out ("doing so would
// be straightforward"). Fields may be any built-in type but not other
// structs.
type StructDecl struct {
	Name   string
	Fields []Param
	Line   int
}

// CompatDecl is one `compatible A B [when disjoint(param)]` clause: the
// two named procedures may execute concurrently on one node —
// unconditionally, or only when their key parameters differ. Compiled
// into the service's oam.CompatTable by the generator.
type CompatDecl struct {
	A, B     string
	Disjoint bool
	KeyParam string // set when Disjoint
	Line     int
}

// File is a parsed IDL file.
type File struct {
	Package string
	Structs []StructDecl
	Procs   []ProcDecl
	Compat  []CompatDecl
}

// procByName finds a declared procedure.
func (f *File) procByName(n string) *ProcDecl {
	for i := range f.Procs {
		if f.Procs[i].Name == n {
			return &f.Procs[i]
		}
	}
	return nil
}

// structByName finds a declared struct.
func (f *File) structByName(n Type) *StructDecl {
	for i := range f.Structs {
		if Type(f.Structs[i].Name) == n {
			return &f.Structs[i]
		}
	}
	return nil
}

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses IDL source. Structs must be declared before the first
// procedure that uses them.
func Parse(src string) (*File, error) {
	f := &File{}
	names := map[string]int{}
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "package "):
			if f.Package != "" {
				return nil, errf(line, "duplicate package declaration")
			}
			f.Package = strings.TrimSpace(strings.TrimPrefix(text, "package "))
			if !isIdent(f.Package) {
				return nil, errf(line, "bad package name %q", f.Package)
			}
		case strings.HasPrefix(text, "struct "):
			if f.Package == "" {
				return nil, errf(line, "struct declaration before package")
			}
			s, err := parseStruct(f, text, line)
			if err != nil {
				return nil, err
			}
			if prev, dup := names[s.Name]; dup {
				return nil, errf(line, "name %s already declared on line %d", s.Name, prev)
			}
			names[s.Name] = line
			f.Structs = append(f.Structs, s)
		case strings.HasPrefix(text, "rpc "), strings.HasPrefix(text, "async rpc "):
			if f.Package == "" {
				return nil, errf(line, "rpc declaration before package")
			}
			p, err := parseProc(f, text, line)
			if err != nil {
				return nil, err
			}
			if prev, dup := names[p.Name]; dup {
				return nil, errf(line, "name %s already declared on line %d", p.Name, prev)
			}
			names[p.Name] = line
			f.Procs = append(f.Procs, p)
		case strings.HasPrefix(text, "compatible "):
			if f.Package == "" {
				return nil, errf(line, "compatible clause before package")
			}
			cd, err := parseCompat(f, text, line)
			if err != nil {
				return nil, err
			}
			f.Compat = append(f.Compat, cd)
		default:
			return nil, errf(line, "cannot parse %q", text)
		}
	}
	if f.Package == "" {
		return nil, errf(0, "missing package declaration")
	}
	if len(f.Procs) == 0 {
		return nil, errf(0, "no rpc declarations")
	}
	return f, nil
}

// parseStruct parses `struct Name { field type, field type }`.
func parseStruct(f *File, text string, line int) (StructDecl, error) {
	s := StructDecl{Line: line}
	rest := strings.TrimPrefix(text, "struct ")
	open := strings.IndexByte(rest, '{')
	if open < 0 || !strings.HasSuffix(rest, "}") {
		return s, errf(line, "struct declaration must be `struct Name { field type, ... }`")
	}
	s.Name = strings.TrimSpace(rest[:open])
	if !isExportedIdent(s.Name) {
		return s, errf(line, "struct name %q must be an exported Go identifier", s.Name)
	}
	if _, isBuiltin := types[Type(s.Name)]; isBuiltin {
		return s, errf(line, "struct name %q collides with a built-in type", s.Name)
	}
	fields, err := parseParams(f, rest[open+1:len(rest)-1], line)
	if err != nil {
		return s, err
	}
	if len(fields) == 0 {
		return s, errf(line, "struct %s has no fields", s.Name)
	}
	seen := map[string]bool{}
	for _, fd := range fields {
		if seen[fd.Name] {
			return s, errf(line, "duplicate field %q in struct %s", fd.Name, s.Name)
		}
		seen[fd.Name] = true
		if _, builtin := types[fd.Type]; !builtin {
			return s, errf(line, "struct field %s.%s: nested struct types are not supported", s.Name, fd.Name)
		}
	}
	s.Fields = fields
	return s, nil
}

func parseProc(f *File, text string, line int) (ProcDecl, error) {
	p := ProcDecl{Line: line}
	rest := text
	if strings.HasPrefix(rest, "async ") {
		p.Async = true
		rest = strings.TrimPrefix(rest, "async ")
	}
	rest = strings.TrimPrefix(rest, "rpc ")
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return p, errf(line, "missing ( in rpc declaration")
	}
	p.Name = strings.TrimSpace(rest[:open])
	if !isExportedIdent(p.Name) {
		return p, errf(line, "procedure name %q must be an exported Go identifier", p.Name)
	}
	rest = rest[open+1:]
	closeIdx := strings.IndexByte(rest, ')')
	if closeIdx < 0 {
		return p, errf(line, "missing ) in rpc declaration")
	}
	ins, err := parseParams(f, rest[:closeIdx], line)
	if err != nil {
		return p, err
	}
	p.Ins = ins
	rest = strings.TrimSpace(rest[closeIdx+1:])
	if rest != "" {
		if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
			return p, errf(line, "malformed result list %q", rest)
		}
		outs, err := parseParams(f, rest[1:len(rest)-1], line)
		if err != nil {
			return p, err
		}
		p.Outs = outs
	}
	if p.Async && len(p.Outs) > 0 {
		return p, errf(line, "async procedure %s cannot have results", p.Name)
	}
	seen := map[string]bool{}
	for _, prm := range append(append([]Param{}, p.Ins...), p.Outs...) {
		if seen[prm.Name] {
			return p, errf(line, "duplicate parameter name %q", prm.Name)
		}
		seen[prm.Name] = true
	}
	return p, nil
}

// integerKeyType reports whether t can carry a disjointness key (the
// generated extractor widens it to uint64).
func integerKeyType(t Type) bool {
	switch t {
	case TI32, TI64, TU32, TU64:
		return true
	}
	return false
}

// parseCompat parses `compatible A B [when disjoint(param)]`. Both
// procedures must already be declared, so clauses follow the rpc lines
// they reference.
func parseCompat(f *File, text string, line int) (CompatDecl, error) {
	cd := CompatDecl{Line: line}
	fields := strings.Fields(strings.TrimPrefix(text, "compatible "))
	if len(fields) != 2 && len(fields) != 4 {
		return cd, errf(line, "compatible clause must be `compatible A B [when disjoint(param)]`")
	}
	cd.A, cd.B = fields[0], fields[1]
	var procs [2]*ProcDecl
	for i, n := range []string{cd.A, cd.B} {
		p := f.procByName(n)
		if p == nil {
			return cd, errf(line, "compatible clause names unknown procedure %q (clauses must follow the rpc declarations they reference)", n)
		}
		if p.Async {
			return cd, errf(line, "async procedure %s cannot appear in a compatible clause", n)
		}
		procs[i] = p
	}
	if len(fields) == 4 {
		if fields[2] != "when" {
			return cd, errf(line, "expected `when`, got %q", fields[2])
		}
		expr := fields[3]
		if !strings.HasPrefix(expr, "disjoint(") || !strings.HasSuffix(expr, ")") {
			return cd, errf(line, "bad when expression %q: only disjoint(param) is supported", expr)
		}
		key := expr[len("disjoint(") : len(expr)-1]
		if !isIdent(key) {
			return cd, errf(line, "bad disjoint parameter name %q", key)
		}
		for _, p := range procs {
			var prm *Param
			for j := range p.Ins {
				if p.Ins[j].Name == key {
					prm = &p.Ins[j]
					break
				}
			}
			if prm == nil {
				return cd, errf(line, "disjoint key %q is not an input of %s", key, p.Name)
			}
			if !integerKeyType(prm.Type) {
				return cd, errf(line, "disjoint key %s.%s has type %s; keys must be int32, int64, uint32, or uint64", p.Name, key, prm.Type)
			}
		}
		cd.Disjoint, cd.KeyParam = true, key
	}
	for i := range f.Compat {
		prev := &f.Compat[i]
		samePair := (prev.A == cd.A && prev.B == cd.B) || (prev.A == cd.B && prev.B == cd.A)
		if samePair {
			if prev.Disjoint != cd.Disjoint || prev.KeyParam != cd.KeyParam {
				return cd, errf(line, "compatible %s %s contradicts the clause on line %d", cd.A, cd.B, prev.Line)
			}
			return cd, errf(line, "duplicate compatible clause for %s %s (first on line %d)", cd.A, cd.B, prev.Line)
		}
		if cd.Disjoint && prev.Disjoint && prev.KeyParam != cd.KeyParam {
			for _, n := range []string{cd.A, cd.B} {
				if prev.A == n || prev.B == n {
					return cd, errf(line, "procedure %s already keyed by %q on line %d; a procedure has exactly one disjoint key", n, prev.KeyParam, prev.Line)
				}
			}
		}
	}
	return cd, nil
}

// parseParams parses a comma-separated `name type` list. f, when non-nil,
// supplies declared struct types in addition to the built-ins.
func parseParams(f *File, s string, line int) ([]Param, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Param
	for _, piece := range strings.Split(s, ",") {
		fields := strings.Fields(piece)
		if len(fields) != 2 {
			return nil, errf(line, "parameter %q must be `name type`", strings.TrimSpace(piece))
		}
		name, typ := fields[0], Type(fields[1])
		if !isIdent(name) {
			return nil, errf(line, "bad parameter name %q", name)
		}
		if _, ok := types[typ]; !ok {
			if f == nil || f.structByName(typ) == nil {
				return nil, errf(line, "unknown type %q (have bool,int32,int64,uint32,uint64,float32,float64,bytes,string,f64s,i32s,u64s, or a declared struct)", typ)
			}
		}
		out = append(out, Param{Name: name, Type: typ})
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if i == 0 && !alpha {
			return false
		}
		if !alpha && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

func isExportedIdent(s string) bool {
	return isIdent(s) && s[0] >= 'A' && s[0] <= 'Z'
}
