// Command oamlab regenerates every table and figure of the paper's
// evaluation (section 4) on the simulated machine:
//
//	oamlab [-quick] [-maxp N] [-csv] [-par N] [-shards N] [-optimistic] [-cores K] [-cpuprofile F] [-memprofile F] <experiment>...
//
// Run `oamlab -help` for the experiment list; it is generated from the
// same command table that drives dispatch, so it cannot go stale.
//
// sched runs the cluster-scheduler control plane (internal/apps/sched)
// over a fault-mix x lease-timeout x heartbeat-period grid and
// replay-checks every cell's event record against the control plane's
// safety and liveness invariants (placed-exactly-once, monotonic lease
// epochs, no placement on dead agents, all jobs completed).
//
// kv runs the sharded key-value/lock service (internal/apps/kv) under
// open-loop load through the saturation knee, comparing AM, ORPC and
// TRPC goodput and SLO latency, and replay-checks every cell's lease
// record and per-client arrival ledger.
//
// Observability subcommands (see internal/obs):
//
//	oamlab [-quick] trace <app> [-p N] [-sys am|orpc|trpc] [-o file]
//	oamlab [-quick] metrics <app> [-p N] [-sys am|orpc|trpc] [-top N]
//
// trace records one application run (triangle, tsp, sor, water, sched,
// kv) and writes a Chrome trace-event JSON timeline — load it in
// Perfetto (https://ui.perfetto.dev) — with one process per node and
// tracks for cpu burns, handler runs, optimistic dispatches/aborts, RPC
// calls, packet flights and thread lifetimes. metrics prints the
// per-node counter/gauge/histogram registry and a virtual-time profile
// of the same run. Both are deterministic: the same seed yields
// byte-identical output.
//
// -quick shrinks the problem sizes so the suite runs in seconds; the
// default runs the paper's sizes (the Triangle figure alone simulates
// over a million RPCs per configuration and takes minutes).
//
// -par sets how many experiment cells run concurrently (default: all
// CPUs). Each cell owns a private simulation engine and results merge in
// a fixed order, so the output is byte-identical at any setting; only
// wall-clock time changes.
//
// -shards runs every simulation engine sharded: each run's nodes are
// partitioned across N shards (-1 = one per CPU) that execute in
// parallel over lockstep virtual-time windows. -optimistic switches the
// sharded engines to speculative commit spans: shards run past the
// window edge and a GVT-style resolve commits whole spans, replacing the
// lockstep barrier. Results are bit-identical
// to the sequential kernel at any value of either flag; the harness automatically
// shrinks -par so cells x shards never exceeds GOMAXPROCS. The observed
// trace/metrics subcommands always run sequentially (their probes need
// the single-threaded kernel).
//
// -cores gives every simulated node K cores: services that declare a
// compatibility matrix (kv) dispatch compatible handlers concurrently in
// virtual time (multiactive OAM). Simulated cores cost no host CPUs.
// Results are bit-identical across -shards and -optimistic for a fixed
// -cores value.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments, for finding host-side hot spots in the simulation kernel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

// runCtx is what one experiment's runner gets: the scale and output
// plumbing of this invocation.
type runCtx struct {
	scale    exp.Scale
	benchout string
	stderr   io.Writer
	emit     func(*exp.Table, error)
	svg      func(base, title string, rows []exp.FigRow)
	fail     func(format string, args ...any)
	failed   func() bool
}

// command is one row of the subcommand table. The table is the single
// source of truth: dispatch, the "all" and "micro" groups, the
// unknown-name diagnostic and the -help listing are all generated from
// it, so registering an experiment is one entry here.
type command struct {
	name  string
	about string
	all   bool // member of the "all" group
	micro bool // member of the "micro" group
	run   func(*runCtx)
}

var commands = []command{
	{"table1", "Table 1: primitive operation costs", true, true,
		func(rc *runCtx) { rc.emit(exp.Table1Table(), nil) }},
	{"bulk", "bulk-transfer costs", true, true,
		func(rc *runCtx) { rc.emit(exp.BulkTable(), nil) }},
	{"abortcost", "abort and undo-log costs", true, true,
		func(rc *runCtx) { rc.emit(exp.AbortCostTable(), nil) }},
	{"fig1", "Figure 1: Triangle puzzle speedup", true, false,
		func(rc *runCtx) {
			t, rows, err := exp.Fig1Triangle(rc.scale)
			rc.emit(t, err)
			rc.svg("fig1", "Figure 1: Triangle puzzle", rows)
		}},
	{"fig2", "Figure 2: TSP speedup", true, false,
		func(rc *runCtx) {
			t, rows, err := exp.Fig2TSP(rc.scale)
			rc.emit(t, err)
			rc.svg("fig2", "Figure 2: TSP", rows)
		}},
	{"table2", "Table 2: OAM success rates", true, false,
		func(rc *runCtx) { rc.emit(exp.Table2(rc.scale)) }},
	{"fig3", "Figure 3: SOR speedup", true, false,
		func(rc *runCtx) {
			t, rows, err := exp.Fig3SOR(rc.scale)
			rc.emit(t, err)
			rc.svg("fig3", "Figure 3: SOR", rows)
		}},
	{"fig4", "Figure 4: Water speedup", true, false,
		func(rc *runCtx) {
			t, rows, err := exp.Fig4Water(rc.scale)
			rc.emit(t, err)
			rc.svg("fig4", "Figure 4: Water (per iteration)", rows)
		}},
	{"table3", "Table 3: application OAM statistics", true, false,
		func(rc *runCtx) { rc.emit(exp.Table3(rc.scale)) }},
	{"ablation", "scheduling-strategy ablation", true, false,
		func(rc *runCtx) { rc.emit(exp.AblationTable(), nil) }},
	{"appablation", "per-application strategy ablation", true, false,
		func(rc *runCtx) { rc.emit(exp.AppAblationTable(rc.scale.Quick)) }},
	{"schedpolicy", "promoted-thread scheduling policies", true, false,
		func(rc *runCtx) { rc.emit(exp.SchedPolicyTable(), nil) }},
	{"budget", "handler-budget sweep", true, false,
		func(rc *runCtx) { rc.emit(exp.BudgetTable(), nil) }},
	{"buffering", "message-buffering strategies", true, false,
		func(rc *runCtx) { rc.emit(exp.BufferingTable(), nil) }},
	{"interrupts", "interrupt- vs polling-driven delivery", true, false,
		func(rc *runCtx) { rc.emit(exp.InterruptsTable(), nil) }},
	{"sorsizes", "SOR problem-size sweep", true, false,
		func(rc *runCtx) { rc.emit(exp.SORSizesTable(rc.scale.Quick)) }},
	{"chaos", "fault-injection sweep with per-node recovery counters", true, false,
		func(rc *runCtx) {
			rc.emit(exp.ChaosTable(rc.scale))
			rc.emit(exp.ChaosNodeTable(rc.scale))
		}},
	{"sched", "cluster-scheduler control plane under chaos", true, false,
		func(rc *runCtx) { rc.emit(exp.SchedTable(rc.scale)) }},
	{"kv", "sharded key-value service under open-loop load", true, false,
		func(rc *runCtx) { rc.emit(exp.KVTable(rc.scale)) }},
	{"kvmulti", "multiactive kv dispatch: goodput and p999 vs simulated cores", true, false,
		func(rc *runCtx) { rc.emit(exp.KVMultiactiveTable(rc.scale.Quick)) }},
	{"bench", "host-performance report (writes -benchout JSON)", false, false,
		func(rc *runCtx) {
			res, err := exp.Bench(rc.scale)
			if err != nil {
				rc.emit(nil, err)
				return
			}
			rc.emit(res.Table(), nil)
			if res.Warning != "" {
				fmt.Fprintf(rc.stderr, "oamlab: warning: %s\n", res.Warning)
			}
			if !rc.failed() && rc.benchout != "" {
				if err := res.WriteJSON(rc.benchout); err != nil {
					rc.fail("bench: %v", err)
					return
				}
				fmt.Fprintf(rc.stderr, "[bench report written to %s]\n", rc.benchout)
			}
		}},
	{"micro", "group: every microbenchmark table", false, false, nil},
	{"all", "group: every experiment", false, false, nil},
	{"trace", "record one observed app run as a Chrome trace", false, false, nil},
	{"metrics", "print one observed app run's metrics and profile", false, false, nil},
}

// subcommands lists every name the command line accepts, generated from
// the command table for the unknown-name diagnostic.
var subcommands = func() []string {
	names := make([]string, len(commands))
	for i, c := range commands {
		names[i] = c.name
	}
	return names
}()

// findCommand resolves a subcommand name against the table.
func findCommand(name string) *command {
	for i := range commands {
		if commands[i].name == name {
			return &commands[i]
		}
	}
	return nil
}

// group expands a group name ("all", "micro") into its member commands,
// in table order; nil for non-group names.
func group(name string) []*command {
	var out []*command
	for i := range commands {
		c := &commands[i]
		if (name == "all" && c.all) || (name == "micro" && c.micro) {
			out = append(out, c)
		}
	}
	return out
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oamlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "reduced problem sizes")
	maxp := fs.Int("maxp", 0, "cap the largest machine size (0 = experiment default)")
	csv := fs.Bool("csv", false, "emit CSV instead of formatted tables")
	svgdir := fs.String("svgdir", "", "also render figures as SVG into this directory")
	par := fs.Int("par", 0, "concurrent experiment cells (0 = all CPUs, 1 = sequential)")
	shards := fs.Int("shards", 1, "engine shards per run (1 = sequential kernel, -1 = one per CPU)")
	optimistic := fs.Bool("optimistic", false, "sharded engines speculate past window edges (commit spans instead of lockstep windows)")
	cores := fs.Int("cores", 1, "simulated cores per node (>1 enables multiactive dispatch where a compatibility matrix is declared)")
	benchout := fs.String("benchout", "BENCH_kernel.json", "bench: where to write the JSON report")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: oamlab [flags] <experiment>...\n\nexperiments:\n")
		for _, c := range commands {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.name, c.about)
		}
		fmt.Fprintf(stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "oamlab: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "oamlab: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "oamlab: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "oamlab: memprofile: %v\n", err)
			}
		}()
	}

	if *par > 0 {
		exp.Workers = *par
	}
	if *shards != 1 && *shards != 0 {
		exp.Shards = *shards
	}
	exp.Optimistic = *optimistic
	if *cores > 1 {
		exp.Cores = *cores
	}
	names := fs.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}

	// trace/metrics are observed single-app runs with their own flags;
	// they consume the rest of the command line.
	if names[0] == "trace" || names[0] == "metrics" {
		return runObserve(names[0], names[1:], *quick, stdout, stderr)
	}

	code := 0
	rc := &runCtx{
		scale:    exp.Scale{Quick: *quick, MaxP: *maxp},
		benchout: *benchout,
		stderr:   stderr,
		failed:   func() bool { return code != 0 },
	}
	rc.fail = func(format string, args ...any) {
		if code == 0 {
			fmt.Fprintf(stderr, "oamlab: "+format+"\n", args...)
			code = 1
		}
	}
	rc.emit = func(t *exp.Table, err error) {
		if code != 0 {
			return
		}
		if err != nil {
			rc.fail("%v", err)
			return
		}
		if *csv {
			t.CSV(stdout)
			fmt.Fprintln(stdout)
		} else {
			t.Print(stdout)
		}
	}
	rc.svg = func(base, title string, rows []exp.FigRow) {
		if *svgdir == "" || rows == nil || code != 0 {
			return
		}
		if err := exp.WriteFigSVGs(*svgdir, base, title, rows); err != nil {
			rc.fail("svg: %v", err)
			return
		}
		fmt.Fprintf(stderr, "[%s SVGs written to %s]\n", base, *svgdir)
	}

	run := func(c *command) {
		if code != 0 {
			return
		}
		start := time.Now()
		c.run(rc)
		if code == 0 {
			fmt.Fprintf(stderr, "[%s done in %v]\n", c.name, time.Since(start).Round(time.Millisecond))
		}
	}

	for _, name := range names {
		c := findCommand(name)
		switch {
		case c == nil:
			fmt.Fprintf(stderr, "oamlab: unknown experiment %q (subcommands: %s)\n",
				name, strings.Join(subcommands, ", "))
			return 2
		case name == "trace" || name == "metrics":
			fmt.Fprintf(stderr, "oamlab: %s must be the first argument\n", name)
			return 2
		case c.run == nil: // a group entry
			for _, m := range group(name) {
				run(m)
			}
		default:
			run(c)
		}
	}
	return code
}

// runObserve implements the trace and metrics subcommands: run one
// application with an obs.Collector attached and write the selected
// sink.
func runObserve(kind string, args []string, quick bool, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oamlab "+kind, flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := fs.Int("p", 8, "machine size (processors)")
	sysName := fs.String("sys", "orpc", "communication system: am, orpc, trpc")
	out := fs.String("o", "", "trace: output file (default trace_<app>.json)")
	top := fs.Int("top", 30, "metrics: profile rows to print (0 = all)")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(stderr, "oamlab: usage: oamlab [-quick] %s <app> [flags]; apps: %s\n",
			kind, strings.Join(exp.ObservedApps(), ", "))
		return 2
	}
	app := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	sys, err := exp.ParseSystem(*sysName)
	if err != nil {
		fmt.Fprintf(stderr, "oamlab: %v\n", err)
		return 2
	}

	opts := obs.Options{Trace: kind == "trace"}
	if kind == "metrics" {
		opts.Metrics = true
		opts.Profile = true
	}
	start := time.Now()
	c, res, err := exp.RunObserved(exp.ObserveSpec{App: app, Sys: sys, Nodes: *p, Quick: quick}, opts)
	if err != nil {
		fmt.Fprintf(stderr, "oamlab: %s: %v\n", kind, err)
		return 1
	}

	switch kind {
	case "trace":
		path := *out
		if path == "" {
			path = "trace_" + app + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stderr, "oamlab: trace: %v\n", err)
			return 1
		}
		werr := c.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "oamlab: trace: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stderr, "[trace of %s/%v on %d nodes written to %s — open in https://ui.perfetto.dev]\n",
			app, res.System, res.Nodes, path)
	case "metrics":
		if err := c.WriteMetrics(stdout); err != nil {
			fmt.Fprintf(stderr, "oamlab: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
		if err := c.WriteProfile(stdout, *top); err != nil {
			fmt.Fprintf(stderr, "oamlab: metrics: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "[%s %s done in %v: %v on %d nodes ran %s of virtual time]\n",
		kind, app, time.Since(start).Round(time.Millisecond), res.System, res.Nodes, res.Elapsed)
	return 0
}
