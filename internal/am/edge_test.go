package am

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestNestedDispatchDepth: a handler that sends into a full network
// drains and dispatches nested handlers; MaxDepth must record it.
func TestNestedDispatchDepth(t *testing.T) {
	u := universe(t, 2, func(c *cm5.CostModel) { c.NICQueueCap = 1 })
	var relay, sink HandlerID
	received := 0
	sink = u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { received++ })
	relay = u.Register("relay", func(c threads.Ctx, pkt *cm5.Packet) {
		// Reply into a possibly-full queue: Send drains our own input,
		// which dispatches further relays nested inside this handler.
		u.Endpoint(1).Send(c, 0, sink, [4]uint64{}, nil)
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node != 0 {
			return
		}
		for i := 0; i < 8; i++ {
			ep.Send(c, 1, relay, [4]uint64{}, nil)
		}
		for received < 8 {
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if received != 8 {
		t.Fatalf("received = %d", received)
	}
}

// TestHandlerTimeAccounted: the universe tracks virtual time spent in
// handlers.
func TestHandlerTimeAccounted(t *testing.T) {
	u := universe(t, 2, nil)
	h := u.Register("work", func(c threads.Ctx, pkt *cm5.Packet) {
		c.P.Charge(sim.Micros(5))
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		for i := 0; i < 4; i++ {
			u.Endpoint(0).Send(c, 1, h, [4]uint64{}, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Stats().HandlerTime; got != sim.Micros(20) {
		t.Fatalf("HandlerTime = %v, want 20us", got)
	}
}

// TestSendToUnregisteredHandlerPanics: handler ids are program text;
// forging one is a fatal programming error.
func TestSendToUnregisteredHandlerPanics(t *testing.T) {
	u := universe(t, 2, nil)
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unregistered handler")
			}
		}()
		u.Endpoint(0).Send(c, 1, HandlerID(42), [4]uint64{}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTrySendRefusesWhenFull and succeeds after draining.
func TestTrySendSemantics(t *testing.T) {
	u := universe(t, 2, func(c *cm5.CostModel) { c.NICQueueCap = 1 })
	got := 0
	h := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { got++ })
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			c.P.Charge(sim.Micros(200))
			ep.PollAll(c)
			return
		}
		if !ep.TrySend(c, 1, h, [4]uint64{}, nil) {
			t.Error("first TrySend refused")
		}
		if ep.TrySend(c, 1, h, [4]uint64{}, nil) {
			t.Error("second TrySend accepted into a full queue")
		}
		if ep.TrySendBulk(c, 1, h, [4]uint64{}, make([]byte, 100)) {
			t.Error("TrySendBulk accepted into a full queue")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got = %d", got)
	}
}

// TestHandlerNames: registration names are retrievable for diagnostics.
func TestHandlerNames(t *testing.T) {
	u := universe(t, 1, nil)
	id := u.Register("my/handler", func(c threads.Ctx, pkt *cm5.Packet) {})
	if u.HandlerName(id) != "my/handler" {
		t.Fatalf("name = %q", u.HandlerName(id))
	}
}
