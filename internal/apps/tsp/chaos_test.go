package tsp

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// TestChaosPerfectNetwork: the fault-tolerant variant on a fault-free
// machine still finds the exact optimum.
func TestChaosPerfectNetwork(t *testing.T) {
	cfg := ChaosConfig{Cities: 9, Seed: 12}
	want := uint64(NewProblem(cfg.Cities, cfg.Seed).SolveSeq().Best)
	res, st, err := RunChaos(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != want {
		t.Fatalf("best = %d, want %d", res.Answer, want)
	}
	if st.Reissued != 0 || st.Timeouts != 0 || st.Fault.Lost() != 0 {
		t.Fatalf("robustness machinery fired on a perfect network: %+v", st)
	}
}

// TestChaosLossOnly: 2% packet loss, no crashes — retransmission keeps
// the answer exact.
func TestChaosLossOnly(t *testing.T) {
	cfg := ChaosConfig{
		Cities: 9, Seed: 12,
		Fault: &cm5.FaultPlan{Seed: 42, DropProb: 0.02},
	}
	want := uint64(NewProblem(cfg.Cities, cfg.Seed).SolveSeq().Best)
	res, st, err := RunChaos(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != want {
		t.Fatalf("best = %d, want %d (stats %+v)", res.Answer, want, st)
	}
	if st.Fault.Dropped == 0 || st.Rel.Retransmits == 0 {
		t.Fatalf("expected drops and retransmits: %+v", st)
	}
}

// TestChaosLossAndCrash is the headline robustness scenario: 2% loss plus
// one slave crashing mid-run. The master must detect the dead slave's
// expired leases, re-issue its jobs, and still compute the exact optimum.
func TestChaosLossAndCrash(t *testing.T) {
	cfg := ChaosConfig{
		Cities: 9, Seed: 12,
		Fault: &cm5.FaultPlan{
			Seed:     42,
			DropProb: 0.02,
			Crashes:  []cm5.Crash{{Node: 3, At: sim.Time(30 * sim.Millisecond)}},
		},
	}
	want := uint64(NewProblem(cfg.Cities, cfg.Seed).SolveSeq().Best)
	res, st, err := RunChaos(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != want {
		t.Fatalf("best = %d, want %d (stats %+v)", res.Answer, want, st)
	}
	if st.Fault.Crashes != 1 {
		t.Fatalf("crash did not fire: %+v", st.Fault)
	}
	if st.Reissued == 0 {
		t.Fatalf("master never re-issued the dead slave's lease: %+v", st)
	}
	t.Logf("elapsed=%v reissued=%d timeouts=%d retx=%d dropped=%d",
		res.Elapsed, st.Reissued, st.Timeouts, st.Rel.Retransmits, st.Fault.Dropped)
}

// TestChaosDeterminism: same seed, same plan — same answer, same elapsed
// time, same fault trace hash.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		Cities: 8, Seed: 5,
		Fault: &cm5.FaultPlan{
			Seed:     9,
			DropProb: 0.03,
			DupProb:  0.01,
			Crashes:  []cm5.Crash{{Node: 2, At: sim.Time(20 * sim.Millisecond)}},
		},
	}
	r1, s1, err := RunChaos(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := RunChaos(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed || r1.Answer != r2.Answer || s1.FaultHash != s2.FaultHash {
		t.Fatalf("nondeterministic: elapsed %v/%v answer %d/%d hash %x/%x",
			r1.Elapsed, r2.Elapsed, r1.Answer, r2.Answer, s1.FaultHash, s2.FaultHash)
	}
	if s1.Rel != s2.Rel || s1.Fault != s2.Fault {
		t.Fatalf("stats diverge:\n%+v\n%+v", s1, s2)
	}
}
