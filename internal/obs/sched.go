package obs

import (
	"fmt"

	"repro/internal/apps/sched"
	"repro/internal/sim"
)

// tidSched is the scheduler control-plane track: heartbeats, detector
// verdicts, lease lifetimes, and fencing decisions, all on the scheduler
// node's process. Unlike the fixed tracks in tidNames, its thread_name
// metadata is emitted lazily on the first control-plane event, so traces
// of programs without a scheduler are byte-identical to before the track
// existed.
const tidSched = 7

// leaseKey identifies one lease issue for the async span pairing.
type leaseKey struct{ job, epoch int }

// reclaimReasons enumerates the reasons a lease is reclaimed, in
// sched.ReclaimReason order minus ReasonNone, for per-reason counters.
var reclaimReasons = [3]sched.ReclaimReason{
	sched.ReasonTimeout, sched.ReasonDead, sched.ReasonPlaceFail,
}

// schedTrack lazily names the control-plane track on the scheduler node.
func (c *Collector) schedTrack() {
	if !c.schedMeta {
		c.schedMeta = true
		c.tb.threadMeta(0, tidSched, "sched")
	}
}

// --- sched.Probe ---

func (c *Collector) Heartbeat(t sim.Time, agent int) {
	if c.cSchedBeats != nil {
		c.cSchedBeats.Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		c.tb.instant("heartbeat", "sched", t, 0, tidSched,
			fmt.Sprintf(`{"agent":%d}`, agent))
	}
}

// AgentDead opens an outage span that AgentAlive closes; an agent that
// never recovers (a real crash) leaves its span open to the end of the
// trace, which is exactly what the outage looked like.
func (c *Collector) AgentDead(t sim.Time, agent int) {
	if c.cSchedDead != nil {
		c.cSchedDead.Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		c.schedSeq++
		c.outageID[agent] = c.schedSeq
		c.tb.asyncBegin(fmt.Sprintf("agent %d down", agent), "outage", t, 0, tidSched, c.schedSeq, "")
	}
}

func (c *Collector) AgentAlive(t sim.Time, agent int) {
	if c.cSchedAlive != nil {
		c.cSchedAlive.Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		if id, ok := c.outageID[agent]; ok {
			c.tb.asyncEnd(fmt.Sprintf("agent %d down", agent), "outage", t, 0, tidSched, id)
			delete(c.outageID, agent)
		}
	}
}

func (c *Collector) LeasePlaced(t sim.Time, job, agent, epoch int) {
	if c.cSchedPlaced != nil {
		c.cSchedPlaced.Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		c.schedSeq++
		c.leaseID[leaseKey{job, epoch}] = c.schedSeq
		c.tb.asyncBegin(fmt.Sprintf("lease job %d", job), "lease", t, 0, tidSched, c.schedSeq,
			fmt.Sprintf(`{"agent":%d,"epoch":%d}`, agent, epoch))
	}
}

func (c *Collector) LeaseReclaimed(t sim.Time, job, agent, epoch int, why sched.ReclaimReason) {
	if c.cSchedReclaims[0] != nil && why != sched.ReasonNone {
		c.cSchedReclaims[int(why)-1].Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		if id, ok := c.leaseID[leaseKey{job, epoch}]; ok {
			c.tb.asyncEnd(fmt.Sprintf("lease job %d", job), "lease", t, 0, tidSched, id)
			delete(c.leaseID, leaseKey{job, epoch})
		}
		c.tb.instant("reclaim: "+why.String(), "sched", t, 0, tidSched,
			fmt.Sprintf(`{"job":%d,"agent":%d,"epoch":%d}`, job, agent, epoch))
	}
}

func (c *Collector) CompletionAccepted(t sim.Time, job, agent, epoch int) {
	if c.cSchedAccepted != nil {
		c.cSchedAccepted.Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		if id, ok := c.leaseID[leaseKey{job, epoch}]; ok {
			c.tb.asyncEnd(fmt.Sprintf("lease job %d", job), "lease", t, 0, tidSched, id)
			delete(c.leaseID, leaseKey{job, epoch})
		}
	}
}

func (c *Collector) CompletionRejected(t sim.Time, job, agent, epoch int) {
	if c.cSchedRejected != nil {
		c.cSchedRejected.Inc(agent)
	}
	if c.tb != nil {
		c.schedTrack()
		c.tb.instant("fenced completion", "sched", t, 0, tidSched,
			fmt.Sprintf(`{"job":%d,"agent":%d,"epoch":%d}`, job, agent, epoch))
	}
}
