package threads

// deque is a slice-backed ring deque of threads: the ready queue. The
// paper's experiments compare scheduling incoming RPC threads at the front
// versus the back of the queue, so both ends must be cheap.
type deque struct {
	buf   []*Thread
	head  int
	count int
}

func (d *deque) len() int { return d.count }

func (d *deque) grow() {
	n := len(d.buf)
	if n == 0 {
		d.buf = make([]*Thread, 8)
		return
	}
	nb := make([]*Thread, 2*n)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[(d.head+i)%n]
	}
	d.buf = nb
	d.head = 0
}

func (d *deque) pushBack(t *Thread) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = t
	d.count++
}

func (d *deque) pushFront(t *Thread) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = t
	d.count++
}

func (d *deque) popFront() *Thread {
	if d.count == 0 {
		return nil
	}
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return t
}
