package sim

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Tracer observes kernel scheduling decisions. Implementations must be
// cheap; they run on the hot path of every dispatch.
type Tracer interface {
	Resume(t Time, p *Proc) // process gains the (virtual) CPU
	Yield(t Time, p *Proc)  // process yields back to the kernel
	Exit(t Time, p *Proc)   // process body returned or panicked
}

// WriterTracer logs every scheduling transition to an io.Writer; intended
// for debugging small simulations.
type WriterTracer struct{ W io.Writer }

func (w WriterTracer) Resume(t Time, p *Proc) { fmt.Fprintf(w.W, "%v resume %s\n", t, p.name) }
func (w WriterTracer) Yield(t Time, p *Proc)  { fmt.Fprintf(w.W, "%v yield  %s\n", t, p.name) }
func (w WriterTracer) Exit(t Time, p *Proc)   { fmt.Fprintf(w.W, "%v exit   %s\n", t, p.name) }

// HashTracer folds every scheduling transition into an FNV-1a hash. Two
// runs of a deterministic simulation must produce identical sums; the
// determinism tests rely on this.
type HashTracer struct {
	h uint64
}

// NewHashTracer returns a tracer with the standard FNV-1a offset basis.
func NewHashTracer() *HashTracer {
	f := fnv.New64a()
	return &HashTracer{h: f.Sum64()}
}

func (h *HashTracer) mix(kind byte, t Time, p *Proc) {
	const prime = 1099511628211
	h.h = (h.h ^ uint64(kind)) * prime
	h.h = (h.h ^ uint64(t)) * prime
	h.h = (h.h ^ p.id) * prime
}

func (h *HashTracer) Resume(t Time, p *Proc) { h.mix('r', t, p) }
func (h *HashTracer) Yield(t Time, p *Proc)  { h.mix('y', t, p) }
func (h *HashTracer) Exit(t Time, p *Proc)   { h.mix('x', t, p) }

// Sum returns the accumulated schedule hash.
func (h *HashTracer) Sum() uint64 { return h.h }
