package cm5

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Machine is a simulated multicomputer: N nodes, a data network, and a
// control network. All methods must be called from simulation context
// (process bodies or kernel callbacks) on the shard that owns the node
// involved — with a sequential engine that is the familiar
// "single-threaded like the kernel" rule; with a sharded engine the
// machine partitions its nodes across the engine's shards (contiguous
// blocks) and registers itself as the engine's window hook so
// cross-shard traffic merges deterministically at window barriers.
type Machine struct {
	eng   *sim.Engine
	cost  CostModel
	nodes []*Node
	ctl   *controlNetwork
	fault *faultState // nil = perfect network (the default)
	probe Probe       // nil = no observer (the default, allocation-free)

	// shards holds the per-engine-shard slice of machine state (stats,
	// pools, window buffers). Exactly one entry on a sequential engine.
	shards []machineShard
	// snap is the barrier-time NIC occupancy (queued + reserved) of every
	// node; senders on other shards read it, plus their own in-window
	// reservations, as the "network full" signal. Sharded engines only.
	snap []int32

	// optimistic reports that the engine runs its shards speculatively:
	// cross-shard flights are published eagerly (Shard.Inject) instead of
	// buffered to the window barrier, and collective operations apply
	// immediately under ctlmu instead of riding the ctlOps buffer.
	optimistic bool
	// ctlmu serializes mid-span collective mutations (optimistic mode
	// only; conservative mode applies them on the single-threaded
	// coordinator).
	ctlmu sync.Mutex
}

// NetStats aggregates data-network traffic counters.
type NetStats struct {
	SmallSent    uint64
	BulkSent     uint64
	BytesSent    uint64
	FullRejects  uint64 // TryInject calls rejected because the NIC was full
	MaxQueueSeen int    // high-water mark across all NIC input queues
}

// Probe observes data-network traffic: injections, wire flights, losses,
// deliveries, and backpressure. Probes are pure observers — they must not
// schedule events or charge virtual time. All hooks run only when a probe
// is installed, so the disabled path stays allocation-free. Probes see
// mid-window state from multiple goroutines under a sharded engine, so
// they are only supported with one shard (sim.Engine.SetProbe enforces
// the same rule for its own probes).
type Probe interface {
	// PacketSent fires at injection time, before the sender is charged:
	// the sender's CPU is busy for busy, then the packet flies for wire.
	// When the network forged a duplicate, dup is true and the copy's own
	// flight takes dupWire.
	PacketSent(t sim.Time, pkt *Packet, busy, wire sim.Duration, dup bool, dupWire sim.Duration)
	// PacketLost fires when the network eats a packet (drop, partition,
	// blackhole at send time, or a late drop into a crashed receiver).
	PacketLost(t sim.Time, src, dst int, kind FaultKind)
	// PacketDelivered fires when a packet lands in dst's input queue;
	// queueDepth is the queue occupancy after the delivery.
	PacketDelivered(t sim.Time, pkt *Packet, queueDepth int)
	// Backpressure fires when TryInject refuses a send because the
	// destination NIC is full.
	Backpressure(t sim.Time, src, dst int)
}

// SetProbe installs a traffic probe; pass nil to disable.
func (m *Machine) SetProbe(p Probe) {
	if p != nil && len(m.shards) > 1 {
		panic("cm5: traffic probes require a sequential engine (shards=1)")
	}
	m.probe = p
}

// NewMachine creates a machine with n nodes. The nodes are partitioned
// across the engine's shards in contiguous blocks (node i on shard
// i*S/n); with a sharded engine the machine installs itself as the
// window hook.
//
// Nodes are lazy: NewMachine allocates only the node-pointer table, and
// a node's struct (NIC, RNG attempt counters, stats attribution)
// materializes on first touch — Node(i), a first delivery, a first send.
// A machine whose workload touches k of its n nodes costs O(n) pointers
// plus O(k) real state, which is what lets one engine host 100k+
// simulated clients.
func NewMachine(eng *sim.Engine, n int, cost CostModel) *Machine {
	if n < 1 {
		panic("cm5: machine needs at least one node")
	}
	m := &Machine{eng: eng, cost: cost}
	s := eng.Shards()
	m.shards = make([]machineShard, s)
	m.nodes = make([]*Node, n)
	if s > 1 {
		m.snap = make([]int32, n)
		m.optimistic = eng.Mode() == sim.Optimistic
		eng.SetWindowHook(m)
	}
	m.ctl = newControlNetwork(m)
	// Pre-size the engine's calendar queues for the population this node
	// count implies (a pending timer or flight or two per active node).
	eng.HintEvents(2 * n)
	return m
}

// shardIndex returns the index of the engine shard owning node i —
// contiguous blocks, the same formula for every caller, computable
// without materializing the node.
func (m *Machine) shardIndex(i int) int { return i * len(m.shards) / len(m.nodes) }

// materialize builds node i on first touch. It may be called only from
// the owning shard's simulation context or from the coordinator with the
// shards quiescent (setup code, barriers, globals): those are exactly
// the contexts allowed to touch the node afterwards, so the sender-side
// paths below never dereference a remote node — they work from the node
// index alone.
func (m *Machine) materialize(i int) *Node {
	si := m.shardIndex(i)
	ms := &m.shards[si]
	nd := &Node{
		id:  i,
		m:   m,
		nic: newNIC(m.cost.NICQueueCap),
		sh:  m.eng.Shard(si),
		ms:  ms,
	}
	m.nodes[i] = nd
	// live is the shard-local materialized-node list: the barrier
	// iterates it (occupancy snapshots) instead of sweeping all n slots.
	ms.live = append(ms.live, nd)
	return nd
}

// Engine returns the simulation engine driving this machine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cost }

// N returns the number of nodes.
func (m *Machine) N() int { return len(m.nodes) }

// Node returns node i, materializing it on first touch. Call it from
// the shard that owns node i (or from setup/barrier context); sender
// paths that only need to aim at a node use its index instead.
func (m *Machine) Node(i int) *Node {
	if nd := m.nodes[i]; nd != nil {
		return nd
	}
	return m.materialize(i)
}

// sharded reports whether the machine spans more than one engine shard.
func (m *Machine) sharded() bool { return len(m.shards) > 1 }

// Stats returns the machine's traffic counters, summed across shards
// (high-water marks are max-merged).
func (m *Machine) Stats() NetStats {
	var out NetStats
	for i := range m.shards {
		s := &m.shards[i].stats
		out.SmallSent += s.SmallSent
		out.BulkSent += s.BulkSent
		out.BytesSent += s.BytesSent
		out.FullRejects += s.FullRejects
		if s.MaxQueueSeen > out.MaxQueueSeen {
			out.MaxQueueSeen = s.MaxQueueSeen
		}
	}
	return out
}

// AllocPacket takes a packet from the pool of the node's shard (or the
// heap when the pool is dry). The packet is returned to a pool by
// ReleasePacket after its handler runs; see the ownership rules on
// Packet. Senders should allocate through their own node so pool access
// stays shard-local.
func (n *Node) AllocPacket() *Packet { return n.ms.allocPacket() }

// AllocPacket is the machine-level variant, drawing from shard 0's pool.
// Safe on a sequential engine (where shard 0 is the whole machine) and in
// setup code; in-simulation senders on a sharded engine must use
// Node.AllocPacket.
func (m *Machine) AllocPacket() *Packet { return m.shards[0].allocPacket() }

func (ms *machineShard) allocPacket() *Packet {
	p := ms.freePkt
	if p == nil {
		p = new(Packet)
	} else {
		ms.freePkt = p.poolNext
		p.poolNext = nil
	}
	p.pooled = true
	p.refs = 1
	return p
}

// ReleasePacket returns a pooled packet to this node's shard pool once
// its last delivery has been handled. Hand-built packets (pooled ==
// false) and duplicated packets with deliveries still outstanding are
// left alone. The payload buffer is dropped, never reused: receivers may
// retain it. Packets may retire to a different shard's pool than they
// were allocated from; pools only recycle structs, so migration is
// harmless.
func (n *Node) ReleasePacket(p *Packet) { n.ms.releasePacket(p) }

// ReleasePacket is the machine-level variant, returning to shard 0's
// pool. Safe on a sequential engine and in setup code; in-simulation
// receivers on a sharded engine must use Node.ReleasePacket.
func (m *Machine) ReleasePacket(p *Packet) { m.shards[0].releasePacket(p) }

func (ms *machineShard) releasePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.refs > 1 {
		p.refs--
		return
	}
	*p = Packet{poolNext: ms.freePkt}
	ms.freePkt = p
}

// delivery is a pooled, closure-free packet-delivery event: the typed
// {packet} record that replaces the per-packet func() previously captured
// at injection time. It carries the destination shard's pool so recycling
// stays shard-local wherever the record was created.
type delivery struct {
	m    *Machine
	ms   *machineShard
	pkt  *Packet
	next *delivery
}

// Run implements sim.Action: recycle the delivery record, then complete
// the transfer into the destination NIC.
func (d *delivery) Run() {
	m, ms, pkt := d.m, d.ms, d.pkt
	d.pkt = nil
	d.next = ms.freeDeliv
	ms.freeDeliv = d
	m.completeDelivery(pkt)
}

// newDelivery takes a delivery record from ms's pool. ms must be the
// destination node's shard (the record recycles there when it fires).
func (m *Machine) newDelivery(ms *machineShard, pkt *Packet) *delivery {
	d := ms.freeDeliv
	if d == nil {
		d = &delivery{m: m}
	} else {
		ms.freeDeliv = d.next
		d.next = nil
	}
	d.ms = ms
	d.pkt = pkt
	return d
}

// completeDelivery lands a packet that finished its wire flight: either
// into the destination's input queue (waking the node) or, if the receiver
// crashed while the packet was in flight, into the fault accounting. It
// always runs on the destination node's shard.
func (m *Machine) completeDelivery(pkt *Packet) {
	dst := m.Node(pkt.Dst)
	now := dst.sh.Now()
	if f := m.fault; f != nil && f.crashed[pkt.Dst] {
		dst.nic.abandon()
		dst.ms.fstats.LateDrops++
		dst.ms.faultNode(pkt.Dst).Blackholed++
		dst.ms.recordFault(FaultEvent{T: now, Kind: FaultLateDrop, Src: pkt.Src, Dst: pkt.Dst})
		if m.probe != nil {
			m.probe.PacketLost(now, pkt.Src, pkt.Dst, FaultLateDrop)
		}
		dst.ReleasePacket(pkt)
		return
	}
	dst.nic.deliver(pkt)
	if q := dst.nic.pending(); q > dst.ms.stats.MaxQueueSeen {
		dst.ms.stats.MaxQueueSeen = q
	}
	if m.probe != nil {
		m.probe.PacketDelivered(now, pkt, dst.nic.pending())
	}
	if dst.wake != nil {
		dst.wake()
	}
}

// Node is one processor of the machine. The node itself is passive: the
// thread package supplies its CPU (a simulation process), and the am
// package supplies its packet dispatch routine.
type Node struct {
	id  int
	m   *Machine
	nic *nic

	// sh is the engine shard that owns this node: every process running
	// on the node, every timer it arms, and every packet delivered to it
	// lives on this shard.
	sh *sim.Shard
	// ms is the machine-state slice of that shard.
	ms *machineShard

	// flightSeq counts delivery copies this node has launched; packed
	// with the node id it is the canonical delivery key that totally
	// orders same-instant packet arrivals machine-wide.
	flightSeq uint64
	// attempts counts TryInject calls per destination; it seeds the
	// per-flight RNG streams, so a draw's value depends only on
	// (src, dst, attempt), never on unrelated event order. Sparse: a
	// dense per-destination array here was the machine's O(nodes²).
	attempts attemptCounter
	// ctlEnter/ctlWait are this node's collective epochs (entered and
	// waited rounds), indexed by collective (barrier, OR, reduce). They
	// live on the Node rather than in n-sized arrays on the collectives
	// so an untouched node costs the control network nothing, and they
	// are node-local, so shard goroutines never contend on them.
	ctlEnter [numCollectives]uint64
	ctlWait  [numCollectives]uint64

	// wake, if non-nil, is invoked (in kernel context) when a packet is
	// delivered into this node's input queue. The thread scheduler
	// registers its idle process here so delivery can end an idle wait.
	wake func()
}

// ID returns the node number, 0-based.
func (n *Node) ID() int { return n.id }

// Machine returns the owning machine.
func (n *Node) Machine() *Machine { return n.m }

// Shard returns the engine shard that owns this node. Layers running
// code on the node (thread schedulers, transports, RPC runtimes) must
// schedule their timers and processes through it.
func (n *Node) Shard() *sim.Shard { return n.sh }

// SetWake registers fn to be called whenever a packet is delivered into
// this node's input queue. Pass nil to clear.
func (n *Node) SetWake(fn func()) { n.wake = fn }

// Pending reports how many received packets are waiting to be polled.
func (n *Node) Pending() int { return n.nic.pending() }

// InFlight reports whether any packets are reserved toward this node but
// not yet delivered.
func (n *Node) InFlight() bool { return n.nic.reserved > 0 }

// NetworkFull reports whether an injection toward dst would be refused
// right now. This is the OAM "network busy" abort condition.
func (n *Node) NetworkFull(dst int) bool {
	return n.dstFull(dst)
}

// dstFull is the sender-side "network full" predicate, working from the
// destination index alone so aiming at a node never materializes it (an
// unmaterialized node has an empty NIC by construction). For a
// destination on the sender's own shard it reads the NIC exactly, as
// always. For a cross-shard destination it conservatively combines the
// barrier-time occupancy snapshot with the reservations this shard has
// made toward dst during the current window; it cannot see same-window
// pops or other shards' reservations, which is the one place sharded
// execution is approximate — workloads that saturate a NIC within a
// single lookahead window should run with one shard. Every NIC has
// capacity cost.NICQueueCap, so the remote check needs no remote state.
func (n *Node) dstFull(dst int) bool {
	if n.m.shardIndex(dst) == n.sh.Index() {
		if nd := n.m.nodes[dst]; nd != nil {
			return nd.nic.full()
		}
		return false
	}
	return int(n.m.snap[dst])+int(n.ms.resvFor(dst)) >= n.m.cost.NICQueueCap
}

// reserveToward claims a NIC slot toward dst: directly for a same-shard
// destination (materializing it — a packet is headed there), or in the
// window buffer for a cross-shard one (the barrier converts buffered
// claims into real reservations on the destination shard).
func (n *Node) reserveToward(dst int) {
	if n.m.shardIndex(dst) == n.sh.Index() {
		n.m.Node(dst).nic.reserve()
		return
	}
	n.ms.reserveCross(n.m.N(), dst)
}

// nextFlightKey returns the canonical delivery key for the next delivery
// copy launched by this node: (source node, per-source flight number).
func (n *Node) nextFlightKey() uint64 {
	n.flightSeq++
	return uint64(n.id)<<40 | (n.flightSeq & (1<<40 - 1))
}

// launch schedules one delivery copy arriving wire after the current
// instant: inline on the shared shard; via the window outbox when the
// destination lives on another shard (conservative mode); or published
// eagerly into the destination shard's inbox (optimistic mode — the
// arrival time is already final, so the flight can cross immediately).
// The destination node itself is never touched here: it materializes on
// its own shard when the delivery completes.
func (n *Node) launch(dst int, pkt *Packet, wire sim.Duration) {
	at := n.sh.Now().Add(wire)
	key := n.nextFlightKey()
	si := n.m.shardIndex(dst)
	if si == n.sh.Index() {
		n.sh.AtDelivery(at, key, n.m.newDelivery(n.ms, pkt))
		return
	}
	if n.m.optimistic {
		n.m.eng.Shard(si).Inject(at, key, pkt)
		return
	}
	n.ms.outbox = append(n.ms.outbox, flight{at: at, key: key, pkt: pkt})
}

// Arrive implements sim.ArrivalHook: materialize one eagerly published
// cross-shard flight on its destination shard — claim the NIC slot the
// sender reserved in its window buffer and schedule the delivery event.
// Runs on the destination shard's goroutine, so the NIC, the delivery
// pool, and the heap are all shard-local here.
func (m *Machine) Arrive(sh *sim.Shard, at sim.Time, key uint64, payload any) {
	pkt := payload.(*Packet)
	dst := m.Node(pkt.Dst)
	dst.nic.forceReserve()
	sh.AtDelivery(at, key, m.newDelivery(dst.ms, pkt))
}

// TryInject attempts to send pkt from this node. On success it charges the
// sending process the CPU cost of the injection (including, for bulk
// transfers, the streaming time — the CM-5 scopy keeps the sending
// processor busy), schedules delivery, and returns true. If the
// destination's input buffer is full it charges nothing and returns false.
//
// p must be the running process, executing on this node's CPU.
func (n *Node) TryInject(p *sim.Proc, pkt *Packet) bool {
	if pkt.Src != n.id {
		panic(fmt.Sprintf("cm5: packet src %d injected from node %d", pkt.Src, n.id))
	}
	if pkt.Dst < 0 || pkt.Dst >= len(n.m.nodes) {
		panic(fmt.Sprintf("cm5: packet dst %d out of range", pkt.Dst))
	}
	dst := pkt.Dst
	f := n.m.fault
	now := n.sh.Now()
	attempt := n.attempts.next(dst)
	var fr flightRNG
	var lossKind FaultKind
	lost := false
	if f != nil {
		// Decide loss before the full-buffer check: a send to a crashed
		// (never-polling, eventually full) node must still "succeed" from
		// the sender's view, or drain-while-sending would spin forever on
		// a NIC nobody will ever empty. Every fault draw for this flight
		// comes from its own counter-seeded stream.
		fr = newFlightRNG(uint64(f.plan.Seed), pkt.Src, pkt.Dst, attempt, 0)
		lossKind, lost = f.lossKind(&fr, now, pkt.Src, pkt.Dst)
	}
	if !lost && n.dstFull(dst) {
		n.ms.stats.FullRejects++
		if n.m.probe != nil {
			n.m.probe.Backpressure(now, pkt.Src, pkt.Dst)
		}
		return false
	}
	cost := &n.m.cost
	var busy sim.Duration
	switch pkt.Kind {
	case Small:
		if len(pkt.Payload) > cost.MaxPayload {
			panic(fmt.Sprintf("cm5: small packet payload %d exceeds max %d", len(pkt.Payload), cost.MaxPayload))
		}
		busy = cost.PacketSendOverhead
		n.ms.stats.SmallSent++
	case Bulk:
		busy = cost.BulkSetup + sim.Duration(len(pkt.Payload))*cost.BulkPerByte
		n.ms.stats.BulkSent++
	default:
		panic("cm5: unknown packet kind")
	}
	n.ms.stats.BytesSent += uint64(len(pkt.Payload))
	if lost {
		// The sender pays the injection cost — the packet left the node
		// and died in the network, indistinguishable from a successful
		// send until (if ever) a higher layer times out waiting.
		switch lossKind {
		case FaultBlackhole:
			n.ms.fstats.Blackholed++
			crashedAt := pkt.Src
			if !f.crashed[pkt.Src] {
				crashedAt = pkt.Dst
			}
			n.ms.faultNode(crashedAt).Blackholed++
		case FaultPartitionDrop:
			n.ms.fstats.PartitionDrops++
			n.ms.faultNode(pkt.Src).Dropped++
		default:
			n.ms.fstats.Dropped++
			n.ms.faultNode(pkt.Src).Dropped++
		}
		n.ms.recordFault(FaultEvent{T: now, Kind: lossKind, Src: pkt.Src, Dst: pkt.Dst})
		if n.m.probe != nil {
			n.m.probe.PacketLost(now, pkt.Src, pkt.Dst, lossKind)
		}
		n.ReleasePacket(pkt) // died in the network: nobody will deliver it
		p.Charge(busy)
		return true
	}
	n.reserveToward(dst)
	wire := cost.WireLatency
	if cost.WireJitter > 0 {
		// Deterministic jitter from the flight's own stream (seeded from
		// the engine seed, salted apart from the fault stream). Note that
		// jitter can reorder same-pair deliveries; the layers above do
		// not depend on FIFO ordering (RPC matches replies by call id),
		// but applications relying on it should keep jitter off.
		wr := newFlightRNG(uint64(n.m.eng.Seed()), pkt.Src, pkt.Dst, attempt, wireSalt)
		wire += sim.Duration(wr.int63n(int64(cost.WireJitter)))
	}
	dup := false
	var dupWire sim.Duration
	if f != nil {
		wire += f.extraLatency(&fr, n.ms, now, pkt.Src, pkt.Dst)
		if f.duplicate(&fr) && !n.dstFull(dst) {
			// The network forged a second copy; it takes its own slot and
			// its own (possibly different) path latency.
			dup = true
			if pkt.pooled {
				pkt.refs++ // the receiver must handle both copies before recycling
			}
			n.reserveToward(dst)
			dupWire = cost.WireLatency + f.extraLatency(&fr, n.ms, now, pkt.Src, pkt.Dst)
			n.ms.fstats.Duplicated++
			n.ms.faultNode(pkt.Src).Duplicated++
			n.ms.recordFault(FaultEvent{T: now, Kind: FaultDuplicate, Src: pkt.Src, Dst: pkt.Dst})
		}
	}
	// The sender's CPU is busy for the injection; the packet leaves at the
	// end of that window and lands WireLatency later. The flight is a
	// pooled typed event, not a closure: nothing on this path allocates.
	if n.m.probe != nil {
		n.m.probe.PacketSent(now, pkt, busy, wire, dup, dupWire)
	}
	p.Charge(busy)
	n.launch(dst, pkt, wire)
	if dup {
		n.launch(dst, pkt, dupWire)
	}
	return true
}

// PollPacket checks the input queue, charging poll cost. If a packet is
// waiting it is ejected (charging the receive overhead) and returned;
// otherwise PollPacket returns nil. Dispatching the packet to a handler is
// the caller's job (package am).
func (n *Node) PollPacket(p *sim.Proc) *Packet {
	cost := &n.m.cost
	pkt := n.nic.pop()
	if pkt == nil {
		p.Charge(cost.PollEmpty)
		return nil
	}
	p.Charge(cost.PacketRecvOverhead)
	return pkt
}
