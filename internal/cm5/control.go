package cm5

import (
	"fmt"

	"repro/internal/sim"
)

// ReduceOp selects the combining operator of a control-network reduction.
type ReduceOp uint8

const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case ReduceSum:
		return a + b
	case ReduceMax:
		if a > b {
			return a
		}
		return b
	case ReduceMin:
		if a < b {
			return a
		}
		return b
	default:
		panic("cm5: unknown reduce op")
	}
}

// ctlRound is one round of a collective operation. Rounds are identified
// by a per-primitive epoch; every node contributes exactly once per round
// and waits exactly once per round (the barrier fuses the two).
// Contributions are stored per node and combined in node order at release
// time, so the result — including floating-point reductions — is
// independent of arrival order and therefore of the shard count.
type ctlRound struct {
	entered      []bool
	ors          []bool
	vals         []float64
	count        int
	maxT         sim.Time // latest contribution time; release = maxT + latency
	released     bool
	orVal        bool
	redVal       float64
	redOp        ReduceOp // operator of this round (fixed per round)
	waiters      []func(or bool, red float64) // per node; called in node order
	pendingWaits int
}

// collective implements one collective primitive (barrier, global OR, or
// reduction) of the control network.
//
// Under a sharded engine, enters and waits performed during a parallel
// window are buffered on the calling node's shard and applied at the
// window barrier; the round's release is a global control event at
// maxT + latency. Because every collective latency exceeds the data
// network's wire latency (the lookahead bound), a release always lands
// strictly after the window in which the round completed — so a node can
// never observe a release that another shard has not yet made visible.
type collective struct {
	m       *Machine
	idx     int    // index into Node.ctlEnter/ctlWait
	rank    uint64 // key rank of this primitive's release globals
	latency func(*CostModel) sim.Duration
	rounds  map[uint64]*ctlRound
}

// numCollectives is the number of control-network primitives (barrier,
// global OR, reduction) — the width of each Node's epoch bookkeeping.
const numCollectives = 3

func newCollective(m *Machine, idx int, rank uint64, latency func(*CostModel) sim.Duration) *collective {
	return &collective{
		m:       m,
		idx:     idx,
		rank:    rank,
		latency: latency,
		rounds:  make(map[uint64]*ctlRound),
	}
}

func (c *collective) round(epoch uint64) *ctlRound {
	r, ok := c.rounds[epoch]
	if !ok {
		n := c.m.N()
		r = &ctlRound{
			entered:      make([]bool, n),
			ors:          make([]bool, n),
			vals:         make([]float64, n),
			pendingWaits: n,
		}
		c.rounds[epoch] = r
	}
	return r
}

// Buffered collective operations (sharded engines; see machineShard).
const (
	opEnter uint8 = iota
	opWait
	opConsume
)

// ctlOp is one collective operation buffered during a parallel window.
type ctlOp struct {
	c     *collective
	kind  uint8
	epoch uint64
	node  int
	t     sim.Time
	or    bool
	red   float64
	op    ReduceOp
	cb    func(or bool, red float64)
}

func (o *ctlOp) apply() {
	switch o.kind {
	case opEnter:
		o.c.applyEnter(o.epoch, o.node, o.t, o.or, o.red, o.op)
	case opWait:
		o.c.applyWait(o.epoch, o.node, o.cb)
	default:
		o.c.consume(o.epoch)
	}
}

// enter records node's contribution to its next round. The epoch
// bookkeeping is node-local and immediate; the round mutation is applied
// inline on a sequential engine and deferred to the window barrier on a
// sharded one. It does not block.
func (c *collective) enter(n *Node, or bool, red float64, op ReduceOp) {
	node := n.id
	epoch := n.ctlEnter[c.idx]
	if epoch != n.ctlWait[c.idx] {
		panic(fmt.Sprintf("cm5: node %d entered a collective twice without waiting", node))
	}
	n.ctlEnter[c.idx] = epoch + 1
	now := n.sh.Now()
	if c.m.sharded() {
		if c.m.optimistic {
			// Eager application: contributions are commutative (combined
			// in node order only at release), so they can land mid-span
			// from any shard under ctlmu. The release global this may
			// schedule lands at maxT plus a collective latency that
			// exceeds the lookahead, hence strictly beyond every event
			// execution currently in flight — the engine cuts the running
			// span just before it (see Engine.AtGlobal).
			c.m.ctlmu.Lock()
			c.applyEnter(epoch, node, now, or, red, op)
			c.m.ctlmu.Unlock()
			return
		}
		n.ms.ctlOps = append(n.ms.ctlOps, ctlOp{c: c, kind: opEnter, epoch: epoch, node: node, t: now, or: or, red: red, op: op})
		return
	}
	c.applyEnter(epoch, node, now, or, red, op)
}

// applyEnter lands one contribution in its round and, when the round is
// complete, schedules the release as a global control event keyed by
// (primitive rank, epoch) at the last contribution time plus the
// primitive's latency.
func (c *collective) applyEnter(epoch uint64, node int, t sim.Time, or bool, red float64, op ReduceOp) {
	r := c.round(epoch)
	r.redOp = op
	if r.entered[node] {
		panic(fmt.Sprintf("cm5: node %d double-entered collective round %d", node, epoch))
	}
	r.entered[node] = true
	r.ors[node] = or
	r.vals[node] = red
	r.count++
	if t > r.maxT {
		r.maxT = t
	}
	if r.count == c.m.N() {
		c.m.eng.AtGlobal(r.maxT.Add(c.latency(&c.m.cost)), c.rank<<48|epoch, func() {
			c.release(epoch)
		})
	}
}

// release combines the round's contributions in node order and runs the
// registered waiter callbacks, also in node order. It fires as a global
// control event, so its position among same-time events is identical at
// any shard count.
func (c *collective) release(epoch uint64) {
	r := c.rounds[epoch]
	n := c.m.N()
	or := false
	red := 0.0
	for i := 0; i < n; i++ {
		or = or || r.ors[i]
		if i == 0 {
			red = r.vals[0]
		} else {
			red = r.redOp.combine(red, r.vals[i])
		}
	}
	r.orVal, r.redVal = or, red
	r.released = true
	ws := r.waiters
	r.waiters = nil
	if ws == nil {
		return
	}
	for i := 0; i < n; i++ {
		if w := ws[i]; w != nil {
			c.consume(epoch)
			w(or, red)
		}
	}
}

// applyWait registers node's callback on its round.
func (c *collective) applyWait(epoch uint64, node int, cb func(or bool, red float64)) {
	r := c.round(epoch)
	if r.released {
		// Defensive: releases land strictly after the window that
		// buffered the wait, so this cannot fire under the lookahead
		// invariant — but a zero-latency cost model would break that.
		c.consume(epoch)
		cb(r.orVal, r.redVal)
		return
	}
	if r.waiters == nil {
		r.waiters = make([]func(or bool, red float64), c.m.N())
	}
	r.waiters[node] = cb
}

// consume retires one of the round's N waits, dropping the round when the
// last one is consumed. Called between windows (barrier, global or
// sequential-kernel context) — or, in optimistic mode, mid-span under
// ctlmu, which serializes every rounds-map mutation against the shards.
func (c *collective) consume(epoch uint64) {
	r := c.rounds[epoch]
	r.pendingWaits--
	if r.pendingWaits == 0 {
		delete(c.rounds, epoch)
	}
}

// waitAsync consumes node's wait for its last-entered round. If the round
// has already released, it returns (true, or, red) and cb is never
// called. Otherwise it returns ready == false and cb fires — in kernel
// context, at the release instant — when the round releases.
func (c *collective) waitAsync(n *Node, cb func(or bool, red float64)) (ready, or bool, red float64) {
	node := n.id
	epoch := n.ctlWait[c.idx]
	if epoch >= n.ctlEnter[c.idx] {
		panic(fmt.Sprintf("cm5: node %d waited on a collective without entering", node))
	}
	n.ctlWait[c.idx] = epoch + 1
	if c.m.sharded() {
		if c.m.optimistic {
			// Eager wait: releases only fire between spans (they are
			// globals, and globals cut spans), so under ctlmu the round
			// is either already released — take the values, retire the
			// wait — or the callback registers for the release instant.
			c.m.ctlmu.Lock()
			r := c.rounds[epoch]
			if r != nil && r.released {
				or, red := r.orVal, r.redVal
				c.consume(epoch)
				c.m.ctlmu.Unlock()
				return true, or, red
			}
			c.applyWait(epoch, node, cb)
			c.m.ctlmu.Unlock()
			return false, false, 0
		}
		// The rounds map only changes between windows, so this lookup is
		// stable all window long: a released round stays released (take
		// the values now, defer the bookkeeping); anything else waits.
		r := c.rounds[epoch]
		if r != nil && r.released {
			n.ms.ctlOps = append(n.ms.ctlOps, ctlOp{c: c, kind: opConsume, epoch: epoch})
			return true, r.orVal, r.redVal
		}
		n.ms.ctlOps = append(n.ms.ctlOps, ctlOp{c: c, kind: opWait, epoch: epoch, node: node, cb: cb})
		return false, false, 0
	}
	r := c.rounds[epoch]
	if r.released {
		c.consume(epoch)
		return true, r.orVal, r.redVal
	}
	c.applyWait(epoch, node, cb)
	return false, false, 0
}

// wait blocks node (parking p) until the round it last entered is released,
// then returns that round's combined values.
func (c *collective) wait(p *sim.Proc, n *Node) (bool, float64) {
	var orOut bool
	var redOut float64
	ready, or, red := c.waitAsync(n, func(o bool, r float64) {
		orOut, redOut = o, r
		p.Unpark()
	})
	if ready {
		return or, red
	}
	p.Park()
	return orOut, redOut
}

// controlNetwork bundles the machine's collective primitives. The CM-5
// control network supplies a hardware barrier, a split-phase global-OR
// (the "set and get pair" of the paper), and hardware reductions.
type controlNetwork struct {
	barrier *collective
	or      *collective
	reduce  *collective
}

// Release-global key ranks. Crash globals use rank 0 (bare node keys), so
// at one instant crashes order before barrier releases, then OR, then
// reduce releases.
const (
	rankBarrier uint64 = 1
	rankOR      uint64 = 2
	rankReduce  uint64 = 3
)

func newControlNetwork(m *Machine) *controlNetwork {
	return &controlNetwork{
		barrier: newCollective(m, 0, rankBarrier, func(c *CostModel) sim.Duration { return c.BarrierLatency }),
		or:      newCollective(m, 1, rankOR, func(c *CostModel) sim.Duration { return c.ReduceLatency }),
		reduce:  newCollective(m, 2, rankReduce, func(c *CostModel) sim.Duration { return c.ReduceLatency }),
	}
}

// Barrier blocks until every node of the machine has called Barrier for
// the same round. p must be running on this node's CPU. This parks the
// raw process; thread code should use the scheduler's Barrier wrapper so
// other threads can run while waiting.
func (n *Node) Barrier(p *sim.Proc) {
	b := n.m.ctl.barrier
	b.enter(n, false, 0, ReduceSum)
	b.wait(p, n)
}

// BarrierEnter contributes node's arrival to the current barrier round
// without blocking. Pair with BarrierWaitAsync.
func (n *Node) BarrierEnter() { n.m.ctl.barrier.enter(n, false, 0, ReduceSum) }

// BarrierWaitAsync consumes the barrier wait: it reports true if the
// round has already released; otherwise cb fires (in kernel context) on
// release.
func (n *Node) BarrierWaitAsync(cb func()) bool {
	ready, _, _ := n.m.ctl.barrier.waitAsync(n, func(bool, float64) { cb() })
	return ready
}

// ReduceEnter contributes val to the current reduction round under op
// without blocking. Pair with ReduceWaitAsync.
func (n *Node) ReduceEnter(val float64, op ReduceOp) {
	n.m.ctl.reduce.enter(n, false, val, op)
}

// ReduceWaitAsync consumes the reduction wait: ready is true (with the
// combined value) if the round has already released; otherwise cb fires
// (in kernel context) with the combined value on release.
func (n *Node) ReduceWaitAsync(cb func(float64)) (ready bool, val float64) {
	ready, _, val = n.m.ctl.reduce.waitAsync(n, func(_ bool, red float64) { cb(red) })
	return ready, val
}

// ORWaitAsync consumes the global-OR wait: ready is true (with the OR
// value) if the round has already combined; otherwise cb fires (in
// kernel context) with the value on release.
func (n *Node) ORWaitAsync(cb func(bool)) (ready, val bool) {
	ready, val, _ = n.m.ctl.or.waitAsync(n, func(or bool, _ float64) { cb(or) })
	return ready, val
}

// OREnter contributes v to the current split-phase global-OR round and
// returns immediately. Pair each OREnter with exactly one ORWait.
func (n *Node) OREnter(v bool) {
	n.m.ctl.or.enter(n, v, 0, ReduceSum)
}

// ORWait blocks until the global-OR round this node last entered has
// combined, and returns the OR across all nodes. Together with OREnter it
// forms a split-phase barrier: enter, overlap computation, wait.
func (n *Node) ORWait(p *sim.Proc) bool {
	or, _ := n.m.ctl.or.wait(p, n)
	return or
}

// Reduce performs a blocking all-node reduction of val under op and
// returns the combined value on every node.
//
// The operator is fixed per round; mixing operators across nodes within
// one round is a programming error that this implementation does not
// detect (the round combines under the operator of whichever contribution
// applied last). The evaluated applications only ever use one operator
// per call site.
func (n *Node) Reduce(p *sim.Proc, val float64, op ReduceOp) float64 {
	r := n.m.ctl.reduce
	r.enter(n, false, val, op)
	_, out := r.wait(p, n)
	return out
}
