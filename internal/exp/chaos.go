package exp

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/apps/triangle"
	"repro/internal/apps/tsp"
	"repro/internal/cm5"
	"repro/internal/reliable"
	"repro/internal/sim"
)

// ChaosRow is one fault-injection measurement: an application run under a
// seeded fault plan, validated against the sequential reference answer.
type ChaosRow struct {
	App            string
	DropPct        float64
	Crashes        int
	Partitioned    int // slaves cut off for the whole run
	Flapped        int // slaves cut off for a window that heals
	Elapsed        sim.Duration
	Dropped        uint64 // packets the network lost (all loss kinds)
	Duplicated     uint64
	Retransmits    uint64
	DupsSuppressed uint64
	GaveUp         uint64
	Reissued       uint64 // master lease re-issues (tsp only)
	Timeouts       uint64 // client call-deadline expirations (tsp only)
	SuccPct        float64
	OK             bool   // answer matched the sequential reference
	FaultHash      uint64 // fault-trace hash (tsp only; 0 = no fault layer)
}

// Chaos sweeps drop rate x crash count over the two irregular
// applications and checks that reliable delivery plus graceful
// degradation keep every answer bit-exact. Triangle runs loss-only (its
// level quiesce has no crash recovery); TSP additionally survives one
// slave crashing mid-run via the master's lease watchdog.
func Chaos(scale Scale) ([]ChaosRow, error) {
	drops := []float64{0, 0.01, 0.02, 0.05}

	triCfg := triangle.Config{Side: 6, Empty: -1, Seed: 7, Shards: Shards, Optimistic: Optimistic, Cores: Cores}
	triNodes := 8
	tspCities, tspSlaves := 12, 8
	crashAt := sim.Time(100 * sim.Millisecond)
	flapFrom, flapTo := sim.Time(60*sim.Millisecond), sim.Time(120*sim.Millisecond)
	if scale.Quick {
		triCfg.Side = 5
		triNodes = 4
		tspCities, tspSlaves = 9, 3
		// Early enough that the crashed slave always holds an unfinished
		// lease, so every crash row exercises the watchdog re-issue path.
		crashAt = sim.Time(15 * sim.Millisecond)
		// The flap window opens while the slave holds a lease and closes
		// well before the search ends, so the row proves recovery, not
		// just degradation.
		flapFrom, flapTo = sim.Time(10*sim.Millisecond), sim.Time(20*sim.Millisecond)
	}
	if scale.MaxP > 0 {
		if triNodes > scale.MaxP {
			triNodes = scale.MaxP
		}
		if tspSlaves+1 > scale.MaxP {
			tspSlaves = scale.MaxP - 1
		}
	}

	// Flatten the sweep into an ordered job list so the cells can fan out
	// across the worker pool and still merge in sweep order.
	type job struct {
		tri     bool
		drop    float64
		crashes int
		part    bool // permanently partition the last slave
		flap    bool // partition the last slave for a healing window
	}
	var jobs []job
	for _, drop := range drops {
		jobs = append(jobs, job{tri: true, drop: drop})
	}
	for _, crashes := range []int{0, 1} {
		for _, drop := range drops {
			if crashes == 0 && drop == 0 {
				// Covered (fault-free) by the regular TSP experiments.
				continue
			}
			jobs = append(jobs, job{drop: drop, crashes: crashes})
		}
	}
	// The MaxAttempts-exhausted path: one slave unreachable for the whole
	// run (every link to and from it blackholed). Its calls time out, every
	// reliable message toward it is abandoned after MaxAttempts, and the
	// remaining slaves finish the search — bounded degradation, not a hang.
	jobs = append(jobs, job{part: true})
	// The flapping partition: the same slave cut off in both directions for
	// a window that heals mid-run. Unlike the permanent partition, this row
	// must *recover*: leases stranded during the window are re-issued, the
	// healed slave rejoins the search, and any late duplicate work it
	// reports is absorbed idempotently — with the answer still exact.
	jobs = append(jobs, job{flap: true})

	triWant := triCfg.BoardCounts().Solutions
	tspWant := uint64(tsp.NewProblem(tspCities, 12).SolveSeq().Best)
	rows := make([]ChaosRow, len(jobs))
	err := forEach(len(jobs), func(i int) error {
		j := jobs[i]
		if j.tri {
			cfg := triCfg
			if j.drop > 0 {
				cfg.Fault = &cm5.FaultPlan{Seed: 21, DropProb: j.drop, DupProb: j.drop / 2}
				cfg.Reliable = &reliable.Options{}
			}
			res, err := triangle.Run(apps.ORPC, triNodes, cfg)
			if err != nil {
				return fmt.Errorf("chaos triangle drop=%g: %w", j.drop, err)
			}
			// Triangle's Run does not return fault counters; loss shows up
			// indirectly as elapsed-time inflation, so only the tsp rows
			// carry the full breakdown.
			rows[i] = ChaosRow{
				App: "triangle", DropPct: j.drop * 100,
				Elapsed: res.Elapsed, SuccPct: res.SuccessPercent(),
				OK: res.Answer == triWant,
			}
			return nil
		}
		plan := &cm5.FaultPlan{Seed: 42, DropProb: j.drop, DupProb: j.drop / 2}
		if j.crashes == 1 {
			plan.Crashes = []cm5.Crash{{Node: tspSlaves, At: crashAt}}
		}
		part, flap := 0, 0
		if j.part {
			part = 1
			plan = &cm5.FaultPlan{Seed: 63, Partitions: []cm5.Partition{
				{Src: -1, Dst: tspSlaves, From: 0, To: sim.Time(math.MaxInt64)},
				{Src: tspSlaves, Dst: -1, From: 0, To: sim.Time(math.MaxInt64)},
			}}
		}
		if j.flap {
			flap = 1
			plan = &cm5.FaultPlan{Seed: 77, Partitions: []cm5.Partition{
				{Src: -1, Dst: tspSlaves, From: flapFrom, To: flapTo},
				{Src: tspSlaves, Dst: -1, From: flapFrom, To: flapTo},
			}}
		}
		cfg := tsp.ChaosConfig{Cities: tspCities, Seed: 12, Shards: Shards, Optimistic: Optimistic, Cores: Cores, Fault: plan}
		res, st, err := tsp.RunChaos(tspSlaves, cfg)
		if err != nil {
			return fmt.Errorf("chaos tsp drop=%g crashes=%d part=%d flap=%d: %w", j.drop, j.crashes, part, flap, err)
		}
		rows[i] = ChaosRow{
			App: "tsp", DropPct: j.drop * 100, Crashes: j.crashes, Partitioned: part, Flapped: flap,
			Elapsed: res.Elapsed,
			Dropped: st.Fault.Lost(), Duplicated: st.Fault.Duplicated,
			Retransmits: st.Rel.Retransmits, DupsSuppressed: st.Rel.DupsSuppressed,
			GaveUp: st.Rel.GaveUp, Reissued: st.Reissued, Timeouts: st.Timeouts,
			SuccPct:   res.SuccessPercent(),
			OK:        res.Answer == tspWant,
			FaultHash: st.FaultHash,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ChaosTable formats the fault-injection sweep.
func ChaosTable(scale Scale) (*Table, error) {
	rows, err := Chaos(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Chaos sweep: drop rate x crashes, answers checked against the sequential reference",
		Columns: []string{"App", "Drop%", "Crashes", "Part", "Flap", "Elapsed(ms)", "Lost",
			"Dup'd", "Retx", "DupSupp", "GaveUp", "Reissued", "Timeouts", "Succ%", "OK"},
		Notes: []string{
			"dup rate is half the drop rate; triangle rows are loss-only (no crash recovery)",
			"tsp crash rows kill one slave mid-run; the master's lease watchdog re-issues its jobs",
			"the Part row cuts one slave off entirely: senders exhaust MaxAttempts and give up",
			"the Flap row cuts the slave off for a window that heals: it rejoins and the answer stays exact",
		},
	}
	for _, r := range rows {
		ok := "yes"
		if !r.OK {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			r.App, f1(r.DropPct), itoa(r.Crashes), itoa(r.Partitioned), itoa(r.Flapped),
			fmt.Sprintf("%.2f", float64(r.Elapsed)/1e6),
			u64(r.Dropped), u64(r.Duplicated), u64(r.Retransmits),
			u64(r.DupsSuppressed), u64(r.GaveUp), u64(r.Reissued),
			u64(r.Timeouts), f1(r.SuccPct), ok,
		})
	}
	return t, nil
}

// ChaosNodeTable runs the headline scenario (2% loss, 1% duplication, one
// slave crash) once and breaks the fault and retransmission counters down
// per node: losses, duplicates, retransmits, and give-ups attribute to the
// sender; suppressed duplicates to the receiver; blackholed packets to the
// crashed node they died at.
func ChaosNodeTable(scale Scale) (*Table, error) {
	cities, slaves := 12, 8
	crashAt := sim.Time(100 * sim.Millisecond)
	if scale.Quick {
		cities, slaves = 9, 3
		crashAt = sim.Time(30 * sim.Millisecond)
	}
	cfg := tsp.ChaosConfig{
		Cities: cities, Seed: 12, Shards: Shards, Optimistic: Optimistic, Cores: Cores,
		Fault: &cm5.FaultPlan{
			Seed: 42, DropProb: 0.02, DupProb: 0.01,
			Crashes: []cm5.Crash{{Node: slaves, At: crashAt}},
		},
	}
	res, st, err := tsp.RunChaos(slaves, cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos per-node: %w", err)
	}
	t := &Table{
		Title: fmt.Sprintf("Per-node fault and recovery counters: tsp %d cities, %d slaves, 2%% loss, slave %d crashes",
			cities, slaves, slaves),
		Columns: []string{"Node", "Role", "Lost", "Dup'd", "Blackholed",
			"Retx", "DupSupp", "GaveUp"},
		Notes: []string{
			fmt.Sprintf("elapsed %.2f ms, %d lease re-issues, answer %d",
				float64(res.Elapsed)/1e6, st.Reissued, res.Answer),
		},
	}
	for i := range st.NodeFaults {
		role := "slave"
		if i == 0 {
			role = "master"
		}
		if st.CrashedAt[i] {
			role += " (crashed)"
		}
		nf, nr := st.NodeFaults[i], st.NodeRel[i]
		t.Rows = append(t.Rows, []string{
			itoa(i), role, u64(nf.Dropped), u64(nf.Duplicated), u64(nf.Blackholed),
			u64(nr.Retransmits), u64(nr.DupsSuppressed), u64(nr.GaveUp),
		})
	}
	return t, nil
}
