package cm5

import (
	"testing"

	"repro/internal/sim"
)

func TestBarrierSynchronizes(t *testing.T) {
	eng, m := testMachine(t, 4)
	cost := m.Cost()
	arrive := make([]sim.Time, 4)
	release := make([]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		eng.Spawn("node", func(p *sim.Proc) {
			p.Charge(sim.Micros(float64(10 * i))) // staggered arrival
			arrive[i] = p.Now()
			m.Node(i).Barrier(p)
			release[i] = p.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := arrive[3].Add(cost.BarrierLatency)
	for i := 0; i < 4; i++ {
		if release[i] != want {
			t.Fatalf("node %d released at %v, want %v", i, release[i], want)
		}
	}
}

func TestBarrierMultipleRounds(t *testing.T) {
	eng, m := testMachine(t, 3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("node", func(p *sim.Proc) {
			for r := 0; r < 5; r++ {
				p.Charge(sim.Micros(float64(1 + i)))
				m.Node(i).Barrier(p)
				counts[i]++
				// After each barrier all nodes must have completed the
				// same number of rounds.
				for j := 0; j < 3; j++ {
					if counts[j] < counts[i]-1 || counts[j] > counts[i]+1 {
						t.Errorf("round skew: counts=%v", counts)
					}
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 5 {
			t.Fatalf("node %d completed %d rounds, want 5", i, c)
		}
	}
}

func TestGlobalORSplitPhase(t *testing.T) {
	eng, m := testMachine(t, 4)
	results := make([]bool, 4)
	overlapped := make([]bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		eng.Spawn("node", func(p *sim.Proc) {
			m.Node(i).OREnter(i == 2) // only node 2 contributes true
			// Split phase: computation may overlap the combine.
			p.Charge(sim.Micros(1))
			overlapped[i] = true
			results[i] = m.Node(i).ORWait(p)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !results[i] {
			t.Fatalf("node %d OR result false, want true", i)
		}
		if !overlapped[i] {
			t.Fatalf("node %d did not overlap", i)
		}
	}
}

func TestGlobalORAllFalse(t *testing.T) {
	eng, m := testMachine(t, 3)
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("node", func(p *sim.Proc) {
			m.Node(i).OREnter(false)
			if m.Node(i).ORWait(p) {
				t.Errorf("node %d: OR of all-false = true", i)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want float64
	}{
		{ReduceSum, 0 + 1 + 2 + 3},
		{ReduceMax, 3},
		{ReduceMin, 0},
	}
	for _, tc := range cases {
		eng, m := testMachine(t, 4)
		got := make([]float64, 4)
		for i := 0; i < 4; i++ {
			i := i
			eng.Spawn("node", func(p *sim.Proc) {
				got[i] = m.Node(i).Reduce(p, float64(i), tc.op)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if got[i] != tc.want {
				t.Fatalf("op %v node %d: got %v, want %v", tc.op, i, got[i], tc.want)
			}
		}
	}
}

func TestDoubleEnterPanics(t *testing.T) {
	eng, m := testMachine(t, 2)
	eng.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double OREnter")
			}
		}()
		m.Node(0).OREnter(true)
		m.Node(0).OREnter(true)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitWithoutEnterPanics(t *testing.T) {
	eng, m := testMachine(t, 2)
	eng.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on ORWait without OREnter")
			}
		}()
		m.Node(0).ORWait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestControlDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.New(5)
		m := NewMachine(eng, 8, DefaultCostModel())
		defer eng.Shutdown()
		for i := 0; i < 8; i++ {
			i := i
			eng.Spawn("node", func(p *sim.Proc) {
				for r := 0; r < 10; r++ {
					p.Charge(sim.Duration(eng.Rand().Intn(100)) * sim.Microsecond)
					m.Node(i).Barrier(p)
					m.Node(i).Reduce(p, float64(i), ReduceSum)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic control network: %v vs %v", a, b)
	}
}
