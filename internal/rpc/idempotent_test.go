package rpc

import (
	"errors"
	"testing"

	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestCallIdempotentDuplicatedReplies: with the network duplicating
// packets (both legs — a duplicated request re-executes the idempotent
// body and yields a second reply with the same call id, exactly like a
// duplicated reply packet), every second copy must be counted stale and
// dropped. The per-call payload check is the real assertion: a duplicate
// that resolved a later call would surface as a wrong reply value.
func TestCallIdempotentDuplicatedReplies(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	u := rt.Universe()
	u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 3, DupProb: 0.35})
	done := false
	echo := rt.Define("echo", func(e *oam.Env, caller int, arg []byte) []byte { return arg })
	stop := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
		done = true
		return nil
	})
	const calls = 20
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for !done {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		for i := 0; i < calls; i++ {
			arg := NewEnc(8)
			arg.U64(uint64(100 + i))
			res, err := echo.CallIdempotent(c, 1, arg.Bytes(), sim.Micros(500), 4)
			if err != nil {
				t.Errorf("call %d failed: %v", i, err)
				break
			}
			if got := NewDec(res).U64(); got != uint64(100+i) {
				t.Errorf("call %d: reply %d — a duplicate was mis-delivered", i, got)
			}
		}
		stop.CallAsync(c, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs := u.Machine().FaultStats(); fs.Duplicated == 0 {
		t.Fatal("fault plan duplicated nothing; the test exercised no dup path")
	}
	if rt.StaleReplies() == 0 {
		t.Fatal("no duplicate reply was counted stale")
	}
	st := echo.Stats()
	if st.Timeouts != 0 || st.GiveUps != 0 {
		t.Fatalf("dup-only network must not time out: %+v", st)
	}
}

// TestCallIdempotentGiveUpCountsOnce: exhausting every attempt against a
// crashed server is one give-up, not one per attempt.
func TestCallIdempotentGiveUpCountsOnce(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	u := rt.Universe()
	u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 1, Crashes: []cm5.Crash{
		{Node: 1, At: sim.Time(10 * sim.Microsecond)}}})
	ping := rt.Define("ping", func(e *oam.Env, caller int, arg []byte) []byte { return nil })
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for !ep.Node().Crashed() {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		c.P.Charge(sim.Micros(50)) // send only after the crash
		if _, err := ping.CallIdempotent(c, 1, nil, sim.Micros(200), 3); !errors.Is(err, ErrDeadline) {
			t.Errorf("err = %v, want ErrDeadline", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ping.Stats()
	if st.Timeouts != 3 || st.GiveUps != 1 {
		t.Fatalf("Timeouts = %d, GiveUps = %d, want 3 and 1 (%+v)", st.Timeouts, st.GiveUps, st)
	}
	if rt.StaleReplies() != 0 {
		t.Fatalf("crashed server replied: StaleReplies = %d", rt.StaleReplies())
	}
}

// TestLateReplyAfterGiveUpNotMisdelivered is the dangerous interleaving:
// a slow server's replies land after the caller has exhausted its
// attempts and moved on to the NEXT call. Each abandoned attempt used its
// own call id, so both late replies must be dropped as stale; the live
// call must resolve with its own payload, never an abandoned attempt's.
func TestLateReplyAfterGiveUpNotMisdelivered(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	u := rt.Universe()
	done := false
	slow := rt.Define("slow", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Compute(sim.Micros(300)) // reply lands well past the 100 us attempt window
		return arg
	})
	echo := rt.Define("echo", func(e *oam.Env, caller int, arg []byte) []byte { return arg })
	stop := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
		done = true
		return nil
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for !done {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		argA := NewEnc(8)
		argA.U64(111)
		if _, err := slow.CallIdempotent(c, 1, argA.Bytes(), sim.Micros(100), 2); !errors.Is(err, ErrDeadline) {
			t.Errorf("slow call: err = %v, want ErrDeadline", err)
		}
		// Both abandoned attempts are still executing on the server; their
		// replies will arrive while this next call is waiting.
		argB := NewEnc(8)
		argB.U64(222)
		res, err := echo.CallWithDeadline(c, 1, argB.Bytes(), sim.Micros(5000))
		if err != nil {
			t.Errorf("live call failed: %v", err)
		} else if got := NewDec(res).U64(); got != 222 {
			t.Errorf("live call resolved with %d — an abandoned attempt's reply", got)
		}
		stop.CallAsync(c, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	sst := slow.Stats()
	if sst.Timeouts != 2 || sst.GiveUps != 1 || sst.Retries != 0 || sst.Calls != 2 {
		t.Fatalf("slow stats %+v, want Timeouts=2 GiveUps=1 Retries=0 Calls=2", sst)
	}
	if est := echo.Stats(); est.Timeouts != 0 || est.GiveUps != 0 {
		t.Fatalf("echo stats %+v, want no timeouts", est)
	}
	if got := rt.StaleReplies(); got != 2 {
		t.Fatalf("StaleReplies = %d, want 2 (one per abandoned attempt)", got)
	}
}
