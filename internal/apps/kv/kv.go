// Package kv is the sharded key-value/lock service under open-loop
// load: the first Servers nodes each own a key partition (key mod
// Servers) and serve get/put/cas plus lease-style lock/unlock through
// stub-compiled ORPC; every remaining node is a client generating
// open-loop arrivals — Poisson at a configurable rate, optionally
// bursty, diurnal, or Zipf-skewed — from a private counter-seeded
// stream, so the offered load is a pure function of (seed, client) and
// bit-identical at any shard count.
//
// Unlike the run-to-completion evaluation apps, the interesting regime
// here is saturation: arrivals do not slow down when the service does.
// Each server protects itself with admission control — when its NIC
// queue plus in-flight thread work exceeds a budget, the handler sheds
// the request inline, replying with a retry-after hint instead of doing
// the work. Under optimistic dispatch the shed path runs before any
// abort point and costs no thread; under traditional RPC the same
// verdict is only reached after the dispatch thread has been created
// and switched to, which is precisely the regime where thread-per-call
// collapses and OAM keeps its goodput.
//
// The same body serves all three systems of the paper: ORPC runs it as
// an Optimistic Active Message (short ops commit inline; a CAS is
// deliberately over the handler budget and promotes, making the object
// lock briefly busy so concurrent ops abort LockBusy and cascade —
// contention is real, not modeled); TRPC runs it in a thread per call;
// AM omits the object lock entirely (handlers are atomic), standing in
// for the hand-coded active-message version.
//
// Every lock-lease transition is recorded on the owning server in its
// execution order; CheckInvariants replays the record and the per-client
// accounting against the service's safety contract (see events.go).
package kv

import (
	"fmt"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	kvgen "repro/internal/apps/kv/gen"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/reliable"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Op labels one client operation for probes.
type Op uint8

const (
	OpGet Op = iota
	OpPut
	OpCas
	OpLock
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpCas:
		return "cas"
	case OpLock:
		return "lock"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Outcome classifies one open-loop arrival, exactly once.
type Outcome uint8

const (
	// OutcomeOK: the operation completed with an answer (a denied lock
	// and a failed CAS are answers).
	OutcomeOK Outcome = iota
	// OutcomeDrop: the client's outstanding-request cap was full at
	// arrival; nothing was sent.
	OutcomeDrop
	// OutcomeShed: the server shed the request ShedRetries+1 times and
	// the client gave up.
	OutcomeShed
	// OutcomeTimeout: the transport gave up (CallIdempotent exhausted
	// its attempts).
	OutcomeTimeout
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDrop:
		return "drop"
	case OutcomeShed:
		return "shed"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Probe observes the service; obs hangs its instruments here. Probes
// are pure observers — they must not schedule events or charge time.
type Probe interface {
	// RequestDone fires once per arrival with its final classification.
	// client is the client's node id (Servers + client index). lat is
	// the service latency: arrival to answer for get/put/cas, arrival to
	// lease decision for lock (the hold time is the client's, not the
	// service's). Drops report zero latency.
	RequestDone(t sim.Time, client int, op Op, out Outcome, lat sim.Duration)
	// ServerShed fires once per shed verdict with the queue depth that
	// triggered it. server is the server's node id.
	ServerShed(t sim.Time, server, depth int)
}

// Config parameterizes a service run.
type Config struct {
	Servers int // key-partition owners, nodes 0..Servers-1 (default 4)
	Clients int // load generators, nodes Servers.. (default 64)
	Keys    int // key-space size (default 128)
	Seed    int64
	// Shards / Optimistic select the engine configuration; results are
	// bit-identical at any value (see apps.Engine).
	Shards     int
	Optimistic bool
	// System selects the communication system under test; Strategy and
	// HandlerBudget configure the optimistic dispatcher for ORPC.
	System        apps.System
	Strategy      oam.Strategy
	HandlerBudget sim.Duration // default 8 us: CAS promotes, the rest commit inline
	// Cores > 1 enables multiactive ORPC dispatch: handlers compatible
	// per the kv.rpc matrix (read/read always, everything else across
	// disjoint keys) run concurrently on that many simulated per-node
	// cores. The object lock is dropped in this mode — the matrix is the
	// exclusion. Default 1: the paper's single-active discipline.
	Cores int
	// Adaptive replaces the fixed HandlerBudget with the dispatcher's
	// per-node congestion- and history-driven controller.
	Adaptive bool
	// Fault is the injected fault plan (nil for a perfect network); Rel
	// tunes the reliable transport, which is always attached.
	Fault *cm5.FaultPlan
	Rel   reliable.Options

	// MeanIAT is each client's mean interarrival time at RateX=1
	// (default 400 us); RateX scales the offered load (default 1); Mode
	// shapes it over time; ZipfS skews key popularity (0 uniform).
	MeanIAT sim.Duration
	RateX   float64
	Mode    LoadMode
	ZipfS   float64
	// MixGet/MixPut/MixCas set the operation mix in per-mille of
	// arrivals (defaults 600/250/50); the remainder are lock cycles.
	MixGet int
	MixPut int
	MixCas int
	// Duration is the arrival window (default 20 ms); the run then
	// drains in-flight requests.
	Duration sim.Duration
	// MaxOutstanding caps each client's in-flight requests; an arrival
	// over the cap is dropped at the source (default 8).
	MaxOutstanding int

	// Budget is the server admission threshold: a request is shed when
	// the NIC queue plus in-flight thread work exceeds it (default 24).
	// RetryBase is the retry-after hint a shed reply carries; clients
	// back off linearly on it and give up after ShedRetries retries
	// (defaults 200 us, 6).
	Budget      int
	RetryBase   sim.Duration
	ShedRetries int
	// CallTimeout / CallAttempts bound each idempotent call (defaults
	// 1 ms, 3).
	CallTimeout  sim.Duration
	CallAttempts int

	// LockTTL is the server-side lease lifetime; LockHold is how long a
	// client sits on a granted lease before unlocking (defaults 2 ms,
	// 100 us).
	LockTTL  sim.Duration
	LockHold sim.Duration

	// Work* are the per-operation service CPU costs (defaults 2, 6, 10,
	// 3 us). The CAS default deliberately exceeds HandlerBudget.
	WorkGet  sim.Duration
	WorkPut  sim.Duration
	WorkCas  sim.Duration
	WorkLock sim.Duration

	// MaxTime aborts the drain if virtual time exceeds it (default 60 s).
	MaxTime sim.Time
	// Observe, when set, is called with the universe and RPC runtime
	// after construction and before the run starts.
	Observe func(*am.Universe, *rpc.Runtime)
	// Probe, when set, receives service transitions.
	Probe Probe
}

func (cfg Config) withDefaults() Config {
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 64
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 128
	}
	if cfg.HandlerBudget <= 0 {
		cfg.HandlerBudget = sim.Micros(8)
	}
	if cfg.MeanIAT <= 0 {
		cfg.MeanIAT = sim.Micros(400)
	}
	if cfg.RateX <= 0 {
		cfg.RateX = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = sim.Micros(20000)
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 8
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.MixGet <= 0 {
		cfg.MixGet = 600
	}
	if cfg.MixPut <= 0 {
		cfg.MixPut = 250
	}
	if cfg.MixCas <= 0 {
		cfg.MixCas = 50
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 24
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = sim.Micros(200)
	}
	if cfg.ShedRetries <= 0 {
		cfg.ShedRetries = 6
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = sim.Micros(1000)
	}
	if cfg.CallAttempts <= 0 {
		cfg.CallAttempts = 3
	}
	if cfg.LockTTL <= 0 {
		cfg.LockTTL = sim.Micros(2000)
	}
	if cfg.LockHold <= 0 {
		cfg.LockHold = sim.Micros(100)
	}
	if cfg.WorkGet <= 0 {
		cfg.WorkGet = sim.Micros(2)
	}
	if cfg.WorkPut <= 0 {
		cfg.WorkPut = sim.Micros(6)
	}
	if cfg.WorkCas <= 0 {
		cfg.WorkCas = sim.Micros(10)
	}
	if cfg.WorkLock <= 0 {
		cfg.WorkLock = sim.Micros(3)
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = sim.Time(60 * sim.Second)
	}
	return cfg
}

// ClientCounts is one client's exact arrival accounting. For a live
// client, Arrivals == OK + Drops + ShedGiveUps + TimeoutGiveUps.
type ClientCounts struct {
	Arrivals       uint64
	OK             uint64
	Drops          uint64
	ShedGiveUps    uint64
	TimeoutGiveUps uint64

	ShedWaits   uint64 // retry-after sleeps honored
	LockDenied  uint64 // lease decisions that came back held-elsewhere
	UnlockFails uint64 // unlocks whose lease had already expired or moved
	Crashed     bool   // the client node crashed; its ledger is a frozen prefix
}

// ServerCounts is one server's ledger.
type ServerCounts struct {
	Admitted  uint64 // requests that made it past admission and executed
	Shed      uint64 // admission rejections
	Applied   uint64 // mutations applied (put writes + cas swaps)
	DedupHits uint64 // duplicate mutators answered from the dedup cache

	Grants   uint64
	Denies   uint64
	Releases uint64
	Expiries uint64

	VerSum uint64 // sum of final key versions; == Applied when at-most-once held
	Keys   int    // keys materialized on this server
}

// Stats reports what the service did during a run.
type Stats struct {
	PerClient []ClientCounts
	PerServer []ServerCounts

	// Totals over PerClient / PerServer.
	Arrivals       uint64
	OK             uint64
	Drops          uint64
	ShedGiveUps    uint64
	TimeoutGiveUps uint64
	ShedWaits      uint64
	Sheds          uint64

	Timeouts     uint64 // client-side call deadline expirations, all procedures
	Retries      uint64 // client-side nack retries, all procedures
	CallGiveUps  uint64 // CallIdempotent exhaustions, all procedures
	StaleReplies uint64 // replies that arrived after their call was abandoned
	Promoted     uint64 // optimistic dispatches promoted to threads

	Rel       reliable.Stats
	Fault     cm5.FaultStats
	FaultHash uint64

	// Records holds each server's lock-lease event record (see
	// CheckInvariants); RecordHash folds them into one word.
	Records    [][]Event
	RecordHash uint64
	CrashedAt  []bool // per node, servers first
}

// entry is one key's server-side state. Versions count applied
// mutations; lease epochs are monotonic per key and fence stale unlocks.
type entry struct {
	val        int32
	ver        uint32
	lockHeld   bool
	lockEpoch  uint32
	lockOwner  int
	lockExpiry sim.Time
}

type dedupKey struct {
	caller int
	req    uint32
}

// cached is a dedup-cache reply: the union of the mutator reply shapes.
type cached struct {
	u uint32 // put/cas version, lock epoch
	b bool   // cas swapped, unlock released
}

// serverState is one server node's bookkeeping, only ever touched from
// that node's contexts. The mutex is the paper's "object lock": nil
// under AM (handlers are atomic), the optimistic abort point under ORPC,
// a real blocking lock under TRPC.
type serverState struct {
	id       int
	mu       *threads.Mutex
	node     *cm5.Node
	deferred int // thread-mode calls admitted but not yet finished
	store    map[uint32]*entry
	dedup    map[dedupKey]cached
	rec      []Event
	n        ServerCounts
}

func (s *serverState) entry(key uint32) *entry {
	ent := s.store[key]
	if ent == nil {
		ent = &entry{}
		s.store[key] = ent
	}
	return ent
}

// clientState is one client node's bookkeeping, only ever touched from
// that node's contexts.
type clientState struct {
	rng         *rng
	phase       sim.Duration
	outstanding int
	reqCtr      uint32
	n           ClientCounts
	err         error
}

type kvRun struct {
	cfg  Config
	srvs []*serverState
	cls  []*clientState
}

// admit is the admission check, shared by every handler. It runs before
// any abort point, so under optimistic dispatch a shed verdict commits
// with the handler — exactly once, without creating a thread. A nonzero
// return is the retry-after hint in microseconds.
func (r *kvRun) admit(e *oam.Env, s *serverState) uint32 {
	depth := s.node.Pending() + s.deferred
	if depth <= r.cfg.Budget {
		return 0
	}
	s.n.Shed++
	if r.cfg.Probe != nil {
		r.cfg.Probe.ServerShed(e.Ctx().P.Now(), s.id, depth)
	}
	return uint32(r.cfg.RetryBase / sim.Microsecond)
}

// enter/leave bracket the server critical section. In thread mode the
// deferred count keeps admitted-but-blocked work visible to admission
// (the NIC queue alone goes blind once calls become threads).
func (r *kvRun) enter(e *oam.Env, s *serverState) {
	if !e.Optimistic() {
		s.deferred++
	}
	if s.mu != nil {
		e.Lock(s.mu)
	}
}

func (r *kvRun) leave(e *oam.Env, s *serverState) {
	// Reached only by executions past their last abort point, so the
	// admitted count is exact: one per request that did the work (or
	// answered it from the dedup cache).
	s.n.Admitted++
	if s.mu != nil {
		e.Unlock(s.mu)
	}
	if !e.Optimistic() {
		s.deferred--
	}
}

// Run executes the service and returns the run result and its
// statistics. The handler bodies keep every mutation after the last
// abort point (the object lock and the work charge), so an aborted
// optimistic attempt leaves no trace and the rerun-as-thread re-executes
// from a clean slate; the shed path aborts nowhere and mutates only its
// own counter, so shed accounting is exact even while partitioned.
func Run(cfg Config) (apps.Result, Stats, error) {
	cfg = cfg.withDefaults()
	nodes := cfg.Servers + cfg.Clients
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	// Unreachable NIC cap: the service's admission budget is this
	// system's only backpressure. The machine's network-full refusal
	// reserves against a window-boundary occupancy snapshot when
	// sharded, so any run where a queue touches the cap makes send
	// admission snapshot-dependent — approximately, not bit-exactly,
	// deterministic. A saturated server's queue grows past any
	// realistic cap (threads hog the CPU between polls while the
	// reliable layer retransmits into the backlog), so congestion here
	// must surface as latency and service-level sheds, never as a
	// network refusal. The ring grows with actual occupancy, so the
	// huge cap costs nothing.
	cm := cm5.DefaultCostModel()
	cm.NICQueueCap = 1 << 20
	u := am.NewUniverse(eng, nodes, cm)
	u.Machine().SetFaultPlan(cfg.Fault)
	tr := reliable.Attach(u, cfg.Rel)

	// Multiactive only applies to optimistic dispatch: TRPC is threads,
	// AM is atomic handlers; both keep the single implicit core.
	multiactive := cfg.Cores > 1 && cfg.System != apps.TRPC && cfg.System != apps.AM
	opts := rpc.Options{Mode: rpc.ORPC, OAM: oam.Options{
		Strategy:      cfg.Strategy,
		HandlerBudget: cfg.HandlerBudget,
		Adaptive:      cfg.Adaptive,
	}}
	if multiactive {
		opts.OAM.Cores = cfg.Cores
	}
	switch cfg.System {
	case apps.TRPC:
		opts.Mode = rpc.TRPC
	case apps.AM:
		// The hand-coded stand-in: no object lock, no budget — handlers
		// are atomic and never abort, so dispatch always completes inline.
		opts.OAM = oam.Options{Strategy: oam.Rerun}
	}
	rt := rpc.New(u, opts)

	r := &kvRun{cfg: cfg}
	r.srvs = make([]*serverState, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		s := &serverState{
			id:    i,
			node:  u.Endpoint(i).Node(),
			store: make(map[uint32]*entry),
			dedup: make(map[dedupKey]cached),
		}
		if cfg.System != apps.AM && !multiactive {
			// Under multiactive ORPC the object lock is dropped: the
			// compatibility matrix (reads overlap, writers need disjoint
			// keys) is the exclusion, enforced at admission, and a handler
			// holding a try-lock would spuriously abort its compatible
			// peers.
			s.mu = threads.NewMutex(u.Scheduler(i))
		}
		r.srvs[i] = s
	}
	r.cls = make([]*clientState, cfg.Clients)
	for i := range r.cls {
		rg := newRNG(cfg.Seed, i)
		r.cls[i] = &clientState{
			rng:   rg,
			phase: sim.Duration(rg.intn(int(burstPeriod))),
		}
	}
	zipf := newZipfTable(cfg.Keys, cfg.ZipfS)

	get := kvgen.DefineGet(rt, func(e *oam.Env, caller int, key uint32) (uint32, uint32, int32) {
		s := r.srvs[e.Node()]
		if retry := r.admit(e, s); retry != 0 {
			return retry, 0, 0
		}
		r.enter(e, s)
		e.Compute(cfg.WorkGet)
		var ver uint32
		var val int32
		if ent := s.store[key]; ent != nil { // read-only: no entry materialized
			ver, val = ent.ver, ent.val
		}
		r.leave(e, s)
		return 0, ver, val
	})

	put := kvgen.DefinePut(rt, func(e *oam.Env, caller int, key, req uint32, val int32) (uint32, uint32) {
		s := r.srvs[e.Node()]
		if retry := r.admit(e, s); retry != 0 {
			return retry, 0
		}
		r.enter(e, s)
		k := dedupKey{caller, req}
		if v, ok := s.dedup[k]; ok {
			s.n.DedupHits++
			r.leave(e, s)
			return 0, v.u
		}
		e.Compute(cfg.WorkPut)
		ent := s.entry(key)
		ent.ver++
		ent.val = val
		s.n.Applied++
		s.dedup[k] = cached{u: ent.ver}
		r.leave(e, s)
		return 0, ent.ver
	})

	cas := kvgen.DefineCas(rt, func(e *oam.Env, caller int, key, req, expect uint32, val int32) (uint32, uint32, bool) {
		s := r.srvs[e.Node()]
		if retry := r.admit(e, s); retry != 0 {
			return retry, 0, false
		}
		r.enter(e, s)
		k := dedupKey{caller, req}
		if v, ok := s.dedup[k]; ok {
			s.n.DedupHits++
			r.leave(e, s)
			return 0, v.u, v.b
		}
		e.Compute(cfg.WorkCas)
		ent := s.entry(key)
		swapped := ent.ver == expect
		if swapped {
			ent.ver++
			ent.val = val
			s.n.Applied++
		}
		s.dedup[k] = cached{u: ent.ver, b: swapped}
		r.leave(e, s)
		return 0, ent.ver, swapped
	})

	lock := kvgen.DefineLock(rt, func(e *oam.Env, caller int, key, req uint32) (uint32, uint32) {
		s := r.srvs[e.Node()]
		if retry := r.admit(e, s); retry != 0 {
			return retry, 0
		}
		r.enter(e, s)
		k := dedupKey{caller, req}
		if v, ok := s.dedup[k]; ok {
			s.n.DedupHits++
			r.leave(e, s)
			return 0, v.u
		}
		e.Compute(cfg.WorkLock)
		ent := s.entry(key)
		now := e.Ctx().P.Now()
		if ent.lockHeld && now >= ent.lockExpiry {
			// Lazy reaping: the expired lease dies when the next grant
			// decision observes it, in server execution order.
			s.rec = append(s.rec, Event{T: now, Kind: EvExpire, Key: key,
				Client: ent.lockOwner, Epoch: ent.lockEpoch})
			s.n.Expiries++
			ent.lockHeld = false
		}
		var epoch uint32
		if ent.lockHeld {
			s.rec = append(s.rec, Event{T: now, Kind: EvDeny, Key: key,
				Client: caller, Epoch: ent.lockEpoch})
			s.n.Denies++
		} else {
			ent.lockEpoch++
			ent.lockHeld = true
			ent.lockOwner = caller
			ent.lockExpiry = now.Add(cfg.LockTTL)
			epoch = ent.lockEpoch
			s.rec = append(s.rec, Event{T: now, Kind: EvGrant, Key: key,
				Client: caller, Epoch: epoch, Expiry: ent.lockExpiry})
			s.n.Grants++
		}
		s.dedup[k] = cached{u: epoch}
		r.leave(e, s)
		return 0, epoch
	})

	unlock := kvgen.DefineUnlock(rt, func(e *oam.Env, caller int, key, req, epoch uint32) (uint32, bool) {
		s := r.srvs[e.Node()]
		if retry := r.admit(e, s); retry != 0 {
			return retry, false
		}
		r.enter(e, s)
		k := dedupKey{caller, req}
		if v, ok := s.dedup[k]; ok {
			s.n.DedupHits++
			r.leave(e, s)
			return 0, v.b
		}
		e.Compute(cfg.WorkLock)
		released := false
		ent := s.store[key]
		if ent != nil && ent.lockHeld {
			// The same lazy reaping as Lock: a lease past its TTL is dead
			// and cannot be released, even by its own holder.
			if now := e.Ctx().P.Now(); now >= ent.lockExpiry {
				s.rec = append(s.rec, Event{T: now, Kind: EvExpire, Key: key,
					Client: ent.lockOwner, Epoch: ent.lockEpoch})
				s.n.Expiries++
				ent.lockHeld = false
			}
		}
		if ent != nil &&
			ent.lockHeld && ent.lockEpoch == epoch && ent.lockOwner == caller {
			// The epoch fence: an unlock from an expired-and-reissued
			// lease can never release the new holder's lease.
			ent.lockHeld = false
			s.rec = append(s.rec, Event{T: e.Ctx().P.Now(), Kind: EvRelease,
				Key: key, Client: caller, Epoch: epoch})
			s.n.Releases++
			released = true
		}
		s.dedup[k] = cached{b: released}
		r.leave(e, s)
		return 0, released
	})

	if multiactive {
		rt.SetCompat(kvgen.CompatSpec())
	}

	if cfg.Observe != nil {
		cfg.Observe(u, rt)
	}

	sleep := func(c threads.Ctx, d sim.Duration) {
		var f threads.Flag
		c.Node().Shard().AfterTimer(d, f.Set)
		f.Wait(c)
	}

	// withShedRetry drives one idempotent call through the admission
	// protocol: honor the server's retry-after hint with linear backoff,
	// give up after ShedRetries retries.
	withShedRetry := func(c threads.Ctx, cs *clientState, call func() (uint32, error)) Outcome {
		for try := 0; ; try++ {
			st, err := call()
			if err != nil {
				return OutcomeTimeout
			}
			if st == 0 {
				return OutcomeOK
			}
			if try >= cfg.ShedRetries {
				return OutcomeShed
			}
			cs.n.ShedWaits++
			sleep(c, sim.Micros(float64(st)*float64(try+1)))
		}
	}

	// runReq executes one arrival's operation to its final classification.
	// me is the client's node id.
	runReq := func(c threads.Ctx, cs *clientState, me int, op Op, key uint32, val int32, req uint32, start sim.Time) {
		srv := int(key) % cfg.Servers
		var out Outcome
		var lat sim.Duration
		switch op {
		case OpGet:
			out = withShedRetry(c, cs, func() (uint32, error) {
				st, _, _, err := get.CallIdempotent(c, srv, key, cfg.CallTimeout, cfg.CallAttempts)
				return st, err
			})
		case OpPut:
			out = withShedRetry(c, cs, func() (uint32, error) {
				st, _, err := put.CallIdempotent(c, srv, key, req, val, cfg.CallTimeout, cfg.CallAttempts)
				return st, err
			})
		case OpCas:
			// Read-modify-write: the read supplies the expected version;
			// a lost race (swapped=false) is still a completed answer.
			var expect uint32
			out = withShedRetry(c, cs, func() (uint32, error) {
				st, ver, _, err := get.CallIdempotent(c, srv, key, cfg.CallTimeout, cfg.CallAttempts)
				if err == nil && st == 0 {
					expect = ver
				}
				return st, err
			})
			if out == OutcomeOK {
				out = withShedRetry(c, cs, func() (uint32, error) {
					st, _, _, err := cas.CallIdempotent(c, srv, key, req, expect, val, cfg.CallTimeout, cfg.CallAttempts)
					return st, err
				})
			}
		case OpLock:
			var epoch uint32
			out = withShedRetry(c, cs, func() (uint32, error) {
				st, ep, err := lock.CallIdempotent(c, srv, key, req, cfg.CallTimeout, cfg.CallAttempts)
				if err == nil && st == 0 {
					epoch = ep
				}
				return st, err
			})
			// SLO latency for locks is the time to the lease decision;
			// the hold that follows is the client's own dwell time.
			lat = c.P.Now().Sub(start)
			if out == OutcomeOK {
				if epoch == 0 {
					cs.n.LockDenied++
				} else {
					sleep(c, cfg.LockHold)
					rel := withShedRetry(c, cs, func() (uint32, error) {
						st, ok, err := unlock.CallIdempotent(c, srv, key, req+1, epoch, cfg.CallTimeout, cfg.CallAttempts)
						if err == nil && st == 0 && !ok {
							cs.n.UnlockFails++
						}
						return st, err
					})
					if rel != OutcomeOK {
						out = rel // the arrival is classified by its last failing step
					}
				}
			}
		}
		if lat == 0 {
			lat = c.P.Now().Sub(start)
		}
		switch out {
		case OutcomeOK:
			cs.n.OK++
		case OutcomeShed:
			cs.n.ShedGiveUps++
		case OutcomeTimeout:
			cs.n.TimeoutGiveUps++
		}
		if cfg.Probe != nil {
			cfg.Probe.RequestDone(c.P.Now(), me, op, out, lat)
		}
		cs.outstanding--
	}

	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		if me < cfg.Servers {
			return // servers serve from the scheduler idle loop
		}
		cid := me - cfg.Servers
		cs := r.cls[cid]
		node := c.Node()
		endT := sim.Time(cfg.Duration)
		// Open-loop generation: arrivals land at absolute times computed
		// from the RNG alone, never from how long the previous request
		// took. If the node falls behind its schedule (CPU saturated by
		// in-flight requests), the next arrival fires immediately — the
		// backlog is the load's problem, not the generator's. The arrival
		// count is therefore a pure function of (seed, client, mode),
		// identical across systems and shard counts.
		var next sim.Time
		for {
			gap := nextArrival(cs.rng, cfg.MeanIAT, cfg.RateX, cfg.Mode, next, cs.phase)
			next = next.Add(gap)
			if next >= endT {
				break
			}
			// Every arrival consumes the same draws whatever happens to
			// it, so the stream is a pure function of (seed, client).
			z := cs.rng.intn(1000)
			key := zipf.pick(cs.rng, cfg.Keys)
			val := int32(cs.rng.intn(1 << 16))
			if d := next.Sub(c.P.Now()); d > 0 {
				sleep(c, d)
			}
			now := c.P.Now()
			if node.Crashed() {
				return
			}
			var op Op
			switch {
			case z < cfg.MixGet:
				op = OpGet
			case z < cfg.MixGet+cfg.MixPut:
				op = OpPut
			case z < cfg.MixGet+cfg.MixPut+cfg.MixCas:
				op = OpCas
			default:
				op = OpLock
			}
			cs.n.Arrivals++
			if cs.outstanding >= cfg.MaxOutstanding {
				cs.n.Drops++
				if cfg.Probe != nil {
					cfg.Probe.RequestDone(now, me, op, OutcomeDrop, 0)
				}
				continue
			}
			cs.outstanding++
			req := cs.reqCtr
			cs.reqCtr += 2 // a lock cycle uses req and req+1
			start := next  // SLO latency runs from the scheduled arrival, so client-side backlog counts against the service
			c.S.Create(c, fmt.Sprintf("kv/req/%d.%d", cid, req), false, func(c threads.Ctx) {
				runReq(c, cs, me, op, key, val, req, start)
			})
		}
		for cs.outstanding > 0 {
			if node.Crashed() {
				return
			}
			if c.P.Now() > cfg.MaxTime {
				cs.err = fmt.Errorf("kv: client %d exceeded MaxTime %v with %d requests in flight",
					cid, cfg.MaxTime, cs.outstanding)
				return
			}
			sleep(c, sim.Micros(200))
		}
	})
	if err != nil {
		return apps.Result{}, Stats{}, fmt.Errorf("kv: %w", err)
	}

	var st Stats
	st.PerClient = make([]ClientCounts, cfg.Clients)
	var runErr error
	for i, cs := range r.cls {
		cs.n.Crashed = u.Machine().Crashed(cfg.Servers + i)
		st.PerClient[i] = cs.n
		st.Arrivals += cs.n.Arrivals
		st.OK += cs.n.OK
		st.Drops += cs.n.Drops
		st.ShedGiveUps += cs.n.ShedGiveUps
		st.TimeoutGiveUps += cs.n.TimeoutGiveUps
		st.ShedWaits += cs.n.ShedWaits
		if cs.err != nil && runErr == nil {
			runErr = cs.err
		}
	}
	st.PerServer = make([]ServerCounts, cfg.Servers)
	st.Records = make([][]Event, cfg.Servers)
	answer := fnvInit()
	for i, s := range r.srvs {
		keys := make([]uint32, 0, len(s.store))
		for k := range s.store {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		answer = fnvMix(answer, uint64(i))
		for _, k := range keys {
			ent := s.store[k]
			s.n.VerSum += uint64(ent.ver)
			answer = fnvMix(answer, uint64(k))
			answer = fnvMix(answer, uint64(ent.ver))
			answer = fnvMix(answer, uint64(uint32(ent.val)))
			answer = fnvMix(answer, uint64(ent.lockEpoch))
		}
		s.n.Keys = len(s.store)
		st.PerServer[i] = s.n
		st.Sheds += s.n.Shed
		st.Records[i] = s.rec
	}
	st.RecordHash = RecordHash(st.Records)

	var oams, succ uint64
	for _, ps := range []rpc.ProcStats{get.Stats(), put.Stats(), cas.Stats(), lock.Stats(), unlock.Stats()} {
		st.Timeouts += ps.Timeouts
		st.Retries += ps.Retries
		st.CallGiveUps += ps.GiveUps
		st.Promoted += ps.Promoted
		oams += ps.OAMs
		succ += ps.Successes
	}
	st.StaleReplies = rt.StaleReplies()
	st.Rel = tr.Stats()
	st.Fault = u.Machine().FaultStats()
	st.FaultHash = u.Machine().FaultTraceHash()
	for i := 0; i < nodes; i++ {
		st.CrashedAt = append(st.CrashedAt, u.Machine().Crashed(i))
	}
	if runErr != nil {
		return apps.Result{}, st, runErr
	}

	res := apps.Result{
		System:  cfg.System,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  answer,
	}
	apps.FillResult(&res, u, oams, succ)
	return res, st, nil
}
