package sim

import (
	"strings"
	"testing"
	"time"
)

func TestKernelCallbackOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.At(10, func() { order = append(order, "b") })
	e.At(5, func() { order = append(order, "a") })
	e.At(10, func() { order = append(order, "c") }) // same time: FIFO by seq
	e.At(20, func() { order = append(order, "d") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abcd" {
		t.Fatalf("order = %q, want abcd", got)
	}
	if e.Now() != 20 {
		t.Fatalf("final time = %v, want 20", e.Now())
	}
}

func TestChargeAdvancesTime(t *testing.T) {
	e := New(1)
	var at1, at2 Time
	e.Spawn("worker", func(p *Proc) {
		p.Charge(Micros(10))
		at1 = p.Now()
		p.Charge(Micros(2.5))
		at2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != Time(Micros(10)) {
		t.Errorf("after first charge: %v, want 10us", at1)
	}
	if at2 != Time(Micros(12.5)) {
		t.Errorf("after second charge: %v, want 12.5us", at2)
	}
}

func TestChargeZeroYields(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Charge(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Charge(0)
		order = append(order, "b2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1 b1 a2 b2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(1)
	var woke Time
	var waiter *Proc
	waiter = e.Spawn("waiter", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Charge(Micros(42))
		waiter.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(Micros(42)) {
		t.Fatalf("woke at %v, want 42us", woke)
	}
	if e.Live() != 0 {
		t.Fatalf("live procs = %d, want 0", e.Live())
	}
}

func TestUnparkAfter(t *testing.T) {
	e := New(1)
	var woke Time
	waiter := e.Spawn("waiter", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.After(Micros(1), func() { waiter.UnparkAfter(Micros(9)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(Micros(10)) {
		t.Fatalf("woke at %v, want 10us", woke)
	}
}

func TestQuiescenceLeavesParkedProcs(t *testing.T) {
	e := New(1)
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 1 {
		t.Fatalf("live = %d, want 1 parked proc", e.Live())
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("live after Shutdown = %d, want 0", e.Live())
	}
}

func TestShutdownReleasesChargeWaiters(t *testing.T) {
	e := New(1)
	e.Spawn("sleeper", func(p *Proc) { p.Charge(Second) })
	if err := e.RunUntil(Time(Micros(1))); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("live after Shutdown = %d, want 0", e.Live())
	}
}

func TestPanicPropagates(t *testing.T) {
	e := New(1)
	e.Spawn("bad", func(p *Proc) {
		p.Charge(Micros(1))
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking proc")
	}
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("error type %T, want *PanicError", err)
	}
	if pe.Proc != "bad" || pe.Value != "boom" {
		t.Fatalf("unexpected panic error: %v / %v", pe.Proc, pe.Value)
	}
	e.Shutdown()
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.After(Micros(10), tick)
	}
	e.After(Micros(10), tick)
	if err := e.RunUntil(Time(Micros(55))); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != Time(Micros(55)) {
		t.Fatalf("now = %v, want 55us", e.Now())
	}
	e.Shutdown()
}

func TestStop(t *testing.T) {
	e := New(1)
	n := 0
	var loop func()
	loop = func() {
		n++
		if n == 3 {
			e.Stop()
			return
		}
		e.After(Micros(1), loop)
	}
	e.After(0, loop)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	e.Shutdown()
}

// TestDeterminism runs the same mixed workload twice and demands identical
// schedule hashes and final times.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, Time) {
		e := New(99)
		h := NewHashTracer()
		e.SetTracer(h)
		var procs []*Proc
		for i := 0; i < 8; i++ {
			p := e.Spawn("w", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Charge(Duration(e.Rand().Intn(1000)))
					if e.Rand().Intn(4) == 0 {
						p.Charge(0)
					}
				}
			})
			procs = append(procs, p)
		}
		_ = procs
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return h.Sum(), e.Now()
	}
	h1, t1 := run()
	h2, t2 := run()
	if h1 != h2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%x,%v) vs (%x,%v)", h1, t1, h2, t2)
	}
}

func TestChargeFromWrongContextPanics(t *testing.T) {
	e := New(1)
	var victim *Proc
	victim = e.Spawn("victim", func(p *Proc) { p.Park() })
	e.Spawn("abuser", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic charging another proc")
			}
		}()
		victim.Charge(Micros(1))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
}

func TestSpawnFromProc(t *testing.T) {
	e := New(1)
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Charge(Micros(5))
		e.Spawn("child", func(c *Proc) {
			c.Charge(Micros(3))
			childTime = c.Now()
		})
		p.Charge(Micros(100))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != Time(Micros(8)) {
		t.Fatalf("child finished at %v, want 8us", childTime)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Micros(1.5) != 1500*time.Nanosecond {
		t.Errorf("Micros(1.5) = %v", Micros(1.5))
	}
	tm := Time(0).Add(Micros(10))
	if tm.Micros() != 10 {
		t.Errorf("Micros() = %v", tm.Micros())
	}
	if tm.Sub(Time(Micros(4))) != Micros(6) {
		t.Errorf("Sub wrong")
	}
	if Time(1500).String() != "1.500us" {
		t.Errorf("String = %q", Time(1500).String())
	}
	if s := Time(Second).Seconds(); s != 1 {
		t.Errorf("Seconds = %v", s)
	}
}

func TestUnparkNonParkedPanics(t *testing.T) {
	e := New(1)
	runner := e.Spawn("runner", func(p *Proc) { p.Charge(Micros(100)) })
	e.Spawn("abuser", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic unparking non-parked proc")
			}
		}()
		runner.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	e := New(1)
	e.Spawn("w", func(p *Proc) {
		p.Charge(Micros(1))
		p.Charge(Micros(1))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Events() == 0 || e.Dispatches() < 3 {
		t.Fatalf("counters not advancing: events=%d dispatches=%d", e.Events(), e.Dispatches())
	}
}
