package sched

import "repro/internal/sim"

// detector is a phi-accrual-style failure detector reduced to its
// deterministic core: per agent it keeps an EWMA of heartbeat
// interarrival times and reports suspicion as the ratio of the current
// silence to that mean. Crossing Config.PhiThreshold declares the agent
// dead; any later heartbeat readmits it. Ratios of virtual-time integers
// are exact enough here — there is no measurement noise to model, only
// fault-plan-induced silence.
type detector struct {
	interval sim.Duration
	views    []agentView // indexed by agent id; slot 0 unused
}

type agentView struct {
	last    sim.Time // arrival of the newest heartbeat
	mean    float64  // EWMA of interarrival, ns
	lastSeq uint64
	alive   bool
	beats   uint64
}

func newDetector(agents int, interval sim.Duration) *detector {
	d := &detector{interval: interval, views: make([]agentView, agents+1)}
	for i := 1; i <= agents; i++ {
		d.views[i] = agentView{mean: float64(interval), alive: true}
	}
	return d
}

// beat records a heartbeat. Sequence numbers are per-agent monotonic;
// a duplicate or reordered beat (seq <= the newest seen) is reported
// stale and ignored. recovered is true when the beat readmits an agent
// the detector had declared dead; the caller records the transition.
func (d *detector) beat(agent int, seq uint64, now sim.Time) (recovered, stale bool) {
	v := &d.views[agent]
	if seq <= v.lastSeq {
		return false, true
	}
	v.lastSeq = seq
	if v.beats > 0 {
		gap := float64(now.Sub(v.last))
		// EWMA with alpha = 1/4; the floor keeps one fast beat after a
		// long silence from collapsing the mean and tripping the
		// threshold on ordinary jitter.
		v.mean = 0.75*v.mean + 0.25*gap
		if min := float64(d.interval) / 4; v.mean < min {
			v.mean = min
		}
	}
	v.beats++
	v.last = now
	recovered = !v.alive
	v.alive = true
	return recovered, false
}

// phi is the suspicion level of an agent at virtual time now: elapsed
// silence in units of the mean interarrival.
func (d *detector) phi(agent int, now sim.Time) float64 {
	v := &d.views[agent]
	if v.mean <= 0 {
		return 0
	}
	return float64(now.Sub(v.last)) / v.mean
}

// markDead records the death verdict. Only the scheduler's control loop
// calls this, so deaths happen at loop ticks, never concurrently with a
// placement decision.
func (d *detector) markDead(agent int) { d.views[agent].alive = false }

// isAlive reports the detector's current verdict.
func (d *detector) isAlive(agent int) bool { return d.views[agent].alive }
