package obs

import (
	"math"

	"repro/internal/sim"
)

// TotalCount returns the histogram's sample count aggregated across all
// nodes.
func (h *Histogram) TotalCount() uint64 {
	var n uint64
	for _, v := range h.ns {
		n += v
	}
	return n
}

// Quantile extracts the q-th quantile (0 < q <= 1) of all samples,
// aggregated across nodes, as a bucket upper bound.
//
// Bucket-boundary rounding: a histogram only knows which bucket each
// sample fell in, so the quantile is resolved to the upper bound of the
// bucket holding the sample of rank ceil(q*n) (1-based, over the samples
// sorted ascending). The true quantile is therefore <= the returned
// value — quantiles round up, never down, and coarser buckets only make
// the bound looser. This is the right direction for SLO reporting: a
// reported p99 of 400us means at least 99% of requests finished within
// 400us of virtual time.
//
// The final overflow bucket has no finite upper bound. When the rank
// lands there, Quantile returns the last finite bound with ok=false: the
// value is then a lower bound, not an upper bound, and callers should
// render it as ">bound". A histogram with no samples returns (0, false).
func (h *Histogram) Quantile(q float64) (sim.Duration, bool) {
	if q <= 0 || q > 1 {
		panic("obs: Quantile wants 0 < q <= 1")
	}
	n := h.TotalCount()
	if n == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b := 0; b <= len(h.bounds); b++ {
		for node := range h.counts {
			if row := h.counts[node]; row != nil {
				cum += row[b]
			}
		}
		if cum >= rank {
			if b < len(h.bounds) {
				return h.bounds[b], true
			}
			break
		}
	}
	// Rank landed in the overflow bucket (or bounds is empty).
	if len(h.bounds) == 0 {
		return 0, false
	}
	return h.bounds[len(h.bounds)-1], false
}

// Percentiles returns the p50, p99, and p999 upper bounds (see Quantile
// for the bucket-boundary rounding contract). Ranks that land in the
// overflow bucket report the last finite bound — use Quantile directly
// when the distinction matters.
func (h *Histogram) Percentiles() (p50, p99, p999 sim.Duration) {
	p50, _ = h.Quantile(0.50)
	p99, _ = h.Quantile(0.99)
	p999, _ = h.Quantile(0.999)
	return
}

// Materialize pre-allocates the counter's per-node storage. Instruments
// normally allocate lazily on first update, which is free on the
// sequential kernel but is a data race when two shards of a sharded
// engine first touch the same instrument inside one time window: call
// Materialize (before the run) on any instrument that shard-parallel
// code updates, so every update is a plain array store to a distinct
// per-node slot.
func (c *Counter) Materialize() { c.touch() }

// Materialize pre-allocates the gauge's per-node storage (see
// Counter.Materialize).
func (g *Gauge) Materialize() {
	if g.vals == nil {
		g.vals = make([]int64, g.nodes)
		g.max = make([]int64, g.nodes)
	}
}

// Materialize pre-allocates the histogram's per-node storage including
// every node's bucket row (see Counter.Materialize).
func (h *Histogram) Materialize() {
	if h.counts == nil {
		h.counts = make([][]uint64, h.nodes)
		h.sums = make([]sim.Duration, h.nodes)
		h.ns = make([]uint64, h.nodes)
	}
	for node := range h.counts {
		if h.counts[node] == nil {
			h.counts[node] = make([]uint64, len(h.bounds)+1)
		}
	}
}
