package obs

import (
	"fmt"

	"repro/internal/apps/kv"
	"repro/internal/sim"
)

// kvOutcomes enumerates kv.Outcome values in order, for per-outcome
// counters.
var kvOutcomes = [4]kv.Outcome{
	kv.OutcomeOK, kv.OutcomeDrop, kv.OutcomeShed, kv.OutcomeTimeout,
}

// kvLatBounds are the SLO-grade latency buckets: tight enough at the
// bottom to resolve a healthy p50, wide enough at the top to hold the
// retry-and-back-off tail without overflowing.
var kvLatBounds = []sim.Duration{
	sim.Micros(10), sim.Micros(30), sim.Micros(100), sim.Micros(300),
	sim.Micros(1000), sim.Micros(3000), sim.Micros(10000), sim.Micros(30000),
	sim.Micros(100000),
}

// KVLatency exposes the service latency histogram (nil unless
// Options.Metrics): feed it to Histogram.Percentiles for the SLO report.
func (c *Collector) KVLatency() *Histogram { return c.hKVLat }

// tidKV is the key-value service track: admission sheds and failed
// arrivals, all on the node they happened on. Like the scheduler track,
// its thread_name metadata is emitted lazily on the first service event,
// so traces of programs without the service are byte-identical to before
// the track existed.
const tidKV = 8

// kvTrack lazily names the service track on one node.
func (c *Collector) kvTrack(node int) {
	if c.kvMeta == nil {
		c.kvMeta = make(map[int]bool)
	}
	if !c.kvMeta[node] {
		c.kvMeta[node] = true
		c.tb.threadMeta(node, tidKV, "kv")
	}
}

// --- kv.Probe ---

// RequestDone counts one arrival's final classification and feeds the
// SLO latency histogram. Successful requests leave no trace instant —
// their rpc spans already tell that story — but every failed arrival is
// marked where it failed.
func (c *Collector) RequestDone(t sim.Time, client int, op kv.Op, out kv.Outcome, lat sim.Duration) {
	if c.cKVDone[0] != nil {
		c.cKVDone[int(out)].Inc(client)
		if out != kv.OutcomeDrop {
			c.hKVLat.Observe(client, lat)
		}
	}
	if c.tb != nil && out != kv.OutcomeOK {
		c.kvTrack(client)
		c.tb.instant("kv "+out.String(), "kv", t, client, tidKV,
			fmt.Sprintf(`{"op":"%s","latency_us":%.1f}`, op.String(), float64(lat)/float64(sim.Microsecond)))
	}
}

// ServerShed counts one admission rejection on the shedding server.
func (c *Collector) ServerShed(t sim.Time, server, depth int) {
	if c.cKVSheds != nil {
		c.cKVSheds.Inc(server)
	}
	if c.tb != nil {
		c.kvTrack(server)
		c.tb.instant("kv shed", "kv", t, server, tidKV,
			fmt.Sprintf(`{"depth":%d}`, depth))
	}
}
