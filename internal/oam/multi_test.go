package oam

import (
	"fmt"
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// multiRig builds a 2-node universe whose node 1 routes incoming "call"
// messages through RunMulti. The packet words carry the compatibility
// position: W0 is the method class, W1 the disjointness key, W2 an opaque
// tag handed to body and settled. All rig state lives on node 1's shard,
// so tests may read it from node 1's SPMD body without synchronization.
type multiRig struct {
	eng      *sim.Engine
	u        *am.Universe
	d        *Dispatcher
	call     am.HandlerID
	outcomes map[uint64]Outcome
	reasons  map[uint64]Reason
}

func newMultiRig(t *testing.T, opts Options, body func(e *Env, tag uint64)) *multiRig {
	t.Helper()
	eng := sim.New(31)
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	r := &multiRig{
		eng: eng, u: u, d: NewDispatcher(opts),
		outcomes: map[uint64]Outcome{}, reasons: map[uint64]Reason{},
	}
	r.call = u.Register("call", func(c threads.Ctx, pkt *cm5.Packet) {
		class, key, tag := int(int64(pkt.W0)), pkt.W1, pkt.W2
		r.d.RunMulti(c, u.Endpoint(c.Node().ID()), "call", class, key, true,
			func(e *Env) { body(e, tag) },
			func(_ threads.Ctx, o Outcome, re Reason) {
				r.outcomes[tag] = o
				r.reasons[tag] = re
			})
	})
	t.Cleanup(eng.Shutdown)
	return r
}

// send issues one call from node 0 carrying (class, key, tag).
func (r *multiRig) send(c threads.Ctx, class int, key, tag uint64) {
	r.u.Endpoint(0).Send(c, 1, r.call, [4]uint64{uint64(int64(class)), key, tag}, nil)
}

// TestMultiCompatibleHandlersOverlap: two always-compatible dispatches are
// both admitted straight onto cores and their executions overlap in
// virtual time — the whole point of multiactive dispatch.
func TestMultiCompatibleHandlersOverlap(t *testing.T) {
	tab := NewCompatTable(1)
	tab.Allow(0, 0)
	type span struct{ start, end sim.Time }
	spans := map[uint64]span{}
	r := newMultiRig(t, Options{Strategy: Rerun, Cores: 2, Compat: tab},
		func(e *Env, tag uint64) {
			start := e.Ctx().P.Now()
			e.Compute(sim.Micros(50))
			spans[tag] = span{start, e.Ctx().P.Now()}
		})
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			r.send(c, 0, 1, 1)
			r.send(c, 0, 2, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.d.Stats()
	if st.Total != 2 || st.Succeeded != 2 || st.CompatAdmitted != 2 || st.CompatQueued != 0 {
		t.Fatalf("stats %v", st)
	}
	a, b := spans[1], spans[2]
	if a.end == 0 || b.end == 0 {
		t.Fatalf("spans incomplete: %+v %+v", a, b)
	}
	if !(a.start < b.end && b.start < a.end) {
		t.Fatalf("executions did not overlap: %+v vs %+v", a, b)
	}
	if r.outcomes[1] != Completed || r.outcomes[2] != Completed {
		t.Fatalf("outcomes %v", r.outcomes)
	}
}

// TestMultiIncompatibleSerializeFIFO: with an all-incompatible matrix only
// one execution runs at a time, later arrivals park in the compatibility
// queue, and completion order is arrival order.
func TestMultiIncompatibleSerializeFIFO(t *testing.T) {
	tab := NewCompatTable(1) // no Allow: class 0 excludes itself
	var order []uint64
	type span struct{ start, end sim.Time }
	spans := map[uint64]span{}
	r := newMultiRig(t, Options{Strategy: Rerun, Cores: 2, Compat: tab},
		func(e *Env, tag uint64) {
			start := e.Ctx().P.Now()
			e.Compute(sim.Micros(20))
			order = append(order, tag)
			spans[tag] = span{start, e.Ctx().P.Now()}
		})
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			r.send(c, 0, 0, 1)
			r.send(c, 0, 0, 2)
			r.send(c, 0, 0, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.d.Stats()
	if st.Total != 3 || st.Succeeded != 3 {
		t.Fatalf("stats %v", st)
	}
	if st.CompatAdmitted+st.CompatQueued != st.Total || st.CompatQueued < 2 {
		t.Fatalf("admission split admitted=%d queued=%d", st.CompatAdmitted, st.CompatQueued)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order %v, want [1 2 3]", order)
	}
	for i := uint64(1); i < 3; i++ {
		if spans[i+1].start < spans[i].end {
			t.Fatalf("incompatible executions overlapped: %+v then %+v", spans[i], spans[i+1])
		}
	}
}

// TestMultiDisjointKeyAdmission: a disjoint-key clause admits concurrent
// executions exactly when the keys differ.
func TestMultiDisjointKeyAdmission(t *testing.T) {
	for _, sameKey := range []bool{true, false} {
		tab := NewCompatTable(1)
		tab.AllowDisjoint(0, 0)
		r := newMultiRig(t, Options{Strategy: Rerun, Cores: 2, Compat: tab},
			func(e *Env, tag uint64) { e.Compute(sim.Micros(20)) })
		_, err := r.u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				key2 := uint64(7)
				if !sameKey {
					key2 = 8
				}
				r.send(c, 0, 7, 1)
				r.send(c, 0, key2, 2)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := r.d.Stats()
		if st.Succeeded != 2 {
			t.Fatalf("sameKey=%v: stats %v", sameKey, st)
		}
		wantQueued := uint64(0)
		if sameKey {
			wantQueued = 1
		}
		if st.CompatQueued != wantQueued {
			t.Fatalf("sameKey=%v: queued %d, want %d (stats %v)", sameKey, st.CompatQueued, wantQueued, st)
		}
	}
}

// TestMultiAbortReleasesCoreShadowSlot: the abort-semantics gate. A
// compat-admitted execution that aborts mid-run (LockBusy on a held
// mutex) must release its core — but its shadow slot keeps incompatible
// arrivals queued until the rerun thread finishes, and peers already
// running are not perturbed.
func TestMultiAbortReleasesCoreShadowSlot(t *testing.T) {
	tab := NewCompatTable(2)
	tab.Allow(0, 0) // class 1 is incompatible with class 0 and itself
	var mu *threads.Mutex
	var order []uint64
	r := newMultiRig(t, Options{Strategy: Rerun, Cores: 2, Compat: tab},
		func(e *Env, tag uint64) {
			if tag == 1 {
				e.Lock(mu) // held by node 1's SPMD body: aborts, promotes
				e.Unlock(mu)
			}
			e.Compute(sim.Micros(1))
			order = append(order, tag)
		})
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			r.send(c, 0, 0, 1) // aborter (class 0)
			r.send(c, 1, 0, 2) // incompatible with the shadow slot (class 1)
			return
		}
		mu.Lock(c)
		for r.d.Stats().Promoted == 0 {
			ep.Poll(c)
		}
		// The abort released the core, so the dispatch settled Promoted —
		// but the shadow slot must still hold back the incompatible peer.
		st := r.d.Stats()
		if st.CompatQueued != 1 {
			t.Errorf("peer not queued behind shadow slot: stats %v", st)
		}
		if len(order) != 0 {
			t.Errorf("work ran under the shadow slot: order %v", order)
		}
		mu.Unlock(c)
		for len(order) < 2 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.d.Stats()
	if st.Total != 2 || st.Promoted != 1 || st.Succeeded != 1 || st.ByReason[LockBusy] != 1 {
		t.Fatalf("stats %v", st)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order %v, want [1 2]: the queued peer must wait for the rerun", order)
	}
	if r.outcomes[1] != Promoted || r.reasons[1] != LockBusy || r.outcomes[2] != Completed {
		t.Fatalf("outcomes %v reasons %v", r.outcomes, r.reasons)
	}
	if mu.Held() {
		t.Fatal("lock leaked")
	}
}

// TestMultiAbortDoesNotPerturbPeer: an abort on one core leaves a
// compatible peer already running on another core untouched — the peer
// commits optimistically with its own virtual-time span intact.
func TestMultiAbortDoesNotPerturbPeer(t *testing.T) {
	tab := NewCompatTable(1)
	tab.Allow(0, 0)
	var peerEnd sim.Time
	r := newMultiRig(t, Options{Strategy: Rerun, Cores: 2, Compat: tab, HandlerBudget: sim.Micros(10)},
		func(e *Env, tag uint64) {
			if tag == 1 {
				e.Compute(sim.Micros(10) + 1) // one ns over budget: aborts
				return
			}
			e.Compute(sim.Micros(5))
			peerEnd = e.Ctx().P.Now()
		})
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			r.send(c, 0, 1, 1)
			r.send(c, 0, 2, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.d.Stats()
	if st.Total != 2 || st.Succeeded != 1 || st.Promoted != 1 || st.ByReason[TooLong] != 1 {
		t.Fatalf("stats %v", st)
	}
	if r.outcomes[1] != Promoted || r.reasons[1] != TooLong {
		t.Fatalf("aborter settled %v/%v", r.outcomes[1], r.reasons[1])
	}
	if r.outcomes[2] != Completed || peerEnd == 0 {
		t.Fatalf("peer perturbed: outcome %v end %v", r.outcomes[2], peerEnd)
	}
}

// TestMultiHandlerBudgetBoundary extends the budget-boundary suite to
// Cores > 1: computing exactly the budget does not abort; one nanosecond
// more does — on a core worker just like on the polling context.
func TestMultiHandlerBudgetBoundary(t *testing.T) {
	for _, over := range []bool{false, true} {
		extra := sim.Duration(0)
		if over {
			extra = 1
		}
		tab := NewCompatTable(1)
		tab.Allow(0, 0)
		r := newMultiRig(t, Options{Strategy: Rerun, Cores: 2, Compat: tab, HandlerBudget: sim.Micros(10)},
			func(e *Env, tag uint64) {
				e.Compute(sim.Micros(10) + extra)
			})
		_, err := r.u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				r.send(c, 0, 1, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := r.d.Stats()
		if over && (st.ByReason[TooLong] != 1 || st.Promoted != 1) {
			t.Fatalf("over budget: stats %v", st)
		}
		if !over && (st.ByReason[TooLong] != 0 || st.Succeeded != 1) {
			t.Fatalf("at budget: stats %v", st)
		}
	}
}

// TestMultiNackDrainsQueue: under the Nack strategy an abort settles
// NackNeeded and the worker immediately continues with the queued head on
// the same core.
func TestMultiNackDrainsQueue(t *testing.T) {
	tab := NewCompatTable(1) // all-incompatible: second call queues
	var order []uint64
	r := newMultiRig(t, Options{Strategy: Nack, Cores: 2, Compat: tab, HandlerBudget: sim.Micros(10)},
		func(e *Env, tag uint64) {
			if tag == 1 {
				e.Compute(sim.Micros(10) + 1) // aborts; Nack settles it
			}
			order = append(order, tag)
		})
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			r.send(c, 0, 0, 1)
			r.send(c, 0, 0, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.d.Stats()
	if st.Total != 2 || st.Nacked != 1 || st.Succeeded != 1 || st.CompatQueued != 1 {
		t.Fatalf("stats %v", st)
	}
	if r.outcomes[1] != NackNeeded || r.reasons[1] != TooLong {
		t.Fatalf("aborter settled %v/%v", r.outcomes[1], r.reasons[1])
	}
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("order %v, want [2]: nacked body never completes, queued head runs", order)
	}
}

// TestStatsStringRoundTrip: String emits every counter — including the
// multiactive and adaptive ones — in a form Sscanf recovers exactly.
func TestStatsStringRoundTrip(t *testing.T) {
	in := Stats{
		Total: 120, Succeeded: 70, Promoted: 30, Nacked: 20,
		CompatAdmitted: 90, CompatQueued: 30, BudgetRaised: 4, BudgetLowered: 5,
	}
	in.ByReason[LockBusy] = 11
	in.ByReason[CondFalse] = 12
	in.ByReason[NetworkFull] = 13
	in.ByReason[TooLong] = 14
	var out Stats
	n, err := fmt.Sscanf(in.String(), statsFormat,
		&out.Total, &out.Succeeded, &out.Promoted, &out.Nacked,
		&out.CompatAdmitted, &out.CompatQueued, &out.BudgetRaised, &out.BudgetLowered,
		&out.ByReason[LockBusy], &out.ByReason[CondFalse], &out.ByReason[NetworkFull], &out.ByReason[TooLong])
	if err != nil || n != 12 {
		t.Fatalf("Sscanf(%q): n=%d err=%v", in.String(), n, err)
	}
	if out != in {
		t.Fatalf("round trip lost counters:\n in  %v\n out %v", in, out)
	}
}

// TestStatsAdd: Add merges every counter, including the multiactive and
// adaptive ones.
func TestStatsAdd(t *testing.T) {
	a := Stats{
		Total: 1, Succeeded: 2, Promoted: 3, Nacked: 4,
		CompatAdmitted: 5, CompatQueued: 6, BudgetRaised: 7, BudgetLowered: 8,
		ByReason: [numReasons]uint64{9, 10, 11, 12},
	}
	b := Stats{
		Total: 100, Succeeded: 200, Promoted: 300, Nacked: 400,
		CompatAdmitted: 500, CompatQueued: 600, BudgetRaised: 700, BudgetLowered: 800,
		ByReason: [numReasons]uint64{900, 1000, 1100, 1200},
	}
	want := Stats{
		Total: 101, Succeeded: 202, Promoted: 303, Nacked: 404,
		CompatAdmitted: 505, CompatQueued: 606, BudgetRaised: 707, BudgetLowered: 808,
		ByReason: [numReasons]uint64{909, 1010, 1111, 1212},
	}
	a.Add(&b)
	if a != want {
		t.Fatalf("Add mismatch:\n got  %v\n want %v", a, want)
	}
}

// TestEnumStringFallbacks: Strategy and Reason name their values and fall
// back to Strategy(%d)/Reason(%d) for out-of-range codes.
func TestEnumStringFallbacks(t *testing.T) {
	strats := map[Strategy]string{
		Rerun: "rerun", Continuation: "continuation", Nack: "nack",
		Strategy(7): "Strategy(7)",
	}
	for s, want := range strats {
		if got := s.String(); got != want {
			t.Errorf("Strategy %d: %q, want %q", uint8(s), got, want)
		}
	}
	reasons := map[Reason]string{
		LockBusy: "lock-busy", CondFalse: "cond-false",
		NetworkFull: "network-full", TooLong: "too-long",
		Reason(9): "Reason(9)",
	}
	for r, want := range reasons {
		if got := r.String(); got != want {
			t.Errorf("Reason %d: %q, want %q", uint8(r), got, want)
		}
	}
}
