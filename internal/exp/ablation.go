package exp

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/tsp"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// AblationRow is one promotion-strategy measurement.
type AblationRow struct {
	Strategy  string
	Elapsed   sim.Duration
	OAMs      uint64
	Succ      uint64
	Promoted  uint64
	Adopted   uint64 // lazily promoted in place (continuation only)
	Nacked    uint64
	Retries   uint64 // client-side re-sends after a nack
	CallsMade uint64
}

// Ablation compares the three abort strategies of section 2 — rerun,
// continuation (lazy promotion), and negative acknowledgment — on a
// contended workload: several clients increment a counter whose lock the
// server's own thread holds about half the time. The paper's prototype
// implements rerun only; this experiment is the design-space exploration
// the mechanism enables.
func Ablation() []AblationRow {
	strats := []oam.Strategy{oam.Rerun, oam.Continuation, oam.Nack}
	rows := make([]AblationRow, len(strats))
	forEach(len(strats), func(i int) error {
		rows[i] = runAblation(strats[i])
		return nil
	})
	return rows
}

func runAblation(strat oam.Strategy) AblationRow {
	const (
		clients = 3
		calls   = 100
	)
	eng := sim.New(9)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, clients+1, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC, OAM: oam.Options{Strategy: strat}})
	mu := threads.NewMutex(u.Scheduler(0))
	count := 0
	inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Lock(mu)
		e.Compute(sim.Micros(3))
		count++
		e.Unlock(mu)
		return nil
	})
	doneClients := 0
	done := rt.DefineAsync("done", func(e *oam.Env, caller int, arg []byte) []byte {
		doneClients++
		return nil
	})
	elapsed, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			// Server thread: alternately holds the lock while polling
			// (forcing aborts) and releases it.
			ep := u.Endpoint(0)
			for doneClients < clients {
				mu.Lock(c)
				for i := 0; i < 10; i++ {
					ep.Poll(c)
					c.P.Charge(sim.Micros(2))
				}
				mu.Unlock(c)
				c.S.Yield(c)
				ep.Poll(c)
				c.S.Yield(c)
			}
			return
		}
		for i := 0; i < calls; i++ {
			inc.Call(c, 0, nil)
		}
		done.CallAsync(c, 0, nil)
	})
	if err != nil {
		panic(fmt.Sprintf("exp: ablation/%v deadlocked: %v", strat, err))
	}
	if count != clients*calls {
		panic(fmt.Sprintf("exp: ablation/%v lost increments: %d", strat, count))
	}
	st := rt.Dispatcher().Stats()
	adopted := uint64(0)
	for i := 0; i <= clients; i++ {
		adopted += u.Scheduler(i).Stats().Adopted
	}
	return AblationRow{
		Strategy: strat.String(),
		Elapsed:  sim.Duration(elapsed),
		OAMs:     st.Total, Succ: st.Succeeded,
		Promoted: st.Promoted, Adopted: adopted, Nacked: st.Nacked,
		Retries:   inc.Stats().Retries,
		CallsMade: inc.Stats().Calls,
	}
}

// AblationTable formats the strategy comparison.
func AblationTable() *Table {
	t := &Table{
		Title: "Promotion-strategy ablation (section 2): contended counter, 3 clients x 100 calls",
		Columns: []string{"Strategy", "Elapsed(ms)", "OAMs", "Successes",
			"Promoted", "Adopted", "Nacked", "Retries", "Client calls"},
		Notes: []string{
			"rerun re-executes the body; continuation adopts it in place; nack retries from the sender",
		},
	}
	for _, r := range Ablation() {
		t.Rows = append(t.Rows, []string{
			r.Strategy, fmt.Sprintf("%.2f", float64(r.Elapsed)/1e6),
			u64(r.OAMs), u64(r.Succ), u64(r.Promoted), u64(r.Adopted),
			u64(r.Nacked), u64(r.Retries), u64(r.CallsMade),
		})
	}
	return t
}

// SchedPolicyRow compares front- vs back-of-queue scheduling of incoming
// RPC threads (section 4.1: front always won), plus fixed- vs
// adaptive-budget abort thresholds on the optimistic dispatcher. The
// OAM columns only apply to the budget rows; the queue-policy rows run
// TRPC, where nothing dispatches optimistically.
type SchedPolicyRow struct {
	Policy  string
	Elapsed sim.Duration
	OAM     bool // Promoted/BudgetRaised are meaningful
	// Promoted counts optimistic dispatches promoted to threads;
	// BudgetRaised counts the adaptive controller's budget doublings
	// (always 0 for the fixed row).
	Promoted     uint64
	BudgetRaised uint64
}

// SchedPolicy measures TRPC latency under both ready-queue policies on a
// request-chain workload where prompt execution of incoming calls
// matters: each client's next call depends on its previous reply while a
// competing computation thread keeps the server busy.
func SchedPolicy() []SchedPolicyRow {
	run := func(back bool) sim.Duration {
		eng := sim.New(3)
		defer eng.Shutdown()
		u := am.NewUniverse(eng, 3, cm5.DefaultCostModel())
		rt := rpc.New(u, rpc.Options{Mode: rpc.TRPC, BackOfQueue: back})
		count := 0
		inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
			e.Compute(sim.Micros(2))
			count++
			return nil
		})
		stop := false
		stopP := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
			stop = true
			return nil
		})
		elapsed, err := u.SPMD(func(c threads.Ctx, node int) {
			switch node {
			case 0:
				// Server: a computation thread that yields between work
				// quanta, plus background threads competing for the CPU.
				for i := 0; i < 3; i++ {
					c.S.Create(c, "bg", false, func(cc threads.Ctx) {
						for !stop {
							cc.P.Charge(sim.Micros(20))
							cc.S.Yield(cc)
						}
					})
				}
				ep := u.Endpoint(0)
				for !stop {
					ep.Poll(c)
					c.P.Charge(sim.Micros(20))
					c.S.Yield(c)
				}
			case 1:
				for i := 0; i < 200; i++ {
					inc.Call(c, 0, nil)
				}
				stopP.CallAsync(c, 0, nil)
			}
		})
		if err != nil {
			panic(fmt.Sprintf("exp: schedpolicy deadlocked: %v", err))
		}
		return sim.Duration(elapsed)
	}
	rows := []SchedPolicyRow{
		{Policy: "front-of-queue"},
		{Policy: "back-of-queue"},
		{Policy: "fixed-budget", OAM: true},
		{Policy: "adaptive-budget", OAM: true},
	}
	forEach(len(rows), func(i int) error {
		if i < 2 {
			rows[i].Elapsed = run(i == 1)
		} else {
			rows[i].Elapsed, rows[i].Promoted, rows[i].BudgetRaised = runBudgetPolicy(i == 3)
		}
		return nil
	})
	return rows
}

// runBudgetPolicy measures the optimistic dispatcher on a long-handler
// request chain under a deliberately miscalibrated fixed budget (4 us
// budget, 12 us handlers — every dispatch aborts TooLong and pays a
// promotion) versus the adaptive per-node controller, which sees
// budget aborts with a shallow backlog and doubles the budget until the
// handlers complete inline.
func runBudgetPolicy(adaptive bool) (sim.Duration, uint64, uint64) {
	eng := sim.New(5)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 3, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC, OAM: oam.Options{
		HandlerBudget: sim.Micros(4),
		Adaptive:      adaptive,
	}})
	count := 0
	work := rt.Define("work", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Compute(sim.Micros(12))
		count++
		return nil
	})
	stop := false
	stopP := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
		stop = true
		return nil
	})
	elapsed, err := u.SPMD(func(c threads.Ctx, node int) {
		switch node {
		case 0:
			ep := u.Endpoint(0)
			for !stop {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
		case 1:
			for i := 0; i < 200; i++ {
				work.Call(c, 0, nil)
			}
			stopP.CallAsync(c, 0, nil)
		}
	})
	if err != nil {
		panic(fmt.Sprintf("exp: budget policy deadlocked: %v", err))
	}
	if count != 200 {
		panic(fmt.Sprintf("exp: budget policy lost calls: %d", count))
	}
	st := rt.Dispatcher().Stats()
	return sim.Duration(elapsed), st.Promoted, st.BudgetRaised
}

// SchedPolicyTable formats the scheduling-policy comparison.
func SchedPolicyTable() *Table {
	t := &Table{
		Title:   "Scheduling policy: incoming-thread queue position (section 4.1) and abort-budget control",
		Columns: []string{"Policy", "Elapsed(ms)", "Promoted", "BudgetRaised"},
		Notes: []string{
			"paper: back-of-queue always performed worse",
			"budget rows: same ORPC long-handler chain under a miscalibrated 4 us budget;",
			"the adaptive controller doubles it until the 12 us handlers complete inline",
		},
	}
	for _, r := range SchedPolicy() {
		promoted, raised := "-", "-"
		if r.OAM {
			promoted, raised = u64(r.Promoted), u64(r.BudgetRaised)
		}
		t.Rows = append(t.Rows, []string{
			r.Policy, fmt.Sprintf("%.2f", float64(r.Elapsed)/1e6), promoted, raised,
		})
	}
	return t
}

// AppAblationRow compares abort strategies on a real application.
type AppAblationRow struct {
	App      string
	Strategy string
	Elapsed  sim.Duration
	SuccPct  float64
}

// AppAblation runs the TSP application (the one whose GetJob procedure
// actually blocks under load) under each abort strategy at a slave count
// where contention matters.
func AppAblation(quick bool) ([]AppAblationRow, error) {
	cfg := tsp.Config{Cities: 12, Seed: 102}
	slaves := 64
	if quick {
		cfg.Cities = 10
		slaves = 12
	}
	strats := []oam.Strategy{oam.Rerun, oam.Continuation, oam.Nack}
	rows := make([]AppAblationRow, len(strats))
	err := forEach(len(strats), func(i int) error {
		c := cfg
		c.Strategy = strats[i]
		res, err := tsp.Run(apps.ORPC, slaves, c)
		if err != nil {
			return fmt.Errorf("app ablation %v: %w", strats[i], err)
		}
		rows[i] = AppAblationRow{
			App: "tsp", Strategy: strats[i].String(),
			Elapsed: res.Elapsed, SuccPct: res.SuccessPercent(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AppAblationTable formats the application-level strategy comparison.
func AppAblationTable(quick bool) (*Table, error) {
	rows, err := AppAblation(quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Abort-strategy ablation on TSP (contended GetJob)",
		Columns: []string{"App", "Strategy", "Elapsed(s)", "OAM success %"},
		Notes: []string{
			"the paper's prototype uses rerun; continuation and nack are the section 2 alternatives",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App, r.Strategy, seconds(r.Elapsed), f1(r.SuccPct),
		})
	}
	return t, nil
}

// AbortCostTable formats the abort-cost measurement (section 4.1.1).
func AbortCostTable() *Table {
	live, busy := AbortCost()
	return &Table{
		Title:   "Abort cost (section 4.1.1)",
		Columns: []string{"Case", "Cost (us)"},
		Rows: [][]string{
			{"live-stack (idle server)", us(live)},
			{"with context switch (busy server)", us(busy)},
		},
		Notes: []string{"paper: 7 us or 60 us depending on the live-stack optimization"},
	}
}
