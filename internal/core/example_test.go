package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleCluster shows the smallest complete program: a counter server
// and a client, with the call executing inside the message handler.
func ExampleCluster() {
	c := core.NewCluster(core.Options{Nodes: 2, Seed: 1})
	count := 0
	inc := c.Define("inc", func(e *core.Env, caller int, arg []byte) []byte {
		count++
		return nil
	})
	_, err := c.Run(func(ctx core.Ctx, node int) {
		if node == 0 {
			inc.Call(ctx, 1, nil)
		}
	})
	if err != nil {
		panic(err)
	}
	st := c.OAMStats()
	fmt.Printf("count=%d handled-in-handler=%d\n", count, st.Succeeded)
	// Output: count=1 handled-in-handler=1
}

// ExampleCluster_blocking shows a remote procedure that blocks on a
// condition variable — legal under Optimistic Active Messages because the
// execution is promoted to a thread when the condition is false.
func ExampleCluster_blocking() {
	c := core.NewCluster(core.Options{Nodes: 2, Seed: 1})
	mu := c.NewMutex(1)
	cv := c.NewCond(mu)
	stock := 0
	buy := c.Define("buy", func(e *core.Env, caller int, arg []byte) []byte {
		e.Lock(mu)
		e.Await(cv, func() bool { return stock > 0 })
		stock--
		e.Unlock(mu)
		return nil
	})
	_, err := c.Run(func(ctx core.Ctx, node int) {
		if node == 0 {
			buy.Call(ctx, 1, nil) // blocks until restocked
			fmt.Println("bought")
			return
		}
		// Poll the request in while the shelf is empty (the optimistic
		// attempt aborts and is promoted), then restock.
		ep := c.Universe().Endpoint(1)
		for c.OAMStats().Total == 0 {
			ep.Poll(ctx)
		}
		mu.Lock(ctx)
		stock = 1
		cv.Signal(ctx)
		mu.Unlock(ctx)
	})
	if err != nil {
		panic(err)
	}
	st := c.OAMStats()
	fmt.Printf("promoted=%d\n", st.Promoted)
	// Output:
	// bought
	// promoted=1
}
