package threads

import "repro/internal/sim"

// Message-interrupt support. The CM-5 could deliver messages by
// interrupt, but "taking interrupts is fairly expensive" (section 4), so
// the paper's applications use carefully tuned polling. With interrupts
// enabled on a scheduler, a packet arriving while a thread is inside
// Compute preempts the computation: the interrupt overhead is charged,
// pending messages are dispatched (as handlers, or OAM/TRPC dispatch),
// and the computation resumes where it left off.

// EnableInterrupts switches this node from pure polling to
// interrupt-driven message delivery for computations that use Compute.
func (s *Scheduler) EnableInterrupts() { s.interrupts = true }

// Compute charges d of CPU time on behalf of the calling context. In
// polling mode (the default) it is a plain charge that no message can
// preempt. With interrupts enabled, message arrivals interrupt the
// computation at their delivery time.
func (s *Scheduler) Compute(c Ctx, d sim.Duration) {
	s.checkOnCPU(c, "Compute")
	if !s.interrupts {
		c.P.Charge(d)
		return
	}
	rem := d
	for rem > 0 {
		rem = c.P.ChargeInterruptible(rem)
		if rem > 0 {
			s.stats.Interrupts++
			c.P.Charge(s.cost.InterruptOverhead)
			for s.poller != nil && s.node.Pending() > 0 {
				s.poller.PollOnce(Ctx{P: c.P, S: s})
			}
		}
	}
}
