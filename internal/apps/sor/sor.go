// Package sor implements the Successive Overrelaxation experiment of
// section 4.2.3: an iterative grid relaxation, row-partitioned, with
// boundary rows exchanged every iteration. The exchange is a remote
// procedure that stores the row into a one-deep buffer at the neighbor
// and blocks while the buffer is full; convergence is detected with the
// control network's split-phase global-OR, exactly as the paper does to
// factor out barrier cost. Each exchanged row is 80 doubles — the
// 640-byte bulk messages the paper reports.
package sor

import (
	"math"

	"repro/internal/am"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Compute-cost calibration. The paper's sequential C program runs the
// 482x80 grid for 100 iterations in 15.3 s; with 480x78 interior points
// that is ~4.08 us per point update.
var (
	// CostPoint is charged per grid-point update.
	CostPoint = sim.Micros(4.08)
	// CostCopyPerByte is charged when the RPC versions copy a received
	// boundary row from the call buffer into the application's arrays —
	// the copy the hand-coded AM version avoids by depositing data
	// directly (call-by-value RPC semantics force it).
	CostCopyPerByte = sim.Micros(0.04)
	// CostStore is charged by the store procedure itself.
	CostStore = sim.Micros(2)
)

// Config parameterizes a run. The paper's experiment is 482x80, 100
// iterations.
type Config struct {
	Rows, Cols int
	Iters      int     // iteration cap
	Eps        float64 // convergence threshold on the max update delta
	Seed       int64
	// Shards selects the engine's shard count: 0 or 1 sequential,
	// negative auto (one per CPU), clamped to the node count. Results are
	// bit-identical at any value; only wall-clock time changes.
	Shards int
	// Optimistic selects the engine's speculative span scheduler instead
	// of lockstep windows when Shards resolves parallel (results stay
	// bit-identical; only wall-clock time changes).
	Optimistic bool
	// Cores gives each simulated node this many cores (default 1).
	// Values > 1 route sync ORPC dispatches through the multiactive path
	// (oam.Options.Cores); SOR declares no compatibility matrix, so
	// handlers still serialize and results are unchanged.
	Cores int
	// Observe, if non-nil, is called once the universe (and, for the RPC
	// variants, the runtime — nil under AM) is built but before the SPMD
	// program starts, so an observer can attach its probes.
	Observe func(*am.Universe, *rpc.Runtime)
}

// DefaultConfig returns the paper's problem size.
func DefaultConfig() Config {
	return Config{Rows: 482, Cols: 80, Iters: 100, Eps: 1e-9, Seed: 11}
}

// grid is a dense Rows x Cols array.
type grid struct {
	rows, cols int
	v          []float64
}

func newGrid(rows, cols int) *grid {
	return &grid{rows: rows, cols: cols, v: make([]float64, rows*cols)}
}

func (g *grid) at(r, c int) float64     { return g.v[r*g.cols+c] }
func (g *grid) set(r, c int, x float64) { g.v[r*g.cols+c] = x }
func (g *grid) row(r int) []float64     { return g.v[r*g.cols : (r+1)*g.cols] }

// initBoundary applies the fixed boundary condition: the global top row
// is held at 100, everything else starts at 0.
func initBoundary(g *grid) {
	for c := 0; c < g.cols; c++ {
		g.set(0, c, 100)
	}
}

// relaxRow computes one interior row of the next grid from cur's rows
// up/mid/down and returns the max update delta in that row.
func relaxRow(up, mid, down, next []float64) float64 {
	maxd := 0.0
	for c := 1; c < len(mid)-1; c++ {
		nv := 0.25 * (up[c] + down[c] + mid[c-1] + mid[c+1])
		if d := math.Abs(nv - mid[c]); d > maxd {
			maxd = d
		}
		next[c] = nv
	}
	// The column boundaries are fixed.
	next[0] = mid[0]
	next[len(mid)-1] = mid[len(mid)-1]
	return maxd
}

// checksum folds the interior values into a position-weighted sum, an
// order-independent fingerprint the variants must agree on bit for bit.
func checksumRows(base int, rows [][]float64) uint64 {
	var sum uint64
	for i, row := range rows {
		for c, v := range row {
			sum += math.Float64bits(v) * uint64((base+i)*1_000_003+c+1)
		}
	}
	return sum
}

// SeqResult reports a sequential solve.
type SeqResult struct {
	Iters    int
	Checksum uint64
	Time     sim.Duration
}

// SolveSeq runs the relaxation sequentially and returns the iteration
// count, the grid fingerprint, and the implied sequential time.
func SolveSeq(cfg Config) SeqResult {
	cur := newGrid(cfg.Rows, cfg.Cols)
	next := newGrid(cfg.Rows, cfg.Cols)
	initBoundary(cur)
	initBoundary(next)
	it := 0
	for ; it < cfg.Iters; it++ {
		maxd := 0.0
		for r := 1; r < cfg.Rows-1; r++ {
			d := relaxRow(cur.row(r-1), cur.row(r), cur.row(r+1), next.row(r))
			if d > maxd {
				maxd = d
			}
		}
		cur, next = next, cur
		if maxd <= cfg.Eps {
			it++
			break
		}
	}
	rows := make([][]float64, 0, cfg.Rows-2)
	for r := 1; r < cfg.Rows-1; r++ {
		rows = append(rows, cur.row(r))
	}
	points := (cfg.Rows - 2) * (cfg.Cols - 2)
	return SeqResult{
		Iters:    it,
		Checksum: checksumRows(1, rows),
		Time:     sim.Duration(it) * sim.Duration(points) * CostPoint,
	}
}
