package rpc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The wire format is little-endian with no self-description: the stub
// compiler generates matching encode and decode sequences on the two
// sides, exactly as the paper's stub compiler does for its C remote
// procedures. Buffers ([]byte, []float64, ...) are length-prefixed with a
// uint32, mirroring the paper's rule that a buffer argument carries an
// explicit size argument.

// Enc builds a marshaled argument or result record.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with capacity for n bytes.
func NewEnc(n int) *Enc { return &Enc{buf: make([]byte, 0, n)} }

// Bytes returns the marshaled record.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the current record size.
func (e *Enc) Len() int { return len(e.buf) }

func (e *Enc) U8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Enc) Bool(v bool)  { e.U8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Enc) I32(v int32)  { e.U32(uint32(v)) }
func (e *Enc) I64(v int64)  { e.U64(uint64(v)) }
func (e *Enc) F32(v float32) {
	e.U32(math.Float32bits(v))
}
func (e *Enc) F64(v float64) {
	e.U64(math.Float64bits(v))
}

// Buf appends a length-prefixed byte buffer.
func (e *Enc) Buf(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends a length-prefixed string.
func (e *Enc) String(v string) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// F64s appends a length-prefixed []float64 buffer.
func (e *Enc) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, f := range v {
		e.F64(f)
	}
}

// I32s appends a length-prefixed []int32 buffer.
func (e *Enc) I32s(v []int32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I32(x)
	}
}

// U64s appends a length-prefixed []uint64 buffer.
func (e *Enc) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Dec reads a marshaled record. Reading past the end or leaving trailing
// bytes indicates mismatched stubs and panics: on the real machine that
// is memory corruption, and in the simulation we want to fail loudly.
type Dec struct {
	b   []byte
	off int
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) need(n int) []byte {
	if d.off+n > len(d.b) {
		panic(fmt.Sprintf("rpc: decode past end of record (off %d, need %d, len %d)",
			d.off, n, len(d.b)))
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *Dec) U8() uint8   { return d.need(1)[0] }
func (d *Dec) Bool() bool  { return d.U8() != 0 }
func (d *Dec) U32() uint32 { return binary.LittleEndian.Uint32(d.need(4)) }
func (d *Dec) U64() uint64 { return binary.LittleEndian.Uint64(d.need(8)) }
func (d *Dec) I32() int32  { return int32(d.U32()) }
func (d *Dec) I64() int64  { return int64(d.U64()) }
func (d *Dec) F32() float32 {
	return math.Float32frombits(d.U32())
}
func (d *Dec) F64() float64 {
	return math.Float64frombits(d.U64())
}

// Buf reads a length-prefixed byte buffer. The returned slice aliases the
// record; callers must treat it as immutable.
func (d *Dec) Buf() []byte {
	n := int(d.U32())
	return d.need(n)
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Buf()) }

// F64s reads a length-prefixed []float64 buffer.
func (d *Dec) F64s() []float64 {
	n := int(d.U32())
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// I32s reads a length-prefixed []int32 buffer.
func (d *Dec) I32s() []int32 {
	n := int(d.U32())
	out := make([]int32, n)
	for i := range out {
		out[i] = d.I32()
	}
	return out
}

// U64s reads a length-prefixed []uint64 buffer.
func (d *Dec) U64s() []uint64 {
	n := int(d.U32())
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// Done panics unless the record was fully consumed.
func (d *Dec) Done() {
	if d.off != len(d.b) {
		panic(fmt.Sprintf("rpc: %d trailing bytes in record", len(d.b)-d.off))
	}
}

// Remaining reports unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }
