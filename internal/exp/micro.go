package exp

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// nullRPC measures the average round-trip time of a null RPC (an
// increment of a server variable) over trips calls, with the server
// either idle (its only thread suspended on a condition) or busy (a
// thread in a tight poll-and-yield loop) — the two rows of Table 1.
func nullRPC(mode rpc.Mode, busyServer bool, payload int, trips int) sim.Duration {
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: mode})
	counter := 0
	inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
		counter++
		return nil
	})
	experimentDone := false
	done := rt.DefineAsync("done", func(e *oam.Env, caller int, arg []byte) []byte {
		experimentDone = true
		return nil
	})
	var total sim.Duration
	arg := make([]byte, payload)
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 1 {
			// Busy server: a thread spins in a tight poll-and-yield loop
			// for the whole experiment. Idle server: the main returns at
			// once — equivalent to the paper's suspended,
			// condition-waiting thread — and the scheduler services the
			// calls.
			if busyServer {
				ep := u.Endpoint(1)
				for !experimentDone {
					ep.Poll(c)
					c.S.Yield(c)
				}
			}
			return
		}
		start := c.P.Now()
		for i := 0; i < trips; i++ {
			inc.Call(c, 1, arg)
		}
		total = c.P.Now().Sub(start)
		done.CallAsync(c, 1, nil)
	})
	if err != nil {
		panic(fmt.Sprintf("exp: null RPC deadlocked: %v", err))
	}
	if counter != trips {
		panic("exp: null RPC lost calls")
	}
	return total / sim.Duration(trips)
}

// nullAM measures the hand-coded Active Messages baseline round trip.
func nullAM(busyServer bool, trips int) sim.Duration {
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	var replyH am.HandlerID
	counter := 0
	gotReply := false
	expDone := false
	reqH := u.Register("req", func(c threads.Ctx, pkt *cm5.Packet) {
		counter++
		u.Endpoint(1).Send(c, pkt.Src, replyH, [4]uint64{}, nil)
	})
	replyH = u.Register("reply", func(c threads.Ctx, pkt *cm5.Packet) { gotReply = true })
	doneH := u.Register("done", func(c threads.Ctx, pkt *cm5.Packet) { expDone = true })
	var total sim.Duration
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 1 {
			if busyServer {
				ep := u.Endpoint(1)
				for !expDone {
					ep.Poll(c)
					c.S.Yield(c)
				}
			}
			return
		}
		ep := u.Endpoint(0)
		start := c.P.Now()
		for i := 0; i < trips; i++ {
			gotReply = false
			ep.Send(c, 1, reqH, [4]uint64{}, nil)
			for !gotReply {
				ep.Poll(c)
			}
		}
		total = c.P.Now().Sub(start)
		ep.Send(c, 1, doneH, [4]uint64{}, nil)
	})
	if err != nil {
		panic(fmt.Sprintf("exp: null AM deadlocked: %v", err))
	}
	if counter != trips {
		panic("exp: null AM lost calls")
	}
	return total / sim.Duration(trips)
}

// Table1Row is one measurement of Table 1.
type Table1Row struct {
	System   string
	NoThread sim.Duration
	Busy     sim.Duration
}

// Table1 reproduces Table 1: round-trip time of a null RPC under TRPC,
// ORPC, and hand-coded AM, with and without a running server thread.
func Table1() []Table1Row {
	const trips = 64
	rows := make([]Table1Row, 3)
	measure := []func() Table1Row{
		func() Table1Row {
			return Table1Row{System: "TRPC", NoThread: nullRPC(rpc.TRPC, false, 0, trips), Busy: nullRPC(rpc.TRPC, true, 0, trips)}
		},
		func() Table1Row {
			return Table1Row{System: "ORPC", NoThread: nullRPC(rpc.ORPC, false, 0, trips), Busy: nullRPC(rpc.ORPC, true, 0, trips)}
		},
		func() Table1Row {
			return Table1Row{System: "AM", NoThread: nullAM(false, trips), Busy: nullAM(true, trips)}
		},
	}
	forEach(len(rows), func(i int) error { rows[i] = measure[i](); return nil })
	return rows
}

// Table1Table formats Table1 like the paper.
func Table1Table() *Table {
	t := &Table{
		Title:   "Table 1: time (us) for a round-trip null RPC",
		Columns: []string{"System", "No thread running", "Some thread running"},
		Notes: []string{
			"paper (32 MHz CM-5): TRPC 21/74, ORPC 14/14, AM 13/-",
		},
	}
	for _, r := range Table1() {
		t.Rows = append(t.Rows, []string{r.System, us(r.NoThread), us(r.Busy)})
	}
	return t
}

// BulkRow is one point of the section 4.1.2 bulk-transfer sweep.
type BulkRow struct {
	Bytes int
	TRPC  sim.Duration
	ORPC  sim.Duration
	AM    sim.Duration
}

// Bulk reproduces section 4.1.2: null RPC round trip against payload
// size. Above the 16-byte Active Message payload limit the transfer
// switches to the bulk (scopy) path, adding ~40 us.
func Bulk() []BulkRow {
	const trips = 16
	sizes := []int{0, 8, 16, 64, 256, 640, 1024, 4096}
	rows := make([]BulkRow, len(sizes))
	forEach(len(sizes), func(i int) error {
		size := sizes[i]
		rows[i] = BulkRow{
			Bytes: size,
			TRPC:  nullRPC(rpc.TRPC, false, size, trips),
			ORPC:  nullRPC(rpc.ORPC, false, size, trips),
			AM:    bulkAM(size, trips),
		}
		return nil
	})
	return rows
}

// bulkAM measures a hand-coded AM data transfer of the given size with an
// empty reply.
func bulkAM(size, trips int) sim.Duration {
	if size <= 16 {
		return nullAM(false, trips) // small path regardless of payload
	}
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	var replyH am.HandlerID
	gotReply := false
	reqH := u.Register("req", func(c threads.Ctx, pkt *cm5.Packet) {
		u.Endpoint(1).Send(c, pkt.Src, replyH, [4]uint64{}, nil)
	})
	replyH = u.Register("reply", func(c threads.Ctx, pkt *cm5.Packet) { gotReply = true })
	data := make([]byte, size)
	var total sim.Duration
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		ep := u.Endpoint(0)
		start := c.P.Now()
		for i := 0; i < trips; i++ {
			gotReply = false
			ep.SendBulk(c, 1, reqH, [4]uint64{}, data)
			for !gotReply {
				ep.Poll(c)
			}
		}
		total = c.P.Now().Sub(start)
	})
	if err != nil {
		panic(fmt.Sprintf("exp: bulk AM deadlocked: %v", err))
	}
	return total / sim.Duration(trips)
}

// BulkTable formats the sweep.
func BulkTable() *Table {
	t := &Table{
		Title:   "Section 4.1.2: null RPC round trip (us) vs payload size",
		Columns: []string{"Bytes", "TRPC", "ORPC", "AM"},
		Notes: []string{
			"payloads over 16 bytes use the bulk-transfer (scopy) path: +~40 us",
			"the absolute TRPC-ORPC gap stays constant as size grows",
		},
	}
	for _, r := range Bulk() {
		t.Rows = append(t.Rows, []string{itoa(r.Bytes), us(r.TRPC), us(r.ORPC), us(r.AM)})
	}
	return t
}

// AbortCost measures the cost of an aborted optimistic call (section
// 4.1.1: "an abort is either 7 or 60 microseconds, depending on whether
// the live-stack optimization can be applied"): the time from the start
// of the optimistic attempt to the promoted thread re-entering the body.
func AbortCost() (liveStack sim.Duration, withSwitch sim.Duration) {
	var out [2]sim.Duration
	forEach(2, func(i int) error {
		out[i] = nullAbortingRPC(i == 1)
		return nil
	})
	return out[0], out[1]
}

// nullAbortingRPC measures a round trip whose optimistic execution always
// aborts: the server main holds the lock exactly while the message is
// polled in, then releases it. In the idle case the main thread then
// suspends, so the promoted thread starts on the live stack (the paper's
// 7 us abort); in the busy case it stays runnable and yields, paying the
// create-plus-switch abort (the paper's 60 us).
func nullAbortingRPC(busy bool) sim.Duration {
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC})
	mu := threads.NewMutex(u.Scheduler(1))
	stop := false
	var tripFlag *threads.Flag
	var attemptAt sim.Time
	var promoteLatency sim.Duration
	var promotions uint64
	inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
		// The body runs once optimistically (records the attempt time and
		// aborts at the lock) and once as the promoted thread (records
		// the promotion latency).
		if e.Optimistic() {
			attemptAt = e.Ctx().P.Now()
		} else {
			promoteLatency += e.Ctx().P.Now().Sub(attemptAt)
			promotions++
		}
		e.Lock(mu)
		if tripFlag != nil && !tripFlag.IsSet() {
			tripFlag.Set() // wake the suspended server main for the next trip
		}
		e.Unlock(mu)
		return nil
	})
	stopP := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
		stop = true
		if tripFlag != nil && !tripFlag.IsSet() {
			tripFlag.Set()
		}
		return nil
	})
	const trips = 32
	aborted := func() uint64 { return inc.Stats().Promoted }
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for !stop {
				var f *threads.Flag
				if !busy {
					f = &threads.Flag{}
					tripFlag = f
				}
				// Hold the lock while the request is polled in, so the
				// optimistic attempt aborts and its thread queues.
				mu.Lock(c)
				base := aborted()
				for aborted() == base && !stop {
					ep.Poll(c)
				}
				mu.Unlock(c)
				if stop {
					return
				}
				if busy {
					c.S.Yield(c) // runnable: full-switch abort path
				} else {
					f.Wait(c) // suspended: live-stack abort path
				}
			}
			return
		}
		for i := 0; i < trips; i++ {
			inc.Call(c, 1, nil)
		}
		stopP.CallAsync(c, 1, nil)
	})
	if err != nil {
		panic(fmt.Sprintf("exp: aborting RPC deadlocked: %v", err))
	}
	if got := aborted(); got < trips {
		panic(fmt.Sprintf("exp: only %d of %d calls aborted", got, trips))
	}
	return promoteLatency / sim.Duration(promotions)
}
