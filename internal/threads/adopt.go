package threads

import (
	"fmt"

	"repro/internal/sim"
)

// This file supports lazy thread promotion (the "continuation" abort
// strategy of package oam). An optimistic handler execution runs on an
// auxiliary simulation process that the polling context *lends* the CPU
// to. If the execution must block, the process is *adopted* as a real
// thread — its execution state becomes the thread's stack, so nothing is
// re-executed — and the CPU returns to the lender. ABCL/f implements its
// handler blocking this way by copying frames to the heap; here the
// auxiliary process plays the role of the heap-allocated continuation.

// lendEntry records one level of CPU lending.
type lendEntry struct {
	p      *sim.Proc // the borrowed-to process
	lender *sim.Proc // who to wake when the borrower detaches or finishes
}

// Lend marks p as holding this node's CPU, on loan from the current CPU
// holder. Lending nests: a lent execution that polls the network can lend
// onward to another optimistic execution.
func (s *Scheduler) Lend(p *sim.Proc) {
	if s.probe != nil {
		s.probe.ProcBound(s.node.ID(), p)
	}
	s.lent = append(s.lent, lendEntry{p: p, lender: s.cpuProc()})
}

// Unlend ends the innermost loan. The caller is responsible for waking
// the lender (Detach* and FinishLent do both).
func (s *Scheduler) Unlend() {
	if len(s.lent) == 0 {
		panic("threads: Unlend without Lend")
	}
	s.lent = s.lent[:len(s.lent)-1]
}

// FinishLent ends the innermost loan and wakes the lender; called by a
// lent execution that ran to completion without promotion. The calling
// process must return (die) immediately afterwards.
func (s *Scheduler) FinishLent() {
	top := s.lent[len(s.lent)-1]
	s.Unlend()
	top.lender.Unpark()
}

// Adopt gives the lent execution running on p a thread identity: lazy
// thread creation. The creation cost is charged to p (the handler pays
// for its own promotion, as the paper measures: an abort costs the thread
// creation time). The thread is in the running state but is not yet under
// scheduler control; the caller must detach via DetachBlocked or
// DetachReady before doing anything else.
func (s *Scheduler) Adopt(name string, p *sim.Proc) *Thread {
	if len(s.lent) == 0 || s.lent[len(s.lent)-1].p != p {
		panic("threads: Adopt of a process that is not the current borrower")
	}
	p.Charge(s.cost.ThreadCreate)
	s.stats.Created++
	s.stats.Adopted++
	t := &Thread{sched: s, name: name, proc: p, state: stateRunning}
	if s.probe != nil {
		now := s.sh.Now()
		s.probe.ThreadCreated(now, s.node.ID(), t)
		s.probe.ThreadStarted(now, s.node.ID(), t, true)
	}
	return t
}

// DetachBlocked parks the adopted thread in the blocked state and returns
// the CPU to the lender. The caller must already have queued the thread
// somewhere it will be woken from (a mutex waiter list, a condition
// variable). When DetachBlocked returns, the thread has been resumed by
// the scheduler and is the current thread.
func (s *Scheduler) DetachBlocked(c Ctx) {
	s.detach(c, false)
}

// DetachReady is DetachBlocked for promotions that can keep running (time
// budget exceeded, network full): the thread goes to the back of the ready
// queue instead of a waiter list, so other work runs first.
func (s *Scheduler) DetachReady(c Ctx) {
	s.detach(c, true)
}

func (s *Scheduler) detach(c Ctx, requeue bool) {
	t := c.T
	if t == nil {
		panic("threads: detach of non-adopted execution")
	}
	if len(s.lent) == 0 || s.lent[len(s.lent)-1].p != c.P {
		panic("threads: detach by a process that is not the current borrower")
	}
	top := s.lent[len(s.lent)-1]
	s.Unlend()
	s.stats.Blocks++
	t.state = stateBlocked
	s.noteBlocked(t)
	if requeue {
		s.noteUnblocked(t)
		// Push directly rather than via makeReady: the CPU is about to
		// return to the lender, which will find the ready thread itself.
		t.state = stateReady
		s.ready.pushBack(t)
		s.noteReady()
	}
	top.lender.Unpark()
	c.P.Park()
	if s.cur != t {
		panic(fmt.Sprintf("threads: adopted thread %q resumed without the CPU", t.name))
	}
}

// FinishAdopted is the exit epilogue of a promoted thread: the body has
// returned, so mark the thread dead, wake joiners, and give the CPU away.
// The calling process must return immediately afterwards.
func (s *Scheduler) FinishAdopted(c Ctx) {
	t := c.T
	if t == nil || s.cur != t {
		panic("threads: FinishAdopted without an adopted current thread")
	}
	t.state = stateDead
	t.done = true
	if s.probe != nil {
		s.probe.ThreadExited(s.sh.Now(), s.node.ID(), t)
	}
	for _, j := range t.joiners {
		s.makeReady(j, false)
	}
	t.joiners = nil
	s.exitDispatch(c.P)
}

// EnqueueWaiter appends t, an adopted thread about to detach, to the
// mutex's waiter list. The mutex must be held (the failed try-lock that
// triggered promotion established that, and nothing else can have run on
// this node since).
func (m *Mutex) EnqueueWaiter(t *Thread) {
	if !m.held {
		panic("threads: EnqueueWaiter on free mutex")
	}
	m.Contended++
	m.waiters = append(m.waiters, t)
}

// EnqueueWaiter appends t, an adopted thread about to detach, to the
// condition variable's waiter list. Unlike Cond.Wait this does not
// release the mutex — the promotion sequence in package oam releases the
// procedure's locks explicitly.
func (cv *Cond) EnqueueWaiter(t *Thread) {
	cv.waiters = append(cv.waiters, t)
}

// AdoptOwner re-labels a lock held by an optimistic (handler) execution
// as held by its newly promoted thread, so that Unlock's ownership check
// and Cond.Wait's mutex check see the right owner.
func (m *Mutex) AdoptOwner(t *Thread) {
	if !m.held || m.owner != nil {
		panic("threads: AdoptOwner of a lock not held by a handler execution")
	}
	m.owner = t
}
