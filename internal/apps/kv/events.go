package kv

import (
	"fmt"

	"repro/internal/sim"
)

// EventKind labels one lock-lease transition in a server's event record.
type EventKind uint8

const (
	// EvGrant: a lease was granted to a client at a fresh epoch.
	EvGrant EventKind = iota
	// EvRelease: the leaseholder released its lease at the live epoch.
	EvRelease
	// EvExpire: a lease ran past its TTL and was reaped (lazily, when
	// the next Lock on the key observed the expiry).
	EvExpire
	// EvDeny: a Lock found the lease live and was refused (epoch 0 in
	// the reply; an application-level outcome, not a shed).
	EvDeny
)

func (k EventKind) String() string {
	switch k {
	case EvGrant:
		return "grant"
	case EvRelease:
		return "release"
	case EvExpire:
		return "expire"
	case EvDeny:
		return "deny"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one recorded lock-lease transition. Events are recorded on
// the owning server node in its execution order, so each server's record
// — like everything else in the kernel — is bit-identical at any shard
// count. Expiry is set on grants only; Client is the requesting client
// for grants/releases/denies and the previous holder for expiries.
type Event struct {
	T      sim.Time
	Kind   EventKind
	Key    uint32
	Client int
	Epoch  uint32
	Expiry sim.Time
}

func (ev Event) String() string {
	switch ev.Kind {
	case EvGrant:
		return fmt.Sprintf("%v grant key=%d client=%d epoch=%d expiry=%v",
			ev.T, ev.Key, ev.Client, ev.Epoch, ev.Expiry)
	default:
		return fmt.Sprintf("%v %s key=%d client=%d epoch=%d",
			ev.T, ev.Kind, ev.Key, ev.Client, ev.Epoch)
	}
}

// FNV-1a, the same idiom as the machine's fault-trace hash.
func fnvInit() uint64 { return 14695981039346656037 }

func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// RecordHash folds the per-server event records into one FNV-1a word:
// equal hashes across shard counts mean every server made identical
// lease decisions at identical virtual times.
func RecordHash(records [][]Event) uint64 {
	h := fnvInit()
	for srv, rec := range records {
		h = fnvMix(h, uint64(srv))
		h = fnvMix(h, uint64(len(rec)))
		for _, ev := range rec {
			h = fnvMix(h, uint64(ev.T))
			h = fnvMix(h, uint64(ev.Kind))
			h = fnvMix(h, uint64(ev.Key))
			h = fnvMix(h, uint64(ev.Client))
			h = fnvMix(h, uint64(ev.Epoch))
			h = fnvMix(h, uint64(ev.Expiry))
		}
	}
	return h
}

// CheckInvariants replays a run's statistics and event records and
// verifies the service's safety contract:
//
//   - exact client accounting: per client, every open-loop arrival is
//     classified exactly once — completed, dropped at the outstanding
//     cap, gave up after shed retries, or gave up on timeouts — even
//     when sheds and partitions overlap;
//   - lease exclusion: per key, grants never overlap a live lease — a
//     new grant requires the previous lease released or expired, and an
//     expiry is only reaped at or after the lease's recorded expiry
//     time;
//   - epoch fencing: lease epochs are strictly monotonic per key, and a
//     release carries the exact epoch of the live lease;
//   - denies are consistent: a Lock is only denied while a lease is
//     live;
//   - at-most-once application: each server's applied-mutation count
//     equals the sum of its keys' final versions (a duplicated or
//     retried mutation that slipped past the dedup fence would break
//     the equality);
//   - each record is in nondecreasing virtual-time order.
func CheckInvariants(st *Stats) error {
	var sum ClientCounts
	for i := range st.PerClient {
		c := &st.PerClient[i]
		// A crashed client's ledger is a frozen prefix — an arrival may
		// have been counted whose classification died with the node — so
		// the identity is only owed by clients that survived.
		if !c.Crashed && c.Arrivals != c.OK+c.Drops+c.ShedGiveUps+c.TimeoutGiveUps {
			return fmt.Errorf(
				"kv: accounting violation on client %d: %d arrivals != %d ok + %d drops + %d shed give-ups + %d timeout give-ups",
				i, c.Arrivals, c.OK, c.Drops, c.ShedGiveUps, c.TimeoutGiveUps)
		}
		sum.Arrivals += c.Arrivals
		sum.OK += c.OK
		sum.Drops += c.Drops
		sum.ShedGiveUps += c.ShedGiveUps
		sum.TimeoutGiveUps += c.TimeoutGiveUps
	}
	if sum.Arrivals != st.Arrivals || sum.OK != st.OK || sum.Drops != st.Drops ||
		sum.ShedGiveUps != st.ShedGiveUps || sum.TimeoutGiveUps != st.TimeoutGiveUps {
		return fmt.Errorf("kv: per-client counts do not sum to the run totals")
	}

	for srv := range st.PerServer {
		s := &st.PerServer[srv]
		if s.Applied != s.VerSum {
			return fmt.Errorf(
				"kv: at-most-once violation on server %d: %d mutations applied but key versions sum to %d",
				srv, s.Applied, s.VerSum)
		}
	}

	type leaseState struct {
		held   bool
		epoch  uint32
		expiry sim.Time
	}
	for srv, rec := range st.Records {
		leases := make(map[uint32]*leaseState)
		var last sim.Time
		for i, ev := range rec {
			fail := func(format string, args ...any) error {
				return fmt.Errorf("kv: invariant violation on server %d at event %d [%v]: %s",
					srv, i, ev, fmt.Sprintf(format, args...))
			}
			if ev.T < last {
				return fail("virtual time went backwards (previous event at %v)", last)
			}
			last = ev.T
			ls := leases[ev.Key]
			if ls == nil {
				ls = &leaseState{}
				leases[ev.Key] = ls
			}
			switch ev.Kind {
			case EvGrant:
				if ls.held {
					return fail("lease granted while a lease was live (epoch %d, expiry %v)",
						ls.epoch, ls.expiry)
				}
				if ev.Epoch <= ls.epoch {
					return fail("lease epoch not monotonic (%d after %d)", ev.Epoch, ls.epoch)
				}
				if ev.Expiry <= ev.T {
					return fail("lease granted already expired")
				}
				ls.held, ls.epoch, ls.expiry = true, ev.Epoch, ev.Expiry
			case EvRelease:
				if !ls.held || ev.Epoch != ls.epoch {
					return fail("release of a lease that was not live (live epoch %d)", ls.epoch)
				}
				ls.held = false
			case EvExpire:
				if !ls.held || ev.Epoch != ls.epoch {
					return fail("expiry of a lease that was not live (live epoch %d)", ls.epoch)
				}
				if ev.T < ls.expiry {
					return fail("lease reaped before its expiry %v", ls.expiry)
				}
				ls.held = false
			case EvDeny:
				if !ls.held {
					return fail("lock denied with no live lease")
				}
				if ev.T >= ls.expiry {
					return fail("lock denied on a lease already past its expiry %v", ls.expiry)
				}
			default:
				return fail("unknown event kind")
			}
		}
	}
	return nil
}
