package exp

import (
	"fmt"

	"repro/internal/apps/sched"
	"repro/internal/cm5"
	"repro/internal/sim"
)

// SchedRow is one cell of the control-plane chaos grid: a scheduler run
// under one fault mix at one (lease timeout, heartbeat period) point,
// with its event record replayed through sched.CheckInvariants. A row
// only exists if the safety contract held and every job's completion was
// accepted — a violation fails the whole sweep instead of producing a
// row.
type SchedRow struct {
	Fault       string // fault-mix name
	Jobs        int
	Lease       sim.Duration // lease timeout
	Beat        sim.Duration // heartbeat period
	Elapsed     sim.Duration
	Placements  uint64
	Migrations  uint64 // reclaims off declared-dead agents
	Expiries    uint64 // lease-timeout reclaims
	PlaceFails  uint64 // reclaims after failed/refused placement calls
	Dead        uint64 // detector death verdicts
	Recovered   uint64 // declared-dead agents readmitted
	StaleComps  uint64 // completions fenced off (wrong epoch or agent)
	DupComps    uint64 // re-deliveries of accepted completions
	Retransmits uint64
	GiveUps     uint64 // runners that could not report their completion
	Events      int    // control-plane event record length
	RecordHash  uint64 // FNV of the event record; shard-count invariant
	FaultHash   uint64 // fault-trace hash; 0 for the clean mix
}

// schedMix is one named fault scenario of the grid. The job table is
// per-mix: the fault-free and lossy mixes run a generated batch of short
// jobs, while the crash and flap mixes run fewer, longer jobs so the
// fault window is guaranteed to catch live leases.
type schedMix struct {
	name  string
	specs []sched.JobSpec
	plan  func() *cm5.FaultPlan // fresh per cell; nil result = clean network
}

// schedMixes builds the fault dimension of the grid for a given agent
// count. Every mix leaves a recovery path — surviving agents hold enough
// inventory and every partition heals — so the sweep checks liveness
// (all jobs complete), not only safety.
func schedMixes(agents int, quick bool) []schedMix {
	batch := sched.GenJobs(10, 5)
	if quick {
		batch = batch[:8]
	}
	long := make([]sched.JobSpec, 6)
	for i := range long {
		long[i] = sched.JobSpec{CPU: 2, Mem: 2, Dur: sim.Micros(4000)}
	}
	// One 6 ms job per agent: long enough that the flap window catches
	// live leases, short enough that a migrated job's effective runtime
	// (compute plus per-slice switch costs and heartbeat wakes) clears
	// the tightest lease timeout of the grid once it runs alone.
	wide := []sched.JobSpec{
		{CPU: 4, Mem: 4, Dur: sim.Micros(6000)},
		{CPU: 4, Mem: 4, Dur: sim.Micros(6000)},
		{CPU: 4, Mem: 4, Dur: sim.Micros(6000)},
	}
	from, to := sim.Time(2*sim.Millisecond), sim.Time(14*sim.Millisecond)
	return []schedMix{
		{"clean", batch, func() *cm5.FaultPlan { return nil }},
		{"lossy", batch, func() *cm5.FaultPlan {
			return &cm5.FaultPlan{Seed: 42, DropProb: 0.02, DupProb: 0.01}
		}},
		{"crash", long, func() *cm5.FaultPlan {
			// The last agent fail-stops while holding leases; its jobs
			// must migrate to the survivors.
			return &cm5.FaultPlan{Seed: 9, Crashes: []cm5.Crash{
				{Node: agents, At: sim.Time(2 * sim.Millisecond)}}}
		}},
		{"flap", wide, func() *cm5.FaultPlan {
			// Agent 1 is cut off from the scheduler in both directions for
			// a window, then heals: declared dead mid-window, readmitted
			// after, and its pre-partition lease's completion fenced off.
			return &cm5.FaultPlan{Seed: 11, Partitions: []cm5.Partition{
				{Src: 1, Dst: 0, From: from, To: to},
				{Src: 0, Dst: 1, From: from, To: to},
			}}
		}},
	}
}

// Sched sweeps the control-plane chaos grid: fault mix x lease timeout x
// heartbeat period. Every cell runs the full scheduler control plane
// (leases, heartbeats, failure detection, migration, epoch fencing) and
// then replays its event record through sched.CheckInvariants, asserting
// placed-exactly-once, monotonic lease epochs, no placement on
// detector-declared-dead agents, and — since every mix leaves a recovery
// path — that all jobs eventually completed. Any violation fails the
// sweep.
func Sched(scale Scale) ([]SchedRow, error) {
	agents := 3
	if scale.MaxP > 0 && agents+1 > scale.MaxP {
		agents = scale.MaxP - 1
		if agents < 2 {
			agents = 2 // the crash mix needs a survivor
		}
	}
	leases := []sim.Duration{sim.Micros(10000), sim.Micros(20000)}
	beats := []sim.Duration{sim.Micros(250), sim.Micros(500)}
	if scale.Quick {
		beats = beats[1:]
	}
	mixes := schedMixes(agents, scale.Quick)

	type cell struct {
		mix   int
		lease sim.Duration
		beat  sim.Duration
	}
	var cells []cell
	for mi := range mixes {
		for _, l := range leases {
			for _, b := range beats {
				cells = append(cells, cell{mi, l, b})
			}
		}
	}

	rows := make([]SchedRow, len(cells))
	err := forEach(len(cells), func(i int) error {
		cl := cells[i]
		mx := mixes[cl.mix]
		label := fmt.Sprintf("sched %s lease=%v hb=%v", mx.name, cl.lease, cl.beat)
		plan := mx.plan()
		cfg := sched.Config{
			Specs: mx.specs, Seed: 5, Shards: Shards, Optimistic: Optimistic, Cores: Cores,
			Fault:          plan,
			LeaseTimeout:   cl.lease,
			HeartbeatEvery: cl.beat,
		}
		res, st, err := sched.Run(agents, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		if ierr := sched.CheckInvariants(st.Record, len(mx.specs), agents, true); ierr != nil {
			return fmt.Errorf("%s: %w", label, ierr)
		}
		if st.Accepted != uint64(len(mx.specs)) {
			return fmt.Errorf("%s: accepted %d completions, want %d",
				label, st.Accepted, len(mx.specs))
		}
		rows[i] = SchedRow{
			Fault: mx.name, Jobs: len(mx.specs),
			Lease: cl.lease, Beat: cl.beat,
			Elapsed:    res.Elapsed,
			Placements: st.Placements, Migrations: st.Migrations,
			Expiries: st.Expiries, PlaceFails: st.PlaceFails,
			Dead: st.DeadDeclared, Recovered: st.Recovered,
			StaleComps: st.StaleCompletions, DupComps: st.DupCompletions,
			Retransmits: st.Rel.Retransmits, GiveUps: st.CompleteGiveUps,
			Events:     len(st.Record),
			RecordHash: st.RecordHash,
		}
		if plan != nil {
			rows[i].FaultHash = st.FaultHash
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SchedTable formats the control-plane chaos grid.
func SchedTable(scale Scale) (*Table, error) {
	rows, err := Sched(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Scheduler control plane under chaos: fault mix x lease timeout x heartbeat period, invariants replay-checked",
		Columns: []string{"Fault", "Jobs", "Lease(ms)", "HB(us)", "Elapsed(ms)",
			"Placed", "Migr", "Expire", "PFail", "Dead", "Recov",
			"Stale", "Dup", "Retx", "GiveUp", "Events", "RecHash", "FaultHash"},
		Notes: []string{
			"every cell's event record passed CheckInvariants: placed-exactly-once,",
			"monotonic lease epochs, no placement on dead agents, all jobs completed",
			"crash kills the last agent at 2 ms; flap partitions agent 1 for [2 ms, 14 ms)",
			"RecHash (control-plane event record) and FaultHash (fault trace) are",
			"bit-identical at any shard count; FaultHash is 0 for the clean mix",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Fault, itoa(r.Jobs),
			f1(float64(r.Lease) / 1e6), f1(float64(r.Beat) / 1e3),
			fmt.Sprintf("%.2f", float64(r.Elapsed)/1e6),
			u64(r.Placements), u64(r.Migrations), u64(r.Expiries), u64(r.PlaceFails),
			u64(r.Dead), u64(r.Recovered), u64(r.StaleComps), u64(r.DupComps),
			u64(r.Retransmits), u64(r.GiveUps), itoa(r.Events),
			fmt.Sprintf("%016x", r.RecordHash),
			fmt.Sprintf("%016x", r.FaultHash),
		})
	}
	return t, nil
}
