// Package plot renders the evaluation figures as SVG: log-log runtime and
// speedup curves in the style of the paper's Figures 1-4. It is a small,
// dependency-free chart generator — just enough axes, ticks, legends, and
// polylines to regenerate the figures from harness data.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one curve: a named sequence of (x, y) points.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Dashed bool
}

// Plot describes one chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY select log-scale axes (base 2 for X — processor counts —
	// and base 2 for Y, matching the paper's figures).
	LogX, LogY bool
	Series     []Series

	// Ideal, when true, draws the y = x ideal-speedup reference line.
	Ideal bool
}

const (
	width   = 560
	height  = 420
	marginL = 64
	marginR = 150
	marginT = 40
	marginB = 48
)

// palette cycles through distinguishable stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

type scale struct {
	min, max float64
	log      bool
	lo, hi   float64 // pixel range
}

func newScale(min, max float64, log bool, lo, hi float64) scale {
	if log {
		if min <= 0 {
			min = 1e-9
		}
		min, max = math.Log2(min), math.Log2(max)
	}
	if max == min {
		max = min + 1
	}
	return scale{min: min, max: max, log: log, lo: lo, hi: hi}
}

func (s scale) at(v float64) float64 {
	if s.log {
		if v <= 0 {
			v = 1e-9
		}
		v = math.Log2(v)
	}
	return s.lo + (v-s.min)/(s.max-s.min)*(s.hi-s.lo)
}

// ticks picks tick values for the scale: powers of two on log axes, a
// handful of round steps otherwise.
func (s scale) ticks() []float64 {
	var out []float64
	if s.log {
		for e := math.Floor(s.min); e <= math.Ceil(s.max); e++ {
			out = append(out, math.Pow(2, e))
		}
		return out
	}
	span := s.max - s.min
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for _, m := range []float64{5, 2, 1} {
		if span/(step*m) >= 4 {
			step *= m
			break
		}
	}
	for v := math.Ceil(s.min/step) * step; v <= s.max; v += step {
		out = append(out, v)
	}
	return out
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

// SVG renders the plot.
func (p *Plot) SVG() string {
	var xs, ys []float64
	for _, s := range p.Series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if p.Ideal {
		ys = append(ys, xs...)
	}
	if len(xs) == 0 {
		xs, ys = []float64{1}, []float64{1}
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	sx := newScale(minX, maxX, p.LogX, marginL, width-marginR)
	sy := newScale(minY, maxY, p.LogY, height-marginB, marginT)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, escape(p.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	for _, v := range sx.ticks() {
		x := sx.at(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginB, x, height-marginB+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+16, fmtTick(v))
	}
	for _, v := range sy.ticks() {
		y := sy.at(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-7, y, fmtTick(v))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eeeeee"/>`+"\n",
			marginL, y, width-marginR, y)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, height-12, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(p.YLabel))

	// Ideal line.
	if p.Ideal {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999999" stroke-dasharray="2,3"/>`+"\n",
			sx.at(minX), sy.at(minX), sx.at(maxX), sy.at(maxX))
	}

	// Curves and legend.
	for i, s := range p.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx.at(s.X[j]), sy.at(s.Y[j])))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="5,3"`
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"%s/>`+"\n",
			strings.Join(pts, " "), color, dash)
		for j := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`+"\n",
				sx.at(s.X[j]), sy.at(s.Y[j]), color)
		}
		ly := marginT + 14 + i*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.6"%s/>`+"\n",
			width-marginR+10, ly, width-marginR+34, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			width-marginR+38, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func minMax(vs []float64) (float64, float64) {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SortSeriesPoints orders each series by x (harness rows arrive grouped
// but unsorted within a system when scales are mixed).
func SortSeriesPoints(ss []Series) {
	for i := range ss {
		s := &ss[i]
		idx := make([]int, len(s.X))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		nx := make([]float64, len(idx))
		ny := make([]float64, len(idx))
		for j, k := range idx {
			nx[j], ny[j] = s.X[k], s.Y[k]
		}
		s.X, s.Y = nx, ny
	}
}
