package obs

import (
	"testing"

	"repro/internal/sim"
)

// TestQuantileRounding pins the bucket-boundary rounding contract: the
// quantile resolves to the upper bound of the bucket holding the sample
// of rank ceil(q*n), aggregated across nodes.
func TestQuantileRounding(t *testing.T) {
	r := NewRegistry(2)
	h := r.NewHistogram("lat", sim.Micros(10), sim.Micros(100), sim.Micros(1000))

	// 90 samples <= 10us on node 0, 9 in (10,100] on node 1, 1 in
	// (100,1000] on node 0: n=100.
	for i := 0; i < 90; i++ {
		h.Observe(0, sim.Micros(5))
	}
	for i := 0; i < 9; i++ {
		h.Observe(1, sim.Micros(50))
	}
	h.Observe(0, sim.Micros(500))

	if n := h.TotalCount(); n != 100 {
		t.Fatalf("TotalCount = %d, want 100", n)
	}
	cases := []struct {
		q    float64
		want sim.Duration
	}{
		{0.50, sim.Micros(10)},  // rank 50 in bucket <=10us
		{0.90, sim.Micros(10)},  // rank 90 is the last <=10us sample
		{0.91, sim.Micros(100)}, // rank 91 in (10,100]
		{0.99, sim.Micros(100)},
		{0.999, sim.Micros(1000)}, // rank 100: the slow sample
		{1.0, sim.Micros(1000)},
	}
	for _, c := range cases {
		got, ok := h.Quantile(c.q)
		if !ok || got != c.want {
			t.Errorf("Quantile(%v) = %v, %t; want %v, true", c.q, got, ok, c.want)
		}
	}
	p50, p99, p999 := h.Percentiles()
	if p50 != sim.Micros(10) || p99 != sim.Micros(100) || p999 != sim.Micros(1000) {
		t.Errorf("Percentiles = %v, %v, %v", p50, p99, p999)
	}
}

// TestQuantileOverflow: ranks landing in the +Inf bucket report the last
// finite bound with ok=false (a lower bound, not an upper bound).
func TestQuantileOverflow(t *testing.T) {
	r := NewRegistry(1)
	h := r.NewHistogram("lat", sim.Micros(10), sim.Micros(100))
	h.Observe(0, sim.Micros(5))
	h.Observe(0, sim.Micros(5000)) // overflow

	if got, ok := h.Quantile(0.5); !ok || got != sim.Micros(10) {
		t.Errorf("Quantile(0.5) = %v, %t; want 10us, true", got, ok)
	}
	if got, ok := h.Quantile(1.0); ok || got != sim.Micros(100) {
		t.Errorf("Quantile(1.0) = %v, %t; want 100us, false", got, ok)
	}
}

// TestQuantileEmpty: no samples yields (0, false); out-of-range q panics.
func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry(1)
	h := r.NewHistogram("lat", sim.Micros(10))
	if got, ok := h.Quantile(0.99); ok || got != 0 {
		t.Errorf("empty Quantile = %v, %t; want 0, false", got, ok)
	}
	for _, q := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
}

// TestMaterialize: materialized instruments are updatable without further
// allocation of shared rows, and values read back unchanged.
func TestMaterialize(t *testing.T) {
	r := NewRegistry(3)
	c := r.NewCounter("c")
	g := r.NewGauge("g")
	h := r.NewHistogram("h", sim.Micros(10))
	c.Materialize()
	g.Materialize()
	h.Materialize()

	c.Inc(2)
	g.Set(1, 7)
	h.Observe(0, sim.Micros(3))
	if c.Value(2) != 1 || c.Total() != 1 {
		t.Errorf("counter after Materialize: value %d total %d", c.Value(2), c.Total())
	}
	if g.Value(1) != 7 || g.Max(1) != 7 {
		t.Errorf("gauge after Materialize: %d/%d", g.Value(1), g.Max(1))
	}
	if h.Count(0) != 1 || h.TotalCount() != 1 {
		t.Errorf("hist after Materialize: %d/%d", h.Count(0), h.TotalCount())
	}
	// Idempotent.
	c.Materialize()
	h.Materialize()
	if c.Value(2) != 1 || h.TotalCount() != 1 {
		t.Error("Materialize is not idempotent")
	}
}
