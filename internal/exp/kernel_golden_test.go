package exp

import (
	"testing"
)

// chaosGoldenHashes are the fault-trace hashes of the quick-scale chaos
// sweep's TSP rows (the rows with a fault layer), re-recorded when fault
// randomness moved to per-flight counter-seeded streams (which also
// re-timed the quick crash rows). The fault trace hashes every
// drop/dup/crash decision with its virtual timestamp, so any change to
// event order or timing anywhere in the stack shows up here — and it must
// not change with the shard count.
var chaosGoldenHashes = []uint64{
	0x8897616b4b673a9a, 0x45934826adc7b794, 0xb9785eae9b6519a7,
	0x52812ce3e2bb2528, 0x83c5e4df11f84196, 0x37ab4a5383737565,
	0x488cf296e3595a7f,
	// The permanently-partitioned-slave row (appended with the
	// MaxAttempts-exhausted coverage; recorded at introduction).
	0x9e9f6e023b444713,
}

// TestChaosPartitionRow checks the MaxAttempts-exhausted coverage: the
// sweep's final row cuts one slave off completely, and the run ends with
// abandoned messages and call timeouts instead of a hang — with the
// answer still exact, computed by the remaining slaves.
func TestChaosPartitionRow(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	last := rows[len(rows)-1]
	if last.Partitioned != 1 {
		t.Fatalf("last row is not the partition row: %+v", last)
	}
	if !last.OK {
		t.Errorf("partition row answer wrong: %+v", last)
	}
	if last.GaveUp == 0 {
		t.Errorf("no messages exhausted MaxAttempts: %+v", last)
	}
	if last.Timeouts == 0 {
		t.Errorf("partitioned slave's calls never timed out: %+v", last)
	}
	if last.Dropped == 0 {
		t.Errorf("partition dropped nothing: %+v", last)
	}
}

// TestChaosFaultHashGolden pins the quick chaos sweep's fault traces
// against the seed kernel: the host-scheduling rewrite must not move a
// single fault decision in virtual time.
func TestChaosFaultHashGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	saved := Workers
	Workers = 1
	defer func() { Workers = saved }()

	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	var got []uint64
	for _, r := range rows {
		if r.FaultHash != 0 {
			got = append(got, r.FaultHash)
		}
	}
	t.Logf("fault hashes: %#x", got)
	if len(got) != len(chaosGoldenHashes) {
		t.Fatalf("fault-layer row count = %d, want %d", len(got), len(chaosGoldenHashes))
	}
	for i, h := range got {
		if h != chaosGoldenHashes[i] {
			t.Errorf("row %d: fault-trace hash %#x, want golden %#x", i, h, chaosGoldenHashes[i])
		}
	}
}
