package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/sor"
	"repro/internal/sim"
)

// SORSizeRow is one problem size of the SOR size-sensitivity experiment.
type SORSizeRow struct {
	Rows, Cols int
	ORPC       sim.Duration
	TRPC       sim.Duration
	AbsGap     sim.Duration // TRPC - ORPC
	RelGapPct  float64      // gap as % of TRPC runtime
}

// SORSizes reproduces the size-sensitivity claim of section 4.2.3: the
// ORPC/TRPC difference is "consistent across different problem sizes" in
// absolute terms — the per-message thread cost doesn't depend on the data
// — so at smaller sizes it forms a larger fraction of the runtime.
func SORSizes(quick bool) ([]SORSizeRow, error) {
	p := 32
	sizes := [][2]int{{122, 80}, {242, 80}, {482, 80}}
	if quick {
		p = 8
		sizes = [][2]int{{34, 16}, {66, 16}, {130, 16}}
	}
	out := make([]SORSizeRow, len(sizes))
	err := forEach(len(sizes), func(i int) error {
		sz := sizes[i]
		cfg := sor.DefaultConfig()
		cfg.Rows, cfg.Cols = sz[0], sz[1]
		if quick {
			cfg.Iters = 30
		}
		orpc, err := sor.Run(apps.ORPC, p, cfg)
		if err != nil {
			return err
		}
		trpc, err := sor.Run(apps.TRPC, p, cfg)
		if err != nil {
			return err
		}
		gap := trpc.Elapsed - orpc.Elapsed
		out[i] = SORSizeRow{
			Rows: sz[0], Cols: sz[1],
			ORPC: orpc.Elapsed, TRPC: trpc.Elapsed,
			AbsGap:    gap,
			RelGapPct: 100 * float64(gap) / float64(trpc.Elapsed),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SORSizesTable formats the size sensitivity experiment.
func SORSizesTable(quick bool) (*Table, error) {
	rows, err := SORSizes(quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "SOR problem-size sensitivity (section 4.2.3)",
		Columns: []string{"Grid", "ORPC(ms)", "TRPC(ms)", "Abs gap(ms)", "Gap % of TRPC"},
		Notes: []string{
			"paper: absolute ORPC-TRPC difference constant across sizes;",
			"at smaller sizes it is a higher portion of the total runtime",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", r.Rows, r.Cols),
			fmt.Sprintf("%.2f", float64(r.ORPC)/1e6),
			fmt.Sprintf("%.2f", float64(r.TRPC)/1e6),
			fmt.Sprintf("%.2f", float64(r.AbsGap)/1e6),
			f1(r.RelGapPct),
		})
	}
	return t, nil
}
