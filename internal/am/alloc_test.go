package am_test

import (
	"runtime"
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// storm streams `packets` small Active Messages from node 0 to a polling
// node 1 after a `warmup` phase that fills the event and packet pools,
// and returns the heap allocations per packet over the measured window.
// The window covers the whole hot path: packet alloc, injection, the
// wire-flight event, NIC delivery, poll, and handler dispatch.
func storm(t testing.TB, warmup, packets int) float64 {
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	received := 0
	h := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { received++ })
	total := warmup + packets
	var m0, m1 runtime.MemStats
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			for i := 0; i < warmup; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			runtime.ReadMemStats(&m0)
			for i := 0; i < packets; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			runtime.ReadMemStats(&m1)
			return
		}
		for received < total {
			c.P.Charge(sim.Micros(2))
			ep.PollAll(c)
		}
	})
	if err != nil {
		t.Fatalf("storm deadlocked: %v", err)
	}
	if received != total {
		t.Fatalf("lost packets: got %d of %d", received, total)
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(packets)
}

// TestSmallPacketZeroAllocs is the allocation budget of the kernel hot
// path: once the pools are warm, a small-packet send/deliver/poll/dispatch
// cycle must not allocate. The budget tolerates stray runtime allocations
// (goroutine bookkeeping, MemStats internals) amortized over the window,
// but a per-packet allocation anywhere in the path would read as >= 1.
func TestSmallPacketZeroAllocs(t *testing.T) {
	perPacket := storm(t, 2_000, 10_000)
	if perPacket >= 0.01 {
		t.Fatalf("small-packet hot path allocates %.4f objects/packet, want 0", perPacket)
	}
}

// BenchmarkSmallPacketHotPath reports ns and allocs per small packet
// through the full send/deliver/poll/dispatch cycle.
func BenchmarkSmallPacketHotPath(b *testing.B) {
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	received := 0
	h := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { received++ })
	b.ReportAllocs()
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			b.StopTimer()
			return
		}
		for received < b.N {
			c.P.Charge(sim.Micros(2))
			ep.PollAll(c)
		}
	})
	if err != nil {
		b.Fatalf("storm deadlocked: %v", err)
	}
}
