package cm5

import (
	"testing"

	"repro/internal/sim"
)

// TestBarrierAsyncAPI: the callback fires at release; a late waiter gets
// ready=true immediately.
func TestBarrierAsyncAPI(t *testing.T) {
	eng, m := testMachine(t, 2)
	fired := false
	eng.Spawn("a", func(p *sim.Proc) {
		m.Node(0).BarrierEnter()
		if m.Node(0).BarrierWaitAsync(func() { fired = true }) {
			t.Error("barrier released before all entered")
		}
		p.Park()
	})
	var lateReady bool
	eng.Spawn("b", func(p *sim.Proc) {
		p.Charge(sim.Micros(10))
		m.Node(1).BarrierEnter()
		// Wait past the release, then consume the wait late.
		p.Charge(sim.Micros(100))
		lateReady = m.Node(1).BarrierWaitAsync(func() {
			t.Error("late waiter callback fired")
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("release callback never fired")
	}
	if !lateReady {
		t.Fatal("late waiter did not see ready")
	}
	eng.Shutdown()
}

// TestReduceAsyncAPI covers both the callback and the immediate path.
func TestReduceAsyncAPI(t *testing.T) {
	eng, m := testMachine(t, 2)
	var got0, got1 float64
	eng.Spawn("a", func(p *sim.Proc) {
		m.Node(0).ReduceEnter(3, ReduceSum)
		if ready, _ := m.Node(0).ReduceWaitAsync(func(v float64) { got0 = v }); ready {
			t.Error("reduce ready before all entered")
		}
		p.Park()
	})
	eng.Spawn("b", func(p *sim.Proc) {
		p.Charge(sim.Micros(5))
		m.Node(1).ReduceEnter(4, ReduceSum)
		p.Charge(sim.Micros(100))
		ready, v := m.Node(1).ReduceWaitAsync(func(float64) {})
		if !ready {
			t.Error("late reduce waiter not ready")
		}
		got1 = v
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got0 != 7 || got1 != 7 {
		t.Fatalf("reduce results = %v/%v, want 7", got0, got1)
	}
	eng.Shutdown()
}

// TestORWaitAsyncAPI mirrors the OR semantics.
func TestORWaitAsyncAPI(t *testing.T) {
	eng, m := testMachine(t, 2)
	var cbVal bool
	eng.Spawn("a", func(p *sim.Proc) {
		m.Node(0).OREnter(false)
		if ready, _ := m.Node(0).ORWaitAsync(func(v bool) { cbVal = v }); ready {
			t.Error("or ready early")
		}
		p.Park()
	})
	eng.Spawn("b", func(p *sim.Proc) {
		p.Charge(sim.Micros(5))
		m.Node(1).OREnter(true)
		p.Charge(sim.Micros(100))
		ready, v := m.Node(1).ORWaitAsync(func(bool) {})
		if !ready || !v {
			t.Errorf("late or waiter: ready=%v v=%v", ready, v)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !cbVal {
		t.Fatal("or callback value wrong")
	}
	eng.Shutdown()
}

func TestPacketStringAndSize(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Kind: Bulk, Handler: 3, Payload: []byte{1, 2, 3}}
	if p.Size() != 3 {
		t.Fatal("size")
	}
	if p.String() != "bulk 1->2 h=3 len=3" {
		t.Fatalf("string = %q", p.String())
	}
	if Small.String() != "small" || PacketKind(9).String() == "" {
		t.Fatal("kind strings")
	}
}

func TestNodeAccessors(t *testing.T) {
	eng, m := testMachine(t, 2)
	if m.Engine() == nil {
		t.Fatal("engine accessor")
	}
	n := m.Node(1)
	if n.ID() != 1 || n.Machine() != m {
		t.Fatal("node accessors")
	}
	eng.Spawn("s", func(p *sim.Proc) {
		m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small})
		if !n.InFlight() {
			t.Error("no in-flight reservation after inject")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.InFlight() {
		t.Fatal("reservation not cleared after delivery")
	}
}
