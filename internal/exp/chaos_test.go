package exp

import "testing"

// TestChaosQuick: every row of the quick fault-injection sweep matches
// the sequential reference, the lossy rows actually lose and retransmit
// packets, and the crash rows re-issue at least one lease.
func TestChaosQuick(t *testing.T) {
	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s drop=%.0f%% crashes=%d: wrong answer", r.App, r.DropPct, r.Crashes)
		}
		// Only rows with an unreachable node may abandon messages: a
		// partitioned (permanently or for a flap window) slave's traffic
		// exhausts MaxAttempts by design (TestChaosPartitionRow), and a
		// crashed node's in-flight traffic is abandoned after MaxAttempts
		// the same way — bounded degradation, not a reliability failure.
		// Pure-loss rows must deliver everything.
		if r.GaveUp != 0 && r.Partitioned == 0 && r.Flapped == 0 && r.Crashes == 0 {
			t.Errorf("%s drop=%.0f%% crashes=%d: reliable channel gave up %d times",
				r.App, r.DropPct, r.Crashes, r.GaveUp)
		}
		if r.App != "tsp" {
			continue
		}
		if r.DropPct > 0 && (r.Dropped == 0 || r.Retransmits == 0) {
			t.Errorf("tsp drop=%.0f%%: no loss/retransmit activity: %+v", r.DropPct, r)
		}
		if r.Crashes == 1 && r.Reissued == 0 {
			t.Errorf("tsp drop=%.0f%% with crash: master never re-issued a lease", r.DropPct)
		}
	}
}

// TestChaosNodeTableQuick: the per-node breakdown names the crashed slave
// and accounts retransmissions to every live node.
func TestChaosNodeTableQuick(t *testing.T) {
	tbl, err := ChaosNodeTable(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (master + 3 slaves)", len(tbl.Rows))
	}
	if got := tbl.Rows[3][1]; got != "slave (crashed)" {
		t.Errorf("last node role = %q, want crashed slave", got)
	}
	if tbl.Rows[0][1] != "master" {
		t.Errorf("node 0 role = %q", tbl.Rows[0][1])
	}
}
