// Package reliable provides an end-to-end reliable delivery channel over
// Active Messages: sequence numbers per directed link, acknowledgments,
// retransmission timers driven by the simulation clock with capped
// exponential backoff (the same idiom as the RPC NACK backoff), and
// duplicate suppression at the receiver.
//
// The transport installs itself on a Universe via am.SetTransport, so
// every Endpoint.Send / TrySend — RPC requests, replies, OAM outbox
// commits — rides the reliable channel without any change to the layers
// above. Each outgoing message is framed in an envelope packet whose W0
// carries the sequence number and W1 the inner handler id; the inner
// message's W0/W1 move to W2/W3 (messages using W2/W3 themselves do not
// fit and panic loudly). Receivers ack every data packet (per-seq plus a
// cumulative floor), deliver first copies up through Endpoint.Deliver,
// and drop the rest.
//
// Retransmission runs in a per-node daemon thread: timers fire in kernel
// context, which cannot inject packets (injection charges a CPU), so
// expiry queues the message and wakes the daemon, which resends on the
// node's own CPU. A sender that exhausts MaxAttempts gives up — without a
// cap, retransmitting to a crashed node would keep the event heap
// non-empty and the simulation would never quiesce.
package reliable

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// DefaultJitter is the default retransmit jitter fraction: each re-arm
// waits the capped backoff plus up to a quarter of it.
const DefaultJitter = 0.25

// Options tunes the reliable channel.
type Options struct {
	RTO         sim.Duration // initial retransmit timeout (default 150 us)
	RTOMax      sim.Duration // backoff cap (default 2.4 ms)
	MaxAttempts int          // total transmissions per message before giving up (default 12)
	// Jitter spreads each retransmit re-arm over
	// [backoff, backoff*(1+Jitter)) with a deterministic per-flight draw,
	// so senders that lost packets in the same fault window do not
	// re-fire in lockstep bursts. Default DefaultJitter; negative
	// disables jitter entirely (exact capped-backoff schedule).
	Jitter float64
}

func (o Options) withDefaults() Options {
	if o.RTO <= 0 {
		o.RTO = sim.Micros(150)
	}
	if o.RTOMax <= 0 {
		o.RTOMax = sim.Micros(2400)
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 12
	}
	if o.Jitter == 0 {
		o.Jitter = DefaultJitter
	} else if o.Jitter < 0 {
		o.Jitter = 0
	}
	return o
}

// Stats counts transport-wide reliable-channel activity.
type Stats struct {
	DataSent       uint64 // first transmissions
	Retransmits    uint64 // timer-driven resends
	AcksSent       uint64
	AcksReceived   uint64
	StaleAcks      uint64 // acks for already-completed sequence numbers
	Delivered      uint64 // first copies handed up to the application
	DupsSuppressed uint64 // extra copies discarded at the receiver
	GaveUp         uint64 // messages abandoned after MaxAttempts
}

// NodeStats attributes channel activity to one node: retransmits and
// give-ups to the sender, suppressed duplicates to the receiver.
type NodeStats struct {
	Retransmits    uint64
	DupsSuppressed uint64
	GaveUp         uint64
}

// pendingMsg is one unacknowledged message.
type pendingMsg struct {
	dst      int
	seq      uint64
	h        am.HandlerID
	w0, w1   uint64
	payload  []byte
	bulk     bool
	attempts int // transmissions so far
	backoff  sim.Duration
	timer    sim.Timer
	done     bool
}

// outLink is the sender half of one directed link.
type outLink struct {
	nextSeq uint64
	pending map[uint64]*pendingMsg
}

// inLink is the receiver half: a cumulative floor plus the set of
// out-of-order sequence numbers seen above it.
type inLink struct {
	cum  uint64
	seen map[uint64]struct{}
}

// nodeState is one node's view of the transport. It is only ever touched
// from code running on its node (handlers, the retransmit daemon, timer
// expiry on the node's shard), so per-node counters and timers stay
// shard-local under a sharded engine.
type nodeState struct {
	id            int
	ep            *am.Endpoint
	sh            *sim.Shard
	out           map[int]*outLink
	in            map[int]*inLink
	daemon        *threads.Thread
	daemonBlocked bool
	due           []*pendingMsg
	stats         Stats
}

func (ns *nodeState) outLink(dst int) *outLink {
	ol := ns.out[dst]
	if ol == nil {
		ol = &outLink{pending: make(map[uint64]*pendingMsg)}
		ns.out[dst] = ol
	}
	return ol
}

func (ns *nodeState) inLink(src int) *inLink {
	il := ns.in[src]
	if il == nil {
		il = &inLink{seen: make(map[uint64]struct{})}
		ns.in[src] = il
	}
	return il
}

// Transport is the reliable channel, installed on a Universe by Attach.
type Transport struct {
	u      *am.Universe
	opts   Options
	dataH  am.HandlerID
	ackH   am.HandlerID
	nodes  []*nodeState
	nstats []NodeStats
}

// Attach builds a reliable transport for u, registers its handlers,
// bootstraps one retransmit daemon per node, and installs it as the
// universe's transport. Like handler registration, call before the
// simulation starts.
func Attach(u *am.Universe, opts Options) *Transport {
	t := &Transport{u: u, opts: opts.withDefaults()}
	t.dataH = u.Register("reliable/data", t.handleData)
	t.ackH = u.Register("reliable/ack", t.handleAck)
	t.nodes = make([]*nodeState, u.N())
	t.nstats = make([]NodeStats, u.N())
	for i := 0; i < u.N(); i++ {
		ns := &nodeState{
			id: i, ep: u.Endpoint(i), sh: u.Endpoint(i).Node().Shard(),
			out: make(map[int]*outLink), in: make(map[int]*inLink),
		}
		t.nodes[i] = ns
		ns.daemon = u.Scheduler(i).Bootstrap(fmt.Sprintf("reliable/retx/%d", i),
			func(c threads.Ctx) { t.daemonLoop(c, ns) })
	}
	u.SetTransport(t)
	return t
}

// Stats returns a snapshot of the transport counters, summed across
// nodes.
func (t *Transport) Stats() Stats {
	var out Stats
	for _, ns := range t.nodes {
		s := &ns.stats
		out.DataSent += s.DataSent
		out.Retransmits += s.Retransmits
		out.AcksSent += s.AcksSent
		out.AcksReceived += s.AcksReceived
		out.StaleAcks += s.StaleAcks
		out.Delivered += s.Delivered
		out.DupsSuppressed += s.DupsSuppressed
		out.GaveUp += s.GaveUp
	}
	return out
}

// NodeStats returns the counters attributed to node i.
func (t *Transport) NodeStats(i int) NodeStats { return t.nstats[i] }

func envelopeWords(seq uint64, h am.HandlerID, w [4]uint64) [4]uint64 {
	if w[2] != 0 || w[3] != 0 {
		panic("reliable: message uses W2/W3, which the envelope needs for the inner W0/W1")
	}
	return [4]uint64{seq, uint64(h), w[0], w[1]}
}

// Send implements am.Transport: frame, transmit (draining), track, arm.
func (t *Transport) Send(c threads.Ctx, ep *am.Endpoint, dst int, h am.HandlerID, w [4]uint64, payload []byte, bulk bool) {
	ew := envelopeWords(0, h, w)
	ns := t.nodes[ep.Node().ID()]
	ol := ns.outLink(dst)
	ol.nextSeq++
	seq := ol.nextSeq
	ew[0] = seq
	pm := &pendingMsg{
		dst: dst, seq: seq, h: h, w0: w[0], w1: w[1],
		payload: payload, bulk: bulk, attempts: 1, backoff: t.opts.RTO,
	}
	ol.pending[seq] = pm
	ns.stats.DataSent++
	ep.SendRaw(c, dst, t.dataH, ew, payload, bulk)
	// The draining send may already have serviced this message's ack.
	if !pm.done {
		t.arm(ns, pm, t.opts.RTO)
	}
}

// TrySend implements am.Transport: a non-blocking reliable send. Rejection
// means the first transmission could not be injected; nothing is tracked.
func (t *Transport) TrySend(c threads.Ctx, ep *am.Endpoint, dst int, h am.HandlerID, w [4]uint64, payload []byte, bulk bool) bool {
	ew := envelopeWords(0, h, w)
	ns := t.nodes[ep.Node().ID()]
	ol := ns.outLink(dst)
	seq := ol.nextSeq + 1
	ew[0] = seq
	// TrySendRaw cannot yield, so a failed probe has no side effects and
	// the sequence number is only committed on success.
	if !ep.TrySendRaw(c, dst, t.dataH, ew, payload, bulk) {
		return false
	}
	ol.nextSeq = seq
	pm := &pendingMsg{
		dst: dst, seq: seq, h: h, w0: w[0], w1: w[1],
		payload: payload, bulk: bulk, attempts: 1, backoff: t.opts.RTO,
	}
	ol.pending[seq] = pm
	ns.stats.DataSent++
	t.arm(ns, pm, t.opts.RTO)
	return true
}

// arm schedules pm's retransmit timer on the node's shard. Expiry runs in
// kernel context, which cannot send; it queues the message and wakes the
// node's daemon.
func (t *Transport) arm(ns *nodeState, pm *pendingMsg, d sim.Duration) {
	pm.timer = ns.sh.AfterTimer(d, func() {
		pm.timer = sim.Timer{}
		if pm.done {
			return
		}
		ns.due = append(ns.due, pm)
		if ns.daemonBlocked {
			ns.daemonBlocked = false
			ns.daemon.Resume(false)
		}
	})
}

// daemonLoop is the per-node retransmit daemon: woken by timer expiry, it
// resends every due message on the node's CPU, backs off, and re-arms.
func (t *Transport) daemonLoop(c threads.Ctx, ns *nodeState) {
	for {
		for len(ns.due) > 0 {
			pm := ns.due[0]
			ns.due = ns.due[1:]
			if pm.done {
				continue
			}
			ol := ns.outLink(pm.dst)
			if cur, ok := ol.pending[pm.seq]; !ok || cur != pm {
				continue
			}
			if pm.attempts >= t.opts.MaxAttempts {
				pm.done = true
				delete(ol.pending, pm.seq)
				ns.stats.GaveUp++
				t.nstats[ns.id].GaveUp++
				continue
			}
			pm.attempts++
			ns.stats.Retransmits++
			t.nstats[ns.id].Retransmits++
			ns.ep.SendRaw(c, pm.dst, t.dataH,
				[4]uint64{pm.seq, uint64(pm.h), pm.w0, pm.w1}, pm.payload, pm.bulk)
			if pm.done {
				continue // the drain inside SendRaw serviced the ack
			}
			pm.backoff *= 2
			if pm.backoff > t.opts.RTOMax {
				pm.backoff = t.opts.RTOMax
			}
			t.arm(ns, pm, t.jittered(ns.id, pm))
		}
		ns.daemonBlocked = true
		c.S.Block(c)
	}
}

// retxSalt decouples the retransmit-jitter stream from the fault layer's
// flight streams, so the two never alias even under equal raw inputs.
const retxSalt = 0x3c6ef372fe94f82b

// jittered returns pm's next retransmit wait: the capped backoff plus a
// deterministic per-flight fraction of it in [0, Jitter). The draw is
// counter-seeded splitmix64 keyed by (src, dst, seq, attempt) — the same
// idiom as the fault layer's flight RNG — so its value depends only on
// which flight it belongs to, never on how unrelated events interleave,
// and the retransmit schedule stays bit-identical at any shard count.
func (t *Transport) jittered(src int, pm *pendingMsg) sim.Duration {
	if t.opts.Jitter <= 0 {
		return pm.backoff
	}
	s := uint64(src)<<32 ^ uint64(pm.dst)<<16 ^ pm.seq<<40 ^ uint64(pm.attempts) ^ retxSalt
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / (1 << 53)
	return pm.backoff + sim.Duration(float64(pm.backoff)*t.opts.Jitter*frac)
}

// handleData is the receiving side: ack (always — the previous ack may
// have been lost), then deliver first copies and suppress duplicates.
func (t *Transport) handleData(c threads.Ctx, pkt *cm5.Packet) {
	ns := t.nodes[pkt.Dst]
	seq := pkt.W0
	il := ns.inLink(pkt.Src)
	_, above := il.seen[seq]
	dup := seq <= il.cum || above
	if !dup {
		il.seen[seq] = struct{}{}
		for {
			if _, ok := il.seen[il.cum+1]; !ok {
				break
			}
			delete(il.seen, il.cum+1)
			il.cum++
		}
	}
	ns.stats.AcksSent++
	ns.ep.SendRaw(c, pkt.Src, t.ackH, [4]uint64{seq, il.cum, 0, 0}, nil, false)
	if dup {
		ns.stats.DupsSuppressed++
		t.nstats[pkt.Dst].DupsSuppressed++
		return
	}
	ns.stats.Delivered++
	// De-frame into a pooled packet for the inner handler. Deliver leaves
	// ownership with us (the transport), so recycle the struct afterwards;
	// the payload buffer passes to the application untouched.
	node := ns.ep.Node()
	inner := node.AllocPacket()
	inner.Src, inner.Dst, inner.Kind = pkt.Src, pkt.Dst, pkt.Kind
	inner.Handler = int(pkt.W1)
	inner.W0, inner.W1 = pkt.W2, pkt.W3
	inner.Payload = pkt.Payload
	ns.ep.Deliver(c, inner)
	node.ReleasePacket(inner)
}

// handleAck retires pending messages: the per-seq ack plus everything at
// or below the cumulative floor.
func (t *Transport) handleAck(c threads.Ctx, pkt *cm5.Packet) {
	ns := t.nodes[pkt.Dst]
	ol := ns.outLink(pkt.Src)
	seq, cum := pkt.W0, pkt.W1
	ns.stats.AcksReceived++
	retired := false
	retire := func(pm *pendingMsg, q uint64) {
		pm.done = true
		pm.timer.Cancel() // no-op on the zero Timer
		pm.timer = sim.Timer{}
		delete(ol.pending, q)
		retired = true
	}
	if pm, ok := ol.pending[seq]; ok {
		retire(pm, seq)
	}
	// Map iteration order is irrelevant here: retiring only cancels timers
	// and deletes entries, so determinism is preserved.
	for q, pm := range ol.pending {
		if q <= cum {
			retire(pm, q)
		}
	}
	if !retired {
		ns.stats.StaleAcks++
	}
}
