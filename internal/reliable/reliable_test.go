package reliable

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestLossyDelivery pushes a burst of messages through a 20%-lossy link
// and checks exactly-once delivery with retransmissions doing the work.
func TestLossyDelivery(t *testing.T) {
	const msgs = 200
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 7, DropProb: 0.20})
	tr := Attach(u, Options{})
	got := make(map[uint64]int)
	recvd := 0
	h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) {
		got[pkt.W0]++
		recvd++
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for recvd < msgs {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		for i := 0; i < msgs; i++ {
			ep.Send(c, 1, h, [4]uint64{uint64(i), 0, 0, 0}, nil)
			c.P.Charge(sim.Micros(1))
		}
		for recvd < msgs { // wait out the retransmissions (shared-memory test shortcut)
			ep.Poll(c)
			c.P.Charge(sim.Micros(5))
			c.S.Yield(c)
		}
	})
	if err != nil {
		t.Fatalf("SPMD: %v", err)
	}
	if recvd != msgs {
		t.Fatalf("delivered %d of %d", recvd, msgs)
	}
	for i := uint64(0); i < msgs; i++ {
		if got[i] != 1 {
			t.Fatalf("message %d delivered %d times", i, got[i])
		}
	}
	st := tr.Stats()
	if st.Retransmits == 0 {
		t.Fatalf("expected retransmissions under 20%% loss, got none (stats %+v)", st)
	}
	if st.GaveUp != 0 {
		t.Fatalf("gave up on %d messages on a live link", st.GaveUp)
	}
	fs := u.Machine().FaultStats()
	if fs.Dropped == 0 {
		t.Fatalf("fault layer dropped nothing at 20%% loss")
	}
	t.Logf("sent=%d retx=%d dropped=%d dupsSuppressed=%d", st.DataSent, st.Retransmits, fs.Dropped, st.DupsSuppressed)
}

// TestDuplicateSuppression forces network-level duplication and checks the
// receiver delivers each message once.
func TestDuplicateSuppression(t *testing.T) {
	const msgs = 100
	eng := sim.New(2)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 3, DupProb: 0.5})
	tr := Attach(u, Options{})
	recvd := 0
	h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) { recvd++ })
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for recvd < msgs {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		for i := 0; i < msgs; i++ {
			ep.Send(c, 1, h, [4]uint64{uint64(i), 0, 0, 0}, nil)
			c.P.Charge(sim.Micros(3))
		}
	})
	if err != nil {
		t.Fatalf("SPMD: %v", err)
	}
	if recvd != msgs {
		t.Fatalf("delivered %d of %d", recvd, msgs)
	}
	st := tr.Stats()
	if st.DupsSuppressed == 0 {
		t.Fatalf("expected suppressed duplicates at 50%% dup, got none")
	}
	if fs := u.Machine().FaultStats(); fs.Duplicated == 0 {
		t.Fatalf("fault layer duplicated nothing")
	}
}

// TestGiveUpOnCrashedReceiver checks that retransmission to a dead node is
// bounded: the sender abandons the message and the simulation terminates.
func TestGiveUpOnCrashedReceiver(t *testing.T) {
	eng := sim.New(3)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 1, Crashes: []cm5.Crash{{Node: 1, At: sim.Time(50 * sim.Microsecond)}}})
	tr := Attach(u, Options{RTO: sim.Micros(100), MaxAttempts: 5})
	h := u.Register("nop", func(c threads.Ctx, pkt *cm5.Packet) {})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			// Crashed at t=50us; stop participating once the plan says so.
			for !ep.Node().Crashed() {
				ep.Poll(c)
				c.P.Charge(sim.Micros(5))
				c.S.Yield(c)
			}
			return
		}
		c.P.Charge(sim.Micros(100)) // past the crash
		ep.Send(c, 1, h, [4]uint64{42, 0, 0, 0}, nil)
	})
	if err != nil {
		t.Fatalf("SPMD: %v", err)
	}
	st := tr.Stats()
	if st.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1 (stats %+v)", st.GaveUp, st)
	}
	if st.Retransmits != 4 {
		t.Fatalf("Retransmits = %d, want 4 (MaxAttempts=5 including the first send)", st.Retransmits)
	}
	if ns := tr.NodeStats(0); ns.GaveUp != 1 || ns.Retransmits != 4 {
		t.Fatalf("node 0 stats = %+v", ns)
	}
	if fs := u.Machine().FaultStats(); fs.Blackholed == 0 {
		t.Fatalf("expected blackholed packets toward the crashed node")
	}
}

// TestBackoffCapped checks that retransmit backoff doubles only up to
// RTOMax: a sender facing a permanently partitioned peer gives up after
// MaxAttempts in bounded virtual time, with the cap keeping the schedule
// arithmetic (RTO + (MaxAttempts-1)·RTOMax) rather than geometric.
func TestBackoffCapped(t *testing.T) {
	opts := Options{RTO: sim.Micros(100), RTOMax: sim.Micros(200), MaxAttempts: 6}
	eng := sim.New(4)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	// Link 0->1 drops everything forever: the ack can never arrive.
	u.Machine().SetFaultPlan(&cm5.FaultPlan{
		Seed:       1,
		Partitions: []cm5.Partition{{Src: 0, Dst: 1, From: 0, To: sim.Time(sim.Second)}},
	})
	tr := Attach(u, opts)
	h := u.Register("nop", func(c threads.Ctx, pkt *cm5.Packet) {})
	var sentAt sim.Time
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		sentAt = c.P.Now()
		u.Endpoint(0).Send(c, 1, h, [4]uint64{42, 0, 0, 0}, nil)
	})
	if err != nil {
		t.Fatalf("SPMD: %v", err)
	}
	// The give-up is the last scheduled work, so quiescence time is the
	// give-up time.
	gaveUpAt := eng.Now()
	st := tr.Stats()
	if st.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1 (stats %+v)", st.GaveUp, st)
	}
	if want := uint64(opts.MaxAttempts - 1); st.Retransmits != want {
		t.Fatalf("Retransmits = %d, want %d", st.Retransmits, want)
	}
	// Timer schedule: RTO fires the first retransmit; each of the
	// remaining MaxAttempts-1 waits is the RTOMax cap (uncapped doubling
	// would be 100+200+400+800+1600+3200 = 6.3ms) plus up to DefaultJitter
	// of deterministic per-flight jitter. Allow slack for send costs and
	// daemon scheduling, but stay well under the uncapped sum.
	capped := sim.Duration(opts.RTO) + sim.Duration(opts.MaxAttempts-1)*opts.RTOMax
	maxJitter := sim.Duration(float64(opts.MaxAttempts-1) * float64(opts.RTOMax) * DefaultJitter)
	if d := gaveUpAt.Sub(sentAt); d < capped || d > capped+maxJitter+sim.Micros(100) {
		t.Fatalf("gave up after %v, want within [%v, %v] (capped jittered backoff)",
			d, capped, capped+maxJitter+sim.Micros(100))
	}
}

// TestBackoffJitterDisabled pins the exact unjittered schedule: with
// Jitter < 0 the give-up lands at RTO + (MaxAttempts-1)*RTOMax to within
// send costs, which also proves the jittered default actually added time
// on top of the same base schedule.
func TestBackoffJitterDisabled(t *testing.T) {
	opts := Options{RTO: sim.Micros(100), RTOMax: sim.Micros(200), MaxAttempts: 6, Jitter: -1}
	eng := sim.New(4)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(&cm5.FaultPlan{
		Seed:       1,
		Partitions: []cm5.Partition{{Src: 0, Dst: 1, From: 0, To: sim.Time(sim.Second)}},
	})
	tr := Attach(u, opts)
	h := u.Register("nop", func(c threads.Ctx, pkt *cm5.Packet) {})
	var sentAt sim.Time
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		sentAt = c.P.Now()
		u.Endpoint(0).Send(c, 1, h, [4]uint64{42, 0, 0, 0}, nil)
	})
	if err != nil {
		t.Fatalf("SPMD: %v", err)
	}
	if st := tr.Stats(); st.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1 (stats %+v)", st.GaveUp, st)
	}
	capped := sim.Duration(opts.RTO) + sim.Duration(opts.MaxAttempts-1)*opts.RTOMax
	if d := eng.Now().Sub(sentAt); d < capped || d > capped+sim.Micros(100) {
		t.Fatalf("gave up after %v, want about %v (exact capped backoff)", d, capped)
	}
}

// TestJitterDeterministic: the jittered retransmit schedule is a pure
// function of the flight, not of run-to-run state — two identical lossy
// runs quiesce at the same virtual time with the same counters.
func TestJitterDeterministic(t *testing.T) {
	run := func() (sim.Time, Stats) {
		eng := sim.New(9)
		defer eng.Shutdown()
		u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
		u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 13, DropProb: 0.3})
		tr := Attach(u, Options{})
		recvd := 0
		h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) { recvd++ })
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			ep := u.Endpoint(node)
			if node == 1 {
				for recvd < 30 {
					ep.Poll(c)
					c.P.Charge(sim.Micros(2))
					c.S.Yield(c)
				}
				return
			}
			for i := 0; i < 30; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i), 0, 0, 0}, nil)
				c.P.Charge(sim.Micros(2))
			}
		})
		if err != nil {
			t.Fatalf("SPMD: %v", err)
		}
		return eng.Now(), tr.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("jittered schedule not deterministic: %v/%v %+v/%+v", t1, t2, s1, s2)
	}
	if s1.Retransmits == 0 {
		t.Fatalf("no retransmits at 30%% loss (stats %+v)", s1)
	}
}

// TestPartitionGiveUpBounded: a message into a permanent partition does
// not hang the simulation — MaxAttempts bounds it even at defaults, and
// the rest of the traffic is unaffected.
func TestPartitionGiveUpBounded(t *testing.T) {
	eng := sim.New(5)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 3, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(&cm5.FaultPlan{
		Seed:       2,
		Partitions: []cm5.Partition{{Src: 0, Dst: 1, From: 0, To: sim.Time(sim.Second)}},
	})
	tr := Attach(u, Options{})
	recvd := 0
	h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) { recvd++ })
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		switch node {
		case 0:
			ep.Send(c, 1, h, [4]uint64{1, 0, 0, 0}, nil) // into the partition
			ep.Send(c, 2, h, [4]uint64{2, 0, 0, 0}, nil) // healthy link
		case 2:
			for recvd == 0 {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
		}
	})
	if err != nil {
		t.Fatalf("SPMD: %v", err)
	}
	st := tr.Stats()
	if st.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1 (stats %+v)", st.GaveUp, st)
	}
	if recvd != 1 {
		t.Fatalf("healthy link delivered %d messages, want 1", recvd)
	}
	// Default options: 150us RTO, 11 further attempts capped at 2.4ms each
	// puts the give-up comfortably under 30ms of virtual time.
	if end := eng.Now(); end > sim.Time(30*sim.Millisecond) {
		t.Fatalf("simulation ran to %v, want bounded give-up", end)
	}
}

// TestEnvelopeW2W3Panic documents the framing limit: messages already
// using W2/W3 cannot ride the reliable channel.
func TestEnvelopeW2W3Panic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for W2/W3 user")
		}
	}()
	envelopeWords(1, 0, [4]uint64{0, 0, 7, 0})
}

// TestDeterminism runs the lossy burst twice and compares trace hashes,
// fault hashes, and final times.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		eng := sim.New(11)
		defer eng.Shutdown()
		ht := sim.NewHashTracer()
		eng.SetTracer(ht)
		u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
		u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 5, DropProb: 0.1, DupProb: 0.05, ExtraJitter: sim.Micros(4)})
		Attach(u, Options{})
		recvd := 0
		h := u.Register("count", func(c threads.Ctx, pkt *cm5.Packet) { recvd++ })
		elapsed, err := u.SPMD(func(c threads.Ctx, node int) {
			ep := u.Endpoint(node)
			if node == 1 {
				for recvd < 50 {
					ep.Poll(c)
					c.P.Charge(sim.Micros(2))
					c.S.Yield(c)
				}
				return
			}
			for i := 0; i < 50; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i), 0, 0, 0}, nil)
				c.P.Charge(sim.Micros(2))
			}
		})
		if err != nil {
			t.Fatalf("SPMD: %v", err)
		}
		return ht.Sum(), u.Machine().FaultTraceHash(), elapsed
	}
	h1, f1, t1 := run()
	h2, f2, t2 := run()
	if h1 != h2 || f1 != f2 || t1 != t2 {
		t.Fatalf("nondeterministic: trace %x/%x fault %x/%x time %v/%v", h1, h2, f1, f2, t1, t2)
	}
}
