package cm5

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is a simulated multicomputer: N nodes, a data network, and a
// control network. All methods must be called from simulation context
// (process bodies or kernel callbacks) — the machine is as single-threaded
// as the kernel that drives it.
type Machine struct {
	eng   *sim.Engine
	cost  CostModel
	nodes []*Node
	ctl   *controlNetwork
	stats NetStats
	fault *faultState // nil = perfect network (the default)
}

// NetStats aggregates data-network traffic counters.
type NetStats struct {
	SmallSent    uint64
	BulkSent     uint64
	BytesSent    uint64
	FullRejects  uint64 // TryInject calls rejected because the NIC was full
	MaxQueueSeen int    // high-water mark across all NIC input queues
}

// NewMachine creates a machine with n nodes.
func NewMachine(eng *sim.Engine, n int, cost CostModel) *Machine {
	if n < 1 {
		panic("cm5: machine needs at least one node")
	}
	m := &Machine{eng: eng, cost: cost}
	m.nodes = make([]*Node, n)
	for i := range m.nodes {
		m.nodes[i] = &Node{id: i, m: m, nic: newNIC(cost.NICQueueCap)}
	}
	m.ctl = newControlNetwork(m)
	return m
}

// Engine returns the simulation engine driving this machine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cost }

// N returns the number of nodes.
func (m *Machine) N() int { return len(m.nodes) }

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Stats returns a copy of the machine's traffic counters.
func (m *Machine) Stats() NetStats { return m.stats }

// Node is one processor of the machine. The node itself is passive: the
// thread package supplies its CPU (a simulation process), and the am
// package supplies its packet dispatch routine.
type Node struct {
	id  int
	m   *Machine
	nic *nic

	// wake, if non-nil, is invoked (in kernel context) when a packet is
	// delivered into this node's input queue. The thread scheduler
	// registers its idle process here so delivery can end an idle wait.
	wake func()
}

// ID returns the node number, 0-based.
func (n *Node) ID() int { return n.id }

// Machine returns the owning machine.
func (n *Node) Machine() *Machine { return n.m }

// SetWake registers fn to be called whenever a packet is delivered into
// this node's input queue. Pass nil to clear.
func (n *Node) SetWake(fn func()) { n.wake = fn }

// Pending reports how many received packets are waiting to be polled.
func (n *Node) Pending() int { return n.nic.pending() }

// InFlight reports whether any packets are reserved toward this node but
// not yet delivered.
func (n *Node) InFlight() bool { return n.nic.reserved > 0 }

// NetworkFull reports whether an injection toward dst would be refused
// right now. This is the OAM "network busy" abort condition.
func (n *Node) NetworkFull(dst int) bool {
	return n.m.nodes[dst].nic.full()
}

// TryInject attempts to send pkt from this node. On success it charges the
// sending process the CPU cost of the injection (including, for bulk
// transfers, the streaming time — the CM-5 scopy keeps the sending
// processor busy), schedules delivery, and returns true. If the
// destination's input buffer is full it charges nothing and returns false.
//
// p must be the running process, executing on this node's CPU.
func (n *Node) TryInject(p *sim.Proc, pkt *Packet) bool {
	if pkt.Src != n.id {
		panic(fmt.Sprintf("cm5: packet src %d injected from node %d", pkt.Src, n.id))
	}
	if pkt.Dst < 0 || pkt.Dst >= len(n.m.nodes) {
		panic(fmt.Sprintf("cm5: packet dst %d out of range", pkt.Dst))
	}
	dst := n.m.nodes[pkt.Dst]
	f := n.m.fault
	now := n.m.eng.Now()
	var lossKind FaultKind
	lost := false
	if f != nil {
		// Decide loss before the full-buffer check: a send to a crashed
		// (never-polling, eventually full) node must still "succeed" from
		// the sender's view, or drain-while-sending would spin forever on
		// a NIC nobody will ever empty.
		lossKind, lost = f.lossKind(now, pkt.Src, pkt.Dst)
	}
	if !lost && dst.nic.full() {
		n.m.stats.FullRejects++
		return false
	}
	cost := &n.m.cost
	var busy sim.Duration
	switch pkt.Kind {
	case Small:
		if len(pkt.Payload) > cost.MaxPayload {
			panic(fmt.Sprintf("cm5: small packet payload %d exceeds max %d", len(pkt.Payload), cost.MaxPayload))
		}
		busy = cost.PacketSendOverhead
		n.m.stats.SmallSent++
	case Bulk:
		busy = cost.BulkSetup + sim.Duration(len(pkt.Payload))*cost.BulkPerByte
		n.m.stats.BulkSent++
	default:
		panic("cm5: unknown packet kind")
	}
	n.m.stats.BytesSent += uint64(len(pkt.Payload))
	if lost {
		// The sender pays the injection cost — the packet left the node
		// and died in the network, indistinguishable from a successful
		// send until (if ever) a higher layer times out waiting.
		switch lossKind {
		case FaultBlackhole:
			f.stats.Blackholed++
			crashedAt := pkt.Src
			if !f.crashed[pkt.Src] {
				crashedAt = pkt.Dst
			}
			f.perNode[crashedAt].Blackholed++
		case FaultPartitionDrop:
			f.stats.PartitionDrops++
			f.perNode[pkt.Src].Dropped++
		default:
			f.stats.Dropped++
			f.perNode[pkt.Src].Dropped++
		}
		f.record(FaultEvent{T: now, Kind: lossKind, Src: pkt.Src, Dst: pkt.Dst})
		p.Charge(busy)
		return true
	}
	dst.nic.reserve()
	eng := n.m.eng
	wire := cost.WireLatency
	if cost.WireJitter > 0 {
		// Deterministic jitter from the engine's seeded source. Note
		// that jitter can reorder same-pair deliveries; the layers above
		// do not depend on FIFO ordering (RPC matches replies by call
		// id), but applications relying on it should keep jitter off.
		wire += sim.Duration(eng.Rand().Int63n(int64(cost.WireJitter)))
	}
	dup := false
	var dupWire sim.Duration
	if f != nil {
		wire += f.extraLatency(now, pkt.Src, pkt.Dst)
		if f.duplicate() && !dst.nic.full() {
			// The network forged a second copy; it takes its own slot and
			// its own (possibly different) path latency.
			dup = true
			dst.nic.reserve()
			dupWire = cost.WireLatency + f.extraLatency(now, pkt.Src, pkt.Dst)
			f.stats.Duplicated++
			f.perNode[pkt.Src].Duplicated++
			f.record(FaultEvent{T: now, Kind: FaultDuplicate, Src: pkt.Src, Dst: pkt.Dst})
		}
	}
	deliver := func() {
		if f != nil && f.crashed[pkt.Dst] {
			// The receiver crashed while the packet was on the wire.
			dst.nic.abandon()
			f.stats.LateDrops++
			f.perNode[pkt.Dst].Blackholed++
			f.record(FaultEvent{T: eng.Now(), Kind: FaultLateDrop, Src: pkt.Src, Dst: pkt.Dst})
			return
		}
		dst.nic.deliver(pkt)
		if q := dst.nic.pending(); q > n.m.stats.MaxQueueSeen {
			n.m.stats.MaxQueueSeen = q
		}
		if dst.wake != nil {
			dst.wake()
		}
	}
	// The sender's CPU is busy for the injection; the packet leaves at the
	// end of that window and lands WireLatency later.
	p.Charge(busy)
	eng.After(wire, deliver)
	if dup {
		eng.After(dupWire, deliver)
	}
	return true
}

// PollPacket checks the input queue, charging poll cost. If a packet is
// waiting it is ejected (charging the receive overhead) and returned;
// otherwise PollPacket returns nil. Dispatching the packet to a handler is
// the caller's job (package am).
func (n *Node) PollPacket(p *sim.Proc) *Packet {
	cost := &n.m.cost
	pkt := n.nic.pop()
	if pkt == nil {
		p.Charge(cost.PollEmpty)
		return nil
	}
	p.Charge(cost.PacketRecvOverhead)
	return pkt
}
