package sim

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// Tracer observes kernel scheduling decisions. Implementations must be
// cheap; they run on the hot path of every dispatch.
type Tracer interface {
	Resume(t Time, p *Proc) // process gains the (virtual) CPU
	Yield(t Time, p *Proc)  // process yields back to the kernel
	Exit(t Time, p *Proc)   // process body returned or panicked
}

// WriterTracer logs every scheduling transition to an io.Writer; intended
// for debugging small simulations. Write errors are sticky: the first one
// stops further output and is reported by Err, so a truncated trace file
// (full disk, closed pipe) is detectable instead of silently incomplete.
type WriterTracer struct {
	W   io.Writer
	err error
}

// NewWriterTracer returns a tracer logging to w.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{W: w} }

// Err returns the first write error encountered, or nil.
func (w *WriterTracer) Err() error { return w.err }

func (w *WriterTracer) printf(format string, t Time, name string) {
	if w.err != nil {
		return
	}
	if _, err := fmt.Fprintf(w.W, format, t, name); err != nil {
		w.err = err
	}
}

func (w *WriterTracer) Resume(t Time, p *Proc) { w.printf("%v resume %s\n", t, p.name) }
func (w *WriterTracer) Yield(t Time, p *Proc)  { w.printf("%v yield  %s\n", t, p.name) }
func (w *WriterTracer) Exit(t Time, p *Proc)   { w.printf("%v exit   %s\n", t, p.name) }

// Probe observes process accounting beyond the scheduling transitions a
// Tracer sees: virtual-CPU charges (with their start time, so observers
// can reconstruct burn intervals) and process spawns. Probes are pure
// observers — they must not schedule events, charge time, or otherwise
// perturb the simulation; the kernel calls them only when one is
// installed, so the disabled path stays allocation-free.
type Probe interface {
	// Charged reports that p burned d of virtual CPU starting at start.
	// For a plain Charge it fires at charge time; for an interruptible
	// charge it fires at resume time with the actually-consumed amount.
	Charged(p *Proc, start Time, d Duration)
	// Spawned reports a new process incarnation at spawn time.
	Spawned(p *Proc)
}

// HashTracer folds every scheduling transition into an FNV-1a hash. Two
// runs of a deterministic simulation must produce identical sums; the
// determinism tests rely on this.
type HashTracer struct {
	h uint64
}

// NewHashTracer returns a tracer with the standard FNV-1a offset basis.
func NewHashTracer() *HashTracer {
	f := fnv.New64a()
	return &HashTracer{h: f.Sum64()}
}

func (h *HashTracer) mix(kind byte, t Time, p *Proc) {
	const prime = 1099511628211
	h.h = (h.h ^ uint64(kind)) * prime
	h.h = (h.h ^ uint64(t)) * prime
	h.h = (h.h ^ p.id) * prime
}

func (h *HashTracer) Resume(t Time, p *Proc) { h.mix('r', t, p) }
func (h *HashTracer) Yield(t Time, p *Proc)  { h.mix('y', t, p) }
func (h *HashTracer) Exit(t Time, p *Proc)   { h.mix('x', t, p) }

// Sum returns the accumulated schedule hash.
func (h *HashTracer) Sum() uint64 { return h.h }

// CanonicalTracer buffers every scheduling transition and renders them in
// the canonical (time, process name, transition) order, independent of
// the execution interleaving within an instant. A sequential run and a
// sharded run of the same simulation produce byte-identical canonical
// text; the shard-equivalence tests compare exactly this.
type CanonicalTracer struct {
	recs []traceRec
}

// NewCanonicalTracer returns an empty canonical tracer.
func NewCanonicalTracer() *CanonicalTracer { return &CanonicalTracer{} }

func (c *CanonicalTracer) Resume(t Time, p *Proc) {
	c.recs = append(c.recs, traceRec{t, 0, p.name})
}
func (c *CanonicalTracer) Yield(t Time, p *Proc) {
	c.recs = append(c.recs, traceRec{t, 1, p.name})
}
func (c *CanonicalTracer) Exit(t Time, p *Proc) {
	c.recs = append(c.recs, traceRec{t, 2, p.name})
}

// Text returns the buffered transitions sorted canonically, formatted
// like WriterTracer output.
func (c *CanonicalTracer) Text() string {
	recs := make([]traceRec, len(c.recs))
	copy(recs, c.recs)
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.kind < b.kind
	})
	var sb strings.Builder
	for _, r := range recs {
		switch r.kind {
		case 0:
			fmt.Fprintf(&sb, "%v resume %s\n", r.t, r.name)
		case 1:
			fmt.Fprintf(&sb, "%v yield  %s\n", r.t, r.name)
		default:
			fmt.Fprintf(&sb, "%v exit   %s\n", r.t, r.name)
		}
	}
	return sb.String()
}

// Hash returns the FNV-1a hash of Text.
func (c *CanonicalTracer) Hash() uint64 {
	f := fnv.New64a()
	io.WriteString(f, c.Text())
	return f.Sum64()
}
