package sim

import (
	"bytes"
	"testing"
)

// goldenWorkload drives every control-transfer path of the kernel —
// charges, zero-charges, park/unpark, interruptible charges cut short by
// Interrupt, spawn-from-proc, cancelled timers, kernel callbacks, and a
// shutdown kill of a still-parked process — under a fixed seed. The
// returned counters and schedule hash pin the kernel's observable
// behavior: any rewrite of the dispatch machinery must reproduce them
// bit-for-bit.
func goldenWorkload() (events, dispatches, hash uint64, final Time) {
	e := New(42)
	h := NewHashTracer()
	e.SetTracer(h)

	var parked *Proc
	parked = e.Spawn("parked", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Park()
		}
	})
	e.Spawn("waker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Charge(Duration(e.Rand().Intn(500)))
			parked.Unpark()
		}
	})

	intr := e.Spawn("intr", func(p *Proc) {
		rem := Micros(300)
		for rem > 0 {
			rem = p.ChargeInterruptible(rem)
		}
	})
	for _, at := range []float64{20, 80, 140} {
		e.After(Micros(at), func() { intr.Interrupt() })
	}

	e.Spawn("spawner", func(p *Proc) {
		for i := 0; i < 10; i++ {
			e.Spawn("child", func(q *Proc) {
				q.Charge(Duration(e.Rand().Intn(200)))
				q.Charge(0)
			})
			p.Charge(Duration(e.Rand().Intn(100)))
		}
	})

	tm := e.AfterTimer(Micros(50), func() {})
	e.After(Micros(10), func() { tm.Cancel() })

	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			for j := 0; j < 30; j++ {
				p.Charge(Duration(e.Rand().Intn(1000)))
				if e.Rand().Intn(3) == 0 {
					p.Charge(0)
				}
			}
		})
	}

	// Left parked forever: exercises the Shutdown kill path in the hash.
	e.Spawn("immortal", func(p *Proc) {
		for {
			p.Park()
		}
	})

	if err := e.Run(); err != nil {
		panic(err)
	}
	final = e.Now()
	e.Shutdown()
	return e.Events(), e.Dispatches(), h.Sum(), final
}

// Golden values recorded from the seed (two-hop, dedicated-kernel-
// goroutine) kernel before the direct-handoff rewrite. The migrating
// kernel loop changes which OS goroutine runs the event loop, never the
// loop's logic, so these must stay constant forever.
const (
	goldenEvents     = 227
	goldenDispatches = 224
	goldenHash       = 0x5c9e483f7593abf6
	goldenFinal      = Time(300000)
)

// goldenTrace is the WriterTracer text of a small mixed run (a charger,
// a park/unpark pair, and a shutdown kill), recorded from the seed
// kernel. Trace text pins resume/yield/exit order and virtual timestamps
// byte-for-byte.
const goldenTrace = `0.000us resume a
0.000us yield  a
0.000us resume b
0.000us yield  b
0.000us resume s
0.000us yield  s
1.000us resume a
1.000us yield  a
1.000us resume b
1.000us exit   b
2.000us resume a
2.000us exit   a
2.000us resume s
2.000us exit   s
`

// TestGoldenTraceText compares a full WriterTracer transcript against the
// seed kernel's, so the rewrite provably emits identical tracer output,
// not just an identical hash.
func TestGoldenTraceText(t *testing.T) {
	e := New(1)
	var buf bytes.Buffer
	e.SetTracer(NewWriterTracer(&buf))
	var s *Proc
	e.Spawn("a", func(p *Proc) {
		p.Charge(Micros(1))
		p.Charge(Micros(1))
		s.Unpark()
	})
	e.Spawn("b", func(p *Proc) {
		p.Charge(Micros(1))
	})
	s = e.Spawn("s", func(p *Proc) {
		p.Park()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if got := buf.String(); got != goldenTrace {
		t.Errorf("trace differs from seed kernel:\n--- got ---\n%s--- want ---\n%s", got, goldenTrace)
	}
}

// TestGoldenKernelEquivalence pins the kernel's observable schedule
// against constants recorded from the seed kernel, so a scheduling
// rewrite cannot silently change event order, virtual timestamps, or
// trace output.
func TestGoldenKernelEquivalence(t *testing.T) {
	events, dispatches, hash, final := goldenWorkload()
	t.Logf("events=%d dispatches=%d hash=%#x final=%d", events, dispatches, hash, int64(final))
	if events != goldenEvents {
		t.Errorf("events = %d, want golden %d", events, goldenEvents)
	}
	if dispatches != goldenDispatches {
		t.Errorf("dispatches = %d, want golden %d", dispatches, goldenDispatches)
	}
	if hash != goldenHash {
		t.Errorf("schedule hash = %#x, want golden %#x", hash, goldenHash)
	}
	if final != goldenFinal {
		t.Errorf("final time = %d, want golden %d", int64(final), int64(goldenFinal))
	}
}
