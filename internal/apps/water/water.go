// Package water implements the Water experiment of section 4.2.4: an
// n-body molecular-dynamics application (512 molecules) in the
// message-passing formulation of Romein's Amoeba version. Each iteration
// has two communication phases separated by local computation: first
// every processor broadcasts the positions of its molecules to every
// other processor; then each processor queues acceleration updates for
// non-local molecules and sends one message per destination processor
// (lower-numbered owners send to higher-numbered ones under the
// owner-computes-half rule — "approximately half of them"). The remote
// procedures that store positions and updates can block when the previous
// iteration's data has not been consumed yet, which is what makes the
// (barrier-free) ORPC version abort occasionally — Table 3.
//
// Substitution note: SPLASH Water's intra-molecular physics is replaced
// by a Lennard-Jones point-molecule model with identical communication
// structure and calibrated per-pair compute cost; see DESIGN.md.
package water

import (
	"math"
	"math/rand"

	"repro/internal/am"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Compute-cost calibration. The paper's sequential program takes 24 s per
// iteration at 512 molecules; with all 512*511/2 pairs computed that is
// ~183 us per pair interaction on the 32 MHz node.
var (
	// CostPair is charged per pairwise force evaluation.
	CostPair = sim.Micros(183)
	// CostMol is charged per molecule integration step.
	CostMol = sim.Micros(12)
)

// Config parameterizes a run. The paper's experiment: 512 molecules,
// five iterations (the first discarded as cache warm-up).
type Config struct {
	Mols  int
	Iters int
	Seed  int64
	// Shards selects the engine's shard count: 0 or 1 sequential,
	// negative auto (one per CPU), clamped to the node count. Results are
	// bit-identical at any value; only wall-clock time changes.
	Shards int
	// Optimistic selects the engine's speculative span scheduler instead
	// of lockstep windows when Shards resolves parallel (results stay
	// bit-identical; only wall-clock time changes).
	Optimistic bool
	// Cores gives each simulated node this many cores (default 1).
	// Values > 1 route sync ORPC dispatches through the multiactive path
	// (oam.Options.Cores); Water declares no compatibility matrix, so
	// handlers still serialize and results are unchanged.
	Cores int
	// Observe, if non-nil, is called once the universe (and, for the RPC
	// variants, the runtime — nil under AM) is built but before the SPMD
	// program starts, so an observer can attach its probes.
	Observe func(*am.Universe, *rpc.Runtime)
}

// DefaultConfig returns the paper's problem size.
func DefaultConfig() Config { return Config{Mols: 512, Iters: 5, Seed: 9} }

const dt = 1e-4

// state is a complete system state: flattened [n][3] arrays.
type state struct {
	n   int
	pos []float64
	vel []float64
}

// newState places molecules on a jittered cubic lattice with zero
// initial velocities; deterministic in the seed.
func newState(n int, seed int64) *state {
	rng := rand.New(rand.NewSource(seed))
	s := &state{n: n, pos: make([]float64, 3*n), vel: make([]float64, 3*n)}
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := 1.2
	i := 0
	for x := 0; x < side && i < n; x++ {
		for y := 0; y < side && i < n; y++ {
			for z := 0; z < side && i < n; z++ {
				s.pos[3*i+0] = float64(x)*spacing + 0.05*rng.Float64()
				s.pos[3*i+1] = float64(y)*spacing + 0.05*rng.Float64()
				s.pos[3*i+2] = float64(z)*spacing + 0.05*rng.Float64()
				i++
			}
		}
	}
	return s
}

// pairForce computes the Lennard-Jones force of molecule j on molecule i
// (softened to keep five iterations stable for any seed).
func pairForce(pos []float64, i, j int, f *[3]float64) {
	var d [3]float64
	r2 := 1e-4 // softening
	for k := 0; k < 3; k++ {
		d[k] = pos[3*i+k] - pos[3*j+k]
		r2 += d[k] * d[k]
	}
	inv2 := 1.0 / r2
	inv6 := inv2 * inv2 * inv2
	// 24(2/r^12 - 1/r^6)/r^2, sigma = epsilon = 1.
	mag := 24 * (2*inv6*inv6 - inv6) * inv2
	if mag > 1e4 {
		mag = 1e4 // clamp: keeps any initial overlap from exploding
	}
	for k := 0; k < 3; k++ {
		f[k] = mag * d[k]
	}
}

// halfShell visits the partners of molecule i under SPLASH Water's
// cyclic half-shell rule: i interacts with i+1 .. i+n/2 (mod n), with the
// diametrically opposite partner claimed only by the lower index so each
// pair is computed exactly once. The rule balances load across a
// contiguous molecule partition and makes each processor's phase-2
// updates go to the cyclically following owners — "approximately half of
// them", as the paper says.
func halfShell(i, n int, visit func(j int)) {
	half := n / 2
	for k := 1; k <= half; k++ {
		if k == half && n%2 == 0 && i >= half {
			break
		}
		visit((i + k) % n)
	}
}

// shellSize reports how many partners halfShell visits for molecule i.
func shellSize(i, n int) int {
	half := n / 2
	if n%2 == 0 && i >= half {
		return half - 1
	}
	return half
}

// accumulateOwned computes the force phase for molecules [lo,hi): for
// every owned i and every half-shell partner j, the force on i
// accumulates into acc, and the reaction on j accumulates into upd (the
// caller routes non-local parts to their owners). onRow, if non-nil, is
// called once per owned molecule with the number of pairs evaluated —
// the compute/poll hook.
func accumulateOwned(pos []float64, lo, hi, n int, acc, upd []float64, onRow func(pairs int)) {
	var f [3]float64
	for i := lo; i < hi; i++ {
		halfShell(i, n, func(j int) {
			pairForce(pos, i, j, &f)
			for k := 0; k < 3; k++ {
				acc[3*i+k] += f[k]
				upd[3*j+k] -= f[k]
			}
		})
		if onRow != nil {
			onRow(shellSize(i, n))
		}
	}
}

// integrate advances molecules [lo,hi) one leapfrog step.
func integrate(s *state, lo, hi int, acc []float64) {
	for i := lo; i < hi; i++ {
		for k := 0; k < 3; k++ {
			s.vel[3*i+k] += dt * acc[3*i+k]
			s.pos[3*i+k] += dt * s.vel[3*i+k]
		}
	}
}

// checksum fingerprints molecules [lo,hi). Values are quantized (1e-6
// grid) before fingerprinting: different partitionings sum forces in
// different orders, so trajectories agree only to rounding error, which
// the quantization absorbs. Within one partitioning the computation is
// bit-reproducible, and across partitionings the quantized fingerprints
// must match.
func checksum(s *state, lo, hi int) uint64 {
	q := func(v float64) uint64 { return uint64(int64(math.Round(v * 1e6))) }
	var sum uint64
	for i := lo; i < hi; i++ {
		for k := 0; k < 3; k++ {
			sum += q(s.pos[3*i+k]) * uint64(3*i+k+1)
			sum += q(s.vel[3*i+k]) * uint64(1_000_003*(3*i+k)+7)
		}
	}
	return sum
}

// SeqResult reports a sequential run.
type SeqResult struct {
	Checksum uint64
	// TimePerIter is the simulated sequential time of one iteration (the
	// Figure 4 normalization baseline; the paper's is 24 s).
	TimePerIter sim.Duration
	Time        sim.Duration
}

// SolveSeq runs the simulation sequentially.
func SolveSeq(cfg Config) SeqResult {
	s := newState(cfg.Mols, cfg.Seed)
	acc := make([]float64, 3*cfg.Mols)
	upd := make([]float64, 3*cfg.Mols)
	for it := 0; it < cfg.Iters; it++ {
		for i := range acc {
			acc[i] = 0
			upd[i] = 0
		}
		accumulateOwned(s.pos, 0, cfg.Mols, cfg.Mols, acc, upd, nil)
		for i := range acc {
			acc[i] += upd[i]
		}
		integrate(s, 0, cfg.Mols, acc)
	}
	pairs := cfg.Mols * (cfg.Mols - 1) / 2
	perIter := sim.Duration(pairs)*CostPair + sim.Duration(cfg.Mols)*CostMol
	return SeqResult{
		Checksum:    checksum(s, 0, cfg.Mols),
		TimePerIter: perIter,
		Time:        sim.Duration(cfg.Iters) * perIter,
	}
}
