package sched

import (
	"fmt"

	"repro/internal/sim"
)

// EventKind labels one control-plane transition in a run's event record.
type EventKind uint8

const (
	// EvPlace: a job was leased to an agent at a new epoch.
	EvPlace EventKind = iota
	// EvDone: a completion was accepted at the lease's current epoch.
	EvDone
	// EvStale: a completion was rejected — wrong epoch or wrong agent.
	EvStale
	// EvExpire: a lease was reclaimed (timeout, dead agent, or a failed
	// placement call) and the job re-queued.
	EvExpire
	// EvDead: the failure detector declared an agent dead.
	EvDead
	// EvAlive: a heartbeat from a declared-dead agent arrived; the
	// detector readmitted it.
	EvAlive
)

func (k EventKind) String() string {
	switch k {
	case EvPlace:
		return "place"
	case EvDone:
		return "done"
	case EvStale:
		return "stale"
	case EvExpire:
		return "expire"
	case EvDead:
		return "dead"
	case EvAlive:
		return "alive"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// ReclaimReason says why an EvExpire reclaimed its lease.
type ReclaimReason uint8

const (
	ReasonNone ReclaimReason = iota
	// ReasonTimeout: no completion arrived within LeaseTimeout.
	ReasonTimeout
	// ReasonDead: the leaseholder was declared dead.
	ReasonDead
	// ReasonPlaceFail: the placement call failed or the agent refused it.
	ReasonPlaceFail
)

func (r ReclaimReason) String() string {
	switch r {
	case ReasonNone:
		return "-"
	case ReasonTimeout:
		return "timeout"
	case ReasonDead:
		return "dead"
	case ReasonPlaceFail:
		return "placefail"
	default:
		return fmt.Sprintf("ReclaimReason(%d)", uint8(r))
	}
}

// Event is one recorded control-plane transition. All events are recorded
// on the scheduler node in its execution order, so the record — like
// everything else in the kernel — is bit-identical at any shard count.
// Job is -1 for agent-level events (EvDead, EvAlive); Epoch is 0 where it
// does not apply.
type Event struct {
	T     sim.Time
	Kind  EventKind
	Job   int
	Agent int
	Epoch int
	Why   ReclaimReason
}

func (ev Event) String() string {
	switch ev.Kind {
	case EvDead, EvAlive:
		return fmt.Sprintf("%v %s agent=%d", ev.T, ev.Kind, ev.Agent)
	case EvExpire:
		return fmt.Sprintf("%v %s job=%d agent=%d epoch=%d why=%s",
			ev.T, ev.Kind, ev.Job, ev.Agent, ev.Epoch, ev.Why)
	default:
		return fmt.Sprintf("%v %s job=%d agent=%d epoch=%d",
			ev.T, ev.Kind, ev.Job, ev.Agent, ev.Epoch)
	}
}

// FNV-1a, the same idiom as the machine's fault-trace hash.
func fnvInit() uint64 { return 14695981039346656037 }

func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// RecordHash folds an event record into one FNV-1a word: equal hashes
// across shard counts mean the control plane made identical decisions at
// identical virtual times.
func RecordHash(rec []Event) uint64 {
	h := fnvInit()
	for _, ev := range rec {
		h = fnvMix(h, uint64(ev.T))
		h = fnvMix(h, uint64(ev.Kind))
		h = fnvMix(h, uint64(int64(ev.Job)))
		h = fnvMix(h, uint64(ev.Agent))
		h = fnvMix(h, uint64(ev.Epoch))
		h = fnvMix(h, uint64(ev.Why))
	}
	return h
}

// CheckInvariants replays an event record and verifies the control
// plane's safety contract:
//
//   - placed-exactly-once: at most one completion is ever accepted per
//     job, and never a second placement without an intervening reclaim;
//   - epoch fencing: lease epochs are strictly monotonic per job, a
//     completion is only accepted at the exact (epoch, agent) of the
//     outstanding lease, and a completion matching a live lease is never
//     rejected as stale;
//   - detector consistency: no job is placed on an agent the detector
//     had declared dead at that virtual time, and dead/alive transitions
//     alternate;
//   - the record itself is in nondecreasing virtual-time order.
//
// With requireAllDone it also checks liveness: every job's completion
// was accepted by the end of the record. Callers set it when the fault
// plan leaves a recovery path (no permanently dead or partitioned
// agents hold the only capacity).
func CheckInvariants(rec []Event, jobs, agents int, requireAllDone bool) error {
	type jobState struct {
		epoch     int
		placed    bool
		agent     int
		done      bool
		doneEpoch int
		doneAgent int
	}
	states := make([]jobState, jobs)
	dead := make([]bool, agents+1)
	var last sim.Time
	for i, ev := range rec {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("sched: invariant violation at event %d [%v]: %s",
				i, ev, fmt.Sprintf(format, args...))
		}
		if ev.T < last {
			return fail("virtual time went backwards (previous event at %v)", last)
		}
		last = ev.T
		if ev.Agent < 1 || ev.Agent > agents {
			return fail("agent out of range")
		}
		if ev.Kind != EvDead && ev.Kind != EvAlive && (ev.Job < 0 || ev.Job >= jobs) {
			return fail("job out of range")
		}
		switch ev.Kind {
		case EvDead:
			if dead[ev.Agent] {
				return fail("agent declared dead while already dead")
			}
			dead[ev.Agent] = true
		case EvAlive:
			if !dead[ev.Agent] {
				return fail("agent readmitted while already alive")
			}
			dead[ev.Agent] = false
		case EvPlace:
			s := &states[ev.Job]
			if dead[ev.Agent] {
				return fail("job placed on an agent the detector had declared dead")
			}
			if s.done {
				return fail("job placed again after its completion was accepted")
			}
			if s.placed {
				return fail("job placed twice without an intervening reclaim")
			}
			if ev.Epoch <= s.epoch {
				return fail("lease epoch not monotonic (%d after %d)", ev.Epoch, s.epoch)
			}
			s.epoch, s.agent, s.placed = ev.Epoch, ev.Agent, true
		case EvExpire:
			s := &states[ev.Job]
			if !s.placed || s.epoch != ev.Epoch || s.agent != ev.Agent {
				return fail("reclaim of a lease that was not outstanding")
			}
			s.placed = false
		case EvDone:
			s := &states[ev.Job]
			if s.done {
				return fail("second completion accepted — placed-exactly-once violated")
			}
			if !s.placed || ev.Epoch != s.epoch || ev.Agent != s.agent {
				return fail("completion accepted without a matching lease (fencing breach)")
			}
			s.done, s.placed = true, false
			s.doneEpoch, s.doneAgent = ev.Epoch, ev.Agent
		case EvStale:
			s := &states[ev.Job]
			if s.placed && ev.Epoch == s.epoch && ev.Agent == s.agent {
				return fail("completion matching the live lease rejected as stale")
			}
			if s.done && ev.Epoch == s.doneEpoch && ev.Agent == s.doneAgent {
				return fail("duplicate of the accepted completion rejected as stale")
			}
		default:
			return fail("unknown event kind")
		}
	}
	if requireAllDone {
		for j := range states {
			if !states[j].done {
				return fmt.Errorf("sched: liveness violation: job %d never completed (last epoch %d)",
					j, states[j].epoch)
			}
		}
	}
	return nil
}
