package cm5

import (
	"testing"

	"repro/internal/sim"
)

// trafficRun injects k spaced packets 0->1 under plan and returns the
// machine, trace hash, and delivered count.
func trafficRun(t *testing.T, seed int64, jitter sim.Duration, plan *FaultPlan, k int) (*Machine, uint64, int) {
	t.Helper()
	eng := sim.New(seed)
	ht := sim.NewHashTracer()
	eng.SetTracer(ht)
	cost := DefaultCostModel()
	cost.WireJitter = jitter
	m := NewMachine(eng, 2, cost)
	defer eng.Shutdown()
	m.SetFaultPlan(plan)
	senderDone := false
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			for !m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small, W0: uint64(i)}) {
				p.Charge(sim.Micros(1))
			}
			p.Charge(sim.Micros(10))
		}
		senderDone = true
	})
	received := 0
	eng.Spawn("receiver", func(p *sim.Proc) {
		for p.Now() < sim.Time(sim.Second) {
			if m.Node(1).PollPacket(p) != nil {
				received++
			}
			p.Charge(sim.Micros(5))
			if senderDone && m.Node(1).Pending() == 0 && !m.Node(1).InFlight() {
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return m, ht.Sum(), received
}

// TestZeroFaultPlanBitIdentical: installing an all-zero plan must leave
// the trace bit-identical to no plan at all, including with wire jitter
// active — the fault RNG is separate from the engine RNG, so the jitter
// draw stream is untouched.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	_, h0, r0 := trafficRun(t, 5, sim.Micros(15), nil, 30)
	m, h1, r1 := trafficRun(t, 5, sim.Micros(15), &FaultPlan{Seed: 999}, 30)
	if h0 != h1 || r0 != r1 {
		t.Fatalf("zero plan perturbed the run: hash %x/%x received %d/%d", h0, h1, r0, r1)
	}
	if fs := m.FaultStats(); fs != (FaultStats{}) {
		t.Fatalf("zero plan injected faults: %+v", fs)
	}
}

// TestDropLosesPackets: with 30% loss, received + dropped == sent.
func TestDropLosesPackets(t *testing.T) {
	m, _, received := trafficRun(t, 7, 0, &FaultPlan{Seed: 3, DropProb: 0.3}, 100)
	fs := m.FaultStats()
	if fs.Dropped == 0 {
		t.Fatal("no drops at 30% loss")
	}
	if received+int(fs.Dropped) != 100 {
		t.Fatalf("received %d + dropped %d != sent 100", received, fs.Dropped)
	}
	if nf := m.NodeFaults(0); nf.Dropped != fs.Dropped {
		t.Fatalf("per-node attribution: %+v vs %+v", nf, fs)
	}
	if st := m.Stats(); st.SmallSent != 100 {
		t.Fatalf("lost packets must still count as sent: %d", st.SmallSent)
	}
}

// TestDuplicationDeliversExtras: duplicated packets arrive more than once.
func TestDuplicationDeliversExtras(t *testing.T) {
	m, _, received := trafficRun(t, 11, 0, &FaultPlan{Seed: 4, DupProb: 0.4}, 100)
	fs := m.FaultStats()
	if fs.Duplicated == 0 {
		t.Fatal("no duplicates at 40%")
	}
	if received != 100+int(fs.Duplicated) {
		t.Fatalf("received %d, want %d + %d dups", received, 100, fs.Duplicated)
	}
}

// TestLinkOverrideAndPartition: a link override forces total loss, and a
// partition window drops only inside its interval.
func TestLinkOverrideAndPartition(t *testing.T) {
	m, _, received := trafficRun(t, 13, 0, &FaultPlan{
		Seed:  1,
		Links: []LinkFault{{Src: 0, Dst: 1, DropProb: 1.0}},
	}, 20)
	if received != 0 {
		t.Fatalf("full-loss link delivered %d", received)
	}
	if fs := m.FaultStats(); fs.Dropped != 20 {
		t.Fatalf("dropped %d of 20", fs.Dropped)
	}

	// Partition covering roughly the first half of the send window.
	m2, _, received2 := trafficRun(t, 13, 0, &FaultPlan{
		Seed:       1,
		Partitions: []Partition{{Src: -1, Dst: 1, From: 0, To: sim.Time(100 * sim.Microsecond)}},
	}, 20)
	fs2 := m2.FaultStats()
	if fs2.PartitionDrops == 0 || received2 == 0 {
		t.Fatalf("partition all-or-nothing: drops=%d received=%d", fs2.PartitionDrops, received2)
	}
	if received2+int(fs2.PartitionDrops) != 20 {
		t.Fatalf("received %d + partition drops %d != 20", received2, fs2.PartitionDrops)
	}
}

// TestCrashBlackholesTraffic: after the crash instant, packets to the dead
// node vanish (and Crashed reports it); in-flight packets are discarded at
// delivery time and their reservations released.
func TestCrashBlackholesTraffic(t *testing.T) {
	eng := sim.New(2)
	m := NewMachine(eng, 2, DefaultCostModel())
	defer eng.Shutdown()
	m.SetFaultPlan(&FaultPlan{
		Seed:    1,
		Crashes: []Crash{{Node: 1, At: sim.Time(20 * sim.Microsecond)}},
	})
	eng.Spawn("sender", func(p *sim.Proc) {
		if m.Crashed(1) {
			t.Error("crashed before schedule")
		}
		// One packet in flight across the crash instant: injected at ~19us,
		// delivered at ~21.3us > crash time.
		p.Charge(sim.Micros(19) - m.Cost().PacketSendOverhead)
		if !m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small}) {
			t.Error("inject failed")
		}
		p.Charge(sim.Micros(30))
		if !m.Crashed(1) || !m.Node(1).Crashed() {
			t.Error("crash did not fire")
		}
		// Post-crash sends "succeed" but are blackholed.
		if !m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small}) {
			t.Error("blackholed send must report success")
		}
		p.Charge(sim.Micros(20))
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	fs := m.FaultStats()
	if fs.Crashes != 1 || fs.LateDrops != 1 || fs.Blackholed != 1 {
		t.Fatalf("stats %+v, want 1 crash, 1 late drop, 1 blackhole", fs)
	}
	if m.Node(1).Pending() != 0 || m.Node(1).InFlight() {
		t.Fatalf("dead node holds packets: pending=%d inflight=%v", m.Node(1).Pending(), m.Node(1).InFlight())
	}
	if nf := m.NodeFaults(1); nf.Blackholed != 2 {
		t.Fatalf("blackholes attributed to the crashed node: %+v", nf)
	}
}

// TestSlowWindowDelays: deliveries inside a slow window arrive later.
func TestSlowWindowDelays(t *testing.T) {
	arrival := func(plan *FaultPlan) sim.Time {
		eng := sim.New(6)
		m := NewMachine(eng, 2, DefaultCostModel())
		defer eng.Shutdown()
		m.SetFaultPlan(plan)
		var at sim.Time
		eng.Spawn("sender", func(p *sim.Proc) {
			m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small})
		})
		eng.Spawn("receiver", func(p *sim.Proc) {
			for at == 0 && p.Now() < sim.Time(sim.Millisecond) {
				if m.Node(1).PollPacket(p) != nil {
					at = p.Now()
				}
				p.Charge(sim.Micros(1))
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := arrival(nil)
	slowed := arrival(&FaultPlan{
		Seed: 1,
		Slow: []SlowWindow{{Node: 1, From: 0, To: sim.Time(sim.Millisecond), Extra: sim.Micros(40)}},
	})
	if slowed.Sub(base) < sim.Micros(35) {
		t.Fatalf("slow window added %v, want ~40us", slowed.Sub(base))
	}
}

// TestFaultTraceHashStable: same plan, same seed — identical fault event
// records; different fault seed — different record.
func TestFaultTraceHashStable(t *testing.T) {
	plan := &FaultPlan{Seed: 8, DropProb: 0.2, DupProb: 0.1}
	m1, _, _ := trafficRun(t, 9, 0, plan, 60)
	m2, _, _ := trafficRun(t, 9, 0, plan, 60)
	if m1.FaultTraceHash() != m2.FaultTraceHash() {
		t.Fatalf("fault hash diverged: %x vs %x", m1.FaultTraceHash(), m2.FaultTraceHash())
	}
	if len(m1.FaultEvents()) != len(m2.FaultEvents()) {
		t.Fatalf("event counts diverged")
	}
	other := &FaultPlan{Seed: 1234, DropProb: 0.2, DupProb: 0.1}
	m3, _, _ := trafficRun(t, 9, 0, other, 60)
	if m3.FaultTraceHash() == m1.FaultTraceHash() {
		t.Fatalf("different fault seed produced identical fault trace")
	}
}
