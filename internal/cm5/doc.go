// Package cm5 models a CM-5-class multicomputer: a set of nodes joined by
// a data network with bounded network-interface buffers and by a control
// network providing barriers, split-phase global-OR, and reductions.
//
// The model is deliberately software-centric. The paper's phenomena —
// thread-management overhead, handler abort rates, saturation of a master
// node — are functions of per-operation software costs and of the
// queueing/blocking structure of the network interface. Both are modeled
// explicitly: every operation charges virtual time from a CostModel whose
// defaults are the constants measured on the real machine (32 MHz CM-5
// SPARC nodes, CMMD 3.2), and every network-interface input queue is
// bounded, so "network full" is a real, observable state with backpressure.
//
// Layering: package cm5 moves packets and reserves buffer space; it does
// not know what a handler is. Package am builds Active Messages dispatch
// on top; packages threads/oam/rpc build upward from there.
package cm5
