package rpc

import (
	"errors"
	"fmt"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/sim"
	"repro/internal/threads"
)

// ErrDeadline is returned by CallWithDeadline when no reply arrived in
// time — the server may be slow, partitioned, or crashed.
var ErrDeadline = errors.New("rpc: call deadline exceeded")

// Mode selects the dispatch discipline of a Runtime.
type Mode uint8

const (
	// ORPC runs each incoming call as an Optimistic Active Message.
	ORPC Mode = iota
	// TRPC creates a thread for each incoming call.
	TRPC
)

func (m Mode) String() string {
	switch m {
	case ORPC:
		return "ORPC"
	case TRPC:
		return "TRPC"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Options configures a Runtime.
type Options struct {
	Mode Mode
	// OAM configures the optimistic dispatcher (ORPC mode only).
	OAM oam.Options
	// BackOfQueue schedules incoming call threads at the back of the
	// ready queue instead of the front. The paper measured both and
	// found front always better; front is the default (false).
	BackOfQueue bool
	// NackBackoffBase and NackBackoffMax bound the exponential backoff a
	// nacked caller performs before retrying. Zero values select 10 us
	// and 320 us.
	NackBackoffBase sim.Duration
	NackBackoffMax  sim.Duration
}

// Runtime is the per-universe RPC engine.
type Runtime struct {
	u      *am.Universe
	opts   Options
	d      *oam.Dispatcher // dispatcher for synchronous procedures
	dAsync *oam.Dispatcher // async procedures never nack; see doc.go
	replyH am.HandlerID
	nackH  am.HandlerID
	nodes  []*nodeState
	procs  []*Proc
	probe  Probe
}

// Probe observes client-side call lifecycles. Probes are pure observers —
// they must not schedule events or charge virtual time; hooks are skipped
// when no probe is installed.
type Probe interface {
	// CallStart fires when a client begins a synchronous call (before the
	// first request is injected) or fires an asynchronous one.
	CallStart(t sim.Time, node int, proc string)
	// CallEnd fires when the call resolves; timedOut reports a deadline
	// expiry, retries how many nack retries the call absorbed.
	CallEnd(t sim.Time, node int, proc string, timedOut bool, retries uint64)
	// StaleReply fires when a reply or nack arrives for a call no longer
	// waiting (deadline abandonment or duplicate delivery).
	StaleReply(t sim.Time, node int)
}

// SetProbe installs a call probe; pass nil to disable.
func (rt *Runtime) SetProbe(p Probe) { rt.probe = p }

// nodeState is the client-side call table of one node. It is only ever
// touched from code running on that node, so it needs no locking under a
// sharded engine.
type nodeState struct {
	nextID uint64
	calls  map[uint64]*call
	stale  uint64 // replies/nacks for calls no longer in the table
}

// call is one outstanding synchronous call.
type call struct {
	flag     threads.Flag
	reply    []byte
	nacked   bool
	timedOut bool
}

// New builds an RPC runtime over u. Define all procedures before the
// simulation starts.
func New(u *am.Universe, opts Options) *Runtime {
	if opts.NackBackoffBase == 0 {
		opts.NackBackoffBase = sim.Micros(10)
	}
	if opts.NackBackoffMax == 0 {
		opts.NackBackoffMax = sim.Micros(320)
	}
	rt := &Runtime{u: u, opts: opts}
	rt.d = oam.NewDispatcher(opts.OAM)
	asyncOpts := opts.OAM
	if asyncOpts.Strategy == oam.Nack {
		asyncOpts.Strategy = oam.Rerun
	}
	rt.dAsync = oam.NewDispatcher(asyncOpts)
	rt.d.SetNodes(u.N())
	rt.dAsync.SetNodes(u.N())
	rt.nodes = make([]*nodeState, u.N())
	for i := range rt.nodes {
		rt.nodes[i] = &nodeState{calls: make(map[uint64]*call)}
	}
	rt.replyH = u.Register("rpc/reply", rt.handleReply)
	rt.nackH = u.Register("rpc/nack", rt.handleNack)
	return rt
}

// Universe returns the universe the runtime is bound to.
func (rt *Runtime) Universe() *am.Universe { return rt.u }

// Mode returns the runtime's dispatch mode.
func (rt *Runtime) Mode() Mode { return rt.opts.Mode }

// Dispatcher exposes the OAM dispatcher (for statistics).
func (rt *Runtime) Dispatcher() *oam.Dispatcher { return rt.d }

// AsyncDispatcher exposes the dispatcher used by asynchronous procedures.
func (rt *Runtime) AsyncDispatcher() *oam.Dispatcher { return rt.dAsync }

func (rt *Runtime) handleReply(c threads.Ctx, pkt *cm5.Packet) {
	ns := rt.nodes[pkt.Dst]
	cl, ok := ns.calls[pkt.W0]
	if !ok || cl.flag.IsSet() {
		// The caller gave up (deadline) or already completed: on a faulty
		// network late replies are normal, not a protocol violation.
		ns.stale++
		if rt.probe != nil {
			rt.probe.StaleReply(c.P.Now(), pkt.Dst)
		}
		return
	}
	cl.reply = pkt.Payload
	cl.flag.Set()
}

func (rt *Runtime) handleNack(c threads.Ctx, pkt *cm5.Packet) {
	ns := rt.nodes[pkt.Dst]
	cl, ok := ns.calls[pkt.W0]
	if !ok || cl.flag.IsSet() {
		ns.stale++
		if rt.probe != nil {
			rt.probe.StaleReply(c.P.Now(), pkt.Dst)
		}
		return
	}
	cl.nacked = true
	cl.flag.Set()
}

// StaleReplies counts replies and nacks that arrived for calls no longer
// waiting — abandoned by a deadline, or already resolved. Always zero on
// a fault-free network.
func (rt *Runtime) StaleReplies() uint64 {
	var n uint64
	for _, ns := range rt.nodes {
		n += ns.stale
	}
	return n
}

// ProcStats are the per-procedure counters the termination routine of the
// paper's generated stubs prints; Tables 2 and 3 are built from them.
type ProcStats struct {
	Calls     uint64 // client-side invocations (including nack retries)
	OAMs      uint64 // server-side optimistic attempts
	Successes uint64 // attempts that completed inside the handler
	Promoted  uint64 // attempts promoted to a thread
	Nacks     uint64 // attempts refused with a negative acknowledgment
	Threads   uint64 // TRPC-mode thread creations
	Retries   uint64 // client-side re-sends after a nack
	Timeouts  uint64 // CallWithDeadline expirations
	GiveUps   uint64 // CallIdempotent exhaustions: every attempt timed out
}

// SuccessPercent is the "% Successes" column of Tables 2 and 3.
func (s *ProcStats) SuccessPercent() float64 {
	if s.OAMs == 0 {
		return 100
	}
	return 100 * float64(s.Successes) / float64(s.OAMs)
}

// Impl is the server-side body of a remote procedure. It runs against e
// (optimistically or as a thread, depending on mode and luck), with
// caller identifying the client node. arg is the marshaled argument
// record; the returned record is marshaled results (ignored for
// asynchronous procedures).
type Impl func(e *oam.Env, caller int, arg []byte) []byte

// Proc is a defined remote procedure. Counters are kept per node (the
// node whose context increments them) so client and server sides never
// contend under a sharded engine; Stats sums them.
type Proc struct {
	rt    *Runtime
	name  string
	h     am.HandlerID
	async bool
	impl  Impl
	stats []ProcStats
	// class is the procedure's row in the compatibility matrix installed
	// by SetCompat, or -1 (incompatible with everything) when unset.
	class int
	// keyFn extracts the disjointness key from a marshaled argument frame
	// for disjoint(key) compatibility clauses; nil when the procedure has
	// no key.
	keyFn func(arg []byte) uint64
}

// Define registers a synchronous remote procedure.
func (rt *Runtime) Define(name string, impl Impl) *Proc {
	return rt.define(name, false, impl)
}

// DefineAsync registers an asynchronous (fire-and-forget) procedure.
func (rt *Runtime) DefineAsync(name string, impl Impl) *Proc {
	return rt.define(name, true, impl)
}

func (rt *Runtime) define(name string, async bool, impl Impl) *Proc {
	p := &Proc{rt: rt, name: name, async: async, impl: impl,
		stats: make([]ProcStats, rt.u.N()), class: -1}
	p.h = rt.u.Register("rpc/"+name, p.serve)
	rt.procs = append(rt.procs, p)
	return p
}

// CompatMethod names one procedure's row in a compatibility matrix and,
// optionally, its disjointness-key extractor.
type CompatMethod struct {
	Name string
	Key  func(arg []byte) uint64
}

// CompatSpec ties a service's compatibility matrix to its procedures.
// The generated stubs' CompatSpec() compiles one from the IDL's
// compatible clauses.
type CompatSpec struct {
	Table   *oam.CompatTable
	Methods []CompatMethod
}

// SetCompat installs a compatibility spec: each named procedure gets its
// matrix class (its index in spec.Methods) and key extractor, and the
// dispatchers consult spec.Table for multiactive admission. Call it after
// the Define calls, before the simulation starts.
func (rt *Runtime) SetCompat(spec CompatSpec) {
	rt.d.SetCompat(spec.Table)
	rt.dAsync.SetCompat(spec.Table)
	for i := range spec.Methods {
		m := &spec.Methods[i]
		for _, p := range rt.procs {
			if p.name == m.Name {
				p.class = i
				p.keyFn = m.Key
			}
		}
	}
}

// Name returns the procedure name.
func (p *Proc) Name() string { return p.name }

// Stats returns a snapshot of the per-procedure counters (the paper's
// generated termination routine prints these), summed across nodes.
func (p *Proc) Stats() ProcStats {
	var out ProcStats
	for i := range p.stats {
		s := &p.stats[i]
		out.Calls += s.Calls
		out.OAMs += s.OAMs
		out.Successes += s.Successes
		out.Promoted += s.Promoted
		out.Nacks += s.Nacks
		out.Threads += s.Threads
		out.Retries += s.Retries
		out.Timeouts += s.Timeouts
		out.GiveUps += s.GiveUps
	}
	return out
}

// serve is the request handler: it runs on the polling context of the
// server node and dispatches the call according to the runtime mode.
func (p *Proc) serve(c threads.Ctx, pkt *cm5.Packet) {
	rt := p.rt
	cost := rt.u.Machine().Cost()
	c.P.Charge(cost.StubServer)
	ep := rt.u.Endpoint(pkt.Dst)
	callID, caller, arg := pkt.W0, pkt.Src, pkt.Payload

	st := &p.stats[pkt.Dst]
	if rt.opts.Mode == TRPC {
		st.Threads++
		c.S.Create(c, "rpc/"+p.name, !rt.opts.BackOfQueue, func(c2 threads.Ctx) {
			env := oam.NewThreadEnv(c2, ep, rt.d)
			res := p.impl(env, caller, arg)
			if !p.async {
				p.sendReply(env, caller, callID, res)
			}
		})
		return
	}

	d := rt.d
	if p.async {
		d = rt.dAsync
	}
	st.OAMs++
	if !p.async && rt.opts.OAM.Cores > 1 {
		// Multiactive dispatch: the execution may be queued behind
		// incompatible peers and settle after serve returns, so outcome
		// accounting moves into the settle callback (still on this node).
		var key uint64
		hasKey := p.keyFn != nil
		if hasKey {
			key = p.keyFn(arg)
		}
		d.RunMulti(c, ep, p.name, p.class, key, hasKey, func(e *oam.Env) {
			res := p.impl(e, caller, arg)
			p.sendReply(e, caller, callID, res)
		}, func(c2 threads.Ctx, outcome oam.Outcome, _ oam.Reason) {
			switch outcome {
			case oam.Completed:
				st.Successes++
			case oam.Promoted:
				st.Promoted++
			case oam.NackNeeded:
				st.Nacks++
				ep.Send(c2, caller, rt.nackH, [4]uint64{callID}, nil)
			}
		})
		return
	}
	outcome, _ := d.Run(c, ep, p.name, func(e *oam.Env) {
		res := p.impl(e, caller, arg)
		if !p.async {
			p.sendReply(e, caller, callID, res)
		}
	})
	switch outcome {
	case oam.Completed:
		st.Successes++
	case oam.Promoted:
		st.Promoted++
	case oam.NackNeeded:
		st.Nacks++
		ep.Send(c, caller, rt.nackH, [4]uint64{callID}, nil)
	}
}

// sendReply routes the result record back to the caller, using the bulk
// path when it does not fit an Active Message packet.
func (p *Proc) sendReply(e *oam.Env, caller int, callID uint64, res []byte) {
	if len(res) <= p.rt.u.Machine().Cost().MaxPayload {
		e.Send(caller, p.rt.replyH, [4]uint64{callID}, res)
	} else {
		e.SendBulk(caller, p.rt.replyH, [4]uint64{callID}, res)
	}
}

// Call performs a synchronous remote procedure call from a thread context
// and returns the marshaled result record. If the server nacks, Call
// backs off and retries transparently.
func (p *Proc) Call(c threads.Ctx, server int, arg []byte) []byte {
	if p.async {
		panic(fmt.Sprintf("rpc: synchronous Call of asynchronous procedure %q", p.name))
	}
	if c.T == nil {
		panic(fmt.Sprintf("rpc: synchronous Call of %q from handler context", p.name))
	}
	rt := p.rt
	cost := rt.u.Machine().Cost()
	me := c.Node().ID()
	ns := rt.nodes[me]
	backoff := rt.opts.NackBackoffBase
	if rt.probe != nil {
		rt.probe.CallStart(c.P.Now(), me, p.name)
	}
	var retries uint64
	for {
		p.stats[me].Calls++
		c.P.Charge(cost.StubClient)
		ns.nextID++
		id := ns.nextID
		cl := &call{}
		ns.calls[id] = cl
		p.sendRequest(c, server, id, arg)
		cl.flag.Wait(c)
		delete(ns.calls, id)
		if !cl.nacked {
			if rt.probe != nil {
				rt.probe.CallEnd(c.P.Now(), me, p.name, false, retries)
			}
			return cl.reply
		}
		// Nacked: back off (bounded exponential) and retry.
		p.stats[me].Retries++
		retries++
		c.P.Charge(backoff)
		backoff = nextBackoff(backoff, rt.opts.NackBackoffMax)
	}
}

// nextBackoff doubles a backoff up to its cap.
func nextBackoff(cur, max sim.Duration) sim.Duration {
	cur *= 2
	if cur > max {
		return max
	}
	return cur
}

// CallWithDeadline performs a synchronous call that gives up if no reply
// (or nack) arrives within timeout of virtual time, returning ErrDeadline
// instead of hanging forever. On a lossy or crashy network this is the
// primitive everything else builds on: a reply lost in transit, a crashed
// server, or a partition all surface as a deadline error the caller can
// act on. Nack backoff-and-retry still happens transparently inside the
// window.
//
// The deadline is best effort in one direction only: a timed-out call may
// still have executed on the server (the reply, not the request, may be
// what was lost). Use CallIdempotent when re-execution is safe.
func (p *Proc) CallWithDeadline(c threads.Ctx, server int, arg []byte, timeout sim.Duration) ([]byte, error) {
	if p.async {
		panic(fmt.Sprintf("rpc: synchronous Call of asynchronous procedure %q", p.name))
	}
	if c.T == nil {
		panic(fmt.Sprintf("rpc: synchronous Call of %q from handler context", p.name))
	}
	if timeout <= 0 {
		panic(fmt.Sprintf("rpc: non-positive deadline for %q", p.name))
	}
	rt := p.rt
	cost := rt.u.Machine().Cost()
	sh := c.Node().Shard() // deadline timers are node-local state
	me := c.Node().ID()
	ns := rt.nodes[me]
	deadline := sh.Now().Add(timeout)
	backoff := rt.opts.NackBackoffBase
	if rt.probe != nil {
		rt.probe.CallStart(c.P.Now(), me, p.name)
	}
	var retries uint64
	for {
		p.stats[me].Calls++
		c.P.Charge(cost.StubClient)
		ns.nextID++
		id := ns.nextID
		cl := &call{}
		ns.calls[id] = cl
		timer := sh.AtTimer(deadline, func() {
			if !cl.flag.IsSet() {
				cl.timedOut = true
				cl.flag.Set()
			}
		})
		p.sendRequest(c, server, id, arg)
		cl.flag.Wait(c)
		timer.Cancel()
		delete(ns.calls, id)
		if cl.timedOut {
			p.stats[me].Timeouts++
			if rt.probe != nil {
				rt.probe.CallEnd(c.P.Now(), me, p.name, true, retries)
			}
			return nil, ErrDeadline
		}
		if !cl.nacked {
			if rt.probe != nil {
				rt.probe.CallEnd(c.P.Now(), me, p.name, false, retries)
			}
			return cl.reply, nil
		}
		p.stats[me].Retries++
		retries++
		c.P.Charge(backoff)
		backoff = nextBackoff(backoff, rt.opts.NackBackoffMax)
		if sh.Now() >= deadline {
			p.stats[me].Timeouts++
			if rt.probe != nil {
				rt.probe.CallEnd(c.P.Now(), me, p.name, true, retries)
			}
			return nil, ErrDeadline
		}
	}
}

// CallIdempotent retries a deadline call up to attempts times, each with
// its own per-attempt timeout. It is only safe for procedures whose
// re-execution is harmless (reads, leases, at-least-once job hand-outs):
// an attempt whose reply was lost has still run on the server.
//
// Every attempt uses a fresh call id, so a reply to an abandoned attempt
// that surfaces later (healed partition, duplicated packet) is counted in
// StaleReplies and dropped — it can never resolve a subsequent call.
func (p *Proc) CallIdempotent(c threads.Ctx, server int, arg []byte, per sim.Duration, attempts int) ([]byte, error) {
	if attempts < 1 {
		panic(fmt.Sprintf("rpc: CallIdempotent of %q with %d attempts", p.name, attempts))
	}
	var err error
	for i := 0; i < attempts; i++ {
		var res []byte
		res, err = p.CallWithDeadline(c, server, arg, per)
		if err == nil {
			return res, nil
		}
	}
	p.stats[c.Node().ID()].GiveUps++
	return nil, err
}

// CallAsync fires an asynchronous call and returns as soon as the request
// has been injected into the network.
func (p *Proc) CallAsync(c threads.Ctx, server int, arg []byte) {
	if !p.async {
		panic(fmt.Sprintf("rpc: CallAsync of synchronous procedure %q", p.name))
	}
	me := c.Node().ID()
	p.stats[me].Calls++
	if p.rt.probe != nil {
		p.rt.probe.CallStart(c.P.Now(), me, p.name)
	}
	c.P.Charge(p.rt.u.Machine().Cost().StubClient)
	p.sendRequest(c, server, 0, arg)
	if p.rt.probe != nil {
		p.rt.probe.CallEnd(c.P.Now(), me, p.name, false, 0)
	}
}

func (p *Proc) sendRequest(c threads.Ctx, server int, id uint64, arg []byte) {
	ep := p.rt.u.Endpoint(c.Node().ID())
	if len(arg) <= p.rt.u.Machine().Cost().MaxPayload {
		ep.Send(c, server, p.h, [4]uint64{id}, arg)
	} else {
		ep.SendBulk(c, server, p.h, [4]uint64{id}, arg)
	}
}
