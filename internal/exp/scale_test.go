package exp

import "testing"

// TestKernelScaleBudget runs the quick scale sweep and asserts the same
// budgets CI asserts on the full sweep: per-event wall cost within the
// documented memory-hierarchy cap from N=128 to N=65536, algorithmic
// flatness (scans/pop, allocs/event) at every point, and per-node memory
// under the caps both touched and idle.
func TestKernelScaleBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep builds 65536-node machines")
	}
	sb := KernelScale(true)
	if len(sb.Points) != len(ScaleNodeCounts) {
		t.Fatalf("points = %d, want %d", len(sb.Points), len(ScaleNodeCounts))
	}
	for _, p := range sb.Points {
		if p.Queue.ScansPerPop > ScaleScansPerPopMax {
			t.Errorf("N=%d: %.2f scans/pop > %.1f — bucket width unmatched to event spacing",
				p.Nodes, p.Queue.ScansPerPop, float64(ScaleScansPerPopMax))
		}
		if p.AllocsPerEvent > ScaleAllocsPerEventMax {
			t.Errorf("N=%d: %.3f allocs/event > %.2f — steady-state tick is no longer allocation-free",
				p.Nodes, p.AllocsPerEvent, float64(ScaleAllocsPerEventMax))
		}
	}
	last := sb.Points[len(sb.Points)-1]
	if last.BytesPerNode > ScaleBytesPerNodeCap {
		t.Errorf("N=%d: %.0f bytes/node > %d cap", last.Nodes, last.BytesPerNode, ScaleBytesPerNodeCap)
	}
	if sb.IdleBytesPerNode > ScaleIdleBytesPerNodeCap {
		t.Errorf("idle machine: %.1f bytes/node > %d cap — something materializes untouched nodes",
			sb.IdleBytesPerNode, ScaleIdleBytesPerNodeCap)
	}
	if !sb.ScaleValid {
		t.Skipf("ns/event ratio not asserted: %s", sb.Warning)
	}
	if sb.NsPerEventRatio > ScaleNsPerEventRatioMax {
		t.Errorf("ns/event ratio %.2f > %.1f from N=%d to N=%d",
			sb.NsPerEventRatio, float64(ScaleNsPerEventRatioMax), sb.Points[0].Nodes, last.Nodes)
	}
}
