// Package exp is the experiment harness: one function per table and
// figure of the paper's evaluation (section 4), each returning printable
// rows so cmd/oamlab and the benchmarks can regenerate them.
//
// Every experiment runs at the paper's problem size by default; the Quick
// variants shrink sizes so the whole suite runs in seconds (used by the
// tests and the default benchmarks).
package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Table is a generic printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print renders the table in a paper-like fixed-width layout.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "%s\n", strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%s\n", strings.Join(row, ","))
	}
}

func us(d sim.Duration) string      { return fmt.Sprintf("%.1f", float64(d)/1000) }
func seconds(d sim.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
func f1(v float64) string           { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string           { return fmt.Sprintf("%.2f", v) }
func itoa(v int) string             { return fmt.Sprintf("%d", v) }
func u64(v uint64) string           { return fmt.Sprintf("%d", v) }
