package threads

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// TestComputePollingModeIsPlainCharge: without interrupts, Compute is
// exactly Charge.
func TestComputePollingModeIsPlainCharge(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		t0 := c.P.Now()
		s.Compute(c, sim.Micros(100))
		if d := c.P.Now().Sub(t0); d != sim.Micros(100) {
			t.Errorf("compute took %v, want 100us", d)
		}
	})
	run(t, eng)
}

// TestInterruptPreemptsCompute: with interrupts enabled, a packet arrival
// preempts the computation, the handler runs immediately (plus overhead),
// and the computation still completes in full.
func TestInterruptPreemptsCompute(t *testing.T) {
	eng := sim.New(7)
	m := cm5.NewMachine(eng, 2, cm5.DefaultCostModel())
	s0 := NewScheduler(m.Node(0))
	s1 := NewScheduler(m.Node(1))
	defer eng.Shutdown()
	cost := cm5.DefaultCostModel()

	var handledAt sim.Time
	s0.SetPoller(pollerFunc(func(c Ctx) bool {
		if pkt := m.Node(0).PollPacket(c.P); pkt != nil {
			handledAt = c.P.Now()
			return true
		}
		return false
	}))
	s0.EnableInterrupts()

	var computeDone sim.Time
	s0.Bootstrap("main", func(c Ctx) {
		s0.Compute(c, sim.Micros(1000))
		computeDone = c.P.Now()
	})
	var sentAt sim.Time
	s1.Bootstrap("sender", func(c Ctx) {
		c.P.Charge(sim.Micros(200))
		m.Node(1).TryInject(c.P, &cm5.Packet{Src: 1, Dst: 0, Kind: cm5.Small})
		sentAt = c.P.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	arrival := sentAt.Add(cost.WireLatency)
	wantHandled := arrival.Add(cost.InterruptOverhead + cost.PacketRecvOverhead)
	if handledAt != wantHandled {
		t.Fatalf("handled at %v, want %v (arrival + interrupt overhead)", handledAt, wantHandled)
	}
	// Total compute time preserved: 1000us of work + one interrupt's
	// overhead and handling.
	if computeDone < sim.Time(sim.Micros(1000+50)) {
		t.Fatalf("compute done at %v: lost work", computeDone)
	}
	if st := s0.Stats(); st.Interrupts != 1 {
		t.Fatalf("interrupts = %d, want 1", st.Interrupts)
	}
}

// pollerFunc adapts a function to the Poller interface.
type pollerFunc func(Ctx) bool

func (f pollerFunc) PollOnce(c Ctx) bool { return f(c) }

// TestInterruptWhileIdleFallsBackToWake: packets arriving while the node
// is idle behave as in polling mode (the idle scheduler wakes and polls);
// no interrupt is taken.
func TestInterruptWhileIdleFallsBackToWake(t *testing.T) {
	eng := sim.New(7)
	m := cm5.NewMachine(eng, 2, cm5.DefaultCostModel())
	s0 := NewScheduler(m.Node(0))
	s1 := NewScheduler(m.Node(1))
	defer eng.Shutdown()
	handled := false
	s0.SetPoller(pollerFunc(func(c Ctx) bool {
		if m.Node(0).PollPacket(c.P) != nil {
			handled = true
			return true
		}
		return false
	}))
	s0.EnableInterrupts()
	s1.Bootstrap("sender", func(c Ctx) {
		c.P.Charge(sim.Micros(10))
		m.Node(1).TryInject(c.P, &cm5.Packet{Src: 1, Dst: 0, Kind: cm5.Small})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Fatal("idle node never handled the packet")
	}
	if st := s0.Stats(); st.Interrupts != 0 {
		t.Fatalf("interrupts = %d, want 0 (node was idle)", st.Interrupts)
	}
}

// TestMultipleInterruptsDuringOneCompute: every arrival during a long
// computation is serviced promptly.
func TestMultipleInterruptsDuringOneCompute(t *testing.T) {
	eng := sim.New(7)
	m := cm5.NewMachine(eng, 2, cm5.DefaultCostModel())
	s0 := NewScheduler(m.Node(0))
	s1 := NewScheduler(m.Node(1))
	defer eng.Shutdown()
	handled := 0
	s0.SetPoller(pollerFunc(func(c Ctx) bool {
		if m.Node(0).PollPacket(c.P) != nil {
			handled++
			return true
		}
		return false
	}))
	s0.EnableInterrupts()
	s0.Bootstrap("main", func(c Ctx) {
		s0.Compute(c, sim.Micros(5000))
	})
	s1.Bootstrap("sender", func(c Ctx) {
		for i := 0; i < 5; i++ {
			c.P.Charge(sim.Micros(400))
			m.Node(1).TryInject(c.P, &cm5.Packet{Src: 1, Dst: 0, Kind: cm5.Small})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 5 {
		t.Fatalf("handled = %d, want 5", handled)
	}
	if st := s0.Stats(); st.Interrupts != 5 {
		t.Fatalf("interrupts = %d, want 5", st.Interrupts)
	}
}
