package threads

import "repro/internal/cm5"

// Thread-aware wrappers over the control network. A thread waiting at a
// barrier (or reduction) suspends like any blocked thread: its context
// becomes the acting scheduler, so the node keeps servicing incoming
// messages and other runnable threads while it waits — which is exactly
// what the RPC versions of SOR and Water rely on.

// Barrier blocks the calling thread until every node has entered the
// barrier for the same round.
func (s *Scheduler) Barrier(c Ctx) {
	t := c.T
	if t == nil {
		panic("threads: Barrier from handler context")
	}
	s.checkCurrent(t, "Barrier")
	s.node.BarrierEnter()
	if s.node.BarrierWaitAsync(func() { s.makeReady(t, true) }) {
		return
	}
	s.blockCurrent(c)
}

// Reduce blocks the calling thread in an all-node reduction of val under
// op and returns the combined value.
func (s *Scheduler) Reduce(c Ctx, val float64, op cm5.ReduceOp) float64 {
	t := c.T
	if t == nil {
		panic("threads: Reduce from handler context")
	}
	s.checkCurrent(t, "Reduce")
	s.node.ReduceEnter(val, op)
	var out float64
	ready, v := s.node.ReduceWaitAsync(func(red float64) {
		out = red
		s.makeReady(t, true)
	})
	if ready {
		return v
	}
	s.blockCurrent(c)
	return out
}

// OREnter contributes v to the split-phase global OR; it never blocks.
func (s *Scheduler) OREnter(v bool) { s.node.OREnter(v) }

// ORWait blocks the calling thread until the global-OR round it last
// entered combines, and returns the machine-wide OR.
func (s *Scheduler) ORWait(c Ctx) bool {
	t := c.T
	if t == nil {
		panic("threads: ORWait from handler context")
	}
	s.checkCurrent(t, "ORWait")
	var out bool
	ready, v := s.node.ORWaitAsync(func(or bool) {
		out = or
		s.makeReady(t, true)
	})
	if ready {
		return v
	}
	s.blockCurrent(c)
	return out
}
