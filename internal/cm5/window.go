package cm5

import (
	"repro/internal/sim"
)

// machineShard is the slice of machine state owned by one engine shard.
// During a parallel window a shard touches only its own machineShard (and
// the NICs of its own nodes); everything cross-shard is buffered here and
// merged at the window barrier by the coordinator. With one shard there
// is exactly one of these and the buffers are never used.
type machineShard struct {
	stats NetStats

	// Hot-path free lists (owner-shard only; the coordinator may also
	// touch them between windows).
	freePkt   *Packet
	freeDeliv *delivery

	// live lists this shard's materialized nodes, in materialization
	// order. Barrier-time per-node work (occupancy snapshots) walks these
	// lists instead of all n node slots, keeping the barrier O(active).
	live []*Node

	// outbox buffers cross-shard packet flights injected during the
	// current window; the barrier schedules them onto the destination
	// shards in canonical (arrival time, flight key) order — which the
	// destination heap's comparator provides, so appending order here is
	// irrelevant.
	outbox []flight

	// resv counts, per destination node, the NIC slots this shard has
	// claimed during the current window for cross-shard flights. Added to
	// the barrier-time occupancy snapshot, it gives the sender's
	// "network full" view without touching the remote NIC. Allocated on
	// the first cross-shard send; resvTouched lists the destinations with
	// nonzero counts so the barrier clears O(touched), not O(n).
	resv        []int32
	resvTouched []int32

	// ctlOps buffers collective enters/waits/wait-consumptions performed
	// during the current window; the barrier applies them.
	ctlOps []ctlOp

	// Fault accounting is sharded and merged lazily at read (see
	// fault.go), so injection sites never contend.
	fstats   FaultStats
	fperNode map[int32]*NodeFaultStats
	fevents  []FaultEvent
}

// reserveCross records a window-local NIC-slot claim toward cross-shard
// destination dst (n is the machine's node count, sizing the table on
// first use).
func (ms *machineShard) reserveCross(n, dst int) {
	if ms.resv == nil {
		ms.resv = make([]int32, n)
	}
	if ms.resv[dst] == 0 {
		ms.resvTouched = append(ms.resvTouched, int32(dst))
	}
	ms.resv[dst]++
}

// resvFor reads this shard's window-local claims toward dst.
func (ms *machineShard) resvFor(dst int) int32 {
	if ms.resv == nil {
		return 0
	}
	return ms.resv[dst]
}

// flight is one buffered cross-shard packet delivery.
type flight struct {
	at  sim.Time
	key uint64
	pkt *Packet
}

// Lookahead implements sim.WindowHook: the width of the next safe
// parallel window starting at now. No packet injected at or after now can
// affect another shard sooner than WireLatency (every fault extra is
// additive), so that is the base bound. The window is additionally
// clipped at the next fault-plan boundary — a slow window or partition
// edge — so a window never straddles a point where the plan's behavior
// changes, and an active ExtraJitter/slow configuration can only shrink
// the window, never widen it.
func (m *Machine) Lookahead(now sim.Time) sim.Duration {
	la := m.cost.WireLatency
	if f := m.fault; f != nil {
		clip := func(edge sim.Time) {
			if edge > now && sim.Duration(edge-now) < la {
				la = sim.Duration(edge - now)
			}
		}
		for _, w := range f.plan.Slow {
			clip(w.From)
			clip(w.To)
		}
		for _, w := range f.plan.Partitions {
			clip(w.From)
			clip(w.To)
		}
	}
	if la < 1 {
		la = 1
	}
	return la
}

// NextBound implements sim.SpanHook: the earliest fault-plan boundary
// strictly after now — a slow-window or partition edge — or now itself
// when there is none. Optimistic commit spans are cut there so the
// lookahead chosen at span start stays valid for the whole span and
// plan-behavior changes coincide with commit points.
func (m *Machine) NextBound(now sim.Time) sim.Time {
	bound := now
	if f := m.fault; f != nil {
		clip := func(edge sim.Time) {
			if edge > now && (bound <= now || edge < bound) {
				bound = edge
			}
		}
		for _, w := range f.plan.Slow {
			clip(w.From)
			clip(w.To)
		}
		for _, w := range f.plan.Partitions {
			clip(w.From)
			clip(w.To)
		}
	}
	return bound
}

// Barrier implements sim.WindowHook: merge everything the shards buffered
// during the window. Runs on the coordinator goroutine with every shard
// quiescent, so it may touch any state.
func (m *Machine) Barrier() {
	for si := range m.shards {
		ms := &m.shards[si]
		for _, fl := range ms.outbox {
			// The coordinator is the one non-owner context allowed to
			// materialize a node: every shard is quiescent here.
			dst := m.Node(fl.pkt.Dst)
			dst.nic.forceReserve()
			dst.sh.AtDelivery(fl.at, fl.key, m.newDelivery(dst.ms, fl.pkt))
		}
		ms.outbox = ms.outbox[:0]
		for _, d := range ms.resvTouched {
			ms.resv[d] = 0
		}
		ms.resvTouched = ms.resvTouched[:0]
	}
	for si := range m.shards {
		ms := &m.shards[si]
		ops := ms.ctlOps
		for i := range ops {
			ops[i].apply()
			ops[i] = ctlOp{} // drop callback/packet references
		}
		ms.ctlOps = ms.ctlOps[:0]
	}
	// Refresh the occupancy snapshot over materialized nodes only: an
	// unmaterialized node has an empty NIC and its snapshot entry has
	// been zero since birth, so O(active) covers all n.
	for si := range m.shards {
		for _, nd := range m.shards[si].live {
			m.snap[nd.id] = int32(nd.nic.count + nd.nic.reserved)
		}
	}
}
