// Package apps holds the shared vocabulary of the four evaluation
// applications (Triangle puzzle, TSP, SOR, Water): which communication
// system a run uses and what a run reports. The applications themselves
// live in subpackages.
package apps

import (
	"fmt"
	"runtime"

	"repro/internal/am"
	"repro/internal/sim"
	"repro/internal/threads"
)

// ResolveShards normalizes a run's requested shard count for an n-node
// machine: 0 or 1 means sequential, negative means auto (one shard per
// CPU), and the result never exceeds the node count (an empty shard is
// pure barrier overhead). Every run produces bit-identical results at any
// shard count; shards only change wall-clock time.
func ResolveShards(shards, nodes int) int {
	if shards < 0 {
		shards = runtime.NumCPU()
	}
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	return shards
}

// Engine builds the simulation engine for an n-node run at the requested
// shard count (see ResolveShards). optimistic selects the speculative
// span scheduler instead of lockstep windows when the resolved shard
// count is parallel; results are bit-identical either way.
func Engine(seed int64, shards, nodes int, optimistic bool) *sim.Engine {
	s := ResolveShards(shards, nodes)
	mode := sim.Conservative
	if optimistic {
		mode = sim.Optimistic
	}
	return sim.NewShardedConfig(seed, sim.ShardConfig{Shards: s, Mode: mode})
}

// System selects the communication system of a run, matching the three
// implementations the paper compares.
type System uint8

const (
	// AM is the hand-coded Active Messages implementation.
	AM System = iota
	// ORPC is Optimistic RPC: stubs over Optimistic Active Messages.
	ORPC
	// TRPC is Traditional RPC: a thread per incoming call.
	TRPC
)

func (s System) String() string {
	switch s {
	case AM:
		return "AM"
	case ORPC:
		return "ORPC"
	case TRPC:
		return "TRPC"
	default:
		return fmt.Sprintf("System(%d)", uint8(s))
	}
}

// Systems lists all three in the paper's presentation order.
var Systems = []System{AM, ORPC, TRPC}

// Result is what one application run reports.
type Result struct {
	System  System
	Nodes   int
	Elapsed sim.Duration // parallel virtual running time
	Answer  uint64       // application answer/checksum for validation

	// OAM statistics (ORPC runs; zero otherwise). These are the columns
	// of Tables 2 and 3.
	OAMs      uint64
	Successes uint64

	// Thread statistics.
	ThreadsCreated uint64
	LiveStackPct   float64

	// Network statistics.
	SmallSent uint64
	BulkSent  uint64
	BytesSent uint64
}

// SuccessPercent is the "% Successes" column of Tables 2 and 3.
func (r *Result) SuccessPercent() float64 {
	if r.OAMs == 0 {
		return 100
	}
	return 100 * float64(r.Successes) / float64(r.OAMs)
}

// Speedup computes speedup relative to the sequential running time.
func (r *Result) Speedup(seq sim.Duration) float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(seq) / float64(r.Elapsed)
}

// Service is an application poll point ("carefully tuned polling", section
// 4): it drains pending messages, running their handlers, and then yields
// once so that any threads the messages created (TRPC dispatch, OAM
// promotions) run before the computation resumes — the paper's "run remote
// procedure calls first" discipline.
func Service(c threads.Ctx, ep *am.Endpoint) {
	ep.PollAll(c)
	if c.T != nil {
		// Run any threads the messages created (TRPC dispatch, OAM
		// promotions) and any threads woken by this computation's own
		// signals. A yield with nothing runnable costs only the check.
		c.S.Yield(c)
	}
}

// FillResult populates the statistics fields of r from a finished run's
// universe and dispatch counters.
func FillResult(r *Result, u *am.Universe, oams, successes uint64) {
	r.OAMs = oams
	r.Successes = successes
	net := u.Machine().Stats()
	r.SmallSent = net.SmallSent
	r.BulkSent = net.BulkSent
	r.BytesSent = net.BytesSent
	var created, starts, live uint64
	for i := 0; i < u.N(); i++ {
		st := u.Scheduler(i).Stats()
		created += st.Created
		starts += st.Starts
		live += st.LiveStackStart
	}
	r.ThreadsCreated = created
	if starts > 0 {
		r.LiveStackPct = 100 * float64(live) / float64(starts)
	} else {
		r.LiveStackPct = 100
	}
}
