package repro

// One benchmark per table and figure of the paper's evaluation. The
// benchmarks run reduced problem sizes so `go test -bench=.` finishes in
// reasonable time; cmd/oamlab reproduces the full paper-scale numbers.
// Simulated results are reported as custom metrics (virtual microseconds
// or virtual seconds); wall-clock ns/op measures the simulator itself.

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/sor"
	"repro/internal/apps/triangle"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/exp"
)

// BenchmarkTable1NullRPC regenerates Table 1: null RPC round trips.
func BenchmarkTable1NullRPC(b *testing.B) {
	var rows []exp.Table1Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table1()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.NoThread)/1000, "vus-"+r.System+"-idle")
		b.ReportMetric(float64(r.Busy)/1000, "vus-"+r.System+"-busy")
	}
}

// BenchmarkBulkTransfer regenerates the section 4.1.2 payload sweep.
func BenchmarkBulkTransfer(b *testing.B) {
	var rows []exp.BulkRow
	for i := 0; i < b.N; i++ {
		rows = exp.Bulk()
	}
	for _, r := range rows {
		if r.Bytes == 0 || r.Bytes == 640 {
			b.ReportMetric(float64(r.ORPC)/1000, "vus-orpc-"+itoa(r.Bytes)+"B")
		}
	}
}

// BenchmarkAbortCost regenerates the section 4.1.1 abort-cost numbers.
func BenchmarkAbortCost(b *testing.B) {
	var live, busy float64
	for i := 0; i < b.N; i++ {
		l, s := exp.AbortCost()
		live, busy = float64(l)/1000, float64(s)/1000
	}
	b.ReportMetric(live, "vus-live-stack")
	b.ReportMetric(busy, "vus-with-switch")
}

// BenchmarkFig1Triangle regenerates Figure 1 at reduced scale: the
// Triangle puzzle per system at 8 nodes.
func BenchmarkFig1Triangle(b *testing.B) {
	cfg := triangle.Config{Side: 5, Empty: -1, Seed: 101}
	seq := triangle.SeqTime(cfg.BoardCounts())
	for _, sys := range apps.Systems {
		b.Run(sys.String(), func(b *testing.B) {
			var res apps.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = triangle.Run(sys, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds()*1000, "vms-runtime")
			b.ReportMetric(res.Speedup(seq), "speedup")
		})
	}
}

// BenchmarkFig2TSP regenerates Figure 2 at reduced scale.
func BenchmarkFig2TSP(b *testing.B) {
	cfg := tsp.Config{Cities: 10, Seed: 102}
	seq := tsp.SeqTime(tsp.NewProblem(cfg.Cities, cfg.Seed).SolveSeq())
	for _, sys := range apps.Systems {
		b.Run(sys.String(), func(b *testing.B) {
			var res apps.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = tsp.Run(sys, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds()*1000, "vms-runtime")
			b.ReportMetric(res.Speedup(seq), "speedup")
		})
	}
}

// BenchmarkTable2TSPSuccess regenerates Table 2's success percentages.
func BenchmarkTable2TSPSuccess(b *testing.B) {
	cfg := tsp.Config{Cities: 10, Seed: 102}
	for _, slaves := range []int{2, 8} {
		b.Run("slaves-"+itoa(slaves), func(b *testing.B) {
			var res apps.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = tsp.Run(apps.ORPC, slaves, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.SuccessPercent(), "oam-success-%")
			b.ReportMetric(float64(res.OAMs), "oams")
		})
	}
}

// BenchmarkFig3SOR regenerates Figure 3 at reduced scale.
func BenchmarkFig3SOR(b *testing.B) {
	cfg := sor.Config{Rows: 66, Cols: 16, Iters: 30, Eps: 1e-9, Seed: 11}
	seqr := sor.SolveSeq(cfg)
	for _, sys := range apps.Systems {
		b.Run(sys.String(), func(b *testing.B) {
			var res apps.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sor.Run(sys, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Answer != seqr.Checksum {
					b.Fatal("wrong grid")
				}
			}
			b.ReportMetric(res.Elapsed.Seconds()*1000, "vms-runtime")
			b.ReportMetric(res.Speedup(seqr.Time), "speedup")
		})
	}
}

// BenchmarkFig4Water regenerates Figure 4 at reduced scale: the five
// variants at 8 nodes.
func BenchmarkFig4Water(b *testing.B) {
	cfg := water.Config{Mols: 64, Iters: 5, Seed: 103}
	seq := water.SolveSeq(water.Config{Mols: cfg.Mols, Iters: 1, Seed: cfg.Seed})
	for _, v := range exp.WaterVariants {
		b.Run(v.Name, func(b *testing.B) {
			var res apps.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = water.Run(v.Sys, 8, v.Barrier, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			perIter := res.Elapsed.Seconds() / float64(cfg.Iters)
			b.ReportMetric(perIter*1000, "vms-per-iter")
			b.ReportMetric(seq.TimePerIter.Seconds()/perIter, "speedup")
		})
	}
}

// BenchmarkTable3WaterSuccess regenerates Table 3's success percentages.
func BenchmarkTable3WaterSuccess(b *testing.B) {
	cfg := water.Config{Mols: 64, Iters: 5, Seed: 103}
	var res apps.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = water.Run(apps.ORPC, 8, false, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SuccessPercent(), "oam-success-%")
	b.ReportMetric(float64(res.OAMs), "oams")
}

// BenchmarkPromotionAblation compares the three abort strategies.
func BenchmarkPromotionAblation(b *testing.B) {
	var rows []exp.AblationRow
	for i := 0; i < b.N; i++ {
		rows = exp.Ablation()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Elapsed)/1e6, "vms-"+r.Strategy)
	}
}

// BenchmarkSchedPolicy compares front- vs back-of-queue scheduling.
func BenchmarkSchedPolicy(b *testing.B) {
	var rows []exp.SchedPolicyRow
	for i := 0; i < b.N; i++ {
		rows = exp.SchedPolicy()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Elapsed)/1e6, "vms-"+r.Policy)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
