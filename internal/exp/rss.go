//go:build linux || darwin

package exp

import (
	"runtime"
	"syscall"
)

// peakRSSBytes returns the process's peak resident set size in bytes, or
// 0 when the platform cannot report it. The kernel reports a high-water
// mark, so successive calls are monotone; per-pass readings in the bench
// report show which pass pushed the peak.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// ru_maxrss is kilobytes on Linux, bytes on Darwin.
	if runtime.GOOS == "darwin" {
		return int64(ru.Maxrss)
	}
	return int64(ru.Maxrss) * 1024
}
