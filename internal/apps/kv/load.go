package kv

import (
	"math"

	"repro/internal/sim"
)

// LoadMode shapes the open-loop arrival process.
type LoadMode uint8

const (
	// Steady: Poisson arrivals at a fixed rate.
	Steady LoadMode = iota
	// Bursty: each client alternates 1 ms on / 1 ms off square-wave
	// phases (phase offset drawn per client), so instantaneous load
	// doubles during the on-phase while the mean stays put.
	Bursty
	// Diurnal: every client follows one global triangle wave with a 4 ms
	// period, sweeping the whole fleet between half and three-halves of
	// the mean rate — a compressed day/night cycle.
	Diurnal
)

func (m LoadMode) String() string {
	switch m {
	case Steady:
		return "steady"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return "LoadMode(?)"
	}
}

// rng is one client's private splitmix64 stream (the same idiom as the
// fault RNG and sched's job table). Each client seeds from (run seed,
// client id), so the arrival and op sequences are independent of shard
// count, scheduling order, and every other client.
type rng struct{ s uint64 }

func newRNG(seed int64, client int) *rng {
	return &rng{s: uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(client)<<32 ^ 0xd1b54a32d192ed03}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a float in (0, 1]: never zero, so -log(u) is finite.
func (r *rng) uniform() float64 {
	return float64(r.next()>>11+1) / float64(1<<53)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

const (
	burstPeriod   = sim.Duration(2000 * sim.Microsecond) // 1 ms on, 1 ms off
	diurnalPeriod = sim.Duration(4000 * sim.Microsecond)
)

// rateMult is the time-varying arrival-rate multiplier for one client.
// phase is the client's fixed offset into the burst cycle. The diurnal
// wave is a piecewise-linear triangle (no math.Sin: the triangle is
// exactly reproducible and libm-independent).
func rateMult(mode LoadMode, now sim.Time, phase sim.Duration) float64 {
	switch mode {
	case Bursty:
		in := (sim.Duration(now) + phase) % burstPeriod
		if in < burstPeriod/2 {
			return 2.0 // on-phase: double rate, mean preserved by the off-phase
		}
		return 0.1 // off-phase: a trickle, not silence, so the identity still exercises
	case Diurnal:
		in := sim.Duration(now) % diurnalPeriod
		half := diurnalPeriod / 2
		frac := float64(in) / float64(half)
		if in >= half {
			frac = 2 - frac
		}
		// Sweep 0.5x .. 1.5x and back across the period.
		return 0.5 + frac
	default:
		return 1.0
	}
}

// nextArrival draws one open-loop interarrival gap: exponential with
// mean IAT / (rateX * mult), clamped to [1 us, 50 * IAT] so a pathological
// draw can neither stall virtual time nor park a client past the run.
func nextArrival(r *rng, mean sim.Duration, rateX float64, mode LoadMode, now sim.Time, phase sim.Duration) sim.Duration {
	mult := rateMult(mode, now, phase) * rateX
	if mult <= 0 {
		mult = 1e-3
	}
	gap := sim.Duration(-math.Log(r.uniform()) * float64(mean) / mult)
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	if max := 50 * mean; gap > max {
		gap = max
	}
	return gap
}

// zipfTable is a precomputed CDF over [0, keys) for the Zipf(s)
// distribution; s == 0 degenerates to uniform (nil table). Shared
// read-only across all clients.
type zipfTable []float64

func newZipfTable(keys int, s float64) zipfTable {
	if s <= 0 || keys <= 1 {
		return nil
	}
	cdf := make(zipfTable, keys)
	sum := 0.0
	for k := 0; k < keys; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return cdf
}

// pick draws one key: binary search of the CDF, or uniform when nil.
func (z zipfTable) pick(r *rng, keys int) uint32 {
	if z == nil {
		return uint32(r.intn(keys))
	}
	u := r.uniform()
	lo, hi := 0, len(z)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}
