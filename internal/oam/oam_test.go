package oam

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// rig builds a 2-node universe whose node 1 dispatches incoming "call"
// messages through a Dispatcher running body.
type oamRig struct {
	eng  *sim.Engine
	u    *am.Universe
	d    *Dispatcher
	call am.HandlerID
}

func newRig(t *testing.T, opts Options, body func(e *Env, pkt *cm5.Packet)) *oamRig {
	t.Helper()
	eng := sim.New(31)
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	r := &oamRig{eng: eng, u: u, d: NewDispatcher(opts)}
	r.call = u.Register("call", func(c threads.Ctx, pkt *cm5.Packet) {
		r.d.Run(c, u.Endpoint(c.Node().ID()), "call", func(e *Env) { body(e, pkt) })
	})
	t.Cleanup(eng.Shutdown)
	return r
}

func TestSuccessRunsInHandler(t *testing.T) {
	for _, strat := range []Strategy{Rerun, Continuation, Nack} {
		counter := 0
		wasOptimistic := false
		r := newRig(t, Options{Strategy: strat}, func(e *Env, pkt *cm5.Packet) {
			wasOptimistic = e.Optimistic()
			e.Compute(sim.Micros(1))
			counter++
		})
		_, err := r.u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				r.u.Endpoint(0).Send(c, 1, r.call, [4]uint64{}, nil)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if counter != 1 || !wasOptimistic {
			t.Fatalf("%v: counter=%d optimistic=%v", strat, counter, wasOptimistic)
		}
		st := r.d.Stats()
		if st.Total != 1 || st.Succeeded != 1 || st.Promoted != 0 {
			t.Fatalf("%v: stats %+v", strat, st)
		}
	}
}

// TestLockBusyPromotes: the server main holds the lock while polling, so
// the optimistic attempt must abort and a thread must complete the call.
func lockBusyScenario(t *testing.T, strat Strategy) (*oamRig, *Stats, *int) {
	t.Helper()
	done := new(int)
	var mu *threads.Mutex
	r := newRig(t, Options{Strategy: strat}, func(e *Env, pkt *cm5.Packet) {
		e.Lock(mu)
		e.Compute(sim.Micros(2))
		*done++
		e.Unlock(mu)
	})
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			return
		}
		// Node 1: hold the lock, poll the message in (the optimistic
		// attempt fails), then release and let the promoted thread run.
		mu.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		if *done != 0 {
			t.Error("call completed while lock was held")
		}
		mu.Unlock(c)
		for *done == 0 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.d.Stats()
	return r, &st, done
}

func TestLockBusyRerun(t *testing.T) {
	_, st, done := lockBusyScenario(t, Rerun)
	if *done != 1 {
		t.Fatalf("done = %d, want 1", *done)
	}
	if st.Total != 1 || st.Succeeded != 0 || st.Promoted != 1 || st.ByReason[LockBusy] != 1 {
		t.Fatalf("stats %+v", *st)
	}
}

func TestLockBusyContinuation(t *testing.T) {
	r, st, done := lockBusyScenario(t, Continuation)
	if *done != 1 {
		t.Fatalf("done = %d, want 1", *done)
	}
	if st.Total != 1 || st.Succeeded != 0 || st.Promoted != 1 || st.ByReason[LockBusy] != 1 {
		t.Fatalf("stats %+v", *st)
	}
	// Continuation must have adopted, not created-and-rerun.
	if ts := r.u.Scheduler(1).Stats(); ts.Adopted != 1 {
		t.Fatalf("adopted = %d, want 1 (lazy promotion)", ts.Adopted)
	}
}

// TestContinuationDoesNotReexecute: side effects of the prefix before the
// blocking point must happen exactly once under Continuation.
func TestContinuationDoesNotReexecute(t *testing.T) {
	prefixRuns := 0
	suffixRuns := 0
	var mu *threads.Mutex
	r := newRig(t, Options{Strategy: Continuation}, func(e *Env, pkt *cm5.Packet) {
		prefixRuns++ // before the blocking point
		e.Compute(sim.Micros(1))
		e.Lock(mu)
		suffixRuns++
		e.Unlock(mu)
	})
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			return
		}
		mu.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
		for suffixRuns == 0 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if prefixRuns != 1 || suffixRuns != 1 {
		t.Fatalf("prefix=%d suffix=%d, want 1/1 (no re-execution)", prefixRuns, suffixRuns)
	}
}

// TestRerunReexecutesPrefix: under Rerun the prefix runs twice (once
// optimistically, once in the thread) — the paper's prototype semantics.
func TestRerunReexecutesPrefix(t *testing.T) {
	prefixRuns := 0
	suffixRuns := 0
	var mu *threads.Mutex
	r := newRig(t, Options{Strategy: Rerun}, func(e *Env, pkt *cm5.Packet) {
		prefixRuns++
		e.Lock(mu)
		suffixRuns++
		e.Unlock(mu)
	})
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			return
		}
		mu.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
		for suffixRuns == 0 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if prefixRuns != 2 || suffixRuns != 1 {
		t.Fatalf("prefix=%d suffix=%d, want 2/1 (rerun)", prefixRuns, suffixRuns)
	}
}

// TestAbortReleasesLocks: an attempt that acquires lock A and then fails
// on lock B must release A before promoting.
func TestAbortReleasesLocks(t *testing.T) {
	var muA, muB *threads.Mutex
	completed := false
	r := newRig(t, Options{Strategy: Rerun}, func(e *Env, pkt *cm5.Packet) {
		e.Lock(muA)
		e.Lock(muB)
		completed = true
		e.Unlock(muB)
		e.Unlock(muA)
	})
	s := r.u.Scheduler(1)
	muA = threads.NewMutex(s)
	muB = threads.NewMutex(s)
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			return
		}
		muB.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		// The aborted attempt must have released A on its way out.
		if muA.Held() {
			t.Error("lock A still held after abort")
		}
		muB.Unlock(c)
		for !completed {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("call never completed")
	}
	if muA.Held() || muB.Held() {
		t.Fatal("locks leaked")
	}
}

// TestCondFalseAwait: Await aborts on a false predicate and the promoted
// thread waits on the condition variable until it holds.
func TestCondFalseAwait(t *testing.T) {
	for _, strat := range []Strategy{Rerun, Continuation} {
		var mu *threads.Mutex
		var cv *threads.Cond
		dataReady := false
		consumed := false
		r := newRig(t, Options{Strategy: strat}, func(e *Env, pkt *cm5.Packet) {
			e.Lock(mu)
			e.Await(cv, func() bool { return dataReady })
			consumed = true
			e.Unlock(mu)
		})
		s := r.u.Scheduler(1)
		mu = threads.NewMutex(s)
		cv = threads.NewCond(mu)
		_, err := r.u.SPMD(func(c threads.Ctx, node int) {
			ep := r.u.Endpoint(node)
			if node == 0 {
				ep.Send(c, 1, r.call, [4]uint64{}, nil)
				return
			}
			for r.d.Stats().Total == 0 {
				ep.Poll(c)
			}
			if consumed {
				t.Errorf("%v: consumed before data ready", strat)
			}
			c.P.Charge(sim.Micros(100))
			mu.Lock(c)
			dataReady = true
			cv.Signal(c)
			mu.Unlock(c)
			for !consumed {
				c.S.Yield(c)
				ep.Poll(c)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !consumed {
			t.Fatalf("%v: never consumed", strat)
		}
		st := r.d.Stats()
		if st.ByReason[CondFalse] != 1 {
			t.Fatalf("%v: stats %+v", strat, st)
		}
	}
}

// TestTooLongBudget: with a handler budget, a long computation aborts and
// finishes as a thread.
func TestTooLongBudget(t *testing.T) {
	for _, strat := range []Strategy{Rerun, Continuation} {
		finished := false
		chunks := 0
		r := newRig(t, Options{Strategy: strat, HandlerBudget: sim.Micros(50)}, func(e *Env, pkt *cm5.Packet) {
			for i := 0; i < 10; i++ {
				e.Compute(sim.Micros(20))
				chunks++
			}
			finished = true
		})
		_, err := r.u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				r.u.Endpoint(0).Send(c, 1, r.call, [4]uint64{}, nil)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !finished {
			t.Fatalf("%v: long call never finished", strat)
		}
		st := r.d.Stats()
		if st.ByReason[TooLong] != 1 || st.Promoted != 1 {
			t.Fatalf("%v: stats %+v", strat, st)
		}
		wantChunks := 12 // rerun: 2 completed optimistic chunks + 10 in thread
		if strat == Continuation {
			wantChunks = 10 // no re-execution
		}
		if chunks != wantChunks {
			t.Fatalf("%v: chunks = %d, want %d", strat, chunks, wantChunks)
		}
	}
}

// TestNackOutcome: under Nack the dispatcher does not create a thread and
// reports that a negative acknowledgment is needed.
func TestNackOutcome(t *testing.T) {
	var mu *threads.Mutex
	var outcome Outcome
	var reason Reason
	eng := sim.New(31)
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	defer eng.Shutdown()
	d := NewDispatcher(Options{Strategy: Nack})
	mu = threads.NewMutex(u.Scheduler(1))
	call := u.Register("call", func(c threads.Ctx, pkt *cm5.Packet) {
		outcome, reason = d.Run(c, u.Endpoint(1), "call", func(e *Env) {
			e.Lock(mu)
			e.Unlock(mu)
		})
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, call, [4]uint64{}, nil)
			return
		}
		mu.Lock(c)
		for d.Stats().Total == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != NackNeeded || reason != LockBusy {
		t.Fatalf("outcome=%v reason=%v", outcome, reason)
	}
	st := d.Stats()
	if st.Nacked != 1 || st.Promoted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestBufferedSendsAbortCleanly: messages sent before an abort must not
// appear in the network; after the rerun they appear exactly once.
func TestBufferedSendsAbortCleanly(t *testing.T) {
	var mu *threads.Mutex
	notified := 0
	var notify am.HandlerID
	r := newRig(t, Options{Strategy: Rerun}, func(e *Env, pkt *cm5.Packet) {
		e.Send(int(pkt.W0), notify, [4]uint64{}, nil) // before validation!
		e.Lock(mu)
		e.Unlock(mu)
	})
	notify = r.u.Register("notify", func(c threads.Ctx, pkt *cm5.Packet) { notified++ })
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{0}, nil)
			for notified == 0 {
				ep.Poll(c)
			}
			// Allow any (erroneous) duplicate to arrive.
			c.P.Charge(sim.Micros(200))
			ep.PollAll(c)
			return
		}
		mu.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if notified != 1 {
		t.Fatalf("notified = %d, want exactly 1 (no duplicated sends)", notified)
	}
}

// TestStrictNetAbort: with a full destination queue and strict mode, the
// send aborts with NetworkFull; the promoted thread then drains.
func TestStrictNetAbort(t *testing.T) {
	eng := sim.New(31)
	cost := cm5.DefaultCostModel()
	cost.NICQueueCap = 1
	u := am.NewUniverse(eng, 3, cost)
	defer eng.Shutdown()
	d := NewDispatcher(Options{Strategy: Rerun, StrictNetAbort: true})
	sunk := 0
	sink := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { sunk++ })
	fwd := u.Register("fwd", func(c threads.Ctx, pkt *cm5.Packet) {
		d.Run(c, u.Endpoint(c.Node().ID()), "fwd", func(e *Env) {
			e.Send(2, sink, [4]uint64{}, nil)
		})
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		switch node {
		case 0:
			// Fill node 2's queue, then make node 1 forward to node 2.
			ep.Send(c, 2, sink, [4]uint64{}, nil)
			ep.Send(c, 1, fwd, [4]uint64{}, nil)
		case 2:
			// Stay busy so the queue remains full for a while.
			c.P.Charge(sim.Micros(300))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sunk != 2 {
		t.Fatalf("sunk = %d, want 2", sunk)
	}
	st := d.Stats()
	if st.ByReason[NetworkFull] == 0 {
		t.Fatalf("expected a NetworkFull abort; stats %+v", st)
	}
}

// TestAbortCost: the measured cost of an abort (beyond the procedure
// itself) should be near the 7 us thread-creation cost when the promoted
// thread starts via the live stack (paper section 4.1.1).
func TestAbortCost(t *testing.T) {
	var mu *threads.Mutex
	var runs int
	var callDone sim.Time
	r := newRig(t, Options{Strategy: Rerun}, func(e *Env, pkt *cm5.Packet) {
		e.Lock(mu)
		runs++
		callDone = e.Ctx().P.Now()
		e.Unlock(mu)
	})
	mu = threads.NewMutex(r.u.Scheduler(1))
	var holdEnd sim.Time
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			return
		}
		mu.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
		holdEnd = c.P.Now()
		for runs == 0 {
			c.S.Yield(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// From lock release to the promoted thread completing the call:
	// yield check + full context switch (52, the create's 7 was charged
	// at abort time) + lock ops. Must be at least the switch and well
	// under the 60 us create+switch plus slop.
	d := callDone.Sub(holdEnd)
	if d < sim.Micros(52) || d > sim.Micros(80) {
		t.Fatalf("post-abort completion latency = %v, want ~52-80us", d)
	}
}

func TestStatsSuccessPercent(t *testing.T) {
	st := Stats{Total: 1000, Succeeded: 995}
	if p := st.SuccessPercent(); p != 99.5 {
		t.Fatalf("SuccessPercent = %v", p)
	}
	empty := Stats{}
	if p := empty.SuccessPercent(); p != 100 {
		t.Fatalf("empty SuccessPercent = %v", p)
	}
}

func TestReasonStrings(t *testing.T) {
	if LockBusy.String() != "lock-busy" || CondFalse.String() != "cond-false" ||
		NetworkFull.String() != "network-full" || TooLong.String() != "too-long" {
		t.Fatal("reason strings wrong")
	}
	if Rerun.String() != "rerun" || Continuation.String() != "continuation" || Nack.String() != "nack" {
		t.Fatal("strategy strings wrong")
	}
}
