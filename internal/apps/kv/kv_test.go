package kv_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/kv"
	"repro/internal/cm5"
	"repro/internal/sim"
)

func smallCfg(sys apps.System) kv.Config {
	return kv.Config{
		System:   sys,
		Seed:     7,
		Clients:  16,
		Duration: sim.Micros(5000),
	}
}

// TestRunAllSystems: the same workload completes under all three
// communication systems with the invariants intact and real goodput.
func TestRunAllSystems(t *testing.T) {
	for _, sys := range apps.Systems {
		res, st, err := kv.Run(smallCfg(sys))
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if err := kv.CheckInvariants(&st); err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if st.Arrivals == 0 || st.OK == 0 {
			t.Fatalf("%v: no traffic: %d arrivals, %d ok", sys, st.Arrivals, st.OK)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: elapsed %v", sys, res.Elapsed)
		}
		if sys == apps.AM && st.Promoted != 0 {
			t.Fatalf("AM promoted %d dispatches; its handlers must have no abort points", st.Promoted)
		}
		var grants uint64
		for _, s := range st.PerServer {
			grants += s.Grants
		}
		if grants == 0 {
			t.Fatalf("%v: no lock traffic exercised", sys)
		}
	}
}

// TestDedupUnderFaults: packet loss forces idempotent retries whose
// first attempt already executed; the server dedup cache must absorb
// the re-executions so at-most-once application (Applied == VerSum)
// survives. The run is long and lossy enough that retries demonstrably
// happened.
func TestDedupUnderFaults(t *testing.T) {
	cfg := smallCfg(apps.ORPC)
	cfg.Duration = sim.Micros(10000)
	// Loss heavy enough, and a deadline tight enough, that the reliable
	// transport cannot always recover a reply before the client retries.
	cfg.Fault = &cm5.FaultPlan{Seed: 3, DropProb: 0.25}
	cfg.CallTimeout = sim.Micros(400)
	_, st, err := kv.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.CheckInvariants(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fault.Lost() == 0 {
		t.Fatal("fault plan injected no losses")
	}
	if st.Timeouts == 0 {
		t.Fatal("no call timeouts: the dedup path was never stressed")
	}
	var hits uint64
	for _, s := range st.PerServer {
		hits += s.DedupHits
	}
	if hits == 0 {
		t.Fatal("no dedup hits: no retry re-executed on the server")
	}
}

// TestShardedEquivalence is the acceptance gate: the full results —
// store answer, per-server lease records, fault trace, and every client
// ledger — are bit-identical at shard counts 1, 2, and 4, under both
// engine modes, on a faulty network with skewed bursty load.
func TestShardedEquivalence(t *testing.T) {
	base := kv.Config{
		System:   apps.ORPC,
		Seed:     11,
		Clients:  16,
		Duration: sim.Micros(8000),
		Mode:     kv.Bursty,
		ZipfS:    0.9,
		Fault:    &cm5.FaultPlan{Seed: 5, DropProb: 0.02, DupProb: 0.01},
	}
	type fingerprint struct {
		answer, rec, fault uint64
		st                 kv.Stats
	}
	var want *fingerprint
	for _, shards := range []int{1, 2, 4} {
		for _, optimistic := range []bool{false, true} {
			cfg := base
			cfg.Shards, cfg.Optimistic = shards, optimistic
			res, st, err := kv.Run(cfg)
			if err != nil {
				t.Fatalf("shards=%d optimistic=%v: %v", shards, optimistic, err)
			}
			if err := kv.CheckInvariants(&st); err != nil {
				t.Fatalf("shards=%d optimistic=%v: %v", shards, optimistic, err)
			}
			got := &fingerprint{res.Answer, st.RecordHash, st.FaultHash, st}
			if want == nil {
				want = got
				continue
			}
			if got.answer != want.answer || got.rec != want.rec || got.fault != want.fault {
				t.Fatalf("shards=%d optimistic=%v diverged: answer %016x/%016x record %016x/%016x fault %016x/%016x",
					shards, optimistic, got.answer, want.answer, got.rec, want.rec, got.fault, want.fault)
			}
			for i := range want.st.PerClient {
				if got.st.PerClient[i] != want.st.PerClient[i] {
					t.Fatalf("shards=%d optimistic=%v: client %d ledger diverged: %+v vs %+v",
						shards, optimistic, i, got.st.PerClient[i], want.st.PerClient[i])
				}
			}
			for i := range want.st.PerServer {
				if got.st.PerServer[i] != want.st.PerServer[i] {
					t.Fatalf("shards=%d optimistic=%v: server %d ledger diverged: %+v vs %+v",
						shards, optimistic, i, got.st.PerServer[i], want.st.PerServer[i])
				}
			}
		}
	}
}

// TestLeaseLifecycle: with a hold longer than the TTL, leases expire on
// the server and the late unlocks fail — and both sides agree on how
// often.
func TestLeaseLifecycle(t *testing.T) {
	cfg := smallCfg(apps.ORPC)
	cfg.Duration = sim.Micros(10000)
	cfg.Keys = 4 // force lock collisions
	cfg.LockTTL = sim.Micros(300)
	cfg.LockHold = sim.Micros(1000) // dwell past the TTL: every lease expires
	_, st, err := kv.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.CheckInvariants(&st); err != nil {
		t.Fatal(err)
	}
	var grants, releases, expiries uint64
	for _, s := range st.PerServer {
		grants += s.Grants
		releases += s.Releases
		expiries += s.Expiries
	}
	if grants == 0 {
		t.Fatal("no leases granted")
	}
	if expiries == 0 {
		t.Fatal("no lease expired despite a hold past the TTL")
	}
	var unlockFails uint64
	for _, c := range st.PerClient {
		unlockFails += c.UnlockFails
	}
	if unlockFails == 0 {
		t.Fatal("no unlock failed despite server-side expiries")
	}
}
