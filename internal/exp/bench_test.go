package exp

import (
	"testing"
)

// TestKernelStormDisabledZeroAllocs re-states the kernel allocation
// budget from the bench side, now that every layer carries probe hooks:
// with no collector attached the probes are nil, the hot path never
// branches into obs, and the steady-state window must not allocate.
func TestKernelStormDisabledZeroAllocs(t *testing.T) {
	kb := KernelStorm(2_000, 10_000)
	if kb.AllocsPerPacket >= 0.01 {
		t.Fatalf("uninstrumented hot path allocates %.4f objects/packet, want 0", kb.AllocsPerPacket)
	}
}

// TestKernelStormObserved checks the instrumentation-overhead pass: the
// live metrics sink sees every packet and handler run (so the overhead
// number measures real work, not a detached collector), and the observed
// counters agree with the storm's own accounting.
func TestKernelStormObserved(t *testing.T) {
	warmup, packets := 1_000, 5_000
	kb, c := KernelStormObserved(warmup, packets)
	total := uint64(warmup + packets)
	if kb.Packets != uint64(packets) {
		t.Fatalf("packets = %d, want %d", kb.Packets, packets)
	}
	reg := c.Registry()
	if reg == nil {
		t.Fatal("observed storm has no metrics registry")
	}
	for _, name := range []string{"cm5/packets_sent", "cm5/packets_delivered", "am/handlers_run"} {
		if got := reg.CounterTotal(name); got != total {
			t.Errorf("%s = %d, want %d", name, got, total)
		}
	}
	t.Logf("observed storm: %.0f ns/event, %.3f allocs/packet", kb.NsPerEvent, kb.AllocsPerPacket)
}
