package oam

// Compatibility matrices for multiactive dispatch. The paper's dispatcher
// is single-active: one optimistic handler at a time per node. Multiactive
// objects (Henrio & Rochas) generalize this — requests statically
// annotated as compatible (read/read, disjoint-key groups) may execute
// concurrently on one node. The stub compiler (internal/stubc) compiles
// `compatible A B [when disjoint(key)]` clauses on a .rpc service into a
// CompatTable plus per-method key extractors; the dispatcher consults the
// table at admission time.

// compatMode says how two method classes may overlap.
const (
	// compatNever: the pair must serialize (the default).
	compatNever uint8 = iota
	// compatAlways: the pair may always run concurrently (e.g. read/read).
	compatAlways
	// compatDisjoint: the pair may run concurrently iff both executions
	// carry a key and the keys differ (disjoint-data clause).
	compatDisjoint
)

// CompatTable is a symmetric per-service compatibility matrix over method
// classes. Class indices are assigned by the stub compiler (or by hand);
// an execution with no class (-1) is incompatible with everything,
// preserving single-active semantics for unannotated methods.
type CompatTable struct {
	n     int
	modes []uint8 // n*n, row-major
}

// NewCompatTable returns an all-incompatible matrix over n method classes.
func NewCompatTable(n int) *CompatTable {
	return &CompatTable{n: n, modes: make([]uint8, n*n)}
}

// Methods returns the number of method classes in the table.
func (t *CompatTable) Methods() int { return t.n }

// Allow marks classes a and b unconditionally compatible (both
// directions).
func (t *CompatTable) Allow(a, b int) {
	t.modes[a*t.n+b] = compatAlways
	t.modes[b*t.n+a] = compatAlways
}

// AllowDisjoint marks classes a and b compatible when their keys differ
// (both directions). Executions lacking a key never match.
func (t *CompatTable) AllowDisjoint(a, b int) {
	t.modes[a*t.n+b] = compatDisjoint
	t.modes[b*t.n+a] = compatDisjoint
}

// mode returns the compatibility mode for the (a, b) class pair.
func (t *CompatTable) mode(a, b int) uint8 {
	return t.modes[a*t.n+b]
}

// SetCompat installs the compatibility matrix consulted by multiactive
// admission. Call it before the simulation starts.
func (d *Dispatcher) SetCompat(t *CompatTable) { d.opts.Compat = t }

// compatibleEntries reports whether two admitted executions may overlap
// under table t. A nil table or an unclassified execution serializes.
func compatibleEntries(t *CompatTable, a, b *runEntry) bool {
	if t == nil || a.class < 0 || b.class < 0 {
		return false
	}
	switch t.mode(a.class, b.class) {
	case compatAlways:
		return true
	case compatDisjoint:
		return a.hasKey && b.hasKey && a.key != b.key
	}
	return false
}
