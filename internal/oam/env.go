package oam

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Reason says why an optimistic execution aborted.
type Reason uint8

const (
	// LockBusy: the procedure needed a lock that was held.
	LockBusy Reason = iota
	// CondFalse: the procedure waited on a condition that was false.
	CondFalse
	// NetworkFull: the procedure needed to send while the network was
	// busy (strict mode only; the CM-5 default drains instead).
	NetworkFull
	// TooLong: the procedure exceeded the handler time budget.
	TooLong
	numReasons
)

func (r Reason) String() string {
	switch r {
	case LockBusy:
		return "lock-busy"
	case CondFalse:
		return "cond-false"
	case NetworkFull:
		return "network-full"
	case TooLong:
		return "too-long"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// abortSignal unwinds an optimistic execution; recovered by Dispatcher.Run.
type abortSignal struct{ reason Reason }

// bufferedSend is an outbound message deferred until commit.
type bufferedSend struct {
	dst     int
	h       am.HandlerID
	w       [4]uint64
	payload []byte
	bulk    bool
}

// Env is the execution capability of a remote procedure body. The same
// body runs optimistically inside a handler or pessimistically as a
// thread; Env routes each operation to the right behaviour for the mode.
type Env struct {
	C  threads.Ctx
	ep *am.Endpoint
	d  *Dispatcher

	optimistic bool
	name       string
	spent      sim.Duration
	held       []*threads.Mutex
	outbox     []bufferedSend

	// onPromote, set by the Continuation dispatch path, reports the first
	// (and only) lazy promotion back to the dispatcher.
	onPromote func(Reason)
}

// continuation reports whether an abort condition should promote in place
// rather than unwind. Only executions dispatched through the lend
// protocol (runLent sets onPromote) may promote in place; multiactive
// core executions always unwind — the lend/adopt dance presumes the
// single-CPU discipline.
func (e *Env) continuation() bool {
	return e.optimistic && e.onPromote != nil
}

// promote adopts the running execution as a thread: lazy thread creation.
// Locks acquired optimistically are re-labeled as held by the new thread.
// After promote the env is in thread mode; the caller must detach (via
// the scheduler) before continuing.
func (e *Env) promote(r Reason) *threads.Thread {
	t := e.C.S.Adopt("oam/"+e.name, e.C.P)
	for _, m := range e.held {
		m.AdoptOwner(t)
	}
	e.C.T = t
	e.optimistic = false
	if e.onPromote != nil {
		e.onPromote(r)
	}
	return t
}

// flushOutbox sends messages buffered during the optimistic prefix. It
// runs right after a promotion detaches, so that messages the procedure
// sent before promoting leave the node before any it sends after —
// preserving per-destination ordering.
func (e *Env) flushOutbox() {
	out := e.outbox
	e.outbox = nil
	for i := range out {
		b := &out[i]
		if b.bulk {
			e.ep.SendBulk(e.C, b.dst, b.h, b.w, b.payload)
		} else {
			e.ep.Send(e.C, b.dst, b.h, b.w, b.payload)
		}
	}
}

// Optimistic reports whether the body is executing inside a handler. The
// generated stubs use this only for statistics; behaviour differences all
// live behind the Env operations.
func (e *Env) Optimistic() bool { return e.optimistic }

// Node returns the node this procedure executes on.
func (e *Env) Node() int { return e.ep.Node().ID() }

// Ctx returns the current execution context.
func (e *Env) Ctx() threads.Ctx { return e.C }

func (e *Env) abort(r Reason) {
	panic(abortSignal{reason: r})
}

// Lock acquires m. Optimistically it is a try-lock: failure aborts the
// execution (the paper's compiled lock check). As a thread it blocks.
func (e *Env) Lock(m *threads.Mutex) {
	if e.optimistic {
		if m.TryLock(e.C) {
			e.held = append(e.held, m)
			return
		}
		if !e.continuation() {
			e.abort(LockBusy)
		}
		// Lazy promotion: become a thread, join the lock's waiter list,
		// and give the CPU back to the poller. We resume owning the lock.
		t := e.promote(LockBusy)
		m.EnqueueWaiter(t)
		e.C.S.DetachBlocked(e.C)
		e.held = append(e.held, m)
		e.flushOutbox()
		return
	}
	m.Lock(e.C)
	e.held = append(e.held, m)
}

// Unlock releases m.
func (e *Env) Unlock(m *threads.Mutex) {
	for i := len(e.held) - 1; i >= 0; i-- {
		if e.held[i] == m {
			e.held = append(e.held[:i], e.held[i+1:]...)
			m.Unlock(e.C)
			return
		}
	}
	panic("oam: Unlock of mutex not held by this procedure")
}

// Await waits until pred holds. The caller must hold cv's mutex, and as
// usual the predicate is re-tested after every wakeup. Optimistically a
// false predicate aborts (the paper's compiled condition check); as a
// thread it waits on cv.
func (e *Env) Await(cv *threads.Cond, pred func() bool) {
	if e.optimistic {
		if pred() {
			return
		}
		if !e.continuation() {
			e.abort(CondFalse)
		}
		// Lazy promotion: become a thread and wait on the condition
		// variable exactly as Cond.Wait would — enqueue, release the
		// mutex, suspend, reacquire — then re-test in a loop.
		t := e.promote(CondFalse)
		cv.EnqueueWaiter(t)
		e.Unlock(cv.L)
		e.C.S.DetachBlocked(e.C)
		e.flushOutbox()
		cv.L.Lock(e.C)
		e.held = append(e.held, cv.L)
	}
	for !pred() {
		cv.Wait(e.C)
	}
}

// Service is a cooperative scheduling point. In thread mode it polls the
// node's network and yields to other runnable threads, so a long-running
// promoted procedure shares the processor. In optimistic mode it is a
// no-op: a handler is not schedulable — which is exactly why long
// executions must abort (the TooLong check in Compute).
func (e *Env) Service() {
	if e.optimistic {
		return
	}
	e.ep.PollAll(e.C)
	if e.C.T != nil {
		e.C.S.Yield(e.C)
	}
}

// Signal forwards to cv.Signal; usable in both modes (it never blocks).
func (e *Env) Signal(cv *threads.Cond) { cv.Signal(e.C) }

// Broadcast forwards to cv.Broadcast.
func (e *Env) Broadcast(cv *threads.Cond) { cv.Broadcast(e.C) }

// Compute charges d of CPU time to the procedure. In optimistic mode with
// a handler budget configured, exceeding the budget aborts: the "runs too
// long" check that the paper lists but leaves to future work.
func (e *Env) Compute(d sim.Duration) {
	e.C.P.Charge(d)
	if !e.optimistic {
		return
	}
	e.spent += d
	b := e.d.opts.HandlerBudget
	if e.d.opts.Adaptive && b > 0 {
		b = e.d.budgetFor(e.ep.Node().ID())
	}
	if b > 0 && e.spent > b {
		if !e.continuation() {
			e.abort(TooLong)
		}
		// Lazy promotion: keep the partial computation, requeue as a
		// thread so the node can service other messages first.
		e.promote(TooLong)
		e.C.S.DetachReady(e.C)
		e.flushOutbox()
	}
}

// Send transmits a small Active Message. In optimistic mode the message
// is buffered until the body commits, so aborts leave no trace in the
// network; with StrictNetAbort set, a full network aborts the execution
// instead of draining (the third abort reason of section 2).
func (e *Env) Send(dst int, h am.HandlerID, w [4]uint64, payload []byte) {
	e.send(dst, h, w, payload, false)
}

// SendBulk is Send for the block-transfer path.
func (e *Env) SendBulk(dst int, h am.HandlerID, w [4]uint64, payload []byte) {
	e.send(dst, h, w, payload, true)
}

func (e *Env) send(dst int, h am.HandlerID, w [4]uint64, payload []byte, bulk bool) {
	if e.optimistic {
		if e.d.opts.StrictNetAbort && e.ep.Node().NetworkFull(dst) {
			if !e.continuation() {
				e.abort(NetworkFull)
			}
			// Lazy promotion: requeue as a thread; when we run again the
			// flush and this send drain like any thread's sends.
			e.promote(NetworkFull)
			e.C.S.DetachReady(e.C)
			e.flushOutbox()
			if bulk {
				e.ep.SendBulk(e.C, dst, h, w, payload)
			} else {
				e.ep.Send(e.C, dst, h, w, payload)
			}
			return
		}
		e.outbox = append(e.outbox, bufferedSend{dst: dst, h: h, w: w, payload: payload, bulk: bulk})
		return
	}
	if bulk {
		e.ep.SendBulk(e.C, dst, h, w, payload)
	} else {
		e.ep.Send(e.C, dst, h, w, payload)
	}
}

// commit flushes buffered sends after a successful optimistic execution.
func (e *Env) commit() {
	if len(e.held) != 0 {
		panic(fmt.Sprintf("oam: procedure committed still holding %d locks", len(e.held)))
	}
	for i := range e.outbox {
		b := &e.outbox[i]
		if b.bulk {
			e.ep.SendBulk(e.C, b.dst, b.h, b.w, b.payload)
		} else {
			e.ep.Send(e.C, b.dst, b.h, b.w, b.payload)
		}
	}
	e.outbox = nil
}

// undo releases everything an aborted attempt acquired and discards its
// buffered sends, restoring the pre-attempt state.
func (e *Env) undo() {
	for i := len(e.held) - 1; i >= 0; i-- {
		e.held[i].Unlock(e.C)
	}
	e.held = nil
	e.outbox = nil
}
