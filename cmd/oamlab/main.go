// Command oamlab regenerates every table and figure of the paper's
// evaluation (section 4) on the simulated machine:
//
//	oamlab [-quick] [-maxp N] [-csv] [-par N] [-shards N] [-optimistic] [-cpuprofile F] [-memprofile F] <experiment>...
//
// Experiments: table1, bulk, abortcost, fig1, fig2, table2, fig3, fig4,
// table3, ablation, schedpolicy, budget, buffering, chaos, sched,
// micro (table1+bulk+abortcost), bench (host-performance report),
// all (everything).
//
// sched runs the cluster-scheduler control plane (internal/apps/sched)
// over a fault-mix x lease-timeout x heartbeat-period grid and
// replay-checks every cell's event record against the control plane's
// safety and liveness invariants (placed-exactly-once, monotonic lease
// epochs, no placement on dead agents, all jobs completed).
//
// Observability subcommands (see internal/obs):
//
//	oamlab [-quick] trace <app> [-p N] [-sys am|orpc|trpc] [-o file]
//	oamlab [-quick] metrics <app> [-p N] [-sys am|orpc|trpc] [-top N]
//
// trace records one application run (triangle, tsp, sor, water) and
// writes a Chrome trace-event JSON timeline — load it in Perfetto
// (https://ui.perfetto.dev) — with one process per node and tracks for
// cpu burns, handler runs, optimistic dispatches/aborts, RPC calls,
// packet flights and thread lifetimes. metrics prints the per-node
// counter/gauge/histogram registry and a virtual-time profile of the
// same run. Both are deterministic: the same seed yields byte-identical
// output.
//
// -quick shrinks the problem sizes so the suite runs in seconds; the
// default runs the paper's sizes (the Triangle figure alone simulates
// over a million RPCs per configuration and takes minutes).
//
// -par sets how many experiment cells run concurrently (default: all
// CPUs). Each cell owns a private simulation engine and results merge in
// a fixed order, so the output is byte-identical at any setting; only
// wall-clock time changes.
//
// -shards runs every simulation engine sharded: each run's nodes are
// partitioned across N shards (-1 = one per CPU) that execute in
// parallel over lockstep virtual-time windows. -optimistic switches the
// sharded engines to speculative commit spans: shards run past the
// window edge and a GVT-style resolve commits whole spans, replacing the
// lockstep barrier. Results are bit-identical
// to the sequential kernel at any value of either flag; the harness automatically
// shrinks -par so cells x shards never exceeds GOMAXPROCS. The observed
// trace/metrics subcommands always run sequentially (their probes need
// the single-threaded kernel).
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments, for finding host-side hot spots in the simulation kernel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

// subcommands lists everything the command line accepts, for the
// unknown-name diagnostic.
var subcommands = []string{
	"table1", "bulk", "abortcost", "fig1", "fig2", "table2", "fig3", "fig4",
	"table3", "ablation", "appablation", "schedpolicy", "budget", "buffering",
	"interrupts", "sorsizes", "chaos", "sched", "bench", "micro", "all",
	"trace", "metrics",
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oamlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "reduced problem sizes")
	maxp := fs.Int("maxp", 0, "cap the largest machine size (0 = experiment default)")
	csv := fs.Bool("csv", false, "emit CSV instead of formatted tables")
	svgdir := fs.String("svgdir", "", "also render figures as SVG into this directory")
	par := fs.Int("par", 0, "concurrent experiment cells (0 = all CPUs, 1 = sequential)")
	shards := fs.Int("shards", 1, "engine shards per run (1 = sequential kernel, -1 = one per CPU)")
	optimistic := fs.Bool("optimistic", false, "sharded engines speculate past window edges (commit spans instead of lockstep windows)")
	benchout := fs.String("benchout", "BENCH_kernel.json", "bench: where to write the JSON report")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "oamlab: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "oamlab: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "oamlab: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "oamlab: memprofile: %v\n", err)
			}
		}()
	}

	if *par > 0 {
		exp.Workers = *par
	}
	if *shards != 1 && *shards != 0 {
		exp.Shards = *shards
	}
	exp.Optimistic = *optimistic
	scale := exp.Scale{Quick: *quick, MaxP: *maxp}
	names := fs.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}

	// trace/metrics are observed single-app runs with their own flags;
	// they consume the rest of the command line.
	if names[0] == "trace" || names[0] == "metrics" {
		return runObserve(names[0], names[1:], *quick, stdout, stderr)
	}

	code := 0
	emit := func(t *exp.Table, err error) {
		if code != 0 {
			return
		}
		if err != nil {
			fmt.Fprintf(stderr, "oamlab: %v\n", err)
			code = 1
			return
		}
		if *csv {
			t.CSV(stdout)
			fmt.Fprintln(stdout)
		} else {
			t.Print(stdout)
		}
	}

	svg := func(base, title string, rows []exp.FigRow) {
		if *svgdir == "" || rows == nil || code != 0 {
			return
		}
		if err := exp.WriteFigSVGs(*svgdir, base, title, rows); err != nil {
			fmt.Fprintf(stderr, "oamlab: svg: %v\n", err)
			code = 1
			return
		}
		fmt.Fprintf(stderr, "[%s SVGs written to %s]\n", base, *svgdir)
	}

	run := func(name string) {
		if code != 0 {
			return
		}
		start := time.Now()
		switch name {
		case "table1":
			emit(exp.Table1Table(), nil)
		case "bulk":
			emit(exp.BulkTable(), nil)
		case "abortcost":
			emit(exp.AbortCostTable(), nil)
		case "fig1":
			t, rows, err := exp.Fig1Triangle(scale)
			emit(t, err)
			svg("fig1", "Figure 1: Triangle puzzle", rows)
		case "fig2":
			t, rows, err := exp.Fig2TSP(scale)
			emit(t, err)
			svg("fig2", "Figure 2: TSP", rows)
		case "table2":
			emit(exp.Table2(scale))
		case "fig3":
			t, rows, err := exp.Fig3SOR(scale)
			emit(t, err)
			svg("fig3", "Figure 3: SOR", rows)
		case "fig4":
			t, rows, err := exp.Fig4Water(scale)
			emit(t, err)
			svg("fig4", "Figure 4: Water (per iteration)", rows)
		case "table3":
			emit(exp.Table3(scale))
		case "ablation":
			emit(exp.AblationTable(), nil)
		case "schedpolicy":
			emit(exp.SchedPolicyTable(), nil)
		case "budget":
			emit(exp.BudgetTable(), nil)
		case "buffering":
			emit(exp.BufferingTable(), nil)
		case "appablation":
			emit(exp.AppAblationTable(scale.Quick))
		case "interrupts":
			emit(exp.InterruptsTable(), nil)
		case "sorsizes":
			emit(exp.SORSizesTable(scale.Quick))
		case "bench":
			res, err := exp.Bench(scale)
			if err != nil {
				emit(nil, err)
				return
			}
			emit(res.Table(), nil)
			if res.Warning != "" {
				fmt.Fprintf(stderr, "oamlab: warning: %s\n", res.Warning)
			}
			if code == 0 && *benchout != "" {
				if err := res.WriteJSON(*benchout); err != nil {
					fmt.Fprintf(stderr, "oamlab: bench: %v\n", err)
					code = 1
					return
				}
				fmt.Fprintf(stderr, "[bench report written to %s]\n", *benchout)
			}
		case "chaos":
			emit(exp.ChaosTable(scale))
			emit(exp.ChaosNodeTable(scale))
		case "sched":
			emit(exp.SchedTable(scale))
		default:
			fmt.Fprintf(stderr, "oamlab: unknown experiment %q (subcommands: %s)\n",
				name, strings.Join(subcommands, ", "))
			code = 2
			return
		}
		if code == 0 {
			fmt.Fprintf(stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	for _, name := range names {
		switch name {
		case "trace", "metrics":
			fmt.Fprintf(stderr, "oamlab: %s must be the first argument\n", name)
			return 2
		case "all":
			for _, n := range []string{"table1", "bulk", "abortcost", "fig1", "fig2",
				"table2", "fig3", "fig4", "table3", "ablation", "appablation",
				"schedpolicy", "budget", "buffering", "interrupts", "sorsizes",
				"chaos", "sched"} {
				run(n)
			}
		case "micro":
			for _, n := range []string{"table1", "bulk", "abortcost"} {
				run(n)
			}
		default:
			run(name)
		}
	}
	return code
}

// runObserve implements the trace and metrics subcommands: run one
// application with an obs.Collector attached and write the selected
// sink.
func runObserve(kind string, args []string, quick bool, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oamlab "+kind, flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := fs.Int("p", 8, "machine size (processors)")
	sysName := fs.String("sys", "orpc", "communication system: am, orpc, trpc")
	out := fs.String("o", "", "trace: output file (default trace_<app>.json)")
	top := fs.Int("top", 30, "metrics: profile rows to print (0 = all)")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(stderr, "oamlab: usage: oamlab [-quick] %s <app> [flags]; apps: %s\n",
			kind, strings.Join(exp.ObservedApps(), ", "))
		return 2
	}
	app := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	sys, err := exp.ParseSystem(*sysName)
	if err != nil {
		fmt.Fprintf(stderr, "oamlab: %v\n", err)
		return 2
	}

	opts := obs.Options{Trace: kind == "trace"}
	if kind == "metrics" {
		opts.Metrics = true
		opts.Profile = true
	}
	start := time.Now()
	c, res, err := exp.RunObserved(exp.ObserveSpec{App: app, Sys: sys, Nodes: *p, Quick: quick}, opts)
	if err != nil {
		fmt.Fprintf(stderr, "oamlab: %s: %v\n", kind, err)
		return 1
	}

	switch kind {
	case "trace":
		path := *out
		if path == "" {
			path = "trace_" + app + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stderr, "oamlab: trace: %v\n", err)
			return 1
		}
		werr := c.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "oamlab: trace: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stderr, "[trace of %s/%v on %d nodes written to %s — open in https://ui.perfetto.dev]\n",
			app, res.System, res.Nodes, path)
	case "metrics":
		if err := c.WriteMetrics(stdout); err != nil {
			fmt.Fprintf(stderr, "oamlab: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
		if err := c.WriteProfile(stdout, *top); err != nil {
			fmt.Fprintf(stderr, "oamlab: metrics: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "[%s %s done in %v: %v on %d nodes ran %s of virtual time]\n",
		kind, app, time.Since(start).Round(time.Millisecond), res.System, res.Nodes, res.Elapsed)
	return 0
}
