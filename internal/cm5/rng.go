package cm5

// flightRNG is a tiny splitmix64 stream seeded per flight from
// (seed, src, dst, attempt). Every packet injection gets its own stream,
// so the value of any random draw — loss roll, duplicate roll, jitter —
// depends only on which flight it belongs to, never on how unrelated
// events interleave. That independence is what lets shards execute sends
// in parallel and still reproduce the sequential run bit for bit; it also
// fixes the order-dependence the old shared generators had even
// sequentially (adding a link elsewhere used to shift every later draw).
type flightRNG struct {
	s uint64
}

// wireSalt decouples the cost-model wire-jitter stream (seeded from the
// engine seed) from the fault stream (seeded from the plan seed), so the
// two never alias even when the seeds are equal.
const wireSalt = 0x71c9d1f0a5b3e847

// newFlightRNG seeds a stream for one (src, dst, attempt) flight. The raw
// combination is whitened by the first splitmix step, so nearby counters
// still produce uncorrelated leading draws.
func newFlightRNG(seed uint64, src, dst int, attempt uint64, salt uint64) flightRNG {
	return flightRNG{s: seed ^ uint64(src)<<32 ^ uint64(dst) ^ attempt<<16 ^ salt}
}

func (r *flightRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *flightRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// int63n returns a uniform draw in [0, n). The modulo bias is far below
// anything the simulated latency distributions can resolve.
func (r *flightRNG) int63n(n int64) int64 {
	return int64(r.next()>>1) % n
}

// attemptCounter holds a node's per-destination injection counters — the
// values that seed the per-flight RNG streams. A node used to carry a
// dense uint64 array over all n destinations, which made machine memory
// O(nodes²); in practice a node talks to a handful of peers, so the
// counters are sparse: a short parallel-array scan for the common case,
// spilling to a map for genuinely fan-out-heavy nodes. The counts are
// identical to the dense array's, so every RNG stream (and every fault
// and jitter golden) is unchanged.
type attemptCounter struct {
	keys  []int32
	vals  []uint64
	spill map[int32]uint64
}

// attemptInlineMax is the destination count kept in the scan arrays
// before spilling to a map.
const attemptInlineMax = 16

// next returns the current counter for dst and increments it. Steady
// state allocates nothing: the arrays stop growing at attemptInlineMax
// and map increments of existing keys don't allocate.
func (a *attemptCounter) next(dst int) uint64 {
	for i, k := range a.keys {
		if int(k) == dst {
			v := a.vals[i]
			a.vals[i] = v + 1
			return v
		}
	}
	if a.spill != nil {
		v := a.spill[int32(dst)]
		a.spill[int32(dst)] = v + 1
		return v
	}
	if len(a.keys) < attemptInlineMax {
		a.keys = append(a.keys, int32(dst))
		a.vals = append(a.vals, 1)
		return 0
	}
	a.spill = make(map[int32]uint64, 2*attemptInlineMax)
	a.spill[int32(dst)] = 1
	return 0
}
