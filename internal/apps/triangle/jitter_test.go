package triangle

import (
	"testing"

	"repro/internal/am"
	trigen "repro/internal/apps/triangle/gen"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestCorrectUnderWireJitter: the Triangle search is insensitive to
// message ordering (inserts commute), so it must produce the exact
// solution count even when network jitter reorders deliveries. This is a
// deliberate robustness check on the whole stack under non-FIFO timing.
func TestCorrectUnderWireJitter(t *testing.T) {
	b := NewBoard(5)
	want := b.SolveSeq().Solutions

	eng := sim.New(99)
	defer eng.Shutdown()
	cost := cm5.DefaultCostModel()
	cost.WireJitter = sim.Micros(30)
	u := am.NewUniverse(eng, 4, cost)
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC})

	nodes := 4
	states := make([]*nodeState, nodes)
	for i := range states {
		states[i] = &nodeState{
			mu:    threads.NewMutex(u.Scheduler(i)),
			index: make(map[State]int),
		}
	}
	insert := trigen.DefineInsert(rt, func(e *oam.Env, caller int, state, ways uint64) {
		ns := states[e.Node()]
		e.Lock(ns.mu)
		e.Compute(CostInsert)
		ns.insert(State(state), ways)
		ns.recv++
		e.Unlock(ns.mu)
	})

	start := b.Canon(b.Start())
	states[owner(start, nodes)].frontier = []entry{{s: start, ways: 1}}
	_, err := u.SPMD(func(c threads.Ctx, me int) {
		ns := states[me]
		ep := u.Endpoint(me)
		sched := u.Scheduler(me)
		var exts []Ext
		for {
			for _, ent := range ns.frontier {
				c.P.Charge(CostExpand)
				if ent.s.Pegs() == 1 {
					ns.solutions += ent.ways
					continue
				}
				exts = b.Extensions(ent.s, exts[:0])
				for _, x := range exts {
					c.P.Charge(CostMove)
					ns.sent++
					insert.CallAsync(c, owner(x.S, nodes), uint64(x.S), ent.ways*x.Mult)
				}
			}
			for {
				gs := sched.Reduce(c, float64(ns.sent), cm5.ReduceSum)
				gr := sched.Reduce(c, float64(ns.recv), cm5.ReduceSum)
				if gs == gr {
					break
				}
				ep.PollAll(c)
				sched.Yield(c)
			}
			ns.frontier = ns.next
			ns.next = nil
			ns.index = make(map[State]int)
			if sched.Reduce(c, float64(len(ns.frontier)), cm5.ReduceSum) == 0 {
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for _, ns := range states {
		got += ns.solutions
	}
	if got != want {
		t.Fatalf("solutions under jitter = %d, want %d", got, want)
	}
}
