package exp

import (
	"os"
	"path/filepath"

	"repro/internal/plot"
)

// FigPlots converts harness curve points into the two panels of a paper
// figure: log-log runtime and log-log speedup (with the ideal line), in
// the exact layout of Figures 1-4.
func FigPlots(name string, rows []FigRow) (runtime, speedup *plot.Plot) {
	bySystem := map[string]*plot.Series{}
	var order []string
	for _, r := range rows {
		s, ok := bySystem[r.System]
		if !ok {
			s = &plot.Series{Name: r.System}
			bySystem[r.System] = s
			order = append(order, r.System)
		}
		s.X = append(s.X, float64(r.Nodes))
		s.Y = append(s.Y, r.Runtime.Seconds())
	}
	runtime = &plot.Plot{
		Title: name + ": runtime", XLabel: "number of processors",
		YLabel: "runtime (seconds)", LogX: true, LogY: true,
	}
	speedup = &plot.Plot{
		Title: name + ": speedup", XLabel: "number of processors",
		YLabel: "speedup (relative to sequential)", LogX: true, LogY: true,
		Ideal: true,
	}
	for _, sys := range order {
		rt := *bySystem[sys]
		runtime.Series = append(runtime.Series, rt)
		var sp plot.Series
		sp.Name = sys
		for _, r := range rows {
			if r.System == sys {
				sp.X = append(sp.X, float64(r.Nodes))
				sp.Y = append(sp.Y, r.Speedup)
			}
		}
		speedup.Series = append(speedup.Series, sp)
	}
	plot.SortSeriesPoints(runtime.Series)
	plot.SortSeriesPoints(speedup.Series)
	return runtime, speedup
}

// WriteFigSVGs renders both panels of a figure into dir as
// <base>-runtime.svg and <base>-speedup.svg.
func WriteFigSVGs(dir, base, title string, rows []FigRow) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rt, sp := FigPlots(title, rows)
	if err := os.WriteFile(filepath.Join(dir, base+"-runtime.svg"), []byte(rt.SVG()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, base+"-speedup.svg"), []byte(sp.SVG()), 0o644); err != nil {
		return err
	}
	return nil
}
