package threads

import (
	"testing"

	"repro/internal/sim"
)

// TestLendFinish: a lent execution that completes returns the CPU to the
// lender with no thread created.
func TestLendFinish(t *testing.T) {
	eng, s := rig(t)
	var order []string
	s.Bootstrap("main", func(c Ctx) {
		body := eng.Spawn("lent", func(p *sim.Proc) {
			order = append(order, "body-start")
			p.Charge(sim.Micros(3))
			order = append(order, "body-end")
			s.FinishLent()
		})
		s.Lend(body)
		order = append(order, "main-parks")
		c.P.Park()
		order = append(order, "main-resumes")
	})
	run(t, eng)
	want := []string{"main-parks", "body-start", "body-end", "main-resumes"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Stats().Adopted != 0 {
		t.Fatal("completion path adopted a thread")
	}
}

// TestLendAdoptDetachBlocked: a lent execution promotes itself, queues on
// a mutex, detaches, and finishes as a scheduled thread.
func TestLendAdoptDetachBlocked(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	cost := s.cost
	bodyDone := false
	s.Bootstrap("main", func(c Ctx) {
		mu.Lock(c)
		var adopted *Thread
		body := eng.Spawn("lent", func(p *sim.Proc) {
			bc := Ctx{P: p, S: s}
			if !mu.TryLock(bc) {
				// Promote: adopt, queue as a waiter, give the CPU back.
				adopted = s.Adopt("promoted", p)
				bc.T = adopted
				mu.EnqueueWaiter(adopted)
				s.DetachBlocked(bc)
				// Resumed with lock ownership via the unlock handoff.
				bodyDone = true
				mu.Unlock(bc)
				s.FinishAdopted(bc)
				return
			}
			t.Error("TryLock unexpectedly succeeded")
		})
		s.Lend(body)
		c.P.Park() // until the body detaches
		if adopted == nil || adopted.State() != "blocked" {
			t.Errorf("adopted state: %+v", adopted)
		}
		if bodyDone {
			t.Error("body ran before the lock was free")
		}
		mu.Unlock(c) // hands the lock to the adopted thread
		for !bodyDone {
			s.Yield(c)
		}
	})
	run(t, eng)
	if !bodyDone {
		t.Fatal("adopted thread never completed")
	}
	st := s.Stats()
	if st.Adopted != 1 {
		t.Fatalf("adopted = %d, want 1", st.Adopted)
	}
	_ = cost
}

// TestAdoptChargesCreation: Adopt charges the 7 us thread-creation cost
// to the promoting execution.
func TestAdoptChargesCreation(t *testing.T) {
	eng, s := rig(t)
	cost := s.cost
	s.Bootstrap("main", func(c Ctx) {
		var before, after sim.Time
		body := eng.Spawn("lent", func(p *sim.Proc) {
			bc := Ctx{P: p, S: s}
			before = p.Now()
			adopted := s.Adopt("promoted", p)
			after = p.Now()
			bc.T = adopted
			s.DetachReady(bc)
			s.FinishAdopted(bc)
		})
		s.Lend(body)
		c.P.Park()
		if d := after.Sub(before); d != cost.ThreadCreate {
			t.Errorf("adopt charged %v, want %v", d, cost.ThreadCreate)
		}
	})
	run(t, eng)
}

// TestAdoptOwnerGuards: AdoptOwner only applies to handler-held locks.
func TestAdoptOwnerGuards(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	s.Bootstrap("main", func(c Ctx) {
		mu.Lock(c) // owner is this thread, not a handler
		defer func() {
			if recover() == nil {
				t.Error("AdoptOwner of thread-held lock did not panic")
			}
		}()
		mu.AdoptOwner(c.T)
	})
	run(t, eng)
}

// TestUnlendWithoutLendPanics guards the protocol.
func TestUnlendWithoutLendPanics(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("Unlend without Lend did not panic")
			}
		}()
		s.Unlend()
	})
	run(t, eng)
}

// TestEnqueueWaiterFreeMutexPanics guards the promotion sequence.
func TestEnqueueWaiterFreeMutexPanics(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	s.Bootstrap("main", func(c Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("EnqueueWaiter on free mutex did not panic")
			}
		}()
		mu.EnqueueWaiter(c.T)
	})
	run(t, eng)
}

// TestAccessors covers the small read-only surface.
func TestAccessors(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		if s.Node() == nil || c.Node() != s.Node() {
			t.Error("node accessors inconsistent")
		}
		if c.IsHandler() {
			t.Error("thread ctx claims handler")
		}
		hc := Ctx{P: c.P, S: s}
		if !hc.IsHandler() {
			t.Error("handler ctx not recognized")
		}
		if s.Running() != c.T {
			t.Error("Running() wrong")
		}
		if c.T.Name() != "main" || c.T.State() != "running" {
			t.Errorf("name/state: %s/%s", c.T.Name(), c.T.State())
		}
		mu := NewMutex(s)
		if mu.Held() {
			t.Error("fresh mutex held")
		}
		if len(s.Blocked()) != 0 {
			t.Error("phantom blocked threads")
		}
	})
	run(t, eng)
	if eng.Live() != 1 { // the idle proc
		t.Fatalf("live = %d", eng.Live())
	}
}
