package triangle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoardGeometry(t *testing.T) {
	b := NewBoard(6)
	if b.Cells != 21 {
		t.Fatalf("cells = %d, want 21", b.Cells)
	}
	if b.Start().Pegs() != 20 {
		t.Fatalf("start pegs = %d, want 20", b.Start().Pegs())
	}
	// Known move count for side 5: each of the 3 directions contributes
	// rows of jumps; spot check against hand-count for side 3: exactly
	// 2 cells can jump along each edge direction, both ways = 6 triples.
	b3 := NewBoard(3)
	if len(b3.moves) != 6 {
		t.Fatalf("side-3 moves = %d, want 6", len(b3.moves))
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	b := NewBoard(6)
	for k := 0; k < 6; k++ {
		seen := make([]bool, b.Cells)
		for i := 0; i < b.Cells; i++ {
			img := b.perms[k][i]
			if seen[img] {
				t.Fatalf("perm %d maps two cells to %d", k, img)
			}
			seen[img] = true
		}
	}
}

// TestSymmetryPreservesMoves: permuting a state must permute its move set
// (same number of legal moves).
func TestSymmetryPreservesMoves(t *testing.T) {
	b := NewBoard(6)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		s := State(rng.Uint32()) & (1<<21 - 1)
		n := b.MoveCount(s)
		for k := 0; k < 6; k++ {
			if got := b.MoveCount(b.permute(s, k)); got != n {
				t.Fatalf("state %x perm %d: moves %d != %d", s, k, got, n)
			}
		}
	}
}

// TestCanonIdempotentAndInvariant: canon(canon(s)) == canon(s), and all
// symmetric images share a canonical form.
func TestCanonIdempotentAndInvariant(t *testing.T) {
	b := NewBoard(6)
	f := func(raw uint32) bool {
		s := State(raw) & (1<<21 - 1)
		c := b.Canon(s)
		if b.Canon(c) != c {
			return false
		}
		for k := 0; k < 6; k++ {
			if b.Canon(b.permute(s, k)) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonPreservesPegCount: symmetry never changes the peg count.
func TestCanonPreservesPegCount(t *testing.T) {
	b := NewBoard(6)
	f := func(raw uint32) bool {
		s := State(raw) & (1<<21 - 1)
		return b.Canon(s).Pegs() == s.Pegs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMovesDecrementPegs: every legal move removes exactly one peg.
func TestMovesDecrementPegs(t *testing.T) {
	b := NewBoard(6)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := State(rng.Uint32()) & (1<<21 - 1)
		for _, m := range b.moves {
			if legalMove(s, m) {
				if applyMove(s, m).Pegs() != s.Pegs()-1 {
					t.Fatalf("move %v on %x: pegs %d -> %d", m, s, s.Pegs(), applyMove(s, m).Pegs())
				}
			}
		}
	}
}

func TestSolveSeqSmallBoards(t *testing.T) {
	// Side 4 (10 cells): determinism and counter sanity. Solvability to
	// one peg depends on the starting hole, so check that at least one
	// starting hole is solvable, as for the classic 10-hole puzzle.
	b := NewBoard(4)
	c1 := b.SolveSeq()
	c2 := b.SolveSeq()
	if c1 != c2 {
		t.Fatalf("nondeterministic: %+v vs %+v", c1, c2)
	}
	// The side-4 center cell cannot be jumped into, so the default board
	// is immediately stuck: exactly one position, no extensions.
	if c1.Positions != 1 || c1.Extensions != 0 || c1.Solutions != 0 {
		t.Fatalf("side-4 center start should be stuck: %+v", c1)
	}
	anySolvable := false
	for hole := 0; hole < 10; hole++ {
		if NewBoardAt(4, hole).SolveSeq().Solutions > 0 {
			anySolvable = true
			break
		}
	}
	if !anySolvable {
		t.Fatal("no side-4 starting hole is solvable; move generation is wrong")
	}
}

func TestSolveSeqSide5(t *testing.T) {
	b := NewBoard(5)
	c := b.SolveSeq()
	if c.Solutions == 0 {
		t.Fatal("side-5 board has solutions; found none")
	}
	t.Logf("side-5: %+v", c)
}

// TestSolveSeqSide6Counters: the full experiment board. The paper reports
// 688,348 extension RPCs; our canonicalization details differ slightly,
// but the count must be in the same regime (hundreds of thousands).
func TestSolveSeqSide6Counters(t *testing.T) {
	if testing.Short() {
		t.Skip("side-6 solve in short mode")
	}
	b := NewBoard(6)
	c := b.SolveSeq()
	if c.Solutions == 0 {
		t.Fatal("side-6 board has solutions; found none")
	}
	if c.Extensions < 100_000 || c.Extensions > 3_000_000 {
		t.Fatalf("side-6 extensions = %d, expected same regime as the paper's 688,348", c.Extensions)
	}
	t.Logf("side-6: %+v", c)
}
