package sor

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	sorgen "repro/internal/apps/sor/gen"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

const (
	sideNorth = 0
	sideSouth = 1
)

// nodeState is one node's partition: its interior rows plus ghost rows,
// and the incoming edge buffers.
type nodeState struct {
	lo, hi int // global interior rows [lo, hi)
	cur    [][]float64
	next   [][]float64
	north  []float64 // ghost row lo-1
	south  []float64 // ghost row hi

	// Edge buffers (RPC variants) with their synchronization.
	mu      *threads.Mutex
	notFull [2]*threads.Cond
	isFull  [2]*threads.Cond
	full    [2]bool
	buf     [2][]float64

	// AM variant: direct deposit flags.
	present [2]bool
}

// partition splits the interior rows 1..rows-2 across n nodes.
func partition(rows, n, i int) (lo, hi int) {
	interior := rows - 2
	base := interior / n
	extra := interior % n
	lo = 1 + i*base + min(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Run executes SOR on nodes processors with system sys. The answer is
// the grid fingerprint, which must match SolveSeq bit for bit.
func Run(sys apps.System, nodes int, cfg Config) (apps.Result, error) {
	return run(sys, nodes, cfg, false)
}

// RunSenderSpecified executes the ORPC variant the paper suggests in
// section 4.2.3: "an RPC with sender-specified destinations for data",
// whose handler deposits the boundary row directly into the application's
// arrays instead of a call buffer, eliminating the call-by-value copy.
// The paper reports a hand-generated version "performs identically to the
// Active Message version"; this run should confirm that.
func RunSenderSpecified(nodes int, cfg Config) (apps.Result, error) {
	return run(apps.ORPC, nodes, cfg, true)
}

func run(sys apps.System, nodes int, cfg Config, senderSpecified bool) (apps.Result, error) {
	if nodes > cfg.Rows-2 {
		return apps.Result{}, fmt.Errorf("sor: %d nodes for %d interior rows", nodes, cfg.Rows-2)
	}
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())

	states := make([]*nodeState, nodes)
	for i := range states {
		lo, hi := partition(cfg.Rows, nodes, i)
		ns := &nodeState{lo: lo, hi: hi}
		ns.cur = make([][]float64, hi-lo)
		ns.next = make([][]float64, hi-lo)
		for r := range ns.cur {
			ns.cur[r] = make([]float64, cfg.Cols)
			ns.next[r] = make([]float64, cfg.Cols)
		}
		ns.north = make([]float64, cfg.Cols)
		ns.south = make([]float64, cfg.Cols)
		ns.buf[0] = make([]float64, cfg.Cols)
		ns.buf[1] = make([]float64, cfg.Cols)
		// Global boundary: the top row is 100 (node 0's north ghost);
		// everything else is 0.
		if i == 0 {
			for c := range ns.north {
				ns.north[c] = 100
			}
		}
		ns.mu = threads.NewMutex(u.Scheduler(i))
		for s := 0; s < 2; s++ {
			ns.notFull[s] = threads.NewCond(ns.mu)
			ns.isFull[s] = threads.NewCond(ns.mu)
		}
		states[i] = ns
	}

	// sendRow delivers row data to neighbor dst's side buffer; waitRow
	// blocks until the side's data is available and copies it into ghost.
	var sendRow func(c threads.Ctx, me, dst int, side int32, row []float64)
	var waitRow func(c threads.Ctx, me int, side int32, ghost []float64)
	var oams, successes func() uint64

	var rtForObs *rpc.Runtime
	switch sys {
	case apps.AM:
		// Hand-coded: sender-specified destination; the handler deposits
		// the row directly into the ghost array (no extra copy) and
		// raises the present flag. The iteration structure guarantees
		// the previous row was consumed (see package doc).
		var storeH am.HandlerID
		storeH = u.Register("sor/store", func(c threads.Ctx, pkt *cm5.Packet) {
			ns := states[c.Node().ID()]
			side := int32(pkt.W0)
			ghost := ns.north
			if side == sideSouth {
				ghost = ns.south
			}
			if ns.present[side] {
				// The paper's AM version simply dies if its no-blocking
				// assumption is violated.
				panic("sor/AM: boundary row arrived before previous was consumed")
			}
			decodeRow(pkt.Payload, ghost)
			ns.present[side] = true
		})
		sendRow = func(c threads.Ctx, me, dst int, side int32, row []float64) {
			u.Endpoint(me).SendBulk(c, dst, storeH, [4]uint64{uint64(side)}, encodeRow(row))
		}
		waitRow = func(c threads.Ctx, me int, side int32, ghost []float64) {
			ns := states[me]
			for !ns.present[side] {
				u.Endpoint(me).Poll(c)
			}
			ns.present[side] = false
		}
		oams = func() uint64 { return 0 }
		successes = func() uint64 { return 0 }

	case apps.ORPC, apps.TRPC:
		mode := rpc.ORPC
		if sys == apps.TRPC {
			mode = rpc.TRPC
		}
		rt := rpc.New(u, rpc.Options{Mode: mode, OAM: oam.Options{Cores: cfg.Cores}})
		rtForObs = rt
		store := sorgen.DefineStore(rt, func(e *oam.Env, caller int, side int32, row []float64) {
			ns := states[e.Node()]
			e.Lock(ns.mu)
			e.Await(ns.notFull[side], func() bool { return !ns.full[side] })
			e.Compute(CostStore)
			if senderSpecified {
				// Sender-specified destination: deposit straight into
				// the application's ghost row, like the AM version.
				ghost := ns.north
				if side == sideSouth {
					ghost = ns.south
				}
				copy(ghost, row)
			} else {
				copy(ns.buf[side], row)
			}
			ns.full[side] = true
			e.Signal(ns.isFull[side])
			e.Unlock(ns.mu)
		})
		sendRow = func(c threads.Ctx, me, dst int, side int32, row []float64) {
			store.CallAsync(c, dst, side, row)
		}
		waitRow = func(c threads.Ctx, me int, side int32, ghost []float64) {
			ns := states[me]
			ns.mu.Lock(c)
			for !ns.full[side] {
				ns.isFull[side].Wait(c)
			}
			if !senderSpecified {
				// Call-by-value semantics force this extra copy, which
				// the AM and sender-specified versions avoid.
				c.P.Charge(sim.Duration(8*len(ghost)) * CostCopyPerByte)
				copy(ghost, ns.buf[side])
			}
			ns.full[side] = false
			ns.notFull[side].Signal(c)
			ns.mu.Unlock(c)
		}
		oams = func() uint64 { return store.Stats().OAMs }
		successes = func() uint64 { return store.Stats().Successes }

	default:
		return apps.Result{}, fmt.Errorf("sor: unknown system %v", sys)
	}

	if cfg.Observe != nil {
		cfg.Observe(u, rtForObs)
	}
	iters := make([]int, nodes)
	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		ns := states[me]
		sched := u.Scheduler(me)
		n := ns.hi - ns.lo
		it := 0
		for ; it < cfg.Iters; it++ {
			// Exchange boundary rows with interior neighbors. My top row
			// becomes the south ghost of node me-1; my bottom row the
			// north ghost of node me+1.
			if me > 0 {
				sendRow(c, me, me-1, sideSouth, ns.cur[0])
			}
			if me < nodes-1 {
				sendRow(c, me, me+1, sideNorth, ns.cur[n-1])
			}
			if me > 0 {
				waitRow(c, me, sideNorth, ns.north)
			}
			if me < nodes-1 {
				waitRow(c, me, sideSouth, ns.south)
			}
			// Relax my rows.
			maxd := 0.0
			for r := 0; r < n; r++ {
				up := ns.north
				if r > 0 {
					up = ns.cur[r-1]
				}
				down := ns.south
				if r < n-1 {
					down = ns.cur[r+1]
				}
				d := relaxRow(up, ns.cur[r], down, ns.next[r])
				if d > maxd {
					maxd = d
				}
				c.P.Charge(sim.Duration(cfg.Cols-2) * CostPoint)
				apps.Service(c, u.Endpoint(me))
			}
			ns.cur, ns.next = ns.next, ns.cur
			// Convergence: split-phase global OR of "still changing".
			sched.OREnter(maxd > cfg.Eps)
			if !sched.ORWait(c) {
				it++
				break
			}
		}
		iters[me] = it
	})
	if err != nil {
		return apps.Result{}, fmt.Errorf("sor/%v: %w", sys, err)
	}
	for i := 1; i < nodes; i++ {
		if iters[i] != iters[0] {
			return apps.Result{}, fmt.Errorf("sor/%v: iteration skew %v", sys, iters)
		}
	}

	var sum uint64
	for _, ns := range states {
		sum += checksumRows(ns.lo, ns.cur)
	}
	res := apps.Result{
		System:  sys,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  sum,
	}
	apps.FillResult(&res, u, oams(), successes())
	return res, nil
}

// encodeRow and decodeRow move float64 rows through packet payloads (the
// AM variant bypasses the RPC wire format but still ships bytes).
func encodeRow(row []float64) []byte {
	e := rpc.NewEnc(8 * len(row))
	for _, v := range row {
		e.F64(v)
	}
	return e.Bytes()
}

func decodeRow(b []byte, into []float64) {
	d := rpc.NewDec(b)
	for i := range into {
		into[i] = d.F64()
	}
	d.Done()
}
