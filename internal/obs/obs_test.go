package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry(3)
	c := r.NewCounter("x/events")
	c.Inc(0)
	c.Inc(2)
	c.Add(2, 4)
	if got := c.Value(2); got != 5 {
		t.Fatalf("Value(2) = %d, want 5", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}

	g := r.NewGauge("x/depth")
	g.Set(1, 7)
	g.Set(1, 3)
	if got := g.Value(1); got != 3 {
		t.Fatalf("gauge Value = %d, want 3", got)
	}
	if got := g.Max(1); got != 7 {
		t.Fatalf("gauge Max = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(1)
	h := r.NewHistogram("x/lat", sim.Micros(1), sim.Micros(10))
	h.Observe(0, sim.Micros(0.5)) // bucket 0
	h.Observe(0, sim.Micros(1))   // bucket 0 (bounds are inclusive upper edges)
	h.Observe(0, sim.Micros(5))   // bucket 1
	h.Observe(0, sim.Micros(50))  // overflow bucket
	if got := h.Count(0); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	want := []uint64{2, 1, 1}
	for b, w := range want {
		if h.counts[0][b] != w {
			t.Fatalf("bucket %d = %d, want %d", b, h.counts[0][b], w)
		}
	}
	if got, want := h.Sum(0), sim.Micros(56.5); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewRegistry(1).NewHistogram("bad", sim.Micros(5), sim.Micros(5))
}

func TestRegistryWriteDeterministic(t *testing.T) {
	mk := func() string {
		r := NewRegistry(2)
		b := r.NewCounter("b/second")
		a := r.NewCounter("a/first")
		g := r.NewGauge("m/depth")
		h := r.NewHistogram("z/lat", sim.Micros(2))
		a.Inc(1)
		b.Add(0, 3)
		g.Set(0, 4)
		g.Set(0, 1)
		h.Observe(1, sim.Micros(1))
		h.Observe(1, sim.Micros(9))
		var buf bytes.Buffer
		if err := r.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		return buf.String()
	}
	s1, s2 := mk(), mk()
	if s1 != s2 {
		t.Fatalf("registry output not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	// Instruments come out sorted by name regardless of registration order.
	ai := strings.Index(s1, "a/first")
	bi := strings.Index(s1, "b/second")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("instruments not sorted by name:\n%s", s1)
	}
}

func TestNormalizeProcName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"idle/3", "idle"},
		{"reliable/retx/0", "reliable/retx"},
		{"main/12", "main"},
		{"idle", "idle"},
		{"7", "7"},
		{"a/b", "a/b"},
		{"/3", "/3"},
	}
	for _, c := range cases {
		if got := normalizeProcName(c.in); got != c.want {
			t.Errorf("normalizeProcName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestProfileTotalsAndHierarchy(t *testing.T) {
	p := NewProfile()
	p.Add("oam/GetJob/0", sim.Micros(30))
	p.Add("oam/GetJob/1", sim.Micros(10))
	p.Add("oam/Best", sim.Micros(20))
	p.Add("idle/0", sim.Micros(40))
	if got, want := p.Total(), sim.Micros(100); got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	rows := p.rows()
	flat := map[string]sim.Duration{}
	cum := map[string]sim.Duration{}
	for _, r := range rows {
		flat[r.name] = r.flat
		cum[r.name] = r.cum
	}
	if flat["oam/GetJob"] != sim.Micros(40) {
		t.Fatalf("flat[oam/GetJob] = %v, want 40us", flat["oam/GetJob"])
	}
	// "oam" never appears as a leaf but accumulates its children.
	if flat["oam"] != 0 || cum["oam"] != sim.Micros(60) {
		t.Fatalf("oam parent: flat %v cum %v, want 0 / 60us", flat["oam"], cum["oam"])
	}
	if cum["idle"] != sim.Micros(40) {
		t.Fatalf("cum[idle] = %v, want 40us", cum["idle"])
	}
}

func TestProfileWriteDeterministic(t *testing.T) {
	mk := func() string {
		p := NewProfile()
		p.Add("b/1", sim.Micros(5))
		p.Add("a/0", sim.Micros(5))
		p.Add("c", sim.Micros(90))
		var buf bytes.Buffer
		if err := p.Write(&buf, 0); err != nil {
			t.Fatalf("Write: %v", err)
		}
		return buf.String()
	}
	s1, s2 := mk(), mk()
	if s1 != s2 {
		t.Fatalf("profile output not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	if !strings.Contains(s1, "virtual CPU profile: 100.000us total") {
		t.Fatalf("missing total header:\n%s", s1)
	}
	// Equal flat times break ties by name: a before b.
	ai := strings.Index(s1, "  a\n")
	bi := strings.Index(s1, "  b\n")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("flat-tie ordering wrong:\n%s", s1)
	}
}

func TestPct(t *testing.T) {
	cases := []struct {
		part, total sim.Duration
		want        string
	}{
		{50, 100, "50.0%"},
		{1, 3, "33.3%"},
		{2, 3, "66.7%"},
		{100, 100, "100.0%"},
		{0, 100, "0.0%"},
		{5, 0, "0.0%"},
	}
	for _, c := range cases {
		if got := pct(c.part, c.total); got != c.want {
			t.Errorf("pct(%d, %d) = %q, want %q", c.part, c.total, got, c.want)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    sim.Duration
		want string
	}{
		{sim.Micros(1), "1.000us"},
		{sim.Micros(1.5), "1.500us"},
		{0, "0.000us"},
		{-sim.Micros(2.25), "-2.250us"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTraceBuilderJSON(t *testing.T) {
	tb := &traceBuilder{}
	tb.procMeta(0, "node 0")
	tb.threadMeta(0, tidCPU, "cpu")
	tb.span(`handler "x"`, "handler", sim.Time(1500), sim.Micros(2), 0, tidHandler, `{"depth":1}`)
	tb.instant("abort: lock-busy", "abort", sim.Time(3000), 0, tidOAM, "")
	tb.asyncBegin("GetJob", "flight", sim.Time(100), 0, tidNet, 1, `{"src":0,"dst":1,"bytes":16}`)
	tb.asyncEnd("GetJob", "flight", sim.Time(2100), 0, tidNet, 1)
	tb.counter("ready_depth", sim.Time(500), 0, 3)

	var buf bytes.Buffer
	if err := tb.writeDoc(&buf); err != nil {
		t.Fatalf("writeDoc: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 2 || phases["X"] != 1 || phases["i"] != 1 ||
		phases["b"] != 1 || phases["e"] != 1 || phases["C"] != 1 {
		t.Fatalf("phase counts wrong: %v", phases)
	}
	// ts is fractional microseconds: 1500ns -> 1.500.
	if !strings.Contains(buf.String(), `"ts":1.500`) {
		t.Fatalf("span ts not rendered as fixed-point microseconds:\n%s", buf.String())
	}
	// The quoted handler name survives escaping.
	if !strings.Contains(buf.String(), `handler \"x\"`) {
		t.Fatalf("name escaping missing:\n%s", buf.String())
	}
}

func TestCollectorSinkGating(t *testing.T) {
	c := New(Options{Profile: true})
	if c.Profile() == nil {
		t.Fatal("Profile option did not create a profiler")
	}
	// Registry is built at Attach time (it needs the node count); the
	// trace builder is off entirely.
	if c.Registry() != nil || c.tb != nil {
		t.Fatal("unselected sinks should be nil")
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err == nil {
		t.Fatal("WriteTrace without a trace sink should error")
	}
	if err := c.WriteMetrics(&buf); err == nil {
		t.Fatal("WriteMetrics without a metrics sink should error")
	}
	if err := c.WriteProfile(&buf, 10); err != nil {
		t.Fatalf("WriteProfile with a profile sink: %v", err)
	}
}
