package threads

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// rig builds a one-node machine with a scheduler.
func rig(t *testing.T) (*sim.Engine, *Scheduler) {
	t.Helper()
	eng := sim.New(7)
	m := cm5.NewMachine(eng, 1, cm5.DefaultCostModel())
	s := NewScheduler(m.Node(0))
	t.Cleanup(eng.Shutdown)
	return eng, s
}

func run(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapThreadRuns(t *testing.T) {
	eng, s := rig(t)
	ran := false
	s.Bootstrap("main", func(c Ctx) {
		ran = true
		if c.T == nil || c.S != s {
			t.Error("bad ctx in thread body")
		}
	})
	run(t, eng)
	if !ran {
		t.Fatal("bootstrap thread did not run")
	}
	st := s.Stats()
	if st.Starts != 1 || st.LiveStackStart != 1 {
		t.Fatalf("stats: %+v (want 1 start via live stack)", st)
	}
}

func TestCreateChargesSevenMicros(t *testing.T) {
	eng, s := rig(t)
	var before, after sim.Time
	s.Bootstrap("main", func(c Ctx) {
		before = c.P.Now()
		s.Create(c, "child", false, func(Ctx) {})
		after = c.P.Now()
	})
	run(t, eng)
	if d := after.Sub(before); d != sim.Micros(7) {
		t.Fatalf("create cost = %v, want 7us", d)
	}
}

// TestLiveStackFromDyingThread: when the creator exits, the new thread
// starts on the dead stack with no context-switch charge.
func TestLiveStackFromDyingThread(t *testing.T) {
	eng, s := rig(t)
	var createDone, childStart sim.Time
	s.Bootstrap("main", func(c Ctx) {
		s.Create(c, "child", false, func(cc Ctx) {
			childStart = cc.P.Now()
		})
		createDone = c.P.Now()
	})
	run(t, eng)
	if childStart != createDone {
		t.Fatalf("child started at %v, want %v (live-stack, no switch)", childStart, createDone)
	}
	st := s.Stats()
	if st.LiveStackStart != 2 { // main + child
		t.Fatalf("LiveStackStart = %d, want 2", st.LiveStackStart)
	}
	if st.SwitchHalves != 0 {
		t.Fatalf("SwitchHalves = %d, want 0", st.SwitchHalves)
	}
}

// TestSwitchFromLiveThread: yielding from a live thread charges the full
// 52 us context switch up front, prepaying the yielder's own restore:
// the child starts 52 us after the yield and the yielder resumes free
// when the child exits.
func TestSwitchFromLiveThread(t *testing.T) {
	eng, s := rig(t)
	cost := cm5.DefaultCostModel()
	var yieldAt, childStart sim.Time
	var mainResumed sim.Time
	var childDone sim.Time
	s.Bootstrap("main", func(c Ctx) {
		s.Create(c, "child", true, func(cc Ctx) {
			childStart = cc.P.Now()
			cc.P.Charge(sim.Micros(5))
			childDone = cc.P.Now()
		})
		yieldAt = c.P.Now()
		s.Yield(c)
		mainResumed = c.P.Now()
	})
	run(t, eng)
	if want := yieldAt.Add(cost.YieldCheck + cost.ContextSwitch); childStart != want {
		t.Fatalf("child started at %v, want %v (yield + full switch)", childStart, want)
	}
	if mainResumed != childDone {
		t.Fatalf("main resumed at %v, want %v (prepaid restore)", mainResumed, childDone)
	}
	if st := s.Stats(); st.SwitchHalves != 2 {
		t.Fatalf("SwitchHalves = %d, want 2", st.SwitchHalves)
	}
}

// TestBlockedRestoreCostsHalf: a thread that blocked (no yield) pays the
// 26 us restore half when another context resumes it.
func TestBlockedRestoreCostsHalf(t *testing.T) {
	eng, s := rig(t)
	cost := cm5.DefaultCostModel()
	f := &Flag{}
	var setAt, wokeAt sim.Time
	s.Bootstrap("blocked", func(c Ctx) {
		f.Wait(c)
		wokeAt = c.P.Now()
	})
	s.Bootstrap("spinner", func(c Ctx) {
		// Stay runnable so the blocked thread cannot free-resume; it has
		// to be restored by a real switch.
		c.P.Charge(sim.Micros(10))
		f.Set()
		setAt = c.P.Now()
		for i := 0; i < 3; i++ {
			s.Yield(c)
		}
	})
	run(t, eng)
	// spinner yields (full switch, prepaying itself), then blocked is
	// restored for the 26 us half.
	want := setAt.Add(cost.YieldCheck + cost.ContextSwitch + cost.ContextSwitch/2)
	if wokeAt != want {
		t.Fatalf("blocked woke at %v, want %v", wokeAt, want)
	}
}

func TestYieldNoOtherThreadIsCheap(t *testing.T) {
	eng, s := rig(t)
	cost := cm5.DefaultCostModel()
	var d sim.Duration
	s.Bootstrap("main", func(c Ctx) {
		t0 := c.P.Now()
		s.Yield(c)
		d = c.P.Now().Sub(t0)
	})
	run(t, eng)
	if d != cost.YieldCheck {
		t.Fatalf("lone yield cost %v, want %v", d, cost.YieldCheck)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	eng, s := rig(t)
	var order []int
	s.Bootstrap("a", func(c Ctx) {
		for i := 0; i < 3; i++ {
			order = append(order, 1)
			s.Yield(c)
		}
	})
	s.Bootstrap("b", func(c Ctx) {
		for i := 0; i < 3; i++ {
			order = append(order, 2)
			s.Yield(c)
		}
	})
	run(t, eng)
	want := []int{1, 2, 1, 2, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFrontOfQueueRunsFirst(t *testing.T) {
	eng, s := rig(t)
	var order []string
	s.Bootstrap("main", func(c Ctx) {
		s.Create(c, "back", false, func(Ctx) { order = append(order, "back") })
		s.Create(c, "front", true, func(Ctx) { order = append(order, "front") })
	})
	run(t, eng)
	if len(order) != 2 || order[0] != "front" || order[1] != "back" {
		t.Fatalf("order = %v, want [front back]", order)
	}
}

func TestJoin(t *testing.T) {
	eng, s := rig(t)
	var childDone, joinDone sim.Time
	s.Bootstrap("main", func(c Ctx) {
		child := s.Create(c, "child", false, func(cc Ctx) {
			cc.P.Charge(sim.Micros(100))
			childDone = cc.P.Now()
		})
		child.Join(c)
		joinDone = c.P.Now()
		if !child.Done() {
			t.Error("join returned before child done")
		}
		child.Join(c) // joining a dead thread returns immediately
	})
	run(t, eng)
	if joinDone < childDone {
		t.Fatalf("join at %v before child done at %v", joinDone, childDone)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Bootstrap("worker", func(c Ctx) {
			for r := 0; r < 5; r++ {
				mu.Lock(c)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				c.P.Charge(sim.Micros(10))
				s.Yield(c) // try to tempt a second thread inside
				inside--
				mu.Unlock(c)
			}
		})
	}
	run(t, eng)
	if maxInside != 1 {
		t.Fatalf("max threads inside critical section = %d, want 1", maxInside)
	}
	if mu.Contended == 0 {
		t.Fatal("expected contention")
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	var order []int
	s.Bootstrap("holder", func(c Ctx) {
		mu.Lock(c)
		// Let the waiters queue up.
		for i := 0; i < 3; i++ {
			s.Yield(c)
		}
		mu.Unlock(c)
	})
	for i := 0; i < 3; i++ {
		i := i
		s.Bootstrap("waiter", func(c Ctx) {
			mu.Lock(c)
			order = append(order, i)
			mu.Unlock(c)
		})
	}
	run(t, eng)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("handoff order = %v, want [0 1 2]", order)
	}
}

func TestTryLock(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	s.Bootstrap("main", func(c Ctx) {
		if !mu.TryLock(c) {
			t.Error("TryLock failed on free mutex")
		}
		if mu.TryLock(c) {
			t.Error("TryLock succeeded on held mutex")
		}
		mu.Unlock(c)
		if !mu.TryLock(c) {
			t.Error("TryLock failed after unlock")
		}
		mu.Unlock(c)
	})
	run(t, eng)
}

func TestUnlockErrors(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		mu := NewMutex(s)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic unlocking unlocked mutex")
				}
			}()
			mu.Unlock(c)
		}()
	})
	run(t, eng)
}

func TestCondSignalWakesOne(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	cv := NewCond(mu)
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		s.Bootstrap("waiter", func(c Ctx) {
			mu.Lock(c)
			ready++
			cv.Wait(c)
			woken++
			mu.Unlock(c)
		})
	}
	s.Bootstrap("signaler", func(c Ctx) {
		for ready < 3 {
			s.Yield(c)
		}
		mu.Lock(c)
		cv.Signal(c)
		mu.Unlock(c)
		// Give the woken thread a chance to run.
		for i := 0; i < 4; i++ {
			s.Yield(c)
		}
		if woken != 1 {
			t.Errorf("woken = %d after one signal, want 1", woken)
		}
		mu.Lock(c)
		cv.Broadcast(c)
		mu.Unlock(c)
	})
	run(t, eng)
	if woken != 3 {
		t.Fatalf("woken = %d after broadcast, want 3", woken)
	}
}

func TestCondWaitRequiresMutex(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		mu := NewMutex(s)
		cv := NewCond(mu)
		defer func() {
			if recover() == nil {
				t.Error("expected panic waiting without mutex")
			}
		}()
		cv.Wait(c)
	})
	run(t, eng)
}

func TestHandlerContextCannotBlock(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	s.Bootstrap("holder", func(c Ctx) {
		mu.Lock(c)
		// Simulate a handler running on this thread's context while the
		// lock is held: it must panic rather than block.
		hc := Ctx{P: c.P, T: nil, S: s}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic: handler blocking on mutex")
				}
			}()
			mu.Lock(hc)
		}()
		if ok := mu.TryLock(hc); ok {
			t.Error("handler TryLock succeeded on held mutex")
		}
		mu.Unlock(c)
	})
	run(t, eng)
}

func TestFlagBothOrders(t *testing.T) {
	// Set before Wait.
	eng, s := rig(t)
	f := &Flag{}
	s.Bootstrap("main", func(c Ctx) {
		f.Set()
		f.Wait(c) // returns immediately
		if !f.IsSet() {
			t.Error("flag not set")
		}
	})
	run(t, eng)

	// Wait before Set.
	eng2 := sim.New(7)
	m2 := cm5.NewMachine(eng2, 1, cm5.DefaultCostModel())
	s2 := NewScheduler(m2.Node(0))
	defer eng2.Shutdown()
	f2 := &Flag{}
	var wokeAt sim.Time
	s2.Bootstrap("waiter", func(c Ctx) {
		f2.Wait(c)
		wokeAt = c.P.Now()
	})
	s2.Bootstrap("setter", func(c Ctx) {
		c.P.Charge(sim.Micros(50))
		f2.Set()
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < sim.Time(sim.Micros(50)) {
		t.Fatalf("woke at %v, want >= 50us", wokeAt)
	}
}

func TestBlockResume(t *testing.T) {
	eng, s := rig(t)
	var blocked *Thread
	var resumedAt sim.Time
	blocked = s.Bootstrap("blocked", func(c Ctx) {
		s.Block(c)
		resumedAt = c.P.Now()
	})
	s.Bootstrap("resumer", func(c Ctx) {
		c.P.Charge(sim.Micros(25))
		blocked.Resume(true)
	})
	run(t, eng)
	if resumedAt < sim.Time(sim.Micros(25)) {
		t.Fatalf("resumed at %v, want >= 25us", resumedAt)
	}
}

func TestManyThreadsStress(t *testing.T) {
	eng, s := rig(t)
	const n = 500
	count := 0
	s.Bootstrap("spawner", func(c Ctx) {
		for i := 0; i < n; i++ {
			s.Create(c, "w", false, func(cc Ctx) {
				cc.P.Charge(sim.Micros(1))
				count++
			})
		}
	})
	run(t, eng)
	if count != n {
		t.Fatalf("ran %d threads, want %d", count, n)
	}
	if st := s.Stats(); st.Created != n+1 {
		t.Fatalf("created = %d, want %d", st.Created, n+1)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		eng := sim.New(3)
		m := cm5.NewMachine(eng, 1, cm5.DefaultCostModel())
		s := NewScheduler(m.Node(0))
		defer eng.Shutdown()
		mu := NewMutex(s)
		cv := NewCond(mu)
		waiting := 0
		for i := 0; i < 6; i++ {
			s.Bootstrap("w", func(c Ctx) {
				for r := 0; r < 10; r++ {
					c.P.Charge(sim.Duration(eng.Rand().Intn(50)) * sim.Microsecond)
					mu.Lock(c)
					if r%3 == 0 && waiting < 2 {
						waiting++
						cv.Wait(c)
						waiting--
					}
					cv.Signal(c)
					mu.Unlock(c)
					s.Yield(c)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic scheduler: %v vs %v", a, b)
	}
}
