package cm5

import (
	"fmt"

	"repro/internal/sim"
)

// ReduceOp selects the combining operator of a control-network reduction.
type ReduceOp uint8

const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case ReduceSum:
		return a + b
	case ReduceMax:
		if a > b {
			return a
		}
		return b
	case ReduceMin:
		if a < b {
			return a
		}
		return b
	default:
		panic("cm5: unknown reduce op")
	}
}

// ctlRound is one round of a collective operation. Rounds are identified
// by a per-primitive epoch; every node contributes exactly once per round
// and waits exactly once per round (the barrier fuses the two).
type ctlRound struct {
	entered      []bool
	count        int
	orVal        bool
	redVal       float64
	released     bool
	waiters      []func(or bool, red float64)
	pendingWaits int
}

// collective implements one collective primitive (barrier, global OR, or
// reduction) of the control network.
type collective struct {
	m         *Machine
	latency   func(*CostModel) sim.Duration
	rounds    map[uint64]*ctlRound
	enterEp   []uint64 // rounds entered per node
	waitEp    []uint64 // rounds waited per node
	redOp     ReduceOp
	redSeeded bool
}

func newCollective(m *Machine, latency func(*CostModel) sim.Duration) *collective {
	return &collective{
		m:       m,
		latency: latency,
		rounds:  make(map[uint64]*ctlRound),
		enterEp: make([]uint64, m.N()),
		waitEp:  make([]uint64, m.N()),
	}
}

func (c *collective) round(epoch uint64) *ctlRound {
	r, ok := c.rounds[epoch]
	if !ok {
		n := c.m.N()
		r = &ctlRound{entered: make([]bool, n), pendingWaits: n}
		c.rounds[epoch] = r
	}
	return r
}

// enter records node's contribution to its next round and completes the
// round if this was the last contribution. It does not block.
func (c *collective) enter(node int, or bool, red float64) {
	epoch := c.enterEp[node]
	if epoch != c.waitEp[node] {
		panic(fmt.Sprintf("cm5: node %d entered a collective twice without waiting", node))
	}
	c.enterEp[node] = epoch + 1
	r := c.round(epoch)
	if r.entered[node] {
		panic(fmt.Sprintf("cm5: node %d double-entered collective round %d", node, epoch))
	}
	r.entered[node] = true
	r.orVal = r.orVal || or
	if r.count == 0 {
		r.redVal = red
	} else {
		r.redVal = c.redOp.combine(r.redVal, red)
	}
	r.count++
	if r.count == c.m.N() {
		c.m.eng.After(c.latency(&c.m.cost), func() {
			r.released = true
			ws := r.waiters
			r.waiters = nil
			for _, w := range ws {
				w(r.orVal, r.redVal)
			}
		})
	}
}

// waitAsync consumes node's wait for its last-entered round. If the round
// has already combined, it returns (true, or, red) and cb is never called.
// Otherwise it returns ready == false and cb fires — in kernel context —
// when the round releases.
func (c *collective) waitAsync(node int, cb func(or bool, red float64)) (ready, or bool, red float64) {
	epoch := c.waitEp[node]
	if epoch >= c.enterEp[node] {
		panic(fmt.Sprintf("cm5: node %d waited on a collective without entering", node))
	}
	c.waitEp[node] = epoch + 1
	r := c.rounds[epoch]
	done := func() {
		r.pendingWaits--
		if r.pendingWaits == 0 {
			delete(c.rounds, epoch)
		}
	}
	if r.released {
		done()
		return true, r.orVal, r.redVal
	}
	r.waiters = append(r.waiters, func(or bool, red float64) {
		done()
		cb(or, red)
	})
	return false, false, 0
}

// wait blocks node (parking p) until the round it last entered is released,
// then returns that round's combined values.
func (c *collective) wait(p *sim.Proc, node int) (bool, float64) {
	var orOut bool
	var redOut float64
	ready, or, red := c.waitAsync(node, func(o bool, r float64) {
		orOut, redOut = o, r
		p.Unpark()
	})
	if ready {
		return or, red
	}
	p.Park()
	return orOut, redOut
}

// controlNetwork bundles the machine's collective primitives. The CM-5
// control network supplies a hardware barrier, a split-phase global-OR
// (the "set and get pair" of the paper), and hardware reductions.
type controlNetwork struct {
	barrier *collective
	or      *collective
	reduce  *collective
}

func newControlNetwork(m *Machine) *controlNetwork {
	return &controlNetwork{
		barrier: newCollective(m, func(c *CostModel) sim.Duration { return c.BarrierLatency }),
		or:      newCollective(m, func(c *CostModel) sim.Duration { return c.ReduceLatency }),
		reduce:  newCollective(m, func(c *CostModel) sim.Duration { return c.ReduceLatency }),
	}
}

// Barrier blocks until every node of the machine has called Barrier for
// the same round. p must be running on this node's CPU. This parks the
// raw process; thread code should use the scheduler's Barrier wrapper so
// other threads can run while waiting.
func (n *Node) Barrier(p *sim.Proc) {
	b := n.m.ctl.barrier
	b.enter(n.id, false, 0)
	b.wait(p, n.id)
}

// BarrierEnter contributes node's arrival to the current barrier round
// without blocking. Pair with BarrierWaitAsync.
func (n *Node) BarrierEnter() { n.m.ctl.barrier.enter(n.id, false, 0) }

// BarrierWaitAsync consumes the barrier wait: it reports true if the
// round has already released; otherwise cb fires (in kernel context) on
// release.
func (n *Node) BarrierWaitAsync(cb func()) bool {
	ready, _, _ := n.m.ctl.barrier.waitAsync(n.id, func(bool, float64) { cb() })
	return ready
}

// ReduceEnter contributes val to the current reduction round under op
// without blocking. Pair with ReduceWaitAsync.
func (n *Node) ReduceEnter(val float64, op ReduceOp) {
	r := n.m.ctl.reduce
	r.redOp = op
	r.enter(n.id, false, val)
}

// ReduceWaitAsync consumes the reduction wait: ready is true (with the
// combined value) if the round has already released; otherwise cb fires
// (in kernel context) with the combined value on release.
func (n *Node) ReduceWaitAsync(cb func(float64)) (ready bool, val float64) {
	ready, _, val = n.m.ctl.reduce.waitAsync(n.id, func(_ bool, red float64) { cb(red) })
	return ready, val
}

// ORWaitAsync consumes the global-OR wait: ready is true (with the OR
// value) if the round has already combined; otherwise cb fires (in
// kernel context) with the value on release.
func (n *Node) ORWaitAsync(cb func(bool)) (ready, val bool) {
	ready, val, _ = n.m.ctl.or.waitAsync(n.id, func(or bool, _ float64) { cb(or) })
	return ready, val
}

// OREnter contributes v to the current split-phase global-OR round and
// returns immediately. Pair each OREnter with exactly one ORWait.
func (n *Node) OREnter(v bool) {
	n.m.ctl.or.enter(n.id, v, 0)
}

// ORWait blocks until the global-OR round this node last entered has
// combined, and returns the OR across all nodes. Together with OREnter it
// forms a split-phase barrier: enter, overlap computation, wait.
func (n *Node) ORWait(p *sim.Proc) bool {
	or, _ := n.m.ctl.or.wait(p, n.id)
	return or
}

// Reduce performs a blocking all-node reduction of val under op and
// returns the combined value on every node.
//
// The operator is fixed per machine per round; mixing operators across
// nodes within one round is a programming error that this implementation
// does not detect (the first arriving operator wins). The evaluated
// applications only ever use one operator per call site.
func (n *Node) Reduce(p *sim.Proc, val float64, op ReduceOp) float64 {
	r := n.m.ctl.reduce
	r.redOp = op
	r.enter(n.id, false, val)
	_, out := r.wait(p, n.id)
	return out
}
