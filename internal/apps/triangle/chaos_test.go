package triangle

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cm5"
	"repro/internal/reliable"
)

// TestLossyRunsStayExact: with the reliable transport attached, both the
// hand-coded AM variant and ORPC survive packet loss and duplication with
// a bit-exact solution count. (Triangle's level quiesce compares global
// sent vs received counts, so without retransmission a single lost insert
// would spin the reduction loop forever.)
func TestLossyRunsStayExact(t *testing.T) {
	want := cfg5.BoardCounts().Solutions
	for _, sys := range []apps.System{apps.AM, apps.ORPC} {
		cfg := cfg5
		cfg.Fault = &cm5.FaultPlan{Seed: 21, DropProb: 0.02, DupProb: 0.01}
		cfg.Reliable = &reliable.Options{}
		res, err := Run(sys, 4, cfg)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if res.Answer != want {
			t.Errorf("%v: solutions = %d, want %d", sys, res.Answer, want)
		}
	}
}

// TestLossyDeterminism: the lossy ORPC run is reproducible.
func TestLossyDeterminism(t *testing.T) {
	run := func() (apps.Result, error) {
		cfg := cfg5
		cfg.Fault = &cm5.FaultPlan{Seed: 4, DropProb: 0.05}
		cfg.Reliable = &reliable.Options{}
		return Run(apps.ORPC, 3, cfg)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Answer != b.Answer {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Elapsed, a.Answer, b.Elapsed, b.Answer)
	}
}
