package cm5

import "repro/internal/sim"

// CostModel holds every virtual-time constant charged by the machine model
// and the software layers above it. All durations are virtual time.
//
// The default values (DefaultCostModel) are calibrated so that the
// microbenchmarks of the paper come out at their measured values:
//
//	null AM round trip            ~13 us   (Table 1)
//	null ORPC round trip          ~14 us   (Table 1)
//	null TRPC, idle server        ~21 us   (Table 1: +7 us thread create)
//	null TRPC, busy server        ~74 us   (Table 1: +7+52 us create+switch)
//	bulk transfer                 +~40 us  (section 4.1.2)
type CostModel struct {
	// Data network.
	WireLatency        sim.Duration // one-way transit time of a packet
	WireJitter         sim.Duration // extra uniform latency in [0, WireJitter); 0 = none
	PacketSendOverhead sim.Duration // CPU cost to inject a small packet
	PacketRecvOverhead sim.Duration // CPU cost to eject a packet during poll
	PollEmpty          sim.Duration // CPU cost of a poll that finds nothing
	NICQueueCap        int          // per-node input queue capacity, packets

	// Bulk transfer (the CM-5 scopy block-transfer primitive). A transfer
	// larger than MaxPayload bytes must use the bulk path.
	BulkSetup   sim.Duration // fixed port-allocation/setup cost
	BulkPerByte sim.Duration // per-byte streaming cost (sender CPU is busy)
	MaxPayload  int          // largest small-packet payload, bytes

	// Thread package.
	ThreadCreate  sim.Duration // find + initialize a thread structure
	ContextSwitch sim.Duration // full save+restore between two contexts
	YieldCheck    sim.Duration // cost of a yield that finds nothing to do
	LockOp        sim.Duration // uncontended lock/unlock/signal bookkeeping

	// Control network.
	BarrierLatency sim.Duration // hardware barrier, all-node
	ReduceLatency  sim.Duration // hardware reduction/global-OR combine time

	// InterruptOverhead is the cost of taking a message interrupt
	// (trap, register spill, return). "Taking interrupts is fairly
	// expensive on the CM-5" (section 4) — which is why the paper's
	// applications poll; the interrupt-mode experiments quantify that
	// choice.
	InterruptOverhead sim.Duration

	// Handler and stub layers.
	HandlerDispatch sim.Duration // invoke a handler from a received packet
	StubClient      sim.Duration // RPC client stub (marshal, call bookkeeping)
	StubServer      sim.Duration // RPC server stub (unmarshal, dispatch checks)
}

// DefaultCostModel returns the calibrated CM-5 constants. See CostModel.
func DefaultCostModel() CostModel {
	return CostModel{
		WireLatency:        sim.Micros(2.3),
		PacketSendOverhead: sim.Micros(1.6),
		PacketRecvOverhead: sim.Micros(1.4),
		PollEmpty:          sim.Micros(0.4),
		NICQueueCap:        128,

		BulkSetup:   sim.Micros(40),
		BulkPerByte: sim.Micros(0.12),
		MaxPayload:  16,

		ThreadCreate:  sim.Micros(7),
		ContextSwitch: sim.Micros(52),
		YieldCheck:    sim.Micros(0.5),
		LockOp:        sim.Micros(0.3),

		BarrierLatency: sim.Micros(5),
		ReduceLatency:  sim.Micros(7),

		InterruptOverhead: sim.Micros(50),

		HandlerDispatch: sim.Micros(1.0),
		StubClient:      sim.Micros(0.5),
		StubServer:      sim.Micros(0.5),
	}
}
