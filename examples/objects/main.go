// Objects: a miniature Orca-style shared-object program (the paper's
// second validation vehicle — "we have ported the Orca system to the
// CM-5... performance improvements that ranged from 2 to 30 times").
// A bounded job queue lives on node 0 as a shared object with guarded
// operations; producers and consumers on other nodes invoke Put and Get,
// which block on Orca guards — and run as Optimistic Active Messages
// whenever the guard holds.
package main

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/objects"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

type queue struct {
	items []int64
	cap   int
}

func run(mode rpc.Mode) {
	eng := sim.New(42)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 4, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: mode})
	r := objects.New(rt)

	obj := r.NewObject("queue", 0, &queue{cap: 4})
	put := obj.DefineOp("put",
		func(s any, arg []byte) bool { q := s.(*queue); return len(q.items) < q.cap },
		func(s any, arg []byte) []byte {
			q := s.(*queue)
			q.items = append(q.items, rpc.NewDec(arg).I64())
			return nil
		})
	get := obj.DefineOp("get",
		func(s any, arg []byte) bool { return len(s.(*queue).items) > 0 },
		func(s any, arg []byte) []byte {
			q := s.(*queue)
			v := q.items[0]
			q.items = q.items[1:]
			e := rpc.NewEnc(8)
			e.I64(v)
			return e.Bytes()
		})

	const jobs = 40
	consumed := 0
	elapsed, err := u.SPMD(func(c threads.Ctx, node int) {
		switch node {
		case 1, 2: // producers
			for i := int64(0); i < jobs/2; i++ {
				e := rpc.NewEnc(8)
				e.I64(int64(node)*1000 + i)
				put.Invoke(c, e.Bytes())
			}
		case 3: // consumer, slower than the producers
			for consumed < jobs {
				c.P.Charge(sim.Micros(60))
				rpc.NewDec(get.Invoke(c, nil)).I64()
				consumed++
			}
		}
	})
	if err != nil {
		panic(err)
	}
	ps, gs := put.Stats(), get.Stats()
	fmt.Printf("%-4v  elapsed=%7.1fus  put: %d OAMs / %d in-handler / %d promoted"+
		"  get: %d OAMs / %d in-handler\n",
		mode, float64(elapsed)/1000,
		ps.OAMs, ps.Successes, ps.Promoted, gs.OAMs, gs.Successes)
}

func main() {
	fmt.Println("bounded shared queue (cap 4), 2 producers, 1 slow consumer:")
	run(rpc.ORPC)
	run(rpc.TRPC)
	fmt.Println("guarded operations block when the guard is false; under ORPC they")
	fmt.Println("run inside message handlers whenever the guard already holds.")
}
