// Command stubgen compiles remote-procedure specifications (.rpc files)
// into Go stub code over the Optimistic RPC runtime:
//
//	stubgen -in spec.rpc -out spec_gen.go
//
// See package stubc for the specification language.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stubc"
)

func main() {
	in := flag.String("in", "", "input .rpc specification file")
	out := flag.String("out", "", "output .go file (default: stdout)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "stubgen: -in is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %v\n", err)
		os.Exit(1)
	}
	f, err := stubc.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %s: %v\n", *in, err)
		os.Exit(1)
	}
	code, err := stubc.Generate(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %v\n", err)
		os.Exit(1)
	}
}
