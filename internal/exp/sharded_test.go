package exp

import (
	"reflect"
	"testing"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/sor"
	"repro/internal/apps/triangle"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// shardCounts is the sweep of the sharded-equivalence suite: the
// sequential kernel plus two genuinely parallel widths.
var shardCounts = []int{1, 2, 4}

// appRecord captures everything the equivalence contract pins for one
// run: the application's own result (answer, virtual elapsed, every
// statistic), the engine's charged virtual CPU time, and the FNV hash of
// the canonical schedule trace (every process resume/yield/exit with its
// timestamp — a byte-exact transcript of the schedule).
type appRecord struct {
	res       apps.Result
	charged   sim.Duration
	traceHash uint64
	traceLen  int
}

// runShardedApp runs one app under ORPC at the given shard count and
// scheduling mode with a canonical tracer attached.
func runShardedApp(t *testing.T, app string, shards int, optimistic bool) appRecord {
	t.Helper()
	tr := sim.NewCanonicalTracer()
	var eng *sim.Engine
	observe := func(u *am.Universe, _ *rpc.Runtime) {
		eng = u.Machine().Engine()
		eng.SetTracer(tr)
	}
	var res apps.Result
	var err error
	switch app {
	case "triangle":
		res, err = triangle.Run(apps.ORPC, 4, triangle.Config{
			Side: 5, Empty: -1, Seed: 101, Shards: shards, Optimistic: optimistic, Observe: observe})
	case "tsp":
		res, err = tsp.Run(apps.ORPC, 3, tsp.Config{
			Cities: 9, Seed: 102, Shards: shards, Optimistic: optimistic, Observe: observe})
	case "sor":
		res, err = sor.Run(apps.ORPC, 4, sor.Config{
			Rows: 24, Cols: 16, Iters: 4, Seed: 11, Shards: shards, Optimistic: optimistic, Observe: observe})
	case "water":
		res, err = water.Run(apps.ORPC, 4, true, water.Config{
			Mols: 64, Iters: 2, Seed: 103, Shards: shards, Optimistic: optimistic, Observe: observe})
	default:
		t.Fatalf("unknown app %q", app)
	}
	if err != nil {
		t.Fatalf("%s (shards=%d): %v", app, shards, err)
	}
	if eng == nil {
		t.Fatalf("%s (shards=%d): Observe hook never ran", app, shards)
	}
	if eng.Shards() != shards {
		t.Fatalf("%s: engine has %d shards, want %d", app, eng.Shards(), shards)
	}
	text := tr.Text()
	return appRecord{res: res, charged: eng.Charged(), traceHash: tr.Hash(), traceLen: len(text)}
}

// TestShardedEquivalenceApps: for all four applications, a sharded run is
// indistinguishable from the sequential one — same result struct (answer,
// elapsed virtual time, every counter), same Charged(), and a canonical
// schedule trace that hashes identically.
func TestShardedEquivalenceApps(t *testing.T) {
	for _, app := range []string{"triangle", "tsp", "sor", "water"} {
		seq := runShardedApp(t, app, 1, false)
		if seq.traceLen == 0 {
			t.Fatalf("%s: sequential run produced an empty schedule trace", app)
		}
		for _, s := range shardCounts[1:] {
			got := runShardedApp(t, app, s, false)
			if got.res != seq.res {
				t.Errorf("%s: result at shards=%d differs from sequential:\n got %+v\nwant %+v",
					app, s, got.res, seq.res)
			}
			if got.charged != seq.charged {
				t.Errorf("%s: Charged() at shards=%d = %v, want %v", app, s, got.charged, seq.charged)
			}
			if got.traceHash != seq.traceHash || got.traceLen != seq.traceLen {
				t.Errorf("%s: schedule trace at shards=%d (hash %#x, %d bytes) differs from sequential (hash %#x, %d bytes)",
					app, s, got.traceHash, got.traceLen, seq.traceHash, seq.traceLen)
			}
		}
	}
}

// TestShardedEquivalenceChaos: the full quick chaos sweep — loss,
// duplication, a mid-run crash, and a permanent partition — produces
// byte-identical rows (including the fault-trace hashes) at every shard
// count.
func TestShardedEquivalenceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep three times")
	}
	savedShards, savedWorkers := Shards, Workers
	defer func() { Shards, Workers = savedShards, savedWorkers }()
	Workers = 1

	var seq []ChaosRow
	for _, s := range shardCounts {
		Shards = s
		rows, err := Chaos(Scale{Quick: true})
		if err != nil {
			t.Fatalf("chaos sweep (shards=%d): %v", s, err)
		}
		for i, r := range rows {
			if !r.OK {
				t.Errorf("chaos row %d (shards=%d): wrong answer", i, s)
			}
		}
		if s == 1 {
			seq = rows
			continue
		}
		if !reflect.DeepEqual(rows, seq) {
			for i := range rows {
				if rows[i] != seq[i] {
					t.Errorf("chaos row %d at shards=%d differs from sequential:\n got %+v\nwant %+v",
						i, s, rows[i], seq[i])
				}
			}
		}
	}
}
