package plot

import (
	"strings"
	"testing"
)

func TestSVGStructure(t *testing.T) {
	p := &Plot{
		Title: "T & <x>", XLabel: "procs", YLabel: "speedup",
		LogX: true, LogY: true, Ideal: true,
		Series: []Series{
			{Name: "AM", X: []float64{1, 2, 4}, Y: []float64{1, 2, 3.9}},
			{Name: "TRPC", X: []float64{1, 2, 4}, Y: []float64{0.5, 1, 1.9}, Dashed: true},
		},
	}
	out := p.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "T &amp; &lt;x&gt;", "procs", "speedup",
		"polyline", "AM", "TRPC", `stroke-dasharray="5,3"`, `stroke-dasharray="2,3"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One polyline per series plus legend lines and markers.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
}

func TestLogTicksArePowersOfTwo(t *testing.T) {
	s := newScale(1, 128, true, 0, 100)
	ticks := s.ticks()
	if len(ticks) != 8 { // 1,2,4,...,128
		t.Fatalf("ticks = %v", ticks)
	}
	for i, v := range ticks {
		if v != float64(int(1)<<i) {
			t.Fatalf("tick %d = %v", i, v)
		}
	}
}

func TestLinearTicksReasonable(t *testing.T) {
	s := newScale(0, 97, false, 0, 100)
	ticks := s.ticks()
	if len(ticks) < 4 || len(ticks) > 12 {
		t.Fatalf("tick count = %d (%v)", len(ticks), ticks)
	}
}

func TestScaleMapsEndpoints(t *testing.T) {
	s := newScale(1, 100, false, 10, 110)
	if s.at(1) != 10 || s.at(100) != 110 {
		t.Fatalf("endpoints: %v %v", s.at(1), s.at(100))
	}
	ls := newScale(1, 16, true, 0, 100)
	if ls.at(4) != 50 {
		t.Fatalf("log midpoint = %v, want 50", ls.at(4))
	}
}

func TestDegenerateInputs(t *testing.T) {
	// No series, zero values, log of zero: must not panic.
	empty := &Plot{Title: "e", LogX: true, LogY: true}
	if !strings.Contains(empty.SVG(), "<svg") {
		t.Fatal("empty plot did not render")
	}
	flat := &Plot{Series: []Series{{Name: "f", X: []float64{3, 3}, Y: []float64{0, 0}}}}
	if !strings.Contains(flat.SVG(), "polyline") {
		t.Fatal("flat plot did not render")
	}
}

func TestSortSeriesPoints(t *testing.T) {
	ss := []Series{{Name: "a", X: []float64{4, 1, 2}, Y: []float64{40, 10, 20}}}
	SortSeriesPoints(ss)
	if ss[0].X[0] != 1 || ss[0].Y[0] != 10 || ss[0].X[2] != 4 || ss[0].Y[2] != 40 {
		t.Fatalf("not sorted: %+v", ss[0])
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(128) != "128" || fmtTick(0.5) != "0.5" {
		t.Fatalf("fmtTick: %q %q", fmtTick(128), fmtTick(0.5))
	}
}
