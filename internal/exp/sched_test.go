package exp

import (
	"reflect"
	"testing"
)

// TestSchedQuick runs the quick control-plane chaos grid. Sched itself
// replays every cell's event record through the invariant checker, so a
// passing sweep already proves safety and liveness; the assertions here
// pin that the fault mixes actually exercised the machinery they name.
func TestSchedQuick(t *testing.T) {
	rows, err := Sched(Scale{Quick: true})
	if err != nil {
		t.Fatalf("sched sweep: %v", err)
	}
	if len(rows) != 8 { // 4 fault mixes x 2 lease timeouts x 1 heartbeat period
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		switch r.Fault {
		case "clean":
			if r.Dead != 0 || r.Migrations != 0 {
				t.Errorf("clean cell lease=%v: dead=%d migrations=%d, want 0",
					r.Lease, r.Dead, r.Migrations)
			}
			if r.FaultHash != 0 {
				t.Errorf("clean cell lease=%v: FaultHash=%#x, want 0 (no fault layer)",
					r.Lease, r.FaultHash)
			}
		case "lossy":
			if r.Retransmits == 0 {
				t.Errorf("lossy cell lease=%v: no retransmits", r.Lease)
			}
		case "crash":
			if r.Dead == 0 {
				t.Errorf("crash cell lease=%v: agent never declared dead", r.Lease)
			}
			if r.Migrations == 0 && r.Expiries == 0 {
				t.Errorf("crash cell lease=%v: no lease reclaimed off the crashed agent", r.Lease)
			}
		case "flap":
			if r.Dead == 0 || r.Recovered == 0 {
				t.Errorf("flap cell lease=%v: dead=%d recovered=%d, want both > 0",
					r.Lease, r.Dead, r.Recovered)
			}
		default:
			t.Errorf("unknown fault mix %q", r.Fault)
		}
		if r.Events == 0 {
			t.Errorf("%s cell lease=%v: empty event record", r.Fault, r.Lease)
		}
	}
}

// TestShardedEquivalenceSched: the whole control-plane chaos grid —
// including the event-record hashes and fault-trace hashes — is
// byte-identical at every shard count.
func TestShardedEquivalenceSched(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sched sweep three times")
	}
	savedShards, savedWorkers := Shards, Workers
	defer func() { Shards, Workers = savedShards, savedWorkers }()
	Workers = 1

	var seq []SchedRow
	for _, s := range shardCounts {
		Shards = s
		rows, err := Sched(Scale{Quick: true})
		if err != nil {
			t.Fatalf("sched sweep (shards=%d): %v", s, err)
		}
		if s == 1 {
			seq = rows
			continue
		}
		if !reflect.DeepEqual(rows, seq) {
			for i := range rows {
				if rows[i] != seq[i] {
					t.Errorf("sched row %d at shards=%d differs from sequential:\n got %+v\nwant %+v",
						i, s, rows[i], seq[i])
				}
			}
		}
	}
}
