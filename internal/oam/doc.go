// Package oam implements Optimistic Active Messages, the paper's central
// mechanism: execute arbitrary user code in an Active Message handler
// under the optimistic assumptions that it will not block and will finish
// quickly, and detect at run time when the assumptions fail — in which
// case the execution aborts and is promoted to a real thread.
//
// A remote procedure body is written once against an Env capability and
// runs in one of two modes. In optimistic mode (inside the handler, on the
// polling context's stack) Env.Lock is a try-lock that aborts when the
// lock is held, Env.Await aborts when its predicate is false, Env.Send can
// abort when the network is full (strict mode), and Env.Compute aborts
// past the handler time budget. In thread mode the same calls block
// normally. This mirrors the checks the paper's stub compiler inserts into
// generated handler code.
//
// Aborts are side-effect free: locks acquired during the attempt are
// released, and outbound messages are buffered until the body commits, so
// an aborted attempt can simply be re-executed. The paper's prototype
// restriction — a remote procedure may modify global state only after it
// has acquired all its locks and tested all its conditions — applies to
// user state the Env cannot see; the stub compiler (package stubc)
// generates bodies that obey it.
//
// Three abort strategies are provided, matching section 2 of the paper:
//
//   - Rerun (the prototype's choice): undo and re-execute the entire
//     procedure as a newly created thread.
//   - Continuation: promote the suspended execution itself to a thread —
//     lazy thread creation; no re-execution.
//   - Nack: undo and tell the sender to back off and retry.
package oam
