// Package rpc is the remote-procedure-call runtime of Optimistic RPC: the
// layer the stub compiler (package stubc) targets.
//
// A Runtime binds to a universe and dispatches remote procedures in one of
// two modes, matching the paper's two systems:
//
//   - TRPC (Traditional RPC): every incoming call creates a thread, as a
//     conventional RPC system would.
//   - ORPC (Optimistic RPC): every incoming call first executes as an
//     Optimistic Active Message (package oam); only calls that would
//     block, congest the network, or run too long pay for a thread.
//
// Procedures are defined by an Impl working on marshaled byte records
// (package rpc's Enc/Dec wire format); generated stubs supply the typed
// surface. Synchronous calls block the calling thread until the reply
// arrives — thanks to the scheduler-in-context design of package threads,
// an idle client pays no context switch for this. Asynchronous calls are
// fire-and-forget, like the Triangle puzzle's table-update RPCs.
//
// Under the Nack abort strategy the server refuses a call that cannot run
// optimistically; the runtime transparently backs off (bounded
// exponential) and retries the call. Asynchronous procedures always
// promote instead of nacking: there is no caller-side thread to wake.
package rpc
