package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeTable1 golden-checks the header of a cheap experiment.
func TestSmokeTable1(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "Table 1") {
		t.Errorf("missing table title:\n%s", got)
	}
	if !strings.Contains(errb.String(), "[table1 done in ") {
		t.Errorf("missing completion line:\n%s", errb.String())
	}
}

// TestSmokeCSV: CSV mode emits a comma-joined header row.
func TestSmokeCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "-csv", "abortcost"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Case,Cost (us)") {
		t.Errorf("missing CSV header:\n%s", out.String())
	}
}

// TestSmokeProfiles: -cpuprofile and -memprofile write non-empty pprof
// files covering the run.
func TestSmokeProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "-cpuprofile", cpu, "-memprofile", mem, "table1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestSmokeProfileBadPath: an unwritable profile path fails cleanly.
func TestSmokeProfileBadPath(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "-cpuprofile", t.TempDir() + "/no/such/dir/cpu.pprof", "table1"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cpuprofile") {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestSmokeUnknownExperiment: bad names exit 2 without output.
func TestSmokeUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown experiment "nosuch"`) {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestUnknownListsSubcommands: the unknown-name diagnostic names every
// registered subcommand (including trace and metrics) so a typo is
// self-correcting.
func TestUnknownListsSubcommands(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	diag := errb.String()
	for _, name := range subcommands {
		if !strings.Contains(diag, name) {
			t.Errorf("diagnostic does not list subcommand %q:\n%s", name, diag)
		}
	}
}

// TestSmokeKV runs the key-value service grid at quick scale and
// golden-checks the table header and that every system shows up.
func TestSmokeKV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "kv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"KV service under open-loop load", "steady", "lossy", "AM", "ORPC", "TRPC", "p999(us)"} {
		if !strings.Contains(got, want) {
			t.Errorf("kv output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(errb.String(), "[kv done in ") {
		t.Errorf("missing completion line:\n%s", errb.String())
	}
}

// TestCommandTable: the subcommand table is internally consistent —
// groups are non-empty and expand to runnable members, every
// non-group, non-observed entry has a runner, and names are unique.
func TestCommandTable(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands {
		if seen[c.name] {
			t.Errorf("duplicate subcommand %q", c.name)
		}
		seen[c.name] = true
		if c.about == "" {
			t.Errorf("subcommand %q has no description", c.name)
		}
		isGroup := c.name == "all" || c.name == "micro"
		isObserved := c.name == "trace" || c.name == "metrics"
		if (c.run == nil) != (isGroup || isObserved) {
			t.Errorf("subcommand %q: runner/group mismatch", c.name)
		}
	}
	for _, g := range []string{"all", "micro"} {
		members := group(g)
		if len(members) == 0 {
			t.Fatalf("group %q is empty", g)
		}
		for _, m := range members {
			if m.run == nil {
				t.Errorf("group %q contains non-runnable %q", g, m.name)
			}
		}
	}
	for _, name := range []string{"kv", "sched"} {
		c := findCommand(name)
		if c == nil || c.run == nil {
			t.Fatalf("subcommand %q not registered", name)
		}
		if !c.all {
			t.Errorf("subcommand %q not in the all group", name)
		}
	}
}

// TestUsageListsSubcommands: -help usage is generated from the command
// table, so it names every subcommand with its description.
func TestUsageListsSubcommands(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-help"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	usage := errb.String()
	for _, c := range commands {
		if !strings.Contains(usage, c.name) || !strings.Contains(usage, c.about) {
			t.Errorf("usage does not describe subcommand %q:\n%s", c.name, usage)
		}
	}
}

// TestSmokeTrace: the trace subcommand writes a valid Chrome trace-event
// JSON file with events for every node.
func TestSmokeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "trace", "tsp", "-p", "4", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if !strings.Contains(errb.String(), "perfetto") {
		t.Errorf("missing Perfetto pointer:\n%s", errb.String())
	}
}

// TestSmokeMetrics: the metrics subcommand prints the instrument
// registry and the virtual-time profile.
func TestSmokeMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "metrics", "triangle", "-p", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"counter am/handlers_run", "gauge", "hist", "virtual CPU profile:"} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics output missing %q:\n%s", want, got)
		}
	}
}

// TestObserveBadApp: trace with a bogus app fails with a diagnostic.
func TestObserveBadApp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"trace", "nosuch"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), `unknown app "nosuch"`) {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestSmokeChaos runs the fault-injection sweep at quick scale and
// golden-checks both tables' headers and that every row validated.
func TestSmokeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "chaos"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"Chaos sweep",
		"Drop%  Crashes",
		"Retx",
		"GaveUp",
		"Per-node fault and recovery counters",
		"(crashed)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NO") {
		t.Errorf("a chaos row failed validation:\n%s", got)
	}
}
