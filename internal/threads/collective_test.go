package threads

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// multiRig builds an n-node machine with a scheduler per node.
func multiRig(t *testing.T, n int) (*sim.Engine, []*Scheduler) {
	t.Helper()
	eng := sim.New(13)
	m := cm5.NewMachine(eng, n, cm5.DefaultCostModel())
	ss := make([]*Scheduler, n)
	for i := range ss {
		ss[i] = NewScheduler(m.Node(i))
	}
	t.Cleanup(eng.Shutdown)
	return eng, ss
}

func TestThreadBarrier(t *testing.T) {
	eng, ss := multiRig(t, 4)
	releases := make([]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		ss[i].Bootstrap("main", func(c Ctx) {
			c.P.Charge(sim.Micros(float64(5 * i)))
			ss[i].Barrier(c)
			releases[i] = c.P.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if releases[i] != releases[0] {
			t.Fatalf("barrier release skew: %v", releases)
		}
	}
	if releases[0] <= sim.Time(sim.Micros(15)) {
		t.Fatalf("released before last arrival: %v", releases[0])
	}
}

// TestBarrierAllowsOtherThreads: while main waits at the barrier, another
// thread on the same node must get the CPU.
func TestBarrierAllowsOtherThreads(t *testing.T) {
	eng, ss := multiRig(t, 2)
	sideRan := false
	ss[0].Bootstrap("main", func(c Ctx) {
		ss[0].Create(c, "side", false, func(cc Ctx) {
			cc.P.Charge(sim.Micros(1))
			sideRan = true
		})
		ss[0].Barrier(c)
		if !sideRan {
			t.Error("side thread did not run during barrier wait")
		}
	})
	ss[1].Bootstrap("main", func(c Ctx) {
		c.P.Charge(sim.Micros(500)) // arrive late
		ss[1].Barrier(c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sideRan {
		t.Fatal("side thread never ran")
	}
}

func TestThreadReduce(t *testing.T) {
	eng, ss := multiRig(t, 4)
	got := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		ss[i].Bootstrap("main", func(c Ctx) {
			got[i] = ss[i].Reduce(c, float64(i+1), cm5.ReduceSum)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got[i] != 10 {
			t.Fatalf("node %d reduce = %v, want 10", i, got[i])
		}
	}
}

func TestThreadORSplitPhase(t *testing.T) {
	eng, ss := multiRig(t, 3)
	got := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		ss[i].Bootstrap("main", func(c Ctx) {
			ss[i].OREnter(i == 1)
			c.P.Charge(sim.Micros(3)) // overlapped work
			got[i] = ss[i].ORWait(c)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !got[i] {
			t.Fatalf("node %d OR = false, want true", i)
		}
	}
}

// TestFreeResume: a thread that blocks and is woken by a kernel event
// while it is the acting scheduler resumes without a context switch.
func TestFreeResume(t *testing.T) {
	eng, ss := multiRig(t, 1)
	s := ss[0]
	f := &Flag{}
	var blockedAt, wokeAt sim.Time
	s.Bootstrap("main", func(c Ctx) {
		blockedAt = c.P.Now()
		f.Wait(c)
		wokeAt = c.P.Now()
	})
	eng.After(sim.Micros(30), func() { f.Set() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	_ = blockedAt
	if wokeAt != sim.Time(sim.Micros(30)) {
		t.Fatalf("woke at %v, want exactly 30us (free resume, no switch)", wokeAt)
	}
	st := s.Stats()
	if st.FreeResumes != 1 {
		t.Fatalf("FreeResumes = %d, want 1", st.FreeResumes)
	}
	if st.SwitchHalves != 0 {
		t.Fatalf("SwitchHalves = %d, want 0", st.SwitchHalves)
	}
}

// TestBlockedThreadStartsNewThreadLiveStack: a new thread created while
// the only other thread is blocked starts via the live-stack path, and
// the blocked thread's later restore is the only full switch.
func TestBlockedThreadStartsNewThreadLiveStack(t *testing.T) {
	eng, ss := multiRig(t, 1)
	s := ss[0]
	f := &Flag{}
	var childStart sim.Time
	s.Bootstrap("main", func(c Ctx) {
		s.Create(c, "child", false, func(cc Ctx) {
			childStart = cc.P.Now()
			cc.P.Charge(sim.Micros(5))
			f.Set()
		})
		created := c.P.Now()
		f.Wait(c)
		// The child must have started immediately when we blocked: we
		// became the acting scheduler and called it on the live stack.
		if childStart != created {
			t.Errorf("child started %v, want %v (live-stack from blocked context)",
				childStart, created)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LiveStackStart != 2 {
		t.Fatalf("LiveStackStart = %d, want 2", st.LiveStackStart)
	}
}
