package rpc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestWireRoundTripBasic(t *testing.T) {
	e := NewEnc(64)
	e.U8(250)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I32(-12345)
	e.I64(-1 << 50)
	e.F32(3.25)
	e.F64(-2.5e300)
	e.Buf([]byte("hello"))
	e.String("world")
	e.F64s([]float64{1, 2.5, -3})
	e.I32s([]int32{-1, 0, 7})
	e.U64s([]uint64{9, 8})

	d := NewDec(e.Bytes())
	if d.U8() != 250 || !d.Bool() || d.Bool() {
		t.Fatal("u8/bool mismatch")
	}
	if d.U32() != 0xdeadbeef || d.U64() != 1<<60 {
		t.Fatal("u32/u64 mismatch")
	}
	if d.I32() != -12345 || d.I64() != -1<<50 {
		t.Fatal("i32/i64 mismatch")
	}
	if d.F32() != 3.25 || d.F64() != -2.5e300 {
		t.Fatal("float mismatch")
	}
	if !bytes.Equal(d.Buf(), []byte("hello")) || d.String() != "world" {
		t.Fatal("buf/string mismatch")
	}
	f := d.F64s()
	if len(f) != 3 || f[0] != 1 || f[1] != 2.5 || f[2] != -3 {
		t.Fatal("f64s mismatch")
	}
	i := d.I32s()
	if len(i) != 3 || i[0] != -1 || i[2] != 7 {
		t.Fatal("i32s mismatch")
	}
	u := d.U64s()
	if len(u) != 2 || u[0] != 9 || u[1] != 8 {
		t.Fatal("u64s mismatch")
	}
	d.Done()
}

// TestWireProperty: any (u64, f64, bytes, i32) tuple round-trips.
func TestWireProperty(t *testing.T) {
	f := func(a uint64, b float64, c []byte, d int32, s string) bool {
		if math.IsNaN(b) {
			b = 0 // NaN != NaN; normalize
		}
		e := NewEnc(32)
		e.U64(a)
		e.F64(b)
		e.Buf(c)
		e.I32(d)
		e.String(s)
		dec := NewDec(e.Bytes())
		ok := dec.U64() == a && dec.F64() == b &&
			bytes.Equal(dec.Buf(), c) && dec.I32() == d && dec.String() == s
		dec.Done()
		return ok && dec.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short read")
		}
	}()
	NewDec([]byte{1, 2}).U64()
}

func TestDoneTrailingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on trailing bytes")
		}
	}()
	e := NewEnc(8)
	e.U64(7)
	d := NewDec(e.Bytes())
	d.U32()
	d.Done()
}

func TestEmptyBuffers(t *testing.T) {
	e := NewEnc(8)
	e.Buf(nil)
	e.F64s(nil)
	e.String("")
	d := NewDec(e.Bytes())
	if len(d.Buf()) != 0 || len(d.F64s()) != 0 || d.String() != "" {
		t.Fatal("empty buffers mangled")
	}
	d.Done()
}
