package threads

import (
	"fmt"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// threadState tracks a thread through its life cycle.
type threadState uint8

const (
	stateNew     threadState = iota // created, waiting for first run
	stateReady                      // suspended but runnable
	stateRunning                    // on the CPU
	stateBlocked                    // waiting (mutex, cond, join, rpc)
	stateDead                       // body returned
)

func (st threadState) String() string {
	switch st {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(st))
	}
}

// Ctx is an execution context on a node's CPU: either a thread (T != nil)
// or the handler/idle context (T == nil). Every operation that charges
// virtual time or can block takes a Ctx.
type Ctx struct {
	P *sim.Proc
	T *Thread
	S *Scheduler
}

// Node returns the node whose CPU this context occupies.
func (c Ctx) Node() *cm5.Node { return c.S.Node() }

// IsHandler reports whether this context is a handler/idle context, which
// must not block.
func (c Ctx) IsHandler() bool { return c.T == nil }

// Thread is a user-level thread: a descriptor plus (in this model) a
// simulation process standing in for its stack.
type Thread struct {
	sched   *Scheduler
	name    string
	body    func(Ctx)
	proc    *sim.Proc
	state   threadState
	prepaid bool // restore cost prepaid by a yield's full-switch charge
	joiners []*Thread
	done    bool
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// State returns a human-readable state ("new", "ready", "running",
// "blocked", "dead") for diagnostics.
func (t *Thread) State() string { return t.state.String() }

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.done }

// run is the thread's process body.
func (t *Thread) run(p *sim.Proc) {
	c := Ctx{P: p, T: t, S: t.sched}
	t.body(c)
	t.state = stateDead
	t.done = true
	if s := t.sched; s.probe != nil {
		s.probe.ThreadExited(s.sh.Now(), s.node.ID(), t)
	}
	for _, j := range t.joiners {
		t.sched.makeReady(j, false)
	}
	t.joiners = nil
	// The thread's stack is dead: the next ready thread, if new, starts
	// via the live-stack optimization.
	t.sched.exitDispatch(p)
}

// Join blocks the calling thread until t's body has returned.
func (t *Thread) Join(c Ctx) {
	if c.S != t.sched {
		panic("threads: Join across nodes")
	}
	if t.done {
		return
	}
	if c.T == nil {
		panic("threads: Join from handler context")
	}
	t.joiners = append(t.joiners, c.T)
	t.sched.blockCurrent(c)
}

// Block suspends the calling thread until someone calls Resume on it.
// It is the low-level wait primitive beneath RPC reply waiting.
func (s *Scheduler) Block(c Ctx) { s.blockCurrent(c) }

// Resume makes a blocked thread runnable, at the front or back of the
// ready queue. It may be called from any context on the same node,
// including handlers; it never preempts the caller.
func (t *Thread) Resume(front bool) {
	t.sched.makeReady(t, front)
}

// Flag is a single-waiter completion flag: the synchronization between an
// RPC client thread and the reply handler. Set may happen before Wait
// (fast reply) or after (slow reply); both orders work.
type Flag struct {
	set    bool
	waiter *Thread
}

// Wait blocks the calling thread until the flag is set. If the flag is
// already set it returns immediately.
func (f *Flag) Wait(c Ctx) {
	if f.set {
		return
	}
	if c.T == nil {
		panic("threads: Flag.Wait from handler context")
	}
	if f.waiter != nil {
		panic("threads: Flag has two waiters")
	}
	f.waiter = c.T
	c.S.blockCurrent(c)
}

// Set sets the flag and wakes the waiter, if any, scheduling it at the
// front of the ready queue (replies run promptly, like incoming calls).
func (f *Flag) Set() {
	if f.set {
		panic("threads: Flag set twice")
	}
	f.set = true
	if f.waiter != nil {
		w := f.waiter
		f.waiter = nil
		w.Resume(true)
	}
}

// IsSet reports whether Set has been called.
func (f *Flag) IsSet() bool { return f.set }
