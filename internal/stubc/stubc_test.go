package stubc

import (
	"strings"
	"testing"
)

const goodSrc = `
# the TSP interface
package tspgen

rpc GetJob() (route bytes, ok bool)
rpc Best(tour int64) (best int64)
async rpc Extend(pos uint64, ways uint64)
rpc Swap(a f64s, b string) (c i32s, d float32)
rpc Ping()
`

func TestParseGood(t *testing.T) {
	f, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Package != "tspgen" {
		t.Fatalf("package = %q", f.Package)
	}
	if len(f.Procs) != 5 {
		t.Fatalf("procs = %d", len(f.Procs))
	}
	g := f.Procs[0]
	if g.Name != "GetJob" || g.Async || len(g.Ins) != 0 || len(g.Outs) != 2 {
		t.Fatalf("GetJob parsed wrong: %+v", g)
	}
	if g.Outs[0] != (Param{"route", TBytes}) || g.Outs[1] != (Param{"ok", TBool}) {
		t.Fatalf("GetJob outs: %+v", g.Outs)
	}
	e := f.Procs[2]
	if !e.Async || len(e.Ins) != 2 || len(e.Outs) != 0 {
		t.Fatalf("Extend parsed wrong: %+v", e)
	}
	if p := f.Procs[4]; p.Name != "Ping" || len(p.Ins) != 0 || len(p.Outs) != 0 {
		t.Fatalf("Ping parsed wrong: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"rpc Foo()", "before package"},
		{"package p\nrpc foo()", "exported"},
		{"package p\nrpc Foo(x junk)", "unknown type"},
		{"package p\nasync rpc Foo() (x bool)", "cannot have results"},
		{"package p\nrpc Foo(x bool, x int32)", "duplicate parameter"},
		{"package p\nrpc Foo(x bool)\nrpc Foo()", "already declared"},
		{"package p\npackage q\nrpc Foo()", "duplicate package"},
		{"package p\nrpc Foo", "missing ("},
		{"package p\nrpc Foo(x bool", "missing )"},
		{"package p\nrpc Foo() junk", "malformed result"},
		{"package p\nwhatever", "cannot parse"},
		{"package p", "no rpc declarations"},
		{"", "missing package"},
		{"package p\nrpc Foo(a)", "must be `name type`"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", tc.src, err, tc.want)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("package p\n\nrpc Bad(x junk)")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
}

func TestGenerateCompilesShape(t *testing.T) {
	f, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	out := string(code)
	for _, want := range []string{
		"package tspgen",
		"DO NOT EDIT",
		"type GetJobImpl func(e *oam.Env, caller int) ([]byte, bool)",
		"func DefineGetJob(rt *rpc.Runtime, impl GetJobImpl) GetJobProc",
		"func (h GetJobProc) Call(c threads.Ctx, server int) ([]byte, bool)",
		"type ExtendImpl func(e *oam.Env, caller int, pos uint64, ways uint64)",
		"func (h ExtendProc) CallAsync(c threads.Ctx, server int, pos uint64, ways uint64)",
		"rt.DefineAsync(\"Extend\"",
		"rt.Define(\"GetJob\"",
		"func (h PingProc) Stats() rpc.ProcStats",
		"d.Done()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q\n---\n%s", want, out)
		}
	}
}

func TestGenerateMarshalingSymmetric(t *testing.T) {
	f, err := Parse("package p\nrpc M(a int64, b bytes, c f64s) (d uint32, e string)")
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	out := string(code)
	// Client marshals ins in order; server unmarshals in the same order.
	ia := strings.Index(out, "enc.I64(a)")
	ib := strings.Index(out, "enc.Buf(b)")
	ic := strings.Index(out, "enc.F64s(c)")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Fatalf("client marshal order wrong\n%s", out)
	}
	sa := strings.Index(out, "a_a := d.I64()")
	sb := strings.Index(out, "a_b := d.Buf()")
	sc := strings.Index(out, "a_c := d.F64s()")
	if sa < 0 || sb < 0 || sc < 0 || !(sa < sb && sb < sc) {
		t.Fatalf("server unmarshal order wrong\n%s", out)
	}
}

const structSrc = `
package p
struct Point { x float64, y float64 }
struct Blob { id uint64, data bytes }
rpc Move(p Point, d Point) (q Point)
rpc Store(b Blob)
`

func TestParseStructs(t *testing.T) {
	f, err := Parse(structSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Structs) != 2 {
		t.Fatalf("structs = %d", len(f.Structs))
	}
	pt := f.structByName("Point")
	if pt == nil || len(pt.Fields) != 2 || pt.Fields[0] != (Param{"x", TF64}) {
		t.Fatalf("Point parsed wrong: %+v", pt)
	}
	if f.Procs[0].Ins[0].Type != "Point" || f.Procs[0].Outs[0].Type != "Point" {
		t.Fatalf("proc param types wrong: %+v", f.Procs[0])
	}
}

func TestParseStructErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"package p\nstruct point { x bool }\nrpc F(a point)", "exported"},
		{"package p\nstruct P { }\nrpc F(a P)", "no fields"},
		{"package p\nstruct P { x bool, x bool }\nrpc F(a P)", "duplicate field"},
		{"package p\nstruct Q { y bool }\nstruct P { x Q }\nrpc F(a P)", "nested struct"},
		{"package p\nstruct bytes { x bool }\nrpc F(a bool)", "exported"},
		{"package p\nstruct Bytes { x bool }\nstruct Bytes { y bool }\nrpc F(a bool)", "already declared"},
		{"package p\nrpc F(a Unknown)", "unknown type"},
		{"struct P { x bool }", "before package"},
		{"package p\nstruct P x bool", "must be `struct Name"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): err %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestGenerateStructs(t *testing.T) {
	f, err := Parse(structSrc)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	out := string(code)
	for _, want := range []string{
		"type Point struct {",
		"X float64",
		"func encPoint(e *rpc.Enc, v Point)",
		"func decPoint(d *rpc.Dec) Point",
		"type MoveImpl func(e *oam.Env, caller int, p Point, d Point) Point",
		"encPoint(enc, p)",
		"a_p := decPoint(d)",
		"encBlob(e *rpc.Enc, v Blob)",
		"e.Buf(v.Data)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q\n---\n%s", want, out)
		}
	}
}

func TestEncSizeHints(t *testing.T) {
	f, err := Parse("package p\nrpc M(a int64, b bytes)")
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "rpc.NewEnc(12 + len(b))") {
		t.Fatalf("size hint missing:\n%s", code)
	}
}

const compatSrc = `
package p
rpc Get(key uint32) (v int32)
rpc Put(key uint32, v int32)
rpc Ping()
compatible Get Get
compatible Get Put when disjoint(key)
`

func TestParseCompat(t *testing.T) {
	f, err := Parse(compatSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Compat) != 2 {
		t.Fatalf("compat clauses = %d", len(f.Compat))
	}
	if c := f.Compat[0]; c.A != "Get" || c.B != "Get" || c.Disjoint || c.KeyParam != "" {
		t.Fatalf("clause 0 parsed wrong: %+v", c)
	}
	if c := f.Compat[1]; c.A != "Get" || c.B != "Put" || !c.Disjoint || c.KeyParam != "key" {
		t.Fatalf("clause 1 parsed wrong: %+v", c)
	}
}

func TestParseCompatErrors(t *testing.T) {
	const hdr = "package p\nrpc Get(key uint32) (v int32)\nrpc Put(key uint32, v int32)\nasync rpc Fire(tag uint64)\nrpc Name(s string)\nrpc Two(k uint32, j uint32)\nrpc Also(k uint32, j uint32)\n"
	cases := []struct{ src, want string }{
		{hdr + "compatible Get", "must be `compatible A B [when disjoint(param)]`"},
		{hdr + "compatible Get Put extra", "must be `compatible A B [when disjoint(param)]`"},
		{hdr + "compatible Get Missing", "unknown procedure"},
		{"package p\ncompatible Get Get\nrpc Get(key uint32)", "clauses must follow the rpc declarations"},
		{hdr + "compatible Fire Fire", "async procedure"},
		{hdr + "compatible Get Put if disjoint(key)", "expected `when`"},
		{hdr + "compatible Get Put when overlap(key)", "only disjoint(param) is supported"},
		{hdr + "compatible Get Put when disjoint(1key)", "bad disjoint parameter name"},
		{hdr + "compatible Get Put when disjoint(v)", "not an input of Get"},
		{hdr + "compatible Name Name when disjoint(s)", "must be int32, int64, uint32, or uint64"},
		{hdr + "compatible Get Put\ncompatible Get Put when disjoint(key)", "contradicts the clause on line"},
		{hdr + "compatible Get Get\ncompatible Get Get", "duplicate compatible clause"},
		{hdr + "compatible Two Two when disjoint(k)\ncompatible Two Also when disjoint(j)", "already keyed by \"k\""},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", tc.src, err, tc.want)
		}
	}
}

func TestParseCompatErrorHasLine(t *testing.T) {
	_, err := Parse("package p\nrpc Get(key uint32)\n\ncompatible Get Nope")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 4 {
		t.Fatalf("line = %d, want 4", pe.Line)
	}
}

func TestGenerateCompat(t *testing.T) {
	f, err := Parse(compatSrc)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	out := string(code)
	for _, want := range []string{
		"func CompatSpec() rpc.CompatSpec",
		"t := oam.NewCompatTable(3)",
		"t.Allow(0, 0)",
		"t.AllowDisjoint(0, 1)",
		"{Name: \"Get\", Key: keyGet},",
		"{Name: \"Put\", Key: keyPut},",
		"{Name: \"Ping\"},",
		"func keyGet(arg []byte) uint64",
		"return uint64(d.U32())",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q\n---\n%s", want, out)
		}
	}
	// Put's key sits behind no earlier params; Get's neither — but an
	// unannotated service must not grow a CompatSpec at all.
	plain, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	code, err = Generate(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(code), "CompatSpec") {
		t.Error("unannotated service generated a CompatSpec")
	}
}
