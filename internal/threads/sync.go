package threads

// Mutex is a node-local lock shared by the threads and handlers of one
// node. Lock may block and therefore requires a thread context; handlers
// use TryLock — optimistically executed remote procedures (package oam)
// abort when TryLock fails, exactly as the paper's generated checks do.
//
// Unlock hands the lock directly to the first waiter and schedules it at
// the front of the ready queue, so critical sections drain in FIFO order.
type Mutex struct {
	s       *Scheduler
	held    bool
	owner   *Thread // nil when held from a handler context
	waiters []*Thread

	// Contention counters, used by the experiment harness.
	Acquisitions uint64
	Contended    uint64
}

// NewMutex creates a mutex on node scheduler s.
func NewMutex(s *Scheduler) *Mutex { return &Mutex{s: s} }

// Held reports whether the mutex is currently held. Handlers test this
// (or just TryLock) when deciding whether an optimistic execution must
// abort.
func (m *Mutex) Held() bool { return m.held }

// Lock acquires the mutex, blocking the calling thread while it is held.
func (m *Mutex) Lock(c Ctx) {
	m.s.checkOnCPU(c, "Mutex.Lock")
	c.P.Charge(m.s.cost.LockOp)
	m.Acquisitions++
	if !m.held {
		m.held = true
		m.owner = c.T
		return
	}
	if c.T == nil {
		panic("threads: Mutex.Lock would block in handler context; use TryLock")
	}
	m.Contended++
	m.waiters = append(m.waiters, c.T)
	m.s.blockCurrent(c)
	// When we run again the unlocker has transferred ownership to us.
	if m.owner != c.T {
		panic("threads: woke from Lock without ownership")
	}
}

// TryLock acquires the mutex if it is free and reports whether it did.
// Usable from any context, including handlers.
func (m *Mutex) TryLock(c Ctx) bool {
	m.s.checkOnCPU(c, "Mutex.TryLock")
	c.P.Charge(m.s.cost.LockOp)
	if m.held {
		return false
	}
	m.Acquisitions++
	m.held = true
	m.owner = c.T
	return true
}

// Unlock releases the mutex. If threads are waiting, ownership passes
// directly to the first waiter, which is made runnable at the front of
// the ready queue; the caller keeps the CPU (the scheduler is
// non-preemptive).
func (m *Mutex) Unlock(c Ctx) {
	m.s.checkOnCPU(c, "Mutex.Unlock")
	if !m.held {
		panic("threads: Unlock of unlocked mutex")
	}
	if m.owner != c.T {
		panic("threads: Unlock by non-owner")
	}
	c.P.Charge(m.s.cost.LockOp)
	if len(m.waiters) == 0 {
		m.held = false
		m.owner = nil
		return
	}
	w := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.owner = w
	w.Resume(true)
}

// Cond is a condition variable tied to a Mutex, with the usual
// wait/signal/broadcast operations. Only threads may Wait; handlers
// (optimistic executions) test their predicate and abort instead, which is
// the core OAM transformation.
type Cond struct {
	L       *Mutex
	waiters []*Thread
}

// NewCond creates a condition variable using lock l.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases the mutex and suspends the calling thread;
// when woken it reacquires the mutex before returning. As always with
// condition variables, callers must re-test their predicate in a loop.
func (cv *Cond) Wait(c Ctx) {
	if c.T == nil {
		panic("threads: Cond.Wait from handler context")
	}
	if cv.L.owner != c.T {
		panic("threads: Cond.Wait without holding the mutex")
	}
	cv.waiters = append(cv.waiters, c.T)
	cv.L.Unlock(c)
	c.S.blockCurrent(c)
	cv.L.Lock(c)
}

// Signal wakes one waiter, if any. The woken thread goes to the back of
// the ready queue; it still has to reacquire the mutex when it runs.
func (cv *Cond) Signal(c Ctx) {
	c.S.checkOnCPU(c, "Cond.Signal")
	c.P.Charge(c.S.cost.LockOp)
	if len(cv.waiters) == 0 {
		return
	}
	w := cv.waiters[0]
	copy(cv.waiters, cv.waiters[1:])
	cv.waiters = cv.waiters[:len(cv.waiters)-1]
	w.Resume(false)
}

// Broadcast wakes every waiter.
func (cv *Cond) Broadcast(c Ctx) {
	c.S.checkOnCPU(c, "Cond.Broadcast")
	c.P.Charge(c.S.cost.LockOp)
	ws := cv.waiters
	cv.waiters = nil
	for _, w := range ws {
		w.Resume(false)
	}
}
