package cm5

import (
	"testing"

	"repro/internal/sim"
)

// TestLookaheadClipsAtFaultEdges: the parallel window bound is WireLatency
// on a clean machine, and shrinks so that no window straddles a slow-window
// or partition edge — the instants where the fault plan's behavior changes.
func TestLookaheadClipsAtFaultEdges(t *testing.T) {
	eng := sim.New(1)
	defer eng.Shutdown()
	m := NewMachine(eng, 4, DefaultCostModel())
	wire := m.cost.WireLatency

	if got := m.Lookahead(0); got != wire {
		t.Fatalf("clean machine lookahead = %v, want WireLatency %v", got, wire)
	}

	from := sim.Time(10 * wire)
	to := from.Add(5 * wire)
	m.SetFaultPlan(&FaultPlan{
		Seed: 1,
		Slow: []SlowWindow{{Node: 2, From: from, To: to, Extra: sim.Micros(50)}},
	})

	cases := []struct {
		name string
		now  sim.Time
		want sim.Duration
	}{
		{"far before the edge", 0, wire},
		{"one wire-latency before From", from.Add(-wire), wire},
		{"just inside WireLatency of From", from.Add(-wire + 1), wire - 1},
		{"one tick before From", from - 1, 1},
		{"at From, clipped at To only when near", from, wire},
		{"mid-window", from.Add(wire), wire},
		{"one tick before To", to - 1, 1},
		{"at To", to, wire},
	}
	for _, c := range cases {
		if got := m.Lookahead(c.now); got != c.want {
			t.Errorf("%s: Lookahead(%v) = %v, want %v", c.name, c.now, got, c.want)
		}
	}

	// A partition edge clips the same way, and the bound never reaches 0
	// even immediately before an edge.
	m.SetFaultPlan(&FaultPlan{
		Seed:       1,
		Partitions: []Partition{{Src: -1, Dst: 3, From: from, To: to}},
	})
	if got := m.Lookahead(from - 1); got != 1 {
		t.Errorf("partition edge: Lookahead(From-1) = %v, want 1", got)
	}
	if got := m.Lookahead(from.Add(-wire / 2)); got != wire/2 {
		t.Errorf("partition edge: Lookahead(From-wire/2) = %v, want %v", got, wire/2)
	}
}
