package cm5

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// lazyChaosResult is everything observable about one chaos run that the
// lazy/eager and shard-count comparisons assert on.
type lazyChaosResult struct {
	traceHash uint64
	faultHash uint64
	received  [2]int
	fs        FaultStats
	nfCrash   NodeFaultStats
}

// lazyChaosRun drives two traffic pairs on a 64-node machine whose fault
// plan also targets nodes the traffic never touches: node 40 crashes and
// node 50 sits behind a partition, and in the lazy run neither is ever
// materialized. With pretouch, every node is eagerly materialized before
// the run — the pre-lazy behavior the lazy path must be indistinguishable
// from.
func lazyChaosRun(t *testing.T, shards int, pretouch bool) lazyChaosResult {
	t.Helper()
	eng := sim.NewSharded(17, shards)
	tr := sim.NewCanonicalTracer()
	eng.SetTracer(tr)
	cost := DefaultCostModel()
	cost.WireJitter = sim.Micros(3)
	m := NewMachine(eng, 64, cost)
	defer eng.Shutdown()
	m.SetFaultPlan(&FaultPlan{
		Seed:     5,
		DropProb: 0.15,
		Crashes: []Crash{
			{Node: 40, At: sim.Time(10 * sim.Microsecond)}, // never materialized in the lazy run
			{Node: 1, At: sim.Time(250 * sim.Microsecond)}, // receiver crashes under load
		},
		Partitions: []Partition{
			{Src: 2, Dst: 50, From: 0, To: sim.Time(sim.Millisecond)}, // dst never materialized
			{Src: 0, Dst: 1, From: sim.Time(100 * sim.Microsecond), To: sim.Time(180 * sim.Microsecond)},
		},
	})
	if pretouch {
		for i := 0; i < m.N(); i++ {
			m.Node(i)
		}
	}
	res := &lazyChaosResult{}
	deadline := sim.Time(sim.Millisecond)
	// Pair 1 crosses shards at every tested shard count > 1
	// (shardIndex(35) != shardIndex(2) for 2 and 4 shards of 64 nodes).
	pairs := [2][2]int{{0, 1}, {2, 35}}
	const k = 40
	for pi, pr := range pairs {
		pi, src, dst := pi, pr[0], pr[1]
		sn, rn := m.Node(src), m.Node(dst)
		sn.Shard().Spawn(fmt.Sprintf("send/%d", pi), func(p *sim.Proc) {
			for i := 0; i < k; i++ {
				for !sn.TryInject(p, &Packet{Src: src, Dst: dst, Kind: Small, W0: uint64(i)}) {
					p.Charge(sim.Micros(1))
				}
				p.Charge(sim.Micros(10))
			}
		})
		rn.Shard().Spawn(fmt.Sprintf("recv/%d", pi), func(p *sim.Proc) {
			for p.Now() < deadline {
				if rn.PollPacket(p) != nil {
					res.received[pi]++
				}
				p.Charge(sim.Micros(5))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !pretouch {
		for _, i := range []int{40, 50} {
			if m.nodes[i] != nil {
				t.Fatalf("shards=%d: fault plan materialized untargeted node %d", shards, i)
			}
		}
	}
	res.traceHash = tr.Hash()
	res.faultHash = m.FaultTraceHash()
	res.fs = m.FaultStats()
	res.nfCrash = m.NodeFaults(40)
	if !m.Crashed(40) || !m.Crashed(1) {
		t.Fatalf("shards=%d: crash schedule did not fire", shards)
	}
	if nf := m.NodeFaults(50); nf != (NodeFaultStats{}) {
		t.Fatalf("shards=%d: partitioned-but-idle node accrued faults: %+v", shards, nf)
	}
	return *res
}

// TestLazyMaterializationChaosEquivalence: a fault plan that crashes and
// partitions nodes the traffic never touches must behave identically
// whether nodes materialize lazily on first touch or were all built
// eagerly up front — same event trace, same fault record, same delivery
// counts — at 1, 2, and 4 shards, and identically across shard counts.
func TestLazyMaterializationChaosEquivalence(t *testing.T) {
	var ref lazyChaosResult
	for si, shards := range []int{1, 2, 4} {
		lazy := lazyChaosRun(t, shards, false)
		eager := lazyChaosRun(t, shards, true)
		if lazy != eager {
			t.Fatalf("shards=%d: lazy %+v != eager %+v", shards, lazy, eager)
		}
		if si == 0 {
			ref = lazy
			if lazy.received[0] == 0 || lazy.received[1] == 0 {
				t.Fatalf("no traffic delivered: %+v", lazy)
			}
			if lazy.fs.Crashes != 2 || lazy.fs.Dropped == 0 {
				t.Fatalf("chaos did not bite: %+v", lazy.fs)
			}
		} else if lazy != ref {
			t.Fatalf("shards=%d diverged from sequential: %+v vs %+v", shards, lazy, ref)
		}
	}
}
