package kv_test

import (
	"testing"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/kv"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// TestMultiactiveRun: with Cores > 1 the service still satisfies every
// invariant, and the compatibility matrix actually admits concurrent
// handlers (reads overlap; disjoint-key writers overlap).
func TestMultiactiveRun(t *testing.T) {
	for _, cores := range []int{2, 4} {
		cfg := smallCfg(apps.ORPC)
		cfg.Cores = cores
		cfg.ZipfS = 0.9
		var rt *rpc.Runtime
		cfg.Observe = func(_ *am.Universe, r *rpc.Runtime) { rt = r }
		_, st, err := kv.Run(cfg)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if err := kv.CheckInvariants(&st); err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if st.Arrivals == 0 || st.OK == 0 {
			t.Fatalf("cores=%d: no traffic: %d arrivals, %d ok", cores, st.Arrivals, st.OK)
		}
		ds := rt.Dispatcher().Stats()
		if ds.CompatAdmitted == 0 {
			t.Fatalf("cores=%d: no dispatch was compat-admitted: %v", cores, ds)
		}
		if ds.CompatAdmitted+ds.CompatQueued != ds.Total {
			t.Fatalf("cores=%d: admitted %d + queued %d != total %d",
				cores, ds.CompatAdmitted, ds.CompatQueued, ds.Total)
		}
	}
}

// TestMultiactiveShardedEquivalence: the cores 2/4 equivalence golden —
// multiactive results are bit-identical across shard counts and engine
// modes, exactly like the single-active gate above.
func TestMultiactiveShardedEquivalence(t *testing.T) {
	base := kv.Config{
		System:   apps.ORPC,
		Seed:     11,
		Clients:  16,
		Duration: sim.Micros(8000),
		Mode:     kv.Bursty,
		ZipfS:    0.9,
		Fault:    &cm5.FaultPlan{Seed: 5, DropProb: 0.02, DupProb: 0.01},
	}
	type fingerprint struct {
		answer, rec, fault uint64
		st                 kv.Stats
	}
	for _, cores := range []int{2, 4} {
		var want *fingerprint
		for _, shards := range []int{1, 2, 4} {
			for _, optimistic := range []bool{false, true} {
				cfg := base
				cfg.Cores = cores
				cfg.Shards, cfg.Optimistic = shards, optimistic
				res, st, err := kv.Run(cfg)
				if err != nil {
					t.Fatalf("cores=%d shards=%d optimistic=%v: %v", cores, shards, optimistic, err)
				}
				if err := kv.CheckInvariants(&st); err != nil {
					t.Fatalf("cores=%d shards=%d optimistic=%v: %v", cores, shards, optimistic, err)
				}
				got := &fingerprint{res.Answer, st.RecordHash, st.FaultHash, st}
				if want == nil {
					want = got
					continue
				}
				if got.answer != want.answer || got.rec != want.rec || got.fault != want.fault {
					t.Fatalf("cores=%d shards=%d optimistic=%v diverged: answer %016x/%016x record %016x/%016x fault %016x/%016x",
						cores, shards, optimistic, got.answer, want.answer, got.rec, want.rec, got.fault, want.fault)
				}
				for i := range want.st.PerClient {
					if got.st.PerClient[i] != want.st.PerClient[i] {
						t.Fatalf("cores=%d shards=%d optimistic=%v: client %d ledger diverged: %+v vs %+v",
							cores, shards, optimistic, i, got.st.PerClient[i], want.st.PerClient[i])
					}
				}
				for i := range want.st.PerServer {
					if got.st.PerServer[i] != want.st.PerServer[i] {
						t.Fatalf("cores=%d shards=%d optimistic=%v: server %d ledger diverged: %+v vs %+v",
							cores, shards, optimistic, i, got.st.PerServer[i], want.st.PerServer[i])
					}
				}
			}
		}
	}
}

// TestMultiactiveAdaptive: the adaptive controller engages under
// multiactive load and its decisions replay bit-identically.
func TestMultiactiveAdaptive(t *testing.T) {
	cfg := smallCfg(apps.ORPC)
	cfg.Cores = 2
	cfg.Adaptive = true
	cfg.RateX = 3
	cfg.Duration = sim.Micros(8000)
	run := func(shards int) (uint64, oam.Stats) {
		c := cfg
		c.Shards = shards
		var rt *rpc.Runtime
		c.Observe = func(_ *am.Universe, r *rpc.Runtime) { rt = r }
		res, st, err := kv.Run(c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := kv.CheckInvariants(&st); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res.Answer, rt.Dispatcher().Stats()
	}
	a1, d1 := run(1)
	a2, d2 := run(2)
	if a1 != a2 || d1 != d2 {
		t.Fatalf("adaptive run diverged across shards: answer %016x/%016x stats %v vs %v", a1, a2, d1, d2)
	}
}
