package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// The kernel_scale pass answers the 100k-node question directly: does the
// kernel's per-event cost stay flat as the machine grows, and does a node
// cost O(1) memory whether the machine has 128 of them or 65536? Both are
// load-bearing claims of the scale work (calendar-queue scheduling and
// lazy node materialization); both are asserted in CI against the budgets
// below.
const (
	// ScaleNsPerEventRatioMax caps NsPerEvent(N=65536) / NsPerEvent(N=128)
	// on the constant-event-budget storm. The algorithmic cost is flat —
	// the queue's own health numbers below (scans/pop, allocs/event) carry
	// that claim — but wall time per event is not purely algorithmic: at
	// N=128 the whole simulation (events, buckets, client state) is
	// L1/L2-resident, while at N=65536 each event fire performs ~3
	// dependent last-level-cache accesses (the event struct cycling
	// through a multi-MB pending set, its calendar bucket, and the
	// client's own state — the last being the workload's, not the
	// kernel's). No pointer-based scheduler gets below that, so the cap
	// is the measured memory-hierarchy floor (best-of-3 measures 2.4-2.9x
	// on an idle reference host, up to ~3.8x when sharing the host with a
	// concurrent test run) plus noise headroom, not a claim of
	// cache-immunity. What the cap is for is catching algorithmic
	// regressions: a heap-based scheduler blows well past it — O(log n)
	// comparisons each touching a scattered node puts the same sweep at
	// 8x+ — and so would any O(n) table rebuilt per event.
	ScaleNsPerEventRatioMax = 4.0
	// ScaleScansPerPopMax and ScaleAllocsPerEventMax assert the flatness
	// that *is* algorithmic, at every point of the sweep: forward scans
	// per pop near 1 (bucket width matched to event spacing at any N) and
	// a steady-state tick allocating nothing.
	ScaleScansPerPopMax    = 4.0
	ScaleAllocsPerEventMax = 0.05
	// ScaleBytesPerNodeCap bounds the retained heap per *touched* node
	// after the storm: the Node struct, its NIC (ring unallocated unless
	// the node received), shard bookkeeping, and the storm's own per-node
	// timer state. Asserted at the largest N of the sweep, where the
	// engine's fixed overhead (pools, the message ring, the queue's bucket
	// array) is amortized; at N=128 that fixed cost dominates the
	// division and the number means nothing. Measured ~0.4 KiB/node; the
	// cap leaves headroom for allocator size-class rounding across Go
	// versions.
	ScaleBytesPerNodeCap = 1024
	// ScaleIdleBytesPerNodeCap bounds the retained heap per node of a
	// machine that was built but never touched: with lazy materialization
	// that is one nil pointer slot per node plus O(shards) machinery, so
	// the cap is a few pointer widths, not a Node struct.
	ScaleIdleBytesPerNodeCap = 64
	// scaleWallFloor marks a point too fast to time reliably: below this
	// the sweep reports ScaleValid=false and CI must skip the ratio
	// assertion rather than fail on timer noise.
	scaleWallFloor = 10 * time.Millisecond
)

// ScaleNodeCounts is the node sweep of the kernel_scale pass.
var ScaleNodeCounts = []int{128, 4096, 65536}

// ScaleQueueStats is the calendar-queue health report of one pass, in
// JSON form (see sim.QueueStats for semantics).
type ScaleQueueStats struct {
	Pushes        uint64  `json:"pushes"`
	Pops          uint64  `json:"pops"`
	ScansPerPop   float64 `json:"scans_per_pop"`
	Fallbacks     uint64  `json:"fallbacks"`
	Resizes       uint64  `json:"resizes"`
	Buckets       int     `json:"buckets"`
	BucketWidthNs int64   `json:"bucket_width_ns"`
	MaxEvents     int     `json:"max_events"`
}

// ScalePoint is one node count of the sweep.
type ScalePoint struct {
	Nodes  int    `json:"nodes"`
	Events uint64 `json:"events"`
	WallNs int64  `json:"wall_ns"`
	// NsPerEvent is host wall time per simulated event; the sweep holds
	// the total event budget constant, so these are directly comparable
	// across node counts.
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// HeapBytes is the GC-settled retained heap growth of the pass
	// (machine, queues, per-node storm state), and BytesPerNode divides
	// it by the node count — every node is touched by the storm.
	HeapBytes    uint64          `json:"heap_bytes"`
	BytesPerNode float64         `json:"bytes_per_node"`
	PeakRSSBytes int64           `json:"peak_rss_bytes"`
	Queue        ScaleQueueStats `json:"queue"`
}

// ScaleBench is the kernel_scale section of BENCH_kernel.json.
type ScaleBench struct {
	// EventBudget is the total timer-storm event budget shared by every
	// point of the sweep (constant work, varying node count).
	EventBudget int          `json:"event_budget"`
	Points      []ScalePoint `json:"points"`
	// NsPerEventRatio is NsPerEvent at the largest node count over the
	// smallest — the flatness number CI asserts ≤ ScaleNsPerEventRatioMax.
	NsPerEventRatio float64 `json:"ns_per_event_ratio"`
	// IdleBytesPerNode is the retained heap per node of a machine at the
	// largest node count that no one ever touched: the price of existing.
	IdleBytesPerNode float64 `json:"idle_bytes_per_node"`
	// The budgets, echoed so the artifact is self-describing.
	NsPerEventRatioMax  float64 `json:"ns_per_event_ratio_max"`
	BytesPerNodeCap     float64 `json:"bytes_per_node_cap"`
	IdleBytesPerNodeCap float64 `json:"idle_bytes_per_node_cap"`
	// ScaleValid is false when any point ran under the wall-clock floor,
	// where the ratio measures timer noise rather than kernel cost.
	// CI must skip (not fail) the flatness assertion then.
	ScaleValid bool   `json:"scale_valid"`
	Warning    string `json:"warning,omitempty"`
}

// KernelScale runs the scale sweep: a timer-heavy many-client storm over
// all N nodes for N in ScaleNodeCounts, holding the total event budget
// constant so ns/event is comparable across the sweep, plus an idle-memory
// measurement of an untouched machine at the largest N.
func KernelScale(quick bool) ScaleBench {
	budget := 1 << 21
	if quick {
		// Quick keeps the sweep in test-suite time but must still give
		// the largest N a timed window big enough (~100 ms) that a GC
		// pause or a scheduling hiccup cannot move the ratio past its
		// cap on a busy host.
		budget = 1 << 19
	}
	sb := ScaleBench{
		EventBudget:         budget,
		NsPerEventRatioMax:  ScaleNsPerEventRatioMax,
		BytesPerNodeCap:     ScaleBytesPerNodeCap,
		IdleBytesPerNodeCap: ScaleIdleBytesPerNodeCap,
		ScaleValid:          true,
	}
	for _, n := range ScaleNodeCounts {
		// Best of three: ns/event on a shared host is right-skewed by
		// scheduling and frequency noise, and the minimum is the run
		// closest to the kernel's actual cost. Memory numbers are
		// noise-free, so any run's will do; take the fastest run's whole
		// point so the artifact is one self-consistent measurement.
		p := scaleStorm(n, budget)
		for r := 1; r < 3; r++ {
			if q := scaleStorm(n, budget); q.NsPerEvent < p.NsPerEvent {
				p = q
			}
		}
		if p.WallNs < scaleWallFloor.Nanoseconds() {
			sb.ScaleValid = false
			sb.Warning = fmt.Sprintf("point N=%d ran %.1fms < %.0fms floor: ns/event ratio is timer noise, not kernel cost",
				n, float64(p.WallNs)/1e6, float64(scaleWallFloor.Nanoseconds())/1e6)
		}
		sb.Points = append(sb.Points, p)
	}
	first, last := sb.Points[0], sb.Points[len(sb.Points)-1]
	if first.NsPerEvent > 0 {
		sb.NsPerEventRatio = last.NsPerEvent / first.NsPerEvent
	}
	sb.IdleBytesPerNode = idleBytesPerNode(ScaleNodeCounts[len(ScaleNodeCounts)-1])
	return sb
}

// scaleStep is the nominal timer re-arm period of the storm; each client
// adds its own sub-step offset.
const scaleStep = 50 * time.Microsecond

// scaleNoop is the decoy timer body; decoys are cancelled at birth, so it
// never runs.
func scaleNoop() {}

// scaleState is the shared context of one storm's clients.
type scaleState struct {
	eng    *sim.Engine
	m      *cm5.Machine
	rounds int32
}

// scaleClient is one node's timer chain. Clients live in a flat array —
// per-node state is a contiguous struct, not a scattered closure
// environment — and re-arm via AtAction/AfterAction so a tick allocates
// nothing.
type scaleClient struct {
	st     *scaleState
	id     int32
	left   int32
	offset int32 // per-node re-arm offset, ns
}

// Run is the timer callback: materialize on first touch, occasionally
// schedule-and-cancel a decoy (exercising lazy deletion in the calendar
// queue), and re-arm.
func (c *scaleClient) Run() {
	st := c.st
	if c.left == st.rounds {
		st.m.Node(int(c.id)) // first touch: materialize under load, like real clients
	}
	c.left--
	if c.left <= 0 {
		return
	}
	if c.left%4 == 0 {
		// Decoy: schedule one step out, cancel immediately — exercising
		// Timer arming and the cancel-unlink path at storm rate.
		t := st.eng.AfterTimer(2*scaleStep, scaleNoop)
		t.Cancel()
	}
	st.eng.AfterAction(scaleStep+sim.Duration(c.offset), c)
}

// scaleStorm is one point: nodes timer chains re-arming (with periodic
// schedule-and-cancel decoys, exercising the cancel-unlink path in the
// calendar queue) until the event budget is spent, plus a small fixed-size
// messaging ring so the pass also moves real packets through NICs. Every
// node is touched, so BytesPerNode is the full materialized cost.
func scaleStorm(nodes, budget int) ScalePoint {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	eng := sim.New(1)
	m := cm5.NewMachine(eng, nodes, cm5.DefaultCostModel())

	// One warmup round plus budget/nodes measured rounds: the warm phase
	// (run untimed below) materializes every node, fills the event pool to
	// its steady-state population, and re-arms every chain, so the timed
	// phase measures steady-state scheduling, not first-touch setup. The
	// setup cost is still fully visible — in BytesPerNode.
	rounds := budget/nodes + 1
	if rounds < 2 {
		rounds = 2
	}
	st := &scaleState{eng: eng, m: m, rounds: int32(rounds)}
	clients := make([]scaleClient, nodes)
	for i := 0; i < nodes; i++ {
		c := &clients[i]
		c.st = st
		c.id = int32(i)
		// Per-node re-arm offset decorrelates the chains so events spread
		// across calendar buckets instead of marching in one phalanx.
		c.offset = int32((i * 7919) % 50_000)
		c.left = int32(rounds)
		// First ticks spread over 4 µs — all inside the warm phase, all
		// before the earliest possible re-arm at scaleStep.
		eng.AtAction(sim.Time(1+i%4096), c)
	}

	// Fixed-size messaging component: an 8-node ring pushing real packets
	// through injection, NIC reservation, and delivery. Constant across
	// the sweep, so it never skews the per-N comparison.
	msgN := 8
	if msgN > nodes {
		msgN = nodes
	}
	const msgPackets = 256
	for i := 0; i < msgN; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("scale-msg/%d", i), func(p *sim.Proc) {
			nd := m.Node(i)
			dst := (i + 1) % msgN
			got := 0
			poll := func() {
				p.Charge(sim.Micros(2))
				if in := nd.PollPacket(p); in != nil {
					got++
					nd.ReleasePacket(in)
				}
			}
			for k := 0; k < msgPackets; k++ {
				pkt := nd.AllocPacket()
				pkt.Src, pkt.Dst, pkt.Kind = i, dst, cm5.Small
				for !nd.TryInject(p, pkt) {
					poll()
				}
			}
			for got < msgPackets {
				poll()
			}
		})
	}

	// Warm phase: every chain's first tick (and nothing else — re-arms
	// land at step ≈ 50 µs). Untimed; alloc-counted via mw below so the
	// timed window's AllocsPerEvent is steady-state.
	if err := eng.RunUntil(sim.Time(sim.Micros(10))); err != nil {
		panic(fmt.Sprintf("exp: scale storm warmup (nodes=%d): %v", nodes, err))
	}
	warmEvents := eng.Events()
	var mw runtime.MemStats
	runtime.ReadMemStats(&mw)

	start := time.Now()
	if err := eng.Run(); err != nil {
		panic(fmt.Sprintf("exp: scale storm (nodes=%d): %v", nodes, err))
	}
	wall := time.Since(start)

	runtime.GC()
	runtime.ReadMemStats(&m1)
	events := eng.Events() - warmEvents
	qs := eng.QueueStats()
	runtime.KeepAlive(m)

	p := ScalePoint{
		Nodes:        nodes,
		Events:       events,
		WallNs:       wall.Nanoseconds(),
		PeakRSSBytes: peakRSSBytes(),
		Queue: ScaleQueueStats{
			Pushes:        qs.Pushes,
			Pops:          qs.Pops,
			Fallbacks:     qs.Fallbacks,
			Resizes:       qs.Resizes,
			Buckets:       qs.Buckets,
			BucketWidthNs: int64(qs.BucketWidth),
			MaxEvents:     qs.MaxEvents,
		},
	}
	if qs.Pops > 0 {
		p.Queue.ScansPerPop = float64(qs.ScanSteps) / float64(qs.Pops)
	}
	if m1.HeapAlloc > m0.HeapAlloc {
		p.HeapBytes = m1.HeapAlloc - m0.HeapAlloc
	}
	p.BytesPerNode = float64(p.HeapBytes) / float64(nodes)
	if events > 0 {
		p.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		p.AllocsPerEvent = float64(m1.Mallocs-mw.Mallocs) / float64(events)
	}
	eng.Shutdown()
	return p
}

// idleBytesPerNode measures the retained heap per node of a machine that
// is built and then never touched: with lazy materialization this is the
// nil node-pointer table plus O(shards) machinery.
func idleBytesPerNode(nodes int) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	eng := sim.New(1)
	m := cm5.NewMachine(eng, nodes, cm5.DefaultCostModel())
	runtime.GC()
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(m)
	var heap uint64
	if m1.HeapAlloc > m0.HeapAlloc {
		heap = m1.HeapAlloc - m0.HeapAlloc
	}
	eng.Shutdown()
	return float64(heap) / float64(nodes)
}
