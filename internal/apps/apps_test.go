package apps

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

func TestSystemStrings(t *testing.T) {
	if AM.String() != "AM" || ORPC.String() != "ORPC" || TRPC.String() != "TRPC" {
		t.Fatal("system strings")
	}
	if System(9).String() == "" {
		t.Fatal("unknown system string empty")
	}
	if len(Systems) != 3 {
		t.Fatal("Systems list")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Elapsed: sim.Micros(500), OAMs: 200, Successes: 150}
	if p := r.SuccessPercent(); p != 75 {
		t.Fatalf("success%% = %v", p)
	}
	empty := Result{Elapsed: sim.Micros(1)}
	if empty.SuccessPercent() != 100 {
		t.Fatal("no-OAM success should be 100")
	}
	if s := r.Speedup(sim.Micros(1000)); s != 2 {
		t.Fatalf("speedup = %v", s)
	}
	if (&Result{}).Speedup(sim.Micros(1)) != 0 {
		t.Fatal("zero elapsed speedup")
	}
}

// TestServiceRunsHandlersAndThreads: Service drains messages and then
// yields to any threads those messages created.
func TestServiceRunsHandlersAndThreads(t *testing.T) {
	eng := sim.New(3)
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	defer eng.Shutdown()
	handled := false
	threadRan := false
	h := u.Register("spawnful", func(c threads.Ctx, pkt *cm5.Packet) {
		handled = true
		c.S.Create(c, "spawned", true, func(cc threads.Ctx) { threadRan = true })
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, h, [4]uint64{}, nil)
			return
		}
		for !handled {
			c.P.Charge(sim.Micros(1))
			Service(c, ep)
		}
		if !threadRan {
			t.Error("Service did not run the created thread before returning")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFillResult aggregates stats from a real universe.
func TestFillResult(t *testing.T) {
	eng := sim.New(3)
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	defer eng.Shutdown()
	h := u.Register("noop", func(c threads.Ctx, pkt *cm5.Packet) {})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			u.Endpoint(0).Send(c, 1, h, [4]uint64{}, nil)
			u.Endpoint(0).SendBulk(c, 1, h, [4]uint64{}, make([]byte, 100))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	FillResult(&r, u, 5, 4)
	if r.OAMs != 5 || r.Successes != 4 {
		t.Fatal("oam fields")
	}
	if r.SmallSent == 0 || r.BulkSent != 1 || r.BytesSent < 100 {
		t.Fatalf("net fields: %+v", r)
	}
	if r.ThreadsCreated != 2 { // the two mains
		t.Fatalf("threads = %d", r.ThreadsCreated)
	}
	if r.LiveStackPct != 100 {
		t.Fatalf("livestack = %v", r.LiveStackPct)
	}
}
