package sim

// eventQueue is a calendar queue: the shard's pending-event structure,
// replacing a single binary heap so that push/pop cost stays flat as the
// number of pending events grows (100k heartbeat timers must not make
// every pop pay O(log n)).
//
// Virtual time is divided into "days" of 2^shift nanoseconds; day d maps
// to bucket d & mask (the bucket count is a power of two — one "year" is
// buckets*width of virtual time). Each bucket is a singly-linked list
// kept sorted by the full canonical comparator (at, class, key, seq), so
// the queue's pop order is exactly the order the single heap produced —
// the bucketing is a pure routing layer and every golden schedule hash is
// unchanged. The list link is the event's pool link (an event is in the
// free list or in the queue, never both), so a pending event costs no
// storage beyond itself: no per-bucket slice headers to grow, no heap
// sift touching O(log k) scattered nodes. Pushes in non-decreasing order
// within a bucket — the overwhelmingly common case, since schedule seq
// numbers are monotone — append at the tail in O(1).
//
// The global minimum is cached in head and maintained eagerly on every
// push and pop. That makes first() a pure read, which the optimistic mode
// requires: awake shards read a sleeping shard's next-event time
// (optState.advanceClaims, resolve) under the protocol's quiescence
// guarantees, and a lazily repaired cache would turn those reads into
// writes and race.
//
// Pops search for the new minimum by scanning forward day by day from the
// popped event's day — O(1 + gap/width) — and fall back to a direct
// min-over-bucket-heads search when a whole year passes without a hit
// (events sparse or far away). Sustained fallbacks mean the bucket width
// no longer matches the event spacing; the queue then re-buckets with a
// width derived from the live event span, which also happens on
// size-threshold grow/shrink and on long in-bucket insertion walks (the
// too-wide failure mode: see push). Every event is always in the bucket
// its timestamp maps to, so correctness never depends on the width being
// well chosen — only the constant factor does.
type eventQueue struct {
	buckets []eventBucket
	mask    uint64
	shift   uint
	n       int
	head    *event // global minimum; nil iff n == 0
	headBkt int    // bucket index holding head
	maxAt   Time   // high-water mark of scheduled timestamps (width estimator)

	// consecFallbacks counts directSearch pops since the last scan hit;
	// crossing fallbackRebucket triggers a width recomputation.
	consecFallbacks int

	// popsSinceAudit schedules the periodic width audit (see pop): both
	// miscalibration modes — too wide (long insert walks) and too narrow
	// (long forward scans, ring wrap) — are silent, so every widthAudit
	// pops the shift is checked against the live span outright.
	popsSinceAudit int

	stats QueueStats
}

// eventBucket is one day-ring slot: a sorted singly-linked list threaded
// through the events' own next links. headAt/tailAt mirror the endpoint
// timestamps so day scans and append checks read the bucket entry alone,
// never dereferencing an event.
type eventBucket struct {
	head, tail     *event
	headAt, tailAt Time
}

// QueueStats describes how a shard's calendar queue behaved: the
// bucket-routing efficiency numbers that replace "it's a heap, it's
// O(log n)" as the thing benchmarks watch.
type QueueStats struct {
	// Pushes and Pops count scheduled and fired/cancelled-surfaced events.
	Pushes, Pops uint64
	// ScanSteps is the total number of day-buckets examined by pop's
	// forward scans; ScanSteps/Pops near 1 means the width matches the
	// event spacing.
	ScanSteps uint64
	// Fallbacks counts pops that scanned a whole year without a hit and
	// resorted to a direct min-over-bucket-heads search.
	Fallbacks uint64
	// Resizes counts bucket-array reallocations (growth, shrink, or
	// stale-width re-bucketing).
	Resizes uint64
	// Buckets is the current bucket count; BucketWidth the current day
	// width in virtual time.
	Buckets     int
	BucketWidth Duration
	// MaxEvents is the high-water mark of pending events.
	MaxEvents int
}

const (
	minQueueBuckets = 1 << 4
	maxQueueBuckets = 1 << 17
	// defaultQueueShift is the initial day width (2^12 ns ≈ 4 µs, on the
	// order of the default wire latency). Adaptive re-bucketing replaces
	// it as soon as the real event spacing is observable.
	defaultQueueShift = 12
	// fallbackRebucket is the consecutive-direct-search threshold that
	// forces a width recomputation.
	fallbackRebucket = 8
	// overfullWalk is the in-bucket insertion walk length that makes push
	// check whether the day width has gone stale-wide. Too-wide days are
	// a silent failure mode of a calendar queue: forward scans still
	// hit on the first step (so no fallback fires), but in-bucket inserts
	// walk ever-longer runs.
	overfullWalk = 16
	// widthAudit is the pop interval of the periodic shift-vs-ideal check.
	// It catches the mirror silent failure — days too narrow for the live
	// span (e.g. a width chosen from a warm-up burst), where the ring
	// wraps and forward scans pass many wrong-day buckets without ever
	// triggering the whole-year fallback.
	widthAudit = 1 << 12
)

// idealShift returns the day-width exponent that spreads n events over
// span at roughly one event every other day.
func idealShift(span Time, n int) uint {
	target := 2 * uint64(span) / uint64(n)
	sh := uint(1)
	for target>>sh > 0 && sh < 42 {
		sh++
	}
	return sh
}

// init sizes the queue for roughly hint pending events. Buckets are kept
// near half the expected population: growth triggers at n > 2·buckets,
// so this leaves headroom without paying bucket-array memory up front
// for events that never materialize.
func (q *eventQueue) init(hint int) {
	nb := minQueueBuckets
	for nb < hint/2 && nb < maxQueueBuckets {
		nb <<= 1
	}
	q.buckets = make([]eventBucket, nb)
	q.mask = uint64(nb - 1)
	if q.shift == 0 {
		q.shift = defaultQueueShift
	}
	q.stats.Buckets = nb
	q.stats.BucketWidth = Duration(1) << q.shift
}

// hint re-sizes an empty queue for an expected event population; no-op
// once events are pending (the adaptive resize owns the size from then
// on). Engine.HintEvents plumbs node-count-derived hints here.
func (q *eventQueue) hint(n int) {
	if q.n == 0 {
		q.init(n)
	}
}

// len reports the number of pending events. Pure read.
func (q *eventQueue) len() int { return q.n }

// first returns the earliest pending event (nil when empty) under the
// canonical (at, class, key, seq) order. Pure read — safe wherever
// reading the old heap's ev[0] was safe.
func (q *eventQueue) first() *event { return q.head }

// insert places e into bucket bk at its canonical position, returning the
// number of list nodes walked (0 for the head/tail fast paths).
func (q *eventQueue) insert(bk *eventBucket, e *event) int {
	if bk.head == nil {
		e.next = nil
		bk.head, bk.tail = e, e
		bk.headAt, bk.tailAt = e.at, e.at
		return 0
	}
	// The at pre-checks settle strict-inequality inserts from the bucket
	// entry alone; only exact timestamp ties dereference an event for the
	// full comparator.
	if e.at > bk.tailAt || (e.at == bk.tailAt && !eventLess(e, bk.tail)) {
		e.next = nil
		bk.tail.next = e
		bk.tail = e
		bk.tailAt = e.at
		return 0
	}
	if e.at < bk.headAt || (e.at == bk.headAt && eventLess(e, bk.head)) {
		e.next = bk.head
		bk.head = e
		bk.headAt = e.at
		return 0
	}
	walked := 0
	pred := bk.head
	for pred.next != nil && !eventLess(e, pred.next) {
		pred = pred.next
		walked++
	}
	e.next = pred.next
	pred.next = e
	return walked
}

// push inserts an event.
func (q *eventQueue) push(e *event) {
	if q.buckets == nil {
		q.init(minQueueBuckets)
	}
	b := int((uint64(e.at) >> q.shift) & q.mask)
	walked := q.insert(&q.buckets[b], e)
	q.n++
	q.stats.Pushes++
	if q.n > q.stats.MaxEvents {
		q.stats.MaxEvents = q.n
	}
	if e.at > q.maxAt {
		q.maxAt = e.at
	}
	if q.head == nil || eventLess(e, q.head) {
		q.head = e
		q.headBkt = b
	}
	if q.n > 2*len(q.buckets) && len(q.buckets) < maxQueueBuckets {
		q.rebucket(2 * len(q.buckets))
	} else if walked > overfullWalk {
		// A long insertion walk on a hint-sized (never-grown) array means
		// the width was chosen blind; re-bucket in place if the live
		// population wants days at least 4x narrower. Same-instant
		// bursts don't qualify — their ideal width matches their span —
		// so this cannot thrash.
		if sh := idealShift(q.maxAt-q.head.at, q.n); sh+2 <= q.shift {
			q.rebucket(len(q.buckets))
		}
	}
}

// pop removes and returns the earliest pending event.
func (q *eventQueue) pop() *event {
	e := q.head
	// The global minimum is necessarily its bucket's minimum (the bucket
	// list uses the same comparator), so it is that list's head.
	bk := &q.buckets[q.headBkt]
	bk.head = e.next
	if bk.head == nil {
		bk.tail = nil
	} else {
		bk.headAt = bk.head.at
	}
	e.next = nil
	q.n--
	q.stats.Pops++
	if q.n == 0 {
		q.head = nil
	} else {
		q.findHead(uint64(e.at) >> q.shift)
		if q.n < len(q.buckets)/8 && len(q.buckets) > minQueueBuckets {
			q.rebucket(len(q.buckets) / 2)
		} else if q.popsSinceAudit++; q.popsSinceAudit >= widthAudit {
			q.popsSinceAudit = 0
			if q.n >= 64 {
				// ±2 hysteresis: only act on a 4x width mismatch, so a
				// matched queue never thrashes.
				if sh := idealShift(q.maxAt-q.head.at, q.n); sh+2 <= q.shift || sh >= q.shift+2 {
					q.rebucket(len(q.buckets))
				}
			}
		}
	}
	return e
}

// remove unlinks a pending event before it surfaces, reporting whether it
// was found. Timer.Cancel uses this to return cancelled events to the
// pool immediately instead of leaving tombstones to be popped and
// dropped later — at 100k pending timers the tombstones would otherwise
// be a third of the queue's working set. Counted in Pops so that
// Pushes - Pops stays the pending population.
func (q *eventQueue) remove(e *event) bool {
	if q.n == 0 || q.buckets == nil {
		return false
	}
	bk := &q.buckets[int((uint64(e.at)>>q.shift)&q.mask)]
	if bk.head == e {
		bk.head = e.next
		if bk.head == nil {
			bk.tail = nil
		} else {
			bk.headAt = bk.head.at
		}
	} else {
		pred := bk.head
		for pred != nil && pred.next != e {
			pred = pred.next
		}
		if pred == nil {
			return false
		}
		pred.next = e.next
		if bk.tail == e {
			bk.tail = pred
			bk.tailAt = pred.at
		}
	}
	e.next = nil
	q.n--
	q.stats.Pops++
	if q.head == e {
		if q.n == 0 {
			q.head = nil
		} else {
			q.findHead(uint64(e.at) >> q.shift)
		}
	}
	return true
}

// findHead locates the new minimum by scanning forward from fromDay. No
// pending event predates the just-popped minimum (schedule() rejects the
// past), so the scan only needs to move forward; day d's events live in
// exactly one bucket, so the first bucket whose head belongs to the
// scanned day holds the global minimum.
func (q *eventQueue) findHead(fromDay uint64) {
	nb := uint64(len(q.buckets))
	for step := uint64(0); step < nb; step++ {
		d := fromDay + step
		bk := &q.buckets[d&q.mask]
		if bk.head != nil && uint64(bk.headAt)>>q.shift == d {
			q.head = bk.head
			q.headBkt = int(d & q.mask)
			q.stats.ScanSteps += step + 1
			q.consecFallbacks = 0
			return
		}
	}
	q.directSearch()
}

// directSearch is the year-scan fallback: take the minimum over all
// bucket heads (each head is its bucket's minimum, so the least head is
// the global minimum regardless of which "year" anything belongs to).
func (q *eventQueue) directSearch() {
	q.stats.Fallbacks++
	q.consecFallbacks++
	var best *event
	bi := 0
	for i := range q.buckets {
		h := q.buckets[i].head
		if h != nil && (best == nil || eventLess(h, best)) {
			best = h
			bi = i
		}
	}
	q.head = best
	q.headBkt = bi
	if q.consecFallbacks >= fallbackRebucket {
		// The width is stale for the surviving population (e.g. a dense
		// burst drained, leaving sparse long timers): recompute it.
		q.rebucket(len(q.buckets))
		q.consecFallbacks = 0
	}
}

// rebucket reallocates the bucket array at nb buckets and redistributes
// every pending event, recomputing the day width so the live event span
// covers about one year. O(n + nb) plus in-bucket insertion, amortized by
// the size thresholds.
func (q *eventQueue) rebucket(nb int) {
	if nb < minQueueBuckets {
		nb = minQueueBuckets
	}
	if nb > maxQueueBuckets {
		nb = maxQueueBuckets
	}
	if q.n > 0 && q.head != nil {
		if span := q.maxAt - q.head.at; span > 0 {
			// Width ≈ 2·span/n: about one event every other day, with the
			// year (nb ≈ n/2 buckets after a growth step) covering the
			// whole live span so forward scans rarely wrap.
			q.shift = idealShift(span, q.n)
		}
	}
	old := q.buckets
	q.buckets = make([]eventBucket, nb)
	q.mask = uint64(nb - 1)
	for i := range old {
		e := old[i].head
		for e != nil {
			nx := e.next
			b := (uint64(e.at) >> q.shift) & q.mask
			q.insert(&q.buckets[b], e)
			e = nx
		}
	}
	if q.head != nil {
		q.headBkt = int((uint64(q.head.at) >> q.shift) & q.mask)
	}
	q.stats.Resizes++
	q.stats.Buckets = nb
	q.stats.BucketWidth = Duration(1) << q.shift
}

// clear drops every pending event and releases the bucket memory
// (Engine.Shutdown). A later push lazily re-initializes.
func (q *eventQueue) clear() {
	q.buckets = nil
	q.mask = 0
	q.head = nil
	q.n = 0
}

// queueStats snapshots the queue's counters.
func (q *eventQueue) queueStats() QueueStats {
	s := q.stats
	s.Buckets = len(q.buckets)
	s.BucketWidth = Duration(1) << q.shift
	return s
}

// QueueStats sums the per-shard calendar-queue counters (Buckets sums
// across shards; BucketWidth is shard 0's current width).
func (e *Engine) QueueStats() QueueStats {
	var out QueueStats
	for i, sh := range e.shards {
		s := sh.heap.queueStats()
		out.Pushes += s.Pushes
		out.Pops += s.Pops
		out.ScanSteps += s.ScanSteps
		out.Fallbacks += s.Fallbacks
		out.Resizes += s.Resizes
		out.Buckets += s.Buckets
		out.MaxEvents += s.MaxEvents
		if i == 0 {
			out.BucketWidth = s.BucketWidth
		}
	}
	return out
}
