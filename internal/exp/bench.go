package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/cm5"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/threads"
)

// KernelBench reports the host-side cost of the simulation kernel,
// measured by a two-node small-packet storm: one node streams small
// Active Messages, the other polls them in. Allocation counts are taken
// over a steady-state window (after the pools are warm), so they reflect
// the per-packet cost, not one-time slab fills.
type KernelBench struct {
	Packets          uint64  `json:"packets"`
	Events           uint64  `json:"events"`
	Dispatches       uint64  `json:"dispatches"`
	Handoffs         uint64  `json:"handoffs"`
	WallNs           int64   `json:"wall_ns"`
	NsPerEvent       float64 `json:"ns_per_event"`
	EventsPerSec     float64 `json:"events_per_sec"`
	NsPerDispatch    float64 `json:"ns_per_dispatch"`
	DispatchesPerSec float64 `json:"dispatches_per_sec"`
	// InlineEventFrac is the fraction of events the migrating kernel
	// loop fired without any goroutine handoff (kernel callbacks, packet
	// deliveries, and self-resumptions served on the live stack).
	InlineEventFrac float64 `json:"inline_event_frac"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
}

// ShardedBench reports the sharded-kernel pass: the same multi-node
// packet storm run once on the sequential kernel and once sharded, with
// the engines' own window/barrier counters. The virtual results are
// verified identical between the two passes before the speedup is
// computed.
type ShardedBench struct {
	Shards      int     `json:"shards"`
	Nodes       int     `json:"nodes"`
	Packets     uint64  `json:"packets"`
	Events      uint64  `json:"events"`
	WallNs      int64   `json:"wall_ns"`
	NsPerEvent  float64 `json:"ns_per_event"`
	Windows     uint64  `json:"windows"`
	BarrierNs   int64   `json:"barrier_ns"`
	BarrierFrac float64 `json:"barrier_frac"` // barrier time / total wall
	SeqWallNs   int64   `json:"seq_wall_ns"`
	Speedup     float64 `json:"speedup"` // sequential wall / sharded wall
	// SpeedupValid reports whether Speedup measures parallelism: false
	// when GOMAXPROCS=1 or the host has fewer CPUs than shards, where the
	// shard runners time-slice a core and the ratio only measures
	// scheduling overhead. Speedup assertions (CI) must key off this.
	SpeedupValid bool `json:"speedup_valid"`
	// Overhead decomposes the pass's host time (see WindowOverheadNs) so
	// BarrierFrac cannot hide where a poor speedup actually went.
	Overhead WindowOverheadNs `json:"window_overhead_ns"`
}

// WindowOverheadNs is the honest window-overhead breakdown of a sharded
// pass: BarrierNs is coordinator time between windows (cross-shard merge,
// collective application, trace flush); WindowWallNs is wall time inside
// the parallel windows (handshake send to last shard done); ShardBusyNs
// sums every shard's in-window kernel time, so WindowWallNs −
// ShardBusyNs/Shards is the dispatch loss — handshake latency, straggler
// imbalance, and runtime scheduling — that a bare barrier fraction hides.
type WindowOverheadNs struct {
	BarrierNs    int64 `json:"barrier_ns"`
	WindowWallNs int64 `json:"window_wall_ns"`
	ShardBusyNs  int64 `json:"shard_busy_ns"`
	// DispatchLossNs is max(0, WindowWallNs − ShardBusyNs/Shards).
	DispatchLossNs int64 `json:"dispatch_loss_ns"`
}

// OptimisticBench is the optimistic-kernel pass: the same ring storm run
// with speculative commit spans instead of lockstep windows, verified
// bit-identical to the sequential pass, plus the speculation counters
// that say whether optimism paid off.
type OptimisticBench struct {
	ShardedBench
	// Spans is the committed-span count (the optimistic "window" count).
	Spans uint64 `json:"spans"`
	// Reopens counts retracted span-completion claims — the honest
	// rollback counter (scheduling claims roll back; state never does).
	Reopens uint64 `json:"reopens"`
	// SpecEvents counts events executed beyond the first lookahead of
	// their span — work a conservative window would have barriered for.
	SpecEvents uint64 `json:"spec_events"`
	Stalls     uint64 `json:"stalls"`
	Jumps      uint64 `json:"jumps"`
	// RollbackRate is Reopens / SpecEvents: the fraction of speculative
	// work that retracted a quiescence claim.
	RollbackRate float64 `json:"rollback_rate"`
	// RollbacksPerWindow is Reopens / Spans.
	RollbacksPerWindow float64 `json:"rollbacks_per_window"`
	// SpeculationWin is SpecEvents / Events: how much of the run executed
	// past where a conservative window would have stopped.
	SpeculationWin float64 `json:"speculation_win"`
	// SpeedupVsConservative is the conservative pass's wall time over
	// this pass's (> 1 means optimism beat lockstep windows); only
	// meaningful when SpeedupValid.
	SpeedupVsConservative float64 `json:"speedup_vs_conservative"`
}

// ExpBench is one experiment's wall-clock timing under the sequential
// (Workers=1) and parallel (Workers=GOMAXPROCS) harness.
type ExpBench struct {
	Name  string  `json:"name"`
	SeqMs float64 `json:"seq_ms"`
	ParMs float64 `json:"par_ms"`
}

// PassRSS is one peak-RSS reading, taken after the named bench pass.
// The OS reports a high-water mark, so the series is monotone; the pass
// where the number jumps is the pass that owned the peak.
type PassRSS struct {
	Pass         string `json:"pass"`
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
}

// BenchResult is the full host-performance report written to
// BENCH_kernel.json by `oamlab bench`.
type BenchResult struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// GOGC and GOMEMLIMIT pin the GC configuration the numbers were taken
	// under — an aggressive GOGC or a tight memory limit changes ns/event
	// and allocation figures, so artifacts are only comparable when these
	// match. GOMEMLIMIT is math.MaxInt64 when unset.
	GOGC         int   `json:"gogc"`
	GOMEMLIMIT   int64 `json:"gomemlimit"`
	WorkerCounts []int `json:"worker_counts"` // effective harness widths of the seq and par passes
	// Shards is the engine shard count the harness cells requested
	// (exp.Shards); EffectiveWorkers is the harness width after the
	// cells × shards ≤ GOMAXPROCS budget.
	Shards           int  `json:"shards"`
	EffectiveWorkers int  `json:"effective_workers"`
	Quick            bool `json:"quick"`
	// Mode tags the artifact scale ("quick" or "full") so a consumer
	// never compares numbers against a mismatched-scale baseline.
	Mode string `json:"mode"`
	// Warning flags a report whose seq-vs-par comparison is meaningless
	// (GOMAXPROCS=1 serializes the parallel pass); consumers should not
	// read Speedup as a parallelism regression then.
	Warning string      `json:"warning,omitempty"`
	Kernel  KernelBench `json:"kernel"`
	// KernelSharded is the sharded-kernel storm (see ShardedBench).
	KernelSharded ShardedBench `json:"kernel_sharded"`
	// KernelOptimistic is the same storm under speculative commit spans
	// (see OptimisticBench).
	KernelOptimistic OptimisticBench `json:"kernel_optimistic"`
	// KernelObserved repeats the storm with a live obs metrics sink
	// attached to every layer; ObsOverheadPct is the per-event host-time
	// cost of that instrumentation relative to the uninstrumented pass.
	KernelObserved KernelBench `json:"kernel_observed"`
	ObsOverheadPct float64     `json:"obs_overhead_pct"`
	// KernelScale is the node-count sweep: ns/event flatness and
	// bytes/node under lazy materialization (see ScaleBench).
	KernelScale ScaleBench `json:"kernel_scale"`
	// KVSat is the service saturation pass: ORPC vs TRPC goodput through
	// the knee, plus the SLO p999 below it (see KVSaturation). All its
	// numbers are virtual-time, so they are host-independent.
	KVSat KVSaturation `json:"kv_saturation"`
	// KVMulti is the multiactive-dispatch pass: the read-heavy Zipf cell
	// at 1/2/4 simulated cores per server (see KVMultiactive). Also all
	// virtual-time and host-independent.
	KVMulti KVMultiactive `json:"kv_multiactive"`
	// RSS is the peak-RSS-after-each-pass series (monotone high-water).
	RSS         []PassRSS  `json:"rss"`
	Experiments []ExpBench `json:"experiments"`
	SeqMsTotal  float64    `json:"seq_ms_total"`
	ParMsTotal  float64    `json:"par_ms_total"`
	Speedup     float64    `json:"speedup"`
}

// KernelStorm runs the kernel microbenchmark: warmup packets to fill the
// event/packet pools, then packets more through the NIC with allocation
// accounting on. It is also used by the allocation-budget tests.
func KernelStorm(warmup, packets int) KernelBench {
	return kernelStorm(warmup, packets, nil)
}

// KernelStormObserved runs the same storm with a live obs metrics sink
// attached to every layer, measuring what instrumentation costs when it
// is actually on (the off case is KernelStorm: probes stay nil and the
// hot path never branches into the collector).
func KernelStormObserved(warmup, packets int) (KernelBench, *obs.Collector) {
	c := obs.New(obs.Options{Metrics: true})
	kb := kernelStorm(warmup, packets, func(u *am.Universe) { c.Attach(u, nil) })
	return kb, c
}

func kernelStorm(warmup, packets int, observe func(*am.Universe)) KernelBench {
	eng := sim.New(1)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	if observe != nil {
		observe(u)
	}
	received := 0
	h := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { received++ })
	var m0, m1 runtime.MemStats
	total := warmup + packets
	start := time.Now()
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			for i := 0; i < warmup; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			// Steady state: pools are warm, every send/deliver/poll from
			// here on should recycle rather than allocate.
			runtime.ReadMemStats(&m0)
			for i := 0; i < packets; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			runtime.ReadMemStats(&m1)
			return
		}
		for received < total {
			c.P.Charge(sim.Micros(2))
			ep.PollAll(c)
		}
	})
	wall := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("exp: kernel storm deadlocked: %v", err))
	}
	if received != total {
		panic(fmt.Sprintf("exp: kernel storm lost packets: %d of %d", received, total))
	}
	events := eng.Events()
	dispatches := eng.Dispatches()
	handoffs := eng.Handoffs()
	allocs := float64(m1.Mallocs - m0.Mallocs)
	kb := KernelBench{
		Packets:         uint64(packets),
		Events:          events,
		Dispatches:      dispatches,
		Handoffs:        handoffs,
		WallNs:          wall.Nanoseconds(),
		AllocsPerPacket: allocs / float64(packets),
	}
	if events > 0 {
		kb.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		kb.EventsPerSec = float64(events) / wall.Seconds()
		kb.InlineEventFrac = 1 - float64(handoffs)/float64(events)
		// The measured window covers ~packets/total of the run; scale the
		// event count rather than pretending the window saw them all.
		winEvents := float64(events) * float64(packets) / float64(total)
		kb.AllocsPerEvent = allocs / winEvents
	}
	if dispatches > 0 {
		kb.NsPerDispatch = float64(wall.Nanoseconds()) / float64(dispatches)
		kb.DispatchesPerSec = float64(dispatches) / wall.Seconds()
	}
	return kb
}

// KernelStormSharded measures the sharded kernel against the sequential
// one on an identical workload: a nodes-wide ring storm (every node
// streams small messages to its right neighbor while polling its own
// arrivals). Both passes must produce identical virtual results — event
// count and charged time — or the function panics, since that would break
// the sharded kernel's core contract.
func KernelStormSharded(nodes, packets, shards int) ShardedBench {
	sb, _ := kernelStormModes(nodes, packets, shards, false)
	return sb
}

// KernelStormOptimistic runs the ring storm three ways — sequential,
// conservative sharded, optimistic sharded — verifying both sharded
// passes bit-identical to the sequential one, and reports the
// conservative pass plus the optimistic pass with its speculation
// counters and speedup-vs-conservative.
func KernelStormOptimistic(nodes, packets, shards int) (ShardedBench, OptimisticBench) {
	return kernelStormModes(nodes, packets, shards, true)
}

func kernelStormModes(nodes, packets, shards int, withOpt bool) (ShardedBench, OptimisticBench) {
	shards = apps.ResolveShards(shards, nodes)
	seqWall, seqEvents, seqCharged, _, _ := kernelRingStorm(nodes, packets, 1, false)
	wall, events, charged, ov, _ := kernelRingStorm(nodes, packets, shards, false)
	if events != seqEvents || charged != seqCharged {
		panic(fmt.Sprintf("exp: sharded storm diverged from sequential: events %d vs %d, charged %v vs %v",
			events, seqEvents, charged, seqCharged))
	}
	sb := fillSharded(shards, nodes, packets, events, wall, seqWall, ov)
	var ob OptimisticBench
	if withOpt {
		owall, oevents, ocharged, oov, ost := kernelRingStorm(nodes, packets, shards, true)
		if oevents != seqEvents || ocharged != seqCharged {
			panic(fmt.Sprintf("exp: optimistic storm diverged from sequential: events %d vs %d, charged %v vs %v",
				oevents, seqEvents, ocharged, seqCharged))
		}
		ob.ShardedBench = fillSharded(shards, nodes, packets, oevents, owall, seqWall, oov)
		ob.Spans, ob.Reopens, ob.SpecEvents = ost.Spans, ost.Reopens, ost.SpecEvents
		ob.Stalls, ob.Jumps = ost.Stalls, ost.Jumps
		if ost.SpecEvents > 0 {
			ob.RollbackRate = float64(ost.Reopens) / float64(ost.SpecEvents)
		}
		if ost.Spans > 0 {
			ob.RollbacksPerWindow = float64(ost.Reopens) / float64(ost.Spans)
		}
		if oevents > 0 {
			ob.SpeculationWin = float64(ost.SpecEvents) / float64(oevents)
		}
		if owall > 0 {
			ob.SpeedupVsConservative = float64(wall.Nanoseconds()) / float64(owall.Nanoseconds())
		}
	}
	return sb, ob
}

// fillSharded derives the report row of one sharded pass.
func fillSharded(shards, nodes, packets int, events uint64, wall, seqWall time.Duration, ov sim.WindowOverhead) ShardedBench {
	sb := ShardedBench{
		Shards:       shards,
		Nodes:        nodes,
		Packets:      uint64(nodes * packets),
		Events:       events,
		WallNs:       wall.Nanoseconds(),
		Windows:      ov.Windows,
		BarrierNs:    ov.BarrierNs,
		SeqWallNs:    seqWall.Nanoseconds(),
		SpeedupValid: runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() >= shards,
		Overhead: WindowOverheadNs{
			BarrierNs:    ov.BarrierNs,
			WindowWallNs: ov.WindowWallNs,
			ShardBusyNs:  ov.ShardBusyNs,
		},
	}
	if shards > 0 {
		if loss := ov.WindowWallNs - ov.ShardBusyNs/int64(shards); loss > 0 {
			sb.Overhead.DispatchLossNs = loss
		}
	}
	if events > 0 {
		sb.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	if wall > 0 {
		sb.BarrierFrac = float64(ov.BarrierNs) / float64(wall.Nanoseconds())
		sb.Speedup = float64(seqWall.Nanoseconds()) / float64(wall.Nanoseconds())
	}
	return sb
}

// kernelRingStorm is one pass of the sharded storm at the given shard
// count (1 = the sequential kernel) and scheduling mode.
func kernelRingStorm(nodes, packets, shards int, optimistic bool) (wall time.Duration, events uint64, charged sim.Duration, ov sim.WindowOverhead, ost sim.OptStats) {
	mode := sim.Conservative
	if optimistic {
		mode = sim.Optimistic
	}
	eng := sim.NewShardedConfig(1, sim.ShardConfig{Shards: shards, Mode: mode})
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())
	received := make([]int, nodes)
	h := u.Register("ring", func(c threads.Ctx, pkt *cm5.Packet) { received[pkt.Dst]++ })
	start := time.Now()
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		dst := (node + 1) % nodes
		for i := 0; i < packets; i++ {
			ep.Send(c, dst, h, [4]uint64{uint64(i)}, nil)
			if i%8 == 7 {
				c.P.Charge(sim.Micros(2))
				ep.PollAll(c)
			}
		}
		for received[node] < packets {
			c.P.Charge(sim.Micros(2))
			ep.PollAll(c)
		}
	})
	wall = time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("exp: ring storm (shards=%d) deadlocked: %v", shards, err))
	}
	return wall, eng.Events(), eng.Charged(), eng.WindowOverhead(), eng.OptStats()
}

// benchSuite lists the experiments timed by Bench, in `oamlab all` order.
var benchSuite = []struct {
	name string
	run  func(Scale) error
}{
	{"table1", func(Scale) error { Table1Table(); return nil }},
	{"bulk", func(Scale) error { BulkTable(); return nil }},
	{"abortcost", func(Scale) error { AbortCostTable(); return nil }},
	{"fig1", func(s Scale) error { _, _, err := Fig1Triangle(s); return err }},
	{"fig2", func(s Scale) error { _, _, err := Fig2TSP(s); return err }},
	{"fig3", func(s Scale) error { _, _, err := Fig3SOR(s); return err }},
	{"fig4", func(s Scale) error { _, _, err := Fig4Water(s); return err }},
	{"table3", func(s Scale) error { _, err := Table3(s); return err }},
	{"ablation", func(Scale) error { AblationTable(); return nil }},
	{"appablation", func(s Scale) error { _, err := AppAblationTable(s.Quick); return err }},
	{"schedpolicy", func(Scale) error { SchedPolicyTable(); return nil }},
	{"budget", func(Scale) error { BudgetTable(); return nil }},
	{"buffering", func(Scale) error { BufferingTable(); return nil }},
	{"interrupts", func(Scale) error { InterruptsTable(); return nil }},
	{"sorsizes", func(s Scale) error { _, err := SORSizesTable(s.Quick); return err }},
	{"chaos", func(s Scale) error { _, err := ChaosTable(s); return err }},
	{"kv", func(s Scale) error { _, err := KVTable(s); return err }},
	{"kvmulti", func(s Scale) error { _, err := KVMultiactiveTable(s.Quick); return err }},
}

// Bench measures kernel throughput and the wall-clock of every experiment
// under the sequential and parallel harness. It mutates (and restores)
// Workers, so it must not run concurrently with other experiments.
func Bench(scale Scale) (*BenchResult, error) {
	warmup, packets := 50_000, 200_000
	if scale.Quick {
		warmup, packets = 5_000, 20_000
	}
	mode := "full"
	if scale.Quick {
		mode = "quick"
	}
	gogc := debug.SetGCPercent(100)
	debug.SetGCPercent(gogc)
	res := &BenchResult{
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		GOGC:             gogc,
		GOMEMLIMIT:       debug.SetMemoryLimit(-1),
		Shards:           Shards,
		EffectiveWorkers: EffectiveWorkers(),
		Quick:            scale.Quick,
		Mode:             mode,
		Kernel:           KernelStorm(warmup, packets),
	}
	markRSS := func(pass string) {
		res.RSS = append(res.RSS, PassRSS{Pass: pass, PeakRSSBytes: peakRSSBytes()})
	}
	markRSS("kernel")
	// Sharded pass: a ring storm at min(NumCPU, nodes) shards (forced to
	// at least 2 so the windowed path is always exercised, even on a
	// single-CPU host — the speedup is then < 1 and flagged below).
	ringNodes, ringPackets := 8, packets/4
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}
	res.KernelSharded, res.KernelOptimistic = KernelStormOptimistic(ringNodes, ringPackets, shards)
	markRSS("kernel_sharded")
	res.KernelObserved, _ = KernelStormObserved(warmup, packets)
	if res.Kernel.NsPerEvent > 0 {
		res.ObsOverheadPct = 100 * (res.KernelObserved.NsPerEvent/res.Kernel.NsPerEvent - 1)
	}
	markRSS("kernel_observed")
	res.KernelScale = KernelScale(scale.Quick)
	markRSS("kernel_scale")
	sat, err := KVSaturationBench(scale.Quick)
	if err != nil {
		return nil, fmt.Errorf("bench kv_saturation: %w", err)
	}
	res.KVSat = sat
	markRSS("kv_saturation")
	multi, err := KVMultiactiveBench(scale.Quick)
	if err != nil {
		return nil, fmt.Errorf("bench kv_multiactive: %w", err)
	}
	res.KVMulti = multi
	markRSS("kv_multiactive")
	if res.GOMAXPROCS == 1 {
		res.Warning = "GOMAXPROCS=1: the parallel pass runs serialized, so the seq-vs-par and seq-vs-sharded speedups do not measure parallelism"
	}
	saved := Workers
	defer func() { Workers = saved }()
	res.Experiments = make([]ExpBench, len(benchSuite))
	res.WorkerCounts = []int{1, res.GOMAXPROCS}
	if Shards > 1 {
		// The cells × shards budget caps the parallel pass width.
		saved := Workers
		Workers = res.GOMAXPROCS
		res.WorkerCounts[1] = EffectiveWorkers()
		Workers = saved
	}
	for pass, w := range res.WorkerCounts {
		Workers = w
		for i, e := range benchSuite {
			start := time.Now()
			if err := e.run(scale); err != nil {
				return nil, fmt.Errorf("bench %s (workers=%d): %w", e.name, w, err)
			}
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			res.Experiments[i].Name = e.name
			if pass == 0 {
				res.Experiments[i].SeqMs = ms
				res.SeqMsTotal += ms
			} else {
				res.Experiments[i].ParMs = ms
				res.ParMsTotal += ms
			}
		}
		if pass == 0 {
			markRSS("suite_seq")
		} else {
			markRSS("suite_par")
		}
	}
	if res.ParMsTotal > 0 {
		res.Speedup = res.SeqMsTotal / res.ParMsTotal
	}
	return res, nil
}

// WriteJSON writes the report to path (the BENCH_kernel.json artifact).
func (r *BenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Table formats the report for the terminal.
func (r *BenchResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Host performance: kernel %.0f events/sec (%.0f ns/event, %.0f ns/dispatch, %.1f%% inline, %.3f allocs/packet), suite speedup %.2fx on %d CPUs",
			r.Kernel.EventsPerSec, r.Kernel.NsPerEvent, r.Kernel.NsPerDispatch,
			100*r.Kernel.InlineEventFrac, r.Kernel.AllocsPerPacket, r.Speedup, r.GOMAXPROCS),
		Columns: []string{"Experiment", "Seq(ms)", "Par(ms)", "Speedup"},
		Notes: []string{
			"virtual results are byte-identical at any worker count; only wall time changes",
			fmt.Sprintf("live obs metrics sink: %.0f ns/event (%+.1f%% vs disabled, %.3f allocs/packet)",
				r.KernelObserved.NsPerEvent, r.ObsOverheadPct, r.KernelObserved.AllocsPerPacket),
			fmt.Sprintf("sharded kernel: %d shards over %d nodes, %.0f ns/event, %d windows, %.1f%% barrier, %.2fx vs sequential",
				r.KernelSharded.Shards, r.KernelSharded.Nodes, r.KernelSharded.NsPerEvent,
				r.KernelSharded.Windows, 100*r.KernelSharded.BarrierFrac, r.KernelSharded.Speedup),
			fmt.Sprintf("optimistic kernel: %d spans (%d reopens, %.1f%% speculative events), %.2fx vs sequential, %.2fx vs conservative",
				r.KernelOptimistic.Spans, r.KernelOptimistic.Reopens,
				100*r.KernelOptimistic.SpeculationWin,
				r.KernelOptimistic.Speedup, r.KernelOptimistic.SpeedupVsConservative),
		},
	}
	if n := len(r.KernelScale.Points); n > 0 {
		first, last := r.KernelScale.Points[0], r.KernelScale.Points[n-1]
		t.Notes = append(t.Notes, fmt.Sprintf(
			"scale sweep: %.0f ns/event at N=%d vs %.0f at N=%d (ratio %.2f, budget %.1f), %.0f B/node touched, %.1f B/node idle",
			first.NsPerEvent, first.Nodes, last.NsPerEvent, last.Nodes,
			r.KernelScale.NsPerEventRatio, r.KernelScale.NsPerEventRatioMax,
			last.BytesPerNode, r.KernelScale.IdleBytesPerNode))
		if !r.KernelScale.ScaleValid {
			t.Notes = append(t.Notes, "scale sweep below wall-clock floor on this host (scale_valid=false): ratio is not a kernel-cost measurement")
		}
	}
	if r.KVSat.Valid {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"kv saturation: TRPC knee at %.2fx load, ORPC p999 %.0f us at 70%% of knee, %.2fx ORPC/TRPC goodput at %.2fx load",
			r.KVSat.KneeRateX, r.KVSat.P999At70PctKneeUs,
			r.KVSat.GoodputRatioAtMax, r.KVSat.Multipliers[len(r.KVSat.Multipliers)-1]))
	} else {
		t.Notes = append(t.Notes,
			"kv saturation: the sweep never found the TRPC knee (kv_saturation.valid=false)")
	}
	if n := len(r.KVMulti.Cores); n > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"kv multiactive: %.2fx goodput and %.2fx p999 at %d cores vs single-active (occupancy %.2f), valid=%v",
			r.KVMulti.SpeedupAtMax, r.KVMulti.P999RatioAtMax, r.KVMulti.Cores[n-1],
			r.KVMulti.OccupancyFrac[n-1], r.KVMulti.Valid))
	}
	gcNote := fmt.Sprintf("GC config: GOGC=%d GOMEMLIMIT=", r.GOGC)
	if r.GOMEMLIMIT == math.MaxInt64 {
		gcNote += "off"
	} else {
		gcNote += fmt.Sprintf("%d", r.GOMEMLIMIT)
	}
	if n := len(r.RSS); n > 0 {
		gcNote += fmt.Sprintf("; peak RSS %.1f MiB after %s", float64(r.RSS[n-1].PeakRSSBytes)/(1<<20), r.RSS[n-1].Pass)
	}
	t.Notes = append(t.Notes, gcNote)
	if !r.KernelSharded.SpeedupValid {
		t.Notes = append(t.Notes,
			"sharded/optimistic speedups are not parallelism measurements on this host (speedup_valid=false)")
	}
	if r.Warning != "" {
		t.Notes = append(t.Notes, "WARNING: "+r.Warning)
	}
	for _, e := range r.Experiments {
		sp := 0.0
		if e.ParMs > 0 {
			sp = e.SeqMs / e.ParMs
		}
		t.Rows = append(t.Rows, []string{
			e.Name, fmt.Sprintf("%.1f", e.SeqMs), fmt.Sprintf("%.1f", e.ParMs), f2(sp),
		})
	}
	t.Rows = append(t.Rows, []string{
		"total", fmt.Sprintf("%.1f", r.SeqMsTotal), fmt.Sprintf("%.1f", r.ParMsTotal), f2(r.Speedup),
	})
	return t
}
