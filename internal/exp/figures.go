package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/sor"
	"repro/internal/apps/triangle"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/sim"
)

// Scale selects full paper-size experiments or quick reduced ones.
type Scale struct {
	// Quick shrinks the problem sizes and node counts so the whole suite
	// runs in seconds (for tests and default benchmarks).
	Quick bool
	// MaxP caps the largest machine size (0 = the scale's default).
	MaxP int
}

func (s Scale) procs(def []int) []int {
	max := s.MaxP
	if max == 0 {
		if s.Quick {
			max = 16
		} else {
			max = def[len(def)-1]
		}
	}
	var out []int
	for _, p := range def {
		if p <= max {
			out = append(out, p)
		}
	}
	return out
}

// FigRow is one curve point of a runtime/speedup figure.
type FigRow struct {
	System   string
	Nodes    int
	Runtime  sim.Duration
	Speedup  float64
	OAMs     uint64
	SuccPct  float64
	LiveStk  float64
	Threads  uint64
	BulkSent uint64
}

// figTable renders curve points in the two-panel spirit of the figures:
// runtime and speedup per system and node count.
func figTable(title string, rows []FigRow, notes ...string) *Table {
	t := &Table{
		Title: title,
		Columns: []string{"System", "P", "Runtime(s)", "Speedup",
			"OAMs", "Succ%", "LiveStack%", "Threads"},
		Notes: notes,
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.System, itoa(r.Nodes), seconds(r.Runtime), f2(r.Speedup),
			u64(r.OAMs), f1(r.SuccPct), f1(r.LiveStk), u64(r.Threads),
		})
	}
	return t
}

// Fig1Triangle reproduces Figure 1: the Triangle puzzle on 1..128
// processors under AM, ORPC, and TRPC.
func Fig1Triangle(s Scale) (*Table, []FigRow, error) {
	cfg := triangle.Config{Side: 6, Empty: -1, Seed: 101, Shards: Shards, Optimistic: Optimistic, Cores: Cores}
	if s.Quick {
		cfg.Side = 5
	}
	seq := triangle.SeqTime(cfg.BoardCounts())
	procs := s.procs([]int{1, 2, 4, 8, 16, 32, 64, 128})
	// Each (system, P) cell is an independent simulation with its own
	// engine; fan out across the worker pool and merge by index so row
	// order matches the sequential loops exactly.
	rows := make([]FigRow, len(apps.Systems)*len(procs))
	err := forEach(len(rows), func(i int) error {
		sys, p := apps.Systems[i/len(procs)], procs[i%len(procs)]
		res, err := triangle.Run(sys, p, cfg)
		if err != nil {
			return err
		}
		rows[i] = FigRow{
			System: sys.String(), Nodes: p,
			Runtime: res.Elapsed, Speedup: res.Speedup(seq),
			OAMs: res.OAMs, SuccPct: res.SuccessPercent(),
			LiveStk: res.LiveStackPct, Threads: res.ThreadsCreated,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := figTable(
		fmt.Sprintf("Figure 1: Triangle puzzle (side %d, seq %.1fs)", cfg.Side, seq.Seconds()),
		rows,
		"paper: ORPC and AM ~3x faster than TRPC (2.9x and 3.2x at 128)",
	)
	return t, rows, nil
}

// Fig2TSP reproduces Figure 2 (runtime/speedup vs slaves) and its data
// also feeds Table 2.
func Fig2TSP(s Scale) (*Table, []FigRow, error) {
	cfg := tsp.Config{Cities: 12, Seed: 102, Shards: Shards, Optimistic: Optimistic, Cores: Cores}
	slavesList := []int{1, 2, 4, 8, 16, 32, 64, 127}
	if s.Quick {
		cfg.Cities = 10
	}
	slavesList = s.procs(slavesList)
	seq := tsp.SeqTime(tsp.NewProblem(cfg.Cities, cfg.Seed).SolveSeq())
	rows := make([]FigRow, len(apps.Systems)*len(slavesList))
	err := forEach(len(rows), func(i int) error {
		sys, sl := apps.Systems[i/len(slavesList)], slavesList[i%len(slavesList)]
		res, err := tsp.Run(sys, sl, cfg)
		if err != nil {
			return err
		}
		rows[i] = FigRow{
			System: sys.String(), Nodes: sl,
			Runtime: res.Elapsed, Speedup: res.Speedup(seq),
			OAMs: res.OAMs, SuccPct: res.SuccessPercent(),
			LiveStk: res.LiveStackPct, Threads: res.ThreadsCreated,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := figTable(
		fmt.Sprintf("Figure 2: TSP (%d cities, seq %.1fs); P = number of slaves", cfg.Cities, seq.Seconds()),
		rows,
		"paper: all systems equal to 16 slaves; TRPC collapses at 64; ORPC survives to 127",
	)
	return t, rows, nil
}

// Table2 reproduces Table 2: the percentage of TSP GetJob OAMs that
// succeeded, against slave count.
func Table2(s Scale) (*Table, error) {
	_, rows, err := Fig2TSP(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 2: Optimistic Active Message successes in TSP (ORPC)",
		Columns: []string{"# Slaves", "# OAMs", "Successes", "% Successes"},
		Notes: []string{
			"paper: ~100% through 64 slaves, 0.0% at 127 (master queue always locked)",
		},
	}
	for _, r := range rows {
		if r.System != apps.ORPC.String() {
			continue
		}
		succ := uint64(float64(r.OAMs)*r.SuccPct/100 + 0.5)
		t.Rows = append(t.Rows, []string{itoa(r.Nodes), u64(r.OAMs), u64(succ), f1(r.SuccPct)})
	}
	return t, nil
}

// Fig3SOR reproduces Figure 3: SOR on 1..128 processors.
func Fig3SOR(s Scale) (*Table, []FigRow, error) {
	cfg := sor.DefaultConfig()
	if s.Quick {
		cfg = sor.Config{Rows: 66, Cols: 16, Iters: 30, Eps: 1e-9, Seed: 11}
	}
	cfg.Shards = Shards
	cfg.Optimistic = Optimistic
	cfg.Cores = Cores
	seqr := sor.SolveSeq(cfg)
	procs := s.procs([]int{1, 2, 4, 8, 16, 32, 64, 128})
	variants := []struct {
		name string
		run  func(p int) (apps.Result, error)
	}{
		{"AM", func(p int) (apps.Result, error) { return sor.Run(apps.AM, p, cfg) }},
		{"ORPC", func(p int) (apps.Result, error) { return sor.Run(apps.ORPC, p, cfg) }},
		{"TRPC", func(p int) (apps.Result, error) { return sor.Run(apps.TRPC, p, cfg) }},
		// The paper's suggested extension: ORPC with sender-specified
		// data destinations, which should match AM.
		{"ORPC-ssd", func(p int) (apps.Result, error) { return sor.RunSenderSpecified(p, cfg) }},
	}
	rows := make([]FigRow, len(variants)*len(procs))
	err := forEach(len(rows), func(i int) error {
		v, p := variants[i/len(procs)], procs[i%len(procs)]
		res, err := v.run(p)
		if err != nil {
			return err
		}
		if res.Answer != seqr.Checksum {
			return fmt.Errorf("sor/%v/%d: wrong grid", v.name, p)
		}
		rows[i] = FigRow{
			System: v.name, Nodes: p,
			Runtime: res.Elapsed, Speedup: res.Speedup(seqr.Time),
			OAMs: res.OAMs, SuccPct: res.SuccessPercent(),
			LiveStk: res.LiveStackPct, Threads: res.ThreadsCreated,
			BulkSent: res.BulkSent,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := figTable(
		fmt.Sprintf("Figure 3: SOR (%dx%d grid, %d iters, seq %.1fs)",
			cfg.Rows, cfg.Cols, cfg.Iters, seqr.Time.Seconds()),
		rows,
		"paper: ORPC ~8% faster than TRPC at 128; AM faster by one data copy; no ORPC aborts",
		"ORPC-ssd = sender-specified destinations, the paper's suggested fix; matches AM",
	)
	return t, rows, nil
}

// WaterVariant names one of the five Figure 4 configurations.
type WaterVariant struct {
	Name    string
	Sys     apps.System
	Barrier bool
}

// WaterVariants lists the five configurations of Figure 4.
var WaterVariants = []WaterVariant{
	{"AM w/barrier", apps.AM, true},
	{"ORPC w/barrier", apps.ORPC, true},
	{"TRPC w/barrier", apps.TRPC, true},
	{"ORPC", apps.ORPC, false},
	{"TRPC", apps.TRPC, false},
}

// Fig4Water reproduces Figure 4 (five variants) and feeds Table 3. Per
// the paper, the first iteration is discarded: the steady per-iteration
// time is (T(iters) - T(1)) / (iters - 1).
func Fig4Water(s Scale) (*Table, []FigRow, error) {
	cfg := water.DefaultConfig()
	cfg.Seed = 103
	cfg.Shards = Shards
	cfg.Optimistic = Optimistic
	cfg.Cores = Cores
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if s.Quick {
		cfg.Mols = 64
	}
	procs = s.procs(procs)
	seq := water.SolveSeq(water.Config{Mols: cfg.Mols, Iters: 1, Seed: cfg.Seed})
	rows := make([]FigRow, len(WaterVariants)*len(procs))
	err := forEach(len(rows), func(i int) error {
		v, p := WaterVariants[i/len(procs)], procs[i%len(procs)]
		resN, err := water.Run(v.Sys, p, v.Barrier, cfg)
		if err != nil {
			return err
		}
		one := cfg
		one.Iters = 1
		res1, err := water.Run(v.Sys, p, v.Barrier, one)
		if err != nil {
			return err
		}
		perIter := (resN.Elapsed - res1.Elapsed) / sim.Duration(cfg.Iters-1)
		rows[i] = FigRow{
			System: v.Name, Nodes: p,
			Runtime: perIter,
			Speedup: float64(seq.TimePerIter) / float64(perIter),
			OAMs:    resN.OAMs, SuccPct: resN.SuccessPercent(),
			LiveStk: resN.LiveStackPct, Threads: resN.ThreadsCreated,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := figTable(
		fmt.Sprintf("Figure 4: Water (%d molecules, per-iteration, seq %.1fs/iter)",
			cfg.Mols, seq.TimePerIter.Seconds()),
		rows,
		"paper: all variants within ~1% at 128 except barrier-free ORPC ~10% slower",
	)
	return t, rows, nil
}

// Table3 reproduces Table 3: OAM success percentage in barrier-free
// ORPC Water, against machine size.
func Table3(s Scale) (*Table, error) {
	cfg := water.DefaultConfig()
	cfg.Seed = 103
	procs := []int{2, 4, 8, 16, 32, 64, 128}
	if s.Quick {
		cfg.Mols = 64
	}
	procs = s.procs(procs)
	t := &Table{
		Title:   "Table 3: Optimistic Active Message successes in Water (ORPC, no barriers)",
		Columns: []string{"# Processors", "# OAMs", "Successes", "% Successes"},
		Notes: []string{
			"paper: 100% at 2-16 processors, 99.6-99.8% at 32-128",
		},
	}
	t.Rows = make([][]string, len(procs))
	err := forEach(len(procs), func(i int) error {
		p := procs[i]
		res, err := water.Run(apps.ORPC, p, false, cfg)
		if err != nil {
			return err
		}
		t.Rows[i] = []string{
			itoa(p), u64(res.OAMs), u64(res.Successes), f1(res.SuccessPercent()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
