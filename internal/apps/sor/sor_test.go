package sor

import (
	"testing"

	"repro/internal/apps"
)

// cfgSmall is a fast test configuration.
var cfgSmall = Config{Rows: 34, Cols: 16, Iters: 20, Eps: 1e-9, Seed: 5}

func TestSolveSeqDeterministic(t *testing.T) {
	a := SolveSeq(cfgSmall)
	b := SolveSeq(cfgSmall)
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	if a.Iters != cfgSmall.Iters {
		t.Fatalf("converged too early: %d iters", a.Iters)
	}
	if a.Time <= 0 {
		t.Fatal("non-positive sequential time")
	}
}

func TestHeatFlowsDownward(t *testing.T) {
	// After some iterations the second row must have warmed above zero
	// (heat diffuses from the fixed top row) — a physical sanity check.
	cfg := cfgSmall
	cur := newGrid(cfg.Rows, cfg.Cols)
	next := newGrid(cfg.Rows, cfg.Cols)
	initBoundary(cur)
	initBoundary(next)
	for it := 0; it < 10; it++ {
		for r := 1; r < cfg.Rows-1; r++ {
			relaxRow(cur.row(r-1), cur.row(r), cur.row(r+1), next.row(r))
		}
		cur, next = next, cur
	}
	if cur.at(1, cfg.Cols/2) <= 0 {
		t.Fatal("no heat diffused into the grid")
	}
	if cur.at(1, cfg.Cols/2) <= cur.at(5, cfg.Cols/2) {
		t.Fatal("temperature not monotone away from the hot boundary")
	}
}

// TestParallelMatchesSequentialBitwise: all three systems at several node
// counts must reproduce the sequential grid exactly.
func TestParallelMatchesSequentialBitwise(t *testing.T) {
	want := SolveSeq(cfgSmall).Checksum
	for _, sys := range apps.Systems {
		for _, n := range []int{1, 2, 5, 8} {
			res, err := Run(sys, n, cfgSmall)
			if err != nil {
				t.Fatalf("%v/%d: %v", sys, n, err)
			}
			if res.Answer != want {
				t.Errorf("%v/%d: checksum %x, want %x", sys, n, res.Answer, want)
			}
		}
	}
}

// TestNoAborts: the paper reports that no ORPC aborts in SOR at any size.
func TestNoAborts(t *testing.T) {
	res, err := Run(apps.ORPC, 4, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if res.OAMs == 0 {
		t.Fatal("no OAMs recorded")
	}
	if res.SuccessPercent() != 100 {
		t.Fatalf("success = %.2f%%, want 100%%", res.SuccessPercent())
	}
}

// TestBulkMessages: boundary rows must travel on the bulk path (the
// paper's 640-byte messages; here Cols*8 bytes).
func TestBulkMessages(t *testing.T) {
	res, err := Run(apps.ORPC, 2, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Two neighbors exchange 2 rows per iteration.
	if res.BulkSent < uint64(cfgSmall.Iters) {
		t.Fatalf("BulkSent = %d, want >= %d", res.BulkSent, cfgSmall.Iters)
	}
}

// TestORPCFasterThanTRPCAndAMFastest: the Figure 3 ordering at modest
// scale: AM <= ORPC <= TRPC in runtime.
func TestOrdering(t *testing.T) {
	var times [3]int64
	for i, sys := range apps.Systems {
		res, err := Run(sys, 8, cfgSmall)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = int64(res.Elapsed)
	}
	if !(times[0] <= times[1] && times[1] <= times[2]) {
		t.Fatalf("runtime order AM=%d ORPC=%d TRPC=%d, want AM <= ORPC <= TRPC",
			times[0], times[1], times[2])
	}
}

// TestSenderSpecifiedMatchesAM: the paper's suggested sender-specified
// destination RPC must produce the right grid and perform essentially
// identically to the hand-coded AM version (section 4.2.3).
func TestSenderSpecifiedMatchesAM(t *testing.T) {
	want := SolveSeq(cfgSmall).Checksum
	ssd, err := RunSenderSpecified(8, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Answer != want {
		t.Fatalf("ssd checksum %x, want %x", ssd.Answer, want)
	}
	amres, err := Run(apps.AM, 8, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Within a few percent at this miniature problem size (the residual
	// gap is the fixed per-message stub and lock cost, which vanishes at
	// the paper's grid size where the test below in the harness shows
	// sub-1% differences).
	ratio := float64(ssd.Elapsed) / float64(amres.Elapsed)
	if ratio > 1.05 {
		t.Fatalf("sender-specified ORPC %.4fx of AM, want within 5%%", ratio)
	}
	orpc, err := Run(apps.ORPC, 8, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Elapsed >= orpc.Elapsed {
		t.Fatalf("sender-specified (%v) not faster than buffered ORPC (%v)",
			ssd.Elapsed, orpc.Elapsed)
	}
}

func TestPartitionCovers(t *testing.T) {
	for _, n := range []int{1, 3, 7, 32} {
		covered := 0
		prevHi := 1
		for i := 0; i < n; i++ {
			lo, hi := partition(100, n, i)
			if lo != prevHi {
				t.Fatalf("gap at node %d: lo=%d prevHi=%d", i, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != 98 || prevHi != 99 {
			t.Fatalf("n=%d: covered %d rows, final hi %d", n, covered, prevHi)
		}
	}
}

func TestSORDeterminism(t *testing.T) {
	a, err := Run(apps.ORPC, 3, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(apps.ORPC, 3, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Answer != b.Answer {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
