package threads

import (
	"fmt"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// Poller is the hook through which the scheduler services the network.
// Package am installs one per node; PollOnce must poll the node's input
// queue once and dispatch at most one packet, returning whether a packet
// was handled. It runs on a handler context (Ctx with nil Thread).
type Poller interface {
	PollOnce(c Ctx) bool
}

// Stats counts scheduler activity; the paper reports the live-stack
// fraction (sections 4.1.1, 4.2.1) so it is tracked explicitly.
type Stats struct {
	Created        uint64 // threads created
	Starts         uint64 // threads started (first run)
	LiveStackStart uint64 // starts that used the live-stack optimization
	SwitchHalves   uint64 // 26 us register save/restore charges
	FreeResumes    uint64 // blocked threads that resumed in place, free
	Yields         uint64 // voluntary yields that actually switched
	Blocks         uint64 // thread suspensions (mutex, cond, rpc, barrier)
	Adopted        uint64 // lazy promotions of handler executions (oam)
	Interrupts     uint64 // message interrupts taken (interrupt mode)
}

// LiveStackPercent reports the fraction of thread starts that avoided a
// full context switch.
func (s *Stats) LiveStackPercent() float64 {
	if s.Starts == 0 {
		return 100
	}
	return 100 * float64(s.LiveStackStart) / float64(s.Starts)
}

// Scheduler is the per-node, non-preemptive, user-level thread scheduler.
// It owns the node's CPU: exactly one context — a thread, a handler, or
// the scheduler loop itself — executes per node at any simulated instant.
//
// As in the paper, "the thread scheduler runs in the context of the
// thread that called it": when a thread blocks it keeps executing as the
// *acting scheduler*, polling the network and looking for runnable
// threads. If its own wakeup arrives first it simply returns — a free
// resume, which is why a blocking RPC costs no context switch on an
// otherwise idle node. Starting a newly created thread from the acting
// scheduler (whose thread is suspended or dead) is also free beyond the
// 7 us creation cost — the live-stack optimization. Only two operations
// pay the full 52 us switch: leaving a still-runnable thread (yield), and
// restoring a previously suspended thread.
type Scheduler struct {
	node *cm5.Node
	sh   *sim.Shard
	cost cm5.CostModel

	ready deque
	cur   *Thread // thread on the CPU; nil while the scheduler loop acts
	// actor is the process currently running the scheduler loop (polling,
	// dispatching); nil while a thread has the CPU. Invariant: exactly
	// one of cur/actor is non-nil except inside a CPU handoff.
	actor      *sim.Proc
	idle       *sim.Proc // scheduler-of-last-resort process
	lent       []lendEntry
	poller     Poller
	stats      Stats
	stopped    bool
	interrupts bool
	blocked    map[*Thread]struct{}
	cores      map[*sim.Proc]struct{}
	probe      Probe
}

// Probe observes scheduler activity: thread lifetimes, ready-queue depth,
// and which simulation processes execute on this node's CPU (so observers
// can attribute per-process costs to nodes). Probes are pure observers —
// they must not schedule events or charge virtual time; every hook is
// skipped when no probe is installed.
type Probe interface {
	// ThreadCreated fires when a thread descriptor comes into existence
	// (Create, Bootstrap, or lazy promotion via Adopt).
	ThreadCreated(t sim.Time, node int, th *Thread)
	// ThreadStarted fires at a thread's first run; liveStack reports
	// whether the start used the live-stack optimization. Adopted threads
	// start implicitly (their execution state already exists).
	ThreadStarted(t sim.Time, node int, th *Thread, liveStack bool)
	// ThreadExited fires when a thread's body has returned.
	ThreadExited(t sim.Time, node int, th *Thread)
	// ReadyDepth fires whenever the node's ready-queue occupancy changes.
	ReadyDepth(t sim.Time, node int, depth int)
	// ProcBound associates a simulation process with this node: the idle
	// process, each thread's process, and lent (optimistic) executions.
	ProcBound(node int, p *sim.Proc)
}

// SetProbe installs a scheduler probe; pass nil to disable. The node's
// already-running processes (the idle process) are reported immediately.
func (s *Scheduler) SetProbe(p Probe) {
	s.probe = p
	if p != nil {
		p.ProcBound(s.node.ID(), s.idle)
	}
}

// noteReady reports a ready-queue occupancy change to the probe.
func (s *Scheduler) noteReady() {
	if s.probe != nil {
		s.probe.ReadyDepth(s.sh.Now(), s.node.ID(), s.ready.len())
	}
}

// NewScheduler creates the scheduler for node and starts its idle
// process, which acts as the scheduler whenever no thread context is
// available to act in.
func NewScheduler(node *cm5.Node) *Scheduler {
	s := &Scheduler{
		node: node,
		sh:   node.Shard(),
		cost: node.Machine().Cost(),
	}
	s.idle = s.sh.Spawn(fmt.Sprintf("idle/%d", node.ID()), s.idleLoop)
	// A packet arrival resumes the acting scheduler if it is parked with
	// nothing to do; if a thread is running (or the CPU is lent to an
	// optimistic execution) the packet waits in the input queue until the
	// node polls — CM-5 polling semantics.
	node.SetWake(s.wakeActor)
	return s
}

// Node returns the node this scheduler runs.
func (s *Scheduler) Node() *cm5.Node { return s.node }

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// SetPoller installs the scheduler's network service hook.
func (s *Scheduler) SetPoller(p Poller) { s.poller = p }

// Stop makes the idle process exit the next time it acts with nothing to
// do. Threads still in the system are unaffected; the engine's Shutdown
// reaps everything.
func (s *Scheduler) Stop() {
	s.stopped = true
	s.wakeActor()
}

// Running returns the thread currently on the CPU, or nil if the
// scheduler loop (or a handler running on it) has the CPU.
func (s *Scheduler) Running() *Thread { return s.cur }

// blockedThreads tracks live suspended threads for deadlock diagnostics.
// A thread enters on block and leaves on resume or death; the map is
// small (suspended threads only).
func (s *Scheduler) noteBlocked(t *Thread) {
	if s.blocked == nil {
		s.blocked = make(map[*Thread]struct{})
	}
	s.blocked[t] = struct{}{}
}

func (s *Scheduler) noteUnblocked(t *Thread) {
	delete(s.blocked, t)
}

// Blocked returns the names of threads currently suspended on this node,
// for deadlock reports.
func (s *Scheduler) Blocked() []string {
	var names []string
	for t := range s.blocked {
		names = append(names, t.name)
	}
	return names
}

// BindCore registers p as a simulated per-node core worker: a process
// that executes multiactive handler bodies concurrently with the node's
// scheduler (oam.Dispatcher.RunMulti). Core processes hold one of the
// node's cores rather than the scheduler CPU, so checkOnCPU accepts them
// for synchronization primitives and thread creation.
func (s *Scheduler) BindCore(p *sim.Proc) {
	if s.cores == nil {
		s.cores = make(map[*sim.Proc]struct{})
	}
	s.cores[p] = struct{}{}
	if s.probe != nil {
		s.probe.ProcBound(s.node.ID(), p)
	}
}

// UnbindCore releases a core worker registered with BindCore.
func (s *Scheduler) UnbindCore(p *sim.Proc) { delete(s.cores, p) }

// wakeActor resumes the acting scheduler when it is parked with nothing
// to do. When the CPU is lent to an optimistic execution the actor is
// parked inside the OAM dispatch protocol, not in its loop, and must not
// be woken here. With interrupts enabled, a context computing inside
// Compute is preempted instead.
func (s *Scheduler) wakeActor() {
	if s.interrupts && len(s.lent) == 0 {
		if s.cpuProc().Interrupt() {
			return
		}
	}
	if len(s.lent) == 0 && s.actor != nil && s.actor.Parked() {
		s.actor.Unpark()
	}
}

// idleLoop is the body of the scheduler-of-last-resort process: it acts
// as the scheduler whenever no blocked thread's context is available
// (at start-up, and after a thread exits leaving nothing runnable).
func (s *Scheduler) idleLoop(p *sim.Proc) {
	for !s.stopped {
		s.schedulerLoop(p, nil)
	}
}

// schedulerLoop runs the scheduler in the context of process p. self is
// the blocked thread whose context p is, or nil for the idle process.
// The loop returns when either (a) self became runnable and resumed in
// place — the free resume — or (b) the CPU was handed to another thread,
// p parked, and p has now been resumed (for a thread: it was restored;
// for the idle process: it is the actor again).
func (s *Scheduler) schedulerLoop(p *sim.Proc, self *Thread) {
	s.actor = p
	for {
		if next := s.ready.popFront(); next != nil {
			s.noteReady()
			if next == self {
				// Our own wakeup arrived while we polled: return
				// directly into the blocked thread. No switch, no cost —
				// the scheduler was running on our stack all along.
				s.stats.FreeResumes++
				s.actor = nil
				self.state = stateRunning
				s.cur = self
				return
			}
			s.actor = nil
			s.startOrResume(p, next, false)
			p.Park()
			return
		}
		if s.poller != nil && s.node.Pending() > 0 {
			s.poller.PollOnce(Ctx{P: p, S: s})
			continue
		}
		if s.stopped && self == nil {
			s.actor = nil
			return
		}
		// Nothing runnable, nothing to poll: sleep until a packet
		// delivery or a wakeup arrives.
		p.Park()
	}
}

// startOrResume hands the CPU to thread t, charging switch costs to p,
// the context giving it up (that is whose CPU time it is on this node's
// timeline).
//
// Cost model, matching the paper's measurements: a *yield* away from a
// still-runnable thread charges the full 52 us context switch up front
// (Yield does this before handing off) and marks the yielder prepaid, so
// its later restore is free — which is how the TRPC busy-server round
// trip comes out at create + one switch (74 us). A *blocked* thread's
// registers are saved lazily (free — if it resumes in place nothing was
// needed); restoring a non-prepaid suspended thread charges the restore
// half (26 us). A brand-new thread started from the acting scheduler —
// whose own thread is suspended or dead — runs on the live stack, free
// beyond its creation cost. fromRunnable reports a yield handoff, which
// is never a live-stack start.
func (s *Scheduler) startOrResume(p *sim.Proc, t *Thread, fromRunnable bool) {
	switch t.state {
	case stateNew:
		s.stats.Starts++
		if !fromRunnable {
			s.stats.LiveStackStart++
		}
		t.state = stateRunning
		s.cur = t
		t.proc = s.sh.Spawn(t.name, t.run)
		if s.probe != nil {
			s.probe.ProcBound(s.node.ID(), t.proc)
			s.probe.ThreadStarted(s.sh.Now(), s.node.ID(), t, !fromRunnable)
		}
	case stateReady:
		if t.prepaid {
			t.prepaid = false
		} else {
			s.stats.SwitchHalves++
			p.Charge(s.cost.ContextSwitch / 2)
		}
		t.state = stateRunning
		s.cur = t
		t.proc.Unpark()
	default:
		panic(fmt.Sprintf("threads: cannot start thread in state %v", t.state))
	}
}

// exitDispatch gives the CPU away from a dying thread: to the next ready
// thread if any (started on the live stack when new), else to the idle
// process, which becomes the acting scheduler. The calling process must
// return (die) immediately afterwards.
func (s *Scheduler) exitDispatch(p *sim.Proc) {
	s.cur = nil
	if next := s.ready.popFront(); next != nil {
		s.noteReady()
		s.startOrResume(p, next, false)
		return
	}
	if s.idle.Parked() {
		s.idle.Unpark()
	}
}

// makeReady puts t on the ready queue (front or back) and wakes the
// acting scheduler if it is asleep. It never switches: the scheduler is
// non-preemptive, so the current context keeps running. Safe to call
// from kernel callbacks (control-network releases).
func (s *Scheduler) makeReady(t *Thread, front bool) {
	switch t.state {
	case stateNew, stateBlocked:
		// ok
	default:
		panic(fmt.Sprintf("threads: makeReady of thread in state %v", t.state))
	}
	if t.state == stateBlocked {
		t.state = stateReady
		s.noteUnblocked(t)
	}
	if front {
		s.ready.pushFront(t)
	} else {
		s.ready.pushBack(t)
	}
	s.noteReady()
	s.wakeActor()
}

// Create allocates a new thread running body and places it on the ready
// queue; front selects the queue end (the paper schedules incoming RPC
// threads at the front). The creation cost (7 us) is charged to the
// calling context. Create never switches; the new thread runs when the
// scheduler next looks for work.
func (s *Scheduler) Create(c Ctx, name string, front bool, body func(Ctx)) *Thread {
	s.checkOnCPU(c, "Create")
	s.stats.Created++
	c.P.Charge(s.cost.ThreadCreate)
	t := &Thread{sched: s, name: name, body: body, state: stateNew}
	if s.probe != nil {
		s.probe.ThreadCreated(s.sh.Now(), s.node.ID(), t)
	}
	s.makeReady(t, front)
	return t
}

// Bootstrap creates a thread before the simulation starts (no context to
// charge). Use it for each node's initial SPMD "main" thread; everything
// after time zero should use Create.
func (s *Scheduler) Bootstrap(name string, body func(Ctx)) *Thread {
	s.stats.Created++
	t := &Thread{sched: s, name: name, body: body, state: stateNew}
	if s.probe != nil {
		s.probe.ThreadCreated(s.sh.Now(), s.node.ID(), t)
	}
	s.makeReady(t, false)
	return t
}

// Yield gives other runnable threads the CPU; if none exist it returns
// immediately. The yielding thread goes to the back of the ready queue.
// Because the yielding thread is still runnable, the switch costs the
// full 52 us.
func (s *Scheduler) Yield(c Ctx) {
	t := c.T
	if t == nil {
		panic("threads: Yield from handler context")
	}
	s.checkCurrent(t, "Yield")
	c.P.Charge(s.cost.YieldCheck)
	if s.ready.len() == 0 {
		return
	}
	s.stats.Yields++
	t.state = stateBlocked
	s.makeReady(t, false)
	next := s.ready.popFront()
	s.noteReady()
	if next == t {
		// Sole runnable thread: nothing to switch to after all.
		t.state = stateRunning
		return
	}
	// Leaving a runnable thread costs the full context switch, charged
	// here; it prepays this thread's own restore (see startOrResume).
	s.stats.SwitchHalves += 2
	c.P.Charge(s.cost.ContextSwitch)
	t.prepaid = true
	s.cur = nil
	s.startOrResume(c.P, next, true)
	c.P.Park()
}

// blockCurrent suspends the running thread (which must be c.T) until
// someone calls makeReady on it. The thread's context becomes the acting
// scheduler: it polls the network and starts other threads while waiting,
// and resumes for free if its own wakeup arrives first. Used by Mutex,
// Cond, Flag, Join, barriers, and OAM promotion.
func (s *Scheduler) blockCurrent(c Ctx) {
	t := c.T
	if t == nil {
		panic("threads: blocking operation from handler context; " +
			"handlers must not block (this is the Active Messages restriction)")
	}
	s.checkCurrent(t, "block")
	s.stats.Blocks++
	t.state = stateBlocked
	s.noteBlocked(t)
	s.cur = nil
	s.schedulerLoop(c.P, t)
	if s.cur != t {
		panic(fmt.Sprintf("threads: thread %q resumed without the CPU", t.name))
	}
}

func (s *Scheduler) checkCurrent(t *Thread, op string) {
	if s.cur != t {
		panic(fmt.Sprintf("threads: %s by thread %q which is not on the CPU", op, t.name))
	}
}

// cpuProc returns the simulation process currently holding this node's
// CPU: the innermost borrower if the CPU is lent, else the running
// thread's process, else the acting scheduler's. Handlers execute on this
// process regardless of which context polled the packet in.
func (s *Scheduler) cpuProc() *sim.Proc {
	if n := len(s.lent); n > 0 {
		return s.lent[n-1].p
	}
	if s.cur != nil {
		return s.cur.proc
	}
	if s.actor != nil {
		return s.actor
	}
	return s.idle
}

// checkOnCPU validates that c is the context currently holding this
// node's CPU. A handler context (nil Thread) is valid whenever its
// process is the one on the CPU — handlers run inline in whatever context
// polled.
func (s *Scheduler) checkOnCPU(c Ctx, op string) {
	if c.S != s {
		panic(fmt.Sprintf("threads: %s with context of another node", op))
	}
	if c.P != s.cpuProc() {
		if _, ok := s.cores[c.P]; ok {
			// A multiactive core worker: it owns one of the node's
			// simulated cores rather than the scheduler CPU.
			return
		}
		panic(fmt.Sprintf("threads: %s from context not on the CPU", op))
	}
	if len(s.lent) > 0 && s.lent[len(s.lent)-1].p == c.P {
		// A lent execution holds the CPU; it may carry an adopted thread
		// identity that is not (yet) the scheduled current thread.
		return
	}
	if c.T != nil && c.T != s.cur {
		panic(fmt.Sprintf("threads: %s by thread %q which is not on the CPU", op, c.T.name))
	}
}
