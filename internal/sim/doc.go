// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel models virtual time with nanosecond resolution and drives a set
// of coroutine processes (Proc). Exactly one process executes at any moment;
// control transfers between the kernel and processes are explicit, so a
// simulation run is sequential and bit-for-bit reproducible regardless of
// host scheduling.
//
// Processes are backed by goroutines but are not concurrent: a process runs
// until it yields by charging virtual time (Charge), parking (Park), or
// returning. The kernel then pops the next event off a (time, sequence)
// ordered heap. Because only one goroutine is ever runnable, shared state
// touched by processes and kernel callbacks needs no locking.
//
// The package is the substrate for the CM-5 machine model (package cm5),
// the user-level thread package (package threads), and everything above
// them. It knows nothing about nodes, networks, or threads.
package sim
