// Package objects is a miniature Orca-style shared-object system built on
// Optimistic Active Messages, reproducing the structure of the paper's
// second validation vehicle: "we have ported the Orca system to the CM-5
// and modified the compiler to run simple method calls in handlers using
// OAMs... performance improvements that ranged from 2 to 30 times".
//
// An Object lives on an owner node and is manipulated only through
// operations. Each operation has a guard (Orca's blocking condition) and
// a body; invocations from other nodes travel as RPCs, run optimistically
// in the handler when the guard holds and the object lock is free, and
// are promoted to threads when they must wait — exactly Orca's blocking
// object semantics, scheduled by the OAM mechanism instead of a thread
// per invocation.
package objects

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/threads"
)

// Object is a shared object: named state on an owner node, manipulated
// through guarded operations.
type Object struct {
	rt    *Runtime
	name  string
	owner int
	mu    *threads.Mutex
	cv    *threads.Cond
	state any
}

// Runtime manages the objects of one universe.
type Runtime struct {
	u    *am.Universe
	rpc  *rpc.Runtime
	objs map[string]*Object
}

// New builds an object runtime over an existing RPC runtime.
func New(rt *rpc.Runtime) *Runtime {
	return &Runtime{u: rt.Universe(), rpc: rt, objs: make(map[string]*Object)}
}

// NewObject creates a shared object on owner holding state. Objects must
// be created before the simulation starts.
func (r *Runtime) NewObject(name string, owner int, state any) *Object {
	if _, dup := r.objs[name]; dup {
		panic(fmt.Sprintf("objects: duplicate object %q", name))
	}
	mu := threads.NewMutex(r.u.Scheduler(owner))
	o := &Object{
		rt:    r,
		name:  name,
		owner: owner,
		mu:    mu,
		cv:    threads.NewCond(mu),
		state: state,
	}
	r.objs[name] = o
	return o
}

// Owner returns the object's home node.
func (o *Object) Owner() int { return o.owner }

// Op is a guarded operation on an object. Guard is evaluated with the
// object lock held; a false guard blocks the invocation (optimistically:
// aborts it) until another operation changes the state. Body runs with
// the lock held once the guard is true; its byte result is returned to
// the caller. A nil Guard means "always ready" — Orca's non-blocking
// operations.
type Op struct {
	obj   *Object
	name  string
	proc  *rpc.Proc
	guard func(state any, arg []byte) bool
	body  func(state any, arg []byte) []byte
}

// DefineOp registers an operation on the object. All operations must be
// defined before the simulation starts.
func (o *Object) DefineOp(name string,
	guard func(state any, arg []byte) bool,
	body func(state any, arg []byte) []byte,
) *Op {
	op := &Op{obj: o, name: name, guard: guard, body: body}
	op.proc = o.rt.rpc.Define(o.name+"."+name, func(e *oam.Env, caller int, arg []byte) []byte {
		e.Lock(o.mu)
		if op.guard != nil {
			e.Await(o.cv, func() bool { return op.guard(o.state, arg) })
		}
		res := op.body(o.state, arg)
		// Any state change may enable another operation's guard.
		e.Broadcast(o.cv)
		e.Unlock(o.mu)
		return res
	})
	return op
}

// Invoke performs the operation from the calling thread, wherever it
// runs; the invocation is a remote procedure call to the owner (possibly
// the caller's own node — Orca invocations are location-transparent).
func (op *Op) Invoke(c threads.Ctx, arg []byte) []byte {
	return op.proc.Call(c, op.obj.owner, arg)
}

// Stats exposes the operation's RPC/OAM counters.
func (op *Op) Stats() rpc.ProcStats { return op.proc.Stats() }
