package sim

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultEventHint is the expected pending-event population a shard's
// calendar queue is sized for when nothing better is known; layers that
// know their node count plumb a real hint through ShardConfig.EventHint
// or Engine.HintEvents instead (the cm5 machine does). eventChunk is the
// slab size of the event free list.
const (
	defaultEventHint = 1 << 10
	eventChunk       = 256
)

// maxTime is the deadline used by Run: no event timestamp can exceed it.
const maxTime = Time(math.MaxInt64)

// Action is a pre-allocated event callback: an alternative to the func()
// of At/After that avoids the per-event closure allocation on hot paths.
// The engine stores the interface value it is given; implementations are
// typically pooled by their owner, which must not recycle an Action
// before it fires.
type Action interface {
	Run()
}

// WindowHook lets the machine layer participate in sharded execution.
// Lookahead(now) bounds the width of the next parallel window: no event
// executed inside [now, now+Lookahead) may schedule work on another shard
// earlier than the window's end. Barrier runs between windows, on the
// coordinator goroutine with every shard quiescent; it is where
// cross-shard traffic buffered during the window is merged and scheduled
// in canonical order.
type WindowHook interface {
	Lookahead(now Time) Duration
	Barrier()
}

// Engine is the discrete-event simulation kernel. Create one with New,
// spawn processes with Spawn, and drive the simulation with Run.
//
// A sequential engine (New, or NewSharded with one shard) is the classic
// kernel: strictly single-threaded, with the migrating direct-handoff
// event loop. All methods must then be called from kernel callbacks or
// from the currently running process.
//
// A sharded engine (NewSharded with S > 1) partitions the simulation
// across S shards, each an independent kernel over its own event heap and
// process table, advancing in lockstep virtual-time windows whose width
// is bounded by the WindowHook's lookahead. Work must be scheduled on the
// shard that owns it (Shard(i)); the Engine-level scheduling methods
// delegate to shard 0 for setup convenience. The contract — enforced by
// the canonical event order (see heap.go) and barrier-time merging — is
// that a sharded run is bit-identical to the sequential one.
type Engine struct {
	shards []*Shard
	seed   int64
	rng    *rand.Rand
	probe  Probe
	hook   WindowHook
	// arrive/spanHook are the hook's optional optimistic-mode facets
	// (captured by type assertion in SetWindowHook).
	arrive   ArrivalHook
	spanHook SpanHook

	// Optimistic-mode configuration (see ShardConfig); opt is nil for
	// sequential and conservative engines.
	mode     ShardMode
	ckpt     Duration
	maxDrift Duration
	opt      *optState

	// userTracer receives trace records in sharded mode, where shards
	// buffer transitions during windows and the coordinator flushes them
	// in canonical order at barriers. Sequential engines bypass this and
	// trace straight from the kernel loop.
	userTracer Tracer
	scratch    Proc // reusable carrier for flushed trace records

	// globals is the cross-shard control queue of a sharded run: crash
	// instants, collective releases — events that must fire at an exact
	// instant before any shard's same-time work. Sequential engines keep
	// these on the one shard's heap (classGlobal) instead. gmu guards it:
	// optimistic runs schedule collective releases eagerly from inside
	// spans, concurrently with the shards.
	globals []globalEvent
	gseq    uint64
	gmu     sync.Mutex

	stopFlag atomic.Bool
	deadline Time

	runnersStarted bool
	windows        uint64
	barrierNs      int64
	// windowWallNs is the host time spent inside parallel windows/spans
	// (handshake send to last completion); with the shards' own busy
	// time it decomposes where a sharded run's wall clock went.
	windowWallNs int64
}

// globalEvent is one entry in the sharded engine's control queue, ordered
// by (at, key, seq) — the same canonical order classGlobal events get on a
// sequential heap.
type globalEvent struct {
	at  Time
	key uint64
	seq uint64
	fn  func()
}

// New returns a sequential engine whose random source is seeded with
// seed. The same seed always yields the same simulation.
func New(seed int64) *Engine {
	return NewSharded(seed, 1)
}

// NewSharded returns an engine with the given number of shards (clamped
// below at 1). With one shard it is exactly the sequential kernel; with
// more, Run executes the shards in parallel over lockstep virtual-time
// windows. The same seed and workload yield the same simulation at any
// shard count.
func NewSharded(seed int64, shards int) *Engine {
	return NewShardedConfig(seed, ShardConfig{Shards: shards})
}

// NewShardedConfig is NewSharded with the full shard configuration:
// cfg.Mode == Optimistic selects speculative span execution (see
// ShardMode and ShardConfig). A single-shard engine is always the plain
// sequential kernel regardless of Mode. Every mode, shard count, and
// checkpoint width yields the same simulation for the same seed and
// workload; only wall-clock time changes.
func NewShardedConfig(seed int64, cfg ShardConfig) *Engine {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	e := &Engine{
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
	e.shards = make([]*Shard, shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	if cfg.Mode == Optimistic && shards > 1 {
		e.mode = Optimistic
		e.ckpt = cfg.CheckpointEvery
		e.maxDrift = cfg.MaxDrift
		e.opt = newOptState(e)
	}
	if cfg.EventHint > 0 {
		e.HintEvents(cfg.EventHint)
	}
	return e
}

// HintEvents re-sizes every shard's event queue for roughly total
// pending events machine-wide (split evenly across shards). It only
// matters before events are scheduled; afterwards the queues size
// themselves adaptively. The machine layer calls it with a node-derived
// hint so big-N runs don't regrow their queues from scratch and small
// runs don't over-allocate.
func (e *Engine) HintEvents(total int) {
	per := total/len(e.shards) + 1
	for _, sh := range e.shards {
		sh.heap.hint(per)
	}
}

// Mode reports the engine's shard mode (Conservative for sequential and
// lockstep-sharded engines).
func (e *Engine) Mode() ShardMode { return e.mode }

// sharded reports whether this engine runs more than one shard.
func (e *Engine) sharded() bool { return len(e.shards) > 1 }

// Shards returns the number of shards (1 for a sequential engine).
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard i. Shard 0 always exists.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Seed returns the seed the engine was created with. Layers that need
// order-independent randomness (per-flight jitter streams) derive their
// own counter-seeded generators from it instead of sharing Rand.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time. In a sharded run, shard clocks
// agree at barriers; mid-window, use the owning shard's Now.
func (e *Engine) Now() Time { return e.shards[0].now }

// Rand returns the engine's deterministic random source. Its draws depend
// on call order, so sharded-safe code must not use it from inside
// windows; derive per-stream generators from Seed instead.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs a tracer; pass nil to disable tracing. In a sharded
// engine, records are buffered per shard during windows and flushed in
// canonical (time, process name, transition) order at barriers.
func (e *Engine) SetTracer(t Tracer) {
	if !e.sharded() {
		e.shards[0].tracer = t
		return
	}
	e.userTracer = t
	for _, sh := range e.shards {
		sh.buffered = t != nil
	}
}

// SetProbe installs a process-accounting probe; pass nil to disable.
// Probes see events mid-window from multiple goroutines, so they are
// only supported on sequential engines.
func (e *Engine) SetProbe(p Probe) {
	if p != nil && e.sharded() {
		panic("sim: probes require a sequential engine (shards=1)")
	}
	e.probe = p
	e.shards[0].probe = p
}

// SetWindowHook installs the machine layer's window hook (lookahead bound
// and barrier merge). Only consulted by sharded runs. Hooks that also
// implement ArrivalHook and/or SpanHook participate in optimistic mode
// (eager cross-shard arrivals; span cuts at fault-plan boundaries).
func (e *Engine) SetWindowHook(h WindowHook) {
	e.hook = h
	e.arrive, _ = h.(ArrivalHook)
	e.spanHook, _ = h.(SpanHook)
}

// Charged reports the total virtual CPU time consumed by completed
// charges so far, summed across shards.
func (e *Engine) Charged() Duration {
	var d Duration
	for _, sh := range e.shards {
		d += sh.chargedTotal
	}
	return d
}

// Events reports the number of events executed so far, summed across
// shards.
func (e *Engine) Events() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.events
	}
	return n
}

// Dispatches reports the number of process control transfers so far,
// summed across shards.
func (e *Engine) Dispatches() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.dispatches
	}
	return n
}

// Handoffs reports how many dispatches crossed goroutines (one channel
// operation each). Dispatches minus Handoffs is the number of resumes a
// yielding goroutine served to itself with zero channel operations.
func (e *Engine) Handoffs() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.handoffs
	}
	return n
}

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int {
	n := 0
	for _, sh := range e.shards {
		n += len(sh.procs)
	}
	return n
}

// WindowStats reports how many parallel windows (or, optimistic, commit
// spans) a sharded run executed and the host time spent in barriers
// (merging cross-shard traffic). Zero for sequential engines.
func (e *Engine) WindowStats() (windows uint64, barrier time.Duration) {
	return e.windows, time.Duration(e.barrierNs)
}

// WindowOverhead decomposes where a sharded run's host time went, for
// honest barrier accounting: BarrierNs is coordinator merge + trace-flush
// time; WindowWallNs is the wall time of the parallel windows themselves
// (handshake send to last shard done); ShardBusyNs sums every shard's
// in-window kernel time. WindowWallNs minus ShardBusyNs/Shards
// approximates the pure coordination loss — channel handshakes, straggler
// imbalance, and scheduler latency — that BarrierFrac alone hides.
type WindowOverhead struct {
	Windows      uint64
	BarrierNs    int64
	WindowWallNs int64
	ShardBusyNs  int64
}

// WindowOverhead reports the sharded run's host-time decomposition; zero
// for sequential engines. Call it after Run returns.
func (e *Engine) WindowOverhead() WindowOverhead {
	ov := WindowOverhead{Windows: e.windows, BarrierNs: e.barrierNs, WindowWallNs: e.windowWallNs}
	for _, sh := range e.shards {
		ov.ShardBusyNs += sh.busyNs
	}
	return ov
}

// At schedules fn on shard 0 at absolute time t; see Shard.At. On a
// sequential engine this is the whole kernel.
func (e *Engine) At(t Time, fn func()) { e.shards[0].At(t, fn) }

// After schedules fn on shard 0, d from now.
func (e *Engine) After(d Duration, fn func()) { e.shards[0].After(d, fn) }

// AtAction schedules a pre-allocated Action on shard 0 at absolute time t.
func (e *Engine) AtAction(t Time, a Action) { e.shards[0].AtAction(t, a) }

// AfterAction schedules a pre-allocated Action on shard 0, d from now.
func (e *Engine) AfterAction(d Duration, a Action) { e.shards[0].AfterAction(d, a) }

// AtTimer is At returning a cancellable handle.
func (e *Engine) AtTimer(t Time, fn func()) Timer { return e.shards[0].AtTimer(t, fn) }

// AfterTimer is After returning a cancellable handle.
func (e *Engine) AfterTimer(d Duration, fn func()) Timer { return e.shards[0].AfterTimer(d, fn) }

// Spawn creates a process on shard 0; see Shard.Spawn.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.shards[0].Spawn(name, body)
}

// AtGlobal schedules fn as a global control transition at absolute time
// t: at that instant it fires before every shard's same-time deliveries
// and ordinary events, in ascending key order among same-time globals.
// Crash points and collective releases use this so their position in the
// total event order is identical in sequential and sharded runs. In a
// sharded engine, globals run on the coordinator goroutine between
// windows; they may touch any shard's state and schedule onto any shard.
// Under a conservative engine AtGlobal must be called from setup code or
// barrier/global context, not from inside a parallel window; under an
// optimistic engine it may also be called from inside a span (eagerly
// applied collectives do), in which case the running span is cut so the
// global still fires between spans — every such instant provably exceeds
// every event time any shard can reach this span (collective latencies
// exceed the lookahead).
func (e *Engine) AtGlobal(t Time, key uint64, fn func()) {
	if !e.sharded() {
		e.shards[0].schedule(t, classGlobal, key, evFunc, fn, nil, nil)
		return
	}
	e.gmu.Lock()
	e.gseq++
	e.globals = append(e.globals, globalEvent{at: t, key: key, seq: e.gseq, fn: fn})
	sort.SliceStable(e.globals, func(i, j int) bool {
		a, b := e.globals[i], e.globals[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	})
	e.gmu.Unlock()
	if e.opt != nil {
		e.opt.cutSpan(t)
	}
}

// Timer is a handle to a scheduled kernel callback that can be cancelled
// before it fires. Handles stay safe across event recycling: a Timer
// whose event already fired (and may since have been reused for an
// unrelated event) simply fails to cancel.
type Timer struct {
	ev  *event
	sh  *Shard
	gen uint64
}

// Cancel prevents the timer's callback from running and reports whether
// it did (false when the callback already ran or was already cancelled).
// Like all kernel calls, Cancel must run in the owning shard's execution
// context (cross-shard cancels travel as deliveries — see the timer
// cancel race test). When the event is still pending it is unlinked from
// the calendar queue and recycled on the spot rather than left as a
// tombstone, so heavily-cancelled workloads keep the queue at its live
// population.
func (t *Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	if t.sh != nil && t.sh.heap.remove(ev) {
		t.sh.release(ev)
	}
	t.ev = nil
	return true
}

// Stop terminates Run after the current event completes (sequential), at
// the next window barrier (conservative sharded), or at the next span
// commit (optimistic). Call Shutdown to release the goroutines of any
// still-live processes.
func (e *Engine) Stop() {
	if !e.sharded() {
		e.shards[0].stopped = true
		return
	}
	e.stopFlag.Store(true)
}

// killed is the sentinel panic value used by Shutdown to unwind process
// goroutines. It never escapes the package.
type killedSentinel struct{}

// Shutdown forcibly terminates every live process and drops all pending
// events, releasing the backing goroutines — including the pooled workers
// of already-finished processes and, in a sharded engine, the per-shard
// window runners. It must be called from outside Run (i.e., not from a
// process or kernel callback). The engine is dead afterwards. Simulations
// that end with parked service processes (node idle loops, servers)
// should always Shutdown to avoid goroutine leaks.
//
// Victims are killed in shard order, and within a shard in ascending pid
// (spawn) order, so shutdown-time tracer output is deterministic run to
// run and shard-count-independent for processes spawned at setup.
func (e *Engine) Shutdown() {
	for _, sh := range e.shards {
		if sh.running != nil {
			panic("sim: Shutdown from inside the simulation")
		}
	}
	if e.runnersStarted {
		for _, sh := range e.shards {
			close(sh.windowCh)
		}
		e.runnersStarted = false
	}
	// Reap every shard at the engine's final virtual time. Shards bump
	// now at mode-dependent points (lockstep window starts vs optimistic
	// span starts), so per-shard now here would leak the scheduling mode
	// into shutdown-time trace timestamps; the maximum across shards is
	// the time of the last executed event, identical in every mode.
	var end Time
	for _, sh := range e.shards {
		if sh.now > end {
			end = sh.now
		}
	}
	for _, sh := range e.shards {
		if sh.now < end {
			sh.now = end
		}
		sh.shutdown()
	}
	e.flushTrace()
}

// finishRun re-raises a stashed kernel-callback panic on the caller's
// goroutine, or reports the first process failure (by shard order).
func (e *Engine) finishRun() error {
	for _, sh := range e.shards {
		if r := sh.kernelPanic; r != nil {
			sh.kernelPanic = nil
			panic(r)
		}
	}
	for _, sh := range e.shards {
		if sh.failure != nil {
			return sh.failure
		}
	}
	return nil
}

// Run executes events until every heap is empty, Stop is called, or a
// process panics. It returns the first process failure, if any. A
// non-empty set of parked processes with an empty heap is quiescence, not
// an error; callers that consider it a deadlock can check Live.
func (e *Engine) Run() error {
	if !e.sharded() {
		sh := e.shards[0]
		sh.deadline = maxTime
		sh.runKernel()
		return e.finishRun()
	}
	e.runWindows(maxTime)
	return e.finishRun()
}

// RunUntil executes events with timestamps <= deadline. It returns the
// first process failure, if any.
func (e *Engine) RunUntil(deadline Time) error {
	if !e.sharded() {
		sh := e.shards[0]
		sh.deadline = deadline
		sh.runKernel()
		if sh.now < deadline && sh.failure == nil && sh.kernelPanic == nil {
			sh.now = deadline
		}
		return e.finishRun()
	}
	e.runWindows(deadline)
	for _, sh := range e.shards {
		if sh.now < deadline && sh.failure == nil && sh.kernelPanic == nil {
			sh.now = deadline
		}
	}
	return e.finishRun()
}

// runWindows drives a sharded run in the engine's configured mode.
func (e *Engine) runWindows(deadline Time) {
	if e.mode == Optimistic {
		e.runOptimistic(deadline)
		return
	}
	e.runSharded(deadline)
}

// dispatchWindow hands one window (or span) ending at last to every shard
// runner and waits for all of them, accounting the wall time.
func (e *Engine) dispatchWindow(last Time) {
	start := time.Now()
	for _, sh := range e.shards {
		sh.windowCh <- last
	}
	for _, sh := range e.shards {
		<-sh.windowDone
	}
	e.windowWallNs += time.Since(start).Nanoseconds()
}

// startRunners launches the per-shard window-runner goroutines (once).
func (e *Engine) startRunners() {
	if e.runnersStarted {
		return
	}
	for _, sh := range e.shards {
		sh.windowCh = make(chan Time)
		sh.windowDone = make(chan struct{})
		go sh.windowRunner()
	}
	e.runnersStarted = true
}

// runSharded is the window coordinator: it alternates barriers (merge
// cross-shard traffic, flush traces, run due globals) with parallel
// windows (every shard executes its own events up to the window's end).
// The window width is bounded by the hook's lookahead and additionally
// cut at the next global event, so no event can observe work another
// shard has not yet made visible.
func (e *Engine) runSharded(deadline Time) {
	e.deadline = deadline
	e.startRunners()
	for {
		e.barrier()
		if e.stopFlag.Load() || e.anyDown() {
			break
		}
		b, ok := e.nextTime()
		if !ok || b > deadline {
			break
		}
		for _, sh := range e.shards {
			if sh.now < b {
				sh.now = b
			}
		}
		e.runGlobalsAt(b)
		if e.anyDown() {
			break
		}
		// Window [b, last], inclusive. The hook's lookahead bounds it;
		// the next global event cuts it (globals fire between windows);
		// the run deadline caps it.
		last := deadline
		if e.hook != nil {
			la := e.hook.Lookahead(b)
			if la < 1 {
				la = 1
			}
			if wl := b.Add(la) - 1; wl < last {
				last = wl
			}
		}
		if len(e.globals) > 0 && e.globals[0].at-1 < last {
			last = e.globals[0].at - 1
		}
		if last < b {
			last = b
		}
		work := false
		for _, sh := range e.shards {
			if sh.heap.len() > 0 && sh.heap.first().at <= last {
				work = true
				break
			}
		}
		if !work {
			continue
		}
		e.windows++
		e.dispatchWindow(last)
	}
}

// anyDown reports whether any shard has failed, panicked in a kernel
// callback, or been stopped.
func (e *Engine) anyDown() bool {
	for _, sh := range e.shards {
		if sh.failure != nil || sh.kernelPanic != nil || sh.stopped {
			return true
		}
	}
	return false
}

// nextTime returns the earliest pending timestamp across shard heaps and
// the global queue.
func (e *Engine) nextTime() (Time, bool) {
	best := maxTime
	ok := false
	for _, sh := range e.shards {
		if sh.heap.len() > 0 && sh.heap.first().at <= best {
			best = sh.heap.first().at
			ok = true
		}
	}
	if len(e.globals) > 0 && e.globals[0].at <= best {
		best = e.globals[0].at
		ok = true
	}
	return best, ok
}

// barrier runs the hook's merge step and flushes buffered traces. It is
// the only point where cross-shard state moves; everything here runs on
// the coordinator goroutine with all shards quiescent.
func (e *Engine) barrier() {
	start := time.Now()
	if e.hook != nil {
		e.hook.Barrier()
	}
	e.flushTrace()
	e.barrierNs += time.Since(start).Nanoseconds()
}

// runGlobalsAt pops and fires every global event scheduled at exactly t,
// in (key, seq) order (AtGlobal keeps the queue sorted). Global callbacks
// may schedule further globals.
func (e *Engine) runGlobalsAt(t Time) {
	for len(e.globals) > 0 && e.globals[0].at == t {
		g := e.globals[0]
		e.globals = e.globals[1:]
		e.shards[0].events++ // count globals once, on shard 0
		g.fn()
	}
}

// flushTrace drains every shard's buffered trace records into the user
// tracer in canonical (time, process name, transition) order.
func (e *Engine) flushTrace() {
	if e.userTracer == nil {
		return
	}
	n := 0
	for _, sh := range e.shards {
		n += len(sh.trbuf)
	}
	if n == 0 {
		return
	}
	recs := make([]traceRec, 0, n)
	for _, sh := range e.shards {
		recs = append(recs, sh.trbuf...)
		sh.trbuf = sh.trbuf[:0]
	}
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.kind < b.kind
	})
	for _, r := range recs {
		e.scratch.name = r.name
		switch r.kind {
		case 0:
			e.userTracer.Resume(r.t, &e.scratch)
		case 1:
			e.userTracer.Yield(r.t, &e.scratch)
		default:
			e.userTracer.Exit(r.t, &e.scratch)
		}
	}
}
