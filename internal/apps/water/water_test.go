package water

import (
	"math"
	"testing"

	"repro/internal/apps"
)

// cfgSmall is a fast test configuration.
var cfgSmall = Config{Mols: 24, Iters: 3, Seed: 9}

func TestSolveSeqDeterministic(t *testing.T) {
	a := SolveSeq(cfgSmall)
	b := SolveSeq(cfgSmall)
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	if a.TimePerIter <= 0 {
		t.Fatal("non-positive iteration time")
	}
}

func TestMoleculesMove(t *testing.T) {
	s := newState(cfgSmall.Mols, cfgSmall.Seed)
	before := append([]float64(nil), s.pos...)
	acc := make([]float64, 3*cfgSmall.Mols)
	upd := make([]float64, 3*cfgSmall.Mols)
	accumulateOwned(s.pos, 0, cfgSmall.Mols, cfgSmall.Mols, acc, upd, nil)
	for i := range acc {
		acc[i] += upd[i]
	}
	integrate(s, 0, cfgSmall.Mols, acc)
	moved := false
	for i := range s.pos {
		if s.pos[i] != before[i] {
			moved = true
		}
		if math.IsNaN(s.pos[i]) || math.IsInf(s.pos[i], 0) {
			t.Fatalf("position %d is %v", i, s.pos[i])
		}
	}
	if !moved {
		t.Fatal("no molecule moved")
	}
}

// TestNewtonThirdLaw: with the owner-computes-half rule over all
// molecules, total momentum change must be ~zero (forces cancel).
func TestNewtonThirdLaw(t *testing.T) {
	n := 16
	s := newState(n, 3)
	acc := make([]float64, 3*n)
	upd := make([]float64, 3*n)
	accumulateOwned(s.pos, 0, n, n, acc, upd, nil)
	for k := 0; k < 3; k++ {
		var total float64
		for i := 0; i < n; i++ {
			total += acc[3*i+k] + upd[3*i+k]
		}
		if math.Abs(total) > 1e-6 {
			t.Fatalf("net force along %d = %g, want ~0", k, total)
		}
	}
}

// TestParallelMatchesSequential: every system/variant/partitioning must
// produce the sequential trajectory (up to quantization).
func TestParallelMatchesSequential(t *testing.T) {
	want := SolveSeq(cfgSmall).Checksum
	for _, sys := range apps.Systems {
		for _, n := range []int{1, 2, 4} {
			for _, barrier := range []bool{true, false} {
				if sys == apps.AM && !barrier {
					continue
				}
				res, err := Run(sys, n, barrier, cfgSmall)
				if err != nil {
					t.Fatalf("%v/%d/barrier=%v: %v", sys, n, barrier, err)
				}
				if res.Answer != want {
					t.Errorf("%v/%d/barrier=%v: checksum %x, want %x", sys, n, barrier, res.Answer, want)
				}
			}
		}
	}
}

// TestBarrierVariantNeverAborts: the paper reports the ORPC-with-barriers
// version never aborts.
func TestBarrierVariantNeverAborts(t *testing.T) {
	res, err := Run(apps.ORPC, 4, true, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if res.OAMs == 0 {
		t.Fatal("no OAMs recorded")
	}
	if res.SuccessPercent() != 100 {
		t.Fatalf("success = %.2f%%, want 100%%", res.SuccessPercent())
	}
}

// TestOAMSuccessHighWithoutBarrier: Table 3: barrier-free success stays
// above 99%.
func TestOAMSuccessHighWithoutBarrier(t *testing.T) {
	res, err := Run(apps.ORPC, 4, false, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.SuccessPercent(); p < 99 {
		t.Fatalf("success = %.1f%%, want >= 99%%", p)
	}
}

// TestMessageCounts: P nodes exchange P(P-1) position messages per
// iteration plus the update messages of the half-shell topology, all on
// the bulk path.
func TestMessageCounts(t *testing.T) {
	n := 4
	res, err := Run(apps.ORPC, n, true, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	updMsgs := 0
	for _, row := range updTopology(cfgSmall.Mols, n) {
		for _, v := range row {
			if v {
				updMsgs++
			}
		}
	}
	perIter := uint64(n*(n-1) + updMsgs)
	want := perIter * uint64(cfgSmall.Iters)
	if res.BulkSent != want {
		t.Fatalf("BulkSent = %d, want %d", res.BulkSent, want)
	}
}

// TestUpdTopologyHalf: each node sends updates to roughly half the other
// nodes — the paper's "approximately half of them".
func TestUpdTopologyHalf(t *testing.T) {
	p := 16
	topo := updTopology(512, p)
	for m := 0; m < p; m++ {
		out := 0
		for d := 0; d < p; d++ {
			if topo[m][d] {
				out++
			}
		}
		if out < p/2-1 || out > p/2+1 {
			t.Fatalf("node %d sends to %d nodes, want ~%d", m, out, p/2)
		}
	}
}

func TestWaterDeterminism(t *testing.T) {
	a, err := Run(apps.ORPC, 3, false, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(apps.ORPC, 3, false, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Answer != b.Answer || a.OAMs != b.OAMs {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMolPartition(t *testing.T) {
	for _, p := range []int{1, 3, 7, 128} {
		covered := 0
		prevHi := 0
		for i := 0; i < p; i++ {
			lo, hi := molPartition(512, p, i)
			if lo != prevHi {
				t.Fatalf("p=%d gap at %d", p, i)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != 512 {
			t.Fatalf("p=%d covered %d", p, covered)
		}
	}
}
