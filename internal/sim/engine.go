package sim

import (
	"fmt"
	"math/rand"
)

// Engine is the discrete-event simulation kernel. Create one with New,
// spawn processes with Spawn, and drive the simulation with Run.
//
// All methods must be called either from kernel callbacks (At/After
// functions) or from the currently running process; the kernel is strictly
// sequential and is not safe for use from other goroutines.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	running *Proc
	// kernelCh is signaled by a process when it hands control back.
	kernelCh chan struct{}
	rng      *rand.Rand
	tracer   Tracer
	procs    map[uint64]*Proc // live (spawned, not yet finished) processes
	stopped  bool             // set by Stop
	killing  bool             // set by Shutdown
	failure  error

	// Stats counters, cheap enough to keep always-on.
	events     uint64
	dispatches uint64
}

// New returns an engine whose random source is seeded with seed.
// The same seed always yields the same simulation.
func New(seed int64) *Engine {
	return &Engine{
		kernelCh: make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
		procs:    make(map[uint64]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs a tracer; pass nil to disable tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Events reports the number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

// Dispatches reports the number of process control transfers so far.
func (e *Engine) Dispatches() uint64 { return e.dispatches }

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return len(e.procs) }

// At schedules fn to run in kernel context at absolute time t. Scheduling
// in the past is a programming error. Kernel callbacks must not block or
// call process-context methods such as Charge or Park.
func (e *Engine) At(t Time, fn func()) { e.at(t, fn) }

func (e *Engine) at(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.heap.push(ev)
	return ev
}

// After schedules fn to run in kernel context d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// Timer is a handle to a scheduled kernel callback that can be cancelled
// before it fires.
type Timer struct {
	ev *event
}

// AtTimer is At returning a cancellable handle.
func (e *Engine) AtTimer(t Time, fn func()) *Timer {
	return &Timer{ev: e.at(t, fn)}
}

// AfterTimer is After returning a cancellable handle.
func (e *Engine) AfterTimer(d Duration, fn func()) *Timer {
	return e.AtTimer(e.now.Add(d), fn)
}

// Cancel prevents the timer's callback from running and reports whether
// it did (false when the callback already ran or was already cancelled).
func (t *Timer) Cancel() bool {
	if t.ev == nil || t.ev.cancelled || t.ev.fn == nil {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Stop terminates Run after the current event completes. Call Shutdown to
// release the goroutines of any still-live processes.
func (e *Engine) Stop() { e.stopped = true }

// killed is the sentinel panic value used by Shutdown to unwind process
// goroutines. It never escapes the package.
type killedSentinel struct{}

// Shutdown forcibly terminates every live process and drops all pending
// events, releasing the backing goroutines. It must be called from outside
// Run (i.e., not from a process or kernel callback). The engine is dead
// afterwards. Simulations that end with parked service processes (node
// idle loops, servers) should always Shutdown to avoid goroutine leaks.
func (e *Engine) Shutdown() {
	if e.running != nil {
		panic("sim: Shutdown from inside the simulation")
	}
	e.killing = true
	e.heap.ev = nil
	// Snapshot: dispatching kills procs, which mutates e.procs.
	victims := make([]*Proc, 0, len(e.procs))
	for _, p := range e.procs {
		victims = append(victims, p)
	}
	for _, p := range victims {
		if !p.dead {
			e.dispatch(p)
		}
	}
	e.stopped = true
}

// Run executes events until the heap is empty, Stop is called, or a process
// panics. It returns the first process failure, if any. A non-empty set of
// parked processes with an empty heap is quiescence, not an error; callers
// that consider it a deadlock can check Live.
func (e *Engine) Run() error {
	for !e.stopped && e.failure == nil && e.heap.len() > 0 {
		ev := e.heap.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.events++
		fn := ev.fn
		ev.fn = nil // mark fired (Cancel returns false) and release
		fn()
	}
	return e.failure
}

// RunUntil executes events with timestamps <= deadline. It returns the
// first process failure, if any.
func (e *Engine) RunUntil(deadline Time) error {
	for !e.stopped && e.failure == nil && e.heap.len() > 0 {
		if e.heap.ev[0].at > deadline {
			break
		}
		ev := e.heap.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.events++
		fn := ev.fn
		ev.fn = nil
		fn()
	}
	if e.now < deadline && e.failure == nil {
		e.now = deadline
	}
	return e.failure
}

// dispatch transfers control to p and blocks (the kernel goroutine) until p
// yields back. It must only be called from kernel context.
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		return
	}
	if e.running != nil {
		panic("sim: dispatch while a process is running")
	}
	e.dispatches++
	e.running = p
	if e.tracer != nil {
		e.tracer.Resume(e.now, p)
	}
	p.resume <- struct{}{}
	<-e.kernelCh
	e.running = nil
}

// yieldToKernel hands control from the running process back to the kernel
// and blocks until the process is dispatched again. If the engine is being
// shut down when control returns, the process unwinds via the kill
// sentinel, which the Spawn wrapper recovers.
func (e *Engine) yieldToKernel(p *Proc) {
	if e.tracer != nil {
		e.tracer.Yield(e.now, p)
	}
	e.kernelCh <- struct{}{}
	<-p.resume
	if e.killing {
		panic(killedSentinel{})
	}
}

// checkRunning panics unless p is the currently executing process. It
// guards the process-context-only API.
func (e *Engine) checkRunning(p *Proc, op string) {
	if e.running != p {
		panic(fmt.Sprintf("sim: %s called on %q which is not the running process", op, p.name))
	}
}
