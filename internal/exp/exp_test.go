package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

var quick = Scale{Quick: true, MaxP: 8}

// TestTable1Calibration pins the headline microbenchmark (Table 1) to the
// paper's measured values within tight bands.
func TestTable1Calibration(t *testing.T) {
	rows := Table1()
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	within := func(got sim.Duration, lo, hi float64) bool {
		us := float64(got) / 1000
		return us >= lo && us <= hi
	}
	am := byName["AM"]
	if !within(am.NoThread, 11, 15) {
		t.Errorf("AM = %v, want ~13us", am.NoThread)
	}
	orpc := byName["ORPC"]
	if !within(orpc.NoThread, 12, 16) || !within(orpc.Busy, 12, 16) {
		t.Errorf("ORPC = %v/%v, want ~14us both", orpc.NoThread, orpc.Busy)
	}
	trpc := byName["TRPC"]
	if !within(trpc.NoThread, 18, 24) {
		t.Errorf("TRPC idle = %v, want ~21us", trpc.NoThread)
	}
	if !within(trpc.Busy, 68, 80) {
		t.Errorf("TRPC busy = %v, want ~74us", trpc.Busy)
	}
	// Orderings the paper emphasizes.
	if !(am.NoThread <= orpc.NoThread && orpc.NoThread < trpc.NoThread) {
		t.Error("expected AM <= ORPC < TRPC on idle server")
	}
	if trpc.Busy-orpc.Busy < sim.Micros(50) {
		t.Error("busy-server TRPC gap should be ~60us over ORPC")
	}
}

// TestBulkSweep checks the section 4.1.2 claims: a jump at the 16-byte
// boundary and a roughly constant absolute TRPC-ORPC gap.
func TestBulkSweep(t *testing.T) {
	rows := Bulk()
	var at16, at64 BulkRow
	for _, r := range rows {
		if r.Bytes == 16 {
			at16 = r
		}
		if r.Bytes == 64 {
			at64 = r
		}
	}
	if jump := at64.ORPC - at16.ORPC; jump < sim.Micros(35) || jump > sim.Micros(60) {
		t.Errorf("bulk-path jump = %v, want ~40us+", jump)
	}
	first, last := rows[0], rows[len(rows)-1]
	gapSmall := first.TRPC - first.ORPC
	gapLarge := last.TRPC - last.ORPC
	diff := gapLarge - gapSmall
	if diff < -sim.Micros(3) || diff > sim.Micros(3) {
		t.Errorf("TRPC-ORPC gap drifted: %v vs %v", gapSmall, gapLarge)
	}
	// Relative difference shrinks with size.
	relSmall := float64(first.TRPC) / float64(first.ORPC)
	relLarge := float64(last.TRPC) / float64(last.ORPC)
	if relLarge >= relSmall {
		t.Errorf("relative gap should shrink: %.3f -> %.3f", relSmall, relLarge)
	}
}

// TestAbortCostMatchesPaper pins the 7/60 abort costs.
func TestAbortCostMatchesPaper(t *testing.T) {
	live, busy := AbortCost()
	if live < sim.Micros(6) || live > sim.Micros(12) {
		t.Errorf("live-stack abort = %v, want ~7us", live)
	}
	if busy < sim.Micros(55) || busy > sim.Micros(68) {
		t.Errorf("switch abort = %v, want ~60us", busy)
	}
}

func TestFig1Quick(t *testing.T) {
	tab, rows, err := Fig1Triangle(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*4 || len(rows) != len(tab.Rows) {
		t.Fatalf("rows = %d/%d", len(tab.Rows), len(rows))
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("missing title")
	}
	// The figure panels render as SVG with a curve per system.
	rt, sp := FigPlots("Figure 1", rows)
	for _, p := range []string{rt.SVG(), sp.SVG()} {
		for _, want := range []string{"<svg", "AM", "ORPC", "TRPC", "polyline"} {
			if !strings.Contains(p, want) {
				t.Fatalf("svg missing %q", want)
			}
		}
	}
	if !strings.Contains(sp.SVG(), "stroke-dasharray=\"2,3\"") {
		t.Fatal("speedup panel missing the ideal line")
	}
}

func TestFig2AndTable2Quick(t *testing.T) {
	tab, rows, err := Fig2TSP(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(tab.Rows) != len(rows) {
		t.Fatal("row mismatch")
	}
	t2, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 { // slaves 1,2,4,8
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
}

func TestFig3Quick(t *testing.T) {
	tab, _, err := Fig3SOR(quick)
	if err != nil {
		t.Fatal(err)
	}
	// AM must never be slower than TRPC at the same P (one less copy,
	// no thread management).
	times := map[string]map[string]string{}
	for _, r := range tab.Rows {
		if times[r[1]] == nil {
			times[r[1]] = map[string]string{}
		}
		times[r[1]][r[0]] = r[2]
	}
	for p, byName := range times {
		if byName["AM"] > byName["TRPC"] {
			t.Errorf("P=%s: AM (%s) slower than TRPC (%s)", p, byName["AM"], byName["TRPC"])
		}
	}
}

func TestFig4AndTable3Quick(t *testing.T) {
	tab, rows, err := Fig4Water(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*4 {
		t.Fatalf("rows = %d, want 5 variants x 4 sizes", len(rows))
	}
	_ = tab
	t3, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t3.Rows {
		if r[3] == "0.0" {
			t.Errorf("water success collapsed: %v", r)
		}
	}
}

func TestAblationAllStrategiesComplete(t *testing.T) {
	rows := Ablation()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OAMs == 0 || r.Elapsed <= 0 {
			t.Errorf("%s: empty result %+v", r.Strategy, r)
		}
	}
	// The continuation strategy must actually adopt.
	for _, r := range rows {
		if r.Strategy == "continuation" && r.Adopted == 0 {
			t.Error("continuation strategy never adopted")
		}
		if r.Strategy == "nack" && r.Nacked == 0 {
			t.Error("nack strategy never nacked")
		}
	}
}

func TestSchedPolicyFrontWins(t *testing.T) {
	rows := SchedPolicy()
	if rows[0].Policy != "front-of-queue" || rows[1].Policy != "back-of-queue" {
		t.Fatal("unexpected row order")
	}
	if rows[0].Elapsed >= rows[1].Elapsed {
		t.Errorf("front (%v) not faster than back (%v)", rows[0].Elapsed, rows[1].Elapsed)
	}
}

func TestBudgetShape(t *testing.T) {
	rows := Budget()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	unlimited, tight := rows[0], rows[2]
	if unlimited.TooLong != 0 {
		t.Fatalf("unlimited budget aborted: %+v", unlimited)
	}
	if tight.TooLong == 0 {
		t.Fatalf("tight budget never aborted: %+v", tight)
	}
	if tight.ShortWorst >= unlimited.ShortWorst {
		t.Fatalf("budget did not improve worst-case latency: %v vs %v",
			tight.ShortWorst, unlimited.ShortWorst)
	}
}

func TestBufferingShape(t *testing.T) {
	rows := Buffering()
	var shallowSlow, deepSlow BufferRow
	for _, r := range rows {
		if r.QueueCap == 2 && r.PollEvery == sim.Micros(200) {
			shallowSlow = r
		}
		if r.QueueCap == 128 && r.PollEvery == sim.Micros(200) {
			deepSlow = r
		}
	}
	if shallowSlow.DrainSpins <= deepSlow.DrainSpins {
		t.Fatalf("shallow buffers should stall senders more: %d vs %d",
			shallowSlow.DrainSpins, deepSlow.DrainSpins)
	}
}

func TestInterruptsShape(t *testing.T) {
	rows := Interrupts()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	coarsePoll, intr := rows[0], rows[2]
	if intr.Interrupts == 0 {
		t.Fatal("interrupt mode took no interrupts")
	}
	if coarsePoll.Interrupts != 0 {
		t.Fatal("polling mode took interrupts")
	}
	// Interrupts bound latency far below the coarse polling quantum...
	if intr.ShortWorst >= coarsePoll.ShortWorst/4 {
		t.Fatalf("interrupt latency %v not clearly better than coarse polling %v",
			intr.ShortWorst, coarsePoll.ShortWorst)
	}
	// ...at the price of slower computation.
	if intr.WorkDone <= coarsePoll.WorkDone {
		t.Fatalf("interrupts should tax the computation: %v vs %v",
			intr.WorkDone, coarsePoll.WorkDone)
	}
}

func TestAppAblationQuick(t *testing.T) {
	rows, err := AppAblation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 || r.SuccPct <= 0 {
			t.Fatalf("empty row %+v", r)
		}
	}
}

// TestSORSizesClaim: the absolute ORPC-TRPC gap stays in a narrow band
// across problem sizes while the relative gap grows at smaller sizes.
func TestSORSizesClaim(t *testing.T) {
	rows, err := SORSizes(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, large := rows[0], rows[2]
	ratio := float64(small.AbsGap) / float64(large.AbsGap)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("absolute gap not size-stable: %v vs %v", small.AbsGap, large.AbsGap)
	}
	if small.RelGapPct <= large.RelGapPct {
		t.Fatalf("relative gap should grow at smaller sizes: %.2f%% vs %.2f%%",
			small.RelGapPct, large.RelGapPct)
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "note: n") {
		t.Fatalf("bad print:\n%s", out)
	}
	buf.Reset()
	tab.CSV(&buf)
	if buf.String() != "a,bb\n1,2\n333,4\n" {
		t.Fatalf("bad csv: %q", buf.String())
	}
}
