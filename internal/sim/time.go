package sim

import (
	"fmt"
	"time"
)

// Time is an absolute virtual timestamp, in nanoseconds since the start of
// the simulation. Virtual time has no relation to wall-clock time.
type Time int64

// Microsecond and friends are convenient duration units for cost models;
// the paper reports all costs in microseconds.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Micros converts a (possibly fractional) number of microseconds into a
// duration. It is the unit used throughout the CM-5 cost model.
func Micros(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Micros reports t as fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(time.Microsecond) }

// Seconds reports t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the timestamp in microseconds, the natural unit of the
// simulated machine.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }
