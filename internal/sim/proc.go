package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

// Duration aliases time.Duration; virtual durations use the same unit
// (nanoseconds) as wall-clock durations for familiarity.
type Duration = time.Duration

// Proc is a simulated coroutine process. A Proc executes user code when the
// kernel dispatches it; it yields by calling Charge, Sleep, Park, or by
// returning from its body.
//
// Procs are pooled: when a body returns, the Proc — goroutine, resume
// channel and struct — parks on its shard's free list, and a later Spawn
// recycles it as a fresh process. A *Proc held after its process finished
// stays inert (Unpark and friends see it dead) only until that recycling;
// holding a handle past the process's death is a programming error.
type Proc struct {
	sh     *Shard
	name   string
	resume chan struct{} // cap 1: a handoff token can be deposited by its own goroutine
	body   func(p *Proc) // pending incarnation; consumed at first dispatch
	parked bool
	dead   bool
	id     uint64
	slot   int   // index in the shard's live-proc table
	next   *Proc // free-list link while pooled

	// Interruptible-charge state (see ChargeInterruptible). intTimer is a
	// value, not a pointer, so arming it allocates nothing.
	intTimer    Timer
	intStart    Time
	interrupted bool
}

// PanicError wraps a panic raised inside a process body so that Run can
// report it as an error with the originating process's name.
type PanicError struct {
	Proc  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", e.Proc, e.Value, e.Stack)
}

// Spawn creates a process named name running body, scheduled to start at
// the shard's current virtual time (after already-scheduled same-time
// events). The body runs in process context: it may call Charge, Sleep,
// Park and friends — all of which operate on this shard's kernel.
//
// Spawn reuses the goroutine and resume channel of a finished process
// when one is pooled, so steady-state process churn allocates nothing.
func (sh *Shard) Spawn(name string, body func(p *Proc)) *Proc {
	sh.seq++
	p := sh.freeProc
	if p != nil {
		sh.freeProc = p.next
		p.next = nil
		p.name = name
		p.dead = false
	} else {
		p = &Proc{sh: sh, name: name, resume: make(chan struct{}, 1)}
		go sh.procLoop(p)
	}
	p.id = sh.seq
	if sh.eng.sharded() {
		// Disambiguate pids across shards without perturbing the
		// sequential id sequence (pinned by golden traces).
		p.id |= uint64(sh.idx) << 56
	}
	p.body = body
	sh.addProc(p)
	sh.atProc(sh.now, p)
	if sh.probe != nil {
		sh.probe.Spawned(p)
	}
	return p
}

// procLoop is the lifetime of a worker goroutine: one process incarnation
// per iteration. After a body returns, the goroutine — which at that
// moment holds the kernel role the dead process gave up — parks its Proc
// for reuse, keeps firing events until the kernel role moves on, then
// sleeps until a later Spawn dispatches it again.
func (sh *Shard) procLoop(p *Proc) {
	for {
		<-p.resume
		if p.body == nil {
			return // Shutdown drained the worker pool
		}
		sh.runBody(p)
		if sh.killing {
			// Shutdown dispatched us to unwind; hand control back to it
			// and terminate instead of pooling.
			sh.doneCh <- struct{}{}
			return
		}
		// Pool the proc before continuing as the kernel: the free list
		// is only ever touched by the kernel-role holder, and the
		// buffered resume channel makes a respawn-and-dispatch within
		// our own tenure safe (the token waits until we loop around).
		sh.running = nil
		sh.releaseProc(p)
		if sh.loop(nil) == loopEnded {
			sh.doneCh <- struct{}{}
		}
	}
}

// runBody executes one incarnation, converting a panic into the shard's
// failure (or swallowing the kill sentinel) and emitting the exit trace.
func (sh *Shard) runBody(p *Proc) {
	body := p.body
	p.body = nil
	defer func() {
		p.dead = true
		sh.removeProc(p)
		if r := recover(); r != nil {
			if _, kill := r.(killedSentinel); !kill && sh.failure == nil {
				sh.failure = &PanicError{Proc: p.name, Value: r, Stack: debug.Stack()}
			}
		}
		if sh.tracing() {
			sh.traceExit(p)
		}
	}()
	if sh.killing {
		panic(killedSentinel{})
	}
	body(p)
}

// releaseProc parks a finished proc on the free list for reuse.
func (sh *Shard) releaseProc(p *Proc) {
	p.parked = false
	p.interrupted = false
	p.intTimer = Timer{}
	p.next = sh.freeProc
	sh.freeProc = p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns a unique process identifier (its spawn sequence number; in a
// sharded engine the shard index occupies the top byte).
func (p *Proc) ID() uint64 { return p.id }

// Engine returns the engine that owns p.
func (p *Proc) Engine() *Engine { return p.sh.eng }

// Shard returns the shard whose kernel schedules p. Code running in
// process context must schedule follow-up work (timers, callbacks,
// spawns) through this shard, not through the engine facade, to stay
// correct under sharded execution.
func (p *Proc) Shard() *Shard { return p.sh }

// Dead reports whether the process body has returned or panicked.
func (p *Proc) Dead() bool { return p.dead }

// Parked reports whether the process is parked waiting for Unpark.
func (p *Proc) Parked() bool { return p.parked }

// Now returns the owning shard's current virtual time. Usable from any
// context on that shard.
func (p *Proc) Now() Time { return p.sh.now }

// Charge consumes d of virtual CPU time: the process is suspended and
// resumes exactly d later. Charge(0) yields to other same-time events.
// Must be called from the running process.
func (p *Proc) Charge(d Duration) {
	if d < 0 {
		panic("sim: negative charge")
	}
	sh := p.sh
	sh.checkRunning(p, "Charge")
	sh.chargedTotal += d
	if sh.probe != nil {
		sh.probe.Charged(p, sh.now, d)
	}
	sh.atProc(sh.now.Add(d), p)
	sh.yieldToKernel(p)
}

// Sleep is Charge under a name that reads better for idle waits.
func (p *Proc) Sleep(d Duration) { p.Charge(d) }

// ChargeInterruptible consumes up to d of virtual CPU time like Charge,
// but the charge can be cut short by Interrupt (hardware message
// interrupts in the machine model). It returns the unconsumed remainder:
// zero when the full duration elapsed, positive when interrupted. Must be
// called from the running process.
func (p *Proc) ChargeInterruptible(d Duration) Duration {
	if d < 0 {
		panic("sim: negative charge")
	}
	sh := p.sh
	sh.checkRunning(p, "ChargeInterruptible")
	if d == 0 {
		p.Charge(0)
		return 0
	}
	p.intStart = sh.now
	p.interrupted = false
	ev := sh.schedule(sh.now.Add(d), classNormal, 0, evIntProc, nil, nil, p)
	p.intTimer = Timer{ev: ev, sh: sh, gen: ev.gen}
	sh.yieldToKernel(p)
	consumed := Duration(sh.now - p.intStart)
	sh.chargedTotal += consumed
	if sh.probe != nil {
		sh.probe.Charged(p, p.intStart, consumed)
	}
	if !p.interrupted {
		return 0
	}
	p.interrupted = false
	return d - consumed
}

// Interrupt preempts p's in-progress interruptible charge: p resumes at
// the current virtual time with the remainder of its charge unconsumed.
// Callable from kernel callbacks or other processes on the same shard. It
// reports whether a charge was actually interrupted (false when p is not
// inside ChargeInterruptible — a plain Charge cannot be preempted).
func (p *Proc) Interrupt() bool {
	if p.dead || p.intTimer.ev == nil {
		return false
	}
	if !p.intTimer.Cancel() {
		return false
	}
	p.intTimer = Timer{}
	p.interrupted = true
	sh := p.sh
	sh.atProc(sh.now, p)
	return true
}

// Park suspends the process until another party calls Unpark. Must be
// called from the running process.
func (p *Proc) Park() {
	p.sh.checkRunning(p, "Park")
	p.parked = true
	p.sh.yieldToKernel(p)
}

// Unpark makes a parked process runnable at the current virtual time. It
// may be called from kernel callbacks or from another running process on
// the same shard; it is a no-op on a dead process and a programming error
// on a process that is not parked.
func (p *Proc) Unpark() {
	if p.dead {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked process %q", p.name))
	}
	p.parked = false
	p.sh.atProc(p.sh.now, p)
}

// UnparkAfter makes a parked process runnable d from now.
func (p *Proc) UnparkAfter(d Duration) {
	if p.dead {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: UnparkAfter of non-parked process %q", p.name))
	}
	p.parked = false
	p.sh.atProc(p.sh.now.Add(d), p)
}
