// Package gentest is the end-to-end proof of the stub compiler: stubs.go
// is generated from alltypes.rpc by cmd/stubgen (checked in, like the
// application stubs), and these tests drive every generated stub through
// a live simulated cluster in both dispatch modes.
package gentest

import (
	"bytes"
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

func runBoth(t *testing.T, body func(t *testing.T, rt *rpc.Runtime, u *am.Universe)) {
	t.Helper()
	for _, mode := range []rpc.Mode{rpc.ORPC, rpc.TRPC} {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sim.New(5)
			defer eng.Shutdown()
			u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
			rt := rpc.New(u, rpc.Options{Mode: mode})
			body(t, rt, u)
		})
	}
}

func TestEchoAllScalars(t *testing.T) {
	runBoth(t, func(t *testing.T, rt *rpc.Runtime, u *am.Universe) {
		echo := DefineEcho(rt, func(e *oam.Env, caller int,
			b bool, i32 int32, i64 int64, u32 uint32, u64v uint64, f32 float32, f64v float64,
		) (bool, int32, int64, uint32, uint64, float32, float64) {
			return b, i32, i64, u32, u64v, f32, f64v
		})
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			if node != 0 {
				return
			}
			ob, oi32, oi64, ou32, ou64, of32, of64 := echo.Call(c, 1,
				true, -42, -1<<60, 0xffffffff, 1<<63, 2.5, -1e300)
			if !ob || oi32 != -42 || oi64 != -1<<60 || ou32 != 0xffffffff ||
				ou64 != 1<<63 || of32 != 2.5 || of64 != -1e300 {
				t.Errorf("echo mismatch: %v %v %v %v %v %v %v",
					ob, oi32, oi64, ou32, ou64, of32, of64)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBuffers(t *testing.T) {
	runBoth(t, func(t *testing.T, rt *rpc.Runtime, u *am.Universe) {
		buf := DefineBuffers(rt, func(e *oam.Env, caller int,
			raw []byte, s string, fs []float64, is []int32, us []uint64,
		) ([]byte, string, []float64, []int32, []uint64) {
			return raw, s, fs, is, us
		})
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			if node != 0 {
				return
			}
			raw := make([]byte, 500) // forces the bulk path
			for i := range raw {
				raw[i] = byte(i)
			}
			oraw, os, ofs, ois, ous := buf.Call(c, 1,
				raw, "héllo", []float64{1, -2.5}, []int32{7, -7}, []uint64{9})
			if !bytes.Equal(oraw, raw) || os != "héllo" ||
				len(ofs) != 2 || ofs[1] != -2.5 ||
				len(ois) != 2 || ois[1] != -7 ||
				len(ous) != 1 || ous[0] != 9 {
				t.Error("buffer echo mismatch")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestCornerShapes(t *testing.T) {
	runBoth(t, func(t *testing.T, rt *rpc.Runtime, u *am.Universe) {
		noArgs := DefineNoArgs(rt, func(e *oam.Env, caller int) int64 { return 77 })
		got := int64(0)
		noRes := DefineNoResults(rt, func(e *oam.Env, caller int, x int64) { got = x })
		pinged := false
		nothing := DefineNothing(rt, func(e *oam.Env, caller int) { pinged = true })
		fired := uint64(0)
		fire := DefineFire(rt, func(e *oam.Env, caller int, tag uint64) { fired = tag })
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			if node != 0 {
				return
			}
			if v := noArgs.Call(c, 1); v != 77 {
				t.Errorf("NoArgs = %d", v)
			}
			noRes.Call(c, 1, 123)
			nothing.Call(c, 1)
			fire.CallAsync(c, 1, 99)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 123 || !pinged || fired != 99 {
			t.Errorf("corner shapes: got=%d pinged=%v fired=%d", got, pinged, fired)
		}
	})
}

func TestStructMarshaling(t *testing.T) {
	runBoth(t, func(t *testing.T, rt *rpc.Runtime, u *am.Universe) {
		dot := DefineDot(rt, func(e *oam.Env, caller int, a, b Vec) float64 {
			return a.X*b.X + a.Y*b.Y + a.Z*b.Z
		})
		tag := DefineTag(rt, func(e *oam.Env, caller int, r Record) Record {
			r.Label = "seen:" + r.Label
			return r
		})
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			if node != 0 {
				return
			}
			if d := dot.Call(c, 1, Vec{1, 2, 3}, Vec{4, 5, 6}); d != 32 {
				t.Errorf("dot = %v, want 32", d)
			}
			out := tag.Call(c, 1, Record{Id: 7, Label: "x", Payload: []byte{1, 2}})
			if out.Id != 7 || out.Label != "seen:x" || !bytes.Equal(out.Payload, []byte{1, 2}) {
				t.Errorf("tag = %+v", out)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestGeneratedStatsWork(t *testing.T) {
	runBoth(t, func(t *testing.T, rt *rpc.Runtime, u *am.Universe) {
		p := DefineNoArgs(rt, func(e *oam.Env, caller int) int64 { return 1 })
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			if node != 0 {
				return
			}
			for i := 0; i < 4; i++ {
				p.Call(c, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.Calls != 4 {
			t.Fatalf("calls = %d", st.Calls)
		}
		if rt.Mode() == rpc.ORPC && st.OAMs != 4 {
			t.Fatalf("oams = %d", st.OAMs)
		}
		if rt.Mode() == rpc.TRPC && st.Threads != 4 {
			t.Fatalf("threads = %d", st.Threads)
		}
	})
}

// TestCompatSpecGolden pins the compatibility matrix generated from
// alltypes.rpc: method order, which methods carry key extractors, and the
// extractors' ability to decode past earlier parameters.
func TestCompatSpecGolden(t *testing.T) {
	spec := CompatSpec()
	if got := spec.Table.Methods(); got != 8 {
		t.Fatalf("matrix classes = %d, want 8 (one per proc)", got)
	}
	wantKeyed := map[string]bool{
		"Echo": true, "Buffers": false, "NoArgs": false, "NoResults": true,
		"Nothing": false, "Fire": false, "Dot": false, "Tag": false,
	}
	if len(spec.Methods) != len(wantKeyed) {
		t.Fatalf("methods = %d, want %d", len(spec.Methods), len(wantKeyed))
	}
	for _, m := range spec.Methods {
		keyed, known := wantKeyed[m.Name]
		if !known {
			t.Errorf("unexpected method %q", m.Name)
			continue
		}
		if (m.Key != nil) != keyed {
			t.Errorf("%s: keyed = %v, want %v", m.Name, m.Key != nil, keyed)
		}
	}
	// Echo's key (i64) sits behind a bool and an int32 on the wire; the
	// extractor must decode past both.
	enc := rpc.NewEnc(16)
	enc.Bool(true)
	enc.I32(-42)
	enc.I64(123456789)
	if got := spec.Methods[0].Key(enc.Bytes()); got != 123456789 {
		t.Errorf("keyEcho = %d, want 123456789", got)
	}
	// NoResults' key is its first (only) parameter; a negative int64 maps
	// onto uint64 bit-for-bit.
	enc = rpc.NewEnc(8)
	enc.I64(-1)
	if got := spec.Methods[3].Key(enc.Bytes()); got != ^uint64(0) {
		t.Errorf("keyNoResults = %#x, want all-ones", got)
	}
}

// TestCompatMultiactiveLive drives the generated CompatSpec through a live
// multiactive runtime: two clients calling the always-compatible NoArgs
// are admitted concurrently onto separate cores.
func TestCompatMultiactiveLive(t *testing.T) {
	eng := sim.New(5)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 3, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC, OAM: oam.Options{Cores: 2}})
	noArgs := DefineNoArgs(rt, func(e *oam.Env, caller int) int64 {
		e.Compute(sim.Micros(50))
		return int64(caller)
	})
	rt.SetCompat(CompatSpec())
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 1 {
			return
		}
		if v := noArgs.Call(c, 1); v != int64(node) {
			t.Errorf("node %d: NoArgs = %d", node, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Dispatcher().Stats()
	if st.Total != 2 || st.Succeeded != 2 {
		t.Fatalf("stats %v", st)
	}
	if st.CompatAdmitted != 2 || st.CompatQueued != 0 {
		t.Fatalf("both calls should be admitted concurrently: %v", st)
	}
}
