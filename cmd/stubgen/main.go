// Command stubgen compiles remote-procedure specifications (.rpc files)
// into Go stub code over the Optimistic RPC runtime:
//
//	stubgen -in spec.rpc -out spec_gen.go
//
// See package stubc for the specification language.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/stubc"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stubgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input .rpc specification file")
	out := fs.String("out", "", "output .go file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "stubgen: -in is required")
		return 2
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "stubgen: %v\n", err)
		return 1
	}
	f, err := stubc.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "stubgen: %s: %v\n", *in, err)
		return 1
	}
	code, err := stubc.Generate(f)
	if err != nil {
		fmt.Fprintf(stderr, "stubgen: %v\n", err)
		return 1
	}
	if *out == "" {
		stdout.Write(code)
		return 0
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintf(stderr, "stubgen: %v\n", err)
		return 1
	}
	return 0
}
