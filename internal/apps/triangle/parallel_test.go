package triangle

import (
	"testing"

	"repro/internal/apps"
)

// cfg5 is the fast test configuration: side 5, 849 positions.
var cfg5 = Config{Side: 5, Empty: -1, Seed: 7}

func TestParallelMatchesSequential(t *testing.T) {
	want := NewBoard(5).SolveSeq().Solutions
	for _, sys := range apps.Systems {
		for _, n := range []int{1, 2, 4, 7} {
			res, err := Run(sys, n, cfg5)
			if err != nil {
				t.Fatalf("%v/%d: %v", sys, n, err)
			}
			if res.Answer != want {
				t.Errorf("%v/%d: solutions = %d, want %d", sys, n, res.Answer, want)
			}
			if res.Elapsed <= 0 {
				t.Errorf("%v/%d: elapsed = %v", sys, n, res.Elapsed)
			}
		}
	}
}

// TestORPCNeverAborts: the paper reports that no Triangle RPC blocks
// ("of which none block"), so ORPC success must be 100%.
func TestORPCNeverAborts(t *testing.T) {
	res, err := Run(apps.ORPC, 4, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OAMs == 0 {
		t.Fatal("no OAMs recorded")
	}
	if res.SuccessPercent() != 100 {
		t.Fatalf("success = %.2f%%, want 100%%", res.SuccessPercent())
	}
}

// TestTRPCCreatesThreadPerMessage: in TRPC mode every insert costs a
// thread; in ORPC mode none do (no aborts).
func TestTRPCCreatesThreadPerMessage(t *testing.T) {
	orpc, err := Run(apps.ORPC, 4, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	trpc, err := Run(apps.TRPC, 4, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	// 4 bootstrap mains plus one thread per extension message.
	if trpc.ThreadsCreated < orpc.ThreadsCreated+uint64(orpc.OAMs)/2 {
		t.Fatalf("TRPC threads = %d, ORPC threads = %d, OAMs = %d",
			trpc.ThreadsCreated, orpc.ThreadsCreated, orpc.OAMs)
	}
	if orpc.Elapsed >= trpc.Elapsed {
		t.Fatalf("ORPC (%v) not faster than TRPC (%v)", orpc.Elapsed, trpc.Elapsed)
	}
}

// TestAMAndORPCClose: hand-coded AM and ORPC should be within a modest
// factor of each other (the paper: "nearly the performance").
func TestAMAndORPCClose(t *testing.T) {
	amres, err := Run(apps.AM, 4, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	orpc, err := Run(apps.ORPC, 4, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(orpc.Elapsed) / float64(amres.Elapsed)
	if ratio > 1.35 {
		t.Fatalf("ORPC/AM = %.2f, want <= 1.35", ratio)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(apps.ORPC, 3, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(apps.ORPC, 3, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Answer != b.Answer || a.OAMs != b.OAMs {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSeqTimePositive(t *testing.T) {
	c := NewBoard(5).SolveSeq()
	if SeqTime(c) <= 0 {
		t.Fatal("SeqTime must be positive")
	}
}
