package exp

import (
	"bytes"
	"fmt"
	"testing"
)

// renderSuite runs a representative slice of the harness (regular cells,
// a chaos sweep, and micro measurements) and renders every table to one
// buffer. Virtual results must not depend on the worker count.
func renderSuite(t *testing.T, workers int) (string, []ChaosRow) {
	t.Helper()
	saved := Workers
	Workers = workers
	defer func() { Workers = saved }()

	s := Scale{Quick: true, MaxP: 8}
	var buf bytes.Buffer

	tab, _, err := Fig1Triangle(s)
	if err != nil {
		t.Fatalf("fig1 (workers=%d): %v", workers, err)
	}
	tab.Print(&buf)

	tab, _, err = Fig2TSP(s)
	if err != nil {
		t.Fatalf("fig2 (workers=%d): %v", workers, err)
	}
	tab.Print(&buf)

	tab, err = Table3(s)
	if err != nil {
		t.Fatalf("table3 (workers=%d): %v", workers, err)
	}
	tab.Print(&buf)

	Table1Table().Print(&buf)

	tab, err = ChaosTable(s)
	if err != nil {
		t.Fatalf("chaos (workers=%d): %v", workers, err)
	}
	tab.Print(&buf)

	rows, err := Chaos(s)
	if err != nil {
		t.Fatalf("chaos rows (workers=%d): %v", workers, err)
	}
	return buf.String(), rows
}

// TestParallelHarnessDeterminism is the regression test for the parallel
// harness: running the same experiments with 1 worker and with 4 must
// produce byte-identical tables and identical fault-trace hashes. Run
// under -race this also exercises the worker pool for data races.
func TestParallelHarnessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run suite comparison")
	}
	seqOut, seqRows := renderSuite(t, 1)
	parOut, parRows := renderSuite(t, 4)
	if seqOut != parOut {
		t.Errorf("sequential and parallel table output differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqOut, parOut)
	}
	if len(seqRows) != len(parRows) {
		t.Fatalf("chaos row count differs: %d vs %d", len(seqRows), len(parRows))
	}
	for i := range seqRows {
		if seqRows[i].FaultHash != parRows[i].FaultHash {
			t.Errorf("chaos row %d (%s drop=%.1f crashes=%d): fault-trace hash %#x (workers=1) != %#x (workers=4)",
				i, seqRows[i].App, seqRows[i].DropPct, seqRows[i].Crashes,
				seqRows[i].FaultHash, parRows[i].FaultHash)
		}
		if seqRows[i] != parRows[i] {
			t.Errorf("chaos row %d differs between worker counts:\n  seq: %+v\n  par: %+v", i, seqRows[i], parRows[i])
		}
	}
}

// TestForEachOrderAndErrors pins the harness contract: every index runs
// exactly once, and the reported error is the lowest-index failure no
// matter the scheduling.
func TestForEachOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		saved := Workers
		Workers = workers
		ran := make([]int, 100)
		err := forEach(100, func(i int) error {
			ran[i]++
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return errAt(i)
			}
			return nil
		})
		Workers = saved
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
		if err != errAt(3) {
			t.Fatalf("workers=%d: want lowest-index error %v, got %v", workers, errAt(3), err)
		}
	}
}

type errAt int

func (e errAt) Error() string { return fmt.Sprintf("cell %d failed", int(e)) }
