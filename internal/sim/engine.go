package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// heapSizeHint pre-sizes the event heap so steady-state simulations never
// grow it; eventChunk is the slab size of the event free list.
const (
	heapSizeHint = 1 << 10
	eventChunk   = 256
)

// Action is a pre-allocated event callback: an alternative to the func()
// of At/After that avoids the per-event closure allocation on hot paths.
// The engine stores the interface value it is given; implementations are
// typically pooled by their owner, which must not recycle an Action
// before it fires.
type Action interface {
	Run()
}

// Engine is the discrete-event simulation kernel. Create one with New,
// spawn processes with Spawn, and drive the simulation with Run.
//
// All methods must be called either from kernel callbacks (At/After
// functions) or from the currently running process; the kernel is strictly
// sequential and is not safe for use from other goroutines.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	free    *event // recycled events (single-threaded: no locking)
	running *Proc
	// kernelCh is signaled by a process when it hands control back.
	kernelCh chan struct{}
	rng      *rand.Rand
	tracer   Tracer
	procs    []*Proc // live (spawned, not yet finished) processes, unordered
	stopped  bool    // set by Stop
	killing  bool    // set by Shutdown
	failure  error

	// Stats counters, cheap enough to keep always-on.
	events     uint64
	dispatches uint64
}

// New returns an engine whose random source is seeded with seed.
// The same seed always yields the same simulation.
func New(seed int64) *Engine {
	return &Engine{
		kernelCh: make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
		heap:     eventHeap{ev: make([]*event, 0, heapSizeHint)},
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs a tracer; pass nil to disable tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Events reports the number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

// Dispatches reports the number of process control transfers so far.
func (e *Engine) Dispatches() uint64 { return e.dispatches }

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return len(e.procs) }

// alloc takes an event from the free list, refilling it a slab at a time.
func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		chunk := make([]event, eventChunk)
		for i := range chunk {
			chunk[i].next = e.free
			e.free = &chunk[i]
		}
		ev = e.free
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// release recycles a fired or surfaced-cancelled event. Bumping gen
// invalidates any Timer still holding the pointer.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.act = nil
	ev.proc = nil
	ev.kind = evFunc
	ev.cancelled = false
	ev.next = e.free
	e.free = ev
}

// schedule is the single entry point onto the event heap.
func (e *Engine) schedule(t Time, kind eventKind, fn func(), act Action, p *Proc) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.kind = kind
	ev.fn = fn
	ev.act = act
	ev.proc = p
	e.heap.push(ev)
	return ev
}

// At schedules fn to run in kernel context at absolute time t. Scheduling
// in the past is a programming error. Kernel callbacks must not block or
// call process-context methods such as Charge or Park.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, evFunc, fn, nil, nil) }

// After schedules fn to run in kernel context d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// AtAction schedules a pre-allocated Action at absolute time t. Unlike At
// it allocates nothing beyond a pooled event, so hot paths (packet
// delivery) can schedule without producing garbage.
func (e *Engine) AtAction(t Time, a Action) { e.schedule(t, evAction, nil, a, nil) }

// AfterAction schedules a pre-allocated Action d from now.
func (e *Engine) AfterAction(d Duration, a Action) { e.AtAction(e.now.Add(d), a) }

// atProc schedules the resumption of p at time t without any closure.
func (e *Engine) atProc(t Time, p *Proc) { e.schedule(t, evProc, nil, nil, p) }

// Timer is a handle to a scheduled kernel callback that can be cancelled
// before it fires. Handles stay safe across event recycling: a Timer
// whose event already fired (and may since have been reused for an
// unrelated event) simply fails to cancel.
type Timer struct {
	ev  *event
	gen uint64
}

// AtTimer is At returning a cancellable handle.
func (e *Engine) AtTimer(t Time, fn func()) *Timer {
	ev := e.schedule(t, evFunc, fn, nil, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// AfterTimer is After returning a cancellable handle.
func (e *Engine) AfterTimer(d Duration, fn func()) *Timer {
	return e.AtTimer(e.now.Add(d), fn)
}

// Cancel prevents the timer's callback from running and reports whether
// it did (false when the callback already ran or was already cancelled).
func (t *Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	t.ev = nil
	return true
}

// Stop terminates Run after the current event completes. Call Shutdown to
// release the goroutines of any still-live processes.
func (e *Engine) Stop() { e.stopped = true }

// killed is the sentinel panic value used by Shutdown to unwind process
// goroutines. It never escapes the package.
type killedSentinel struct{}

// Shutdown forcibly terminates every live process and drops all pending
// events, releasing the backing goroutines. It must be called from outside
// Run (i.e., not from a process or kernel callback). The engine is dead
// afterwards. Simulations that end with parked service processes (node
// idle loops, servers) should always Shutdown to avoid goroutine leaks.
//
// Victims are killed in ascending pid (spawn) order, so shutdown-time
// tracer output is deterministic run to run.
func (e *Engine) Shutdown() {
	if e.running != nil {
		panic("sim: Shutdown from inside the simulation")
	}
	e.killing = true
	e.heap.ev = nil
	e.free = nil
	// Snapshot: dispatching kills procs, which mutates e.procs.
	victims := make([]*Proc, len(e.procs))
	copy(victims, e.procs)
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, p := range victims {
		if !p.dead {
			e.dispatch(p)
		}
	}
	e.stopped = true
}

// fire executes a popped event. The event is recycled before its payload
// runs, so callbacks scheduling new events can reuse it immediately.
func (e *Engine) fire(ev *event) {
	kind, fn, act, p := ev.kind, ev.fn, ev.act, ev.proc
	e.release(ev)
	switch kind {
	case evProc:
		e.dispatch(p)
	case evIntProc:
		p.intTimer = Timer{}
		e.dispatch(p)
	case evAction:
		act.Run()
	default:
		fn()
	}
}

// Run executes events until the heap is empty, Stop is called, or a process
// panics. It returns the first process failure, if any. A non-empty set of
// parked processes with an empty heap is quiescence, not an error; callers
// that consider it a deadlock can check Live.
func (e *Engine) Run() error {
	for !e.stopped && e.failure == nil && e.heap.len() > 0 {
		ev := e.heap.pop()
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.events++
		e.fire(ev)
	}
	return e.failure
}

// RunUntil executes events with timestamps <= deadline. It returns the
// first process failure, if any.
func (e *Engine) RunUntil(deadline Time) error {
	for !e.stopped && e.failure == nil && e.heap.len() > 0 {
		if e.heap.ev[0].at > deadline {
			break
		}
		ev := e.heap.pop()
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.events++
		e.fire(ev)
	}
	if e.now < deadline && e.failure == nil {
		e.now = deadline
	}
	return e.failure
}

// dispatch transfers control to p and blocks (the kernel goroutine) until p
// yields back. It must only be called from kernel context.
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		return
	}
	if e.running != nil {
		panic("sim: dispatch while a process is running")
	}
	e.dispatches++
	e.running = p
	if e.tracer != nil {
		e.tracer.Resume(e.now, p)
	}
	p.resume <- struct{}{}
	<-e.kernelCh
	e.running = nil
}

// yieldToKernel hands control from the running process back to the kernel
// and blocks until the process is dispatched again. If the engine is being
// shut down when control returns, the process unwinds via the kill
// sentinel, which the Spawn wrapper recovers.
func (e *Engine) yieldToKernel(p *Proc) {
	if e.tracer != nil {
		e.tracer.Yield(e.now, p)
	}
	e.kernelCh <- struct{}{}
	<-p.resume
	if e.killing {
		panic(killedSentinel{})
	}
}

// addProc registers a newly spawned process in the live table.
func (e *Engine) addProc(p *Proc) {
	p.slot = len(e.procs)
	e.procs = append(e.procs, p)
}

// removeProc drops a finished process from the live table by swapping the
// last entry into its slot — O(1), no map on the spawn/exit path.
func (e *Engine) removeProc(p *Proc) {
	last := len(e.procs) - 1
	moved := e.procs[last]
	e.procs[p.slot] = moved
	moved.slot = p.slot
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// checkRunning panics unless p is the currently executing process. It
// guards the process-context-only API.
func (e *Engine) checkRunning(p *Proc, op string) {
	if e.running != p {
		panic(fmt.Sprintf("sim: %s called on %q which is not the running process", op, p.name))
	}
}
