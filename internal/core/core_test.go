package core

import (
	"testing"
)

func TestClusterQuickstart(t *testing.T) {
	c := NewCluster(Options{Nodes: 3, Seed: 7})
	count := 0
	inc := c.Define("inc", func(e *Env, caller int, arg []byte) []byte {
		count++
		return nil
	})
	elapsed, err := c.Run(func(ctx Ctx, node int) {
		if node == 0 {
			return
		}
		for i := 0; i < 5; i++ {
			inc.Call(ctx, 0, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if elapsed <= 0 {
		t.Fatal("no time passed")
	}
	st := c.OAMStats()
	if st.Total != 10 || st.Succeeded != 10 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClusterBlockingProcedure(t *testing.T) {
	c := NewCluster(Options{Nodes: 2})
	mu := c.NewMutex(1)
	cv := c.NewCond(mu)
	ready := false
	get := c.Define("get", func(e *Env, caller int, arg []byte) []byte {
		e.Lock(mu)
		e.Await(cv, func() bool { return ready })
		e.Unlock(mu)
		out := Enc(8)
		out.U64(5)
		return out.Bytes()
	})
	_, err := c.Run(func(ctx Ctx, node int) {
		if node == 1 {
			ctx.P.Charge(Micros(100))
			mu.Lock(ctx)
			ready = true
			cv.Signal(ctx)
			mu.Unlock(ctx)
			return
		}
		rep := Dec(get.Call(ctx, 1, nil))
		if rep.U64() != 5 {
			t.Error("wrong reply")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterDefaults(t *testing.T) {
	c := NewCluster(Options{})
	if c.Nodes() != 2 {
		t.Fatalf("default nodes = %d", c.Nodes())
	}
	if c.Runtime() == nil || c.Universe() == nil {
		t.Fatal("nil accessors")
	}
	if _, err := c.Run(func(ctx Ctx, node int) {}); err != nil {
		t.Fatal(err)
	}
}
