package rpc_test

import (
	"fmt"

	"repro/internal/rpc"
)

// ExampleEnc shows the wire format: generated stubs emit exactly these
// call sequences on both sides.
func ExampleEnc() {
	e := rpc.NewEnc(32)
	e.I64(-7)
	e.String("hi")
	e.F64s([]float64{1.5, 2.5})

	d := rpc.NewDec(e.Bytes())
	fmt.Println(d.I64(), d.String(), d.F64s())
	d.Done()
	// Output: -7 hi [1.5 2.5]
}
