package sim

import "testing"

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterTimer(Micros(10), func() { fired = true })
	e.After(Micros(5), func() {
		if !tm.Cancel() {
			t.Error("cancel failed")
		}
		if tm.Cancel() {
			t.Error("double cancel succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := New(1)
	tm := e.AfterTimer(Micros(1), func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Cancel() {
		t.Fatal("cancel of fired timer succeeded")
	}
}

func TestChargeInterruptibleCompletes(t *testing.T) {
	e := New(1)
	var rem Duration = -1
	e.Spawn("w", func(p *Proc) {
		rem = p.ChargeInterruptible(Micros(20))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rem != 0 {
		t.Fatalf("remainder = %v, want 0", rem)
	}
	if e.Now() != Time(Micros(20)) {
		t.Fatalf("time = %v, want 20us", e.Now())
	}
}

func TestChargeInterruptiblePreempted(t *testing.T) {
	e := New(1)
	var rem Duration = -1
	var resumedAt Time
	w := e.Spawn("w", func(p *Proc) {
		rem = p.ChargeInterruptible(Micros(100))
		resumedAt = p.Now()
	})
	e.After(Micros(30), func() {
		if !w.Interrupt() {
			t.Error("interrupt failed")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rem != Micros(70) {
		t.Fatalf("remainder = %v, want 70us", rem)
	}
	if resumedAt != Time(Micros(30)) {
		t.Fatalf("resumed at %v, want 30us", resumedAt)
	}
}

func TestInterruptOutsideChargeFails(t *testing.T) {
	e := New(1)
	w := e.Spawn("w", func(p *Proc) { p.Park() })
	e.After(Micros(5), func() {
		if w.Interrupt() {
			t.Error("interrupt of parked proc succeeded")
		}
		w.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptTwiceOnlyFirstCounts(t *testing.T) {
	e := New(1)
	hits := 0
	w := e.Spawn("w", func(p *Proc) {
		p.ChargeInterruptible(Micros(50))
	})
	e.After(Micros(10), func() {
		if w.Interrupt() {
			hits++
		}
		if w.Interrupt() {
			hits++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

// TestInterruptResumeLoop: a process repeatedly re-charging the remainder
// makes progress across multiple interrupts.
func TestInterruptResumeLoop(t *testing.T) {
	e := New(1)
	interrupts := 0
	var w *Proc
	w = e.Spawn("w", func(p *Proc) {
		rem := Micros(90)
		for rem > 0 {
			rem = p.ChargeInterruptible(rem)
			if rem > 0 {
				interrupts++
			}
		}
		if got := p.Now(); got != Time(Micros(90)) {
			t.Errorf("finished at %v, want 90us (no time lost)", got)
		}
	})
	for _, at := range []float64{20, 50} {
		e.After(Micros(at), func() { w.Interrupt() })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if interrupts != 2 {
		t.Fatalf("interrupts = %d, want 2", interrupts)
	}
}
