package oam

import "repro/internal/sim"

// Adaptive abort/promotion thresholds. The paper leaves the "runs too
// long" budget fixed; here a per-node controller adjusts it — and the
// promote-vs-rerun choice — from observed abort history and queue depth.
// Everything the controller reads is a deterministic per-node counter
// updated from the node's own shard, so adapted schedules replay
// bit-identically.

// ctlWindow is how many settled dispatches the controller observes
// between decisions.
const ctlWindow = 32

// nodeCtl is one node's adaptive state.
type nodeCtl struct {
	// budget is the current handler budget; zero means "not yet
	// initialized from Options.HandlerBudget".
	budget sim.Duration
	// preferLazy switches the base Rerun strategy to Continuation while
	// the recent abort rate is high (re-running wastes the aborted work).
	preferLazy bool

	window  uint32
	aborts  uint32
	tooLong uint32
}

// nodeCtl returns node's controller slot.
func (d *Dispatcher) nodeCtl(node int) *nodeCtl {
	if node >= len(d.ctls) {
		d.SetNodes(node + 1)
	}
	return &d.ctls[node]
}

// budgetFor returns the effective handler budget for an execution on
// node: the adapted per-node budget, seeded from Options.HandlerBudget.
func (d *Dispatcher) budgetFor(node int) sim.Duration {
	ct := d.nodeCtl(node)
	if ct.budget == 0 {
		ct.budget = d.opts.HandlerBudget
	}
	return ct.budget
}

// adapt folds one settled dispatch into node's controller and, every
// ctlWindow settles, re-evaluates the budget and the promote choice.
// qdepth is the node's backlog: the compatibility-queue length under
// multiactive dispatch, the pending-packet count otherwise.
func (d *Dispatcher) adapt(node int, aborted bool, reason Reason, qdepth int) {
	ct := d.nodeCtl(node)
	ct.window++
	if aborted {
		ct.aborts++
		if reason == TooLong {
			ct.tooLong++
		}
	}
	if ct.window < ctlWindow {
		return
	}
	if hb := d.opts.HandlerBudget; hb > 0 {
		if ct.budget == 0 {
			ct.budget = hb
		}
		lo, hi := d.opts.BudgetMin, d.opts.BudgetMax
		if lo == 0 {
			lo = hb / 4
		}
		if hi == 0 {
			hi = hb * 8
		}
		switch {
		case ct.tooLong*4 >= ct.window && qdepth <= 2 && ct.budget*2 <= hi:
			// Mostly budget aborts with a shallow backlog: the budget is
			// cutting off work the node had time for. Double it.
			ct.budget *= 2
			d.nodeStats(node).BudgetRaised++
		case qdepth >= 8 && ct.budget/2 >= lo:
			// Deep backlog: long handlers are starving arrivals. Halve the
			// budget so overruns promote and the node services its queue.
			ct.budget /= 2
			d.nodeStats(node).BudgetLowered++
		}
	}
	ct.preferLazy = ct.aborts*2 >= ct.window
	ct.window, ct.aborts, ct.tooLong = 0, 0, 0
}
