package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the number of experiment cells run concurrently by the
// harness. Each cell owns a private sim.Engine (and thus its own RNG), so
// cells are independent by construction; the harness only parallelizes
// across cells, never within one. The default uses every available CPU.
// Set to 1 to force sequential execution — results are byte-identical
// either way, because cells write their results by index.
var Workers = runtime.GOMAXPROCS(0)

// Shards is the engine shard count experiment cells request for their app
// runs (see apps.ResolveShards: 0/1 sequential, negative auto). Results
// are bit-identical at any value. When both the harness and the engines
// parallelize, EffectiveWorkers keeps cells × shards within the host
// budget.
var Shards = 1

// Optimistic selects the engines' speculative span scheduler instead of
// lockstep windows for sharded app runs (sim.Optimistic; no effect when
// the resolved shard count is 1). Results are bit-identical either way.
var Optimistic = false

// Cores is the simulated per-node core count app runs request
// (oam.Options.Cores). 1 keeps the paper's single-active dispatch;
// higher values enable multiactive dispatch for apps that declare a
// compatibility matrix. Simulated cores cost no host CPUs — they only
// change how virtual time overlaps — so Cores does not enter
// EffectiveWorkers. Results are bit-identical at any value of Shards for
// a fixed Cores.
var Cores = 1

// EffectiveWorkers is the harness width actually used: Workers, shrunk so
// that concurrent cells × shard runners per cell never exceeds
// GOMAXPROCS. Without the cap, every cell would spin Shards goroutines of
// its own and the host would thrash on oversubscription.
func EffectiveWorkers() int {
	w := Workers
	if w < 1 {
		w = 1
	}
	s := Shards
	if s < 0 {
		s = runtime.NumCPU()
	}
	if s > 1 {
		if budget := runtime.GOMAXPROCS(0) / s; budget < w {
			w = budget
		}
		if w < 1 {
			w = 1
		}
	}
	return w
}

// forEach runs fn(0) .. fn(n-1) across min(EffectiveWorkers, n)
// goroutines. fn must
// deposit its result at index i of a pre-sized slice so that merge order
// is the loop order, independent of goroutine scheduling. All cells run
// even after a failure; the returned error is the lowest-index one, again
// so the outcome does not depend on scheduling.
func forEach(n int, fn func(i int) error) error {
	w := EffectiveWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		next   int64 = -1
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = n
		first  error
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}
