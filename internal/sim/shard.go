package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Shard is one partition of the simulation kernel: an event heap, a live
// process table, and the migrating direct-handoff loop that drives them.
// A sequential engine (New) is exactly one shard; a sharded engine
// (NewSharded) runs S of them over lockstep virtual-time windows, each
// shard owning a disjoint subset of the simulated nodes.
//
// All Shard methods must be called from that shard's own simulation
// context (its processes and kernel callbacks), from engine setup code
// before Run, or — for the window machinery — from the engine's
// coordinator between windows. Shards never touch each other's state.
type Shard struct {
	eng *Engine
	idx int

	now     Time
	seq     uint64
	heap    eventQueue
	free    *event // recycled events (shard-local: no locking)
	running *Proc
	// doneCh hands the kernel role back to the goroutine blocked in
	// runKernel (or, per victim, Shutdown) when the loop ends its tenure
	// on a process goroutine.
	doneCh   chan struct{}
	deadline Time // event horizon of the current run or window
	tracer   Tracer
	probe    Probe
	procs    []*Proc // live (spawned, not yet finished) processes, unordered
	freeProc *Proc   // finished procs whose goroutine+channel await reuse
	stopped  bool    // set by Stop (sequential engine only)
	killing  bool    // set by Shutdown
	failure  error
	// kernelPanic holds a panic raised by a kernel callback (At/After fn
	// or Action). It ends the run and is re-raised from Run/RunUntil on
	// the caller's goroutine.
	kernelPanic any

	// Stats counters, cheap enough to keep always-on.
	events     uint64
	dispatches uint64
	handoffs   uint64
	// chargedTotal accumulates every completed virtual-CPU charge; the
	// virtual-time profiler checks its totals against this.
	chargedTotal Duration

	// Window plumbing (sharded engines only). The runner goroutine blocks
	// on windowCh for the next window's end time, runs the kernel loop up
	// to it, and reports completion on windowDone.
	windowCh   chan Time
	windowDone chan struct{}
	// trbuf buffers tracer records during parallel windows; the engine
	// flushes it in canonical order at each barrier.
	trbuf []traceRec
	// buffered reports that tracer output must be buffered (sharded mode
	// with a tracer installed).
	buffered bool
	// busyNs accumulates host time spent inside window/span kernel
	// tenures; part of the WindowOverhead decomposition.
	busyNs int64

	// Optimistic-mode state (see optimistic.go); opt is nil otherwise
	// and none of this is touched.
	opt  *optState
	inmu sync.Mutex // guards inbox/inboxSpare appends from sender shards
	// inbox holds eagerly published cross-shard arrivals awaiting
	// materialization by this shard; inboxSpare is the drain-time double
	// buffer. inboxPending mirrors len(inbox) > 0 for lock-free checks.
	inbox        []inbound
	inboxSpare   []inbound
	inboxPending atomic.Bool
	// cachedH is the last computed execution horizon (monotone within a
	// span; reset at span start). asleep marks the shard inside
	// cond.Wait — its heap is then quiescent and readable by the awake
	// shards. tentDone marks a tentative claim that this shard finished
	// the span; retracting it on a straggler drain counts a reopen.
	cachedH    Time
	asleep     bool
	tentDone   bool
	reopens    uint64
	stalls     uint64
	specEvents uint64
}

func newShard(e *Engine, idx int) *Shard {
	sh := &Shard{
		eng:    e,
		idx:    idx,
		doneCh: make(chan struct{}),
	}
	sh.heap.init(defaultEventHint)
	return sh
}

// Engine returns the engine this shard belongs to.
func (sh *Shard) Engine() *Engine { return sh.eng }

// Index returns the shard's index in [0, Engine.Shards()).
func (sh *Shard) Index() int { return sh.idx }

// Now returns the shard's current virtual time. Within a window a shard's
// clock may trail other shards by up to the lookahead; at barriers all
// clocks agree.
func (sh *Shard) Now() Time { return sh.now }

// alloc takes an event from the free list, refilling it a slab at a time.
func (sh *Shard) alloc() *event {
	ev := sh.free
	if ev == nil {
		chunk := make([]event, eventChunk)
		for i := range chunk {
			chunk[i].next = sh.free
			sh.free = &chunk[i]
		}
		ev = sh.free
	}
	sh.free = ev.next
	ev.next = nil
	return ev
}

// release recycles a fired or surfaced-cancelled event. Bumping gen
// invalidates any Timer still holding the pointer.
func (sh *Shard) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.act = nil
	ev.proc = nil
	ev.kind = evFunc
	ev.class = classNormal
	ev.key = 0
	ev.cancelled = false
	ev.next = sh.free
	sh.free = ev
}

// schedule is the single entry point onto the shard's event heap.
func (sh *Shard) schedule(t Time, class uint8, key uint64, kind eventKind, fn func(), act Action, p *Proc) *event {
	if t < sh.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, sh.now))
	}
	sh.seq++
	ev := sh.alloc()
	ev.at = t
	ev.seq = sh.seq
	ev.class = class
	ev.key = key
	ev.kind = kind
	ev.fn = fn
	ev.act = act
	ev.proc = p
	sh.heap.push(ev)
	return ev
}

// At schedules fn to run in kernel context at absolute time t. Scheduling
// in the past is a programming error. Kernel callbacks must not block or
// call process-context methods such as Charge or Park.
func (sh *Shard) At(t Time, fn func()) { sh.schedule(t, classNormal, 0, evFunc, fn, nil, nil) }

// After schedules fn to run in kernel context d from now.
func (sh *Shard) After(d Duration, fn func()) { sh.At(sh.now.Add(d), fn) }

// AtAction schedules a pre-allocated Action at absolute time t. Unlike At
// it allocates nothing beyond a pooled event, so hot paths (packet
// delivery) can schedule without producing garbage.
func (sh *Shard) AtAction(t Time, a Action) { sh.schedule(t, classNormal, 0, evAction, nil, a, nil) }

// AfterAction schedules a pre-allocated Action d from now.
func (sh *Shard) AfterAction(d Duration, a Action) { sh.AtAction(sh.now.Add(d), a) }

// AtDelivery schedules a packet-arrival Action at absolute time t under
// the canonical delivery order: at any instant, deliveries fire after
// global control transitions, before ordinary events, and among
// themselves in ascending key — (source node, flight number), packed by
// the machine layer. The coordinator uses the same key to merge
// cross-shard flights at window barriers, which is what makes sharded
// runs bit-identical to sequential ones.
func (sh *Shard) AtDelivery(t Time, key uint64, a Action) {
	sh.schedule(t, classDelivery, key, evAction, nil, a, nil)
}

// atProc schedules the resumption of p at time t without any closure.
func (sh *Shard) atProc(t Time, p *Proc) { sh.schedule(t, classNormal, 0, evProc, nil, nil, p) }

// AtTimer is At returning a cancellable handle. Timers are plain values
// (the cancellation state lives in the event, guarded by its recycle
// generation), so arming a timer costs no allocation.
func (sh *Shard) AtTimer(t Time, fn func()) Timer {
	ev := sh.schedule(t, classNormal, 0, evFunc, fn, nil, nil)
	return Timer{ev: ev, sh: sh, gen: ev.gen}
}

// AfterTimer is After returning a cancellable handle.
func (sh *Shard) AfterTimer(d Duration, fn func()) Timer {
	return sh.AtTimer(sh.now.Add(d), fn)
}

// traceRec is one buffered scheduling transition (sharded mode). The name
// is captured eagerly because pooled Procs are renamed on reuse.
type traceRec struct {
	t    Time
	kind uint8 // 0 resume, 1 yield, 2 exit — the canonical same-instant order
	name string
}

func (sh *Shard) traceResume(p *Proc) {
	if sh.buffered {
		sh.trbuf = append(sh.trbuf, traceRec{sh.now, 0, p.name})
		return
	}
	sh.tracer.Resume(sh.now, p)
}

func (sh *Shard) traceYield(p *Proc) {
	if sh.buffered {
		sh.trbuf = append(sh.trbuf, traceRec{sh.now, 1, p.name})
		return
	}
	sh.tracer.Yield(sh.now, p)
}

func (sh *Shard) traceExit(p *Proc) {
	if sh.buffered {
		sh.trbuf = append(sh.trbuf, traceRec{sh.now, 2, p.name})
		return
	}
	sh.tracer.Exit(sh.now, p)
}

// tracing reports whether scheduling transitions must be recorded.
func (sh *Shard) tracing() bool { return sh.tracer != nil || sh.buffered }

// loopOutcome says how a kernel-loop tenure on some goroutine ended.
type loopOutcome uint8

const (
	// loopEnded: the run (or window) is over — heap empty, deadline
	// passed, Stop, failure, or a kernel-callback panic. The kernel role
	// returns to the goroutine blocked in runKernel.
	loopEnded loopOutcome = iota
	// loopSelf: the caller's own resume event surfaced; it simply
	// continues as the running process. Zero channel operations.
	loopSelf
	// loopHandoff: the kernel role was handed to another process's
	// goroutine with a single channel send.
	loopHandoff
)

// loop runs the kernel on the calling goroutine: it pops and fires events
// until the run ends, the role moves to another goroutine, or — when self
// is non-nil — self's own resumption surfaces, in which case the caller
// continues straight back into process context on the live stack.
func (sh *Shard) loop(self *Proc) loopOutcome {
	for {
		if o := sh.opt; o != nil {
			// Optimistic mode: the gate drains eager arrivals and decides
			// whether the next event is provably safe to fire, blocking
			// mid-span when it is not (see optimistic.go).
			if !o.gate(sh) {
				return loopEnded
			}
		} else {
			if sh.stopped || sh.failure != nil || sh.kernelPanic != nil || sh.heap.len() == 0 {
				return loopEnded
			}
			if sh.heap.first().at > sh.deadline {
				return loopEnded
			}
		}
		ev := sh.heap.pop()
		if ev.cancelled {
			sh.release(ev)
			continue
		}
		sh.now = ev.at
		sh.events++
		// Recycle before firing, so callbacks scheduling new events can
		// reuse the slot immediately.
		kind, fn, act, p := ev.kind, ev.fn, ev.act, ev.proc
		sh.release(ev)
		switch kind {
		case evProc, evIntProc:
			if kind == evIntProc {
				p.intTimer = Timer{}
			}
			if p.dead {
				continue
			}
			if sh.running != nil {
				panic("sim: dispatch while a process is running")
			}
			sh.dispatches++
			sh.running = p
			if sh.tracing() {
				sh.traceResume(p)
			}
			if p == self {
				return loopSelf
			}
			sh.handoffs++
			p.resume <- struct{}{}
			return loopHandoff
		case evAction:
			sh.fireCallback(nil, act)
		default:
			sh.fireCallback(fn, nil)
		}
	}
}

// fireCallback runs a kernel callback, converting a panic into a stashed
// kernelPanic so it unwinds no process goroutine; Run re-raises it.
func (sh *Shard) fireCallback(fn func(), act Action) {
	defer func() {
		if r := recover(); r != nil {
			sh.kernelPanic = r
		}
	}()
	if act != nil {
		act.Run()
	} else {
		fn()
	}
}

// runKernel starts a kernel tenure on the calling goroutine and blocks
// until the run (or window) is over, however many goroutines the loop
// migrated across in between.
func (sh *Shard) runKernel() {
	if sh.loop(nil) == loopHandoff {
		<-sh.doneCh
	}
}

// windowRunner is the per-shard worker of a sharded engine: it receives a
// window's inclusive end time, runs the shard's kernel up to it, and
// reports back. It exits when the engine closes windowCh (Shutdown).
func (sh *Shard) windowRunner() {
	for d := range sh.windowCh {
		sh.deadline = d
		t0 := time.Now()
		sh.runKernel()
		sh.busyNs += time.Since(t0).Nanoseconds()
		sh.windowDone <- struct{}{}
	}
}

// yieldToKernel hands control from the running process to the kernel: the
// process's own goroutine becomes the kernel and keeps firing events in
// place. It returns when the process is next dispatched — directly, when
// its own resume event surfaces during its tenure (no channel operation),
// or via a handoff from whichever goroutine holds the loop by then. If
// the engine is being shut down when control returns, the process unwinds
// via the kill sentinel, which the spawn wrapper recovers.
func (sh *Shard) yieldToKernel(p *Proc) {
	if sh.tracing() {
		sh.traceYield(p)
	}
	sh.running = nil
	switch sh.loop(p) {
	case loopSelf:
		// Resumed on the live stack; this goroutine held the kernel role
		// throughout and is the running process again.
	case loopEnded:
		sh.doneCh <- struct{}{}
		<-p.resume
	case loopHandoff:
		<-p.resume
	}
	if sh.killing {
		panic(killedSentinel{})
	}
}

// addProc registers a newly spawned process in the live table.
func (sh *Shard) addProc(p *Proc) {
	p.slot = len(sh.procs)
	sh.procs = append(sh.procs, p)
}

// removeProc drops a finished process from the live table by swapping the
// last entry into its slot — O(1), no map on the spawn/exit path.
func (sh *Shard) removeProc(p *Proc) {
	last := len(sh.procs) - 1
	moved := sh.procs[last]
	sh.procs[p.slot] = moved
	moved.slot = p.slot
	sh.procs[last] = nil
	sh.procs = sh.procs[:last]
}

// checkRunning panics unless p is the currently executing process. It
// guards the process-context-only API.
func (sh *Shard) checkRunning(p *Proc, op string) {
	if sh.running != p {
		panic(fmt.Sprintf("sim: %s called on %q which is not the running process", op, p.name))
	}
}

// shutdown kills this shard's live processes in ascending pid order and
// drains its worker pool. Part of Engine.Shutdown.
func (sh *Shard) shutdown() {
	sh.killing = true
	sh.heap.clear()
	sh.free = nil
	// Snapshot: killing procs mutates sh.procs.
	victims := make([]*Proc, len(sh.procs))
	copy(victims, sh.procs)
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, p := range victims {
		if p.dead {
			continue
		}
		sh.dispatches++
		sh.handoffs++
		sh.running = p
		if sh.tracing() {
			sh.traceResume(p)
		}
		p.resume <- struct{}{}
		<-sh.doneCh // the victim's goroutine has unwound
		sh.running = nil
	}
	// Drain the worker pool: a token with no body pending tells the
	// goroutine to exit instead of running an incarnation.
	for p := sh.freeProc; p != nil; p = p.next {
		p.resume <- struct{}{}
	}
	sh.freeProc = nil
	sh.stopped = true
}
