package am

import (
	"fmt"

	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// HandlerID names a registered handler. IDs are machine-wide: like an SPMD
// program image, every node shares one handler table.
type HandlerID int

// Handler is an Active Message handler. It runs inline on the polling
// context c (c.T == nil): it must not block, and should be short. pkt is
// the delivered packet; Payload is the sender's marshaled data.
type Handler func(c threads.Ctx, pkt *cm5.Packet)

// Stats counts per-universe Active Message activity.
type Stats struct {
	HandlersRun uint64
	Sends       uint64
	BulkSends   uint64
	DrainSpins  uint64       // retries while the destination buffer was full
	MaxDepth    int          // deepest nested handler execution seen
	HandlerTime sim.Duration // total virtual CPU time spent inside handlers
}

// Universe bundles a machine, one thread scheduler per node, and the
// shared handler table. It is the program image of an SPMD run.
type Universe struct {
	m        *cm5.Machine
	scheds   []*threads.Scheduler
	eps      []*Endpoint
	handlers []Handler
	names    []string
	stats    Stats
}

// NewUniverse builds an n-node machine with schedulers and Active Message
// endpoints installed on every node.
func NewUniverse(eng *sim.Engine, n int, cost cm5.CostModel) *Universe {
	u := &Universe{m: cm5.NewMachine(eng, n, cost)}
	u.scheds = make([]*threads.Scheduler, n)
	u.eps = make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		s := threads.NewScheduler(u.m.Node(i))
		u.scheds[i] = s
		ep := &Endpoint{u: u, node: u.m.Node(i), sched: s}
		u.eps[i] = ep
		s.SetPoller(ep)
	}
	return u
}

// Machine returns the underlying machine.
func (u *Universe) Machine() *cm5.Machine { return u.m }

// N returns the node count.
func (u *Universe) N() int { return u.m.N() }

// Scheduler returns node i's thread scheduler.
func (u *Universe) Scheduler(i int) *threads.Scheduler { return u.scheds[i] }

// Endpoint returns node i's Active Message endpoint.
func (u *Universe) Endpoint(i int) *Endpoint { return u.eps[i] }

// Stats returns a snapshot of the universe's AM counters.
func (u *Universe) Stats() Stats { return u.stats }

// Register adds a handler to the shared table and returns its ID. All
// registration must happen before the simulation starts, as it would on a
// real SPMD machine where the handler table is the program text.
func (u *Universe) Register(name string, h Handler) HandlerID {
	u.handlers = append(u.handlers, h)
	u.names = append(u.names, name)
	return HandlerID(len(u.handlers) - 1)
}

// HandlerName returns the registration name of id, for diagnostics.
func (u *Universe) HandlerName(id HandlerID) string { return u.names[id] }

// Endpoint is a node's Active Message interface.
type Endpoint struct {
	u     *Universe
	node  *cm5.Node
	sched *threads.Scheduler
	depth int // nested handler executions on this node
}

// Node returns the endpoint's node.
func (ep *Endpoint) Node() *cm5.Node { return ep.node }

// packet assembles an outgoing packet.
func (ep *Endpoint) packet(dst int, h HandlerID, kind cm5.PacketKind, w [4]uint64, payload []byte) *cm5.Packet {
	if int(h) < 0 || int(h) >= len(ep.u.handlers) {
		panic(fmt.Sprintf("am: send to unregistered handler %d", h))
	}
	return &cm5.Packet{
		Src: ep.node.ID(), Dst: dst, Kind: kind, Handler: int(h),
		W0: w[0], W1: w[1], W2: w[2], W3: w[3], Payload: payload,
	}
}

// TrySend attempts a non-blocking send of a small Active Message and
// reports whether it was injected. Failure means the destination's input
// buffer is full — the "network busy" condition that makes an optimistic
// execution abort.
func (ep *Endpoint) TrySend(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) bool {
	if ep.node.TryInject(c.P, ep.packet(dst, h, cm5.Small, w, payload)) {
		ep.u.stats.Sends++
		return true
	}
	return false
}

// Send transmits a small Active Message, draining incoming messages while
// the destination's buffer is full (the CMMD deadlock-avoidance protocol:
// the send routine polls the network before sending).
func (ep *Endpoint) Send(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) {
	pkt := ep.packet(dst, h, cm5.Small, w, payload)
	ep.sendDraining(c, pkt)
	ep.u.stats.Sends++
}

// SendBulk transmits a block transfer (the scopy path), draining while the
// destination's buffer is full. The sending CPU is busy for the setup and
// streaming time.
func (ep *Endpoint) SendBulk(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) {
	pkt := ep.packet(dst, h, cm5.Bulk, w, payload)
	ep.sendDraining(c, pkt)
	ep.u.stats.BulkSends++
}

// TrySendBulk is the non-blocking bulk variant.
func (ep *Endpoint) TrySendBulk(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) bool {
	if ep.node.TryInject(c.P, ep.packet(dst, h, cm5.Bulk, w, payload)) {
		ep.u.stats.BulkSends++
		return true
	}
	return false
}

func (ep *Endpoint) sendDraining(c threads.Ctx, pkt *cm5.Packet) {
	for !ep.node.TryInject(c.P, pkt) {
		ep.u.stats.DrainSpins++
		// Drain our own input while waiting for room: handle one packet
		// if present, otherwise burn a poll and retry. Time advances, the
		// destination eventually polls, and space appears.
		ep.pollOnce(c)
	}
}

// Poll services at most one incoming message, running its handler inline
// on this context, and reports whether one was handled. Applications and
// the thread scheduler's idle loop call this; so does Send while draining.
func (ep *Endpoint) Poll(c threads.Ctx) bool { return ep.pollOnce(c) }

// PollAll services incoming messages until the input queue is empty,
// returning the number handled.
func (ep *Endpoint) PollAll(c threads.Ctx) int {
	n := 0
	for ep.node.Pending() > 0 {
		if ep.pollOnce(c) {
			n++
		}
	}
	return n
}

// PollOnce implements threads.Poller for the scheduler idle loop.
func (ep *Endpoint) PollOnce(c threads.Ctx) bool { return ep.pollOnce(c) }

func (ep *Endpoint) pollOnce(c threads.Ctx) bool {
	pkt := ep.node.PollPacket(c.P)
	if pkt == nil {
		return false
	}
	ep.dispatch(c, pkt)
	return true
}

// dispatch runs pkt's handler inline. The handler context is derived from
// the polling context but has no thread: handlers are not schedulable.
func (ep *Endpoint) dispatch(c threads.Ctx, pkt *cm5.Packet) {
	h := ep.u.handlers[pkt.Handler]
	hc := threads.Ctx{P: c.P, T: nil, S: ep.sched}
	ep.depth++
	if ep.depth > ep.u.stats.MaxDepth {
		ep.u.stats.MaxDepth = ep.depth
	}
	c.P.Charge(ep.u.m.Cost().HandlerDispatch)
	ep.u.stats.HandlersRun++
	start := c.P.Now()
	h(hc, pkt)
	// Nested dispatches (drains inside sends) double-count into their
	// enclosing handler's window; MaxDepth reports when that happens.
	ep.u.stats.HandlerTime += c.P.Now().Sub(start)
	ep.depth--
}
