// Package obs is the deterministic observability subsystem of the ORPC
// stack: a typed per-node metrics bus, a Chrome trace-event (Perfetto)
// timeline exporter, and a virtual-time profiler, all fed by the probe
// hooks of the sim, cm5, threads, am, oam and rpc packages.
//
// Three rules make it safe to leave the hooks compiled into every layer:
//
//  1. Zero overhead when disabled. Every hook is guarded by a nil check
//     on the installed probe; with no collector attached the hot paths
//     (packet injection, handler dispatch, spawn/exit) allocate nothing
//     and the per-event cost is a predicted-not-taken branch. The alloc
//     and ns/event budget tests pin this.
//
//  2. Observation never perturbs the schedule. A collector must not
//     schedule events, charge virtual time, park or unpark processes.
//     Everything is sampled on change, from within the instrumented
//     code's own event; there is no sampler timer (one would keep the
//     event heap non-empty and break quiescence detection).
//
//  3. Determinism. Collectors only record values derived from virtual
//     time and the seeded simulation; output is rendered with integer
//     arithmetic and explicitly ordered iteration, so the same seed
//     yields byte-identical trace JSON, metrics tables and profiles on
//     any host. Golden tests pin this.
package obs
