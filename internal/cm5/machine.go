package cm5

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is a simulated multicomputer: N nodes, a data network, and a
// control network. All methods must be called from simulation context
// (process bodies or kernel callbacks) — the machine is as single-threaded
// as the kernel that drives it.
type Machine struct {
	eng   *sim.Engine
	cost  CostModel
	nodes []*Node
	ctl   *controlNetwork
	stats NetStats
	fault *faultState // nil = perfect network (the default)
	probe Probe       // nil = no observer (the default, allocation-free)

	// Hot-path free lists (the machine is as single-threaded as its
	// engine, so neither needs locking).
	freePkt   *Packet   // recycled packet structs
	freeDeliv *delivery // recycled delivery events
}

// NetStats aggregates data-network traffic counters.
type NetStats struct {
	SmallSent    uint64
	BulkSent     uint64
	BytesSent    uint64
	FullRejects  uint64 // TryInject calls rejected because the NIC was full
	MaxQueueSeen int    // high-water mark across all NIC input queues
}

// Probe observes data-network traffic: injections, wire flights, losses,
// deliveries, and backpressure. Probes are pure observers — they must not
// schedule events or charge virtual time. All hooks run only when a probe
// is installed, so the disabled path stays allocation-free.
type Probe interface {
	// PacketSent fires at injection time, before the sender is charged:
	// the sender's CPU is busy for busy, then the packet flies for wire.
	// When the network forged a duplicate, dup is true and the copy's own
	// flight takes dupWire.
	PacketSent(t sim.Time, pkt *Packet, busy, wire sim.Duration, dup bool, dupWire sim.Duration)
	// PacketLost fires when the network eats a packet (drop, partition,
	// blackhole at send time, or a late drop into a crashed receiver).
	PacketLost(t sim.Time, src, dst int, kind FaultKind)
	// PacketDelivered fires when a packet lands in dst's input queue;
	// queueDepth is the queue occupancy after the delivery.
	PacketDelivered(t sim.Time, pkt *Packet, queueDepth int)
	// Backpressure fires when TryInject refuses a send because the
	// destination NIC is full.
	Backpressure(t sim.Time, src, dst int)
}

// SetProbe installs a traffic probe; pass nil to disable.
func (m *Machine) SetProbe(p Probe) { m.probe = p }

// NewMachine creates a machine with n nodes.
func NewMachine(eng *sim.Engine, n int, cost CostModel) *Machine {
	if n < 1 {
		panic("cm5: machine needs at least one node")
	}
	m := &Machine{eng: eng, cost: cost}
	m.nodes = make([]*Node, n)
	for i := range m.nodes {
		m.nodes[i] = &Node{id: i, m: m, nic: newNIC(cost.NICQueueCap)}
	}
	m.ctl = newControlNetwork(m)
	return m
}

// Engine returns the simulation engine driving this machine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cost }

// N returns the number of nodes.
func (m *Machine) N() int { return len(m.nodes) }

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Stats returns a copy of the machine's traffic counters.
func (m *Machine) Stats() NetStats { return m.stats }

// AllocPacket takes a packet from the machine's pool (or the heap when the
// pool is dry). The packet is returned to the pool by ReleasePacket after
// its handler runs; see the ownership rules on Packet.
func (m *Machine) AllocPacket() *Packet {
	p := m.freePkt
	if p == nil {
		p = new(Packet)
	} else {
		m.freePkt = p.poolNext
		p.poolNext = nil
	}
	p.pooled = true
	p.refs = 1
	return p
}

// ReleasePacket returns a pooled packet to the machine once its last
// delivery has been handled. Hand-built packets (pooled == false) and
// duplicated packets with deliveries still outstanding are left alone.
// The payload buffer is dropped, never reused: receivers may retain it.
func (m *Machine) ReleasePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.refs > 1 {
		p.refs--
		return
	}
	*p = Packet{poolNext: m.freePkt}
	m.freePkt = p
}

// delivery is a pooled, closure-free packet-delivery event: the typed
// {packet} record that replaces the per-packet func() previously captured
// at injection time.
type delivery struct {
	m    *Machine
	pkt  *Packet
	next *delivery
}

// Run implements sim.Action: recycle the delivery record, then complete
// the transfer into the destination NIC.
func (d *delivery) Run() {
	m, pkt := d.m, d.pkt
	d.pkt = nil
	d.next = m.freeDeliv
	m.freeDeliv = d
	m.completeDelivery(pkt)
}

// newDelivery takes a delivery record from the pool.
func (m *Machine) newDelivery(pkt *Packet) *delivery {
	d := m.freeDeliv
	if d == nil {
		d = &delivery{m: m}
	} else {
		m.freeDeliv = d.next
		d.next = nil
	}
	d.pkt = pkt
	return d
}

// completeDelivery lands a packet that finished its wire flight: either
// into the destination's input queue (waking the node) or, if the receiver
// crashed while the packet was in flight, into the fault accounting.
func (m *Machine) completeDelivery(pkt *Packet) {
	dst := m.nodes[pkt.Dst]
	if f := m.fault; f != nil && f.crashed[pkt.Dst] {
		dst.nic.abandon()
		f.stats.LateDrops++
		f.perNode[pkt.Dst].Blackholed++
		f.record(FaultEvent{T: m.eng.Now(), Kind: FaultLateDrop, Src: pkt.Src, Dst: pkt.Dst})
		if m.probe != nil {
			m.probe.PacketLost(m.eng.Now(), pkt.Src, pkt.Dst, FaultLateDrop)
		}
		m.ReleasePacket(pkt)
		return
	}
	dst.nic.deliver(pkt)
	if q := dst.nic.pending(); q > m.stats.MaxQueueSeen {
		m.stats.MaxQueueSeen = q
	}
	if m.probe != nil {
		m.probe.PacketDelivered(m.eng.Now(), pkt, dst.nic.pending())
	}
	if dst.wake != nil {
		dst.wake()
	}
}

// Node is one processor of the machine. The node itself is passive: the
// thread package supplies its CPU (a simulation process), and the am
// package supplies its packet dispatch routine.
type Node struct {
	id  int
	m   *Machine
	nic *nic

	// wake, if non-nil, is invoked (in kernel context) when a packet is
	// delivered into this node's input queue. The thread scheduler
	// registers its idle process here so delivery can end an idle wait.
	wake func()
}

// ID returns the node number, 0-based.
func (n *Node) ID() int { return n.id }

// Machine returns the owning machine.
func (n *Node) Machine() *Machine { return n.m }

// SetWake registers fn to be called whenever a packet is delivered into
// this node's input queue. Pass nil to clear.
func (n *Node) SetWake(fn func()) { n.wake = fn }

// Pending reports how many received packets are waiting to be polled.
func (n *Node) Pending() int { return n.nic.pending() }

// InFlight reports whether any packets are reserved toward this node but
// not yet delivered.
func (n *Node) InFlight() bool { return n.nic.reserved > 0 }

// NetworkFull reports whether an injection toward dst would be refused
// right now. This is the OAM "network busy" abort condition.
func (n *Node) NetworkFull(dst int) bool {
	return n.m.nodes[dst].nic.full()
}

// TryInject attempts to send pkt from this node. On success it charges the
// sending process the CPU cost of the injection (including, for bulk
// transfers, the streaming time — the CM-5 scopy keeps the sending
// processor busy), schedules delivery, and returns true. If the
// destination's input buffer is full it charges nothing and returns false.
//
// p must be the running process, executing on this node's CPU.
func (n *Node) TryInject(p *sim.Proc, pkt *Packet) bool {
	if pkt.Src != n.id {
		panic(fmt.Sprintf("cm5: packet src %d injected from node %d", pkt.Src, n.id))
	}
	if pkt.Dst < 0 || pkt.Dst >= len(n.m.nodes) {
		panic(fmt.Sprintf("cm5: packet dst %d out of range", pkt.Dst))
	}
	dst := n.m.nodes[pkt.Dst]
	f := n.m.fault
	now := n.m.eng.Now()
	var lossKind FaultKind
	lost := false
	if f != nil {
		// Decide loss before the full-buffer check: a send to a crashed
		// (never-polling, eventually full) node must still "succeed" from
		// the sender's view, or drain-while-sending would spin forever on
		// a NIC nobody will ever empty.
		lossKind, lost = f.lossKind(now, pkt.Src, pkt.Dst)
	}
	if !lost && dst.nic.full() {
		n.m.stats.FullRejects++
		if n.m.probe != nil {
			n.m.probe.Backpressure(now, pkt.Src, pkt.Dst)
		}
		return false
	}
	cost := &n.m.cost
	var busy sim.Duration
	switch pkt.Kind {
	case Small:
		if len(pkt.Payload) > cost.MaxPayload {
			panic(fmt.Sprintf("cm5: small packet payload %d exceeds max %d", len(pkt.Payload), cost.MaxPayload))
		}
		busy = cost.PacketSendOverhead
		n.m.stats.SmallSent++
	case Bulk:
		busy = cost.BulkSetup + sim.Duration(len(pkt.Payload))*cost.BulkPerByte
		n.m.stats.BulkSent++
	default:
		panic("cm5: unknown packet kind")
	}
	n.m.stats.BytesSent += uint64(len(pkt.Payload))
	if lost {
		// The sender pays the injection cost — the packet left the node
		// and died in the network, indistinguishable from a successful
		// send until (if ever) a higher layer times out waiting.
		switch lossKind {
		case FaultBlackhole:
			f.stats.Blackholed++
			crashedAt := pkt.Src
			if !f.crashed[pkt.Src] {
				crashedAt = pkt.Dst
			}
			f.perNode[crashedAt].Blackholed++
		case FaultPartitionDrop:
			f.stats.PartitionDrops++
			f.perNode[pkt.Src].Dropped++
		default:
			f.stats.Dropped++
			f.perNode[pkt.Src].Dropped++
		}
		f.record(FaultEvent{T: now, Kind: lossKind, Src: pkt.Src, Dst: pkt.Dst})
		if n.m.probe != nil {
			n.m.probe.PacketLost(now, pkt.Src, pkt.Dst, lossKind)
		}
		n.m.ReleasePacket(pkt) // died in the network: nobody will deliver it
		p.Charge(busy)
		return true
	}
	dst.nic.reserve()
	eng := n.m.eng
	wire := cost.WireLatency
	if cost.WireJitter > 0 {
		// Deterministic jitter from the engine's seeded source. Note
		// that jitter can reorder same-pair deliveries; the layers above
		// do not depend on FIFO ordering (RPC matches replies by call
		// id), but applications relying on it should keep jitter off.
		wire += sim.Duration(eng.Rand().Int63n(int64(cost.WireJitter)))
	}
	dup := false
	var dupWire sim.Duration
	if f != nil {
		wire += f.extraLatency(now, pkt.Src, pkt.Dst)
		if f.duplicate() && !dst.nic.full() {
			// The network forged a second copy; it takes its own slot and
			// its own (possibly different) path latency.
			dup = true
			if pkt.pooled {
				pkt.refs++ // the receiver must handle both copies before recycling
			}
			dst.nic.reserve()
			dupWire = cost.WireLatency + f.extraLatency(now, pkt.Src, pkt.Dst)
			f.stats.Duplicated++
			f.perNode[pkt.Src].Duplicated++
			f.record(FaultEvent{T: now, Kind: FaultDuplicate, Src: pkt.Src, Dst: pkt.Dst})
		}
	}
	// The sender's CPU is busy for the injection; the packet leaves at the
	// end of that window and lands WireLatency later. The flight is a
	// pooled typed event, not a closure: nothing on this path allocates.
	if n.m.probe != nil {
		n.m.probe.PacketSent(now, pkt, busy, wire, dup, dupWire)
	}
	p.Charge(busy)
	eng.AfterAction(wire, n.m.newDelivery(pkt))
	if dup {
		eng.AfterAction(dupWire, n.m.newDelivery(pkt))
	}
	return true
}

// PollPacket checks the input queue, charging poll cost. If a packet is
// waiting it is ejected (charging the receive overhead) and returned;
// otherwise PollPacket returns nil. Dispatching the packet to a handler is
// the caller's job (package am).
func (n *Node) PollPacket(p *sim.Proc) *Packet {
	cost := &n.m.cost
	pkt := n.nic.pop()
	if pkt == nil {
		p.Charge(cost.PollEmpty)
		return nil
	}
	p.Charge(cost.PacketRecvOverhead)
	return pkt
}
