// Package repro reproduces "Optimistic Active Messages: A Mechanism for
// Scheduling Communication with Computation" (Wallach, Hsieh, Johnson,
// Kaashoek, Weihl; PPoPP 1995) as a Go library: a deterministic simulated
// CM-5-class multicomputer, a user-level thread package, Active Messages,
// the Optimistic Active Messages mechanism with an Optimistic RPC runtime
// and stub compiler, the paper's four applications, and a harness that
// regenerates every table and figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The root-level
// benchmarks (bench_test.go) exercise one experiment per table/figure;
// cmd/oamlab runs them at full paper scale.
package repro
