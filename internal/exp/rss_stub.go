//go:build !linux && !darwin

package exp

// peakRSSBytes is unavailable on this platform; the bench report carries
// zeros rather than guessing.
func peakRSSBytes() int64 { return 0 }
