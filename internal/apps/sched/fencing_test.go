package sched

import (
	"testing"

	"repro/internal/cm5"
	"repro/internal/sim"
)

// TestLeaseFencingStaleEpochRejected is the epoch-fencing scenario end to
// end: agent 1 takes a lease, then goes dark mid-lease — a one-way
// partition blocks everything it sends (heartbeats, completions, acks)
// while it keeps computing, the failure-detector equivalent of a slow or
// isolated node, not a crash. The scheduler declares it dead, migrates
// the job to agent 2 at epoch 2, and accepts agent 2's completion. When
// the partition heals, agent 1 "revives": its heartbeats readmit it and
// the reliable transport finally delivers its epoch-1 completion — which
// the fence must reject as stale, not accept a second time.
func TestLeaseFencingStaleEpochRejected(t *testing.T) {
	from, to := sim.Time(1*sim.Millisecond), sim.Time(10*sim.Millisecond)
	cfg := Config{
		Specs: []JobSpec{{CPU: 4, Mem: 8, Dur: sim.Micros(2000)}},
		Seed:  21,
		Fault: &cm5.FaultPlan{
			Seed: 33,
			// One direction only: agent 1 hears the scheduler but cannot
			// answer — it never learns its lease was reclaimed.
			Partitions: []cm5.Partition{{Src: 1, Dst: 0, From: from, To: to}},
		},
	}
	res, st, err := Run(2, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ierr := CheckInvariants(st.Record, 1, 2, true); ierr != nil {
		t.Fatalf("invariants: %v", ierr)
	}

	if st.DeadDeclared == 0 {
		t.Error("silent agent was never declared dead")
	}
	if st.Migrations == 0 {
		t.Error("lease never migrated off the silent agent")
	}
	if st.Recovered == 0 {
		t.Error("healed agent was never readmitted")
	}
	if st.Accepted != 1 {
		t.Errorf("Accepted = %d, want exactly 1 (placed-exactly-once)", st.Accepted)
	}
	if st.StaleCompletions == 0 {
		t.Error("the revived agent's epoch-1 completion was never fenced off")
	}
	if st.CompleteGiveUps != 1 {
		t.Errorf("CompleteGiveUps = %d, want 1 (agent 1's runner could not report)", st.CompleteGiveUps)
	}

	var sawStaleE1, sawDoneE2 bool
	for _, ev := range st.Record {
		if ev.Kind == EvStale && ev.Job == 0 && ev.Agent == 1 && ev.Epoch == 1 {
			sawStaleE1 = true
		}
		if ev.Kind == EvDone && ev.Job == 0 && ev.Epoch >= 2 {
			sawDoneE2 = true
			if ev.Agent != 2 {
				t.Errorf("completion accepted from agent %d, want the migration target 2", ev.Agent)
			}
		}
	}
	if !sawStaleE1 {
		t.Errorf("record has no stale epoch-1 rejection from agent 1:\n%v", st.Record)
	}
	if !sawDoneE2 {
		t.Errorf("record has no accepted completion at epoch >= 2:\n%v", st.Record)
	}
	if res.Answer == 0 {
		t.Error("answer checksum is zero")
	}
}
