package oam

import (
	"repro/internal/am"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Multiactive dispatch: with Options.Cores > 1 the dispatcher admits an
// arriving handler inline iff it is compatible (per Options.Compat) with
// every execution currently running on the node, assigns it the
// lowest-numbered free simulated core, and queues it FIFO otherwise. Each
// admitted execution runs on its own spawned simulation process bound as
// a core worker (threads.Scheduler.BindCore), charging its own virtual
// time — so K compatible handlers and the node's poller overlap in
// simulated time, extending the machine's per-node charge model from one
// implicit core to K. All per-node state lives on the node's own shard
// and every policy (head-only FIFO admission, lowest-free-core) is
// deterministic, so schedules stay canonical and bit-identical across
// shard counts and modes.

// runEntry is one admitted execution occupying a compatibility slot. A
// promoted (aborted-and-rerun) execution keeps its slot — a "shadow"
// entry — until the rerun thread finishes, so incompatible arrivals stay
// queued behind it and the exclusion the matrix promises is never
// violated mid-rerun.
type runEntry struct {
	name   string
	class  int
	key    uint64
	hasKey bool
}

// queuedExec is a dispatch waiting for a compatible admission slot.
type queuedExec struct {
	ent    runEntry
	body   func(*Env)
	settle func(threads.Ctx, Outcome, Reason)
}

// multiNode is the per-node multiactive state. Touched only from the
// node's own shard, so no locking is needed (same discipline as the
// per-node Stats slots).
type multiNode struct {
	coreBusy []bool
	busy     int
	running  []*runEntry
	queue    []queuedExec
}

// freeCore returns the lowest-numbered free core, or -1.
func (mn *multiNode) freeCore() int {
	for i, b := range mn.coreBusy {
		if !b {
			return i
		}
	}
	return -1
}

// admissible reports whether e is compatible with every running (or
// shadow) execution on the node.
func (mn *multiNode) admissible(t *CompatTable, e *runEntry) bool {
	for _, r := range mn.running {
		if !compatibleEntries(t, r, e) {
			return false
		}
	}
	return true
}

// remove drops e from the running set.
func (mn *multiNode) remove(e *runEntry) {
	for i, r := range mn.running {
		if r == e {
			mn.running = append(mn.running[:i], mn.running[i+1:]...)
			return
		}
	}
}

// multiAt returns node's multiactive state, sizing the core table on
// first use.
func (d *Dispatcher) multiAt(node int) *multiNode {
	if node >= len(d.multi) {
		d.SetNodes(node + 1)
	}
	mn := &d.multi[node]
	if mn.coreBusy == nil {
		cores := d.opts.Cores
		if cores < 1 {
			cores = 1
		}
		mn.coreBusy = make([]bool, cores)
	}
	return mn
}

func (d *Dispatcher) noteOccupancy(t sim.Time, node int, busy int) {
	if d.mprobe != nil {
		d.mprobe.CoreOccupancy(t, node, busy)
	}
}

func (d *Dispatcher) noteQueueDepth(t sim.Time, node int, depth int) {
	if d.mprobe != nil {
		d.mprobe.CompatQueueDepth(t, node, depth)
	}
}

// RunMulti executes body as a multiactive Optimistic Active Message.
// class and key (valid when hasKey) position the execution in the
// compatibility matrix. Because a queued execution settles after RunMulti
// returns, the outcome is delivered through settle — called exactly once,
// on the execution's own context — instead of being returned. settle may
// be nil.
func (d *Dispatcher) RunMulti(c threads.Ctx, ep *am.Endpoint, name string, class int, key uint64, hasKey bool, body func(*Env), settle func(threads.Ctx, Outcome, Reason)) {
	node := ep.Node().ID()
	st := d.nodeStats(node)
	st.Total++
	mn := d.multiAt(node)
	ent := &runEntry{name: name, class: class, key: key, hasKey: hasKey}
	// Head-only FIFO: an arrival may jump straight onto a core only when
	// nothing is already waiting, so admission order is arrival order.
	if len(mn.queue) == 0 && mn.freeCore() >= 0 && mn.admissible(d.opts.Compat, ent) {
		st.CompatAdmitted++
		d.startCore(c, ep, node, mn, ent, body, settle)
		return
	}
	st.CompatQueued++
	mn.queue = append(mn.queue, queuedExec{ent: *ent, body: body, settle: settle})
	d.noteQueueDepth(c.P.Now(), node, len(mn.queue))
}

// startCore claims the lowest-numbered free core for ent and spawns a
// worker process that runs it — and then keeps draining admissible queue
// heads on the same core — before releasing the core.
func (d *Dispatcher) startCore(c threads.Ctx, ep *am.Endpoint, node int, mn *multiNode, ent *runEntry, body func(*Env), settle func(threads.Ctx, Outcome, Reason)) {
	core := mn.freeCore()
	mn.coreBusy[core] = true
	mn.busy++
	mn.running = append(mn.running, ent)
	d.noteOccupancy(c.P.Now(), node, mn.busy)
	s := c.S
	c.P.Shard().Spawn("oamcore/"+ent.name, func(p *sim.Proc) {
		s.BindCore(p)
		c2 := threads.Ctx{P: p, T: nil, S: s}
		for {
			d.runOnCore(c2, ep, node, mn, ent, body, settle)
			q, ok := mn.takeHead(d.opts.Compat)
			if !ok {
				break
			}
			d.noteQueueDepth(p.Now(), node, len(mn.queue))
			ent = &runEntry{name: q.ent.name, class: q.ent.class, key: q.ent.key, hasKey: q.ent.hasKey}
			mn.running = append(mn.running, ent)
			body, settle = q.body, q.settle
		}
		s.UnbindCore(p)
		mn.coreBusy[core] = false
		mn.busy--
		d.noteOccupancy(p.Now(), node, mn.busy)
	})
}

// takeHead pops and returns the queue head if it is compatible with every
// running execution. Strict FIFO: an inadmissible head blocks everything
// behind it, which keeps admission order deterministic and starvation
// impossible.
func (mn *multiNode) takeHead(t *CompatTable) (queuedExec, bool) {
	if len(mn.queue) == 0 {
		return queuedExec{}, false
	}
	head := mn.queue[0]
	if !mn.admissible(t, &head.ent) {
		return queuedExec{}, false
	}
	n := copy(mn.queue, mn.queue[1:])
	mn.queue[n] = queuedExec{}
	mn.queue = mn.queue[:n]
	return head, true
}

// runOnCore runs one admitted execution on the worker context c2. Aborts
// never retry on the core (that could livelock two same-instant
// executions): Nack reports back through settle, anything else promotes
// to a rerun thread. The Continuation strategy falls back to Rerun here —
// the lend/adopt protocol presumes the single-CPU discipline.
func (d *Dispatcher) runOnCore(c2 threads.Ctx, ep *am.Endpoint, node int, mn *multiNode, ent *runEntry, body func(*Env), settle func(threads.Ctx, Outcome, Reason)) {
	st := d.nodeStats(node)
	if d.probe != nil {
		// Attempt fires at core-run start, not arrival, so the probe's
		// attempt/settle pairing stays balanced per node.
		d.probe.Attempt(c2.P.Now(), node, ent.name, d.opts.Strategy)
	}
	env := &Env{C: c2, ep: ep, d: d, optimistic: true, name: ent.name}
	reason, aborted := attempt(env, body)
	if !aborted {
		env.commit()
		st.Succeeded++
		if d.opts.Adaptive {
			d.adapt(node, false, 0, len(mn.queue))
		}
		if settle != nil {
			settle(c2, Completed, 0)
		}
		d.settle(c2, ep, ent.name, Completed, 0)
		mn.remove(ent)
		return
	}
	env.undo()
	st.ByReason[reason]++
	if d.opts.Adaptive {
		d.adapt(node, true, reason, len(mn.queue))
	}
	if d.opts.Strategy == Nack {
		st.Nacked++
		if settle != nil {
			settle(c2, NackNeeded, reason)
		}
		d.settle(c2, ep, ent.name, NackNeeded, reason)
		mn.remove(ent)
		return
	}
	// Promote: re-execute the whole procedure as a thread. The entry stays
	// in the running set as a shadow slot until the rerun finishes.
	st.Promoted++
	c2.S.Create(c2, "oam/"+ent.name, true, func(c3 threads.Ctx) {
		env2 := &Env{C: c3, ep: ep, d: d, optimistic: false, name: ent.name}
		body(env2)
		d.releaseSlot(c3, ep, node, mn, ent)
	})
	if settle != nil {
		settle(c2, Promoted, reason)
	}
	d.settle(c2, ep, ent.name, Promoted, reason)
}

// releaseSlot drops a promoted execution's shadow slot once its rerun
// thread has finished, then admits any queue heads that became both
// compatible and core-eligible.
func (d *Dispatcher) releaseSlot(c threads.Ctx, ep *am.Endpoint, node int, mn *multiNode, ent *runEntry) {
	mn.remove(ent)
	d.pump(c, ep, node, mn)
}

// pump starts workers for queue heads that are admissible now. Only
// needed when the running set shrinks outside a worker loop (shadow-slot
// release): workers themselves continue the queue on their own core.
func (d *Dispatcher) pump(c threads.Ctx, ep *am.Endpoint, node int, mn *multiNode) {
	for mn.freeCore() >= 0 {
		q, ok := mn.takeHead(d.opts.Compat)
		if !ok {
			return
		}
		d.noteQueueDepth(c.P.Now(), node, len(mn.queue))
		ent := &runEntry{name: q.ent.name, class: q.ent.class, key: q.ent.key, hasKey: q.ent.hasKey}
		d.startCore(c, ep, node, mn, ent, q.body, q.settle)
	}
}
