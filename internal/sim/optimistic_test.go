package sim

import (
	"fmt"
	"testing"
)

// toyMix is a splitmix64-style finalizer: the deterministic "application
// logic" of the toy workloads below.
func toyMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// toyNet is a minimal cross-shard "machine" at the raw sim layer: N
// virtual nodes partitioned across the engine's shards (same contiguous
// blocks as cm5), exchanging flights whose latency is at least la. It
// implements WindowHook (conservative outbox-and-barrier), ArrivalHook
// (optimistic eager injection), and SpanHook (synthetic span-cut edges),
// so the same workload runs sequentially, conservatively, and
// optimistically — and must produce bit-identical per-node hash chains.
type toyNet struct {
	e          *Engine
	la         Duration
	nodes      int
	optimistic bool
	hopLimit   int
	// jitterMod > 0 adds a deterministic per-hop extra latency in
	// [0, jitterMod); 0 keeps every flight at exactly la, so arrivals
	// land exactly on lookahead (and checkpoint) boundaries.
	jitterMod Duration
	// globalEvery > 0 schedules an eager mid-span global every that many
	// hops (the collective-release analogue). Sequential/optimistic only:
	// conservative mode forbids AtGlobal from inside a window.
	globalEvery int

	// bounds are synthetic SpanHook edges (fault-plan boundary stand-ins).
	bounds []Time

	// Per-shard conservative outboxes; per-node state below is only ever
	// touched by the node's owning shard (or the quiescent coordinator).
	outbox [][]*toyFlight
	hash   []uint64
	hops   []uint64
	seq    []uint64
	dead   []bool
}

// toyFlight is one flight (or, with do set, an arbitrary remote action).
type toyFlight struct {
	tn   *toyNet
	at   Time
	key  uint64
	node int
	hop  int
	val  uint64
	do   func()
}

func (fl *toyFlight) Run() {
	if fl.do != nil {
		fl.do()
		return
	}
	fl.tn.deliver(fl)
}

func newToyNet(e *Engine, nodes int, la Duration, hopLimit int) *toyNet {
	tn := &toyNet{
		e: e, la: la, nodes: nodes, hopLimit: hopLimit,
		optimistic: e.Mode() == Optimistic,
		jitterMod:  3 * la,
		outbox:     make([][]*toyFlight, e.Shards()),
		hash:       make([]uint64, nodes),
		hops:       make([]uint64, nodes),
		seq:        make([]uint64, nodes),
		dead:       make([]bool, nodes),
	}
	if e.Shards() > 1 {
		e.SetWindowHook(tn)
	}
	return tn
}

func (tn *toyNet) shardOf(node int) *Shard {
	return tn.e.Shard(node * tn.e.Shards() / tn.nodes)
}

// Lookahead implements WindowHook.
func (tn *toyNet) Lookahead(now Time) Duration { return tn.la }

// Barrier implements WindowHook: flush the conservative outboxes. In
// optimistic mode they are always empty (flights crossed eagerly).
func (tn *toyNet) Barrier() {
	for si := range tn.outbox {
		for _, fl := range tn.outbox[si] {
			tn.shardOf(fl.node).AtDelivery(fl.at, fl.key, fl)
		}
		tn.outbox[si] = tn.outbox[si][:0]
	}
}

// Arrive implements ArrivalHook.
func (tn *toyNet) Arrive(sh *Shard, at Time, key uint64, payload any) {
	sh.AtDelivery(at, key, payload.(*toyFlight))
}

// NextBound implements SpanHook.
func (tn *toyNet) NextBound(now Time) Time {
	b := now
	for _, e := range tn.bounds {
		if e > now && (b <= now || e < b) {
			b = e
		}
	}
	return b
}

// send routes a flight from node from: inline when same-shard, eagerly
// injected when optimistic, via the outbox otherwise.
func (tn *toyNet) send(from int, fl *toyFlight) {
	src, dst := tn.shardOf(from), tn.shardOf(fl.node)
	if dst == src {
		src.AtDelivery(fl.at, fl.key, fl)
		return
	}
	if tn.optimistic {
		dst.Inject(fl.at, fl.key, fl)
		return
	}
	tn.outbox[src.Index()] = append(tn.outbox[src.Index()], fl)
}

// nextKey returns the canonical delivery key for node n's next flight.
func (tn *toyNet) nextKey(n int) uint64 {
	tn.seq[n]++
	return uint64(n)<<40 | tn.seq[n]
}

// deliver runs one hop on the destination node: fold the arrival into the
// node's order-sensitive hash chain and forward the ball.
func (tn *toyNet) deliver(fl *toyFlight) {
	n := fl.node
	if tn.dead[n] {
		return
	}
	sh := tn.shardOf(n)
	now := sh.Now()
	v := toyMix(fl.val ^ uint64(now) ^ uint64(n)<<32 ^ uint64(fl.hop))
	tn.hash[n] = toyMix(tn.hash[n] ^ v)
	tn.hops[n]++
	if fl.hop >= tn.hopLimit {
		return
	}
	if tn.globalEvery > 0 && fl.hop%tn.globalEvery == 0 {
		// Eager global two lookaheads out — beyond any event another
		// shard can be executing right now (the horizon bound), like a
		// collective release. Its instant and key are pure virtual state.
		gt := now.Add(2 * tn.la)
		gkey := tn.nextKey(n)
		node := n
		tn.e.AtGlobal(gt, gkey, func() {
			tn.hash[node] = toyMix(tn.hash[node] ^ uint64(gt) ^ 0x60a1)
		})
	}
	next := int(v % uint64(tn.nodes))
	at := now.Add(tn.la)
	if tn.jitterMod > 0 {
		at = at.Add(Duration(v>>8) % tn.jitterMod)
	}
	tn.send(n, &toyFlight{tn: tn, at: at, key: tn.nextKey(n), node: next, hop: fl.hop + 1, val: v})
}

// start launches balls ping-ponging across the nodes from staggered
// virtual instants.
func (tn *toyNet) start(balls int) {
	for b := 0; b < balls; b++ {
		n := b % tn.nodes
		at := Time(int64(b)*int64(tn.la)/2 + 1)
		fl := &toyFlight{tn: tn, at: at, key: tn.nextKey(n), node: n, hop: 0, val: toyMix(uint64(b) + 0xba11)}
		tn.shardOf(n).AtDelivery(at, fl.key, fl)
	}
}

// toyResult is everything a toy run pins for equivalence.
type toyResult struct {
	hash   []uint64
	hops   []uint64
	events uint64
	spans  uint64
	spec   uint64
}

func runToy(t *testing.T, cfg ShardConfig, mut func(*toyNet)) toyResult {
	t.Helper()
	e := NewShardedConfig(99, cfg)
	tn := newToyNet(e, 8, Micros(2), 120)
	if mut != nil {
		mut(tn)
	}
	tn.start(12)
	if err := e.Run(); err != nil {
		t.Fatalf("run (%+v): %v", cfg, err)
	}
	e.Shutdown()
	st := e.OptStats()
	t.Logf("cfg=%+v events=%d spans=%d spec=%d reopens=%d stalls=%d jumps=%d",
		cfg, e.Events(), st.Spans, st.SpecEvents, st.Reopens, st.Stalls, st.Jumps)
	return toyResult{hash: tn.hash, hops: tn.hops, events: e.Events(), spans: st.Spans, spec: st.SpecEvents}
}

func checkToyEqual(t *testing.T, label string, want, got toyResult) {
	t.Helper()
	for n := range want.hash {
		if want.hash[n] != got.hash[n] || want.hops[n] != got.hops[n] {
			t.Errorf("%s: node %d diverged: hash %#x/%#x hops %d/%d",
				label, n, got.hash[n], want.hash[n], got.hops[n], want.hops[n])
		}
	}
	if want.events != got.events {
		t.Errorf("%s: events = %d, want %d", label, got.events, want.events)
	}
}

// TestOptimisticEquivalence runs the toy ping-pong sequentially,
// conservatively, and optimistically (several checkpoint widths and drift
// bounds) and requires bit-identical per-node hash chains, hop counts,
// and event totals everywhere.
func TestOptimisticEquivalence(t *testing.T) {
	seq := runToy(t, ShardConfig{Shards: 1}, nil)
	la := Micros(2)
	for _, shards := range []int{2, 4} {
		cons := runToy(t, ShardConfig{Shards: shards}, nil)
		checkToyEqual(t, fmt.Sprintf("conservative/%d", shards), seq, cons)
		for _, cfg := range []ShardConfig{
			{Shards: shards, Mode: Optimistic},
			{Shards: shards, Mode: Optimistic, CheckpointEvery: 8 * la},
			{Shards: shards, Mode: Optimistic, CheckpointEvery: 64 * la, MaxDrift: 4 * la},
		} {
			opt := runToy(t, cfg, nil)
			checkToyEqual(t, fmt.Sprintf("optimistic/%d/%+v", shards, cfg), seq, opt)
			if opt.spans == 0 || opt.spec == 0 {
				t.Errorf("optimistic/%d/%+v: spans=%d specEvents=%d, expected speculation",
					shards, cfg, opt.spans, opt.spec)
			}
		}
	}
}

// TestOptimisticSingleShardIsSequential pins that Mode is ignored at one
// shard: the engine reports Conservative and runs the plain kernel.
func TestOptimisticSingleShardIsSequential(t *testing.T) {
	e := NewShardedConfig(1, ShardConfig{Shards: 1, Mode: Optimistic})
	if e.Mode() != Conservative {
		t.Fatalf("single-shard engine mode = %v, want Conservative", e.Mode())
	}
	e.Shutdown()
}

// TestOptimisticBoundaryStraggler removes all jitter and sets the
// checkpoint width to exactly one lookahead, so every flight lands
// exactly on a span-commit timestamp — the straggler-at-the-checkpoint
// edge case. Wider exact multiples put arrivals both inside spans and on
// their edges.
func TestOptimisticBoundaryStraggler(t *testing.T) {
	noJitter := func(tn *toyNet) { tn.jitterMod = 0 }
	seq := runToy(t, ShardConfig{Shards: 1}, noJitter)
	la := Micros(2)
	for _, ckpt := range []Duration{la, 2 * la, 32 * la} {
		for _, shards := range []int{2, 4} {
			got := runToy(t, ShardConfig{Shards: shards, Mode: Optimistic, CheckpointEvery: ckpt}, noJitter)
			checkToyEqual(t, fmt.Sprintf("ckpt=%d shards=%d", ckpt, shards), seq, got)
		}
	}
}

// TestOptimisticSpanBounds checks that synthetic SpanHook cut points
// (the fault-plan slow-window/partition-edge stand-ins) change only the
// span structure, never the results.
func TestOptimisticSpanBounds(t *testing.T) {
	bounds := func(tn *toyNet) {
		for ti := Time(7_000); ti < 300_000; ti += 13_000 {
			tn.bounds = append(tn.bounds, ti)
		}
	}
	seq := runToy(t, ShardConfig{Shards: 1}, bounds)
	free := runToy(t, ShardConfig{Shards: 4, Mode: Optimistic}, nil)
	cut := runToy(t, ShardConfig{Shards: 4, Mode: Optimistic}, bounds)
	checkToyEqual(t, "span-bounds", seq, cut)
	for n := range free.hash {
		if free.hash[n] != cut.hash[n] {
			t.Errorf("node %d: bounds changed results: %#x vs %#x", n, cut.hash[n], free.hash[n])
		}
	}
}

// TestOptimisticGlobalMidSpeculation drives the two global-event paths
// under speculation: a crash-style global scheduled at setup that kills a
// node mid-run, and eager in-span globals (the collective-release
// analogue) that must cut the running span. Conservative mode forbids
// in-window AtGlobal, so the eager case compares sequential vs
// optimistic only.
func TestOptimisticGlobalMidSpeculation(t *testing.T) {
	crash := func(tn *toyNet) {
		tn.e.AtGlobal(40_000, 3, func() {
			tn.dead[3] = true
			tn.hash[3] = toyMix(tn.hash[3] ^ 0xdead)
		})
	}
	seq := runToy(t, ShardConfig{Shards: 1}, crash)
	for _, shards := range []int{2, 4} {
		cons := runToy(t, ShardConfig{Shards: shards}, crash)
		checkToyEqual(t, fmt.Sprintf("crash/conservative/%d", shards), seq, cons)
		opt := runToy(t, ShardConfig{Shards: shards, Mode: Optimistic}, crash)
		checkToyEqual(t, fmt.Sprintf("crash/optimistic/%d", shards), seq, opt)
	}

	eager := func(tn *toyNet) { tn.globalEvery = 7 }
	seqE := runToy(t, ShardConfig{Shards: 1}, eager)
	for _, shards := range []int{2, 4} {
		opt := runToy(t, ShardConfig{Shards: shards, Mode: Optimistic}, eager)
		checkToyEqual(t, fmt.Sprintf("eager-global/%d", shards), seqE, opt)
	}
}

// TestOptimisticDeterminism repeats an optimistic run and requires not
// just identical results but identical deterministic counters (spans,
// speculated events) — the host-schedule-dependent ones (reopens, stalls,
// jumps) are deliberately excluded.
func TestOptimisticDeterminism(t *testing.T) {
	a := runToy(t, ShardConfig{Shards: 4, Mode: Optimistic}, nil)
	b := runToy(t, ShardConfig{Shards: 4, Mode: Optimistic}, nil)
	checkToyEqual(t, "repeat", a, b)
	if a.spans != b.spans || a.spec != b.spec {
		t.Errorf("deterministic counters drifted: spans %d/%d specEvents %d/%d",
			a.spans, b.spans, a.spec, b.spec)
	}
}

// TestOptimisticTimerCancelRace arms timers on one shard and cancels them
// via cross-shard flights inside a single wide span — the cancellation
// analogue of an anti-message racing its positive message. Case A: cancel
// arrives well before the fire time. Case B: cancel arrives at exactly
// the fire instant (deliveries order before normal events, so the cancel
// deterministically wins). Case C: the timer fires first and the cancel
// must fail. A speculative kernel that ran the timer past the horizon
// would flip A or B.
func TestOptimisticTimerCancelRace(t *testing.T) {
	la := Micros(2)
	run := func(cfg ShardConfig) []uint64 {
		e := NewShardedConfig(5, cfg)
		tn := newToyNet(e, 2, la, 0)
		sh1 := tn.shardOf(1)
		stamp := func(tag uint64) {
			tn.hash[1] = toyMix(tn.hash[1] ^ tag ^ uint64(sh1.Now()))
		}
		cancelAt := func(armAt, fireAt, sendAt Time, tag uint64) {
			var tm Timer
			sh1.At(armAt, func() {
				tm = sh1.AtTimer(fireAt, func() { stamp(tag ^ 0xF17E) })
			})
			tn.shardOf(0).At(sendAt, func() {
				fl := &toyFlight{tn: tn, at: sendAt.Add(la), key: tn.nextKey(0), node: 1, do: func() {
					if tm.Cancel() {
						stamp(tag ^ 0xCA)
					} else {
						stamp(tag ^ 0x0F)
					}
				}}
				tn.send(0, fl)
			})
		}
		cancelAt(1_000, 50_000, 2_000, 0xA0000)              // cancel long before fire
		cancelAt(1_000, Time(60_000).Add(la), 60_000, 0xB00) // cancel at exactly the fire instant
		cancelAt(1_000, 70_000, 70_000, 0xC0)                // timer fires first
		if err := e.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		e.Shutdown()
		return tn.hash
	}
	seq := run(ShardConfig{Shards: 1})
	opt := run(ShardConfig{Shards: 2, Mode: Optimistic})
	for n := range seq {
		if seq[n] != opt[n] {
			t.Errorf("node %d: cancel-race hash %#x, want %#x", n, opt[n], seq[n])
		}
	}
}

// TestOptimisticFailurePropagates panics a process on one shard mid-span
// while the other shard is busy: the span must abort, every shard must
// unblock, and Run must report the failure instead of deadlocking.
func TestOptimisticFailurePropagates(t *testing.T) {
	e := NewShardedConfig(7, ShardConfig{Shards: 2, Mode: Optimistic})
	tn := newToyNet(e, 2, Micros(2), 100_000)
	tn.start(2)
	e.Shard(1).Spawn("boom", func(p *Proc) {
		p.Charge(Micros(50))
		panic("boom")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected a process failure from Run")
	}
	e.Shutdown()
}

// TestOptimisticStop stops an optimistic run from inside the simulation:
// the current span finishes, the coordinator exits, nothing hangs.
func TestOptimisticStop(t *testing.T) {
	e := NewShardedConfig(3, ShardConfig{Shards: 2, Mode: Optimistic})
	tn := newToyNet(e, 4, Micros(2), 1_000_000)
	tn.start(4)
	e.Shard(0).At(100_000, func() { e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	e.Shutdown()
}
