package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

// Duration aliases time.Duration; virtual durations use the same unit
// (nanoseconds) as wall-clock durations for familiarity.
type Duration = time.Duration

// Proc is a simulated coroutine process. A Proc executes user code when the
// kernel dispatches it; it yields by calling Charge, Sleep, Park, or by
// returning from its body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked bool
	dead   bool
	id     uint64
	slot   int // index in the engine's live-proc table

	// Interruptible-charge state (see ChargeInterruptible). intTimer is a
	// value, not a pointer, so arming it allocates nothing.
	intTimer    Timer
	intStart    Time
	interrupted bool
}

// PanicError wraps a panic raised inside a process body so that Run can
// report it as an error with the originating process's name.
type PanicError struct {
	Proc  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", e.Proc, e.Value, e.Stack)
}

// Spawn creates a process named name running body, scheduled to start at
// the current virtual time (after already-scheduled same-time events). The
// body runs in process context: it may call Charge, Sleep, Park and friends.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	e.seq++
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		id:     e.seq,
	}
	e.addProc(p)
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			p.dead = true
			e.removeProc(p)
			if r := recover(); r != nil {
				if _, kill := r.(killedSentinel); !kill && e.failure == nil {
					e.failure = &PanicError{Proc: p.name, Value: r, Stack: debug.Stack()}
				}
			}
			if e.tracer != nil {
				e.tracer.Exit(e.now, p)
			}
			// Hand control back to the kernel for good.
			e.kernelCh <- struct{}{}
		}()
		if e.killing {
			panic(killedSentinel{})
		}
		body(p)
	}()
	e.atProc(e.now, p)
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns a unique process identifier (its spawn sequence number).
func (p *Proc) ID() uint64 { return p.id }

// Engine returns the engine that owns p.
func (p *Proc) Engine() *Engine { return p.eng }

// Dead reports whether the process body has returned or panicked.
func (p *Proc) Dead() bool { return p.dead }

// Parked reports whether the process is parked waiting for Unpark.
func (p *Proc) Parked() bool { return p.parked }

// Now returns the current virtual time. Usable from any context.
func (p *Proc) Now() Time { return p.eng.now }

// Charge consumes d of virtual CPU time: the process is suspended and
// resumes exactly d later. Charge(0) yields to other same-time events.
// Must be called from the running process.
func (p *Proc) Charge(d Duration) {
	if d < 0 {
		panic("sim: negative charge")
	}
	p.eng.checkRunning(p, "Charge")
	e := p.eng
	e.atProc(e.now.Add(d), p)
	e.yieldToKernel(p)
}

// Sleep is Charge under a name that reads better for idle waits.
func (p *Proc) Sleep(d Duration) { p.Charge(d) }

// ChargeInterruptible consumes up to d of virtual CPU time like Charge,
// but the charge can be cut short by Interrupt (hardware message
// interrupts in the machine model). It returns the unconsumed remainder:
// zero when the full duration elapsed, positive when interrupted. Must be
// called from the running process.
func (p *Proc) ChargeInterruptible(d Duration) Duration {
	if d < 0 {
		panic("sim: negative charge")
	}
	p.eng.checkRunning(p, "ChargeInterruptible")
	if d == 0 {
		p.Charge(0)
		return 0
	}
	e := p.eng
	p.intStart = e.now
	p.interrupted = false
	ev := e.schedule(e.now.Add(d), evIntProc, nil, nil, p)
	p.intTimer = Timer{ev: ev, gen: ev.gen}
	e.yieldToKernel(p)
	if !p.interrupted {
		return 0
	}
	p.interrupted = false
	consumed := Duration(e.now - p.intStart)
	return d - consumed
}

// Interrupt preempts p's in-progress interruptible charge: p resumes at
// the current virtual time with the remainder of its charge unconsumed.
// Callable from kernel callbacks or other processes. It reports whether a
// charge was actually interrupted (false when p is not inside
// ChargeInterruptible — a plain Charge cannot be preempted).
func (p *Proc) Interrupt() bool {
	if p.dead || p.intTimer.ev == nil {
		return false
	}
	if !p.intTimer.Cancel() {
		return false
	}
	p.intTimer = Timer{}
	p.interrupted = true
	e := p.eng
	e.atProc(e.now, p)
	return true
}

// Park suspends the process until another party calls Unpark. Must be
// called from the running process.
func (p *Proc) Park() {
	p.eng.checkRunning(p, "Park")
	p.parked = true
	p.eng.yieldToKernel(p)
}

// Unpark makes a parked process runnable at the current virtual time. It
// may be called from kernel callbacks or from another running process; it
// is a no-op on a dead process and a programming error on a process that
// is not parked.
func (p *Proc) Unpark() {
	if p.dead {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked process %q", p.name))
	}
	p.parked = false
	e := p.eng
	e.atProc(e.now, p)
}

// UnparkAfter makes a parked process runnable d from now.
func (p *Proc) UnparkAfter(d Duration) {
	if p.dead {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: UnparkAfter of non-parked process %q", p.name))
	}
	p.parked = false
	e := p.eng
	e.atProc(e.now.Add(d), p)
}
