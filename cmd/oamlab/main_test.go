package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeTable1 golden-checks the header of a cheap experiment.
func TestSmokeTable1(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "Table 1") {
		t.Errorf("missing table title:\n%s", got)
	}
	if !strings.Contains(errb.String(), "[table1 done in ") {
		t.Errorf("missing completion line:\n%s", errb.String())
	}
}

// TestSmokeCSV: CSV mode emits a comma-joined header row.
func TestSmokeCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "-csv", "abortcost"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Case,Cost (us)") {
		t.Errorf("missing CSV header:\n%s", out.String())
	}
}

// TestSmokeProfiles: -cpuprofile and -memprofile write non-empty pprof
// files covering the run.
func TestSmokeProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "-cpuprofile", cpu, "-memprofile", mem, "table1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestSmokeProfileBadPath: an unwritable profile path fails cleanly.
func TestSmokeProfileBadPath(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "-cpuprofile", t.TempDir() + "/no/such/dir/cpu.pprof", "table1"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cpuprofile") {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestSmokeUnknownExperiment: bad names exit 2 without output.
func TestSmokeUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown experiment "nosuch"`) {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestSmokeChaos runs the fault-injection sweep at quick scale and
// golden-checks both tables' headers and that every row validated.
func TestSmokeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "chaos"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"Chaos sweep",
		"Drop%  Crashes",
		"Retx",
		"GaveUp",
		"Per-node fault and recovery counters",
		"(crashed)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NO") {
		t.Errorf("a chaos row failed validation:\n%s", got)
	}
}
