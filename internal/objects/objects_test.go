package objects

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

func rig(t *testing.T, n int, mode rpc.Mode) (*Runtime, *am.Universe) {
	t.Helper()
	eng := sim.New(19)
	u := am.NewUniverse(eng, n, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{Mode: mode})
	t.Cleanup(eng.Shutdown)
	return New(rt), u
}

// counter state for tests.
type counter struct{ v int64 }

func TestCounterObject(t *testing.T) {
	r, u := rig(t, 3, rpc.ORPC)
	obj := r.NewObject("ctr", 0, &counter{})
	inc := obj.DefineOp("inc", nil, func(state any, arg []byte) []byte {
		state.(*counter).v++
		return nil
	})
	get := obj.DefineOp("get", nil, func(state any, arg []byte) []byte {
		e := rpc.NewEnc(8)
		e.I64(state.(*counter).v)
		return e.Bytes()
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			return
		}
		for i := 0; i < 10; i++ {
			inc.Invoke(c, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Read back from a fresh one-shot run is not possible (SPMD runs
	// once), so check state directly plus via stats.
	if got := obj.state.(*counter).v; got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
	if st := inc.Stats(); st.OAMs != 20 || st.Successes != 20 {
		t.Fatalf("inc stats %+v", st)
	}
	_ = get
}

// TestGuardedBuffer: a bounded buffer object — Orca's classic guarded
// operations. Put blocks when full; Get blocks when empty.
func TestGuardedBuffer(t *testing.T) {
	for _, mode := range []rpc.Mode{rpc.ORPC, rpc.TRPC} {
		r, u := rig(t, 3, mode)
		type buf struct {
			items []int64
			cap   int
		}
		obj := r.NewObject("buf", 0, &buf{cap: 2})
		put := obj.DefineOp("put",
			func(s any, arg []byte) bool { b := s.(*buf); return len(b.items) < b.cap },
			func(s any, arg []byte) []byte {
				b := s.(*buf)
				b.items = append(b.items, rpc.NewDec(arg).I64())
				return nil
			})
		get := obj.DefineOp("get",
			func(s any, arg []byte) bool { return len(s.(*buf).items) > 0 },
			func(s any, arg []byte) []byte {
				b := s.(*buf)
				v := b.items[0]
				b.items = b.items[1:]
				e := rpc.NewEnc(8)
				e.I64(v)
				return e.Bytes()
			})
		var got []int64
		_, err := u.SPMD(func(c threads.Ctx, node int) {
			switch node {
			case 1: // producer: 6 items through a 2-slot buffer
				for i := int64(0); i < 6; i++ {
					e := rpc.NewEnc(8)
					e.I64(i * 10)
					put.Invoke(c, e.Bytes())
				}
			case 2: // consumer, slower
				for i := 0; i < 6; i++ {
					c.P.Charge(sim.Micros(200))
					rep := rpc.NewDec(get.Invoke(c, nil))
					got = append(got, rep.I64())
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(got) != 6 {
			t.Fatalf("%v: consumed %d items", mode, len(got))
		}
		for i, v := range got {
			if v != int64(i*10) {
				t.Fatalf("%v: FIFO violated: %v", mode, got)
			}
		}
		// The producer must have blocked at least once (buffer of 2,
		// slow consumer): some OAMs aborted and were promoted.
		if mode == rpc.ORPC {
			if st := put.Stats(); st.Promoted == 0 {
				t.Errorf("put never blocked: %+v", st)
			}
		}
	}
}

// TestLocationTransparentInvoke: invoking an operation on one's own
// object also works (through the loopback network).
func TestLocationTransparentInvoke(t *testing.T) {
	r, u := rig(t, 2, rpc.ORPC)
	obj := r.NewObject("ctr", 0, &counter{})
	inc := obj.DefineOp("inc", nil, func(s any, arg []byte) []byte {
		s.(*counter).v++
		return nil
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			inc.Invoke(c, nil) // self-invocation
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if obj.state.(*counter).v != 1 {
		t.Fatal("self-invocation lost")
	}
}

func TestDuplicateObjectPanics(t *testing.T) {
	r, _ := rig(t, 2, rpc.ORPC)
	r.NewObject("x", 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate object")
		}
	}()
	r.NewObject("x", 1, nil)
}

// TestObjectDeterminism: guarded-object runs are reproducible.
func TestObjectDeterminism(t *testing.T) {
	runOnce := func() (sim.Time, uint64) {
		eng := sim.New(23)
		u := am.NewUniverse(eng, 3, cm5.DefaultCostModel())
		defer eng.Shutdown()
		rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC})
		r := New(rt)
		obj := r.NewObject("ctr", 0, &counter{})
		inc := obj.DefineOp("inc", nil, func(s any, arg []byte) []byte {
			s.(*counter).v++
			return nil
		})
		end, err := u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				return
			}
			for i := 0; i < 8; i++ {
				inc.Invoke(c, nil)
				c.P.Charge(sim.Duration(eng.Rand().Intn(30)) * sim.Microsecond)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end, inc.Stats().OAMs
	}
	e1, o1 := runOnce()
	e2, o2 := runOnce()
	if e1 != e2 || o1 != o2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, o1, e2, o2)
	}
}
