// Package triangle implements the Triangle puzzle of section 4.2.1: an
// exhaustive breadth-first search for peg-solitaire solution counts on a
// triangular board, parallelized with a distributed transposition table.
// Every extension of a position is sent to the table's owner as a small
// asynchronous RPC — the paper's archetype of a fine-grained application
// that sends many small messages.
package triangle

import (
	"fmt"
	"math/bits"
)

// Board holds the static structure of a triangular peg board of side N:
// cell indexing, the legal jump moves, and the symmetry group.
type Board struct {
	N     int
	Cells int
	// moves lists all (src, mid, dst) jump triples.
	moves [][3]uint8
	// perms[k][i] is the image of cell i under the k-th of the 6
	// symmetries of the triangle.
	perms [6][]uint8
	// Empty is the initially empty cell (the "center" hole).
	Empty int
}

// cellIndex maps (row, col) to a cell number; row 0 is the apex.
func cellIndex(r, c int) int { return r*(r+1)/2 + c }

// NewBoard builds the board of side n. The initially empty hole is the
// canonical "center": the middle cell of row n/2 — for size 6 that is
// (row 3, col 1), one of the three central cells.
func NewBoard(n int) *Board {
	return NewBoardAt(n, cellIndex(n/2, (n/2)/2))
}

// NewBoardAt builds the board of side n with the initially empty hole at
// cell empty.
func NewBoardAt(n, empty int) *Board {
	if n < 3 || n > 7 {
		panic(fmt.Sprintf("triangle: side %d out of supported range [3,7]", n))
	}
	b := &Board{N: n, Cells: n * (n + 1) / 2}
	if b.Cells > 32 {
		panic("triangle: board does not fit in 32 bits")
	}
	if empty < 0 || empty >= b.Cells {
		panic(fmt.Sprintf("triangle: empty cell %d out of range", empty))
	}
	b.Empty = empty

	// Moves: jumps along the three lattice directions, both ways.
	dirs := [3][2]int{{0, 1}, {1, 0}, {1, 1}}
	valid := func(r, c int) bool { return r >= 0 && r < n && c >= 0 && c <= r }
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			for _, d := range dirs {
				for _, sgn := range [2]int{1, -1} {
					mr, mc := r+sgn*d[0], c+sgn*d[1]
					dr, dc := r+2*sgn*d[0], c+2*sgn*d[1]
					if valid(mr, mc) && valid(dr, dc) {
						b.moves = append(b.moves, [3]uint8{
							uint8(cellIndex(r, c)),
							uint8(cellIndex(mr, mc)),
							uint8(cellIndex(dr, dc)),
						})
					}
				}
			}
		}
	}

	// Symmetries: write each cell in barycentric coordinates (x,y,z) with
	// x+y+z = n-1; the triangle's symmetry group is all 6 permutations of
	// the coordinates.
	permTable := [6][3]int{
		{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, // rotations
		{0, 2, 1}, {2, 1, 0}, {1, 0, 2}, // reflections
	}
	for k, pt := range permTable {
		b.perms[k] = make([]uint8, b.Cells)
		for r := 0; r < n; r++ {
			for c := 0; c <= r; c++ {
				xyz := [3]int{n - 1 - r, c, r - c}
				img := [3]int{xyz[pt[0]], xyz[pt[1]], xyz[pt[2]]}
				ir := n - 1 - img[0]
				ic := img[1]
				b.perms[k][cellIndex(r, c)] = uint8(cellIndex(ir, ic))
			}
		}
	}
	return b
}

// State is a board position: bit i set means cell i holds a peg.
type State uint32

// Start returns the initial position: all pegs except the center hole.
func (b *Board) Start() State {
	full := State(1<<b.Cells) - 1
	return full &^ (1 << b.Empty)
}

// Pegs counts the pegs on the board.
func (s State) Pegs() int { return bits.OnesCount32(uint32(s)) }

// apply performs move m (no legality check).
func applyMove(s State, m [3]uint8) State {
	return s&^(1<<m[0])&^(1<<m[1]) | 1<<m[2]
}

// legal reports whether move m applies to s.
func legalMove(s State, m [3]uint8) bool {
	return s&(1<<m[0]) != 0 && s&(1<<m[1]) != 0 && s&(1<<m[2]) == 0
}

// permute maps s through symmetry k.
func (b *Board) permute(s State, k int) State {
	var out State
	p := b.perms[k]
	for s != 0 {
		i := bits.TrailingZeros32(uint32(s))
		s &= s - 1
		out |= 1 << p[i]
	}
	return out
}

// Canon returns the canonical representative of s's symmetry class: the
// minimum image over the 6 symmetries. The transposition table stores
// only canonical positions ("non-redundant extensions").
func (b *Board) Canon(s State) State {
	min := b.permute(s, 0)
	for k := 1; k < 6; k++ {
		if img := b.permute(s, k); img < min {
			min = img
		}
	}
	return min
}

// Ext is one non-redundant extension: a canonical successor with the
// number of distinct moves (from this position) reaching it.
type Ext struct {
	S    State
	Mult uint64
}

// Extensions appends the non-redundant canonical successors of s to dst
// and returns it. Moves whose canonical successors coincide (the position
// is symmetric) are merged with their multiplicity, so each successor is
// transmitted once — the paper's "(non-redundant) extensions" — while
// path counting stays exact.
func (b *Board) Extensions(s State, dst []Ext) []Ext {
	base := len(dst)
	for _, m := range b.moves {
		if !legalMove(s, m) {
			continue
		}
		c := b.Canon(applyMove(s, m))
		merged := false
		for i := base; i < len(dst); i++ {
			if dst[i].S == c {
				dst[i].Mult++
				merged = true
				break
			}
		}
		if !merged {
			dst = append(dst, Ext{S: c, Mult: 1})
		}
	}
	return dst
}

// MoveCount reports the number of legal moves from s.
func (b *Board) MoveCount(s State) int {
	n := 0
	for _, m := range b.moves {
		if legalMove(s, m) {
			n++
		}
	}
	return n
}

// SeqCounts is what a sequential solve reports besides the answer.
type SeqCounts struct {
	Positions  uint64 // distinct canonical positions expanded
	Extensions uint64 // successor messages generated (the paper's RPC count)
	Solutions  uint64 // move sequences ending with one peg
}

// SolveSeq runs the level-synchronous BFS sequentially and returns the
// solution count and work counters. The parallel implementations must
// produce the identical Solutions value.
func (b *Board) SolveSeq() SeqCounts {
	var cnt SeqCounts
	var exts []Ext
	frontier := map[State]uint64{b.Canon(b.Start()): 1}
	for len(frontier) > 0 {
		next := make(map[State]uint64)
		for s, ways := range frontier {
			cnt.Positions++
			if s.Pegs() == 1 {
				cnt.Solutions += ways
				continue
			}
			exts = b.Extensions(s, exts[:0])
			for _, e := range exts {
				cnt.Extensions++
				next[e.S] += ways * e.Mult
			}
		}
		frontier = next
	}
	return cnt
}
