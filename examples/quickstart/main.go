// Quickstart: a three-node cluster where two clients increment a counter
// on a server with synchronous optimistic RPCs. Run it twice — once with
// ORPC and once with TRPC — and compare round-trip costs, reproducing the
// spirit of Table 1 in a dozen lines of application code.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rpc"
)

func run(mode rpc.Mode) {
	c := core.NewCluster(core.Options{Nodes: 3, Mode: mode, Seed: 42})
	count := 0
	inc := c.Define("inc", func(e *core.Env, caller int, arg []byte) []byte {
		count++
		return nil
	})
	elapsed, err := c.Run(func(ctx core.Ctx, node int) {
		if node == 0 {
			return // node 0 serves from its scheduler loop
		}
		for i := 0; i < 100; i++ {
			inc.Call(ctx, 0, nil)
		}
	})
	if err != nil {
		panic(err)
	}
	st := c.OAMStats()
	fmt.Printf("%-4v  counter=%d  elapsed=%8.1fus  oams=%d  succeeded=%d\n",
		mode, count, float64(elapsed)/1000, st.Total, st.Succeeded)
}

func main() {
	fmt.Println("200 null RPCs from 2 clients to 1 server:")
	run(rpc.ORPC)
	run(rpc.TRPC)
	fmt.Println("ORPC runs every call inside the message handler (no threads);")
	fmt.Println("TRPC pays thread creation and switching for each call.")
}
