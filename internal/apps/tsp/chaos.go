package tsp

import (
	"fmt"
	"math"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/reliable"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// ChaosConfig parameterizes a fault-tolerant TSP run.
type ChaosConfig struct {
	Cities int
	Seed   int64
	// Shards selects the engine's shard count: 0 or 1 sequential,
	// negative auto (one per CPU), clamped to the node count. Results are
	// bit-identical at any value; only wall-clock time changes.
	Shards int
	// Optimistic selects the engine's speculative span scheduler instead
	// of lockstep windows when Shards resolves parallel (results stay
	// bit-identical; only wall-clock time changes).
	Optimistic bool
	Strategy   oam.Strategy
	// Cores gives each simulated node this many cores (default 1);
	// values > 1 route sync dispatches through the multiactive path.
	Cores int
	// Fault is the injected fault plan (nil for a perfect network).
	Fault *cm5.FaultPlan
	// Rel tunes the reliable transport, which is always attached.
	Rel reliable.Options
	// CallTimeout is the per-attempt GetJob/deadline window (default 2 ms).
	CallTimeout sim.Duration
	// CallAttempts bounds idempotent retries per call (default 4).
	CallAttempts int
	// LeaseTimeout is how long the master lets a handed-out job stay
	// unfinished before re-queueing it (default 20 ms).
	LeaseTimeout sim.Duration
	// MaxTime aborts the run if virtual time exceeds it (default 120 s) —
	// a safety net against pathological fault plans, not a tuning knob.
	MaxTime sim.Time
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = sim.Micros(2000)
	}
	if cfg.CallAttempts <= 0 {
		cfg.CallAttempts = 4
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = sim.Micros(20000)
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = sim.Time(120 * sim.Second)
	}
	return cfg
}

// ChaosStats reports what the robustness machinery did during a run.
type ChaosStats struct {
	Reissued     uint64 // jobs re-queued after a lease expired
	Timeouts     uint64 // client-side call deadline expirations
	Retries      uint64 // client-side nack retries
	StaleReplies uint64 // replies that arrived after their call was abandoned
	Rel          reliable.Stats
	Fault        cm5.FaultStats
	FaultHash    uint64
	// Per-node breakdowns, indexed by node id (0 = master).
	NodeFaults []cm5.NodeFaultStats
	NodeRel    []reliable.NodeStats
	CrashedAt  []bool
}

// GetJob reply status codes.
const (
	jobWait = iota // nothing available right now, retry later
	jobTake        // a job follows
	jobDone        // search complete, slave may exit
)

// job lease states.
const (
	leaseAvail = iota
	leaseOut
	leaseDone
)

// RunChaos executes TSP over reliable ORPC on a faulty machine and keeps
// the answer exact. Robustness comes from three mechanisms layered on the
// plain master/slave search:
//
//   - every message rides the reliable transport (loss and duplication
//     are invisible to the RPC layer, at the price of retransmits);
//   - slaves fetch work with idempotent deadline calls, so a crashed or
//     partitioned master surfaces as an error, not a hang, and a crashed
//     slave's own main exits instead of blocking the run;
//   - the master leases jobs instead of giving them away: a job whose
//     DoneJob has not arrived within LeaseTimeout is re-queued for a live
//     slave, and DoneJob carries the finishing slave's best tour, so a
//     completed subtree's optimum reaches the master even if every Best
//     broadcast from that slave was lost — remaining == 0 then implies
//     the master's best is the global optimum.
func RunChaos(slaves int, cfg ChaosConfig) (apps.Result, ChaosStats, error) {
	cfg = cfg.withDefaults()
	p := NewProblem(cfg.Cities, cfg.Seed)
	nodes := slaves + 1
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(cfg.Fault)
	tr := reliable.Attach(u, cfg.Rel)
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC, OAM: oam.Options{Strategy: cfg.Strategy, Cores: cfg.Cores}})

	states := make([]*nodeState, nodes)
	for i := range states {
		states[i] = &nodeState{best: math.MaxInt64}
	}

	// Master bookkeeping, all under qmu.
	var (
		jobs       [][]uint8
		queue      []int // indices of available jobs
		lease      []uint8
		leaseAt    []sim.Time
		remaining  int
		genDone    bool
		masterDone bool
		stats      ChaosStats
	)
	qmu := threads.NewMutex(u.Scheduler(0))

	getJob := rt.Define("chaos/getjob", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Lock(qmu)
		e.Compute(CostPop)
		enc := rpc.NewEnc(16)
		switch {
		case masterDone:
			enc.U8(jobDone)
		case len(queue) == 0:
			enc.U8(jobWait)
		default:
			idx := queue[0]
			queue = queue[1:]
			lease[idx] = leaseOut
			leaseAt[idx] = eng.Now()
			enc.U8(jobTake)
			enc.U32(uint32(idx))
			enc.Buf(jobs[idx])
		}
		e.Unlock(qmu)
		return enc.Bytes()
	})
	doneJob := rt.DefineAsync("chaos/donejob", func(e *oam.Env, caller int, arg []byte) []byte {
		dec := rpc.NewDec(arg)
		idx := int(dec.U32())
		tour := dec.I64()
		e.Lock(qmu)
		ms := states[0]
		if tour < ms.best {
			ms.best = tour
		}
		// A job may complete twice (lease expired, reissued, both slaves
		// finished); only the first completion retires it.
		if lease[idx] == leaseOut {
			lease[idx] = leaseDone
			remaining--
		}
		e.Unlock(qmu)
		return nil
	})
	best := rt.DefineAsync("chaos/best", func(e *oam.Env, caller int, arg []byte) []byte {
		tour := rpc.NewDec(arg).I64()
		ns := states[e.Node()]
		if tour < ns.best {
			ns.best = tour
		}
		return nil
	})

	var runErr error
	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		ep := u.Endpoint(me)
		if me == 0 {
			// Generation phase, interleaved with servicing requests.
			for _, j := range p.Jobs() {
				c.P.Charge(CostGenJob)
				qmu.Lock(c)
				jobs = append(jobs, j)
				queue = append(queue, len(jobs)-1)
				lease = append(lease, leaseAvail)
				leaseAt = append(leaseAt, 0)
				remaining++
				qmu.Unlock(c)
				apps.Service(c, ep)
			}
			qmu.Lock(c)
			genDone = true
			qmu.Unlock(c)
			// Watchdog phase: reclaim expired leases until all jobs done.
			for {
				qmu.Lock(c)
				if genDone && remaining == 0 {
					masterDone = true
				}
				now := eng.Now()
				for idx := range lease {
					if lease[idx] == leaseOut && now.Sub(leaseAt[idx]) > cfg.LeaseTimeout {
						lease[idx] = leaseAvail
						queue = append(queue, idx)
						stats.Reissued++
					}
				}
				md := masterDone
				qmu.Unlock(c)
				if md {
					return // the scheduler idle loop keeps answering jobDone
				}
				if eng.Now() > cfg.MaxTime {
					runErr = fmt.Errorf("tsp/chaos: exceeded MaxTime %v with %d jobs outstanding", cfg.MaxTime, remaining)
					qmu.Lock(c)
					masterDone = true
					qmu.Unlock(c)
					return
				}
				c.P.Charge(sim.Micros(100))
				apps.Service(c, ep)
			}
		}

		// Slave.
		ns := states[me]
		node := ep.Node()
		errs := 0
		for {
			if node.Crashed() {
				return
			}
			res, err := getJob.CallIdempotent(c, 0, nil, cfg.CallTimeout, cfg.CallAttempts)
			if err != nil {
				// Crashed mid-call, or the master is unreachable. A live
				// slave tolerates a bounded streak before giving up.
				errs++
				if node.Crashed() || errs > 25 {
					return
				}
				continue
			}
			errs = 0
			dec := rpc.NewDec(res)
			switch dec.U8() {
			case jobDone:
				return
			case jobWait:
				c.P.Charge(sim.Micros(200))
				apps.Service(c, ep)
				continue
			}
			idx := int(dec.U32())
			route := append([]uint8(nil), dec.Buf()...)
			nb, _ := p.Expand(route, ns.best, func(n int) int64 {
				c.P.Charge(sim.Duration(n) * CostVisit)
				apps.Service(c, ep)
				if node.Crashed() {
					// Prune everything: a dead node stops computing.
					return math.MinInt64
				}
				return ns.best
			})
			if node.Crashed() {
				return
			}
			if nb < ns.best {
				ns.best = nb
				for n := 0; n < nodes; n++ {
					if n != me {
						enc := rpc.NewEnc(8)
						enc.I64(nb)
						best.CallAsync(c, n, enc.Bytes())
					}
				}
			}
			enc := rpc.NewEnc(12)
			enc.U32(uint32(idx))
			enc.I64(ns.best)
			doneJob.CallAsync(c, 0, enc.Bytes())
		}
	})
	if err != nil {
		return apps.Result{}, stats, fmt.Errorf("tsp/chaos: %w", err)
	}
	if runErr != nil {
		return apps.Result{}, stats, runErr
	}

	// The optimum: every job's DoneJob reached the master, so states[0]
	// alone suffices; fold in live slaves anyway (crashed nodes' post-crash
	// state is excluded on principle — a dead machine reports nothing).
	bestLen := states[0].best
	for i := 1; i < nodes; i++ {
		if !u.Machine().Crashed(i) && states[i].best < bestLen {
			bestLen = states[i].best
		}
	}

	stats.Timeouts = getJob.Stats().Timeouts
	stats.Retries = getJob.Stats().Retries + doneJob.Stats().Retries + best.Stats().Retries
	stats.StaleReplies = rt.StaleReplies()
	stats.Rel = tr.Stats()
	stats.Fault = u.Machine().FaultStats()
	stats.FaultHash = u.Machine().FaultTraceHash()
	for i := 0; i < nodes; i++ {
		stats.NodeFaults = append(stats.NodeFaults, u.Machine().NodeFaults(i))
		stats.NodeRel = append(stats.NodeRel, tr.NodeStats(i))
		stats.CrashedAt = append(stats.CrashedAt, u.Machine().Crashed(i))
	}

	res := apps.Result{
		System:  apps.ORPC,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  uint64(bestLen),
	}
	oams := getJob.Stats().OAMs + doneJob.Stats().OAMs + best.Stats().OAMs
	succ := getJob.Stats().Successes + doneJob.Stats().Successes + best.Stats().Successes
	apps.FillResult(&res, u, oams, succ)
	return res, stats, nil
}
