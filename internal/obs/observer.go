package obs

import (
	"fmt"
	"io"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Options selects which sinks a Collector maintains. Each sink costs
// host time and memory during the run; an unselected sink is simply nil
// and its updates are skipped.
type Options struct {
	Trace   bool // build a Chrome trace-event / Perfetto timeline
	Metrics bool // maintain the typed per-node instrument registry
	Profile bool // attribute virtual CPU time to procedure names
}

// Collector implements every layer's probe interface (and sim.Tracer)
// and funnels the observations into the selected sinks. Create one with
// New, wire it with Attach before the simulation starts, and read the
// sinks after the run.
type Collector struct {
	opts Options
	u    *am.Universe
	eng  *sim.Engine

	reg  *Registry
	prof *Profile
	tb   *traceBuilder

	procNode map[uint64]int // sim proc id → node (from threads.ProcBound)
	threadID map[*threads.Thread]uint64
	nextID   uint64 // thread-lifetime async ids
	flightID uint64 // packet-flight async ids

	handlerStart [][]sim.Time // per node, stack of open handler runs
	oamStart     [][]sim.Time // per node, stack of open optimistic dispatches
	callStart    map[callKey][]sim.Time

	// Metrics instruments (nil sink ⇒ all nil).
	cResumes, cExits, cSpawns            *Counter
	cSent, cDelivered, cLost, cBackpress *Counter
	cHandlers                            *Counter
	cAttempts, cCompleted, cPromoted     *Counter
	cNacked                              *Counter
	cAbortReason                         [4]*Counter
	cCalls, cTimeouts, cRetries, cStale  *Counter
	cThCreated, cThStarted, cThLive      *Counter
	cThExited                            *Counter
	cSchedBeats, cSchedDead, cSchedAlive *Counter
	cSchedPlaced                         *Counter
	cSchedReclaims                       [3]*Counter
	cSchedAccepted, cSchedRejected       *Counter
	cKVDone                              [4]*Counter
	cKVSheds                             *Counter
	gNicDepth, gReadyDepth               *Gauge
	gCoresBusy, gCompatQueue             *Gauge
	hHandler, hWire, hCall, hKVLat       *Histogram

	// Scheduler control-plane trace state (see sched.go).
	schedMeta bool              // sched track metadata emitted
	schedSeq  uint64            // lease/outage async span ids
	leaseID   map[leaseKey]uint64
	outageID  map[int]uint64

	// KV service trace state (see kv.go).
	kvMeta map[int]bool // per node, kv track metadata emitted
}

type callKey struct {
	node int
	proc string
}

// abortReasons enumerates oam.Reason values in order, for per-reason
// counters and trace tags.
var abortReasons = [4]oam.Reason{oam.LockBusy, oam.CondFalse, oam.NetworkFull, oam.TooLong}

// New returns a collector with the selected sinks.
func New(opts Options) *Collector {
	c := &Collector{
		opts:      opts,
		procNode:  make(map[uint64]int),
		threadID:  make(map[*threads.Thread]uint64),
		callStart: make(map[callKey][]sim.Time),
		leaseID:   make(map[leaseKey]uint64),
		outageID:  make(map[int]uint64),
	}
	if opts.Profile {
		c.prof = NewProfile()
	}
	if opts.Trace {
		c.tb = &traceBuilder{}
	}
	return c
}

// Attach wires the collector into every layer of a universe (and, when
// non-nil, its RPC runtime). Call it after construction and before the
// simulation starts; rt may be nil for plain Active Message programs.
func (c *Collector) Attach(u *am.Universe, rt *rpc.Runtime) {
	c.u = u
	c.eng = u.Machine().Engine()
	n := u.N()
	c.handlerStart = make([][]sim.Time, n)
	c.oamStart = make([][]sim.Time, n)

	if c.opts.Metrics {
		r := NewRegistry(n)
		c.reg = r
		c.cResumes = r.NewCounter("sim/resumes")
		c.cExits = r.NewCounter("sim/exits")
		c.cSpawns = r.NewCounter("sim/spawns")
		c.cSent = r.NewCounter("cm5/packets_sent")
		c.cDelivered = r.NewCounter("cm5/packets_delivered")
		c.cLost = r.NewCounter("cm5/packets_lost")
		c.cBackpress = r.NewCounter("cm5/backpressure")
		c.cHandlers = r.NewCounter("am/handlers_run")
		c.cAttempts = r.NewCounter("oam/attempts")
		c.cCompleted = r.NewCounter("oam/completed")
		c.cPromoted = r.NewCounter("oam/promoted")
		c.cNacked = r.NewCounter("oam/nacked")
		for i, reason := range abortReasons {
			c.cAbortReason[i] = r.NewCounter("oam/abort/" + reason.String())
		}
		c.cCalls = r.NewCounter("rpc/calls")
		c.cTimeouts = r.NewCounter("rpc/timeouts")
		c.cRetries = r.NewCounter("rpc/retries")
		c.cStale = r.NewCounter("rpc/stale_replies")
		c.cSchedBeats = r.NewCounter("sched/heartbeats")
		c.cSchedDead = r.NewCounter("sched/agent_dead")
		c.cSchedAlive = r.NewCounter("sched/agent_recovered")
		c.cSchedPlaced = r.NewCounter("sched/leases_placed")
		for i, why := range reclaimReasons {
			c.cSchedReclaims[i] = r.NewCounter("sched/reclaim/" + why.String())
		}
		c.cSchedAccepted = r.NewCounter("sched/completions_accepted")
		c.cSchedRejected = r.NewCounter("sched/completions_fenced")
		for i, out := range kvOutcomes {
			c.cKVDone[i] = r.NewCounter("kv/done/" + out.String())
		}
		c.cKVSheds = r.NewCounter("kv/sheds")
		c.cThCreated = r.NewCounter("threads/created")
		c.cThStarted = r.NewCounter("threads/started")
		c.cThLive = r.NewCounter("threads/live_stack_starts")
		c.cThExited = r.NewCounter("threads/exited")
		c.gNicDepth = r.NewGauge("cm5/nic_depth")
		c.gReadyDepth = r.NewGauge("threads/ready_depth")
		c.gCoresBusy = r.NewGauge("oam/cores_busy")
		c.gCompatQueue = r.NewGauge("oam/compat_queue")
		c.hHandler = r.NewHistogram("am/handler_time",
			sim.Micros(1), sim.Micros(3), sim.Micros(10), sim.Micros(30),
			sim.Micros(100), sim.Micros(300), sim.Micros(1000))
		c.hWire = r.NewHistogram("cm5/wire_latency",
			sim.Micros(1), sim.Micros(2), sim.Micros(5), sim.Micros(10),
			sim.Micros(50), sim.Micros(200))
		c.hCall = r.NewHistogram("rpc/call_time",
			sim.Micros(10), sim.Micros(30), sim.Micros(100), sim.Micros(300),
			sim.Micros(1000), sim.Micros(10000))
		c.hKVLat = r.NewHistogram("kv/latency", kvLatBounds...)
	}

	if c.tb != nil {
		for i := 0; i < n; i++ {
			c.tb.procMeta(i, fmt.Sprintf("node %d", i))
			for _, tn := range tidNames {
				c.tb.threadMeta(i, tn.tid, tn.name)
			}
		}
	}

	c.eng.SetProbe(c)
	c.eng.SetTracer(c)
	u.Machine().SetProbe(c)
	u.SetProbe(c)
	for i := 0; i < n; i++ {
		u.Scheduler(i).SetProbe(c)
	}
	if rt != nil {
		rt.SetProbe(c)
		rt.Dispatcher().SetProbe(c)
		rt.AsyncDispatcher().SetProbe(c)
	}
}

// node resolves a proc to the node whose CPU it represents; ok is false
// for procs not bound to any node (none exist in the current stack, but
// the collector must not guess).
func (c *Collector) node(p *sim.Proc) (int, bool) {
	n, ok := c.procNode[p.ID()]
	return n, ok
}

// EngineCharged returns the engine's own total of charged virtual CPU
// time — the ground truth the profiler's Total must match exactly.
func (c *Collector) EngineCharged() sim.Duration { return c.eng.Charged() }

// Registry returns the metrics sink (nil unless Options.Metrics).
func (c *Collector) Registry() *Registry { return c.reg }

// Profile returns the profiler sink (nil unless Options.Profile).
func (c *Collector) Profile() *Profile { return c.prof }

// WriteTrace writes the accumulated Perfetto JSON document.
func (c *Collector) WriteTrace(w io.Writer) error {
	if c.tb == nil {
		return fmt.Errorf("obs: collector has no trace sink")
	}
	return c.tb.writeDoc(w)
}

// WriteMetrics renders the instrument registry as text.
func (c *Collector) WriteMetrics(w io.Writer) error {
	if c.reg == nil {
		return fmt.Errorf("obs: collector has no metrics sink")
	}
	return c.reg.Write(w)
}

// WriteProfile renders the top-n virtual-CPU profile table.
func (c *Collector) WriteProfile(w io.Writer, n int) error {
	if c.prof == nil {
		return fmt.Errorf("obs: collector has no profile sink")
	}
	return c.prof.Write(w, n)
}

// --- sim.Tracer ---

func (c *Collector) Resume(t sim.Time, p *sim.Proc) {
	if c.cResumes != nil {
		if n, ok := c.node(p); ok {
			c.cResumes.Inc(n)
		}
	}
}

func (c *Collector) Yield(t sim.Time, p *sim.Proc) {}

func (c *Collector) Exit(t sim.Time, p *sim.Proc) {
	if c.cExits != nil {
		if n, ok := c.node(p); ok {
			c.cExits.Inc(n)
		}
	}
}

// --- sim.Probe ---

func (c *Collector) Charged(p *sim.Proc, start sim.Time, d sim.Duration) {
	if c.prof != nil {
		c.prof.Add(p.Name(), d)
	}
	if c.tb != nil && d > 0 {
		if n, ok := c.node(p); ok {
			c.tb.span(p.Name(), "cpu", start, d, n, tidCPU, "")
		}
	}
}

func (c *Collector) Spawned(p *sim.Proc) {
	if c.cSpawns != nil {
		if n, ok := c.node(p); ok {
			c.cSpawns.Inc(n)
		} else {
			c.cSpawns.Inc(0) // pre-binding spawns count against node 0
		}
	}
}

// --- cm5.Probe ---

func (c *Collector) PacketSent(t sim.Time, pkt *cm5.Packet, busy, wire sim.Duration, dup bool, dupWire sim.Duration) {
	if c.cSent != nil {
		c.cSent.Inc(pkt.Src)
		c.hWire.Observe(pkt.Src, wire)
	}
	if c.tb != nil {
		name := c.u.HandlerName(am.HandlerID(pkt.Handler))
		args := fmt.Sprintf(`{"src":%d,"dst":%d,"bytes":%d}`, pkt.Src, pkt.Dst, len(pkt.Payload))
		// The flight's timestamps are fully determined at injection time:
		// the packet leaves when the sender's busy window ends and lands
		// wire later, so both async endpoints are emitted here.
		c.flightID++
		c.tb.asyncBegin(name, "flight", t.Add(busy), pkt.Src, tidNet, c.flightID, args)
		c.tb.asyncEnd(name, "flight", t.Add(busy+wire), pkt.Src, tidNet, c.flightID)
		if dup {
			c.flightID++
			c.tb.asyncBegin(name+" (dup)", "flight", t.Add(busy), pkt.Src, tidNet, c.flightID, args)
			c.tb.asyncEnd(name+" (dup)", "flight", t.Add(busy+dupWire), pkt.Src, tidNet, c.flightID)
		}
	}
}

func (c *Collector) PacketDelivered(t sim.Time, pkt *cm5.Packet, queueDepth int) {
	if c.cDelivered != nil {
		c.cDelivered.Inc(pkt.Dst)
		c.gNicDepth.Set(pkt.Dst, int64(queueDepth))
	}
	if c.tb != nil {
		c.tb.counter("nic_depth", t, pkt.Dst, int64(queueDepth))
	}
}

func (c *Collector) PacketLost(t sim.Time, src, dst int, kind cm5.FaultKind) {
	if c.cLost != nil {
		c.cLost.Inc(src)
	}
	if c.tb != nil {
		c.tb.instant("lost: "+kind.String(), "fault", t, src, tidNet,
			fmt.Sprintf(`{"dst":%d}`, dst))
	}
}

func (c *Collector) Backpressure(t sim.Time, src, dst int) {
	if c.cBackpress != nil {
		c.cBackpress.Inc(src)
	}
	if c.tb != nil {
		c.tb.instant("backpressure", "fault", t, src, tidNet,
			fmt.Sprintf(`{"dst":%d}`, dst))
	}
}

// --- threads.Probe ---

func (c *Collector) ThreadCreated(t sim.Time, node int, th *threads.Thread) {
	if c.cThCreated != nil {
		c.cThCreated.Inc(node)
	}
	if c.tb != nil {
		c.nextID++
		c.threadID[th] = c.nextID
		c.tb.asyncBegin(th.Name(), "thread", t, node, tidThreads, c.nextID, "")
	}
}

func (c *Collector) ThreadStarted(t sim.Time, node int, th *threads.Thread, liveStack bool) {
	if c.cThStarted != nil {
		c.cThStarted.Inc(node)
		if liveStack {
			c.cThLive.Inc(node)
		}
	}
}

func (c *Collector) ThreadExited(t sim.Time, node int, th *threads.Thread) {
	if c.cThExited != nil {
		c.cThExited.Inc(node)
	}
	if c.tb != nil {
		if id, ok := c.threadID[th]; ok {
			c.tb.asyncEnd(th.Name(), "thread", t, node, tidThreads, id)
			delete(c.threadID, th)
		}
	}
}

func (c *Collector) ReadyDepth(t sim.Time, node, depth int) {
	if c.gReadyDepth != nil {
		c.gReadyDepth.Set(node, int64(depth))
	}
	if c.tb != nil {
		c.tb.counter("ready_depth", t, node, int64(depth))
	}
}

func (c *Collector) ProcBound(node int, p *sim.Proc) {
	c.procNode[p.ID()] = node
}

// --- am.Probe ---

func (c *Collector) HandlerStart(t sim.Time, node int, h am.HandlerID, depth int) {
	c.handlerStart[node] = append(c.handlerStart[node], t)
}

func (c *Collector) HandlerEnd(t sim.Time, node int, h am.HandlerID, depth int) {
	st := c.handlerStart[node]
	start := st[len(st)-1]
	c.handlerStart[node] = st[:len(st)-1]
	if c.cHandlers != nil {
		c.cHandlers.Inc(node)
		c.hHandler.Observe(node, t.Sub(start))
	}
	if c.tb != nil {
		c.tb.span(c.u.HandlerName(h), "handler", start, t.Sub(start), node, tidHandler,
			fmt.Sprintf(`{"depth":%d}`, depth))
	}
}

// --- oam.Probe ---

func (c *Collector) Attempt(t sim.Time, node int, name string, strategy oam.Strategy) {
	if c.cAttempts != nil {
		c.cAttempts.Inc(node)
	}
	c.oamStart[node] = append(c.oamStart[node], t)
}

func (c *Collector) Settled(t sim.Time, node int, name string, outcome oam.Outcome, reason oam.Reason, strategy oam.Strategy) {
	st := c.oamStart[node]
	start := st[len(st)-1]
	c.oamStart[node] = st[:len(st)-1]
	aborted := outcome != oam.Completed
	if c.cAttempts != nil {
		switch outcome {
		case oam.Completed:
			c.cCompleted.Inc(node)
		case oam.Promoted:
			c.cPromoted.Inc(node)
		case oam.NackNeeded:
			c.cNacked.Inc(node)
		}
		if aborted {
			c.cAbortReason[int(reason)].Inc(node)
		}
	}
	if c.tb != nil {
		var args string
		if aborted {
			args = fmt.Sprintf(`{"outcome":"%s","reason":"%s","strategy":"%s"}`,
				outcomeString(outcome), reason.String(), strategy.String())
		} else {
			args = fmt.Sprintf(`{"outcome":"completed","strategy":"%s"}`, strategy.String())
		}
		c.tb.span("oam "+name, "oam", start, t.Sub(start), node, tidOAM, args)
		if aborted {
			c.tb.instant("abort: "+reason.String(), "abort", t, node, tidOAM,
				fmt.Sprintf(`{"proc":"%s","strategy":"%s"}`, jsonString(name), strategy.String()))
		}
	}
}

// --- oam.MultiProbe (multiactive dispatch tracks) ---

func (c *Collector) CoreOccupancy(t sim.Time, node int, busy int) {
	if c.gCoresBusy != nil {
		c.gCoresBusy.Set(node, int64(busy))
	}
	if c.tb != nil {
		c.tb.counter("cores_busy", t, node, int64(busy))
	}
}

func (c *Collector) CompatQueueDepth(t sim.Time, node int, depth int) {
	if c.gCompatQueue != nil {
		c.gCompatQueue.Set(node, int64(depth))
	}
	if c.tb != nil {
		c.tb.counter("compat_queue", t, node, int64(depth))
	}
}

// outcomeString names an oam outcome for trace args.
func outcomeString(o oam.Outcome) string {
	switch o {
	case oam.Completed:
		return "completed"
	case oam.Promoted:
		return "promoted"
	case oam.NackNeeded:
		return "nacked"
	default:
		return "unknown"
	}
}

// --- rpc.Probe ---

func (c *Collector) CallStart(t sim.Time, node int, proc string) {
	k := callKey{node, proc}
	c.callStart[k] = append(c.callStart[k], t)
}

func (c *Collector) CallEnd(t sim.Time, node int, proc string, timedOut bool, retries uint64) {
	k := callKey{node, proc}
	st := c.callStart[k]
	start := st[len(st)-1]
	c.callStart[k] = st[:len(st)-1]
	if c.cCalls != nil {
		c.cCalls.Inc(node)
		c.cRetries.Add(node, retries)
		if timedOut {
			c.cTimeouts.Inc(node)
		}
		c.hCall.Observe(node, t.Sub(start))
	}
	if c.tb != nil {
		c.tb.span("call "+proc, "rpc", start, t.Sub(start), node, tidRPC,
			fmt.Sprintf(`{"timed_out":%t,"retries":%d}`, timedOut, retries))
	}
}

func (c *Collector) StaleReply(t sim.Time, node int) {
	if c.cStale != nil {
		c.cStale.Inc(node)
	}
	if c.tb != nil {
		c.tb.instant("stale reply", "rpc", t, node, tidRPC, "")
	}
}
