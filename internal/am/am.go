package am

import (
	"fmt"

	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// HandlerID names a registered handler. IDs are machine-wide: like an SPMD
// program image, every node shares one handler table.
type HandlerID int

// Handler is an Active Message handler. It runs inline on the polling
// context c (c.T == nil): it must not block, and should be short. pkt is
// the delivered packet; Payload is the sender's marshaled data.
type Handler func(c threads.Ctx, pkt *cm5.Packet)

// Stats counts per-universe Active Message activity.
type Stats struct {
	HandlersRun uint64
	Sends       uint64
	BulkSends   uint64
	DrainSpins  uint64       // retries while the destination buffer was full
	MaxDepth    int          // deepest nested handler execution seen
	HandlerTime sim.Duration // total virtual CPU time spent inside handlers
}

// Transport intercepts outgoing Active Messages. When one is installed on
// a Universe every Endpoint send routes through it instead of injecting
// directly; the transport eventually moves bytes with SendRaw/TrySendRaw
// and hands received messages back with Endpoint.Deliver. This is the seam
// the reliable-delivery layer plugs into; a nil transport (the default)
// keeps the original direct path with zero overhead.
type Transport interface {
	// Send must eventually inject the message (it may drain, buffer, and
	// retransmit along the way).
	Send(c threads.Ctx, ep *Endpoint, dst int, h HandlerID, w [4]uint64, payload []byte, bulk bool)
	// TrySend attempts a non-blocking send and reports whether the message
	// was accepted for (eventual) delivery.
	TrySend(c threads.Ctx, ep *Endpoint, dst int, h HandlerID, w [4]uint64, payload []byte, bulk bool) bool
}

// Universe bundles a machine, one thread scheduler per node, and the
// shared handler table. It is the program image of an SPMD run.
type Universe struct {
	m         *cm5.Machine
	scheds    []*threads.Scheduler
	eps       []*Endpoint
	handlers  []Handler
	names     []string
	transport Transport
	probe     Probe
}

// Probe observes handler dispatch. Probes are pure observers — they must
// not schedule events or charge virtual time; the hooks are skipped when
// no probe is installed, keeping the disabled path allocation-free.
type Probe interface {
	// HandlerStart fires after the dispatch overhead is charged, just
	// before the handler body runs; depth is the nesting level (1 = not
	// nested inside another handler).
	HandlerStart(t sim.Time, node int, h HandlerID, depth int)
	// HandlerEnd fires when the handler body returns.
	HandlerEnd(t sim.Time, node int, h HandlerID, depth int)
}

// SetProbe installs a dispatch probe; pass nil to disable.
func (u *Universe) SetProbe(p Probe) { u.probe = p }

// NewUniverse builds an n-node machine whose schedulers and Active
// Message endpoints materialize on first touch: Endpoint(i)/Scheduler(i)
// build node i's pair (and its idle process) the first time anything
// addresses it. An SPMD run still instantiates everything — Bootstrap
// touches every node — but a big-N universe where only k nodes run code
// pays endpoint, scheduler, and idle-process cost for k nodes, not n.
func NewUniverse(eng *sim.Engine, n int, cost cm5.CostModel) *Universe {
	u := &Universe{m: cm5.NewMachine(eng, n, cost)}
	u.scheds = make([]*threads.Scheduler, n)
	u.eps = make([]*Endpoint, n)
	return u
}

// materializeNode builds node i's scheduler/endpoint pair. Like
// cm5.Machine.Node, call only from the owning shard's simulation context
// or with the shards quiescent (setup, barriers).
func (u *Universe) materializeNode(i int) {
	s := threads.NewScheduler(u.m.Node(i))
	u.scheds[i] = s
	ep := &Endpoint{u: u, node: u.m.Node(i), sched: s}
	u.eps[i] = ep
	s.SetPoller(ep)
}

// Machine returns the underlying machine.
func (u *Universe) Machine() *cm5.Machine { return u.m }

// N returns the node count.
func (u *Universe) N() int { return u.m.N() }

// Scheduler returns node i's thread scheduler, materializing it on
// first touch.
func (u *Universe) Scheduler(i int) *threads.Scheduler {
	if u.scheds[i] == nil {
		u.materializeNode(i)
	}
	return u.scheds[i]
}

// Endpoint returns node i's Active Message endpoint, materializing it on
// first touch.
func (u *Universe) Endpoint(i int) *Endpoint {
	if u.eps[i] == nil {
		u.materializeNode(i)
	}
	return u.eps[i]
}

// Stats returns a snapshot of the universe's AM counters, summed across
// materialized endpoints (MaxDepth is max-merged).
func (u *Universe) Stats() Stats {
	var out Stats
	for _, ep := range u.eps {
		if ep == nil {
			continue
		}
		s := &ep.stats
		out.HandlersRun += s.HandlersRun
		out.Sends += s.Sends
		out.BulkSends += s.BulkSends
		out.DrainSpins += s.DrainSpins
		out.HandlerTime += s.HandlerTime
		if s.MaxDepth > out.MaxDepth {
			out.MaxDepth = s.MaxDepth
		}
	}
	return out
}

// SetTransport installs (or, with nil, removes) a send-path interceptor.
// Like Register, call it before the simulation starts.
func (u *Universe) SetTransport(t Transport) { u.transport = t }

// Register adds a handler to the shared table and returns its ID. All
// registration must happen before the simulation starts, as it would on a
// real SPMD machine where the handler table is the program text.
func (u *Universe) Register(name string, h Handler) HandlerID {
	u.handlers = append(u.handlers, h)
	u.names = append(u.names, name)
	return HandlerID(len(u.handlers) - 1)
}

// HandlerName returns the registration name of id, for diagnostics.
func (u *Universe) HandlerName(id HandlerID) string { return u.names[id] }

// Endpoint is a node's Active Message interface. Its counters are only
// ever touched from code running on its node, so they stay shard-local
// under a sharded engine.
type Endpoint struct {
	u     *Universe
	node  *cm5.Node
	sched *threads.Scheduler
	depth int // nested handler executions on this node
	stats Stats
}

// Node returns the endpoint's node.
func (ep *Endpoint) Node() *cm5.Node { return ep.node }

// packet assembles an outgoing packet from the machine's pool. Ownership
// passes to the network on successful injection; the receiving endpoint
// recycles the struct after the handler runs (see Packet's ownership
// rules — the payload buffer itself is handed off, never reused).
func (ep *Endpoint) packet(dst int, h HandlerID, kind cm5.PacketKind, w [4]uint64, payload []byte) *cm5.Packet {
	if int(h) < 0 || int(h) >= len(ep.u.handlers) {
		panic(fmt.Sprintf("am: send to unregistered handler %d", h))
	}
	pkt := ep.node.AllocPacket()
	pkt.Src = ep.node.ID()
	pkt.Dst = dst
	pkt.Kind = kind
	pkt.Handler = int(h)
	pkt.W0, pkt.W1, pkt.W2, pkt.W3 = w[0], w[1], w[2], w[3]
	pkt.Payload = payload
	return pkt
}

// TrySend attempts a non-blocking send of a small Active Message and
// reports whether it was injected. Failure means the destination's input
// buffer is full — the "network busy" condition that makes an optimistic
// execution abort.
func (ep *Endpoint) TrySend(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) bool {
	if t := ep.u.transport; t != nil {
		return t.TrySend(c, ep, dst, h, w, payload, false)
	}
	return ep.TrySendRaw(c, dst, h, w, payload, false)
}

// Send transmits a small Active Message, draining incoming messages while
// the destination's buffer is full (the CMMD deadlock-avoidance protocol:
// the send routine polls the network before sending).
func (ep *Endpoint) Send(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) {
	if t := ep.u.transport; t != nil {
		t.Send(c, ep, dst, h, w, payload, false)
		return
	}
	ep.SendRaw(c, dst, h, w, payload, false)
}

// SendBulk transmits a block transfer (the scopy path), draining while the
// destination's buffer is full. The sending CPU is busy for the setup and
// streaming time.
func (ep *Endpoint) SendBulk(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) {
	if t := ep.u.transport; t != nil {
		t.Send(c, ep, dst, h, w, payload, true)
		return
	}
	ep.SendRaw(c, dst, h, w, payload, true)
}

// TrySendBulk is the non-blocking bulk variant.
func (ep *Endpoint) TrySendBulk(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte) bool {
	if t := ep.u.transport; t != nil {
		return t.TrySend(c, ep, dst, h, w, payload, true)
	}
	return ep.TrySendRaw(c, dst, h, w, payload, true)
}

// SendRaw transmits directly on the wire, bypassing any installed
// transport: the draining-send path of the original Endpoint.Send /
// SendBulk. Transports call this to move their framed messages (and
// retransmissions) without recursing into themselves.
func (ep *Endpoint) SendRaw(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte, bulk bool) {
	kind := cm5.Small
	if bulk {
		kind = cm5.Bulk
	}
	ep.sendDraining(c, ep.packet(dst, h, kind, w, payload))
	if bulk {
		ep.stats.BulkSends++
	} else {
		ep.stats.Sends++
	}
}

// TrySendRaw is the non-blocking direct-wire send.
func (ep *Endpoint) TrySendRaw(c threads.Ctx, dst int, h HandlerID, w [4]uint64, payload []byte, bulk bool) bool {
	kind := cm5.Small
	if bulk {
		kind = cm5.Bulk
	}
	pkt := ep.packet(dst, h, kind, w, payload)
	if ep.node.TryInject(c.P, pkt) {
		if bulk {
			ep.stats.BulkSends++
		} else {
			ep.stats.Sends++
		}
		return true
	}
	ep.node.ReleasePacket(pkt) // never entered the network
	return false
}

func (ep *Endpoint) sendDraining(c threads.Ctx, pkt *cm5.Packet) {
	for !ep.node.TryInject(c.P, pkt) {
		ep.stats.DrainSpins++
		// Drain our own input while waiting for room: handle one packet
		// if present, otherwise burn a poll and retry. Time advances, the
		// destination eventually polls, and space appears.
		ep.pollOnce(c)
	}
}

// Poll services at most one incoming message, running its handler inline
// on this context, and reports whether one was handled. Applications and
// the thread scheduler's idle loop call this; so does Send while draining.
func (ep *Endpoint) Poll(c threads.Ctx) bool { return ep.pollOnce(c) }

// PollAll services incoming messages until the input queue is empty,
// returning the number handled.
func (ep *Endpoint) PollAll(c threads.Ctx) int {
	n := 0
	for ep.node.Pending() > 0 {
		if ep.pollOnce(c) {
			n++
		}
	}
	return n
}

// PollOnce implements threads.Poller for the scheduler idle loop.
func (ep *Endpoint) PollOnce(c threads.Ctx) bool { return ep.pollOnce(c) }

func (ep *Endpoint) pollOnce(c threads.Ctx) bool {
	pkt := ep.node.PollPacket(c.P)
	if pkt == nil {
		return false
	}
	ep.dispatch(c, pkt)
	// The wire-path packet is done once its handler returns: recycle the
	// struct (the payload buffer is handed off, not reused). Packets a
	// transport hands up via Deliver are the transport's to manage.
	ep.node.ReleasePacket(pkt)
	return true
}

// Deliver runs pkt's handler inline on this endpoint, exactly as if the
// packet had just been polled off the wire. Transports use it to hand a
// de-framed inner message up to the application layer.
func (ep *Endpoint) Deliver(c threads.Ctx, pkt *cm5.Packet) { ep.dispatch(c, pkt) }

// dispatch runs pkt's handler inline. The handler context is derived from
// the polling context but has no thread: handlers are not schedulable.
func (ep *Endpoint) dispatch(c threads.Ctx, pkt *cm5.Packet) {
	h := ep.u.handlers[pkt.Handler]
	hc := threads.Ctx{P: c.P, T: nil, S: ep.sched}
	ep.depth++
	if ep.depth > ep.stats.MaxDepth {
		ep.stats.MaxDepth = ep.depth
	}
	c.P.Charge(ep.u.m.Cost().HandlerDispatch)
	ep.stats.HandlersRun++
	start := c.P.Now()
	if ep.u.probe != nil {
		ep.u.probe.HandlerStart(start, ep.node.ID(), HandlerID(pkt.Handler), ep.depth)
	}
	h(hc, pkt)
	// Nested dispatches (drains inside sends) double-count into their
	// enclosing handler's window; MaxDepth reports when that happens.
	ep.stats.HandlerTime += c.P.Now().Sub(start)
	if ep.u.probe != nil {
		ep.u.probe.HandlerEnd(c.P.Now(), ep.node.ID(), HandlerID(pkt.Handler), ep.depth)
	}
	ep.depth--
}
