package exp

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/obs"
)

// traceGoldenTSP pins the FNV-1a hash of the quick TSP trace (4 nodes,
// ORPC, seed 102): the trace is a byte-exact transcript of the schedule,
// so any change to event order or timing anywhere in the stack shows up
// here. Re-record deliberately when the kernel or cost model changes.
const traceGoldenTSP uint64 = 0x5e6f7a6957a7db81

// observedTSP runs the quick 4-node TSP under ORPC with every sink on.
func observedTSP(t *testing.T) (*obs.Collector, apps.Result) {
	t.Helper()
	c, res, err := RunObserved(
		ObserveSpec{App: "tsp", Sys: apps.ORPC, Nodes: 4, Quick: true},
		obs.Options{Trace: true, Metrics: true, Profile: true})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	return c, res
}

// TestTraceGoldenTSP: the trace JSON is structurally valid, shows every
// kind of event the acceptance criteria name, and is byte-identical run
// to run (pinned by hash).
func TestTraceGoldenTSP(t *testing.T) {
	c1, res := observedTSP(t)
	var b1 bytes.Buffer
	if err := c1.WriteTrace(&b1); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	cats := map[string]bool{}
	aborts := 0
	flights := 0
	for _, ev := range doc.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
		if cat, ok := ev["cat"].(string); ok {
			cats[cat] = true
		}
		if ph := ev["ph"]; ph == "i" && strings.HasPrefix(ev["name"].(string), "abort: ") {
			aborts++
		} else if ph == "b" && ev["cat"] == "flight" {
			flights++
		}
	}
	if res.Nodes != 4 || len(pids) != 4 {
		t.Errorf("want one track per node (4), got pids %v", pids)
	}
	for _, want := range []string{"cpu", "handler", "oam", "rpc", "flight", "thread"} {
		if !cats[want] {
			t.Errorf("trace has no %q events", want)
		}
	}
	if aborts == 0 {
		t.Error("trace shows no OAM aborts with reason tags")
	}
	if flights == 0 {
		t.Error("trace shows no packet flights")
	}

	// Determinism: an identical second run renders byte-identical output,
	// and the bytes match the recorded golden hash.
	c2, _ := observedTSP(t)
	var b2 bytes.Buffer
	if err := c2.WriteTrace(&b2); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed produced different trace bytes")
	}
	h := fnv.New64a()
	h.Write(b1.Bytes())
	if got := h.Sum64(); got != traceGoldenTSP {
		t.Errorf("trace hash %#x, want golden %#x (re-record if the kernel changed deliberately)", got, traceGoldenTSP)
	}
}

// TestObservedSchedTrace: the control-plane probe feeds the collector —
// the trace grows a lazily-named "sched" track carrying lease spans and
// heartbeat instants, and the metrics registry counts placements and
// accepted completions. TestTraceGoldenTSP above doubles as the proof
// that the lazy track metadata changes nothing for apps without a
// scheduler.
func TestObservedSchedTrace(t *testing.T) {
	c, res, err := RunObserved(
		ObserveSpec{App: "sched", Nodes: 4, Quick: true},
		obs.Options{Trace: true, Metrics: true})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	if res.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", res.Nodes)
	}
	var b bytes.Buffer
	if err := c.WriteTrace(&b); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	s := b.String()
	for _, want := range []string{
		`"name":"sched"`,       // the lazily-emitted track metadata
		`"cat":"lease"`,        // lease lifetime async spans
		`"name":"heartbeat"`,   // accepted-heartbeat instants
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	reg := c.Registry()
	if got := reg.CounterTotal("sched/leases_placed"); got != 8 {
		t.Errorf("sched/leases_placed = %d, want 8 (one per quick job on a clean network)", got)
	}
	if got := reg.CounterTotal("sched/completions_accepted"); got != 8 {
		t.Errorf("sched/completions_accepted = %d, want 8", got)
	}
	if reg.CounterTotal("sched/heartbeats") == 0 {
		t.Error("no heartbeats counted")
	}
	if got := reg.CounterTotal("sched/agent_dead"); got != 0 {
		t.Errorf("sched/agent_dead = %d on a clean network", got)
	}
}

// TestProfileMatchesCharged: the virtual-time profiler attributes every
// charged microsecond — its total equals the engine's own counter
// exactly, and the rendered table is deterministic.
func TestProfileMatchesCharged(t *testing.T) {
	c1, _ := observedTSP(t)
	if got, want := c1.Profile().Total(), c1.EngineCharged(); got != want {
		t.Errorf("profile total %v != engine charged %v", got, want)
	}
	if c1.Profile().Total() == 0 {
		t.Error("profile attributed no time")
	}

	var p1, p2, m1, m2 bytes.Buffer
	if err := c1.WriteProfile(&p1, 0); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	if err := c1.WriteMetrics(&m1); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	c2, _ := observedTSP(t)
	if err := c2.WriteProfile(&p2, 0); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	if err := c2.WriteMetrics(&m2); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if p1.String() != p2.String() {
		t.Error("profile output not deterministic")
	}
	if m1.String() != m2.String() {
		t.Error("metrics output not deterministic")
	}
}

// TestObservedAllApps: every registered app runs observed and the
// collected metrics agree with the run's own result counters.
func TestObservedAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every app")
	}
	for _, app := range ObservedApps() {
		c, res, err := RunObserved(
			ObserveSpec{App: app, Sys: apps.ORPC, Nodes: 4, Quick: true},
			obs.Options{Metrics: true})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.Elapsed == 0 {
			t.Errorf("%s: no elapsed time", app)
		}
		reg := c.Registry()
		if reg == nil || reg.Nodes() != res.Nodes {
			t.Fatalf("%s: registry nodes != %d", app, res.Nodes)
		}
		var buf bytes.Buffer
		if err := reg.Write(&buf); err != nil {
			t.Fatalf("%s: Write: %v", app, err)
		}
		if !strings.Contains(buf.String(), "am/handlers_run") {
			t.Errorf("%s: metrics missing handler counter:\n%s", app, buf.String())
		}
	}
}

// TestRunObservedErrors: unknown apps and impossible sizes are rejected.
func TestRunObservedErrors(t *testing.T) {
	if _, _, err := RunObserved(ObserveSpec{App: "nosuch"}, obs.Options{}); err == nil {
		t.Error("unknown app did not error")
	}
	if _, _, err := RunObserved(ObserveSpec{App: "tsp", Nodes: 1}, obs.Options{}); err == nil {
		t.Error("1-node tsp did not error")
	}
}

// TestObservedKVMultiactive: with Cores > 1 the observed kv run populates
// the multiactive probe tracks — the cores-busy and compat-queue gauges in
// the metrics registry and their counter tracks in the trace.
func TestObservedKVMultiactive(t *testing.T) {
	old := Cores
	Cores = 2
	defer func() { Cores = old }()
	c, res, err := RunObserved(
		ObserveSpec{App: "kv", Sys: apps.ORPC, Nodes: 8, Quick: true},
		obs.Options{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed == 0 {
		t.Fatal("no elapsed time")
	}
	var reg bytes.Buffer
	if err := c.Registry().Write(&reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"oam/cores_busy", "oam/compat_queue"} {
		if !strings.Contains(reg.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, reg.String())
		}
	}
	var tr bytes.Buffer
	if err := c.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), `"cores_busy"`) {
		t.Error("trace missing the cores_busy counter track")
	}
	if !json.Valid(tr.Bytes()) {
		t.Error("trace is not valid JSON")
	}
}
