// Package tsp implements the Traveling Salesman experiment of section
// 4.2.2: a master/slave branch-and-bound search. The master generates
// partial routes into a job queue; slaves fetch jobs with a synchronous
// RPC that blocks when the queue is locked or empty — the procedure whose
// optimistic success rate Table 2 reports — and expand them with the
// closest-city-next heuristic, pruning against a globally shared best
// tour length.
package tsp

import (
	"math"
	"math/rand"
	"sort"
)

// Problem is a TSP instance: a symmetric integer distance matrix plus
// per-city neighbor orderings for the closest-city-next heuristic.
type Problem struct {
	N    int
	Dist [][]int64
	// NearOrder[i] lists the other cities in increasing distance from i,
	// ties broken by index (determinism).
	NearOrder [][]uint8
}

// NewProblem generates an instance with n cities placed uniformly at
// random (seeded) on a 1000x1000 grid, with rounded Euclidean distances.
// The paper's experiment uses 12 cities.
func NewProblem(n int, seed int64) *Problem {
	if n < 3 || n > 16 {
		panic("tsp: city count out of supported range [3,16]")
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	p := &Problem{N: n}
	p.Dist = make([][]int64, n)
	for i := range p.Dist {
		p.Dist[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			p.Dist[i][j] = int64(math.Round(math.Sqrt(dx*dx + dy*dy)))
		}
	}
	p.NearOrder = make([][]uint8, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				p.NearOrder[i] = append(p.NearOrder[i], uint8(j))
			}
		}
		order := p.NearOrder[i]
		sort.SliceStable(order, func(a, b int) bool {
			da, db := p.Dist[i][order[a]], p.Dist[i][order[b]]
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
	}
	return p
}

// JobDepth is the partial-route length the master generates. With 12
// cities and depth 5 (start city plus four more), the master creates
// 11*10*9*8 = 7920 jobs, matching the paper.
const JobDepth = 5

// Jobs enumerates the partial routes in deterministic (lexicographic)
// order. Each job is a route of JobDepth cities starting at city 0.
func (p *Problem) Jobs() [][]uint8 {
	var jobs [][]uint8
	route := make([]uint8, 1, JobDepth)
	route[0] = 0
	used := make([]bool, p.N)
	used[0] = true
	var rec func()
	rec = func() {
		if len(route) == JobDepth {
			jobs = append(jobs, append([]uint8(nil), route...))
			return
		}
		for c := 1; c < p.N; c++ {
			if !used[c] {
				used[c] = true
				route = append(route, uint8(c))
				rec()
				route = route[:len(route)-1]
				used[c] = false
			}
		}
	}
	rec()
	return jobs
}

// RouteLen sums the edge lengths along a (partial) route.
func (p *Problem) RouteLen(route []uint8) int64 {
	var sum int64
	for i := 1; i < len(route); i++ {
		sum += p.Dist[route[i-1]][route[i]]
	}
	return sum
}

// Expand runs the branch-and-bound DFS from a partial route, visiting
// cities in closest-city-next order and pruning paths that already reach
// best. It returns the best complete tour length found (or the incoming
// best) and the number of tree nodes visited. onVisit, if non-nil, is
// called for every block of visited nodes — the hook the parallel slaves
// use to charge compute time and poll the network.
func (p *Problem) Expand(route []uint8, best int64, onVisit func(n int) int64) (int64, uint64) {
	var visits uint64
	used := make([]bool, p.N)
	for _, c := range route {
		used[c] = true
	}
	path := append([]uint8(nil), route...)
	length := p.RouteLen(route)
	var pending int
	var rec func(length int64)
	rec = func(length int64) {
		visits++
		pending++
		if onVisit != nil && pending >= 64 {
			if nb := onVisit(pending); nb < best {
				best = nb
			}
			pending = 0
		}
		if length >= best {
			return
		}
		if len(path) == p.N {
			total := length + p.Dist[path[p.N-1]][0]
			if total < best {
				best = total
			}
			return
		}
		last := path[len(path)-1]
		for _, c := range p.NearOrder[last] {
			if used[c] {
				continue
			}
			used[c] = true
			path = append(path, c)
			rec(length + p.Dist[last][c])
			path = path[:len(path)-1]
			used[c] = false
		}
	}
	rec(length)
	if onVisit != nil && pending > 0 {
		if nb := onVisit(pending); nb < best {
			best = nb
		}
	}
	return best, visits
}

// SeqCounts reports a sequential solve.
type SeqCounts struct {
	Jobs   uint64
	Visits uint64
	Best   int64
}

// SolveSeq runs the whole search sequentially: generate every job, then
// expand each in order, sharing one best bound. The parallel versions
// must find the same Best (branch and bound is insensitive to search
// order for the final optimum).
func (p *Problem) SolveSeq() SeqCounts {
	jobs := p.Jobs()
	best := int64(math.MaxInt64)
	var visits uint64
	for _, j := range jobs {
		var v uint64
		best, v = p.Expand(j, best, nil)
		visits += v
	}
	return SeqCounts{Jobs: uint64(len(jobs)), Visits: visits, Best: best}
}
