package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Registry is the typed instrumentation bus: a set of named counters,
// gauges and fixed-bucket virtual-time histograms, each holding one value
// (or bucket vector) per node. Instruments are registered once, up front;
// updating one is an array store with no locking (the simulation is
// single-threaded) and, after the first update, no allocation, so
// instruments may be updated from hot paths.
//
// Instrument storage is lazy: registration records only the name, and
// the per-node arrays allocate on first update (histograms allocate
// per-node bucket vectors on each node's first sample). A registry over
// a 100k-node machine whose run never updates an instrument therefore
// costs nothing per node — the O(active) rule the machine model follows.
type Registry struct {
	nodes    int
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// NewRegistry creates a registry for an n-node machine.
func NewRegistry(nodes int) *Registry { return &Registry{nodes: nodes} }

// Nodes returns the node count the registry was built for.
func (r *Registry) Nodes() int { return r.nodes }

// Counter is a per-node monotonic event count.
type Counter struct {
	name  string
	nodes int
	vals  []uint64 // allocated on first update
}

// NewCounter registers a counter. Call before the simulation starts.
func (r *Registry) NewCounter(name string) *Counter {
	c := &Counter{name: name, nodes: r.nodes}
	r.counters = append(r.counters, c)
	return c
}

func (c *Counter) touch() []uint64 {
	if c.vals == nil {
		c.vals = make([]uint64, c.nodes)
	}
	return c.vals
}

// Inc adds one to node's count.
func (c *Counter) Inc(node int) { c.touch()[node]++ }

// Add adds delta to node's count.
func (c *Counter) Add(node int, delta uint64) { c.touch()[node] += delta }

// Value returns node's count.
func (c *Counter) Value(node int) uint64 {
	if c.vals == nil {
		return 0
	}
	return c.vals[node]
}

// Total sums the counter across nodes.
func (c *Counter) Total() uint64 {
	var t uint64
	for _, v := range c.vals {
		t += v
	}
	return t
}

// CounterTotal returns the all-node total of the named counter, or 0
// when no such counter is registered.
func (r *Registry) CounterTotal(name string) uint64 {
	for _, c := range r.counters {
		if c.name == name {
			return c.Total()
		}
	}
	return 0
}

// Gauge is a per-node instantaneous value (queue depths, outstanding
// calls). It additionally tracks the high-water mark per node.
type Gauge struct {
	name  string
	nodes int
	vals  []int64 // allocated (with max) on first update
	max   []int64
}

// NewGauge registers a gauge. Call before the simulation starts.
func (r *Registry) NewGauge(name string) *Gauge {
	g := &Gauge{name: name, nodes: r.nodes}
	r.gauges = append(r.gauges, g)
	return g
}

// Set records node's current value.
func (g *Gauge) Set(node int, v int64) {
	if g.vals == nil {
		g.vals = make([]int64, g.nodes)
		g.max = make([]int64, g.nodes)
	}
	g.vals[node] = v
	if v > g.max[node] {
		g.max[node] = v
	}
}

// Value returns node's current value.
func (g *Gauge) Value(node int) int64 {
	if g.vals == nil {
		return 0
	}
	return g.vals[node]
}

// Max returns node's high-water mark.
func (g *Gauge) Max(node int) int64 {
	if g.max == nil {
		return 0
	}
	return g.max[node]
}

// Histogram is a per-node fixed-bucket histogram of virtual durations.
// Bounds are upper bucket edges; a final implicit +Inf bucket catches the
// rest. After a node's first sample, observing is two array stores — no
// allocation, usable on hot paths.
type Histogram struct {
	name   string
	nodes  int
	bounds []sim.Duration
	counts [][]uint64 // [node][bucket], len(bounds)+1 buckets; rows lazy
	sums   []sim.Duration
	ns     []uint64
}

// NewHistogram registers a histogram with the given ascending upper
// bucket bounds. Call before the simulation starts.
func (r *Registry) NewHistogram(name string, bounds ...sim.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{name: name, nodes: r.nodes, bounds: bounds}
	r.hists = append(r.hists, h)
	return h
}

// Observe records one duration sample on node.
func (h *Histogram) Observe(node int, d sim.Duration) {
	if h.counts == nil {
		h.counts = make([][]uint64, h.nodes)
		h.sums = make([]sim.Duration, h.nodes)
		h.ns = make([]uint64, h.nodes)
	}
	row := h.counts[node]
	if row == nil {
		row = make([]uint64, len(h.bounds)+1)
		h.counts[node] = row
	}
	b := 0
	for b < len(h.bounds) && d > h.bounds[b] {
		b++
	}
	row[b]++
	h.sums[node] += d
	h.ns[node]++
}

// Count returns the number of samples observed on node.
func (h *Histogram) Count(node int) uint64 {
	if h.ns == nil {
		return 0
	}
	return h.ns[node]
}

// Sum returns the total observed duration on node.
func (h *Histogram) Sum(node int) sim.Duration {
	if h.sums == nil {
		return 0
	}
	return h.sums[node]
}

// Write renders every instrument as aligned text, instruments sorted by
// name and one row per node, so output is deterministic. It returns the
// first write error.
func (r *Registry) Write(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	cs := append([]*Counter(nil), r.counters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	for _, c := range cs {
		pf("counter %-28s total %d\n", c.name, c.Total())
		for n, v := range c.vals {
			if v != 0 {
				pf("  node %-3d %d\n", n, v)
			}
		}
	}

	gs := append([]*Gauge(nil), r.gauges...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	for _, g := range gs {
		pf("gauge   %-28s\n", g.name)
		for n := range g.vals {
			if g.vals[n] != 0 || g.max[n] != 0 {
				pf("  node %-3d last %-6d max %d\n", n, g.vals[n], g.max[n])
			}
		}
	}

	hs := append([]*Histogram(nil), r.hists...)
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	for _, h := range hs {
		var total uint64
		var sum sim.Duration
		agg := make([]uint64, len(h.bounds)+1)
		for n := range h.counts {
			total += h.ns[n]
			sum += h.sums[n]
			for b, v := range h.counts[n] {
				agg[b] += v
			}
		}
		pf("hist    %-28s samples %-8d total %s\n", h.name, total, fmtDur(sum))
		for b, v := range agg {
			if v == 0 {
				continue
			}
			if b < len(h.bounds) {
				pf("  <= %-10s %d\n", fmtDur(h.bounds[b]), v)
			} else {
				pf("  >  %-10s %d\n", fmtDur(h.bounds[len(h.bounds)-1]), v)
			}
		}
	}
	return err
}

// fmtDur renders a virtual duration as integer microseconds with three
// decimals, using only integer arithmetic so the text is byte-identical
// across hosts.
func fmtDur(d sim.Duration) string {
	ns := int64(d)
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03dus", sign, ns/1000, ns%1000)
}
