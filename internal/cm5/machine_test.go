package cm5

import (
	"testing"

	"repro/internal/sim"
)

func testMachine(t *testing.T, n int) (*sim.Engine, *Machine) {
	t.Helper()
	eng := sim.New(42)
	m := NewMachine(eng, n, DefaultCostModel())
	t.Cleanup(eng.Shutdown)
	return eng, m
}

func TestInjectAndPoll(t *testing.T) {
	eng, m := testMachine(t, 2)
	cost := m.Cost()
	var recvAt sim.Time
	var got *Packet
	eng.Spawn("sender", func(p *sim.Proc) {
		pkt := &Packet{Src: 0, Dst: 1, Kind: Small, Handler: 3, W0: 7, Payload: []byte("hi")}
		if !m.Node(0).TryInject(p, pkt) {
			t.Error("inject refused on empty network")
		}
	})
	eng.Spawn("receiver", func(p *sim.Proc) {
		n := m.Node(1)
		for got == nil {
			if pkt := n.PollPacket(p); pkt != nil {
				got = pkt
				recvAt = p.Now()
				return
			}
			if p.Now() > sim.Time(sim.Micros(100)) {
				t.Error("no packet within 100us")
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not received")
	}
	if got.Handler != 3 || got.W0 != 7 || string(got.Payload) != "hi" {
		t.Fatalf("packet corrupted: %+v", got)
	}
	// Arrival: send overhead + wire latency; receive adds overhead plus
	// some number of empty polls before arrival.
	earliest := sim.Time(0).Add(cost.PacketSendOverhead + cost.WireLatency + cost.PacketRecvOverhead)
	if recvAt < earliest {
		t.Fatalf("received at %v, before earliest possible %v", recvAt, earliest)
	}
	st := m.Stats()
	if st.SmallSent != 1 || st.BytesSent != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectBackpressure(t *testing.T) {
	eng := sim.New(1)
	cost := DefaultCostModel()
	cost.NICQueueCap = 2
	m := NewMachine(eng, 2, cost)
	defer eng.Shutdown()
	rejected := 0
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			pkt := &Packet{Src: 0, Dst: 1, Kind: Small}
			if !m.Node(0).TryInject(p, pkt) {
				rejected++
				p.Charge(sim.Micros(1))
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3 (capacity 2)", rejected)
	}
	if m.Stats().FullRejects != 3 {
		t.Fatalf("FullRejects = %d, want 3", m.Stats().FullRejects)
	}
	// Draining the queue frees capacity again.
	eng2 := sim.New(1)
	m2 := NewMachine(eng2, 2, cost)
	defer eng2.Shutdown()
	sent := 0
	eng2.Spawn("sender", func(p *sim.Proc) {
		for sent < 5 {
			pkt := &Packet{Src: 0, Dst: 1, Kind: Small}
			if m2.Node(0).TryInject(p, pkt) {
				sent++
			} else {
				p.Charge(sim.Micros(5))
			}
		}
	})
	eng2.Spawn("drainer", func(p *sim.Proc) {
		drained := 0
		for drained < 5 {
			if pkt := m2.Node(1).PollPacket(p); pkt != nil {
				drained++
			}
			if p.Now() > sim.Time(sim.Micros(10000)) {
				t.Error("drain stalled")
				return
			}
		}
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if sent != 5 {
		t.Fatalf("sent = %d, want 5 after draining", sent)
	}
}

func TestFIFOPerPair(t *testing.T) {
	eng, m := testMachine(t, 2)
	const k = 50
	var order []uint64
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			pkt := &Packet{Src: 0, Dst: 1, Kind: Small, W0: uint64(i)}
			for !m.Node(0).TryInject(p, pkt) {
				p.Charge(sim.Micros(1))
			}
		}
	})
	eng.Spawn("receiver", func(p *sim.Proc) {
		for len(order) < k {
			if pkt := m.Node(1).PollPacket(p); pkt != nil {
				order = append(order, pkt.W0)
			}
			if p.Now() > sim.Time(sim.Micros(100000)) {
				t.Error("receive stalled")
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("out-of-order delivery at %d: got %d", i, v)
		}
	}
}

func TestBulkCostsMoreAndCarriesData(t *testing.T) {
	eng, m := testMachine(t, 2)
	cost := m.Cost()
	payload := make([]byte, 640)
	for i := range payload {
		payload[i] = byte(i)
	}
	var sendDone sim.Time
	eng.Spawn("sender", func(p *sim.Proc) {
		pkt := &Packet{Src: 0, Dst: 1, Kind: Bulk, Payload: payload}
		if !m.Node(0).TryInject(p, pkt) {
			t.Error("bulk inject refused")
		}
		sendDone = p.Now()
	})
	var got *Packet
	eng.Spawn("receiver", func(p *sim.Proc) {
		for got == nil && p.Now() < sim.Time(sim.Micros(10000)) {
			got = m.Node(1).PollPacket(p)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	wantBusy := cost.BulkSetup + 640*cost.BulkPerByte
	if sendDone != sim.Time(0).Add(wantBusy) {
		t.Fatalf("sender busy until %v, want %v", sendDone, sim.Time(0).Add(wantBusy))
	}
	if got == nil || len(got.Payload) != 640 || got.Payload[639] != byte(639%256) {
		t.Fatalf("bulk payload corrupted: %v", got)
	}
	if m.Stats().BulkSent != 1 {
		t.Fatalf("BulkSent = %d", m.Stats().BulkSent)
	}
}

func TestSmallPacketPayloadLimit(t *testing.T) {
	eng, m := testMachine(t, 2)
	eng.Spawn("sender", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for oversized small packet")
			}
		}()
		pkt := &Packet{Src: 0, Dst: 1, Kind: Small, Payload: make([]byte, 17)}
		m.Node(0).TryInject(p, pkt)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeCallbackOnDelivery(t *testing.T) {
	eng, m := testMachine(t, 2)
	var waiter *sim.Proc
	var wokeAt sim.Time
	waiter = eng.Spawn("idle", func(p *sim.Proc) {
		m.Node(1).SetWake(func() {
			if waiter.Parked() {
				waiter.Unpark()
			}
		})
		p.Park()
		wokeAt = p.Now()
		if m.Node(1).Pending() != 1 {
			t.Error("no pending packet after wake")
		}
	})
	eng.Spawn("sender", func(p *sim.Proc) {
		p.Charge(sim.Micros(3))
		m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	cost := m.Cost()
	want := sim.Time(0).Add(sim.Micros(3) + cost.PacketSendOverhead + cost.WireLatency)
	if wokeAt != want {
		t.Fatalf("woke at %v, want %v", wokeAt, want)
	}
}

func TestNetworkFullObservable(t *testing.T) {
	eng := sim.New(1)
	cost := DefaultCostModel()
	cost.NICQueueCap = 1
	m := NewMachine(eng, 2, cost)
	defer eng.Shutdown()
	eng.Spawn("sender", func(p *sim.Proc) {
		if m.Node(0).NetworkFull(1) {
			t.Error("network full before any send")
		}
		m.Node(0).TryInject(p, &Packet{Src: 0, Dst: 1, Kind: Small})
		if !m.Node(0).NetworkFull(1) {
			t.Error("network not full after filling capacity-1 queue")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
