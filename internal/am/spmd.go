package am

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/threads"
)

// SPMD bootstraps body as the main thread of every node, runs the
// simulation to quiescence, and returns the virtual time at which the
// last main thread finished — the parallel running time of the program.
//
// A main that never finishes (application deadlock) is reported as an
// error rather than hanging: the simulation quiesces and the check fails.
// Callers should still Shutdown the engine when done with the universe.
func (u *Universe) SPMD(body func(c threads.Ctx, node int)) (sim.Time, error) {
	n := u.N()
	done := make([]sim.Time, n)
	// One flag per node, counted after the run: mains on different engine
	// shards finish concurrently, so a shared counter would race.
	fin := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		u.Scheduler(i).Bootstrap(fmt.Sprintf("main/%d", i), func(c threads.Ctx) {
			body(c, i)
			done[i] = c.P.Now()
			fin[i] = true
		})
	}
	if err := u.m.Engine().Run(); err != nil {
		return 0, err
	}
	finished := 0
	for i := 0; i < n; i++ {
		if fin[i] {
			finished++
		}
	}
	if finished != n {
		var report []string
		for i := 0; i < n; i++ {
			if !fin[i] {
				report = append(report,
					fmt.Sprintf("node %d (blocked: %v, %d queued packets)",
						i, u.Scheduler(i).Blocked(), u.m.Node(i).Pending()))
			}
		}
		return 0, fmt.Errorf("am: SPMD quiesced with %d of %d mains unfinished: deadlock at %s",
			n-finished, n, strings.Join(report, "; "))
	}
	var max sim.Time
	for _, d := range done {
		if d > max {
			max = d
		}
	}
	return max, nil
}
