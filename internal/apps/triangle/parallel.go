package triangle

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	trigen "repro/internal/apps/triangle/gen"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/reliable"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Compute-cost calibration. The paper's sequential C program solves the
// size-6 puzzle in 13.7 s performing ~688 k extensions; with our counts
// (170,592 positions, 1,149,550 non-redundant extensions) these constants
// put the simulated sequential time in the same regime.
var (
	// CostExpand is charged per position expansion (move generation).
	CostExpand = sim.Micros(4)
	// CostMove is charged per generated extension (apply + canonicalize).
	CostMove = sim.Micros(6)
	// CostInsert is charged per transposition-table insert.
	CostInsert = sim.Micros(5)
)

// Config parameterizes a run.
type Config struct {
	Side  int   // board side; the paper's experiment uses 6
	Empty int   // initially empty cell; -1 selects the default center
	Seed  int64 // simulation seed
	// Shards selects the engine's shard count: 0 or 1 sequential,
	// negative auto (one per CPU), clamped to the node count. Results are
	// bit-identical at any value; only wall-clock time changes.
	Shards int
	// Optimistic selects the engine's speculative span scheduler instead
	// of lockstep windows when Shards resolves parallel (results stay
	// bit-identical; only wall-clock time changes).
	Optimistic bool
	// Strategy selects the OAM abort strategy for the ORPC variant
	// (default Rerun, the paper's prototype).
	Strategy oam.Strategy
	// Cores gives each simulated node this many cores (default 1).
	// Values > 1 route sync ORPC dispatches through the multiactive path
	// (oam.Options.Cores); Triangle declares no compatibility matrix, so
	// handlers still serialize and results are unchanged.
	Cores int
	// Fault, if non-nil, injects the given deterministic fault plan.
	// Loss or duplication requires Reliable, or the level quiesce
	// (sent == received reductions) never converges. Triangle has no
	// crash recovery: keep Crashes empty.
	Fault *cm5.FaultPlan
	// Reliable, if non-nil, attaches the reliable transport.
	Reliable *reliable.Options
	// Observe, if non-nil, is called once the universe (and, for the RPC
	// variants, the runtime — nil under AM) is built but before the SPMD
	// program starts, so an observer can attach its probes.
	Observe func(*am.Universe, *rpc.Runtime)
}

func (c *Config) board() *Board {
	if c.Empty < 0 {
		return NewBoard(c.Side)
	}
	return NewBoardAt(c.Side, c.Empty)
}

// BoardCounts solves the configured board sequentially and returns its
// work counters (used for calibration and speedup normalization).
func (c *Config) BoardCounts() SeqCounts { return c.board().SolveSeq() }

// SeqTime returns the simulated sequential running time implied by the
// cost constants for the given solve counters: the normalization baseline
// of Figure 1.
func SeqTime(c SeqCounts) sim.Duration {
	return sim.Duration(c.Positions)*CostExpand +
		sim.Duration(c.Extensions)*(CostMove+CostInsert)
}

// entry is one transposition-table slot.
type entry struct {
	s    State
	ways uint64
}

// nodeState is one node's share of the distributed search.
type nodeState struct {
	mu        *threads.Mutex
	index     map[State]int
	next      []entry // insertion-ordered: keeps runs deterministic
	frontier  []entry
	sent      uint64
	recv      uint64
	solutions uint64
}

// insert adds (s, ways) to the next-level table. Callers must hold the
// node's table lock (or be a hand-coded AM handler, which is atomic).
func (ns *nodeState) insert(s State, ways uint64) {
	if i, ok := ns.index[s]; ok {
		ns.next[i].ways += ways
		return
	}
	ns.index[s] = len(ns.next)
	ns.next = append(ns.next, entry{s: s, ways: ways})
}

// owner maps a canonical state to its transposition-table owner.
func owner(s State, n int) int {
	// Multiplicative hash: states are small dense bitmasks, so spread
	// them before reducing.
	h := uint64(s) * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(n))
}

// Run executes the Triangle puzzle on nodes processors with system sys
// and returns the run's result. The answer is the solution count, which
// must equal SolveSeq's for the same board.
func Run(sys apps.System, nodes int, cfg Config) (apps.Result, error) {
	b := cfg.board()
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(cfg.Fault)
	if cfg.Reliable != nil {
		reliable.Attach(u, *cfg.Reliable)
	}

	states := make([]*nodeState, nodes)
	for i := range states {
		states[i] = &nodeState{
			mu:    threads.NewMutex(u.Scheduler(i)),
			index: make(map[State]int),
		}
	}

	// sendInsert dispatches one extension to the owner of its state.
	var sendInsert func(c threads.Ctx, me, dst int, s State, ways uint64)
	var oams, successes func() uint64

	var rtForObs *rpc.Runtime
	switch sys {
	case apps.AM:
		// Hand-coded Active Messages: the state and ways travel in the
		// header words; the handler updates the table directly — safe
		// because handlers are atomic with respect to the computation
		// when it does not poll inside a critical region.
		var insertH am.HandlerID
		insertH = u.Register("tri/insert", func(c threads.Ctx, pkt *cm5.Packet) {
			ns := states[c.Node().ID()]
			c.P.Charge(CostInsert)
			ns.insert(State(pkt.W0), pkt.W1)
			ns.recv++
		})
		sendInsert = func(c threads.Ctx, me, dst int, s State, ways uint64) {
			u.Endpoint(me).Send(c, dst, insertH, [4]uint64{uint64(s), ways}, nil)
		}
		oams = func() uint64 { return 0 }
		successes = func() uint64 { return 0 }

	case apps.ORPC, apps.TRPC:
		mode := rpc.ORPC
		if sys == apps.TRPC {
			mode = rpc.TRPC
		}
		rt := rpc.New(u, rpc.Options{Mode: mode, OAM: oam.Options{Strategy: cfg.Strategy, Cores: cfg.Cores}})
		rtForObs = rt
		insert := trigen.DefineInsert(rt, func(e *oam.Env, caller int, state, ways uint64) {
			ns := states[e.Node()]
			e.Lock(ns.mu)
			e.Compute(CostInsert)
			ns.insert(State(state), ways)
			ns.recv++
			e.Unlock(ns.mu)
		})
		sendInsert = func(c threads.Ctx, me, dst int, s State, ways uint64) {
			insert.CallAsync(c, dst, uint64(s), ways)
		}
		oams = func() uint64 { return insert.Stats().OAMs }
		successes = func() uint64 { return insert.Stats().Successes }

	default:
		return apps.Result{}, fmt.Errorf("triangle: unknown system %v", sys)
	}

	// Seed the search at the owner of the canonical start position.
	start := b.Canon(b.Start())
	states[owner(start, nodes)].frontier = []entry{{s: start, ways: 1}}

	if cfg.Observe != nil {
		cfg.Observe(u, rtForObs)
	}
	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		ns := states[me]
		ep := u.Endpoint(me)
		sched := u.Scheduler(me)
		var exts []Ext
		for {
			// Expansion phase: extend every local frontier position.
			for _, ent := range ns.frontier {
				c.P.Charge(CostExpand)
				if ent.s.Pegs() == 1 {
					ns.solutions += ent.ways
					continue
				}
				exts = b.Extensions(ent.s, exts[:0])
				for _, x := range exts {
					c.P.Charge(CostMove)
					ns.sent++
					sendInsert(c, me, owner(x.S, nodes), x.S, ent.ways*x.Mult)
					// Fine-grained polling ("carefully tuned"): service
					// incoming inserts after every send so they do not
					// back up in the network interface.
					apps.Service(c, ep)
				}
			}
			// Quiesce: repeat global reductions until every extension
			// sent this level has been received and inserted.
			for {
				gs := sched.Reduce(c, float64(ns.sent), cm5.ReduceSum)
				gr := sched.Reduce(c, float64(ns.recv), cm5.ReduceSum)
				if gs == gr {
					break
				}
				apps.Service(c, ep)
			}
			// Level swap, and terminate when the global frontier is empty.
			ns.frontier = ns.next
			ns.next = nil
			ns.index = make(map[State]int)
			total := sched.Reduce(c, float64(len(ns.frontier)), cm5.ReduceSum)
			if total == 0 {
				break
			}
		}
	})
	if err != nil {
		return apps.Result{}, fmt.Errorf("triangle/%v: %w", sys, err)
	}

	var solutions uint64
	for _, ns := range states {
		solutions += ns.solutions
	}
	res := apps.Result{
		System:  sys,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  solutions,
	}
	apps.FillResult(&res, u, oams(), successes())
	return res, nil
}
