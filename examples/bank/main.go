// Bank: a bounded account demonstrating why Optimistic Active Messages
// matter. Withdrawals block until the balance covers them — code that is
// simply illegal in a plain Active Messages handler (handlers must never
// block). Under OAM the same procedure body runs optimistically in the
// handler when the money is there and is promoted to a thread when it
// must wait on the condition variable.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	c := core.NewCluster(core.Options{Nodes: 3, Seed: 7})

	const bankNode = 0
	balance := int64(0)
	mu := c.NewMutex(bankNode)
	cv := c.NewCond(mu)

	deposit := c.Define("deposit", func(e *core.Env, caller int, arg []byte) []byte {
		amount := core.Dec(arg).I64()
		e.Lock(mu)
		balance += amount
		e.Broadcast(cv)
		e.Unlock(mu)
		return nil
	})

	// withdraw blocks until the balance suffices: Env.Await aborts the
	// optimistic attempt when the predicate is false, and the promoted
	// thread waits on the condition variable like any blocking code.
	withdraw := c.Define("withdraw", func(e *core.Env, caller int, arg []byte) []byte {
		amount := core.Dec(arg).I64()
		e.Lock(mu)
		e.Await(cv, func() bool { return balance >= amount })
		balance -= amount
		left := balance
		e.Unlock(mu)
		out := core.Enc(8)
		out.I64(left)
		return out.Bytes()
	})

	_, err := c.Run(func(ctx core.Ctx, node int) {
		switch node {
		case 1: // the impatient withdrawer: asks before the money exists
			arg := core.Enc(8)
			arg.I64(300)
			rep := core.Dec(withdraw.Call(ctx, bankNode, arg.Bytes()))
			fmt.Printf("node 1: withdrew 300, balance now %d (at t=%v)\n",
				rep.I64(), ctx.P.Now())
		case 2: // the slow depositor
			for i := 0; i < 3; i++ {
				ctx.P.Charge(core.Micros(500))
				arg := core.Enc(8)
				arg.I64(150)
				deposit.Call(ctx, bankNode, arg.Bytes())
				fmt.Printf("node 2: deposited 150 (at t=%v)\n", ctx.P.Now())
			}
		}
	})
	if err != nil {
		panic(err)
	}
	st := c.OAMStats()
	fmt.Printf("OAMs: %d total, %d ran in the handler, %d promoted to threads\n",
		st.Total, st.Succeeded, st.Promoted)
	fmt.Println("the withdrawal blocked in a remote procedure — impossible with plain Active Messages")
}
