package oam

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestContinuationTransfersHeldLocks: a body that acquires lock A
// optimistically and then promotes while blocking on lock B must carry A
// into its thread identity (AdoptOwner) so that unlocking works.
func TestContinuationTransfersHeldLocks(t *testing.T) {
	var muA, muB *threads.Mutex
	completed := false
	r := newRig(t, Options{Strategy: Continuation}, func(e *Env, pkt *cm5.Packet) {
		e.Lock(muA)
		e.Lock(muB) // blocks: promotion happens holding A
		e.Compute(sim.Micros(1))
		completed = true
		e.Unlock(muB)
		e.Unlock(muA)
	})
	s := r.u.Scheduler(1)
	muA = threads.NewMutex(s)
	muB = threads.NewMutex(s)
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			return
		}
		muB.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		// A must still be held by the (promoted, suspended) execution.
		if !muA.Held() {
			t.Error("lock A released during continuation promotion")
		}
		muB.Unlock(c)
		for !completed {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("never completed")
	}
	if muA.Held() || muB.Held() {
		t.Fatal("locks leaked")
	}
}

// TestContinuationBufferedSendFlushOrder: messages buffered before a
// promotion must be delivered before messages sent after it.
func TestContinuationBufferedSendFlushOrder(t *testing.T) {
	var mu *threads.Mutex
	var order []uint64
	var sink am.HandlerID
	r := newRig(t, Options{Strategy: Continuation}, func(e *Env, pkt *cm5.Packet) {
		e.Send(0, sink, [4]uint64{1}, nil) // buffered (optimistic)
		e.Lock(mu)                         // promotes
		e.Unlock(mu)
		e.Send(0, sink, [4]uint64{2}, nil) // sent as thread
	})
	sink = r.u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) {
		order = append(order, pkt.W0)
	})
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		ep := r.u.Endpoint(node)
		if node == 0 {
			ep.Send(c, 1, r.call, [4]uint64{}, nil)
			for len(order) < 2 {
				ep.Poll(c)
			}
			return
		}
		mu.Lock(c)
		for r.d.Stats().Total == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
		for len(order) < 2 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", order)
	}
}

// TestNestedOAMDuringDrain: an optimistic body whose commit-time send
// must drain a full network dispatches nested handlers — which may
// themselves be OAM dispatches — without corrupting either execution.
func TestNestedOAMDuringDrain(t *testing.T) {
	eng := sim.New(77)
	cost := cm5.DefaultCostModel()
	cost.NICQueueCap = 2
	u := am.NewUniverse(eng, 3, cost)
	defer eng.Shutdown()
	d := NewDispatcher(Options{Strategy: Rerun})
	handled := 0
	var fwd am.HandlerID
	sink := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { handled++ })
	fwd = u.Register("fwd", func(c threads.Ctx, pkt *cm5.Packet) {
		me := c.Node().ID()
		d.Run(c, u.Endpoint(me), "fwd", func(e *Env) {
			e.Compute(sim.Micros(1))
			e.Send(2, sink, [4]uint64{}, nil)
		})
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		switch node {
		case 0:
			// Flood node 1 with forwarding work toward a slow node 2.
			for i := 0; i < 12; i++ {
				ep.Send(c, 1, fwd, [4]uint64{}, nil)
			}
		case 2:
			c.P.Charge(sim.Micros(400)) // slow to drain
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if handled != 12 {
		t.Fatalf("handled = %d, want 12", handled)
	}
	st := d.Stats()
	if st.Total != 12 || st.Succeeded != 12 {
		t.Fatalf("stats %+v", st)
	}
}

// TestUnlockNotHeldPanics: Env.Unlock of a lock the procedure does not
// hold is a stub bug and must fail loudly.
func TestUnlockNotHeldPanics(t *testing.T) {
	panicked := false
	var mu *threads.Mutex
	r := newRig(t, Options{Strategy: Rerun}, func(e *Env, pkt *cm5.Packet) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Unlock(mu)
	})
	mu = threads.NewMutex(r.u.Scheduler(1))
	_, err := r.u.SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			r.u.Endpoint(0).Send(c, 1, r.call, [4]uint64{}, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("expected panic")
	}
}

// TestHandlerBudgetBoundary: computing exactly the budget does not abort;
// one nanosecond more does.
func TestHandlerBudgetBoundary(t *testing.T) {
	for _, over := range []bool{false, true} {
		extra := sim.Duration(0)
		if over {
			extra = 1
		}
		r := newRig(t, Options{Strategy: Rerun, HandlerBudget: sim.Micros(10)},
			func(e *Env, pkt *cm5.Packet) {
				e.Compute(sim.Micros(10) + extra)
			})
		_, err := r.u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				r.u.Endpoint(0).Send(c, 1, r.call, [4]uint64{}, nil)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := r.d.Stats()
		if over && st.ByReason[TooLong] != 1 {
			t.Fatalf("over budget: stats %+v", st)
		}
		if !over && st.ByReason[TooLong] != 0 {
			t.Fatalf("at budget: stats %+v", st)
		}
	}
}

// TestThreadEnvServiceAndOps: NewThreadEnv behaves pessimistically for
// every operation.
func TestThreadEnvServiceAndOps(t *testing.T) {
	eng := sim.New(7)
	u := am.NewUniverse(eng, 2, cm5.DefaultCostModel())
	defer eng.Shutdown()
	d := NewDispatcher(Options{})
	mu := threads.NewMutex(u.Scheduler(0))
	cv := threads.NewCond(mu)
	done := false
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		e := NewThreadEnv(c, u.Endpoint(0), d)
		if e.Optimistic() {
			t.Error("thread env claims optimistic")
		}
		e.Lock(mu)
		go4 := false
		c.S.Create(c, "setter", false, func(cc threads.Ctx) {
			mu.Lock(cc)
			go4 = true
			cv.Signal(cc)
			mu.Unlock(cc)
		})
		e.Await(cv, func() bool { return go4 }) // really waits
		e.Unlock(mu)
		e.Compute(sim.Micros(5))
		e.Service()
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread env run incomplete")
	}
}
