package sim

// eventKind discriminates what a scheduled event does when it fires.
// Typed kinds exist so that the hot paths (process resumption, packet
// delivery) need no per-event closure allocation.
type eventKind uint8

const (
	// evFunc runs a one-shot closure (the general At/After path).
	evFunc eventKind = iota
	// evProc resumes a process (Charge, Spawn, Unpark, Interrupt).
	evProc
	// evIntProc is an interruptible-charge expiry: it clears the
	// process's interrupt timer and resumes it.
	evIntProc
	// evAction runs a pre-allocated Action (closure-free callbacks).
	evAction
)

// Event classes define the canonical same-timestamp order, which must be
// identical in the sequential and sharded kernels for runs to be
// bit-identical. At one instant: global control transitions first (crash
// points, collective releases — the sharded kernel fires these between
// windows), then packet arrivals in (source node, flight number) order
// (the sharded kernel merges cross-shard flights in exactly this order at
// window barriers), then everything else in scheduling order.
const (
	classGlobal   uint8 = 0
	classDelivery uint8 = 1
	classNormal   uint8 = 2
)

// event is a scheduled kernel action. Events fire in (at, class, key, seq)
// order: timestamp, canonical class, canonical class key, then scheduling
// order — which makes runs deterministic and shard-count-independent.
// Cancelled events are unlinked immediately when the cancelling Timer
// can reach the owning shard, and otherwise stay in the queue as
// tombstones dropped when they surface.
//
// Events are pooled: after firing (or surfacing cancelled) they return to
// the shard's free list and gen is bumped, which invalidates any Timer
// still holding the pointer.
// Field order is deliberate: the comparator fields (at, class, key, seq)
// and the list link share the first cache line, so calendar-queue walks
// and compares touch one line per event.
type event struct {
	at        Time
	next      *event // calendar-bucket link / free-list link
	key       uint64 // canonical order within a class (0 for classNormal)
	seq       uint64
	kind      eventKind
	class     uint8
	cancelled bool
	gen       uint64 // recycle generation; Timers capture it to stay valid
	fn        func()
	act       Action
	proc      *Proc
}

// eventLess is the canonical total order on events — (at, class, key,
// seq) — shared by the per-bucket heaps of the calendar queue (see
// calqueue.go) and the reference binary heap below. Any priority queue
// implementing exactly this order yields the same pop sequence, which is
// the invariant that lets the queue implementation change under the
// golden equivalence hashes.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.class != b.class {
		return a.class < b.class
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap ordered by eventLess. It is hand-rolled
// rather than using container/heap to avoid the interface indirection on
// the simulation hot path. Entries are pointers so that a scheduled
// event can be cancelled in place (interrupt support). The calendar
// queue uses one of these per bucket; it also survives standalone as the
// reference ordering for the queue-equivalence property tests.
type eventHeap struct {
	ev []*event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool { return eventLess(h.ev[i], h.ev[j]) }

func (h *eventHeap) push(e *event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev[last] = nil // release for GC
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}
