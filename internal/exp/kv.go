package exp

import (
	"fmt"
	"runtime"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/kv"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// kvLatBounds are the SLO buckets the sweep's latency probe uses —
// quantiles resolve to bucket upper bounds, so these are the service's
// reportable SLO levels.
var kvLatBounds = []sim.Duration{
	sim.Micros(10), sim.Micros(30), sim.Micros(100), sim.Micros(300),
	sim.Micros(1000), sim.Micros(3000), sim.Micros(10000), sim.Micros(30000),
	sim.Micros(100000),
}

// kvLatProbe feeds request latencies into a pre-materialized histogram.
// Materialize matters: clients observe from their own engine shards
// concurrently, so the per-node rows must exist before the run starts.
type kvLatProbe struct {
	h *obs.Histogram
}

func newKVLatProbe(nodes int) *kvLatProbe {
	r := obs.NewRegistry(nodes)
	h := r.NewHistogram("kv/latency", kvLatBounds...)
	h.Materialize()
	return &kvLatProbe{h: h}
}

func (p *kvLatProbe) RequestDone(t sim.Time, client int, op kv.Op, out kv.Outcome, lat sim.Duration) {
	if out != kv.OutcomeDrop {
		p.h.Observe(client, lat)
	}
}

func (p *kvLatProbe) ServerShed(t sim.Time, server, depth int) {}

// KVRow is one cell of the service grid: one communication system under
// one load scenario, with its invariants replay-checked and its SLO
// quantiles read from the latency histogram. Offered and Goodput are in
// requests per virtual millisecond; the gap between them is what the
// saturated service sheds, drops, or times out.
type KVRow struct {
	Scenario string
	System   apps.System
	RateX    float64

	Arrivals       uint64
	OK             uint64
	Drops          uint64
	ShedGiveUps    uint64
	TimeoutGiveUps uint64
	Sheds          uint64 // server-side admission rejections (pre-give-up)
	Promoted       uint64 // optimistic dispatches promoted to threads
	Threads        uint64 // threads created machine-wide

	Offered float64 // arrivals per virtual ms
	Goodput float64 // completed requests per virtual ms

	P50, P99, P999 sim.Duration

	RecHash   uint64 // lease event-record hash; shard-count invariant
	FaultHash uint64 // fault-trace hash; 0 for clean cells
}

// kvScenario is one named load shape of the grid.
type kvScenario struct {
	name  string
	rateX float64
	shape func(*kv.Config)
}

// kvCell runs one configuration, checks its invariants, and reduces it
// to a row.
func kvCell(scenario string, sys apps.System, rateX float64, shape func(*kv.Config), clients int, dur sim.Duration) (KVRow, error) {
	cfg := kv.Config{
		System:   sys,
		Seed:     17,
		Clients:  clients,
		Duration: dur,
		RateX:    rateX,
		Shards:   Shards,
	}
	cfg.Optimistic = Optimistic
	cfg.Cores = Cores
	if shape != nil {
		shape(&cfg)
	}
	probe := newKVLatProbe(cfg.Servers + clients)
	if probe == nil {
		return KVRow{}, fmt.Errorf("kv %s/%v: probe", scenario, sys)
	}
	cfg.Probe = probe
	res, st, err := kv.Run(cfg)
	if err != nil {
		return KVRow{}, fmt.Errorf("kv %s/%v: %w", scenario, sys, err)
	}
	if err := kv.CheckInvariants(&st); err != nil {
		return KVRow{}, fmt.Errorf("kv %s/%v: %w", scenario, sys, err)
	}
	ms := float64(cfg.Duration) / float64(sim.Millisecond)
	p50, p99, p999 := probe.h.Percentiles()
	row := KVRow{
		Scenario: scenario, System: sys, RateX: rateX,
		Arrivals: st.Arrivals, OK: st.OK, Drops: st.Drops,
		ShedGiveUps: st.ShedGiveUps, TimeoutGiveUps: st.TimeoutGiveUps,
		Sheds: st.Sheds, Promoted: st.Promoted, Threads: res.ThreadsCreated,
		Offered: float64(st.Arrivals) / ms,
		Goodput: float64(st.OK) / ms,
		P50:     p50, P99: p99, P999: p999,
		RecHash: st.RecordHash,
	}
	if cfg.Fault != nil {
		row.FaultHash = st.FaultHash
	}
	return row, nil
}

// kvDefaultServers mirrors kv.Config's default partition count; the
// probe needs the node count before withDefaults runs.
func kvShape(mutate func(*kv.Config)) func(*kv.Config) {
	return func(cfg *kv.Config) {
		if cfg.Servers == 0 {
			cfg.Servers = 4
		}
		if mutate != nil {
			mutate(cfg)
		}
	}
}

// KV sweeps the service grid: every communication system through the
// saturation knee on steady uniform load, then through the shaped
// scenarios — bursty, diurnal, Zipf-skewed, lossy network, and (at full
// scale) a wide fleet of mostly-idle clients. Every cell's event record
// and client ledgers pass kv.CheckInvariants or the sweep fails.
func KV(scale Scale) ([]KVRow, error) {
	clients, dur := 48, sim.Duration(sim.Micros(12000))
	mults := []float64{0.25, 0.5, 1, 1.5, 2, 3}
	if scale.Quick {
		clients, dur = 32, sim.Duration(sim.Micros(8000))
		mults = []float64{0.5, 2}
	}
	type cell struct {
		sc  kvScenario
		sys apps.System
	}
	var cells []cell
	for _, m := range mults {
		sc := kvScenario{name: "steady", rateX: m, shape: kvShape(nil)}
		for _, sys := range apps.Systems {
			cells = append(cells, cell{sc, sys})
		}
	}
	shaped := []kvScenario{
		{"bursty", 1.5, kvShape(func(c *kv.Config) { c.Mode = kv.Bursty })},
		{"diurnal", 1.5, kvShape(func(c *kv.Config) { c.Mode = kv.Diurnal })},
		{"zipf", 1.5, kvShape(func(c *kv.Config) { c.ZipfS = 1.1 })},
		{"lossy", 1, kvShape(func(c *kv.Config) {
			c.Fault = &cm5.FaultPlan{Seed: 42, DropProb: 0.01, DupProb: 0.005}
		})},
	}
	if scale.Quick {
		shaped = shaped[3:] // keep the lossy cell: it exercises dedup + FaultHash
	}
	if !scale.Quick {
		// The fleet scenario: 16x the clients at 1/16 the per-client rate
		// — the same aggregate load spread over a wide, mostly-idle fleet.
		shaped = append(shaped, kvScenario{"fleet", 1, kvShape(func(c *kv.Config) {
			c.Clients = 768
			c.MeanIAT = sim.Micros(6400)
		})})
	}
	for _, sc := range shaped {
		for _, sys := range apps.Systems {
			cells = append(cells, cell{sc, sys})
		}
	}

	rows := make([]KVRow, len(cells))
	err := forEach(len(cells), func(i int) error {
		cl := cells[i]
		nClients, nDur := clients, dur
		// Scenario shapes may override Clients; pre-apply to size the probe.
		tmp := kv.Config{Clients: clients}
		cl.sc.shape(&tmp)
		if tmp.Clients != clients {
			nClients = tmp.Clients
		}
		row, err := kvCell(cl.sc.name, cl.sys, cl.sc.rateX, cl.sc.shape, nClients, nDur)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// KVTable formats the service grid.
func KVTable(scale Scale) (*Table, error) {
	rows, err := KV(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "KV service under open-loop load: offered vs goodput through the saturation knee, SLO latency, exact shed accounting",
		Columns: []string{"Scenario", "Sys", "RateX", "Arrivals", "OK", "Drop", "ShedGU", "TimeGU",
			"Sheds", "Promoted", "Threads", "Off(/ms)", "Good(/ms)",
			"p50(us)", "p99(us)", "p999(us)", "RecHash", "FaultHash"},
		Notes: []string{
			"open-loop arrivals: every cell's per-client ledger satisfies",
			"arrivals == ok + drops + shed-give-ups + timeout-give-ups, and every",
			"server's lease record replays cleanly through kv.CheckInvariants",
			"quantiles are bucket upper bounds (never under-reported); RecHash and",
			"FaultHash are bit-identical at any shard count",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario, r.System.String(), f2(r.RateX),
			u64(r.Arrivals), u64(r.OK), u64(r.Drops), u64(r.ShedGiveUps), u64(r.TimeoutGiveUps),
			u64(r.Sheds), u64(r.Promoted), u64(r.Threads),
			f1(r.Offered), f1(r.Goodput),
			us(r.P50), us(r.P99), us(r.P999),
			fmt.Sprintf("%016x", r.RecHash),
			fmt.Sprintf("%016x", r.FaultHash),
		})
	}
	return t, nil
}

// KVSaturation is the saturation-knee pass of the host bench: ORPC and
// TRPC goodput over an offered-load sweep, the knee where TRPC stops
// keeping up, ORPC's p999 at 70% of that knee, and the goodput ratio at
// the top of the sweep. All virtual quantities — deterministic on any
// host; Valid only gates whether the knee landed inside the sweep.
type KVSaturation struct {
	Multipliers  []float64 `json:"multipliers"`
	OfferedPerMs []float64 `json:"offered_per_ms"`
	OrpcGoodput  []float64 `json:"orpc_goodput_per_ms"`
	TrpcGoodput  []float64 `json:"trpc_goodput_per_ms"`
	// KneeRateX is the first multiplier where TRPC goodput fell below
	// 95% of the offered load; 0 when the sweep never saturated it.
	KneeRateX float64 `json:"knee_rate_x"`
	// P999At70PctKneeUs is ORPC's p999 (microseconds) at 70% of the knee
	// load — the SLO headroom claim: latency holds below the knee.
	P999At70PctKneeUs float64 `json:"p999_at_70pct_knee_us"`
	// GoodputRatioAtMax is ORPC goodput / TRPC goodput at the top
	// multiplier: how much service the optimistic path keeps delivering
	// after thread-per-call has collapsed.
	GoodputRatioAtMax float64 `json:"goodput_ratio_at_max"`
	Valid             bool    `json:"valid"`
}

// KVSaturationBench sweeps ORPC and TRPC through the saturation knee.
func KVSaturationBench(quick bool) (KVSaturation, error) {
	clients, dur := 48, sim.Duration(sim.Micros(12000))
	mults := []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3}
	if quick {
		clients, dur = 32, sim.Duration(sim.Micros(8000))
		mults = []float64{0.25, 0.75, 1.5, 3}
	}
	sat := KVSaturation{Multipliers: mults}
	sat.OfferedPerMs = make([]float64, len(mults))
	sat.OrpcGoodput = make([]float64, len(mults))
	sat.TrpcGoodput = make([]float64, len(mults))
	type point struct{ offered, orpc, trpc float64 }
	pts := make([]point, len(mults))
	err := forEach(len(mults), func(i int) error {
		ro, err := kvCell("sat", apps.ORPC, mults[i], kvShape(nil), clients, dur)
		if err != nil {
			return err
		}
		rt, err := kvCell("sat", apps.TRPC, mults[i], kvShape(nil), clients, dur)
		if err != nil {
			return err
		}
		pts[i] = point{ro.Offered, ro.Goodput, rt.Goodput}
		return nil
	})
	if err != nil {
		return sat, err
	}
	for i, p := range pts {
		sat.OfferedPerMs[i] = p.offered
		sat.OrpcGoodput[i] = p.orpc
		sat.TrpcGoodput[i] = p.trpc
	}
	for i, p := range pts {
		if p.trpc < 0.95*p.offered {
			sat.KneeRateX = mults[i]
			break
		}
	}
	if sat.KneeRateX > 0 {
		row, err := kvCell("sat-p999", apps.ORPC, 0.7*sat.KneeRateX, kvShape(nil), clients, dur)
		if err != nil {
			return sat, err
		}
		sat.P999At70PctKneeUs = float64(row.P999) / float64(sim.Microsecond)
	}
	last := len(pts) - 1
	if pts[last].trpc > 0 {
		sat.GoodputRatioAtMax = pts[last].orpc / pts[last].trpc
	}
	sat.Valid = sat.KneeRateX > 0 && sat.GoodputRatioAtMax > 0
	return sat, nil
}

// kvOccProbe integrates the dispatcher's multiactive core-occupancy
// track. Rows are pre-materialized per node and each node's row is only
// touched from its own engine shard, so the probe is shard-safe the same
// way kvLatProbe's histogram is. The Probe half is a no-op: only the
// MultiProbe callbacks matter here.
type kvOccProbe struct {
	cores int
	nodes []occWindow
}

// occWindow accumulates one node's busy-core time integral over its
// active span (first to last occupancy transition).
type occWindow struct {
	started  bool
	first    sim.Time
	last     sim.Time
	busy     int
	busyArea sim.Duration // integral of busy cores over time
}

func newKVOccProbe(nodes, cores int) *kvOccProbe {
	return &kvOccProbe{cores: cores, nodes: make([]occWindow, nodes)}
}

func (p *kvOccProbe) Attempt(sim.Time, int, string, oam.Strategy) {}
func (p *kvOccProbe) Settled(sim.Time, int, string, oam.Outcome, oam.Reason, oam.Strategy) {
}
func (p *kvOccProbe) CompatQueueDepth(sim.Time, int, int) {}

func (p *kvOccProbe) CoreOccupancy(t sim.Time, node int, busy int) {
	w := &p.nodes[node]
	if !w.started {
		w.started, w.first = true, t
	} else {
		w.busyArea += sim.Duration(t-w.last) * sim.Duration(w.busy)
	}
	w.last, w.busy = t, busy
}

// Fraction reduces the track to one number: busy-core time over core
// capacity, summed across every node that dispatched multiactively.
// Zero when no node did (the single-active cell bypasses RunMulti).
func (p *kvOccProbe) Fraction() float64 {
	var area, capacity sim.Duration
	for i := range p.nodes {
		w := &p.nodes[i]
		if !w.started || w.last == w.first {
			continue
		}
		area += w.busyArea
		capacity += sim.Duration(w.last-w.first) * sim.Duration(p.cores)
	}
	if capacity <= 0 {
		return 0
	}
	return float64(area) / float64(capacity)
}

// KVMultiactive is the multiactive-dispatch pass of the host bench: one
// read-heavy Zipf cell (gets dominate a skewed key space and their
// service time is raised until the handler slot is the bottleneck) run
// at 1, 2, and 4 simulated cores per server. Every reported quantity is
// virtual time, so the pass is deterministic on any host — simulated
// cores are free in host CPUs, they only parallelize virtual service
// time. Valid still mirrors speedup_valid's shape (host CPUs >= top
// core count) so consumers apply the same warn-skip discipline.
type KVMultiactive struct {
	// Mode tags the artifact scale ("quick" or "full"), mirroring the
	// top-level report tag so the pass is self-describing when extracted.
	Mode  string `json:"mode"`
	Cores []int  `json:"cores"`
	// The cell configuration is echoed so the artifact records which
	// budgets and load shape produced the numbers: a fixed handler
	// budget isolates the core count as the only variable.
	HandlerBudgetUs float64 `json:"handler_budget_us"`
	WorkGetUs       float64 `json:"work_get_us"`
	RateX           float64 `json:"rate_x"`
	ZipfS           float64 `json:"zipf_s"`
	MixPerMille     [3]int  `json:"mix_per_mille"` // get, put, cas

	GoodputPerMs []float64 `json:"goodput_per_ms"`
	P999Us       []float64 `json:"p999_us"`
	// OccupancyFrac is each cell's time-weighted busy-core fraction:
	// busy-core time / (cores x active span), summed over servers. The
	// cores=1 cell dispatches single-active, so its entry is 0.
	OccupancyFrac  []float64 `json:"core_occupancy_frac"`
	CompatAdmitted []uint64  `json:"compat_admitted"`
	CompatQueued   []uint64  `json:"compat_queued"`
	// SpeedupAtMax is goodput at the top core count over single-active
	// goodput; P999RatioAtMax is the matching tail-latency ratio (< 1
	// means multiactive shortened the tail).
	SpeedupAtMax   float64 `json:"speedup_at_max"`
	P999RatioAtMax float64 `json:"p999_ratio_at_max"`
	Valid          bool    `json:"valid"`
}

// kvMultiactiveCores is the core-count sweep of the pass.
var kvMultiactiveCores = []int{1, 2, 4}

// KVMultiactiveBench sweeps the read-heavy Zipf cell over simulated
// core counts. The load is sized so the single-active cell saturates
// its servers' one handler slot (offered get work alone exceeds one
// core), which is exactly where compatible-read admission pays.
func KVMultiactiveBench(quick bool) (KVMultiactive, error) {
	const (
		servers = 4
		clients = 48
		rateX   = 2
		zipfS   = 1.1
	)
	var (
		workGet = sim.Duration(sim.Micros(8))
		budget  = sim.Duration(sim.Micros(24))
		mix     = [3]int{900, 60, 40}
	)
	dur := sim.Duration(sim.Micros(12000))
	mode := "full"
	if quick {
		dur = sim.Duration(sim.Micros(6000))
		mode = "quick"
	}
	n := len(kvMultiactiveCores)
	m := KVMultiactive{
		Mode:            mode,
		Cores:           kvMultiactiveCores,
		HandlerBudgetUs: float64(budget) / float64(sim.Microsecond),
		WorkGetUs:       float64(workGet) / float64(sim.Microsecond),
		RateX:           rateX,
		ZipfS:           zipfS,
		MixPerMille:     mix,
		GoodputPerMs:    make([]float64, n),
		P999Us:          make([]float64, n),
		OccupancyFrac:   make([]float64, n),
		CompatAdmitted:  make([]uint64, n),
		CompatQueued:    make([]uint64, n),
	}
	err := forEach(n, func(i int) error {
		cores := kvMultiactiveCores[i]
		probe := newKVOccProbe(servers+clients, cores)
		var rt *rpc.Runtime
		shape := func(c *kv.Config) {
			c.Servers = servers
			c.Cores = cores
			c.ZipfS = zipfS
			c.MixGet, c.MixPut, c.MixCas = mix[0], mix[1], mix[2]
			c.WorkGet = workGet
			c.HandlerBudget = budget
			c.Observe = func(_ *am.Universe, r *rpc.Runtime) {
				rt = r
				r.Dispatcher().SetProbe(probe)
			}
		}
		row, err := kvCell("multiactive", apps.ORPC, rateX, shape, clients, dur)
		if err != nil {
			return err
		}
		m.GoodputPerMs[i] = row.Goodput
		m.P999Us[i] = float64(row.P999) / float64(sim.Microsecond)
		m.OccupancyFrac[i] = probe.Fraction()
		if rt != nil {
			st := rt.Dispatcher().Stats()
			m.CompatAdmitted[i] = st.CompatAdmitted
			m.CompatQueued[i] = st.CompatQueued
		}
		return nil
	})
	if err != nil {
		return m, err
	}
	last := n - 1
	if m.GoodputPerMs[0] > 0 {
		m.SpeedupAtMax = m.GoodputPerMs[last] / m.GoodputPerMs[0]
	}
	if m.P999Us[0] > 0 {
		m.P999RatioAtMax = m.P999Us[last] / m.P999Us[0]
	}
	m.Valid = m.SpeedupAtMax > 0 && runtime.NumCPU() >= kvMultiactiveCores[last]
	return m, nil
}

// KVMultiactiveTable formats the core-count sweep.
func KVMultiactiveTable(quick bool) (*Table, error) {
	m, err := KVMultiactiveBench(quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf(
			"Multiactive dispatch on the read-heavy Zipf kv cell: %.2fx goodput and %.2fx p999 at %d cores vs single-active",
			m.SpeedupAtMax, m.P999RatioAtMax, m.Cores[len(m.Cores)-1]),
		Columns: []string{"Cores", "Good(/ms)", "p999(us)", "Occupancy", "CompatAdm", "CompatQ"},
		Notes: []string{
			fmt.Sprintf("cell: %d%%/%d%%/%d%% get/put/cas per-mille, zipf s=%.1f, %.0f us gets, %.0fx load",
				m.MixPerMille[0], m.MixPerMille[1], m.MixPerMille[2], m.ZipfS, m.WorkGetUs, m.RateX),
			"simulated cores cost no host CPUs; all columns are virtual-time, deterministic on any host",
			"occupancy is busy-core time over core capacity across the servers' active spans (0 single-active)",
		},
	}
	for i, cores := range m.Cores {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cores), f1(m.GoodputPerMs[i]), f1(m.P999Us[i]),
			f2(m.OccupancyFrac[i]), u64(m.CompatAdmitted[i]), u64(m.CompatQueued[i]),
		})
	}
	return t, nil
}
