package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Profile attributes virtual CPU time to procedure names: a sampling
// profiler whose "samples" are exact — every completed charge is
// attributed in full, so Total always equals the engine's own charged
// total (the determinism test pins this to the microsecond).
//
// Names are normalized by stripping a trailing per-instance "/<digits>"
// suffix ("idle/3" → "idle", "reliable/retx/0" → "reliable/retx") so the
// table aggregates across nodes. Slash-separated prefixes form a
// hierarchy for the cumulative column: time in "oam/GetJob" also counts
// cumulatively toward "oam".
type Profile struct {
	flat  map[string]sim.Duration
	total sim.Duration
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{flat: make(map[string]sim.Duration)}
}

// Add attributes d of virtual CPU to the procedure name (normalized).
func (p *Profile) Add(name string, d sim.Duration) {
	p.flat[normalizeProcName(name)] += d
	p.total += d
}

// Total returns the total attributed virtual CPU time.
func (p *Profile) Total() sim.Duration { return p.total }

// normalizeProcName strips one trailing "/<digits>" instance suffix.
func normalizeProcName(name string) string {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i > 1 && i < len(name) && name[i-1] == '/' {
		return name[:i-1]
	}
	return name
}

// profRow is one rendered profile line.
type profRow struct {
	name      string
	flat, cum sim.Duration
}

// rows computes flat and cumulative time per name, including pure-prefix
// names that only appear as hierarchy parents, sorted by flat time
// descending (ties by name) — the pprof "flat" ordering.
func (p *Profile) rows() []profRow {
	cum := make(map[string]sim.Duration, len(p.flat))
	for name, d := range p.flat {
		cum[name] += d
		for i, ch := range name {
			if ch == '/' {
				cum[name[:i]] += d
			}
		}
	}
	rows := make([]profRow, 0, len(cum))
	for name, c := range cum {
		rows = append(rows, profRow{name: name, flat: p.flat[name], cum: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].flat != rows[j].flat {
			return rows[i].flat > rows[j].flat
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// Write renders a pprof-style flat/cum table of the top n procedures (all
// of them when n <= 0). Percentages use integer tenths so the text is
// byte-identical across hosts. It returns the first write error.
func (p *Profile) Write(w io.Writer, n int) error {
	rows := p.rows()
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("virtual CPU profile: %s total\n", fmtDur(p.total))
	pf("%14s %6s %14s %6s  %s\n", "flat", "flat%", "cum", "cum%", "procedure")
	for _, r := range rows {
		pf("%14s %6s %14s %6s  %s\n",
			fmtDur(r.flat), pct(r.flat, p.total), fmtDur(r.cum), pct(r.cum, p.total), r.name)
	}
	return err
}

// pct renders part/total as a percentage with one decimal, in pure
// integer arithmetic (round half up).
func pct(part, total sim.Duration) string {
	if total <= 0 {
		return "0.0%"
	}
	tenths := (int64(part)*1000 + int64(total)/2) / int64(total)
	return fmt.Sprintf("%d.%d%%", tenths/10, tenths%10)
}
