package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQueueHeapEquivalence drives a randomized event storm — timers,
// cancels, same-instant canonical-key clusters, delivery-class
// cross-shard flights, interleaved pops — through the reference binary
// heap and the calendar queue, and asserts the pop sequences are
// identical including every (time, class, key, seq) tie-break. This is
// the property that makes the calendar queue golden-safe: both
// structures implement the same total order, so swapping them cannot
// change a schedule.
func TestQueueHeapEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42, 99} {
		rng := rand.New(rand.NewSource(seed))
		var h eventHeap
		var q eventQueue
		q.init(16) // start small so the storm exercises growth
		var seq uint64
		now := Time(0)
		mk := func() (*event, *event) {
			seq++
			// Cluster timestamps: bursts at the current instant (tie-break
			// territory), near-future timers, and occasional far-future
			// outliers that force year wraps and re-bucketing.
			at := now
			switch rng.Intn(10) {
			case 0: // same-instant burst
			case 9:
				at += Time(rng.Intn(1 << 22)) // far future
			default:
				at += Time(rng.Intn(5000))
			}
			class := classNormal
			key := uint64(0)
			switch rng.Intn(4) {
			case 0:
				// Cross-shard flight: delivery class with a packed
				// (src node, flight seq) key, sometimes colliding.
				class = classDelivery
				key = uint64(rng.Intn(4))<<40 | uint64(rng.Intn(3))
			case 1:
				class = classGlobal
				key = uint64(rng.Intn(3))
			}
			cancelled := rng.Intn(8) == 0 // cancelled timers still surface
			a := &event{at: at, class: class, key: key, seq: seq, cancelled: cancelled}
			b := &event{at: at, class: class, key: key, seq: seq, cancelled: cancelled}
			return a, b
		}
		for step := 0; step < 20000; step++ {
			if h.len() == 0 || rng.Intn(3) != 0 {
				a, b := mk()
				h.push(a)
				q.push(b)
				continue
			}
			if f := q.first(); f == nil {
				t.Fatalf("seed %d step %d: queue empty with %d events in heap", seed, step, h.len())
			}
			we, ge := h.pop(), q.pop()
			if we.at != ge.at || we.class != ge.class || we.key != ge.key || we.seq != ge.seq {
				t.Fatalf("seed %d step %d: heap popped (%v,%d,%d,%d), queue popped (%v,%d,%d,%d)",
					seed, step, we.at, we.class, we.key, we.seq, ge.at, ge.class, ge.key, ge.seq)
			}
			if ge.at < now {
				t.Fatalf("seed %d step %d: time went backwards: %v after %v", seed, step, ge.at, now)
			}
			now = ge.at
		}
		// Drain the tail: every remaining event must match too.
		for h.len() > 0 {
			we, ge := h.pop(), q.pop()
			if we.at != ge.at || we.class != ge.class || we.key != ge.key || we.seq != ge.seq {
				t.Fatalf("seed %d drain: heap popped (%v,%d,%d,%d), queue popped (%v,%d,%d,%d)",
					seed, we.at, we.class, we.key, we.seq, ge.at, ge.class, ge.key, ge.seq)
			}
		}
		if q.len() != 0 {
			t.Fatalf("seed %d: queue has %d events after heap drained", seed, q.len())
		}
		if q.first() != nil {
			t.Fatalf("seed %d: empty queue has a head", seed)
		}
	}
}

// TestQueueProperty is the calendar-queue analogue of TestHeapProperty:
// for any sequence of pushes, pops yield a strictly increasing
// (time, seq) sequence.
func TestQueueProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q eventQueue
		for i, v := range times {
			q.push(&event{at: Time(v), seq: uint64(i)})
		}
		prevAt, prevSeq := Time(-1), uint64(0)
		for q.len() > 0 {
			e := q.pop()
			if e.at < prevAt || (e.at == prevAt && e.seq <= prevSeq && prevAt >= 0) {
				return false
			}
			prevAt, prevSeq = e.at, e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueScale pushes a 100k-timer heartbeat population — the workload
// the calendar queue exists for — and checks that the adaptive resize
// engages and the per-pop day scan stays short (flat cost), while the
// pop order stays exact.
func TestQueueScale(t *testing.T) {
	const n = 100_000
	rng := rand.New(rand.NewSource(5))
	var q eventQueue
	q.init(minQueueBuckets) // deliberately tiny: growth must be automatic
	for i := 0; i < n; i++ {
		q.push(&event{at: Time(rng.Int63n(1e9)), seq: uint64(i + 1)})
	}
	s := q.queueStats()
	if s.Buckets <= minQueueBuckets {
		t.Fatalf("bucket array did not grow: %d buckets for %d events", s.Buckets, n)
	}
	if s.Resizes == 0 {
		t.Fatalf("no adaptive resizes for %d events", n)
	}
	last := Time(-1)
	for q.len() > 0 {
		e := q.pop()
		if e.at < last {
			t.Fatalf("time went backwards: %v after %v", e.at, last)
		}
		last = e.at
	}
	s = q.queueStats()
	if scan := float64(s.ScanSteps) / float64(s.Pops); scan > 8 {
		t.Fatalf("day scan averaged %.1f buckets/pop; calendar width badly mismatched", scan)
	}
}

// TestQueueClearAndReuse exercises the shutdown path: clear drops the
// events and the memory, and a later push revives the queue.
func TestQueueClearAndReuse(t *testing.T) {
	var q eventQueue
	q.init(64)
	for i := 0; i < 100; i++ {
		q.push(&event{at: Time(i), seq: uint64(i + 1)})
	}
	q.clear()
	if q.len() != 0 || q.first() != nil {
		t.Fatalf("clear left %d events, head %v", q.len(), q.first())
	}
	q.push(&event{at: 7, seq: 1})
	if q.first() == nil || q.first().at != 7 {
		t.Fatalf("push after clear: head %+v", q.first())
	}
}

// TestEngineHintEvents checks that node-derived hints pre-size the
// per-shard queues and that a populated queue ignores late hints.
func TestEngineHintEvents(t *testing.T) {
	e := NewShardedConfig(11, ShardConfig{Shards: 2, EventHint: 1 << 12})
	for _, sh := range e.shards {
		if got := len(sh.heap.buckets); got < (1<<12)/2/2/2 {
			t.Fatalf("shard %d: %d buckets for a %d-event hint", sh.idx, got, 1<<12)
		}
	}
	sh := e.shards[0]
	sh.At(5, func() {})
	before := len(sh.heap.buckets)
	e.HintEvents(1 << 16)
	if got := len(sh.heap.buckets); got != before {
		t.Fatalf("hint resized a populated queue: %d -> %d buckets", before, got)
	}
	e.Shutdown()
}
