package exp

import (
	"testing"
)

// chaosGoldenHashes are the fault-trace hashes of the quick-scale chaos
// sweep's TSP rows (the rows with a fault layer), recorded from the seed
// kernel before the direct-handoff scheduler rewrite. The fault trace
// hashes every drop/dup/crash decision with its virtual timestamp, so any
// change to event order or timing anywhere in the stack shows up here.
var chaosGoldenHashes = []uint64{
	0x65595602f4e15059, 0x97610ea4b5f84710, 0xe41e5bca2c5c1758,
	0xc437904a618d42b4, 0xa1bbc8bb4db2cb22, 0xe8858455bac5cc8a,
	0xdc018251e5f87248,
	// The permanently-partitioned-slave row (appended with the
	// MaxAttempts-exhausted coverage; recorded at introduction).
	0x9e9f6e023b444713,
}

// TestChaosPartitionRow checks the MaxAttempts-exhausted coverage: the
// sweep's final row cuts one slave off completely, and the run ends with
// abandoned messages and call timeouts instead of a hang — with the
// answer still exact, computed by the remaining slaves.
func TestChaosPartitionRow(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	last := rows[len(rows)-1]
	if last.Partitioned != 1 {
		t.Fatalf("last row is not the partition row: %+v", last)
	}
	if !last.OK {
		t.Errorf("partition row answer wrong: %+v", last)
	}
	if last.GaveUp == 0 {
		t.Errorf("no messages exhausted MaxAttempts: %+v", last)
	}
	if last.Timeouts == 0 {
		t.Errorf("partitioned slave's calls never timed out: %+v", last)
	}
	if last.Dropped == 0 {
		t.Errorf("partition dropped nothing: %+v", last)
	}
}

// TestChaosFaultHashGolden pins the quick chaos sweep's fault traces
// against the seed kernel: the host-scheduling rewrite must not move a
// single fault decision in virtual time.
func TestChaosFaultHashGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	saved := Workers
	Workers = 1
	defer func() { Workers = saved }()

	rows, err := Chaos(Scale{Quick: true})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	var got []uint64
	for _, r := range rows {
		if r.FaultHash != 0 {
			got = append(got, r.FaultHash)
		}
	}
	t.Logf("fault hashes: %#x", got)
	if len(got) != len(chaosGoldenHashes) {
		t.Fatalf("fault-layer row count = %d, want %d", len(got), len(chaosGoldenHashes))
	}
	for i, h := range got {
		if h != chaosGoldenHashes[i] {
			t.Errorf("row %d: fault-trace hash %#x, want golden %#x", i, h, chaosGoldenHashes[i])
		}
	}
}
