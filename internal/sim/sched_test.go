package sim

import (
	"runtime"
	"testing"
)

// chargeZero is a static body so spawning it allocates no closure.
func chargeZero(p *Proc) { p.Charge(0) }

// TestSpawnExitZeroAllocs is the allocation budget of the process
// lifecycle: once the worker pool is warm, a Spawn -> run -> exit cycle
// must reuse a pooled goroutine, resume channel, and Proc struct rather
// than allocate. The budget tolerates stray runtime allocations amortized
// over the window; a per-spawn allocation anywhere would read as >= 1.
func TestSpawnExitZeroAllocs(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	const warmup, measured = 200, 5_000
	var m0, m1 runtime.MemStats
	e.Spawn("driver", func(p *Proc) {
		for i := 0; i < warmup; i++ {
			e.Spawn("w", chargeZero)
			p.Charge(Micros(1))
		}
		runtime.ReadMemStats(&m0)
		for i := 0; i < measured; i++ {
			e.Spawn("w", chargeZero)
			p.Charge(Micros(1))
		}
		runtime.ReadMemStats(&m1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	perSpawn := float64(m1.Mallocs-m0.Mallocs) / measured
	if perSpawn >= 0.01 {
		t.Fatalf("pooled spawn/exit cycle allocates %.4f objects/op, want 0", perSpawn)
	}
}

// TestDispatchCounters pins the split between direct handoffs and
// zero-channel-op self-resumes: a lone process that only charges must be
// resumed inline by its own goroutine every time after the first
// dispatch.
func TestDispatchCounters(t *testing.T) {
	e := New(1)
	const rounds = 50
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Charge(Micros(1))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// rounds+1 dispatches: the initial spawn handoff plus one per charge.
	if got := e.Dispatches(); got != rounds+1 {
		t.Fatalf("dispatches = %d, want %d", got, rounds+1)
	}
	// Only the spawn dispatch crosses goroutines (Run's goroutine hands
	// the kernel to the proc); every charge resume is served in place.
	if got := e.Handoffs(); got != 1 {
		t.Fatalf("handoffs = %d, want 1 (self-resumes must be inline)", got)
	}
}

// BenchmarkDispatchPingPong measures the cost of a cross-goroutine
// process switch: two processes charge in lockstep, so every dispatch
// hands the kernel role to the other process's goroutine.
func BenchmarkDispatchPingPong(b *testing.B) {
	e := New(1)
	defer e.Shutdown()
	body := func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Charge(Microsecond)
		}
	}
	e.Spawn("ping", body)
	e.Spawn("pong", body)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if d := e.Dispatches(); d > 0 {
		b.ReportMetric(float64(e.Handoffs())/float64(d), "handoffs/dispatch")
	}
}

// BenchmarkDispatchSelfResume measures the live-stack fast path: a lone
// charging process pops its own resume event and continues inline, with
// no channel operation or goroutine switch at all.
func BenchmarkDispatchSelfResume(b *testing.B) {
	e := New(1)
	defer e.Shutdown()
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Charge(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawnExit measures a full pooled process lifecycle, spawn
// through exit.
func BenchmarkSpawnExit(b *testing.B) {
	e := New(1)
	defer e.Shutdown()
	e.Spawn("driver", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Spawn("w", chargeZero)
			p.Charge(Micros(1))
		}
		b.StopTimer()
	})
	b.ReportAllocs()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
