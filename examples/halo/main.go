// Halo: the boundary-exchange pattern of SOR (section 4.2.3) distilled —
// each node iteratively averages a vector with its neighbors' edge
// values, exchanging halo cells through blocking store procedures and
// detecting convergence with the control network's split-phase global OR.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
)

const (
	nodes  = 8
	width  = 16
	rounds = 200
)

func main() {
	c := core.NewCluster(core.Options{Nodes: nodes, Seed: 3})

	type edge struct {
		mu      *core.Mutex
		isFull  *core.Cond
		notFull *core.Cond
		full    bool
		val     float64
	}
	edges := make([][2]*edge, nodes) // [left, right] inbox per node
	for i := range edges {
		for s := 0; s < 2; s++ {
			mu := c.NewMutex(i)
			edges[i][s] = &edge{mu: mu, isFull: c.NewCond(mu), notFull: c.NewCond(mu)}
		}
	}

	store := c.DefineAsync("store", func(e *core.Env, caller int, arg []byte) []byte {
		d := core.Dec(arg)
		side, val := d.U8(), d.F64()
		eg := edges[e.Node()][side]
		e.Lock(eg.mu)
		e.Await(eg.notFull, func() bool { return !eg.full })
		eg.val, eg.full = val, true
		e.Signal(eg.isFull)
		e.Unlock(eg.mu)
		return nil
	})

	take := func(ctx core.Ctx, me int, side uint8) float64 {
		eg := edges[me][side]
		eg.mu.Lock(ctx)
		for !eg.full {
			eg.isFull.Wait(ctx)
		}
		v := eg.val
		eg.full = false
		eg.notFull.Signal(ctx)
		eg.mu.Unlock(ctx)
		return v
	}

	data := make([][]float64, nodes)
	iters := make([]int, nodes)
	_, err := c.Run(func(ctx core.Ctx, me int) {
		vec := make([]float64, width)
		for i := range vec {
			vec[i] = float64(me) // step function across the ring of nodes
		}
		sched := c.Universe().Scheduler(me)
		left, right := (me+nodes-1)%nodes, (me+1)%nodes
		r := 0
		for ; r < rounds; r++ {
			// Ship my edges: my first cell is my left neighbor's right
			// halo, my last cell their left halo.
			sendEdge := func(dst int, side uint8, v float64) {
				arg := core.Enc(9)
				arg.U8(side)
				arg.F64(v)
				store.CallAsync(ctx, dst, arg.Bytes())
			}
			sendEdge(left, 1, vec[0])
			sendEdge(right, 0, vec[width-1])
			lh := take(ctx, me, 0)
			rh := take(ctx, me, 1)
			// Relax.
			next := make([]float64, width)
			maxd := 0.0
			for i := range vec {
				l, rr := lh, rh
				if i > 0 {
					l = vec[i-1]
				}
				if i < width-1 {
					rr = vec[i+1]
				}
				next[i] = (l + rr + vec[i]) / 3
				maxd = math.Max(maxd, math.Abs(next[i]-vec[i]))
			}
			vec = next
			ctx.P.Charge(core.Micros(float64(width)))
			// Split-phase convergence vote.
			sched.OREnter(maxd > 1e-6)
			if !sched.ORWait(ctx) {
				r++
				break
			}
		}
		data[me] = vec
		iters[me] = r
	})
	if err != nil {
		panic(err)
	}
	mean := 0.0
	for _, vec := range data {
		for _, v := range vec {
			mean += v
		}
	}
	mean /= float64(nodes * width)
	st := c.OAMStats()
	fmt.Printf("ran %d rounds; ring mean %.4f (expected %.4f)\n",
		iters[0], mean, float64(nodes-1)/2)
	fmt.Printf("OAMs: %d total, %.1f%% ran without blocking\n",
		st.Total, 100*float64(st.Succeeded)/float64(st.Total))
}
