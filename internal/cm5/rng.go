package cm5

// flightRNG is a tiny splitmix64 stream seeded per flight from
// (seed, src, dst, attempt). Every packet injection gets its own stream,
// so the value of any random draw — loss roll, duplicate roll, jitter —
// depends only on which flight it belongs to, never on how unrelated
// events interleave. That independence is what lets shards execute sends
// in parallel and still reproduce the sequential run bit for bit; it also
// fixes the order-dependence the old shared generators had even
// sequentially (adding a link elsewhere used to shift every later draw).
type flightRNG struct {
	s uint64
}

// wireSalt decouples the cost-model wire-jitter stream (seeded from the
// engine seed) from the fault stream (seeded from the plan seed), so the
// two never alias even when the seeds are equal.
const wireSalt = 0x71c9d1f0a5b3e847

// newFlightRNG seeds a stream for one (src, dst, attempt) flight. The raw
// combination is whitened by the first splitmix step, so nearby counters
// still produce uncorrelated leading draws.
func newFlightRNG(seed uint64, src, dst int, attempt uint64, salt uint64) flightRNG {
	return flightRNG{s: seed ^ uint64(src)<<32 ^ uint64(dst) ^ attempt<<16 ^ salt}
}

func (r *flightRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *flightRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// int63n returns a uniform draw in [0, n). The modulo bias is far below
// anything the simulated latency distributions can resolve.
func (r *flightRNG) int63n(n int64) int64 {
	return int64(r.next()>>1) % n
}
