// Package sched is the chaos-hardened cluster-scheduler control plane:
// one scheduler node leases resource-counted jobs to agent nodes over
// reliable ORPC, agents drive a phi-style failure detector with periodic
// heartbeats, and leases expire, migrate off dead agents, and are fenced
// by per-job epochs so a revived agent's stale completion can never be
// accepted. Unlike the run-to-completion evaluation apps, the workload
// here is the control plane itself: it must keep making correct
// decisions while the machine drops, duplicates, partitions, slows, and
// crashes under a cm5.FaultPlan.
//
// Every control-plane transition is recorded on the scheduler node in
// its execution order, so the record — like everything else in the
// kernel — is bit-identical at any shard count. CheckInvariants replays
// the record after a run and proves the safety contract: every job's
// completion accepted exactly once, lease epochs strictly monotonic, and
// no placement on an agent the detector had declared dead at that
// virtual time.
package sched

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/reliable"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// JobSpec is one job's resource demand and runtime.
type JobSpec struct {
	CPU int // cpu units, out of Config.AgentCPU per agent
	Mem int // memory units, out of Config.AgentMem per agent
	Dur sim.Duration
}

// GenJobs derives a deterministic job table from a seed (splitmix64, the
// same idiom as the fault RNG): demands that fit a single default agent
// inventory, runtimes of 200 us to 1.5 ms.
func GenJobs(n int, seed int64) []JobSpec {
	out := make([]JobSpec, n)
	s := uint64(seed) ^ 0x6a09e667f3bcc909
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range out {
		z := next()
		out[i] = JobSpec{
			CPU: 1 + int(z%4),
			Mem: 1 + int((z>>8)%8),
			Dur: sim.Micros(float64(200 + (z>>16)%1301)),
		}
	}
	return out
}

// Probe observes control-plane transitions; obs hangs its instruments
// and trace spans here. Probes are pure observers — they must not
// schedule events or charge virtual time.
type Probe interface {
	// Heartbeat fires for every fresh (non-stale) heartbeat accepted.
	Heartbeat(t sim.Time, agent int)
	// AgentDead / AgentAlive fire on detector verdict transitions.
	AgentDead(t sim.Time, agent int)
	AgentAlive(t sim.Time, agent int)
	// LeasePlaced / LeaseReclaimed bracket one lease's lifetime.
	LeasePlaced(t sim.Time, job, agent, epoch int)
	LeaseReclaimed(t sim.Time, job, agent, epoch int, why ReclaimReason)
	// CompletionAccepted / CompletionRejected report epoch-fencing
	// decisions.
	CompletionAccepted(t sim.Time, job, agent, epoch int)
	CompletionRejected(t sim.Time, job, agent, epoch int)
}

// Config parameterizes a scheduler run.
type Config struct {
	Jobs  int       // job count when Specs is nil (default 16)
	Specs []JobSpec // explicit job table; overrides Jobs
	Seed  int64
	// Shards selects the engine's shard count: 0 or 1 sequential,
	// negative auto, clamped to the node count. Results are bit-identical
	// at any value; only wall-clock time changes.
	Shards int
	// Optimistic selects the engine's speculative span scheduler instead
	// of lockstep windows when Shards resolves parallel (results stay
	// bit-identical; only wall-clock time changes).
	Optimistic bool
	Strategy   oam.Strategy
	// Cores gives each simulated node this many cores (default 1);
	// values > 1 route sync dispatches through the multiactive path
	// (oam.Options.Cores). The control plane declares no compatibility
	// matrix, so handlers still serialize and results are unchanged.
	Cores int
	// Fault is the injected fault plan (nil for a perfect network).
	Fault *cm5.FaultPlan
	// Rel tunes the reliable transport, which is always attached.
	Rel reliable.Options
	// AgentCPU / AgentMem are each agent's resource inventory
	// (defaults 8 and 16).
	AgentCPU int
	AgentMem int
	// HeartbeatEvery is the agent heartbeat period (default 500 us).
	HeartbeatEvery sim.Duration
	// PhiThreshold is the detector's suspicion threshold, in units of
	// mean heartbeat interarrival (default 8).
	PhiThreshold float64
	// LeaseTimeout reclaims a placed job with no accepted completion
	// (default 20 ms — generous enough that a fully loaded agent's
	// round-robin job slices finish in time on a clean network).
	LeaseTimeout sim.Duration
	// CallTimeout is the per-attempt RPC deadline (default 1 ms).
	CallTimeout sim.Duration
	// CallAttempts bounds idempotent retries per call (default 4).
	CallAttempts int
	// Tick is the scheduler control-loop period (default 100 us).
	Tick sim.Duration
	// MaxTime aborts the run if virtual time exceeds it (default 60 s) —
	// a safety net against fault plans with no recovery path.
	MaxTime sim.Time
	// Observe, when set, is called with the universe and RPC runtime
	// after construction and before the run starts.
	Observe func(*am.Universe, *rpc.Runtime)
	// Probe, when set, receives control-plane transitions.
	Probe Probe
}

func (cfg Config) withDefaults() Config {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 16
	}
	if cfg.AgentCPU <= 0 {
		cfg.AgentCPU = 8
	}
	if cfg.AgentMem <= 0 {
		cfg.AgentMem = 16
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = sim.Micros(500)
	}
	if cfg.PhiThreshold <= 0 {
		cfg.PhiThreshold = 8
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = sim.Micros(20000)
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = sim.Micros(1000)
	}
	if cfg.CallAttempts <= 0 {
		cfg.CallAttempts = 4
	}
	if cfg.Tick <= 0 {
		cfg.Tick = sim.Micros(100)
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = sim.Time(60 * sim.Second)
	}
	return cfg
}

// Stats reports what the control plane did during a run.
type Stats struct {
	Placements   uint64 // leases issued
	Migrations   uint64 // leases reclaimed off a declared-dead agent
	Expiries     uint64 // leases reclaimed by the timeout watchdog
	PlaceFails   uint64 // leases reclaimed after a failed or refused placement call
	DeadDeclared uint64 // detector death verdicts
	Recovered    uint64 // declared-dead agents readmitted by a heartbeat

	Heartbeats       uint64 // fresh heartbeats accepted
	StaleHeartbeats  uint64 // duplicate or reordered heartbeats ignored
	Accepted         uint64 // completions accepted at the live lease epoch
	DupCompletions   uint64 // re-deliveries of the accepted completion
	StaleCompletions uint64 // completions fenced off (wrong epoch or agent)
	CompleteGiveUps  uint64 // agent runners that exhausted completion attempts

	Timeouts     uint64 // client-side call deadline expirations, all procedures
	Retries      uint64 // client-side nack retries, all procedures
	StaleReplies uint64 // replies that arrived after their call was abandoned

	Rel       reliable.Stats
	Fault     cm5.FaultStats
	FaultHash uint64

	// Record is the scheduler-side event record (see CheckInvariants);
	// RecordHash folds it into one word for cross-shard comparison.
	Record     []Event
	RecordHash uint64
	CrashedAt  []bool // per node, indexed by id (0 = scheduler)
}

// Heartbeat reply: one bool — true when every job is done and the agent
// may exit. Completion reply status codes:
const (
	completeStale    = iota // fenced off: wrong epoch or agent
	completeAccepted        // first completion at the live lease epoch
	completeDup             // re-delivery of the already-accepted completion
)

// Scheduler-side job states.
const (
	jsQueued = iota
	jsPlaced
	jsDone
)

type jobState struct {
	st        uint8
	agent     int
	epoch     int
	placedAt  sim.Time
	doneEpoch int
	doneAgent int
}

// agentBook is the scheduler's view of one agent's free inventory.
type agentBook struct {
	freeCPU int
	freeMem int
}

// master is the scheduler node's bookkeeping; every field is guarded by
// mu and only ever touched from node-0 contexts (the control loop and
// the heartbeat/completion handlers), so the event record accumulates in
// node-0 execution order.
type master struct {
	cfg       Config
	nAg       int
	mu        *threads.Mutex
	det       *detector
	specs     []JobSpec
	jobs      []jobState
	books     []agentBook // indexed by agent id; slot 0 unused
	queue     []int       // FIFO of queued job ids
	remaining int
	done      bool
	rr        int // round-robin cursor over agents
	rec       []Event
	stats     Stats
}

// record appends one event and forwards it to the probe.
func (m *master) record(ev Event) {
	m.rec = append(m.rec, ev)
	p := m.cfg.Probe
	if p == nil {
		return
	}
	switch ev.Kind {
	case EvPlace:
		p.LeasePlaced(ev.T, ev.Job, ev.Agent, ev.Epoch)
	case EvDone:
		p.CompletionAccepted(ev.T, ev.Job, ev.Agent, ev.Epoch)
	case EvStale:
		p.CompletionRejected(ev.T, ev.Job, ev.Agent, ev.Epoch)
	case EvExpire:
		p.LeaseReclaimed(ev.T, ev.Job, ev.Agent, ev.Epoch, ev.Why)
	case EvDead:
		p.AgentDead(ev.T, ev.Agent)
	case EvAlive:
		p.AgentAlive(ev.T, ev.Agent)
	}
}

// reclaim returns a placed job to the queue and frees its booked
// inventory. The job keeps its epoch; the next placement bumps it, so a
// completion from the reclaimed lease is fenced off.
func (m *master) reclaim(now sim.Time, j int, why ReclaimReason) {
	js := &m.jobs[j]
	m.books[js.agent].freeCPU += m.specs[j].CPU
	m.books[js.agent].freeMem += m.specs[j].Mem
	m.record(Event{T: now, Kind: EvExpire, Job: j, Agent: js.agent, Epoch: js.epoch, Why: why})
	js.st = jsQueued
	m.queue = append(m.queue, j)
	switch why {
	case ReasonTimeout:
		m.stats.Expiries++
	case ReasonDead:
		m.stats.Migrations++
	case ReasonPlaceFail:
		m.stats.PlaceFails++
	}
}

// pickAgent is the placement policy: round-robin first fit over agents
// the detector considers alive. Returns 0 when nothing fits right now.
func (m *master) pickAgent(s JobSpec) int {
	for i := 0; i < m.nAg; i++ {
		ag := 1 + (m.rr+i)%m.nAg
		b := &m.books[ag]
		if m.det.isAlive(ag) && b.freeCPU >= s.CPU && b.freeMem >= s.Mem {
			m.rr = (m.rr + i + 1) % m.nAg
			return ag
		}
	}
	return 0
}

type placeKey struct{ job, epoch int }

// runningJob is one live runner's lease state. Epoch is mutable: when
// the scheduler re-issues a lease to the same agent (after a timeout
// reclaim) the placement handler adopts the newer epoch into the live
// runner instead of spawning a second one, so the eventual completion
// carries the epoch the fence expects.
type runningJob struct {
	epoch int
}

// agentState is one agent node's local bookkeeping, guarded by its own
// mutex and only ever touched from that node's contexts.
type agentState struct {
	mu      *threads.Mutex
	node    *cm5.Node
	ep      *am.Endpoint
	freeCPU int
	freeMem int
	running map[int]*runningJob   // job id -> live runner
	seen    map[placeKey]struct{} // placements already accepted (idempotence)
	giveUps uint64                // runners that exhausted completion attempts
}

// hbErrLimit bounds an agent's consecutive failed heartbeats: with the
// default period that is well past any healing partition in the chaos
// grids, but still lets a run with an unreachable scheduler quiesce.
const hbErrLimit = 200

// workSlice is the agent-side compute granularity: runner threads charge
// their job's runtime in slices this long and service the endpoint
// between slices, so co-resident jobs, placements, and heartbeats all
// interleave fairly on the agent's one CPU.
const workSlice = 50 * sim.Microsecond

// Run executes the control plane on agents+1 nodes (node 0 is the
// scheduler) until every job's completion has been accepted, and returns
// the run result, the control-plane statistics, and the recorded event
// history. Robustness comes from four mechanisms:
//
//   - every message rides the reliable transport, so loss and
//     duplication cost retransmits, not correctness;
//   - agents heartbeat the scheduler's phi-style failure detector; an
//     agent that falls silent past PhiThreshold mean intervals is
//     declared dead and its leases migrate, and a heartbeat from a
//     declared-dead agent readmits it;
//   - leases expire: a placed job whose completion has not been accepted
//     within LeaseTimeout is re-queued for another agent;
//   - every re-issue bumps the job's epoch, and the scheduler accepts a
//     completion only at the exact (epoch, agent) of the live lease —
//     duplicate execution is allowed, duplicate acceptance is not.
func Run(agents int, cfg Config) (apps.Result, Stats, error) {
	cfg = cfg.withDefaults()
	if agents < 1 {
		return apps.Result{}, Stats{}, fmt.Errorf("sched: need at least one agent, got %d", agents)
	}
	specs := cfg.Specs
	if specs == nil {
		specs = GenJobs(cfg.Jobs, cfg.Seed)
	}
	for j, s := range specs {
		if s.CPU < 1 || s.Mem < 0 || s.Dur <= 0 {
			return apps.Result{}, Stats{}, fmt.Errorf("sched: job %d has invalid spec %+v", j, s)
		}
		if s.CPU > cfg.AgentCPU || s.Mem > cfg.AgentMem {
			return apps.Result{}, Stats{}, fmt.Errorf(
				"sched: job %d (%d cpu, %d mem) exceeds the agent inventory (%d, %d)",
				j, s.CPU, s.Mem, cfg.AgentCPU, cfg.AgentMem)
		}
	}

	nodes := agents + 1
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(cfg.Fault)
	tr := reliable.Attach(u, cfg.Rel)
	rt := rpc.New(u, rpc.Options{Mode: rpc.ORPC, OAM: oam.Options{Strategy: cfg.Strategy, Cores: cfg.Cores}})

	m := &master{
		cfg:       cfg,
		nAg:       agents,
		mu:        threads.NewMutex(u.Scheduler(0)),
		det:       newDetector(agents, cfg.HeartbeatEvery),
		specs:     specs,
		jobs:      make([]jobState, len(specs)),
		books:     make([]agentBook, agents+1),
		remaining: len(specs),
	}
	for i := 1; i <= agents; i++ {
		m.books[i] = agentBook{freeCPU: cfg.AgentCPU, freeMem: cfg.AgentMem}
	}
	for j := range specs {
		m.queue = append(m.queue, j)
	}

	ags := make([]*agentState, nodes)
	for i := 1; i < nodes; i++ {
		ags[i] = &agentState{
			mu:      threads.NewMutex(u.Scheduler(i)),
			node:    u.Endpoint(i).Node(),
			ep:      u.Endpoint(i),
			freeCPU: cfg.AgentCPU,
			freeMem: cfg.AgentMem,
			running: make(map[int]*runningJob),
			seen:    make(map[placeKey]struct{}),
		}
	}

	heartbeat := rt.Define("sched/heartbeat", func(e *oam.Env, caller int, arg []byte) []byte {
		seq := rpc.NewDec(arg).U64()
		now := e.Ctx().P.Now()
		e.Lock(m.mu)
		recovered, stale := m.det.beat(caller, seq, now)
		if stale {
			m.stats.StaleHeartbeats++
		} else {
			m.stats.Heartbeats++
			if cfg.Probe != nil {
				cfg.Probe.Heartbeat(now, caller)
			}
			if recovered {
				m.stats.Recovered++
				m.record(Event{T: now, Kind: EvAlive, Job: -1, Agent: caller})
			}
		}
		done := m.done
		e.Unlock(m.mu)
		enc := rpc.NewEnc(1)
		enc.Bool(done)
		return enc.Bytes()
	})

	complete := rt.Define("sched/complete", func(e *oam.Env, caller int, arg []byte) []byte {
		dec := rpc.NewDec(arg)
		job := int(dec.U32())
		epoch := int(dec.U32())
		now := e.Ctx().P.Now()
		e.Lock(m.mu)
		js := &m.jobs[job]
		status := uint8(completeStale)
		switch {
		case js.st == jsPlaced && js.agent == caller && js.epoch == epoch:
			// The fence: exactly the live lease's (agent, epoch) — a
			// completion from any reclaimed epoch can never get here.
			js.st = jsDone
			js.doneEpoch, js.doneAgent = epoch, caller
			m.books[caller].freeCPU += m.specs[job].CPU
			m.books[caller].freeMem += m.specs[job].Mem
			m.remaining--
			m.stats.Accepted++
			m.record(Event{T: now, Kind: EvDone, Job: job, Agent: caller, Epoch: epoch})
			status = completeAccepted
		case js.st == jsDone && js.doneEpoch == epoch && js.doneAgent == caller:
			// Network re-delivery (or idempotent retry) of the accepted
			// completion: acknowledge without re-accepting.
			m.stats.DupCompletions++
			status = completeDup
		default:
			m.stats.StaleCompletions++
			m.record(Event{T: now, Kind: EvStale, Job: job, Agent: caller, Epoch: epoch})
		}
		e.Unlock(m.mu)
		enc := rpc.NewEnc(1)
		enc.U8(status)
		return enc.Bytes()
	})

	// runJob burns a job's runtime on the agent in slices, servicing the
	// endpoint between slices so heartbeats and further placements keep
	// flowing, then frees local inventory and reports the completion.
	runJob := func(c threads.Ctx, a *agentState, rj *runningJob, job, cpu, mem int, dur sim.Duration) {
		for rem := dur; rem > 0; {
			if a.node.Crashed() {
				return // a dead machine frees nothing and reports nothing
			}
			d := workSlice
			if rem < d {
				d = rem
			}
			c.P.Charge(d)
			rem -= d
			apps.Service(c, a.ep)
		}
		if a.node.Crashed() {
			return
		}
		a.mu.Lock(c)
		epoch := rj.epoch // the newest adopted lease epoch
		delete(a.running, job)
		a.freeCPU += cpu
		a.freeMem += mem
		a.mu.Unlock(c)
		enc := rpc.NewEnc(8)
		enc.U32(uint32(job))
		enc.U32(uint32(epoch))
		if _, err := complete.CallIdempotent(c, 0, enc.Bytes(), cfg.CallTimeout, cfg.CallAttempts); err != nil {
			// The scheduler is unreachable: the lease will expire there
			// and the job will migrate; this runner's work is lost.
			a.mu.Lock(c)
			a.giveUps++
			a.mu.Unlock(c)
		}
	}

	place := rt.Define("agent/place", func(e *oam.Env, caller int, arg []byte) []byte {
		dec := rpc.NewDec(arg)
		job := int(dec.U32())
		epoch := int(dec.U32())
		cpu := int(dec.U32())
		mem := int(dec.U32())
		dur := sim.Duration(dec.I64())
		a := ags[e.Node()]
		e.Lock(a.mu)
		key := placeKey{job, epoch}
		accept := false
		if _, dup := a.seen[key]; dup {
			// Idempotent-retry or network duplicate of an accepted
			// placement: re-ack, no second runner.
			accept = true
		} else if rj, live := a.running[job]; live {
			// The job is already running here from an earlier epoch of
			// the same lease chain (the scheduler reclaimed on timeout
			// and re-issued to us). Adopt the newer epoch so the eventual
			// completion passes the fence, rather than spawning a second
			// runner and double-charging inventory.
			if epoch > rj.epoch {
				rj.epoch = epoch
				a.seen[key] = struct{}{}
			}
			accept = true
		} else if a.freeCPU >= cpu && a.freeMem >= mem {
			a.seen[key] = struct{}{}
			a.freeCPU -= cpu
			a.freeMem -= mem
			rj := &runningJob{epoch: epoch}
			a.running[job] = rj
			accept = true
			// The runner thread is created after the lock is held: the
			// only optimistic abort point is the Lock itself, so an
			// aborted attempt cannot have spawned it.
			c := e.Ctx()
			c.S.Create(c, fmt.Sprintf("sched/job/%d.%d", job, epoch), false, func(c threads.Ctx) {
				runJob(c, a, rj, job, cpu, mem, dur)
			})
		}
		e.Unlock(a.mu)
		enc := rpc.NewEnc(1)
		enc.Bool(accept)
		return enc.Bytes()
	})

	if cfg.Observe != nil {
		cfg.Observe(u, rt)
	}

	var runErr error
	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		ep := u.Endpoint(me)
		if me == 0 {
			// The control loop: detect deaths, expire leases, place work.
			// Verdicts and placements both happen here, under the same
			// mutex, so a placement can never race a death declaration —
			// the no-dead-placement invariant holds by construction.
			type intent struct{ job, agent, epoch int }
			for {
				m.mu.Lock(c)
				now := c.P.Now()
				for ag := 1; ag <= agents; ag++ {
					if m.det.isAlive(ag) && m.det.phi(ag, now) >= cfg.PhiThreshold {
						m.det.markDead(ag)
						m.stats.DeadDeclared++
						m.record(Event{T: now, Kind: EvDead, Job: -1, Agent: ag})
						for j := range m.jobs {
							if m.jobs[j].st == jsPlaced && m.jobs[j].agent == ag {
								m.reclaim(now, j, ReasonDead)
							}
						}
					}
				}
				for j := range m.jobs {
					if m.jobs[j].st == jsPlaced && now.Sub(m.jobs[j].placedAt) > cfg.LeaseTimeout {
						m.reclaim(now, j, ReasonTimeout)
					}
				}
				// FIFO over the queue, first fit over live agents.
				// Head-of-line blocking is deliberate: placement order
				// stays deterministic and starvation-free.
				var intents []intent
				for len(m.queue) > 0 {
					j := m.queue[0]
					ag := m.pickAgent(m.specs[j])
					if ag == 0 {
						break
					}
					m.queue = m.queue[1:]
					js := &m.jobs[j]
					js.epoch++
					js.st, js.agent, js.placedAt = jsPlaced, ag, now
					m.books[ag].freeCPU -= m.specs[j].CPU
					m.books[ag].freeMem -= m.specs[j].Mem
					m.stats.Placements++
					m.record(Event{T: now, Kind: EvPlace, Job: j, Agent: ag, Epoch: js.epoch})
					intents = append(intents, intent{j, ag, js.epoch})
				}
				if m.remaining == 0 {
					m.done = true
				}
				done := m.done
				m.mu.Unlock(c)
				if done {
					// The idle loop keeps answering heartbeats and late
					// completions until the machine drains.
					return
				}
				// Push the leases decided above; a failed or refused call
				// reclaims the lease so the job migrates at epoch+1.
				for _, in := range intents {
					enc := rpc.NewEnc(24)
					enc.U32(uint32(in.job))
					enc.U32(uint32(in.epoch))
					enc.U32(uint32(m.specs[in.job].CPU))
					enc.U32(uint32(m.specs[in.job].Mem))
					enc.I64(int64(m.specs[in.job].Dur))
					res, err := place.CallIdempotent(c, in.agent, enc.Bytes(), cfg.CallTimeout, cfg.CallAttempts)
					if err == nil && rpc.NewDec(res).Bool() {
						continue
					}
					m.mu.Lock(c)
					js := &m.jobs[in.job]
					if js.st == jsPlaced && js.agent == in.agent && js.epoch == in.epoch {
						m.reclaim(c.P.Now(), in.job, ReasonPlaceFail)
					}
					m.mu.Unlock(c)
				}
				if c.P.Now() > cfg.MaxTime {
					m.mu.Lock(c)
					runErr = fmt.Errorf("sched: exceeded MaxTime %v with %d jobs unfinished",
						cfg.MaxTime, m.remaining)
					m.done = true
					m.mu.Unlock(c)
					return
				}
				c.P.Charge(cfg.Tick)
				apps.Service(c, ep)
			}
		}

		// Agent: beat until told everything is done, servicing placements
		// and runner threads between beats. Heartbeat replies double as
		// the shutdown channel.
		a := ags[me]
		var seq uint64
		errs := 0
		for {
			if a.node.Crashed() {
				return
			}
			seq++
			enc := rpc.NewEnc(8)
			enc.U64(seq)
			res, err := heartbeat.CallWithDeadline(c, 0, enc.Bytes(), cfg.HeartbeatEvery)
			if err != nil {
				// Partitioned or slowed: keep beating — readmission is the
				// detector's job — but bound the streak so a run with an
				// unreachable scheduler still quiesces.
				errs++
				if errs > hbErrLimit {
					return
				}
			} else {
				errs = 0
				if rpc.NewDec(res).Bool() {
					return
				}
			}
			// Sleep until the next beat on a node-local timer (the same
			// idiom as RPC deadlines). A blocked thread leaves the ready
			// queue, so runner threads get the whole agent between beats
			// and the idle loop answers placements when everything
			// blocks. Charging the interval instead would model the wait
			// as a busy spin: every runner's CPU share halves and each
			// 50 us slice pays a 52 us context switch to hand the CPU
			// back to the spinning waiter — in the worst case stretching
			// a job past any lease timeout and livelocking the control
			// plane on migration ping-pong.
			var beat threads.Flag
			c.Node().Shard().AfterTimer(cfg.HeartbeatEvery, beat.Set)
			beat.Wait(c)
		}
	})
	if err != nil {
		return apps.Result{}, m.stats, fmt.Errorf("sched: %w", err)
	}

	m.stats.Record = m.rec
	m.stats.RecordHash = RecordHash(m.rec)
	for i := 1; i < nodes; i++ {
		m.stats.CompleteGiveUps += ags[i].giveUps
	}
	hbSt, plSt, cmSt := heartbeat.Stats(), place.Stats(), complete.Stats()
	m.stats.Timeouts = hbSt.Timeouts + plSt.Timeouts + cmSt.Timeouts
	m.stats.Retries = hbSt.Retries + plSt.Retries + cmSt.Retries
	m.stats.StaleReplies = rt.StaleReplies()
	m.stats.Rel = tr.Stats()
	m.stats.Fault = u.Machine().FaultStats()
	m.stats.FaultHash = u.Machine().FaultTraceHash()
	for i := 0; i < nodes; i++ {
		m.stats.CrashedAt = append(m.stats.CrashedAt, u.Machine().Crashed(i))
	}
	if runErr != nil {
		return apps.Result{}, m.stats, runErr
	}

	// The answer is a checksum of the placement outcome — which agent ran
	// each job's accepted completion, at which epoch. It must match
	// across shard counts like any other application answer.
	answer := fnvInit()
	for j := range m.jobs {
		answer = fnvMix(answer, uint64(j))
		answer = fnvMix(answer, uint64(m.jobs[j].doneEpoch))
		answer = fnvMix(answer, uint64(m.jobs[j].doneAgent))
	}
	res := apps.Result{
		System:  apps.ORPC,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  answer,
	}
	oams := hbSt.OAMs + plSt.OAMs + cmSt.OAMs
	succ := hbSt.Successes + plSt.Successes + cmSt.Successes
	apps.FillResult(&res, u, oams, succ)
	return res, m.stats, nil
}
