package threads

import (
	"testing"

	"repro/internal/sim"
)

// TestMultipleJoiners: several threads joining one target all wake.
func TestMultipleJoiners(t *testing.T) {
	eng, s := rig(t)
	woken := 0
	var target *Thread
	s.Bootstrap("main", func(c Ctx) {
		target = s.Create(c, "target", false, func(cc Ctx) {
			cc.P.Charge(sim.Micros(50))
		})
		for i := 0; i < 3; i++ {
			s.Create(c, "joiner", false, func(cc Ctx) {
				target.Join(cc)
				if !target.Done() {
					t.Error("join returned before target done")
				}
				woken++
			})
		}
	})
	run(t, eng)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

// TestFlagDoubleSetPanics: setting a completion flag twice is a protocol
// violation.
func TestFlagDoubleSetPanics(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		f := &Flag{}
		f.Set()
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double Set")
			}
		}()
		f.Set()
	})
	run(t, eng)
}

// TestYieldStorm: many threads yielding in a tight loop neither deadlock
// nor starve; all finish.
func TestYieldStorm(t *testing.T) {
	eng, s := rig(t)
	const n = 20
	finished := 0
	for i := 0; i < n; i++ {
		s.Bootstrap("w", func(c Ctx) {
			for r := 0; r < 50; r++ {
				s.Yield(c)
			}
			finished++
		})
	}
	run(t, eng)
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
}

// TestCreateFromHandlerCtx: Create is legal from a handler context (that
// is how TRPC dispatch works); the thread runs later.
func TestCreateFromHandlerCtx(t *testing.T) {
	eng, s := rig(t)
	ran := false
	s.Bootstrap("main", func(c Ctx) {
		hc := Ctx{P: c.P, S: s} // handler context on this thread's CPU
		s.Create(hc, "spawned", true, func(cc Ctx) { ran = true })
		s.Yield(c)
	})
	run(t, eng)
	if !ran {
		t.Fatal("handler-created thread never ran")
	}
}

// TestStopIdleLoop: Stop lets the idle process exit at quiescence so
// Live drops to zero without Shutdown.
func TestStopIdleLoop(t *testing.T) {
	eng, s := rig(t)
	s.Bootstrap("main", func(c Ctx) {
		c.P.Charge(sim.Micros(5))
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Live() != 0 {
		t.Fatalf("live = %d after Stop, want 0", eng.Live())
	}
}

// TestCondBroadcastOrder: broadcast wakes all waiters and they reacquire
// the mutex one at a time.
func TestCondBroadcastOrder(t *testing.T) {
	eng, s := rig(t)
	mu := NewMutex(s)
	cv := NewCond(mu)
	waiting := 0
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		s.Bootstrap("waiter", func(c Ctx) {
			mu.Lock(c)
			waiting++
			cv.Wait(c)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			c.P.Charge(sim.Micros(3))
			inside--
			mu.Unlock(c)
		})
	}
	s.Bootstrap("broadcaster", func(c Ctx) {
		for waiting < 5 {
			s.Yield(c)
		}
		mu.Lock(c)
		cv.Broadcast(c)
		mu.Unlock(c)
	})
	run(t, eng)
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated after broadcast: %d", maxInside)
	}
}

// TestSchedulerStatsCoherent: counters line up after a mixed workload.
func TestSchedulerStatsCoherent(t *testing.T) {
	eng, s := rig(t)
	f := &Flag{}
	s.Bootstrap("a", func(c Ctx) {
		s.Create(c, "b", false, func(cc Ctx) {
			cc.P.Charge(sim.Micros(1))
			f.Set()
		})
		f.Wait(c)
		s.Yield(c)
	})
	run(t, eng)
	st := s.Stats()
	if st.Created != 2 || st.Starts != 2 {
		t.Fatalf("created/starts = %d/%d", st.Created, st.Starts)
	}
	if st.LiveStackStart > st.Starts {
		t.Fatal("more live-stack starts than starts")
	}
	if st.Blocks == 0 {
		t.Fatal("no blocks recorded")
	}
	if st.LiveStackPercent() < 0 || st.LiveStackPercent() > 100 {
		t.Fatal("live-stack percent out of range")
	}
}
