package rpc

import (
	"testing"

	"repro/internal/oam"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestConcurrentOutstandingCalls: several threads on one client node each
// have a call in flight at once; replies must route to the right caller.
func TestConcurrentOutstandingCalls(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	echo := rt.Define("echo", func(e *oam.Env, caller int, arg []byte) []byte {
		// Hold each call a little so they overlap.
		e.Compute(sim.Micros(5))
		return arg
	})
	const workers = 6
	results := make([]uint64, workers)
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		var ts []*threads.Thread
		for w := 0; w < workers; w++ {
			w := w
			ts = append(ts, c.S.Create(c, "w", false, func(cc threads.Ctx) {
				arg := NewEnc(8)
				arg.U64(uint64(1000 + w))
				rep := NewDec(echo.Call(cc, 1, arg.Bytes()))
				results[w] = rep.U64()
			}))
		}
		for _, th := range ts {
			th.Join(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range results {
		if v != uint64(1000+w) {
			t.Fatalf("worker %d got %d", w, v)
		}
	}
}

// TestUnknownReplyCountedStale: a reply for a call id that is not waiting
// is tolerated and counted — on a faulty network, deadline-abandoned calls
// make late replies routine rather than a protocol violation.
func TestUnknownReplyCountedStale(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	u := rt.Universe()
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		// Hand-forge a reply packet for a call id nobody is waiting on.
		u.Endpoint(0).Send(c, 1, rt.replyH, [4]uint64{999}, nil)
	})
	if err != nil {
		t.Fatalf("stray reply must not fail the run: %v", err)
	}
	if rt.StaleReplies() != 1 {
		t.Fatalf("StaleReplies = %d, want 1", rt.StaleReplies())
	}
}

// TestAsyncUnderNackFallsBackToRerun: asynchronous procedures promote
// rather than nack (there is no caller thread to retry).
func TestAsyncUnderNackFallsBackToRerun(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC, OAM: oam.Options{Strategy: oam.Nack}})
	s1 := rt.Universe().Scheduler(1)
	mu := threads.NewMutex(s1)
	hits := 0
	poke := rt.DefineAsync("poke", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Lock(mu)
		hits++
		e.Unlock(mu)
		return nil
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		ep := rt.Universe().Endpoint(node)
		if node == 0 {
			poke.CallAsync(c, 1, nil)
			return
		}
		mu.Lock(c)
		for poke.Stats().OAMs == 0 {
			ep.Poll(c)
		}
		mu.Unlock(c)
		for hits == 0 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
	st := poke.Stats()
	if st.Nacks != 0 || st.Promoted != 1 {
		t.Fatalf("stats %+v (async must promote, not nack)", st)
	}
}

// TestNackBackoffGrows: repeated nacks back off exponentially up to the
// cap, visible as growing gaps between retries.
func TestNackBackoffGrows(t *testing.T) {
	rt := newRT(t, 2, Options{
		Mode:            ORPC,
		OAM:             oam.Options{Strategy: oam.Nack},
		NackBackoffBase: sim.Micros(20),
		NackBackoffMax:  sim.Micros(100),
	})
	s1 := rt.Universe().Scheduler(1)
	mu := threads.NewMutex(s1)
	var attempts []sim.Time
	poke := rt.Define("poke", func(e *oam.Env, caller int, arg []byte) []byte {
		attempts = append(attempts, e.Ctx().P.Now())
		e.Lock(mu)
		e.Unlock(mu)
		return nil
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		ep := rt.Universe().Endpoint(node)
		if node == 0 {
			poke.Call(c, 1, nil)
			return
		}
		mu.Lock(c)
		for poke.Stats().Nacks < 4 {
			ep.Poll(c)
		}
		mu.Unlock(c)
		for poke.Stats().Successes+poke.Stats().Promoted == 0 {
			c.S.Yield(c)
			ep.Poll(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) < 4 {
		t.Fatalf("attempts = %d", len(attempts))
	}
	g1 := attempts[1].Sub(attempts[0])
	g2 := attempts[2].Sub(attempts[1])
	g3 := attempts[3].Sub(attempts[2])
	if !(g2 > g1 && g3 > g2) {
		t.Fatalf("backoff gaps not growing: %v %v %v", g1, g2, g3)
	}
	st := poke.Stats()
	if st.Retries == 0 || st.Calls != st.Retries+1 {
		t.Fatalf("retry accounting: Calls=%d Retries=%d", st.Calls, st.Retries)
	}
}

// TestStatsRetryAccounting: Calls counts retries; the mode accessor and
// dispatcher accessors stay coherent.
func TestStatsRetryAccounting(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: TRPC})
	if rt.Mode() != TRPC {
		t.Fatal("mode accessor")
	}
	if rt.Dispatcher() == nil || rt.AsyncDispatcher() == nil {
		t.Fatal("nil dispatchers")
	}
	inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte { return nil })
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		for i := 0; i < 3; i++ {
			inc.Call(c, 1, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.Calls != 3 || st.Threads != 3 || st.OAMs != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.SuccessPercent() != 100 {
		t.Fatalf("success%% with no OAMs should report 100, got %v", st.SuccessPercent())
	}
}

// TestWrongModeCallsPanic: calling async procs synchronously and vice
// versa are programming errors.
func TestWrongModeCallsPanic(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	syncP := rt.Define("s", func(e *oam.Env, caller int, arg []byte) []byte { return nil })
	asyncP := rt.DefineAsync("a", func(e *oam.Env, caller int, arg []byte) []byte { return nil })
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("CallAsync of sync proc did not panic")
				}
			}()
			syncP.CallAsync(c, 1, nil)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Call of async proc did not panic")
				}
			}()
			asyncP.Call(c, 1, nil)
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
}
