package oam

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Strategy selects how an aborted optimistic execution is handled; the
// three options are the three ways to abort of section 2 of the paper.
type Strategy uint8

const (
	// Rerun undoes the attempt and re-executes the whole procedure as a
	// newly created thread. This is the paper prototype's strategy.
	Rerun Strategy = iota
	// Continuation promotes the suspended execution itself to a thread
	// (lazy thread creation): nothing is re-executed.
	Continuation
	// Nack undoes the attempt and reports to the caller that a negative
	// acknowledgment should be sent; the sender backs off and retries.
	Nack
)

func (s Strategy) String() string {
	switch s {
	case Rerun:
		return "rerun"
	case Continuation:
		return "continuation"
	case Nack:
		return "nack"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Options configures a Dispatcher.
type Options struct {
	Strategy Strategy
	// HandlerBudget, when positive, bounds the CPU time an optimistic
	// execution may consume before it aborts with TooLong. Zero disables
	// the check, like the paper's prototype.
	HandlerBudget sim.Duration
	// StrictNetAbort makes Env.Send abort with NetworkFull instead of
	// relying on the CM-5 drain-while-sending behaviour.
	StrictNetAbort bool
	// Cores, when > 1, enables multiactive dispatch: handlers compatible
	// per Compat run concurrently on this many simulated per-node cores
	// (RunMulti). Zero or one keeps the paper's single-active discipline.
	Cores int
	// Compat is the compatibility matrix consulted by multiactive
	// admission. Nil means no two handlers are ever compatible.
	Compat *CompatTable
	// Adaptive replaces the fixed HandlerBudget with a per-node controller
	// that adjusts the budget within [BudgetMin, BudgetMax] and the
	// promote-vs-rerun choice from observed abort history and queue depth.
	// The controller reads only deterministic per-node counters, so
	// adapted schedules stay replayable.
	Adaptive bool
	// BudgetMin and BudgetMax bound the adaptive budget. Zero values
	// default to HandlerBudget/4 and HandlerBudget*8.
	BudgetMin sim.Duration
	BudgetMax sim.Duration
}

// Outcome reports what happened to one optimistic dispatch.
type Outcome uint8

const (
	// Completed: the procedure ran to completion inside the handler.
	Completed Outcome = iota
	// Promoted: the attempt aborted and a thread now owns the procedure.
	Promoted
	// NackNeeded: the attempt aborted under the Nack strategy; the caller
	// (the RPC stub) must send the negative acknowledgment.
	NackNeeded
)

// Stats counts dispatches; Tables 2 and 3 of the paper report exactly
// Total, Succeeded and the success percentage.
type Stats struct {
	Total     uint64
	Succeeded uint64
	Promoted  uint64
	Nacked    uint64
	ByReason  [numReasons]uint64

	// Multiactive admission: dispatches admitted straight onto a core vs.
	// parked in the compatibility queue first.
	CompatAdmitted uint64
	CompatQueued   uint64
	// Adaptive controller actions: handler-budget doublings and halvings.
	BudgetRaised  uint64
	BudgetLowered uint64
}

// SuccessPercent is the "% Successes" column of Tables 2 and 3.
func (s *Stats) SuccessPercent() float64 {
	if s.Total == 0 {
		return 100
	}
	return 100 * float64(s.Succeeded) / float64(s.Total)
}

// statsFormat is shared by String and its round-trip tests.
const statsFormat = "total=%d ok=%d promoted=%d nacked=%d " +
	"compat_admitted=%d compat_queued=%d budget_raised=%d budget_lowered=%d " +
	"lock_busy=%d cond_false=%d network_full=%d too_long=%d"

func (s Stats) String() string {
	return fmt.Sprintf(statsFormat,
		s.Total, s.Succeeded, s.Promoted, s.Nacked,
		s.CompatAdmitted, s.CompatQueued, s.BudgetRaised, s.BudgetLowered,
		s.ByReason[LockBusy], s.ByReason[CondFalse], s.ByReason[NetworkFull], s.ByReason[TooLong])
}

// Add merges o's counters into s.
func (s *Stats) Add(o *Stats) {
	s.Total += o.Total
	s.Succeeded += o.Succeeded
	s.Promoted += o.Promoted
	s.Nacked += o.Nacked
	for r := range o.ByReason {
		s.ByReason[r] += o.ByReason[r]
	}
	s.CompatAdmitted += o.CompatAdmitted
	s.CompatQueued += o.CompatQueued
	s.BudgetRaised += o.BudgetRaised
	s.BudgetLowered += o.BudgetLowered
}

// Dispatcher runs remote-procedure bodies optimistically. One dispatcher
// serves a whole universe; per-procedure statistics belong to the RPC
// layer above. Counters are kept per node — each increments only from its
// own node's polling context — so dispatches on different engine shards
// never contend; Stats sums them.
type Dispatcher struct {
	opts   Options
	stats  []Stats
	multi  []multiNode
	ctls   []nodeCtl
	probe  Probe
	mprobe MultiProbe
}

// Probe observes optimistic dispatches. Probes are pure observers — they
// must not schedule events or charge virtual time; hooks are skipped when
// no probe is installed.
type Probe interface {
	// Attempt fires when an optimistic dispatch begins on node.
	Attempt(t sim.Time, node int, name string, strategy Strategy)
	// Settled fires when the dispatch outcome is known on the polling
	// context: completed inline, promoted to a thread (reason says why),
	// or nacked back to the sender.
	Settled(t sim.Time, node int, name string, outcome Outcome, reason Reason, strategy Strategy)
}

// MultiProbe is the optional multiactive extension of Probe: a probe that
// also implements it receives core-occupancy and compatibility-queue
// tracks. Kept separate so existing Probe implementations stay valid.
type MultiProbe interface {
	// CoreOccupancy fires when the number of busy simulated cores on node
	// changes.
	CoreOccupancy(t sim.Time, node int, busy int)
	// CompatQueueDepth fires when node's compatibility queue changes
	// length.
	CompatQueueDepth(t sim.Time, node int, depth int)
}

// SetProbe installs a dispatch probe; pass nil to disable. A probe that
// also implements MultiProbe receives the multiactive tracks.
func (d *Dispatcher) SetProbe(p Probe) {
	d.probe = p
	d.mprobe, _ = p.(MultiProbe)
}

// NewDispatcher returns a dispatcher with the given options.
func NewDispatcher(opts Options) *Dispatcher { return &Dispatcher{opts: opts} }

// SetNodes sizes the per-node counter table. Callers that know the
// universe size (the RPC runtime) call it up front; otherwise the table
// grows on first use per node, which is only safe on a sequential engine.
func (d *Dispatcher) SetNodes(n int) {
	if n > len(d.stats) {
		grown := make([]Stats, n)
		copy(grown, d.stats)
		d.stats = grown
		multi := make([]multiNode, n)
		copy(multi, d.multi)
		d.multi = multi
		ctls := make([]nodeCtl, n)
		copy(ctls, d.ctls)
		d.ctls = ctls
	}
}

// nodeStats returns node's counter slot.
func (d *Dispatcher) nodeStats(node int) *Stats {
	if node >= len(d.stats) {
		d.SetNodes(node + 1)
	}
	return &d.stats[node]
}

// Options returns the dispatcher's configuration.
func (d *Dispatcher) Options() Options { return d.opts }

// Stats returns a snapshot of the dispatch counters, summed across nodes.
func (d *Dispatcher) Stats() Stats {
	var out Stats
	for i := range d.stats {
		out.Add(&d.stats[i])
	}
	return out
}

// NewThreadEnv returns an Env in thread mode, for procedure bodies that
// always execute as threads (the Traditional RPC path). Every Env
// operation behaves pessimistically: locks block, condition waits wait,
// sends go out immediately.
func NewThreadEnv(c threads.Ctx, ep *am.Endpoint, d *Dispatcher) *Env {
	return &Env{C: c, ep: ep, d: d, optimistic: false, name: "thread"}
}

// Run executes body as an Optimistic Active Message on the polling
// context c (a handler context) of endpoint ep. It returns what became of
// the execution and, for aborts, why.
//
// Rerun and Nack attempt the body inline on c; Continuation attempts it
// on a lent auxiliary process so that a blocked execution can be adopted
// as a thread without re-execution.
func (d *Dispatcher) Run(c threads.Ctx, ep *am.Endpoint, name string, body func(*Env)) (Outcome, Reason) {
	node := ep.Node().ID()
	st := d.nodeStats(node)
	st.Total++
	strat := d.opts.Strategy
	if d.opts.Adaptive && strat == Rerun && d.nodeCtl(node).preferLazy {
		// History-driven promote choice: under sustained aborts, promote
		// the suspended execution in place instead of re-running it.
		strat = Continuation
	}
	if d.probe != nil {
		d.probe.Attempt(c.P.Now(), node, name, strat)
	}
	if strat == Continuation {
		o, r := d.runLent(c, ep, name, body)
		if d.opts.Adaptive {
			d.adapt(node, o != Completed, r, ep.Node().Pending())
		}
		return o, r
	}
	env := &Env{C: c, ep: ep, d: d, optimistic: true, name: name}
	reason, aborted := attempt(env, body)
	if !aborted {
		env.commit()
		st.Succeeded++
		if d.opts.Adaptive {
			d.adapt(node, false, 0, ep.Node().Pending())
		}
		d.settle(c, ep, name, Completed, 0)
		return Completed, 0
	}
	env.undo()
	st.ByReason[reason]++
	if d.opts.Adaptive {
		d.adapt(node, true, reason, ep.Node().Pending())
	}
	if strat == Nack {
		st.Nacked++
		d.settle(c, ep, name, NackNeeded, reason)
		return NackNeeded, reason
	}
	// Rerun: undo everything and run the whole procedure as a thread.
	st.Promoted++
	c.S.Create(c, "oam/"+name, true, func(c2 threads.Ctx) {
		env2 := &Env{C: c2, ep: ep, d: d, optimistic: false, name: name}
		body(env2)
	})
	d.settle(c, ep, name, Promoted, reason)
	return Promoted, reason
}

// settle reports a resolved dispatch to the probe, if any.
func (d *Dispatcher) settle(c threads.Ctx, ep *am.Endpoint, name string, o Outcome, r Reason) {
	if d.probe != nil {
		d.probe.Settled(c.P.Now(), ep.Node().ID(), name, o, r, d.opts.Strategy)
	}
}

// attempt runs body optimistically, converting an abort unwind into a
// (reason, true) result. Other panics propagate.
func attempt(env *Env, body func(*Env)) (reason Reason, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(abortSignal)
			if !ok {
				panic(r)
			}
			reason, aborted = sig.reason, true
		}
	}()
	body(env)
	return 0, false
}

// runLent implements the Continuation strategy: the body executes on an
// auxiliary process holding the CPU on loan. If it completes, the loan
// ends and the handler cost was all there was. If it must block, the
// execution is adopted as a thread in place — lazy thread creation — and
// the polling context resumes immediately.
func (d *Dispatcher) runLent(c threads.Ctx, ep *am.Endpoint, name string, body func(*Env)) (Outcome, Reason) {
	s := c.S
	var (
		outcome Outcome
		reason  Reason
		settled bool
	)
	env := &Env{ep: ep, d: d, optimistic: true, name: name}
	st := d.nodeStats(ep.Node().ID())
	env.onPromote = func(r Reason) {
		// First promotion: report back to the dispatcher. The lender is
		// still parked; it wakes when the adopted thread detaches.
		outcome, reason, settled = Promoted, r, true
		st.ByReason[r]++
		st.Promoted++
	}
	proc := c.P.Shard().Spawn("oam/"+name, func(p *sim.Proc) {
		env.C = threads.Ctx{P: p, T: nil, S: s}
		body(env)
		if env.C.T == nil {
			// Ran to completion inside the handler.
			env.commit()
			outcome, settled = Completed, true
			st.Succeeded++
			s.FinishLent()
			return
		}
		// Completed as a promoted thread.
		env.commit()
		s.FinishAdopted(env.C)
	})
	s.Lend(proc)
	c.P.Park() // until the body finishes or detaches
	if !settled {
		panic("oam: lent execution returned control without settling")
	}
	d.settle(c, ep, name, outcome, reason)
	return outcome, reason
}
